# Empty dependencies file for example_mpsoc_attack.
# This may be replaced when dependencies are built.
