file(REMOVE_RECURSE
  "CMakeFiles/example_mpsoc_attack.dir/mpsoc_attack.cpp.o"
  "CMakeFiles/example_mpsoc_attack.dir/mpsoc_attack.cpp.o.d"
  "mpsoc_attack"
  "mpsoc_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mpsoc_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
