# Empty compiler generated dependencies file for example_countermeasure_eval.
# This may be replaced when dependencies are built.
