file(REMOVE_RECURSE
  "CMakeFiles/example_full_key_recovery.dir/full_key_recovery.cpp.o"
  "CMakeFiles/example_full_key_recovery.dir/full_key_recovery.cpp.o.d"
  "full_key_recovery"
  "full_key_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_full_key_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
