# Empty compiler generated dependencies file for example_full_key_recovery.
# This may be replaced when dependencies are built.
