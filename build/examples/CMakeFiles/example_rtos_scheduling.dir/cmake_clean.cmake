file(REMOVE_RECURSE
  "CMakeFiles/example_rtos_scheduling.dir/rtos_scheduling.cpp.o"
  "CMakeFiles/example_rtos_scheduling.dir/rtos_scheduling.cpp.o.d"
  "rtos_scheduling"
  "rtos_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rtos_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
