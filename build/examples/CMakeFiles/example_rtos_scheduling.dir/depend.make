# Empty dependencies file for example_rtos_scheduling.
# This may be replaced when dependencies are built.
