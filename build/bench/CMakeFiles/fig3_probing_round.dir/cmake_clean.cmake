file(REMOVE_RECURSE
  "CMakeFiles/fig3_probing_round.dir/fig3_probing_round.cpp.o"
  "CMakeFiles/fig3_probing_round.dir/fig3_probing_round.cpp.o.d"
  "fig3_probing_round"
  "fig3_probing_round.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_probing_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
