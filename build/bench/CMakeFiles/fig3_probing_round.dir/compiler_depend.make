# Empty compiler generated dependencies file for fig3_probing_round.
# This may be replaced when dependencies are built.
