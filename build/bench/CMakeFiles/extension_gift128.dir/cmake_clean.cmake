file(REMOVE_RECURSE
  "CMakeFiles/extension_gift128.dir/extension_gift128.cpp.o"
  "CMakeFiles/extension_gift128.dir/extension_gift128.cpp.o.d"
  "extension_gift128"
  "extension_gift128.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_gift128.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
