# Empty dependencies file for extension_gift128.
# This may be replaced when dependencies are built.
