file(REMOVE_RECURSE
  "CMakeFiles/leakage_profile.dir/leakage_profile.cpp.o"
  "CMakeFiles/leakage_profile.dir/leakage_profile.cpp.o.d"
  "leakage_profile"
  "leakage_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakage_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
