# Empty dependencies file for leakage_profile.
# This may be replaced when dependencies are built.
