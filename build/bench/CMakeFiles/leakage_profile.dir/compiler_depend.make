# Empty compiler generated dependencies file for leakage_profile.
# This may be replaced when dependencies are built.
