
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_probe_method.cpp" "bench/CMakeFiles/ablation_probe_method.dir/ablation_probe_method.cpp.o" "gcc" "bench/CMakeFiles/ablation_probe_method.dir/ablation_probe_method.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/grinch_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/grinch_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/countermeasures/CMakeFiles/grinch_cm.dir/DependInfo.cmake"
  "/root/repo/build/src/present/CMakeFiles/grinch_present.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/grinch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/grinch_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/gift/CMakeFiles/grinch_gift.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/grinch_cachesim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
