file(REMOVE_RECURSE
  "CMakeFiles/ablation_probe_method.dir/ablation_probe_method.cpp.o"
  "CMakeFiles/ablation_probe_method.dir/ablation_probe_method.cpp.o.d"
  "ablation_probe_method"
  "ablation_probe_method.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_probe_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
