# Empty dependencies file for ablation_probe_method.
# This may be replaced when dependencies are built.
