# Empty compiler generated dependencies file for extension_time_driven.
# This may be replaced when dependencies are built.
