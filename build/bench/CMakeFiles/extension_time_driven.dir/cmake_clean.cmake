file(REMOVE_RECURSE
  "CMakeFiles/extension_time_driven.dir/extension_time_driven.cpp.o"
  "CMakeFiles/extension_time_driven.dir/extension_time_driven.cpp.o.d"
  "extension_time_driven"
  "extension_time_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_time_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
