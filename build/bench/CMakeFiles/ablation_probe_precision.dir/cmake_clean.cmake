file(REMOVE_RECURSE
  "CMakeFiles/ablation_probe_precision.dir/ablation_probe_precision.cpp.o"
  "CMakeFiles/ablation_probe_precision.dir/ablation_probe_precision.cpp.o.d"
  "ablation_probe_precision"
  "ablation_probe_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_probe_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
