file(REMOVE_RECURSE
  "CMakeFiles/extension_present.dir/extension_present.cpp.o"
  "CMakeFiles/extension_present.dir/extension_present.cpp.o.d"
  "extension_present"
  "extension_present.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_present.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
