# Empty compiler generated dependencies file for extension_present.
# This may be replaced when dependencies are built.
