file(REMOVE_RECURSE
  "CMakeFiles/countermeasures.dir/countermeasures.cpp.o"
  "CMakeFiles/countermeasures.dir/countermeasures.cpp.o.d"
  "countermeasures"
  "countermeasures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/countermeasures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
