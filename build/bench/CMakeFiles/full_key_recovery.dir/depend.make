# Empty dependencies file for full_key_recovery.
# This may be replaced when dependencies are built.
