# Empty compiler generated dependencies file for table1_cache_line.
# This may be replaced when dependencies are built.
