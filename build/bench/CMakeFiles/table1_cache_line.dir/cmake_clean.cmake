file(REMOVE_RECURSE
  "CMakeFiles/table1_cache_line.dir/table1_cache_line.cpp.o"
  "CMakeFiles/table1_cache_line.dir/table1_cache_line.cpp.o.d"
  "table1_cache_line"
  "table1_cache_line.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cache_line.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
