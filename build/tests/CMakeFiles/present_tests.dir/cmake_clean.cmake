file(REMOVE_RECURSE
  "CMakeFiles/present_tests.dir/present/present_test.cpp.o"
  "CMakeFiles/present_tests.dir/present/present_test.cpp.o.d"
  "CMakeFiles/present_tests.dir/present/table_present_test.cpp.o"
  "CMakeFiles/present_tests.dir/present/table_present_test.cpp.o.d"
  "present_tests"
  "present_tests.pdb"
  "present_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/present_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
