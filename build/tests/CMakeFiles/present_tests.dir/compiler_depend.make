# Empty compiler generated dependencies file for present_tests.
# This may be replaced when dependencies are built.
