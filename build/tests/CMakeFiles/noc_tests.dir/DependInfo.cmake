
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/noc/network_test.cpp" "tests/CMakeFiles/noc_tests.dir/noc/network_test.cpp.o" "gcc" "tests/CMakeFiles/noc_tests.dir/noc/network_test.cpp.o.d"
  "/root/repo/tests/noc/routing_test.cpp" "tests/CMakeFiles/noc_tests.dir/noc/routing_test.cpp.o" "gcc" "tests/CMakeFiles/noc_tests.dir/noc/routing_test.cpp.o.d"
  "/root/repo/tests/noc/topology_test.cpp" "tests/CMakeFiles/noc_tests.dir/noc/topology_test.cpp.o" "gcc" "tests/CMakeFiles/noc_tests.dir/noc/topology_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/grinch_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/grinch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
