file(REMOVE_RECURSE
  "CMakeFiles/noc_tests.dir/noc/network_test.cpp.o"
  "CMakeFiles/noc_tests.dir/noc/network_test.cpp.o.d"
  "CMakeFiles/noc_tests.dir/noc/routing_test.cpp.o"
  "CMakeFiles/noc_tests.dir/noc/routing_test.cpp.o.d"
  "CMakeFiles/noc_tests.dir/noc/topology_test.cpp.o"
  "CMakeFiles/noc_tests.dir/noc/topology_test.cpp.o.d"
  "noc_tests"
  "noc_tests.pdb"
  "noc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
