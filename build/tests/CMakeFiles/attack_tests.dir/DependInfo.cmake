
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/attack/attack_config_test.cpp" "tests/CMakeFiles/attack_tests.dir/attack/attack_config_test.cpp.o" "gcc" "tests/CMakeFiles/attack_tests.dir/attack/attack_config_test.cpp.o.d"
  "/root/repo/tests/attack/cross_round_test.cpp" "tests/CMakeFiles/attack_tests.dir/attack/cross_round_test.cpp.o" "gcc" "tests/CMakeFiles/attack_tests.dir/attack/cross_round_test.cpp.o.d"
  "/root/repo/tests/attack/eliminator_test.cpp" "tests/CMakeFiles/attack_tests.dir/attack/eliminator_test.cpp.o" "gcc" "tests/CMakeFiles/attack_tests.dir/attack/eliminator_test.cpp.o.d"
  "/root/repo/tests/attack/grinch128_test.cpp" "tests/CMakeFiles/attack_tests.dir/attack/grinch128_test.cpp.o" "gcc" "tests/CMakeFiles/attack_tests.dir/attack/grinch128_test.cpp.o.d"
  "/root/repo/tests/attack/grinch_test.cpp" "tests/CMakeFiles/attack_tests.dir/attack/grinch_test.cpp.o" "gcc" "tests/CMakeFiles/attack_tests.dir/attack/grinch_test.cpp.o.d"
  "/root/repo/tests/attack/key_recovery_test.cpp" "tests/CMakeFiles/attack_tests.dir/attack/key_recovery_test.cpp.o" "gcc" "tests/CMakeFiles/attack_tests.dir/attack/key_recovery_test.cpp.o.d"
  "/root/repo/tests/attack/plaintext_crafter_test.cpp" "tests/CMakeFiles/attack_tests.dir/attack/plaintext_crafter_test.cpp.o" "gcc" "tests/CMakeFiles/attack_tests.dir/attack/plaintext_crafter_test.cpp.o.d"
  "/root/repo/tests/attack/predictor_test.cpp" "tests/CMakeFiles/attack_tests.dir/attack/predictor_test.cpp.o" "gcc" "tests/CMakeFiles/attack_tests.dir/attack/predictor_test.cpp.o.d"
  "/root/repo/tests/attack/present_attack_test.cpp" "tests/CMakeFiles/attack_tests.dir/attack/present_attack_test.cpp.o" "gcc" "tests/CMakeFiles/attack_tests.dir/attack/present_attack_test.cpp.o.d"
  "/root/repo/tests/attack/target_bits_test.cpp" "tests/CMakeFiles/attack_tests.dir/attack/target_bits_test.cpp.o" "gcc" "tests/CMakeFiles/attack_tests.dir/attack/target_bits_test.cpp.o.d"
  "/root/repo/tests/attack/time_driven_test.cpp" "tests/CMakeFiles/attack_tests.dir/attack/time_driven_test.cpp.o" "gcc" "tests/CMakeFiles/attack_tests.dir/attack/time_driven_test.cpp.o.d"
  "/root/repo/tests/attack/trace_driven_test.cpp" "tests/CMakeFiles/attack_tests.dir/attack/trace_driven_test.cpp.o" "gcc" "tests/CMakeFiles/attack_tests.dir/attack/trace_driven_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/grinch_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/present/CMakeFiles/grinch_present.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/grinch_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/gift/CMakeFiles/grinch_gift.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/grinch_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/grinch_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/grinch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
