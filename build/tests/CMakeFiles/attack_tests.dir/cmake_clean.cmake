file(REMOVE_RECURSE
  "CMakeFiles/attack_tests.dir/attack/attack_config_test.cpp.o"
  "CMakeFiles/attack_tests.dir/attack/attack_config_test.cpp.o.d"
  "CMakeFiles/attack_tests.dir/attack/cross_round_test.cpp.o"
  "CMakeFiles/attack_tests.dir/attack/cross_round_test.cpp.o.d"
  "CMakeFiles/attack_tests.dir/attack/eliminator_test.cpp.o"
  "CMakeFiles/attack_tests.dir/attack/eliminator_test.cpp.o.d"
  "CMakeFiles/attack_tests.dir/attack/grinch128_test.cpp.o"
  "CMakeFiles/attack_tests.dir/attack/grinch128_test.cpp.o.d"
  "CMakeFiles/attack_tests.dir/attack/grinch_test.cpp.o"
  "CMakeFiles/attack_tests.dir/attack/grinch_test.cpp.o.d"
  "CMakeFiles/attack_tests.dir/attack/key_recovery_test.cpp.o"
  "CMakeFiles/attack_tests.dir/attack/key_recovery_test.cpp.o.d"
  "CMakeFiles/attack_tests.dir/attack/plaintext_crafter_test.cpp.o"
  "CMakeFiles/attack_tests.dir/attack/plaintext_crafter_test.cpp.o.d"
  "CMakeFiles/attack_tests.dir/attack/predictor_test.cpp.o"
  "CMakeFiles/attack_tests.dir/attack/predictor_test.cpp.o.d"
  "CMakeFiles/attack_tests.dir/attack/present_attack_test.cpp.o"
  "CMakeFiles/attack_tests.dir/attack/present_attack_test.cpp.o.d"
  "CMakeFiles/attack_tests.dir/attack/target_bits_test.cpp.o"
  "CMakeFiles/attack_tests.dir/attack/target_bits_test.cpp.o.d"
  "CMakeFiles/attack_tests.dir/attack/time_driven_test.cpp.o"
  "CMakeFiles/attack_tests.dir/attack/time_driven_test.cpp.o.d"
  "CMakeFiles/attack_tests.dir/attack/trace_driven_test.cpp.o"
  "CMakeFiles/attack_tests.dir/attack/trace_driven_test.cpp.o.d"
  "attack_tests"
  "attack_tests.pdb"
  "attack_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
