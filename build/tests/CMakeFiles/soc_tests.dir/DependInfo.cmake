
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/soc/hierarchy_platform_test.cpp" "tests/CMakeFiles/soc_tests.dir/soc/hierarchy_platform_test.cpp.o" "gcc" "tests/CMakeFiles/soc_tests.dir/soc/hierarchy_platform_test.cpp.o.d"
  "/root/repo/tests/soc/platform_test.cpp" "tests/CMakeFiles/soc_tests.dir/soc/platform_test.cpp.o" "gcc" "tests/CMakeFiles/soc_tests.dir/soc/platform_test.cpp.o.d"
  "/root/repo/tests/soc/precision_noise_test.cpp" "tests/CMakeFiles/soc_tests.dir/soc/precision_noise_test.cpp.o" "gcc" "tests/CMakeFiles/soc_tests.dir/soc/precision_noise_test.cpp.o.d"
  "/root/repo/tests/soc/prober_test.cpp" "tests/CMakeFiles/soc_tests.dir/soc/prober_test.cpp.o" "gcc" "tests/CMakeFiles/soc_tests.dir/soc/prober_test.cpp.o.d"
  "/root/repo/tests/soc/scheduler_test.cpp" "tests/CMakeFiles/soc_tests.dir/soc/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/soc_tests.dir/soc/scheduler_test.cpp.o.d"
  "/root/repo/tests/soc/victim_test.cpp" "tests/CMakeFiles/soc_tests.dir/soc/victim_test.cpp.o" "gcc" "tests/CMakeFiles/soc_tests.dir/soc/victim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soc/CMakeFiles/grinch_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/grinch_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/grinch_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/present/CMakeFiles/grinch_present.dir/DependInfo.cmake"
  "/root/repo/build/src/gift/CMakeFiles/grinch_gift.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/grinch_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/grinch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
