# Empty compiler generated dependencies file for soc_tests.
# This may be replaced when dependencies are built.
