file(REMOVE_RECURSE
  "CMakeFiles/soc_tests.dir/soc/hierarchy_platform_test.cpp.o"
  "CMakeFiles/soc_tests.dir/soc/hierarchy_platform_test.cpp.o.d"
  "CMakeFiles/soc_tests.dir/soc/platform_test.cpp.o"
  "CMakeFiles/soc_tests.dir/soc/platform_test.cpp.o.d"
  "CMakeFiles/soc_tests.dir/soc/precision_noise_test.cpp.o"
  "CMakeFiles/soc_tests.dir/soc/precision_noise_test.cpp.o.d"
  "CMakeFiles/soc_tests.dir/soc/prober_test.cpp.o"
  "CMakeFiles/soc_tests.dir/soc/prober_test.cpp.o.d"
  "CMakeFiles/soc_tests.dir/soc/scheduler_test.cpp.o"
  "CMakeFiles/soc_tests.dir/soc/scheduler_test.cpp.o.d"
  "CMakeFiles/soc_tests.dir/soc/victim_test.cpp.o"
  "CMakeFiles/soc_tests.dir/soc/victim_test.cpp.o.d"
  "soc_tests"
  "soc_tests.pdb"
  "soc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
