# Empty compiler generated dependencies file for cachesim_tests.
# This may be replaced when dependencies are built.
