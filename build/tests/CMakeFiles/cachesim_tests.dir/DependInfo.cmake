
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cachesim/cache_test.cpp" "tests/CMakeFiles/cachesim_tests.dir/cachesim/cache_test.cpp.o" "gcc" "tests/CMakeFiles/cachesim_tests.dir/cachesim/cache_test.cpp.o.d"
  "/root/repo/tests/cachesim/hierarchy_test.cpp" "tests/CMakeFiles/cachesim_tests.dir/cachesim/hierarchy_test.cpp.o" "gcc" "tests/CMakeFiles/cachesim_tests.dir/cachesim/hierarchy_test.cpp.o.d"
  "/root/repo/tests/cachesim/prefetch_test.cpp" "tests/CMakeFiles/cachesim_tests.dir/cachesim/prefetch_test.cpp.o" "gcc" "tests/CMakeFiles/cachesim_tests.dir/cachesim/prefetch_test.cpp.o.d"
  "/root/repo/tests/cachesim/reference_model_test.cpp" "tests/CMakeFiles/cachesim_tests.dir/cachesim/reference_model_test.cpp.o" "gcc" "tests/CMakeFiles/cachesim_tests.dir/cachesim/reference_model_test.cpp.o.d"
  "/root/repo/tests/cachesim/replacement_test.cpp" "tests/CMakeFiles/cachesim_tests.dir/cachesim/replacement_test.cpp.o" "gcc" "tests/CMakeFiles/cachesim_tests.dir/cachesim/replacement_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cachesim/CMakeFiles/grinch_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/grinch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
