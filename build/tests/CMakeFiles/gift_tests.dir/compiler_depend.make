# Empty compiler generated dependencies file for gift_tests.
# This may be replaced when dependencies are built.
