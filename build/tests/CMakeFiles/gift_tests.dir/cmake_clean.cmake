file(REMOVE_RECURSE
  "CMakeFiles/gift_tests.dir/gift/bitslice_test.cpp.o"
  "CMakeFiles/gift_tests.dir/gift/bitslice_test.cpp.o.d"
  "CMakeFiles/gift_tests.dir/gift/constants_test.cpp.o"
  "CMakeFiles/gift_tests.dir/gift/constants_test.cpp.o.d"
  "CMakeFiles/gift_tests.dir/gift/gift128_test.cpp.o"
  "CMakeFiles/gift_tests.dir/gift/gift128_test.cpp.o.d"
  "CMakeFiles/gift_tests.dir/gift/gift64_test.cpp.o"
  "CMakeFiles/gift_tests.dir/gift/gift64_test.cpp.o.d"
  "CMakeFiles/gift_tests.dir/gift/key_schedule_test.cpp.o"
  "CMakeFiles/gift_tests.dir/gift/key_schedule_test.cpp.o.d"
  "CMakeFiles/gift_tests.dir/gift/permutation_test.cpp.o"
  "CMakeFiles/gift_tests.dir/gift/permutation_test.cpp.o.d"
  "CMakeFiles/gift_tests.dir/gift/sbox_crypto_test.cpp.o"
  "CMakeFiles/gift_tests.dir/gift/sbox_crypto_test.cpp.o.d"
  "CMakeFiles/gift_tests.dir/gift/sbox_test.cpp.o"
  "CMakeFiles/gift_tests.dir/gift/sbox_test.cpp.o.d"
  "CMakeFiles/gift_tests.dir/gift/table_gift128_test.cpp.o"
  "CMakeFiles/gift_tests.dir/gift/table_gift128_test.cpp.o.d"
  "CMakeFiles/gift_tests.dir/gift/table_gift_test.cpp.o"
  "CMakeFiles/gift_tests.dir/gift/table_gift_test.cpp.o.d"
  "gift_tests"
  "gift_tests.pdb"
  "gift_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gift_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
