
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gift/bitslice_test.cpp" "tests/CMakeFiles/gift_tests.dir/gift/bitslice_test.cpp.o" "gcc" "tests/CMakeFiles/gift_tests.dir/gift/bitslice_test.cpp.o.d"
  "/root/repo/tests/gift/constants_test.cpp" "tests/CMakeFiles/gift_tests.dir/gift/constants_test.cpp.o" "gcc" "tests/CMakeFiles/gift_tests.dir/gift/constants_test.cpp.o.d"
  "/root/repo/tests/gift/gift128_test.cpp" "tests/CMakeFiles/gift_tests.dir/gift/gift128_test.cpp.o" "gcc" "tests/CMakeFiles/gift_tests.dir/gift/gift128_test.cpp.o.d"
  "/root/repo/tests/gift/gift64_test.cpp" "tests/CMakeFiles/gift_tests.dir/gift/gift64_test.cpp.o" "gcc" "tests/CMakeFiles/gift_tests.dir/gift/gift64_test.cpp.o.d"
  "/root/repo/tests/gift/key_schedule_test.cpp" "tests/CMakeFiles/gift_tests.dir/gift/key_schedule_test.cpp.o" "gcc" "tests/CMakeFiles/gift_tests.dir/gift/key_schedule_test.cpp.o.d"
  "/root/repo/tests/gift/permutation_test.cpp" "tests/CMakeFiles/gift_tests.dir/gift/permutation_test.cpp.o" "gcc" "tests/CMakeFiles/gift_tests.dir/gift/permutation_test.cpp.o.d"
  "/root/repo/tests/gift/sbox_crypto_test.cpp" "tests/CMakeFiles/gift_tests.dir/gift/sbox_crypto_test.cpp.o" "gcc" "tests/CMakeFiles/gift_tests.dir/gift/sbox_crypto_test.cpp.o.d"
  "/root/repo/tests/gift/sbox_test.cpp" "tests/CMakeFiles/gift_tests.dir/gift/sbox_test.cpp.o" "gcc" "tests/CMakeFiles/gift_tests.dir/gift/sbox_test.cpp.o.d"
  "/root/repo/tests/gift/table_gift128_test.cpp" "tests/CMakeFiles/gift_tests.dir/gift/table_gift128_test.cpp.o" "gcc" "tests/CMakeFiles/gift_tests.dir/gift/table_gift128_test.cpp.o.d"
  "/root/repo/tests/gift/table_gift_test.cpp" "tests/CMakeFiles/gift_tests.dir/gift/table_gift_test.cpp.o" "gcc" "tests/CMakeFiles/gift_tests.dir/gift/table_gift_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gift/CMakeFiles/grinch_gift.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/grinch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
