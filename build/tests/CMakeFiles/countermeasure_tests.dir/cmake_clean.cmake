file(REMOVE_RECURSE
  "CMakeFiles/countermeasure_tests.dir/countermeasures/evaluator_test.cpp.o"
  "CMakeFiles/countermeasure_tests.dir/countermeasures/evaluator_test.cpp.o.d"
  "CMakeFiles/countermeasure_tests.dir/countermeasures/hardened_schedule_test.cpp.o"
  "CMakeFiles/countermeasure_tests.dir/countermeasures/hardened_schedule_test.cpp.o.d"
  "CMakeFiles/countermeasure_tests.dir/countermeasures/packed_sbox_test.cpp.o"
  "CMakeFiles/countermeasure_tests.dir/countermeasures/packed_sbox_test.cpp.o.d"
  "countermeasure_tests"
  "countermeasure_tests.pdb"
  "countermeasure_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/countermeasure_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
