# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/gift_tests[1]_include.cmake")
include("/root/repo/build/tests/present_tests[1]_include.cmake")
include("/root/repo/build/tests/cachesim_tests[1]_include.cmake")
include("/root/repo/build/tests/noc_tests[1]_include.cmake")
include("/root/repo/build/tests/soc_tests[1]_include.cmake")
include("/root/repo/build/tests/countermeasure_tests[1]_include.cmake")
include("/root/repo/build/tests/attack_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
