file(REMOVE_RECURSE
  "CMakeFiles/grinch_cli.dir/grinch_cli.cpp.o"
  "CMakeFiles/grinch_cli.dir/grinch_cli.cpp.o.d"
  "grinch"
  "grinch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grinch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
