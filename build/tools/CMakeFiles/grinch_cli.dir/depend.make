# Empty dependencies file for grinch_cli.
# This may be replaced when dependencies are built.
