file(REMOVE_RECURSE
  "libgrinch_common.a"
)
