file(REMOVE_RECURSE
  "CMakeFiles/grinch_common.dir/bits.cpp.o"
  "CMakeFiles/grinch_common.dir/bits.cpp.o.d"
  "CMakeFiles/grinch_common.dir/hex.cpp.o"
  "CMakeFiles/grinch_common.dir/hex.cpp.o.d"
  "CMakeFiles/grinch_common.dir/logging.cpp.o"
  "CMakeFiles/grinch_common.dir/logging.cpp.o.d"
  "CMakeFiles/grinch_common.dir/rng.cpp.o"
  "CMakeFiles/grinch_common.dir/rng.cpp.o.d"
  "CMakeFiles/grinch_common.dir/stats.cpp.o"
  "CMakeFiles/grinch_common.dir/stats.cpp.o.d"
  "CMakeFiles/grinch_common.dir/table.cpp.o"
  "CMakeFiles/grinch_common.dir/table.cpp.o.d"
  "libgrinch_common.a"
  "libgrinch_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grinch_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
