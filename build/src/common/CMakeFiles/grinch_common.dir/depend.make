# Empty dependencies file for grinch_common.
# This may be replaced when dependencies are built.
