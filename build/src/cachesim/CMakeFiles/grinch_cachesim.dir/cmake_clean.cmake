file(REMOVE_RECURSE
  "CMakeFiles/grinch_cachesim.dir/cache.cpp.o"
  "CMakeFiles/grinch_cachesim.dir/cache.cpp.o.d"
  "CMakeFiles/grinch_cachesim.dir/config.cpp.o"
  "CMakeFiles/grinch_cachesim.dir/config.cpp.o.d"
  "CMakeFiles/grinch_cachesim.dir/hierarchy.cpp.o"
  "CMakeFiles/grinch_cachesim.dir/hierarchy.cpp.o.d"
  "CMakeFiles/grinch_cachesim.dir/replacement.cpp.o"
  "CMakeFiles/grinch_cachesim.dir/replacement.cpp.o.d"
  "libgrinch_cachesim.a"
  "libgrinch_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grinch_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
