file(REMOVE_RECURSE
  "libgrinch_cachesim.a"
)
