# Empty compiler generated dependencies file for grinch_cachesim.
# This may be replaced when dependencies are built.
