file(REMOVE_RECURSE
  "libgrinch_present.a"
)
