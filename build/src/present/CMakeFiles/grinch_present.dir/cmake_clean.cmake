file(REMOVE_RECURSE
  "CMakeFiles/grinch_present.dir/present.cpp.o"
  "CMakeFiles/grinch_present.dir/present.cpp.o.d"
  "CMakeFiles/grinch_present.dir/table_present.cpp.o"
  "CMakeFiles/grinch_present.dir/table_present.cpp.o.d"
  "libgrinch_present.a"
  "libgrinch_present.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grinch_present.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
