# Empty compiler generated dependencies file for grinch_present.
# This may be replaced when dependencies are built.
