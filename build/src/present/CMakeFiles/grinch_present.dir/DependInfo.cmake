
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/present/present.cpp" "src/present/CMakeFiles/grinch_present.dir/present.cpp.o" "gcc" "src/present/CMakeFiles/grinch_present.dir/present.cpp.o.d"
  "/root/repo/src/present/table_present.cpp" "src/present/CMakeFiles/grinch_present.dir/table_present.cpp.o" "gcc" "src/present/CMakeFiles/grinch_present.dir/table_present.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/grinch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gift/CMakeFiles/grinch_gift.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
