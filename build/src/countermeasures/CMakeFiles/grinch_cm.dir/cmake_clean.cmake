file(REMOVE_RECURSE
  "CMakeFiles/grinch_cm.dir/evaluator.cpp.o"
  "CMakeFiles/grinch_cm.dir/evaluator.cpp.o.d"
  "CMakeFiles/grinch_cm.dir/hardened_schedule.cpp.o"
  "CMakeFiles/grinch_cm.dir/hardened_schedule.cpp.o.d"
  "CMakeFiles/grinch_cm.dir/packed_sbox.cpp.o"
  "CMakeFiles/grinch_cm.dir/packed_sbox.cpp.o.d"
  "libgrinch_cm.a"
  "libgrinch_cm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grinch_cm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
