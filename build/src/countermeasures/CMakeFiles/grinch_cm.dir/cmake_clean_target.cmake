file(REMOVE_RECURSE
  "libgrinch_cm.a"
)
