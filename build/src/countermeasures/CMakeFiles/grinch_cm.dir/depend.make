# Empty dependencies file for grinch_cm.
# This may be replaced when dependencies are built.
