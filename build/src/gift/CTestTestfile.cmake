# CMake generated Testfile for 
# Source directory: /root/repo/src/gift
# Build directory: /root/repo/build/src/gift
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
