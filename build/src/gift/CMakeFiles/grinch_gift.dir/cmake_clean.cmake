file(REMOVE_RECURSE
  "CMakeFiles/grinch_gift.dir/bitslice.cpp.o"
  "CMakeFiles/grinch_gift.dir/bitslice.cpp.o.d"
  "CMakeFiles/grinch_gift.dir/constants.cpp.o"
  "CMakeFiles/grinch_gift.dir/constants.cpp.o.d"
  "CMakeFiles/grinch_gift.dir/gift128.cpp.o"
  "CMakeFiles/grinch_gift.dir/gift128.cpp.o.d"
  "CMakeFiles/grinch_gift.dir/gift64.cpp.o"
  "CMakeFiles/grinch_gift.dir/gift64.cpp.o.d"
  "CMakeFiles/grinch_gift.dir/key_schedule.cpp.o"
  "CMakeFiles/grinch_gift.dir/key_schedule.cpp.o.d"
  "CMakeFiles/grinch_gift.dir/permutation.cpp.o"
  "CMakeFiles/grinch_gift.dir/permutation.cpp.o.d"
  "CMakeFiles/grinch_gift.dir/sbox.cpp.o"
  "CMakeFiles/grinch_gift.dir/sbox.cpp.o.d"
  "CMakeFiles/grinch_gift.dir/table_gift.cpp.o"
  "CMakeFiles/grinch_gift.dir/table_gift.cpp.o.d"
  "CMakeFiles/grinch_gift.dir/table_gift128.cpp.o"
  "CMakeFiles/grinch_gift.dir/table_gift128.cpp.o.d"
  "libgrinch_gift.a"
  "libgrinch_gift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grinch_gift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
