# Empty dependencies file for grinch_gift.
# This may be replaced when dependencies are built.
