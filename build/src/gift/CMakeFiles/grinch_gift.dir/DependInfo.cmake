
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gift/bitslice.cpp" "src/gift/CMakeFiles/grinch_gift.dir/bitslice.cpp.o" "gcc" "src/gift/CMakeFiles/grinch_gift.dir/bitslice.cpp.o.d"
  "/root/repo/src/gift/constants.cpp" "src/gift/CMakeFiles/grinch_gift.dir/constants.cpp.o" "gcc" "src/gift/CMakeFiles/grinch_gift.dir/constants.cpp.o.d"
  "/root/repo/src/gift/gift128.cpp" "src/gift/CMakeFiles/grinch_gift.dir/gift128.cpp.o" "gcc" "src/gift/CMakeFiles/grinch_gift.dir/gift128.cpp.o.d"
  "/root/repo/src/gift/gift64.cpp" "src/gift/CMakeFiles/grinch_gift.dir/gift64.cpp.o" "gcc" "src/gift/CMakeFiles/grinch_gift.dir/gift64.cpp.o.d"
  "/root/repo/src/gift/key_schedule.cpp" "src/gift/CMakeFiles/grinch_gift.dir/key_schedule.cpp.o" "gcc" "src/gift/CMakeFiles/grinch_gift.dir/key_schedule.cpp.o.d"
  "/root/repo/src/gift/permutation.cpp" "src/gift/CMakeFiles/grinch_gift.dir/permutation.cpp.o" "gcc" "src/gift/CMakeFiles/grinch_gift.dir/permutation.cpp.o.d"
  "/root/repo/src/gift/sbox.cpp" "src/gift/CMakeFiles/grinch_gift.dir/sbox.cpp.o" "gcc" "src/gift/CMakeFiles/grinch_gift.dir/sbox.cpp.o.d"
  "/root/repo/src/gift/table_gift.cpp" "src/gift/CMakeFiles/grinch_gift.dir/table_gift.cpp.o" "gcc" "src/gift/CMakeFiles/grinch_gift.dir/table_gift.cpp.o.d"
  "/root/repo/src/gift/table_gift128.cpp" "src/gift/CMakeFiles/grinch_gift.dir/table_gift128.cpp.o" "gcc" "src/gift/CMakeFiles/grinch_gift.dir/table_gift128.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/grinch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
