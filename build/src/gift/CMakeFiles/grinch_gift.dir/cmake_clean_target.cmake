file(REMOVE_RECURSE
  "libgrinch_gift.a"
)
