
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/gift128_platform.cpp" "src/soc/CMakeFiles/grinch_soc.dir/gift128_platform.cpp.o" "gcc" "src/soc/CMakeFiles/grinch_soc.dir/gift128_platform.cpp.o.d"
  "/root/repo/src/soc/hierarchy_platform.cpp" "src/soc/CMakeFiles/grinch_soc.dir/hierarchy_platform.cpp.o" "gcc" "src/soc/CMakeFiles/grinch_soc.dir/hierarchy_platform.cpp.o.d"
  "/root/repo/src/soc/platform.cpp" "src/soc/CMakeFiles/grinch_soc.dir/platform.cpp.o" "gcc" "src/soc/CMakeFiles/grinch_soc.dir/platform.cpp.o.d"
  "/root/repo/src/soc/present_platform.cpp" "src/soc/CMakeFiles/grinch_soc.dir/present_platform.cpp.o" "gcc" "src/soc/CMakeFiles/grinch_soc.dir/present_platform.cpp.o.d"
  "/root/repo/src/soc/prober.cpp" "src/soc/CMakeFiles/grinch_soc.dir/prober.cpp.o" "gcc" "src/soc/CMakeFiles/grinch_soc.dir/prober.cpp.o.d"
  "/root/repo/src/soc/scheduler.cpp" "src/soc/CMakeFiles/grinch_soc.dir/scheduler.cpp.o" "gcc" "src/soc/CMakeFiles/grinch_soc.dir/scheduler.cpp.o.d"
  "/root/repo/src/soc/victim.cpp" "src/soc/CMakeFiles/grinch_soc.dir/victim.cpp.o" "gcc" "src/soc/CMakeFiles/grinch_soc.dir/victim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/grinch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gift/CMakeFiles/grinch_gift.dir/DependInfo.cmake"
  "/root/repo/build/src/present/CMakeFiles/grinch_present.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/grinch_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/grinch_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
