file(REMOVE_RECURSE
  "libgrinch_soc.a"
)
