file(REMOVE_RECURSE
  "CMakeFiles/grinch_soc.dir/gift128_platform.cpp.o"
  "CMakeFiles/grinch_soc.dir/gift128_platform.cpp.o.d"
  "CMakeFiles/grinch_soc.dir/hierarchy_platform.cpp.o"
  "CMakeFiles/grinch_soc.dir/hierarchy_platform.cpp.o.d"
  "CMakeFiles/grinch_soc.dir/platform.cpp.o"
  "CMakeFiles/grinch_soc.dir/platform.cpp.o.d"
  "CMakeFiles/grinch_soc.dir/present_platform.cpp.o"
  "CMakeFiles/grinch_soc.dir/present_platform.cpp.o.d"
  "CMakeFiles/grinch_soc.dir/prober.cpp.o"
  "CMakeFiles/grinch_soc.dir/prober.cpp.o.d"
  "CMakeFiles/grinch_soc.dir/scheduler.cpp.o"
  "CMakeFiles/grinch_soc.dir/scheduler.cpp.o.d"
  "CMakeFiles/grinch_soc.dir/victim.cpp.o"
  "CMakeFiles/grinch_soc.dir/victim.cpp.o.d"
  "libgrinch_soc.a"
  "libgrinch_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grinch_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
