# Empty compiler generated dependencies file for grinch_soc.
# This may be replaced when dependencies are built.
