file(REMOVE_RECURSE
  "CMakeFiles/grinch_attack.dir/cross_round.cpp.o"
  "CMakeFiles/grinch_attack.dir/cross_round.cpp.o.d"
  "CMakeFiles/grinch_attack.dir/eliminator.cpp.o"
  "CMakeFiles/grinch_attack.dir/eliminator.cpp.o.d"
  "CMakeFiles/grinch_attack.dir/grinch.cpp.o"
  "CMakeFiles/grinch_attack.dir/grinch.cpp.o.d"
  "CMakeFiles/grinch_attack.dir/grinch128.cpp.o"
  "CMakeFiles/grinch_attack.dir/grinch128.cpp.o.d"
  "CMakeFiles/grinch_attack.dir/key_recovery.cpp.o"
  "CMakeFiles/grinch_attack.dir/key_recovery.cpp.o.d"
  "CMakeFiles/grinch_attack.dir/plaintext_crafter.cpp.o"
  "CMakeFiles/grinch_attack.dir/plaintext_crafter.cpp.o.d"
  "CMakeFiles/grinch_attack.dir/predictor.cpp.o"
  "CMakeFiles/grinch_attack.dir/predictor.cpp.o.d"
  "CMakeFiles/grinch_attack.dir/present_attack.cpp.o"
  "CMakeFiles/grinch_attack.dir/present_attack.cpp.o.d"
  "CMakeFiles/grinch_attack.dir/target_bits.cpp.o"
  "CMakeFiles/grinch_attack.dir/target_bits.cpp.o.d"
  "CMakeFiles/grinch_attack.dir/time_driven.cpp.o"
  "CMakeFiles/grinch_attack.dir/time_driven.cpp.o.d"
  "CMakeFiles/grinch_attack.dir/trace_driven.cpp.o"
  "CMakeFiles/grinch_attack.dir/trace_driven.cpp.o.d"
  "libgrinch_attack.a"
  "libgrinch_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grinch_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
