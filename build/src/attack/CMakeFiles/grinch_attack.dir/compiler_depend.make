# Empty compiler generated dependencies file for grinch_attack.
# This may be replaced when dependencies are built.
