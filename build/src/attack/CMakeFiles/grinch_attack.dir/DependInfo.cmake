
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/cross_round.cpp" "src/attack/CMakeFiles/grinch_attack.dir/cross_round.cpp.o" "gcc" "src/attack/CMakeFiles/grinch_attack.dir/cross_round.cpp.o.d"
  "/root/repo/src/attack/eliminator.cpp" "src/attack/CMakeFiles/grinch_attack.dir/eliminator.cpp.o" "gcc" "src/attack/CMakeFiles/grinch_attack.dir/eliminator.cpp.o.d"
  "/root/repo/src/attack/grinch.cpp" "src/attack/CMakeFiles/grinch_attack.dir/grinch.cpp.o" "gcc" "src/attack/CMakeFiles/grinch_attack.dir/grinch.cpp.o.d"
  "/root/repo/src/attack/grinch128.cpp" "src/attack/CMakeFiles/grinch_attack.dir/grinch128.cpp.o" "gcc" "src/attack/CMakeFiles/grinch_attack.dir/grinch128.cpp.o.d"
  "/root/repo/src/attack/key_recovery.cpp" "src/attack/CMakeFiles/grinch_attack.dir/key_recovery.cpp.o" "gcc" "src/attack/CMakeFiles/grinch_attack.dir/key_recovery.cpp.o.d"
  "/root/repo/src/attack/plaintext_crafter.cpp" "src/attack/CMakeFiles/grinch_attack.dir/plaintext_crafter.cpp.o" "gcc" "src/attack/CMakeFiles/grinch_attack.dir/plaintext_crafter.cpp.o.d"
  "/root/repo/src/attack/predictor.cpp" "src/attack/CMakeFiles/grinch_attack.dir/predictor.cpp.o" "gcc" "src/attack/CMakeFiles/grinch_attack.dir/predictor.cpp.o.d"
  "/root/repo/src/attack/present_attack.cpp" "src/attack/CMakeFiles/grinch_attack.dir/present_attack.cpp.o" "gcc" "src/attack/CMakeFiles/grinch_attack.dir/present_attack.cpp.o.d"
  "/root/repo/src/attack/target_bits.cpp" "src/attack/CMakeFiles/grinch_attack.dir/target_bits.cpp.o" "gcc" "src/attack/CMakeFiles/grinch_attack.dir/target_bits.cpp.o.d"
  "/root/repo/src/attack/time_driven.cpp" "src/attack/CMakeFiles/grinch_attack.dir/time_driven.cpp.o" "gcc" "src/attack/CMakeFiles/grinch_attack.dir/time_driven.cpp.o.d"
  "/root/repo/src/attack/trace_driven.cpp" "src/attack/CMakeFiles/grinch_attack.dir/trace_driven.cpp.o" "gcc" "src/attack/CMakeFiles/grinch_attack.dir/trace_driven.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/grinch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gift/CMakeFiles/grinch_gift.dir/DependInfo.cmake"
  "/root/repo/build/src/present/CMakeFiles/grinch_present.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/grinch_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/grinch_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/grinch_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
