file(REMOVE_RECURSE
  "libgrinch_attack.a"
)
