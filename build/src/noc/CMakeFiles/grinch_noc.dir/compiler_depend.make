# Empty compiler generated dependencies file for grinch_noc.
# This may be replaced when dependencies are built.
