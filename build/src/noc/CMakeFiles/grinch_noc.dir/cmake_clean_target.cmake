file(REMOVE_RECURSE
  "libgrinch_noc.a"
)
