file(REMOVE_RECURSE
  "CMakeFiles/grinch_noc.dir/network.cpp.o"
  "CMakeFiles/grinch_noc.dir/network.cpp.o.d"
  "CMakeFiles/grinch_noc.dir/routing.cpp.o"
  "CMakeFiles/grinch_noc.dir/routing.cpp.o.d"
  "CMakeFiles/grinch_noc.dir/topology.cpp.o"
  "CMakeFiles/grinch_noc.dir/topology.cpp.o.d"
  "libgrinch_noc.a"
  "libgrinch_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grinch_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
