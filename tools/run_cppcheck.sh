#!/usr/bin/env sh
# Static-analyzes src/ with cppcheck (second analyzer next to clang-tidy:
# different engine, different findings — cppcheck does whole-program value
# flow the tidy checks don't attempt).
#
#   tools/run_cppcheck.sh [build-dir] [extra cppcheck args...]
#
# Uses the configured build dir's compile_commands.json when present so
# include paths and defines match the real build; falls back to a plain
# recursive run over src/ otherwise.  Exits nonzero on findings or when
# cppcheck is unavailable; pair with GRINCH_CPPCHECK_OPTIONAL=1 to
# tolerate a missing binary on dev boxes.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

CPPCHECK=${CPPCHECK:-cppcheck}
if ! command -v "$CPPCHECK" >/dev/null 2>&1; then
  if [ "${GRINCH_CPPCHECK_OPTIONAL:-0}" = "1" ]; then
    echo "run_cppcheck: $CPPCHECK not found; skipping" \
         "(GRINCH_CPPCHECK_OPTIONAL=1)" >&2
    exit 0
  fi
  echo "run_cppcheck: $CPPCHECK not found" \
       "(set CPPCHECK or GRINCH_CPPCHECK_OPTIONAL=1)" >&2
  exit 2
fi

# Gate on the conservative profile: definite errors and warnings only.
# style/performance are clang-tidy's turf (readability-*, performance-*);
# missingIncludeSystem and unmatchedSuppression are configuration noise.
# The unusedFunction check is suppressed because libraries legitimately
# export API surface the analyzed TU set does not call (examples/tests
# are out of scope here), and checkersReport because the report summary
# line is not a finding.
common_args="--std=c++20 --language=c++ \
  --enable=warning,portability \
  --inline-suppr \
  --suppress=missingIncludeSystem \
  --suppress=unmatchedSuppression \
  --suppress=checkersReport \
  --error-exitcode=1 --quiet"

if [ -f "$build_dir/compile_commands.json" ]; then
  # cppcheck understands compile_commands.json directly; restrict to src/
  # so gtest/benchmark TUs don't dominate the run.
  # shellcheck disable=SC2086  # word-splitting of the flag list is intended
  "$CPPCHECK" $common_args \
    --project="$build_dir/compile_commands.json" \
    --file-filter="$repo_root/src/*" "$@"
else
  # shellcheck disable=SC2086
  "$CPPCHECK" $common_args -I "$repo_root/src" "$repo_root/src" "$@"
fi
echo "run_cppcheck: clean"
