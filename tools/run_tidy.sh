#!/usr/bin/env sh
# Lints src/ with clang-tidy using the repo's .clang-tidy profile.
#
#   tools/run_tidy.sh [build-dir] [extra clang-tidy args...]
#
# Needs a configured build directory with compile_commands.json (the root
# CMakeLists exports it unconditionally):
#
#   cmake -B build -S .
#   tools/run_tidy.sh build
#
# Exits nonzero on lint findings or when clang-tidy is unavailable, so CI
# can gate on it; pair with GRINCH_TIDY_OPTIONAL=1 to tolerate a missing
# binary on dev boxes that only carry gcc.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY" >/dev/null 2>&1; then
  if [ "${GRINCH_TIDY_OPTIONAL:-0}" = "1" ]; then
    echo "run_tidy: $TIDY not found; skipping (GRINCH_TIDY_OPTIONAL=1)" >&2
    exit 0
  fi
  echo "run_tidy: $TIDY not found (set CLANG_TIDY or GRINCH_TIDY_OPTIONAL=1)" >&2
  exit 2
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_tidy: $build_dir/compile_commands.json missing;" \
       "configure first: cmake -B $build_dir -S $repo_root" >&2
  exit 2
fi

# Lint every translation unit under src/ (tests and benches follow the
# same config when opted in explicitly).
find "$repo_root/src" -name '*.cpp' -print | sort | \
  xargs "$TIDY" -p "$build_dir" --quiet "$@"
echo "run_tidy: clean"
