// leakcheck — static secret-dependence analyzer for the cipher
// implementations in this repository.
//
//   leakcheck                       # analyze every registered target
//   leakcheck --target gift64-table # analyze one target
//   leakcheck --list                # list targets and expectations
//   leakcheck --json                # machine-readable reports
//   leakcheck --verbose             # per-segment taint detail
//   leakcheck --trials N            # dynamic oracle key pairs (default 16)
//   leakcheck --rounds N            # attacked rounds to quantify
//   leakcheck --static-only         # skip the dynamic oracle
//   leakcheck --seed S              # dynamic oracle RNG seed
//
// Quantitative subcommand (pass 3, analysis/quantify.h):
//
//   leakcheck quantify                    # quantify every target + budget gate
//   leakcheck quantify --target NAME      # one target
//   leakcheck quantify --json             # machine-readable reports
//   leakcheck quantify --verbose          # per-segment / per-line detail
//   leakcheck quantify --rounds N         # attacked rounds to quantify
//   leakcheck quantify --samples N        # sampled-pass key draws (0 = off)
//   leakcheck quantify --sample-seed S    # sampled-pass RNG seed
//   leakcheck quantify --no-sampled       # skip the dynamic sampled pass
//   leakcheck quantify --no-gate          # report only; ignore budgets
//   leakcheck quantify --expect-sbox-bits X   # override the declared budget
//   leakcheck quantify --expect-perm-bits X   # (the CI drift negative test)
//
// Exit status: 0 when every analyzed target matches its registered
// expectation AND the static and dynamic passes agree (for quantify: every
// measured leak matches its declared budget and stays under the taint
// bound); 1 otherwise; 2 on usage errors.  CI runs this over all targets
// so reintroducing a secret-dependent lookup into a protected
// implementation — or silently changing how much one leaks — fails the
// build.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/leakcheck.h"
#include "analysis/quantify.h"

using namespace grinch;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: leakcheck [--target NAME] [--list] [--json] "
               "[--verbose]\n"
               "                 [--trials N] [--rounds N] [--seed S] "
               "[--static-only]\n");
  return 2;
}

int list_targets() {
  for (const analysis::AnalysisTarget& t : analysis::builtin_targets()) {
    std::printf("%-28s expect %-9s %s\n", t.name.c_str(),
                t.expect_leaky ? "LEAKY" : "leak-free",
                t.description.c_str());
  }
  return 0;
}

int quantify_usage() {
  std::fprintf(stderr,
               "usage: leakcheck quantify [--target NAME] [--json] "
               "[--verbose]\n"
               "                 [--rounds N] [--samples N] [--sample-seed S]"
               "\n"
               "                 [--no-sampled] [--no-gate]\n"
               "                 [--expect-sbox-bits X] "
               "[--expect-perm-bits X]\n");
  return 2;
}

int quantify_main(int argc, char** argv) {
  std::string target_name;
  bool json = false;
  bool verbose = false;
  bool gate = true;
  bool have_expect_sbox = false;
  bool have_expect_perm = false;
  double expect_sbox = 0.0;
  double expect_perm = 0.0;
  analysis::QuantifyConfig cfg;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "leakcheck: %s needs a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--no-gate") {
      gate = false;
    } else if (arg == "--no-sampled") {
      cfg.run_sampled = false;
    } else if (arg == "--target") {
      const char* v = value();
      if (v == nullptr) return quantify_usage();
      target_name = v;
    } else if (arg == "--rounds") {
      const char* v = value();
      if (v == nullptr) return quantify_usage();
      cfg.rounds = static_cast<unsigned>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--samples") {
      const char* v = value();
      if (v == nullptr) return quantify_usage();
      cfg.sample_budget =
          static_cast<unsigned>(std::strtoul(v, nullptr, 0));
      if (cfg.sample_budget == 0) cfg.run_sampled = false;
    } else if (arg == "--sample-seed") {
      const char* v = value();
      if (v == nullptr) return quantify_usage();
      cfg.sample_seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--expect-sbox-bits") {
      const char* v = value();
      if (v == nullptr) return quantify_usage();
      expect_sbox = std::strtod(v, nullptr);
      have_expect_sbox = true;
    } else if (arg == "--expect-perm-bits") {
      const char* v = value();
      if (v == nullptr) return quantify_usage();
      expect_perm = std::strtod(v, nullptr);
      have_expect_perm = true;
    } else {
      return quantify_usage();
    }
  }
  // The overrides exist to *inject* drift (the CI gate's negative test):
  // they replace the declared budget of every selected target, so they
  // only make sense for a single one.
  if ((have_expect_sbox || have_expect_perm) && target_name.empty()) {
    std::fprintf(stderr,
                 "leakcheck: --expect-*-bits needs --target NAME\n");
    return quantify_usage();
  }

  std::vector<analysis::AnalysisTarget> targets =
      analysis::builtin_targets();
  std::vector<analysis::QuantifyReport> reports;
  if (target_name.empty()) {
    reports = analysis::quantify_all(cfg);
  } else {
    const analysis::AnalysisTarget* target =
        analysis::find_target(targets, target_name);
    if (target == nullptr) {
      std::fprintf(stderr, "leakcheck: unknown target '%s' (try --list)\n",
                   target_name.c_str());
      return 2;
    }
    analysis::QuantifyReport report = analysis::quantify(*target, cfg);
    if (have_expect_sbox) report.budget_sbox_bits = expect_sbox;
    if (have_expect_perm) report.budget_perm_bits = expect_perm;
    reports.push_back(std::move(report));
  }

  bool ok = true;
  for (const analysis::QuantifyReport& r : reports) {
    ok = ok && (gate ? r.ok() : r.within_taint_bound());
  }

  if (json) {
    std::printf("%s\n", analysis::quantify_reports_to_json(reports).c_str());
  } else {
    for (const analysis::QuantifyReport& r : reports) {
      std::printf("%s\n", r.to_text(verbose).c_str());
    }
    std::printf("leakcheck quantify: %zu target(s), %s\n", reports.size(),
                ok ? (gate ? "all within declared leakage budgets"
                           : "all within taint bounds (gate off)")
                   : "BUDGET DRIFT or taint-bound violation");
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "quantify") == 0) {
    return quantify_main(argc - 2, argv + 2);
  }

  std::string target_name;
  bool json = false;
  bool verbose = false;
  analysis::LeakcheckConfig cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Missing flag values are usage errors, not inputs: "" would strtoul
    // to 0 and silently turn e.g. `--trials` into a 0-trial oracle whose
    // vacuous "equivalent" verdict misreports leaky targets.
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "leakcheck: %s needs a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list") return list_targets();
    if (arg == "--json") {
      json = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--static-only") {
      cfg.run_dynamic = false;
    } else if (arg == "--target") {
      const char* v = value();
      if (v == nullptr) return usage();
      target_name = v;
    } else if (arg == "--trials") {
      const char* v = value();
      if (v == nullptr) return usage();
      cfg.diff.trials = static_cast<unsigned>(std::strtoul(v, nullptr, 0));
      if (cfg.diff.trials == 0) {
        std::fprintf(stderr,
                     "leakcheck: --trials must be >= 1 "
                     "(use --static-only to skip the oracle)\n");
        return usage();
      }
    } else if (arg == "--rounds") {
      const char* v = value();
      if (v == nullptr) return usage();
      cfg.analysis_rounds =
          static_cast<unsigned>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return usage();
      cfg.diff.seed = std::strtoull(v, nullptr, 0);
    } else {
      return usage();
    }
  }

  // An explicit --rounds bounds *both* passes: leaving the oracle at the
  // target's default trace depth would compare different windows and
  // always report a static/dynamic inconsistency.
  if (cfg.analysis_rounds != 0 && cfg.diff.rounds == 0) {
    cfg.diff.rounds = cfg.analysis_rounds;
  }

  std::vector<analysis::LeakReport> reports;
  if (target_name.empty()) {
    reports = analysis::analyze_all(cfg);
  } else {
    const std::vector<analysis::AnalysisTarget> targets =
        analysis::builtin_targets();
    const analysis::AnalysisTarget* target =
        analysis::find_target(targets, target_name);
    if (target == nullptr) {
      std::fprintf(stderr, "leakcheck: unknown target '%s' (try --list)\n",
                   target_name.c_str());
      return 2;
    }
    reports.push_back(analysis::analyze(*target, cfg));
  }

  bool ok = true;
  for (const analysis::LeakReport& r : reports) {
    ok = ok && r.as_expected();
  }

  if (json) {
    std::printf("%s\n", analysis::reports_to_json(reports).c_str());
  } else {
    for (const analysis::LeakReport& r : reports) {
      std::printf("%s\n", r.to_text(verbose).c_str());
    }
    std::printf("leakcheck: %zu target(s), %s\n", reports.size(),
                ok ? "all verdicts as expected"
                   : "UNEXPECTED verdicts or static/dynamic disagreement");
  }
  return ok ? 0 : 1;
}
