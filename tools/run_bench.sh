#!/usr/bin/env bash
# Runs every bench binary in --quick mode with --json output and
# aggregates the per-bench documents into one BENCH_quick.json — the
# machine-readable perf/results trajectory of the repo (CI uploads it per
# PR; compare two artifacts to see what a change did to every table).
#
# Usage: tools/run_bench.sh [extra bench args...]
#   BUILD_DIR  build tree holding bench/ binaries   (default: build)
#   OUT_DIR    where to put the JSON + stdout logs  (default: $BUILD_DIR/bench-results)
#
# Extra args are forwarded to every bench, e.g. `tools/run_bench.sh
# --threads 2` pins the trial parallelism.  Aggregation is plain shell —
# no jq/python dependency.
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-$BUILD_DIR/bench-results}"
BENCH_DIR="$BUILD_DIR/bench"

BENCHES=(
  fig3_probing_round
  table1_cache_line
  table2_platforms
  full_key_recovery
  countermeasures
  ablation_probe_method
  ablation_cache_policy
  ablation_probe_precision
  ablation_prefetch
  leakage_profile
  extension_gift128
  extension_present
  extension_time_driven
  robustness_sweep
  leakage_quantify
  campaign_throughput
  micro_throughput
)

# JSON document name for a bench binary (BENCH_<name>.json).  The
# robustness sweep's document is named for the property it tracks, not the
# binary, matching the committed baseline BENCH_robustness.json.
doc_name() {
  case "$1" in
    robustness_sweep) echo "robustness" ;;
    leakage_quantify) echo "leakage" ;;
    campaign_throughput) echo "campaign" ;;
    *) echo "$1" ;;
  esac
}

if [ ! -d "$BENCH_DIR" ]; then
  echo "run_bench: $BENCH_DIR not found — build first (cmake --build $BUILD_DIR)" >&2
  exit 1
fi
mkdir -p "$OUT_DIR"

for b in "${BENCHES[@]}"; do
  echo "[run_bench] $b" >&2
  "$BENCH_DIR/$b" --quick --json "$OUT_DIR/BENCH_$(doc_name "$b").json" "$@" \
    > "$OUT_DIR/$b.out"
done

# Aggregate into {"benches": [<doc>, <doc>, ...]}.  Inter-document commas
# land on their own line; JSON does not mind the whitespace.
AGG="$OUT_DIR/BENCH_quick.json"
{
  printf '{\n"benches": [\n'
  first=1
  for b in "${BENCHES[@]}"; do
    if [ "$first" -eq 1 ]; then first=0; else printf ',\n'; fi
    cat "$OUT_DIR/BENCH_$(doc_name "$b").json"
  done
  printf ']\n}\n'
} > "$AGG"

echo "[run_bench] aggregated ${#BENCHES[@]} documents into $AGG" >&2
