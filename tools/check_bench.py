#!/usr/bin/env python3
"""Compare fresh bench output against the committed BENCH_*.json baselines.

For every BENCH_<name>.json at the repo root this looks up the fresh
counterpart produced by tools/run_bench.sh (build/bench-results/ by
default) and reports what changed:

  * google-benchmark documents (micro_throughput): per-benchmark cpu_time
    ratio against the baseline.  A benchmark slower than --threshold
    (default 1.5x) is flagged; new/removed benchmarks are listed.
  * repo-format documents ("tables"/"metrics"): deterministic content
    (tables, config, non-timing metrics) must match byte for byte —
    these are fixed-seed results, so any drift is a correctness signal,
    not noise.  Timing metrics (keys ending in `_seconds`) are ignored.

Exit status is 0 unless --strict is given: CI runs this as a non-fatal
warning step (quick-mode timings on shared runners are noisy), while a
local `--strict` run turns any flag into a failure.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

TIMING_SUFFIXES = ("_seconds", "_sec")


def load(path: pathlib.Path):
    with path.open() as f:
        return json.load(f)


def is_google_benchmark(doc) -> bool:
    return isinstance(doc, dict) and "benchmarks" in doc and "context" in doc


def strip_timing(value):
    """Recursively drops timing metrics from a repo-format document."""
    if isinstance(value, dict):
        return {
            k: strip_timing(v)
            for k, v in value.items()
            if not k.endswith(TIMING_SUFFIXES)
        }
    if isinstance(value, list):
        return [strip_timing(v) for v in value]
    return value


def compare_google_benchmark(name, baseline, fresh, threshold):
    warnings = []
    base_times = {
        b["name"]: float(b["cpu_time"])
        for b in baseline.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }
    fresh_times = {
        b["name"]: float(b["cpu_time"])
        for b in fresh.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }
    for bench, base_ns in sorted(base_times.items()):
        if bench not in fresh_times:
            warnings.append(f"{name}: benchmark '{bench}' missing from fresh run")
            continue
        ratio = fresh_times[bench] / base_ns if base_ns > 0 else float("inf")
        marker = "REGRESSION" if ratio > threshold else "ok"
        line = (
            f"{name}: {bench}: {base_ns:.1f} -> {fresh_times[bench]:.1f} ns "
            f"({ratio:.2f}x) {marker}"
        )
        print(f"  {line}")
        if ratio > threshold:
            warnings.append(line)
    for bench in sorted(set(fresh_times) - set(base_times)):
        print(f"  {name}: new benchmark '{bench}' (no baseline)")
    return warnings


def compare_repo_format(name, baseline, fresh):
    # The "run" section is execution metadata (thread count, wall time),
    # not results: documents are byte-identical for any --threads value,
    # so the comparison must not depend on where the baseline was made.
    baseline = {k: v for k, v in baseline.items() if k != "run"}
    fresh = {k: v for k, v in fresh.items() if k != "run"}
    if strip_timing(baseline) == strip_timing(fresh):
        print(f"  {name}: deterministic results identical")
        return []
    return [f"{name}: deterministic results differ from committed baseline"]


def summarize_robustness(name, fresh):
    """Extra checks for BENCH_robustness.json (the fault-channel sweep).

    On top of the byte-for-byte determinism comparison, validate the
    document's robustness invariants so a drifting baseline is diagnosed,
    not just flagged: every cipher must recover through the moderate mixed
    profile, every saturating partial result must keep the true candidates
    in its surviving masks, and the residual finisher must escalate every
    saturating partial into a verified full-key recovery within its wall
    budget (the ML ordering puts the truth at the front, so a slow or
    failing finisher is an evidence/enumeration bug, not noise).
    """
    FINISHER_WALL_BUDGET = 10.0  # seconds, mean per finisher-run trial

    warnings = []
    for cipher, cells in fresh.get("metrics", {}).items():
        if not isinstance(cells, dict) or cipher.endswith("_residual_vs_wall"):
            continue
        moderate = cells.get("moderate", {})
        if moderate and moderate.get("verified") != moderate.get("trials"):
            warnings.append(
                f"{name}: {cipher}: moderate profile verified "
                f"{moderate.get('verified')}/{moderate.get('trials')}"
            )
        saturating = cells.get("saturating", {})
        if saturating and saturating.get(
            "partial_truth_contained"
        ) != saturating.get("partial"):
            warnings.append(
                f"{name}: {cipher}: saturating partial results lost true "
                f"candidates ({saturating.get('partial_truth_contained')}/"
                f"{saturating.get('partial')} contained)"
            )
        if saturating and saturating.get("finished") != saturating.get(
            "trials"
        ):
            warnings.append(
                f"{name}: {cipher}: saturating profile finisher recovered "
                f"{saturating.get('finished')}/{saturating.get('trials')}"
            )
        wall = saturating.get("mean_finisher_wall_seconds")
        if wall is not None and wall > FINISHER_WALL_BUDGET:
            warnings.append(
                f"{name}: {cipher}: saturating finisher mean wall time "
                f"{wall:.2f}s exceeds the {FINISHER_WALL_BUDGET:.0f}s budget"
            )
        line = (
            f"{cipher}: moderate {moderate.get('verified', '?')}/"
            f"{moderate.get('trials', '?')} verified, saturating "
            f"{saturating.get('partial_truth_contained', '?')}/"
            f"{saturating.get('partial', '?')} truth-containing partials, "
            f"finisher {saturating.get('finished', '?')}/"
            f"{saturating.get('trials', '?')} recovered"
        )
        print(f"  {line}")
    return warnings


def summarize_leakage(name, fresh):
    """Extra checks for BENCH_leakage.json (the quantified-leakage table).

    The document's invariants are theorems about the analysis, so a
    violation is a bug in the engine (or a silently weakened
    countermeasure), never noise:

      * the taint pass's bound is sound: measured <= bound per channel;
      * every target matches its declared leakage budget;
      * the packed-S-Box countermeasure strictly beats the table baseline
        on the S-Box channel (the paper's Table I claim, quantified).
    """
    warnings = []
    metrics = fresh.get("metrics", {})
    targets = {k: v for k, v in metrics.items() if isinstance(v, dict)}
    for target, m in sorted(targets.items()):
        eps = 1e-9
        if m.get("sbox_bits", 0.0) > m.get("taint_sbox_bound", 0.0) + eps:
            warnings.append(
                f"{name}: {target}: measured S-Box bits "
                f"{m.get('sbox_bits')} exceed taint bound "
                f"{m.get('taint_sbox_bound')}"
            )
        if m.get("perm_bits", 0.0) > m.get("taint_perm_bound", 0.0) + eps:
            warnings.append(
                f"{name}: {target}: measured PermBits bits "
                f"{m.get('perm_bits')} exceed taint bound "
                f"{m.get('taint_perm_bound')}"
            )
        if not m.get("budget_ok", False):
            warnings.append(
                f"{name}: {target}: measured bits drifted from declared "
                f"budget ({m.get('sbox_bits')}/{m.get('budget_sbox_bits')} "
                f"sbox, {m.get('perm_bits')}/{m.get('budget_perm_bits')} perm)"
            )
        print(
            f"  {target}: sbox {m.get('sbox_bits', '?')} <= "
            f"{m.get('taint_sbox_bound', '?')}, perm "
            f"{m.get('perm_bits', '?')} <= {m.get('taint_perm_bound', '?')}, "
            f"budget {'ok' if m.get('budget_ok') else 'DRIFT'}"
        )
    baseline_bits = targets.get("gift64-table", {}).get("sbox_bits")
    for packed in ("gift64-packed-sbox", "gift64-packed-sbox-lut-perm"):
        packed_bits = targets.get(packed, {}).get("sbox_bits")
        if baseline_bits is None or packed_bits is None:
            warnings.append(f"{name}: missing {packed} or gift64-table metrics")
        elif not packed_bits < baseline_bits:
            warnings.append(
                f"{name}: {packed} S-Box leak ({packed_bits}) not strictly "
                f"below the table baseline ({baseline_bits})"
            )
    if not metrics.get("all_within_budget", False):
        warnings.append(f"{name}: document reports budget drift")
    return warnings


def summarize_wide_path(name, fresh):
    """Extra checks for BENCH_micro_throughput.json (the wide path).

    Asserts that the transposed lockstep transport pays for itself on the
    machine that produced the document (so a committed baseline compared
    against itself must pass too):

      * BM_ObserveBatch/64 routes through observe_wide; its
        per-observation cpu_time must not exceed the scalar
        observe_batch path's (BM_ObserveBatch/16);
      * when the document was produced with the avx2 probe kernel (the
        context records which), BM_ObserveBatch/64 must stay at or below
        the SIMD budget of 450 ns per observation;
      * the per-kernel micro-benches (BM_ProbeKernel/<kernel>,
        BM_Transpose64/<kernel>): a vectorized kernel (swar/avx2) more
        than 1.5x slower than generic means the dispatch is actively
        hurting — a correctness signal for the kernel layer, not noise;
      * BM_WideRecovery at width 64 must keep >= 0.75x linear scaling:
        per-trial time within 1/0.75 of the width-1 lane loop.
    """
    warnings = []
    times = {
        b["name"]: float(b["cpu_time"])
        for b in fresh.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }
    kernel = fresh.get("context", {}).get("kernel", "")

    wide = times.get("BM_ObserveBatch/64")
    scalar = times.get("BM_ObserveBatch/16")
    if wide is None or scalar is None:
        warnings.append(
            f"{name}: missing BM_ObserveBatch/16 or /64 (wide-path gate)"
        )
    else:
        per_wide, per_scalar = wide / 64, scalar / 16
        marker = "ok" if per_wide <= per_scalar else "REGRESSION"
        print(
            f"  wide observe: {per_wide:.1f} ns/obs (observe_wide) vs "
            f"{per_scalar:.1f} ns/obs (scalar) {marker}"
        )
        if per_wide > per_scalar:
            warnings.append(
                f"{name}: observe_wide per-observation time ({per_wide:.1f} "
                f"ns) exceeds the scalar path ({per_scalar:.1f} ns)"
            )
        if kernel == "avx2":
            budget = 450.0
            marker = "ok" if per_wide <= budget else "REGRESSION"
            print(
                f"  avx2 wide budget: {per_wide:.1f} ns/obs "
                f"(budget {budget:.0f}) {marker}"
            )
            if per_wide > budget:
                warnings.append(
                    f"{name}: observe_wide with the avx2 kernel "
                    f"({per_wide:.1f} ns/obs) exceeds the {budget:.0f} ns "
                    f"budget"
                )

    for family in ("BM_ProbeKernel", "BM_Transpose64"):
        generic = times.get(f"{family}/generic")
        if generic is None:
            warnings.append(f"{name}: missing {family}/generic (kernel gate)")
            continue
        for simd in ("swar", "avx2"):
            simd_ns = times.get(f"{family}/{simd}")
            if simd_ns is None:
                continue  # kernel not available on this machine
            ratio = simd_ns / generic if generic > 0 else float("inf")
            marker = "ok" if ratio <= 1.5 else "REGRESSION"
            print(
                f"  {family}: {simd} {simd_ns:.1f} ns vs generic "
                f"{generic:.1f} ns ({ratio:.2f}x) {marker}"
            )
            if ratio > 1.5:
                warnings.append(
                    f"{name}: {family}/{simd} ({simd_ns:.1f} ns) is "
                    f"{ratio:.2f}x generic ({generic:.1f} ns) — vectorized "
                    f"kernel slower than the scalar reference"
                )

    w1 = times.get("BM_WideRecovery/1")
    w64 = times.get("BM_WideRecovery/64")
    if w1 is None or w64 is None:
        warnings.append(
            f"{name}: missing BM_WideRecovery/1 or /64 (wide-path gate)"
        )
    else:
        limit = w1 / 0.75
        marker = "ok" if w64 <= limit else "REGRESSION"
        print(
            f"  wide recovery: width 64 {w64:.2f} vs width 1 {w1:.2f} "
            f"per 64 trials (>= 0.75x linear limit {limit:.2f}) {marker}"
        )
        if w64 > limit:
            warnings.append(
                f"{name}: BM_WideRecovery/64 ({w64:.2f}) scales worse than "
                f"0.75x linear against width 1 ({w1:.2f})"
            )
    return warnings


def summarize_campaign(name, fresh):
    """Extra checks for BENCH_campaign.json (the campaign orchestrator).

    Asserts the orchestrator is effectively free on the machine that
    produced the document (so a committed baseline compared against
    itself must pass too):

      * campaign wall-clock within 5% of the direct ShardPlan dispatch
        over the identical trial grid;
      * both paths verified every trial and agree with each other (same
        pre-derived seeds, so any split is a determinism bug);
      * the results CRC is present — it pins every result byte of the
        campaign's JSONL stream across thread counts and resumes.
    """
    warnings = []
    metrics = fresh.get("metrics", {})
    timing = fresh.get("timing", {})

    direct = timing.get("direct_seconds")
    campaign = timing.get("campaign_seconds")
    if direct is None or campaign is None:
        warnings.append(f"{name}: missing direct/campaign timing (gate)")
    elif float(direct) > 0.0:
        ratio = float(campaign) / float(direct)
        marker = "ok" if ratio <= 1.05 else "REGRESSION"
        print(
            f"  orchestration: campaign {float(campaign):.3f}s vs direct "
            f"{float(direct):.3f}s ({ratio:.3f}x, budget 1.05x) {marker}"
        )
        if ratio > 1.05:
            warnings.append(
                f"{name}: campaign path {ratio:.3f}x slower than direct "
                f"dispatch (budget 1.05x)"
            )

    trials = metrics.get("trials")
    for key in ("verified_direct", "verified_campaign"):
        if metrics.get(key) != trials:
            warnings.append(
                f"{name}: {key} ({metrics.get(key)}) != trials ({trials})"
            )
    if not metrics.get("paths_agree", False):
        warnings.append(f"{name}: direct and campaign paths disagree")
    if not metrics.get("results_crc"):
        warnings.append(f"{name}: missing results_crc metric")
    else:
        print(
            f"  results: {trials} trials, crc32 {metrics['results_crc']} "
            f"({metrics.get('shards', '?')} shards)"
        )
    return warnings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results",
        default="build/bench-results",
        help="directory holding fresh BENCH_<name>.json documents",
    )
    parser.add_argument(
        "--baseline-dir",
        default=str(pathlib.Path(__file__).resolve().parent.parent),
        help="directory holding committed BENCH_<name>.json baselines",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="flag google-benchmark entries slower than this ratio",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when anything is flagged",
    )
    args = parser.parse_args()

    baseline_dir = pathlib.Path(args.baseline_dir)
    results_dir = pathlib.Path(args.results)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"check_bench: no BENCH_*.json baselines in {baseline_dir}")
        return 0

    warnings = []
    for base_path in baselines:
        fresh_path = results_dir / base_path.name
        if not fresh_path.exists():
            warnings.append(f"{base_path.name}: no fresh result in {results_dir}")
            continue
        try:
            baseline = load(base_path)
            fresh = load(fresh_path)
        except (OSError, json.JSONDecodeError) as e:
            warnings.append(f"{base_path.name}: unreadable ({e})")
            continue
        print(f"[check_bench] {base_path.name}")
        if is_google_benchmark(baseline):
            warnings += compare_google_benchmark(
                base_path.name, baseline, fresh, args.threshold
            )
            if base_path.name == "BENCH_micro_throughput.json":
                warnings += summarize_wide_path(base_path.name, fresh)
        else:
            warnings += compare_repo_format(base_path.name, baseline, fresh)
            if base_path.name == "BENCH_robustness.json":
                warnings += summarize_robustness(base_path.name, fresh)
            if base_path.name == "BENCH_leakage.json":
                warnings += summarize_leakage(base_path.name, fresh)
            if base_path.name == "BENCH_campaign.json":
                warnings += summarize_campaign(base_path.name, fresh)

    if warnings:
        print(f"\ncheck_bench: {len(warnings)} warning(s):")
        for w in warnings:
            print(f"  WARNING: {w}")
        return 1 if args.strict else 0
    print("\ncheck_bench: all baselines within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
