// grinch — command-line front-end to the reproduction library.
//
//   grinch encrypt  --key <hex32> --pt <hex16> [--cipher gift64|gift128|present80]
//   grinch decrypt  --key <hex32> --ct <hex16> [--cipher ...]
//   grinch attack   [--key <hex32>] [--line-words N] [--probing-round K]
//                   [--no-flush] [--prime-probe] [--stages N]
//                   [--budget N] [--seed N] [--joint] [--precise]
//                   [--noise N] [--statistical]
//   grinch attack128 [--key <hex32>] [--budget N] [--seed N]
//
// The unified-engine commands (attack128, attack-present) also accept
//   --wide N       route observations through the 64-wide lockstep
//                  transport (target/wide_observe.h); N is clamped to
//                  [1, 64], 1 = scalar path (the default)
//   --finish       escalate a budget-exhausted partial into the residual
//                  maximum-likelihood key search (src/finisher/)
//   --finish-budget N   cap the finisher at N candidate keys (default 2^17)
//   --json PATH    write a machine-readable run report
//
//   grinch platforms              # Table II quick view
//   grinch countermeasures        # §IV-C quick view
//
//   grinch campaign run    [--spec FILE | spec flags] [--out PATH]
//                          [--checkpoint PATH] [--checkpoint-every N]
//                          [--threads N] [--progress]
//                          [--finish] [--finish-budget N]
//   grinch campaign resume --checkpoint PATH [--out PATH] [--threads N]
//   grinch campaign status --checkpoint PATH
//
// Campaign runs stream JSONL results and checkpoint periodically; SIGINT/
// SIGTERM drain in-flight shards and checkpoint before exit (exit code 3
// = interrupted, resumable).  See docs/CAMPAIGN.md.
//
// Exit code 0 on success (for `attack`: key recovered and verified).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "attack/grinch.h"
#include "cachesim/kernels/kernels.h"
#include "campaign/engine.h"
#include "campaign/sigint.h"
#include "campaign/spec.h"
#include "common/hex.h"
#include "common/rng.h"
#include "countermeasures/evaluator.h"
#include "gift/gift128.h"
#include "gift/gift64.h"
#include "present/present.h"
#include "soc/platform.h"
#include "target/registry.h"

using namespace grinch;

namespace {

struct Args {
  std::string command;
  std::vector<std::string> positionals;  ///< bare words after the command
  std::map<std::string, std::string> options;
  std::map<std::string, bool> flags;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::strtoull(it->second.c_str(),
                                                          nullptr, 0);
  }
  [[nodiscard]] bool has(const std::string& flag) const {
    return flags.count(flag) > 0;
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      args.positionals.push_back(a);  // e.g. `campaign run`
      continue;
    }
    a = a.substr(2);
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      args.options[a] = argv[++i];
    } else {
      args.flags[a] = true;
    }
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage: grinch <encrypt|decrypt|attack|attack128|"
               "attack-present|campaign|platforms|countermeasures>"
               " [options]\n"
               "run with a command to see its defaults; see README.md.\n");
  return 2;
}

Key128 key_from_args(const Args& args, Xoshiro256& rng) {
  Key128 key = rng.key128();
  const std::string hex = args.get("key", "");
  if (!hex.empty() && !Key128::from_hex(hex, key)) {
    std::fprintf(stderr, "bad --key (need 32 hex digits)\n");
    std::exit(2);
  }
  return key;
}

int cmd_crypt(const Args& args, bool encrypt) {
  Xoshiro256 rng{1};
  const Key128 key = key_from_args(args, rng);
  const std::string cipher = args.get("cipher", "gift64");
  const std::string block_hex =
      args.get(encrypt ? "pt" : "ct", encrypt ? "0000000000000000" : "");

  if (cipher == "gift128") {
    if (block_hex.size() != 32) {
      std::fprintf(stderr, "gift128 needs a 32-hex-digit block\n");
      return 2;
    }
    const gift::State128 in{parse_hex_u64(block_hex.substr(0, 16)).value(),
                            parse_hex_u64(block_hex.substr(16)).value()};
    const gift::State128 out = encrypt ? gift::Gift128::encrypt(in, key)
                                       : gift::Gift128::decrypt(in, key);
    std::printf("%s%s\n", to_hex_u64(out.hi).c_str(),
                to_hex_u64(out.lo).c_str());
    return 0;
  }

  const auto block = parse_hex_u64(block_hex);
  if (!block) {
    std::fprintf(stderr, "bad block (need up to 16 hex digits)\n");
    return 2;
  }
  std::uint64_t out;
  if (cipher == "present80") {
    out = encrypt ? present::Present80::encrypt(*block, key)
                  : present::Present80::decrypt(*block, key);
  } else {
    out = encrypt ? gift::Gift64::encrypt(*block, key)
                  : gift::Gift64::decrypt(*block, key);
  }
  std::printf("%s\n", to_hex_u64(out).c_str());
  return 0;
}

int cmd_attack(const Args& args) {
  Xoshiro256 rng{args.get_u64("seed", 0xC11)};
  const Key128 key = key_from_args(args, rng);

  soc::DirectProbePlatform::Config pcfg;
  pcfg.cache.line_bytes =
      static_cast<unsigned>(args.get_u64("line-words", 1));
  pcfg.probing_round =
      static_cast<unsigned>(args.get_u64("probing-round", 1));
  pcfg.use_flush = !args.has("no-flush");
  if (args.has("prime-probe")) pcfg.method = soc::ProbeMethod::kPrimeProbe;
  if (args.has("precise")) pcfg.precise_probe = true;
  pcfg.noise_accesses_per_round =
      static_cast<unsigned>(args.get_u64("noise", 0));
  soc::DirectProbePlatform platform{pcfg, key};

  attack::GrinchConfig acfg;
  acfg.stages = static_cast<unsigned>(args.get_u64("stages", 4));
  acfg.max_encryptions = args.get_u64("budget", 1000000);
  acfg.seed = args.get_u64("seed", 0xC11) ^ 0xA77AC4;
  acfg.exploit_all_segments = args.has("joint");
  acfg.statistical_elimination = args.has("statistical");
  attack::GrinchAttack attack{platform, acfg};
  const attack::AttackResult r = attack.run();

  std::printf("victim key:      %s\n", key.to_hex().c_str());
  std::printf("platform:        %s, probing round %u, %s, %s\n",
              pcfg.cache.describe().c_str(), pcfg.probing_round,
              pcfg.use_flush ? "flush" : "no flush",
              pcfg.method == soc::ProbeMethod::kPrimeProbe ? "Prime+Probe"
                                                           : "Flush+Reload");
  unsigned long long restarts = 0;
  for (std::size_t s = 0; s < r.stages.size(); ++s) {
    restarts += r.stages[s].noise_restarts;
    std::printf("stage %zu:         %s (%llu encryptions, %u restarts)\n", s,
                r.stages[s].success   ? "resolved"
                : r.stages[s].deferred ? "deferred"
                                       : "failed",
                static_cast<unsigned long long>(r.stages[s].encryptions),
                r.stages[s].noise_restarts);
  }
  std::printf("encryptions:     %llu\n",
              static_cast<unsigned long long>(r.total_encryptions));
  std::printf("noise restarts:  %llu\n", restarts);
  if (acfg.stages == 4 && r.success) {
    std::printf("recovered key:   %s\n", r.recovered_key.to_hex().c_str());
    std::printf("verified:        %s\n", r.key_verified ? "yes" : "no");
    std::printf("exact match:     %s\n",
                r.recovered_key == key ? "yes" : "NO");
    return r.recovered_key == key ? 0 : 1;
  }
  std::printf("result:          %s\n", r.success ? "success" : "FAILED");
  return r.success ? 0 : 1;
}

// Shared noisy-channel knobs of the unified-engine commands:
// --fault-profile clean|moderate|saturating injects channel faults
// (target/fault_model.h), --fault-seed reseeds them, --vote overrides the
// elimination threshold (defaults to the noisy preset when faults are on).
template <typename Config>
void apply_fault_args(const Args& args, Config& cfg) {
  cfg.faults = target::FaultProfile::named(args.get("fault-profile", "clean"));
  cfg.faults.seed = args.get_u64("fault-seed", cfg.faults.seed);
  const unsigned fallback =
      cfg.faults.any() ? Config::noisy_defaults().vote_threshold
                       : cfg.vote_threshold;
  cfg.vote_threshold = static_cast<unsigned>(args.get_u64("vote", fallback));
}

/// --wide N routes the engine's observation batches through the
/// transposed lockstep transport (Config::wide_width; the engine clamps
/// to [1, 64]; cache configurations without a lockstep fast path run the
/// same wide loop through per-lane scalar fallback lanes).
template <typename Config>
void apply_wide_args(const Args& args, Config& cfg) {
  cfg.wide_width = static_cast<unsigned>(args.get_u64("wide", cfg.wide_width));
}

/// --finish arms the residual finisher (finish mode reserves evidence and
/// known pairs, then a budget-exhausted run escalates into the ML search);
/// --finish-budget caps its candidate enumeration.  `--finish PATH`-style
/// accidental values still count as the flag (the parser folds a bare
/// `--finish` before another option into flags, but `--finish 1` into
/// options).
template <typename Config>
void apply_finish_args(const Args& args, Config& cfg) {
  cfg.finish_partials =
      args.has("finish") || args.options.count("finish") > 0;
  cfg.finish_max_candidates =
      args.get_u64("finish-budget", cfg.finish_max_candidates);
}

template <typename Config>
void print_engine_header(const Config& cfg) {
  std::printf("engine:        %s (wide width %u, kernel %s)\n",
              cfg.wide_width > 1 ? "wide lockstep" : "scalar",
              cfg.wide_width, cachesim::kernels::active().name);
}

/// Writes the machine-readable run report for --json PATH.  Every record
/// is self-describing: it names the fault profile and wide width that
/// produced it, so a report sliced out of a batch still says what ran.
template <typename Recovery>
void write_json_report(const std::string& path, const char* command,
                       const Key128& victim, const std::string& fault_profile,
                       unsigned wide_width,
                       const target::RecoveryResult<Recovery>& r) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write --json %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"command\": \"%s\",\n", command);
  std::fprintf(f, "  \"victim_key\": \"%s\",\n", victim.to_hex().c_str());
  std::fprintf(f, "  \"fault_profile\": \"%s\",\n", fault_profile.c_str());
  std::fprintf(f, "  \"wide_width\": %u,\n", wide_width);
  std::fprintf(f, "  \"kernel\": \"%s\",\n",
               cachesim::kernels::active().name);
  std::fprintf(f, "  \"success\": %s,\n", r.success ? "true" : "false");
  std::fprintf(f, "  \"exact_match\": %s,\n",
               r.success && r.recovered_key == victim ? "true" : "false");
  std::fprintf(f, "  \"recovered_key\": \"%s\",\n",
               r.success ? r.recovered_key.to_hex().c_str() : "");
  std::fprintf(f, "  \"total_encryptions\": %llu,\n",
               static_cast<unsigned long long>(r.total_encryptions));
  std::fprintf(f, "  \"noise_restarts\": %llu,\n",
               static_cast<unsigned long long>(r.noise_restarts));
  std::fprintf(f, "  \"dropped_observations\": %llu,\n",
               static_cast<unsigned long long>(r.dropped_observations));
  std::fprintf(f, "  \"verify_restarts\": %llu",
               static_cast<unsigned long long>(r.verify_restarts));
  if (r.failed_stage < Recovery::kStages) {
    std::fprintf(f, ",\n  \"failed_stage\": %u,\n", r.failed_stage);
    std::fprintf(f, "  \"surviving_masks\": [");
    for (unsigned s = 0; s < Recovery::kSegments; ++s) {
      std::fprintf(f, "%s%u", s == 0 ? "" : ",",
                   static_cast<unsigned>(r.surviving_masks[s]));
    }
    std::fprintf(f, "],\n");
    std::fprintf(f, "  \"residual_key_bits\": %.2f", r.residual_key_bits);
    if (r.finisher.outcome != finisher::FinisherOutcome::kNotRun) {
      // Unlike the campaign JSONL records (byte-compared on resume), the
      // CLI report is a one-off, so the wall time is fair game here.
      std::fprintf(f, ",\n  \"finisher_outcome\": \"%s\",\n",
                   finisher::finisher_outcome_name(r.finisher.outcome));
      std::fprintf(f, "  \"finisher_candidates\": %llu,\n",
                   static_cast<unsigned long long>(
                       r.finisher.candidates_tested));
      std::fprintf(f, "  \"finisher_rank\": %llu,\n",
                   static_cast<unsigned long long>(r.finisher.rank));
      std::fprintf(f, "  \"finisher_frontier\": %llu,\n",
                   static_cast<unsigned long long>(r.finisher.frontier_rank));
      std::fprintf(f, "  \"finisher_offline_trials\": %llu,\n",
                   static_cast<unsigned long long>(
                       r.finisher.offline_trials));
      std::fprintf(f, "  \"finisher_search_bits\": %.2f,\n",
                   r.finisher.search_space_bits);
      std::fprintf(f, "  \"finisher_wall_seconds\": %.6f",
                   r.finisher.wall_seconds);
    }
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
}

template <typename Recovery>
void print_noise_report(const target::RecoveryResult<Recovery>& r) {
  std::printf("noise restarts: %llu; dropped observations: %llu;"
              " verify restarts: %llu\n",
              static_cast<unsigned long long>(r.noise_restarts),
              static_cast<unsigned long long>(r.dropped_observations),
              static_cast<unsigned long long>(r.verify_restarts));
  if (r.failed_stage >= Recovery::kStages) return;
  std::printf("partial result: stage %u unresolved, %.1f residual key bits,"
              " surviving masks",
              r.failed_stage, r.residual_key_bits);
  for (unsigned s = 0; s < Recovery::kSegments; ++s) {
    std::printf(" %03x", r.surviving_masks[s]);
  }
  std::printf("\n");
  if (r.finisher.outcome == finisher::FinisherOutcome::kNotRun) return;
  std::printf("finisher:       %s (%llu of 2^%.1f candidates, rank %llu,"
              " frontier %llu, %.2fs)\n",
              finisher::finisher_outcome_name(r.finisher.outcome),
              static_cast<unsigned long long>(r.finisher.candidates_tested),
              r.finisher.search_space_bits,
              static_cast<unsigned long long>(r.finisher.rank),
              static_cast<unsigned long long>(r.finisher.frontier_rank),
              r.finisher.wall_seconds);
}

int cmd_attack128(const Args& args) {
  Xoshiro256 rng{args.get_u64("seed", 0xC128)};
  const Key128 key = key_from_args(args, rng);
  target::KeyRecoveryEngine<target::Gift128Recovery>::Config cfg;
  cfg.max_encryptions = args.get_u64("budget", 100000);
  cfg.seed = args.get_u64("seed", 0xC128) ^ 0x128;
  apply_fault_args(args, cfg);
  apply_wide_args(args, cfg);
  apply_finish_args(args, cfg);
  const auto r = target::recover_key<target::Gift128Recovery>(key, cfg);
  std::printf("victim key:    %s\n", key.to_hex().c_str());
  print_engine_header(cfg);
  std::printf("encryptions:   %llu (stages %llu + %llu)\n",
              static_cast<unsigned long long>(r.total_encryptions),
              static_cast<unsigned long long>(r.stage_encryptions[0]),
              static_cast<unsigned long long>(r.stage_encryptions[1]));
  print_noise_report(r);
  if (r.success) {
    std::printf("recovered key: %s\nexact match:   %s\n",
                r.recovered_key.to_hex().c_str(),
                r.recovered_key == key ? "yes" : "NO");
  } else {
    std::printf("result:        FAILED\n");
  }
  write_json_report(args.get("json", ""), "attack128", key,
                    args.get("fault-profile", "clean"), cfg.wide_width, r);
  return r.success && r.recovered_key == key ? 0 : 1;
}

int cmd_attack_present(const Args& args) {
  Xoshiro256 rng{args.get_u64("seed", 0xC80)};
  const Key128 key =
      target::Present80Recovery::canonical_key(key_from_args(args, rng));
  target::KeyRecoveryEngine<target::Present80Recovery>::Config cfg;
  cfg.max_encryptions = args.get_u64("budget", 100000);
  cfg.seed = args.get_u64("seed", 0xC80) ^ 0x80;
  apply_fault_args(args, cfg);
  apply_wide_args(args, cfg);
  apply_finish_args(args, cfg);
  const auto r = target::recover_key<target::Present80Recovery>(key, cfg);
  std::printf("victim key (80-bit): %s\n", key.to_hex().c_str());
  print_engine_header(cfg);
  std::printf("monitored encryptions: %llu; offline search: 2^16\n",
              static_cast<unsigned long long>(r.total_encryptions));
  print_noise_report(r);
  if (r.success) {
    std::printf("recovered key:       %s\nexact match:         %s\n",
                r.recovered_key.to_hex().c_str(),
                r.recovered_key == key ? "yes" : "NO");
  } else {
    std::printf("result: FAILED\n");
  }
  write_json_report(args.get("json", ""), "attack-present", key,
                    args.get("fault-profile", "clean"), cfg.wide_width, r);
  return r.success && r.recovered_key == key ? 0 : 1;
}

/// Reads a whole file into a string; false on open failure.
bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n = 0;
  out.clear();
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

/// Assembles a CampaignSpec from --spec FILE (if given) overlaid with any
/// inline spec flags; exits with a diagnostic on a bad spec.
campaign::CampaignSpec spec_from_args(const Args& args) {
  campaign::CampaignSpec spec;
  const std::string spec_path = args.get("spec", "");
  if (!spec_path.empty()) {
    std::string text;
    if (!read_file(spec_path, text)) {
      std::fprintf(stderr, "cannot read --spec %s\n", spec_path.c_str());
      std::exit(2);
    }
    std::string err;
    const auto parsed = campaign::CampaignSpec::parse(text, &err);
    if (!parsed) {
      std::fprintf(stderr, "%s: %s\n", spec_path.c_str(), err.c_str());
      std::exit(2);
    }
    spec = *parsed;
  }
  spec.name = args.get("name", spec.name);
  spec.cipher = args.get("cipher", spec.cipher);
  spec.trials = args.get_u64("trials", spec.trials);
  spec.seed = args.get_u64("seed", spec.seed);
  spec.fault_seed = args.get_u64("fault-seed", spec.fault_seed);
  spec.wide_width =
      static_cast<unsigned>(args.get_u64("wide", spec.wide_width));
  spec.budget = args.get_u64("budget", spec.budget);
  spec.fault_profile = args.get("fault-profile", spec.fault_profile);
  spec.vote_threshold =
      static_cast<unsigned>(args.get_u64("vote", spec.vote_threshold));
  if (args.has("finish") || args.options.count("finish") > 0) {
    spec.finish = true;
  }
  spec.finish_budget = args.get_u64("finish-budget", spec.finish_budget);
  spec.line_words =
      static_cast<unsigned>(args.get_u64("line-words", spec.line_words));
  spec.probing_round = static_cast<unsigned>(
      args.get_u64("probing-round", spec.probing_round));
  std::string err;
  if (!spec.validate(&err)) {
    std::fprintf(stderr, "bad campaign spec: %s\n", err.c_str());
    std::exit(2);
  }
  return spec;
}

void print_campaign_summary(const campaign::Outcome& out) {
  std::printf("shards:          %zu/%zu (%llu trials)\n", out.shards_done,
              out.shard_total,
              static_cast<unsigned long long>(out.trials_done));
  std::printf("verified:        %llu\n",
              static_cast<unsigned long long>(out.counters.verified));
  std::printf("partial:         %llu (finisher recovered %llu)\n",
              static_cast<unsigned long long>(out.counters.partial),
              static_cast<unsigned long long>(out.counters.finished));
  std::printf("encryptions:     %llu\n",
              static_cast<unsigned long long>(out.counters.total_encryptions));
  std::printf("noise restarts:  %llu; dropped: %llu; verify restarts: %llu\n",
              static_cast<unsigned long long>(out.counters.noise_restarts),
              static_cast<unsigned long long>(
                  out.counters.dropped_observations),
              static_cast<unsigned long long>(out.counters.verify_restarts));
}

int run_or_resume_campaign(const campaign::CampaignSpec& spec,
                           const Args& args, bool resume) {
  campaign::Options opts;
  opts.results_path = args.get("out", spec.name + ".jsonl");
  opts.checkpoint_path =
      args.get("checkpoint", opts.results_path + ".ckpt");
  opts.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  opts.checkpoint_every_shards =
      static_cast<std::size_t>(args.get_u64("checkpoint-every", 8));
  opts.progress = args.has("progress");
  opts.resume = resume;
  campaign::SigintHandler sigint;
  opts.stop = sigint.stop_flag();

  const campaign::Outcome out = campaign::run_campaign(spec, opts);
  if (!out.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", out.error.c_str());
    return 1;
  }
  std::printf("campaign:        %s (%s)\n", spec.name.c_str(),
              spec.cipher.c_str());
  std::printf("status:          %s\n",
              out.completed ? "completed" : "interrupted (resumable)");
  print_campaign_summary(out);
  if (out.interrupted) {
    std::printf("resume with:     grinch campaign resume --checkpoint %s"
                " --out %s\n",
                opts.checkpoint_path.c_str(), opts.results_path.c_str());
  }
  return out.completed ? 0 : 3;
}

int cmd_campaign(const Args& args) {
  const std::string sub =
      args.positionals.empty() ? "" : args.positionals.front();
  if (sub == "run") {
    return run_or_resume_campaign(spec_from_args(args), args, false);
  }
  if (sub == "resume" || sub == "status") {
    const std::string ckpt_path =
        args.get("checkpoint", args.positionals.size() > 1
                                   ? args.positionals[1]
                                   : "");
    if (ckpt_path.empty()) {
      std::fprintf(stderr, "campaign %s needs --checkpoint PATH\n",
                   sub.c_str());
      return 2;
    }
    std::string err;
    const auto ckpt = campaign::Checkpoint::load(ckpt_path, &err);
    if (!ckpt) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    const auto spec = campaign::CampaignSpec::parse(ckpt->spec, &err);
    if (!spec) {
      std::fprintf(stderr, "%s: embedded spec invalid: %s\n",
                   ckpt_path.c_str(), err.c_str());
      return 1;
    }
    if (sub == "status") {
      std::printf("campaign:        %s (%s)\n", spec->name.c_str(),
                  spec->cipher.c_str());
      std::printf("spec:            %s\n", ckpt->spec.c_str());
      std::printf("kernel:          %s\n", ckpt->kernel.c_str());
      campaign::Outcome out;
      out.shards_done = static_cast<std::size_t>(ckpt->flushed_shards);
      out.shard_total = static_cast<std::size_t>(ckpt->shard_total);
      out.trials_done = ckpt->flushed_trials;
      out.counters = ckpt->counters;
      print_campaign_summary(out);
      std::printf("results flushed: %llu bytes (crc32 %08x)\n",
                  static_cast<unsigned long long>(ckpt->result_bytes),
                  ckpt->result_crc);
      return 0;
    }
    Args resume_args = args;
    resume_args.options["checkpoint"] = ckpt_path;
    return run_or_resume_campaign(*spec, resume_args, true);
  }
  std::fprintf(stderr, "usage: grinch campaign <run|resume|status>"
                       " [options]; see docs/CAMPAIGN.md\n");
  return 2;
}

int cmd_platforms() {
  Xoshiro256 rng{2};
  const Key128 key = rng.key128();
  std::printf("platform              10MHz  25MHz  50MHz   (probed round)\n");
  std::printf("single-core SoC       ");
  for (double mhz : {10.0, 25.0, 50.0}) {
    soc::SingleCoreSoC::Config cfg;
    cfg.rtos.clock_mhz = mhz;
    soc::SingleCoreSoC soc{cfg, key};
    std::printf("%-7u", soc.first_probe_round());
  }
  std::printf("\nMPSoC (3x3 mesh)      ");
  for (double mhz : {10.0, 25.0, 50.0}) {
    soc::MpSoc::Config cfg;
    cfg.clock_mhz = mhz;
    soc::MpSoc soc{cfg, key};
    std::printf("%-7u", soc.first_probe_round());
  }
  std::printf("\n");
  return 0;
}

int cmd_countermeasures() {
  Xoshiro256 rng{3};
  for (const cm::EvaluationResult& r :
       cm::evaluate_all(rng.key128(), 20000, 9)) {
    std::printf("%-36s key retrieved: %-3s (%llu encryptions) — %s\n",
                cm::to_string(r.protection), r.key_retrieved ? "YES" : "no",
                static_cast<unsigned long long>(r.encryptions),
                r.note.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.command == "encrypt") return cmd_crypt(args, true);
  if (args.command == "decrypt") return cmd_crypt(args, false);
  if (args.command == "attack") return cmd_attack(args);
  if (args.command == "attack128") return cmd_attack128(args);
  if (args.command == "attack-present") return cmd_attack_present(args);
  if (args.command == "campaign") return cmd_campaign(args);
  if (args.command == "platforms") return cmd_platforms();
  if (args.command == "countermeasures") return cmd_countermeasures();
  return usage();
}
