// Ablation (ours): cache organisation beyond line size.
//
// The paper fixes a 16-way, 1024-line L1 and sweeps only the line size;
// its future work asks for "the effect of the memory hierarchy on the
// effectiveness of the attack".  This ablation sweeps the replacement
// policy and associativity at the paper's geometry, showing the attack is
// insensitive to both (the monitored working set is far below capacity),
// and then shrinks the cache until self-eviction noise appears.
#include <cstdio>

#include "bench_util.h"
#include "soc/hierarchy_platform.h"

using namespace grinch;

namespace {

EffortCell run_cell(const cachesim::CacheConfig& cache, unsigned trials,
                    std::uint64_t budget, std::uint64_t seed) {
  soc::DirectProbePlatform::Config pcfg;
  pcfg.cache = cache;
  return bench::first_round_cell(pcfg, trials, budget, seed);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const unsigned trials = quick ? 2 : 3;
  const std::uint64_t budget = 60000;

  std::printf("Ablation — replacement policy and associativity "
              "(first-round attack)\n\n");

  AsciiTable policy_table{"Replacement policy sweep (16-way, 64 sets)"};
  policy_table.set_header({"policy", "mean encryptions"});
  for (auto policy :
       {cachesim::Replacement::kLru, cachesim::Replacement::kFifo,
        cachesim::Replacement::kPlru, cachesim::Replacement::kRandom}) {
    cachesim::CacheConfig cache = cachesim::CacheConfig::paper_default();
    cache.replacement = policy;
    policy_table.add_row(
        {cachesim::to_string(policy),
         run_cell(cache, trials, budget,
                  0xCA0 + static_cast<std::uint64_t>(policy))
             .render()});
  }
  bench::print_table(policy_table);

  AsciiTable ways_table{"Associativity sweep (LRU, 1024 lines total)"};
  ways_table.set_header({"ways x sets", "mean encryptions"});
  for (unsigned ways : {1u, 2u, 4u, 8u, 16u}) {
    cachesim::CacheConfig cache = cachesim::CacheConfig::paper_default();
    cache.associativity = ways;
    cache.num_sets = 1024 / ways;
    ways_table.add_row({std::to_string(ways) + " x " +
                            std::to_string(cache.num_sets),
                        run_cell(cache, trials, budget, 0xCB0 + ways)
                            .render()});
  }
  bench::print_table(ways_table);

  AsciiTable size_table{"Cache size sweep (16-way, LRU)"};
  size_table.set_header({"total lines", "mean encryptions"});
  for (unsigned sets : {64u, 16u, 4u, 2u}) {
    cachesim::CacheConfig cache = cachesim::CacheConfig::paper_default();
    cache.num_sets = sets;
    size_table.add_row({std::to_string(cache.total_lines()),
                        run_cell(cache, trials, budget, 0xCC0 + sets)
                            .render()});
  }
  bench::print_table(size_table);

  // Memory hierarchy (§V future work): the attack through an L1+L2
  // hierarchy with both flush capabilities.
  AsciiTable hier_table{"Memory hierarchy sweep (first-round attack)"};
  hier_table.set_header({"configuration", "mean encryptions"});
  {
    Xoshiro256 rng{0xCD0};
    for (const auto& [label, cap, two_level] :
         {std::tuple{"flat shared L1 (paper)", soc::FlushCapability::kClflush,
                     false},
          std::tuple{"L1 + 4096-line L2, clflush",
                     soc::FlushCapability::kClflush, true},
          std::tuple{"L1 + 4096-line L2, L1-evict only",
                     soc::FlushCapability::kL1EvictOnly, true}}) {
      EffortCell cell{budget};
      for (unsigned t = 0; t < trials; ++t) {
        const Key128 key = rng.key128();
        soc::HierarchyPlatform::Config hcfg;
        hcfg.flush = cap;
        if (!two_level) hcfg.hierarchy.l2.reset();
        soc::HierarchyPlatform platform{hcfg, key};
        attack::GrinchConfig acfg;
        acfg.stages = 1;
        acfg.max_encryptions = budget;
        acfg.seed = rng.next();
        attack::GrinchAttack attack{platform, acfg};
        const attack::AttackResult r = attack.run();
        const gift::RoundKey64 truth = gift::extract_round_key64(key);
        if (r.success && r.round_keys.size() == 1 &&
            r.round_keys[0].u == truth.u && r.round_keys[0].v == truth.v) {
          cell.add_success(r.total_encryptions);
        } else {
          cell.add_dropout();
        }
      }
      hier_table.add_row({label, cell.render()});
    }
  }
  bench::print_table(hier_table);

  std::printf("Expected: policy/associativity barely matter at the paper's\n"
              "geometry; very small caches add self-eviction noise and raise\n"
              "the effort; a deeper hierarchy does not protect the victim —\n"
              "even an attacker without clflush (L1 eviction only) succeeds\n"
              "because L1-hit vs L2-hit latency is still distinguishable.\n");
  return 0;
}
