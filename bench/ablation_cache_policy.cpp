// Ablation (ours): cache organisation beyond line size.
//
// The paper fixes a 16-way, 1024-line L1 and sweeps only the line size;
// its future work asks for "the effect of the memory hierarchy on the
// effectiveness of the attack".  This ablation sweeps the replacement
// policy and associativity at the paper's geometry, showing the attack is
// insensitive to both (the monitored working set is far below capacity),
// and then shrinks the cache until self-eviction noise appears.
//
// The policy/ways/size sweeps share one flat trial list on the thread
// pool; the hierarchy sweep pre-derives its (config, trial) seed grid
// from the single 0xCD0 stream in the original nested draw order.
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "soc/hierarchy_platform.h"

using namespace grinch;

namespace {

bench::CellSpec make_cell(const cachesim::CacheConfig& cache, unsigned trials,
                          std::uint64_t budget, std::uint64_t seed) {
  bench::CellSpec spec;
  spec.platform.cache = cache;
  spec.trials = trials;
  spec.budget = budget;
  spec.seed = seed;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv};
  const unsigned trials = ctx.quick() ? 2 : 3;
  const std::uint64_t budget = 60000;
  ctx.set_config("trials_per_cell", trials);
  ctx.set_config("budget", budget);

  std::printf("Ablation — replacement policy and associativity "
              "(first-round attack)\n\n");

  const std::vector<cachesim::Replacement> policies{
      cachesim::Replacement::kLru, cachesim::Replacement::kFifo,
      cachesim::Replacement::kPlru, cachesim::Replacement::kRandom};
  const std::vector<unsigned> way_counts{1, 2, 4, 8, 16};
  const std::vector<unsigned> set_counts{64, 16, 4, 2};

  // One flat grid: policies, then associativities, then sizes.
  std::vector<bench::CellSpec> specs;
  for (auto policy : policies) {
    cachesim::CacheConfig cache = cachesim::CacheConfig::paper_default();
    cache.replacement = policy;
    specs.push_back(make_cell(cache, trials, budget,
                              0xCA0 + static_cast<std::uint64_t>(policy)));
  }
  std::vector<unsigned> sets_of_ways;
  for (unsigned ways : way_counts) {
    cachesim::CacheConfig cache = cachesim::CacheConfig::paper_default();
    cache.associativity = ways;
    cache.num_sets = 1024 / ways;
    sets_of_ways.push_back(cache.num_sets);
    specs.push_back(make_cell(cache, trials, budget, 0xCB0 + ways));
  }
  std::vector<unsigned> total_lines;
  for (unsigned sets : set_counts) {
    cachesim::CacheConfig cache = cachesim::CacheConfig::paper_default();
    cache.num_sets = sets;
    total_lines.push_back(cache.total_lines());
    specs.push_back(make_cell(cache, trials, budget, 0xCC0 + sets));
  }
  const std::vector<bench::CellResult> cells =
      bench::first_round_cells(ctx.pool(), specs);
  std::size_t index = 0;

  AsciiTable policy_table{"Replacement policy sweep (16-way, 64 sets)"};
  policy_table.set_header({"policy", "mean encryptions"});
  for (auto policy : policies)
    policy_table.add_row(
        {cachesim::to_string(policy), cells[index++].cell.render()});
  ctx.print_table(policy_table);

  AsciiTable ways_table{"Associativity sweep (LRU, 1024 lines total)"};
  ways_table.set_header({"ways x sets", "mean encryptions"});
  for (std::size_t i = 0; i < way_counts.size(); ++i)
    ways_table.add_row({std::to_string(way_counts[i]) + " x " +
                            std::to_string(sets_of_ways[i]),
                        cells[index++].cell.render()});
  ctx.print_table(ways_table);

  AsciiTable size_table{"Cache size sweep (16-way, LRU)"};
  size_table.set_header({"total lines", "mean encryptions"});
  for (std::size_t i = 0; i < set_counts.size(); ++i)
    size_table.add_row(
        {std::to_string(total_lines[i]), cells[index++].cell.render()});
  ctx.print_table(size_table);

  // Memory hierarchy (§V future work): the attack through an L1+L2
  // hierarchy with both flush capabilities.
  AsciiTable hier_table{"Memory hierarchy sweep (first-round attack)"};
  hier_table.set_header({"configuration", "mean encryptions"});
  {
    const std::vector<std::tuple<const char*, soc::FlushCapability, bool>>
        configs{{"flat shared L1 (paper)", soc::FlushCapability::kClflush,
                 false},
                {"L1 + 4096-line L2, clflush", soc::FlushCapability::kClflush,
                 true},
                {"L1 + 4096-line L2, L1-evict only",
                 soc::FlushCapability::kL1EvictOnly, true}};
    // The original serial loop drew (key, seed) per trial from one stream
    // across all configs; derive the same flattened sequence up front.
    const std::vector<runner::TrialSeed> seeds = runner::derive_trial_seeds(
        0xCD0, static_cast<std::size_t>(configs.size()) * trials);

    struct Outcome {
      bool success = false;
      std::uint64_t effort = 0;
    };
    std::vector<Outcome> outcomes(configs.size() * trials);
    const std::vector<std::size_t> per_cell(configs.size(), trials);
    runner::parallel_cells(
        ctx.pool(), per_cell, [&](std::size_t c, std::size_t t) {
          const std::size_t flat = c * trials + t;
          const runner::TrialSeed& ts = seeds[flat];
          const auto& [label, cap, two_level] = configs[c];
          (void)label;
          soc::HierarchyPlatform::Config hcfg;
          hcfg.flush = cap;
          if (!two_level) hcfg.hierarchy.l2.reset();
          soc::HierarchyPlatform platform{hcfg, ts.key};
          attack::GrinchConfig acfg;
          acfg.stages = 1;
          acfg.max_encryptions = budget;
          acfg.seed = ts.seed;
          attack::GrinchAttack attack{platform, acfg};
          const attack::AttackResult r = attack.run();
          const gift::RoundKey64 truth = gift::extract_round_key64(ts.key);
          if (r.success && r.round_keys.size() == 1 &&
              r.round_keys[0].u == truth.u && r.round_keys[0].v == truth.v) {
            outcomes[flat] = Outcome{true, r.total_encryptions};
          }
        });
    for (std::size_t c = 0; c < configs.size(); ++c) {
      EffortCell cell{budget};
      for (unsigned t = 0; t < trials; ++t) {
        const Outcome& o = outcomes[c * trials + t];
        if (o.success) {
          cell.add_success(o.effort);
        } else {
          cell.add_dropout();
        }
      }
      hier_table.add_row({std::get<0>(configs[c]), cell.render()});
    }
  }
  ctx.print_table(hier_table);

  std::printf("Expected: policy/associativity barely matter at the paper's\n"
              "geometry; very small caches add self-eviction noise and raise\n"
              "the effort; a deeper hierarchy does not protect the victim —\n"
              "even an attacker without clflush (L1 eviction only) succeeds\n"
              "because L1-hit vs L2-hit latency is still distinguishable.\n");
  return ctx.finish();
}
