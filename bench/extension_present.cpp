// Extension experiment (ours): the observation pipeline against
// PRESENT-80, GIFT's ISO-standardised ancestor.
//
// PRESENT adds the round key *before* its S-Box layer, so the first
// round's table indices are already key-dependent: no crafted plaintexts,
// no multi-stage pipeline — 64 key bits leak from round-0 observations
// and the remaining 16 fall to a 2^16 offline search.  The contrast with
// GIFT quantifies how much protection GIFT's key-free first round does
// NOT buy: a handful of extra encryptions and a four-stage loop.
#include <cstdio>

#include "attack/present_attack.h"
#include "bench_util.h"

using namespace grinch;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const unsigned kTrials = quick ? 5 : 20;

  std::printf("Extension — cache attack on PRESENT-80 vs GRINCH on "
              "GIFT-64\n\n");

  Xoshiro256 rng{0x93E5E27};
  SampleStats enc;
  unsigned ok = 0;
  for (unsigned t = 0; t < kTrials; ++t) {
    Key128 key = rng.key128();
    key.hi &= 0xFFFF;
    soc::Present80DirectProbePlatform platform{{}, key};
    attack::PresentAttackConfig cfg;
    cfg.seed = rng.next();
    attack::Present80Attack attack{platform, cfg};
    const attack::PresentAttackResult r = attack.run();
    if (r.success && r.recovered_key == key) {
      ++ok;
      enc.add(static_cast<double>(r.cache_encryptions));
    }
  }

  AsciiTable table{"PRESENT-80 key recovery (extension)"};
  table.set_header({"metric", "PRESENT-80", "GIFT-64 (GRINCH)"});
  table.add_row({"first key-dependent S-Box round", "1", "2"});
  table.add_row({"plaintext crafting needed", "no", "yes (Algorithms 1-2)"});
  table.add_row({"monitored encryptions (mean)",
                 std::to_string(static_cast<unsigned>(enc.mean())), "~280"});
  table.add_row({"offline search", "2^16", "none"});
  table.add_row({"keys verified",
                 std::to_string(ok) + "/" + std::to_string(kTrials), "-"});
  bench::print_table(table);

  std::printf("Reading: the tiny shared S-Box makes both ciphers leak; "
              "PRESENT's pre-S-Box\nkey addition removes every obstacle "
              "GRINCH had to engineer around.\n");
  return 0;
}
