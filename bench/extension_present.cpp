// Extension experiment (ours): the observation pipeline against
// PRESENT-80, GIFT's ISO-standardised ancestor.
//
// PRESENT adds the round key *before* its S-Box layer, so the first
// round's table indices are already key-dependent: no crafted plaintexts,
// no multi-stage pipeline — 64 key bits leak from round-0 observations
// and the remaining 16 fall to a 2^16 offline search.  The contrast with
// GIFT quantifies how much protection GIFT's key-free first round does
// NOT buy: a handful of extra encryptions and a four-stage loop.
//
// Runs through the same unified target pipeline as the GIFT benches
// (target::DirectProbePlatform<Present80Recovery> +
// target::KeyRecoveryEngine); PRESENT's entire cipher-specific surface is
// the one traits/recovery header pair.
//
// Trials shard across the thread pool with pre-derived per-trial seeds.
#include <cstdio>

#include "bench_util.h"
#include "target/present80_recovery.h"

using namespace grinch;

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv};
  const unsigned kTrials = ctx.quick() ? 5 : 20;
  ctx.set_config("trials", kTrials);

  std::printf("Extension — cache attack on PRESENT-80 vs GRINCH on "
              "GIFT-64\n\n");

  const auto outcomes = bench::recovery_trials<target::Present80Recovery>(
      ctx.pool(), kTrials, 0x93E5E27);

  SampleStats enc;
  unsigned ok = 0;
  for (const auto& o : outcomes) {
    if (o.verified) {
      ++ok;
      enc.add(static_cast<double>(o.result.total_encryptions));
    }
  }

  AsciiTable table{"PRESENT-80 key recovery (extension)"};
  table.set_header({"metric", "PRESENT-80", "GIFT-64 (GRINCH)"});
  table.add_row({"first key-dependent S-Box round", "1", "2"});
  table.add_row({"plaintext crafting needed", "no", "yes (Algorithms 1-2)"});
  table.add_row({"monitored encryptions (mean)",
                 std::to_string(static_cast<unsigned>(enc.mean())), "~280"});
  table.add_row({"offline search", "2^16", "none"});
  table.add_row({"keys verified",
                 std::to_string(ok) + "/" + std::to_string(kTrials), "-"});
  ctx.print_table(table);

  std::printf("Reading: the tiny shared S-Box makes both ciphers leak; "
              "PRESENT's pre-S-Box\nkey addition removes every obstacle "
              "GRINCH had to engineer around.\n");
  return ctx.finish();
}
