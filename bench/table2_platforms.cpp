// Table II reproduction: attack efficiency (earliest successfully probed
// round) of the practical attacks on the two FPGA platforms.
//
//   paper:  Platform               10 MHz  25 MHz  50 MHz
//           Single-processing SoC     2       4       8
//           Multi-processing SoC      1       1       1
//
// Mechanism: on the single-core SoC the attacker only runs when the RTOS
// (10 ms quantum) schedules it, so the probe lands deeper into the cipher
// the faster the clock; on the MPSoC the attacker owns a tile and probes
// through the NoC (~400 ns per remote access), far faster than a round.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"

using namespace grinch;

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv};
  std::printf("Table II — attack efficiency (probed round) on both "
              "platforms\n");
  std::printf("paper reference: SoC 2/4/8, MPSoC 1/1/1 at 10/25/50 MHz\n\n");

  Xoshiro256 rng{0x7AB1E2};
  const Key128 key = rng.key128();
  ctx.set_config("seed", std::uint64_t{0x7AB1E2});

  AsciiTable table{"Table II (reproduced)"};
  table.set_header({"Platform", "10 MHz", "25 MHz", "50 MHz"});

  std::vector<std::string> soc_row{"Single-processing SoC"};
  std::vector<std::string> mpsoc_row{"Multi-processing SoC"};
  for (double mhz : {10.0, 25.0, 50.0}) {
    soc::SingleCoreSoC::Config scfg;
    scfg.rtos.clock_mhz = mhz;
    soc::SingleCoreSoC single{scfg, key};
    soc_row.push_back(std::to_string(single.first_probe_round()));

    soc::MpSoc::Config mcfg;
    mcfg.clock_mhz = mhz;
    soc::MpSoc mpsoc{mcfg, key};
    mpsoc_row.push_back(std::to_string(mpsoc.first_probe_round()));
  }
  table.add_row(soc_row);
  table.add_row(mpsoc_row);
  ctx.print_table(table);

  // Supporting measurements quoted in §IV-B3.
  soc::MpSoc::Config mcfg;
  soc::MpSoc mpsoc{mcfg, key};
  soc::SingleCoreSoC::Config scfg;
  soc::SingleCoreSoC single{scfg, key};
  const double cpr = single.measured_cycles_per_round();
  const double round_ms = cpr / 50e6 * 1e3;
  std::printf("victim round time at 50 MHz: %.2f ms (paper: ~1.2 ms)\n",
              round_ms);
  std::printf("remote shared-cache access via NoC: %.0f ns (paper: ~400 ns)\n",
              mpsoc.remote_access_ns());
  ctx.set_metric("victim_round_ms_50mhz", round_ms);
  ctx.set_metric("remote_access_ns", mpsoc.remote_access_ns());
  return ctx.finish();
}
