// Headline-claim reproduction: "the full key could be recovered with less
// than 400 encryptions" (abstract; §IV-B1: ~100 per 32-bit round, 400 for
// the whole 128-bit key).  Runs the complete four-stage GRINCH pipeline
// against random keys on the paper-default platform and reports the
// distribution of total encryption counts.
#include <cstdio>

#include "bench_util.h"

using namespace grinch;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const unsigned kTrials = quick ? 5 : 25;
  std::printf("Headline — full 128-bit key recovery effort "
              "(paper: < 400 encryptions)\n\n");

  Xoshiro256 rng{0x128BEEF};
  SampleStats stats;
  SampleStats per_stage;
  unsigned verified = 0;
  unsigned under_400 = 0;

  for (unsigned t = 0; t < kTrials; ++t) {
    const Key128 key = rng.key128();
    soc::DirectProbePlatform platform{soc::DirectProbePlatform::Config{}, key};
    attack::GrinchConfig cfg;
    cfg.seed = rng.next();
    attack::GrinchAttack attack{platform, cfg};
    const attack::AttackResult r = attack.run();
    if (!r.success || r.recovered_key != key) {
      std::printf("trial %u FAILED\n", t);
      continue;
    }
    ++verified;
    under_400 += r.total_encryptions < 400;
    stats.add(static_cast<double>(r.total_encryptions));
    for (unsigned s = 0; s < 4; ++s)
      per_stage.add(static_cast<double>(r.stages[s].encryptions));
  }

  AsciiTable table{"Full key recovery (reproduced)"};
  table.set_header({"metric", "value", "paper"});
  table.add_row({"trials verified", std::to_string(verified) + "/" +
                                      std::to_string(kTrials),
                 "-"});
  table.add_row({"mean encryptions (128-bit key)",
                 std::to_string(static_cast<unsigned>(stats.mean())), "<400"});
  table.add_row({"min / max",
                 std::to_string(static_cast<unsigned>(stats.min())) + " / " +
                     std::to_string(static_cast<unsigned>(stats.max())),
                 "-"});
  table.add_row({"mean encryptions per 32-bit stage",
                 std::to_string(static_cast<unsigned>(per_stage.mean())),
                 "~100"});
  table.add_row({"trials under 400 encryptions",
                 std::to_string(under_400) + "/" + std::to_string(verified),
                 "all"});
  bench::print_table(table);
  return 0;
}
