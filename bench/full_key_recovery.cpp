// Headline-claim reproduction: "the full key could be recovered with less
// than 400 encryptions" (abstract; §IV-B1: ~100 per 32-bit round, 400 for
// the whole 128-bit key).  Runs the complete four-stage GRINCH pipeline
// against random keys on the paper-default platform and reports the
// distribution of total encryption counts.
//
// Trials shard across the thread pool with pre-derived per-trial seeds;
// the table is identical for any --threads.
#include <cstdio>

#include "bench_util.h"

using namespace grinch;

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv};
  const unsigned kTrials = ctx.quick() ? 5 : 25;
  ctx.set_config("trials", kTrials);
  std::printf("Headline — full 128-bit key recovery effort "
              "(paper: < 400 encryptions)\n\n");

  struct TrialOutcome {
    bool verified = false;
    std::uint64_t total_encryptions = 0;
    std::uint64_t stage_encryptions[4] = {0, 0, 0, 0};
  };

  const std::vector<runner::TrialSeed> seeds =
      runner::derive_trial_seeds(0x128BEEF, kTrials);
  runner::TrialRunner run{ctx.pool()};
  const std::vector<TrialOutcome> outcomes = run.map<TrialOutcome>(
      kTrials, [&](std::size_t t) {
        const runner::TrialSeed& ts = seeds[t];
        soc::DirectProbePlatform platform{soc::DirectProbePlatform::Config{},
                                          ts.key};
        attack::GrinchConfig cfg;
        cfg.seed = ts.seed;
        attack::GrinchAttack attack{platform, cfg};
        const attack::AttackResult r = attack.run();
        TrialOutcome o;
        if (!r.success || r.recovered_key != ts.key) return o;
        o.verified = true;
        o.total_encryptions = r.total_encryptions;
        for (unsigned s = 0; s < 4; ++s)
          o.stage_encryptions[s] = r.stages[s].encryptions;
        return o;
      });

  SampleStats stats;
  SampleStats per_stage;
  unsigned verified = 0;
  unsigned under_400 = 0;
  for (unsigned t = 0; t < kTrials; ++t) {
    const TrialOutcome& o = outcomes[t];
    if (!o.verified) {
      std::printf("trial %u FAILED\n", t);
      continue;
    }
    ++verified;
    under_400 += o.total_encryptions < 400;
    stats.add(static_cast<double>(o.total_encryptions));
    for (unsigned s = 0; s < 4; ++s)
      per_stage.add(static_cast<double>(o.stage_encryptions[s]));
  }

  AsciiTable table{"Full key recovery (reproduced)"};
  table.set_header({"metric", "value", "paper"});
  table.add_row({"trials verified", std::to_string(verified) + "/" +
                                      std::to_string(kTrials),
                 "-"});
  table.add_row({"mean encryptions (128-bit key)",
                 std::to_string(static_cast<unsigned>(stats.mean())), "<400"});
  table.add_row({"min / max",
                 std::to_string(static_cast<unsigned>(stats.min())) + " / " +
                     std::to_string(static_cast<unsigned>(stats.max())),
                 "-"});
  table.add_row({"mean encryptions per 32-bit stage",
                 std::to_string(static_cast<unsigned>(per_stage.mean())),
                 "~100"});
  table.add_row({"trials under 400 encryptions",
                 std::to_string(under_400) + "/" + std::to_string(verified),
                 "all"});
  ctx.print_table(table);
  ctx.set_metric("mean_encryptions", stats.mean());
  ctx.set_metric("verified", verified);
  return ctx.finish();
}
