// Supplementary figure (ours): the leakage mechanism behind Fig. 3 and
// Table I, measured directly.
//
// The attack's power is the number of *absent* S-Box lines per probe —
// every absent line eliminates candidates.  This bench measures the mean
// number of distinct lines present as a function of probing round and
// line size, showing why effort explodes: presence saturates toward
// "every line cached" as the window widens or lines coarsen.
//
// Cells shard across the thread pool; each cell's (key, plaintext-stream
// seed) pair is pre-derived from the single 0x1EAC stream in the original
// nested (line size, round) draw order.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"

using namespace grinch;

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv};
  std::printf("Leakage profile — mean distinct S-Box lines present at the "
              "probe (flush enabled)\n\n");

  constexpr unsigned kEncryptions = 300;
  constexpr unsigned kMaxRound = 6;
  const std::vector<unsigned> word_sizes{1, 2, 4, 8};
  ctx.set_config("encryptions_per_cell", kEncryptions);

  const std::size_t n_cells = word_sizes.size() * kMaxRound;
  const std::vector<runner::TrialSeed> seeds =
      runner::derive_trial_seeds(0x1EAC, n_cells);

  runner::TrialRunner run{ctx.pool()};
  const std::vector<std::string> rendered = run.map<std::string>(
      n_cells, [&](std::size_t i) {
        const unsigned words = word_sizes[i / kMaxRound];
        const unsigned k = static_cast<unsigned>(i % kMaxRound) + 1;
        soc::DirectProbePlatform::Config cfg;
        cfg.cache.line_bytes = words;
        cfg.probing_round = k;
        soc::DirectProbePlatform platform{cfg, seeds[i].key};
        const auto line_ids = platform.index_line_ids();
        unsigned total_lines = 0;
        for (unsigned id : line_ids)
          total_lines = std::max(total_lines, id + 1);

        double present_sum = 0;
        Xoshiro256 pts{seeds[i].seed};
        for (unsigned e = 0; e < kEncryptions; ++e) {
          const soc::Observation obs = platform.observe(pts.block64(), 0);
          std::vector<bool> line_seen(total_lines, false);
          for (unsigned idx = 0; idx < 16; ++idx) {
            if (obs.present[idx]) line_seen[line_ids[idx]] = true;
          }
          for (bool seen : line_seen) present_sum += seen;
        }
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.1f/%u",
                      present_sum / kEncryptions, total_lines);
        return std::string{buf};
      });

  AsciiTable table{"Lines present / lines total vs probing round"};
  std::vector<std::string> header{"line size"};
  for (unsigned k = 1; k <= kMaxRound; ++k)
    header.push_back("round " + std::to_string(k));
  table.set_header(header);

  for (std::size_t w = 0; w < word_sizes.size(); ++w) {
    std::vector<std::string> row{std::to_string(word_sizes[w]) + "B"};
    for (unsigned k = 0; k < kMaxRound; ++k)
      row.push_back(rendered[w * kMaxRound + k]);
    table.add_row(row);
  }
  ctx.print_table(table);
  std::printf("Reading: elimination power per probe ~ (total - present).\n"
              "1-byte lines keep ~5 absent lines at round 1; by round 6, or\n"
              "with 4+-byte lines, almost nothing is absent — the mechanism\n"
              "behind Fig. 3's exponential growth and Table I's drop-outs.\n");
  return ctx.finish();
}
