// Supplementary figure (ours): the leakage mechanism behind Fig. 3 and
// Table I, measured directly.
//
// The attack's power is the number of *absent* S-Box lines per probe —
// every absent line eliminates candidates.  This bench measures the mean
// number of distinct lines present as a function of probing round and
// line size, showing why effort explodes: presence saturates toward
// "every line cached" as the window widens or lines coarsen.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"

using namespace grinch;

int main() {
  std::printf("Leakage profile — mean distinct S-Box lines present at the "
              "probe (flush enabled)\n\n");

  Xoshiro256 rng{0x1EAC};
  constexpr unsigned kEncryptions = 300;

  AsciiTable table{"Lines present / lines total vs probing round"};
  std::vector<std::string> header{"line size"};
  for (unsigned k = 1; k <= 6; ++k) header.push_back("round " + std::to_string(k));
  table.set_header(header);

  for (unsigned words : {1u, 2u, 4u, 8u}) {
    std::vector<std::string> row{std::to_string(words) + "B"};
    for (unsigned k = 1; k <= 6; ++k) {
      soc::DirectProbePlatform::Config cfg;
      cfg.cache.line_bytes = words;
      cfg.probing_round = k;
      const Key128 key = rng.key128();
      soc::DirectProbePlatform platform{cfg, key};
      const auto line_ids = platform.index_line_ids();
      unsigned total_lines = 0;
      for (unsigned id : line_ids) total_lines = std::max(total_lines, id + 1);

      double present_sum = 0;
      Xoshiro256 pts{rng.next()};
      for (unsigned e = 0; e < kEncryptions; ++e) {
        const soc::Observation obs = platform.observe(pts.block64(), 0);
        std::vector<bool> line_seen(total_lines, false);
        for (unsigned i = 0; i < 16; ++i) {
          if (obs.present[i]) line_seen[line_ids[i]] = true;
        }
        for (bool seen : line_seen) present_sum += seen;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1f/%u",
                    present_sum / kEncryptions, total_lines);
      row.push_back(buf);
    }
    table.add_row(row);
  }
  bench::print_table(table);
  std::printf("Reading: elimination power per probe ~ (total - present).\n"
              "1-byte lines keep ~5 absent lines at round 1; by round 6, or\n"
              "with 4+-byte lines, almost nothing is absent — the mechanism\n"
              "behind Fig. 3's exponential growth and Table I's drop-outs.\n");
  return 0;
}
