// Table I reproduction: required encryptions to attack the first round as
// a function of cache line size (1/2/4/8 words per line) and probing
// round (1..5).  Paper row "1 Word": 96 / 312 / 840 / 2,448 / 5,864;
// larger lines blow the effort up by orders of magnitude, with cells
// beyond 1M dropped as impractical (">1M").
//
// Coarse lines hide the low S-Box index bits inside a line, so the attack
// falls back on cross-round propagation ("assume all possibilities and
// continue to the next round", §III-D) — implemented by the
// CrossRoundSolver and the deferred-stage pipeline.
#include <cstdio>
#include <string>

#include "bench_util.h"

using namespace grinch;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const unsigned max_round = quick ? 3 : 5;
  const std::uint64_t budget = quick ? 60000 : 1000000;

  std::printf("Table I — required encryptions to attack the first round\n");
  std::printf("paper reference:\n");
  std::printf("  1 word : 96 / 312 / 840 / 2448 / 5864\n");
  std::printf("  2 words: 136 / 1112 / 11440 / 188536 / >1M\n");
  std::printf("  4 words: 136 / 123848 / >1M / >1M / >1M\n");
  std::printf("  8 words: 113000 / >1M / >1M / >1M / >1M\n\n");

  AsciiTable table{"Table I (reproduced)"};
  std::vector<std::string> header{"cache line size"};
  for (unsigned k = 1; k <= max_round; ++k)
    header.push_back("round " + std::to_string(k));
  table.set_header(header);

  for (unsigned words : {1u, 2u, 4u, 8u}) {
    std::vector<std::string> row{std::to_string(words) +
                                 (words == 1 ? " word" : " words")};
    for (unsigned k = 1; k <= max_round; ++k) {
      const unsigned trials = words <= 2 ? 3 : 1;
      soc::DirectProbePlatform::Config cfg;
      cfg.cache.line_bytes = words;
      cfg.probing_round = k;
      cfg.use_flush = true;
      const EffortCell cell = bench::first_round_cell(
          cfg, trials, budget, 0x7AB1E100 + words * 16 + k);
      row.push_back(cell.render());
      std::fprintf(stderr, "[table1] %u words, probing round %u done\n",
                   words, k);
    }
    table.add_row(row);
  }

  bench::print_table(table);
  std::printf(
      "Expected shape: effort rises steeply with both line size and probing\n"
      "round; the large-line / late-probe corner drops out (>budget), like\n"
      "the paper's >1M cells.  Deviation noted in EXPERIMENTS.md: with\n"
      "probe-after-round observations, lines of >=4 words carry no direct\n"
      "single-round information, so our 4/8-word cells lean entirely on\n"
      "cross-round propagation and are costlier than the paper's at early\n"
      "probing rounds.\n");
  return 0;
}
