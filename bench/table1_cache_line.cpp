// Table I reproduction: required encryptions to attack the first round as
// a function of cache line size (1/2/4/8 words per line) and probing
// round (1..5).  Paper row "1 Word": 96 / 312 / 840 / 2,448 / 5,864;
// larger lines blow the effort up by orders of magnitude, with cells
// beyond 1M dropped as impractical (">1M").
//
// Coarse lines hide the low S-Box index bits inside a line, so the attack
// falls back on cross-round propagation ("assume all possibilities and
// continue to the next round", §III-D) — implemented by the
// CrossRoundSolver and the deferred-stage pipeline.
//
// The whole 4x5 grid runs as one flat trial list on the thread pool;
// seeds are pre-derived per trial, so the table is identical for any
// --threads.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace grinch;

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv};
  const unsigned max_round = ctx.quick() ? 3 : 5;
  const std::uint64_t budget = ctx.quick() ? 60000 : 1000000;
  const unsigned trials = ctx.quick() ? 3 : 10;
  const std::vector<unsigned> word_sizes{1, 2, 4, 8};

  ctx.set_config("max_round", max_round);
  ctx.set_config("budget", budget);
  ctx.set_config("trials_per_cell", trials);

  std::printf("Table I — required encryptions to attack the first round\n");
  std::printf("paper reference:\n");
  std::printf("  1 word : 96 / 312 / 840 / 2448 / 5864\n");
  std::printf("  2 words: 136 / 1112 / 11440 / 188536 / >1M\n");
  std::printf("  4 words: 136 / 123848 / >1M / >1M / >1M\n");
  std::printf("  8 words: 113000 / >1M / >1M / >1M / >1M\n\n");

  // Cell order: row-major over (words, round).
  std::vector<bench::CellSpec> specs;
  for (unsigned words : word_sizes) {
    for (unsigned k = 1; k <= max_round; ++k) {
      bench::CellSpec spec;
      spec.platform.cache.line_bytes = words;
      spec.platform.probing_round = k;
      spec.platform.use_flush = true;
      spec.trials = trials;
      spec.budget = budget;
      spec.seed = 0x7AB1E100 + words * 16 + k;
      specs.push_back(spec);
    }
  }
  const std::vector<bench::CellResult> cells =
      bench::first_round_cells(ctx.pool(), specs);

  AsciiTable table{"Table I (reproduced)"};
  std::vector<std::string> header{"cache line size"};
  for (unsigned k = 1; k <= max_round; ++k)
    header.push_back("round " + std::to_string(k));
  table.set_header(header);

  std::size_t index = 0;
  for (unsigned words : word_sizes) {
    std::vector<std::string> row{std::to_string(words) +
                                 (words == 1 ? " word" : " words")};
    double row_seconds = 0.0;
    for (unsigned k = 1; k <= max_round; ++k) {
      const bench::CellResult& cell = cells[index++];
      row.push_back(cell.cell.render());
      row_seconds += cell.trial_seconds;
    }
    table.add_row(row);
    ctx.set_timing("words_" + std::to_string(words) + "_trial_seconds",
                   row_seconds);
    std::fprintf(stderr, "[table1] %u words: %.1fs compute\n", words,
                 row_seconds);
  }

  ctx.print_table(table);
  std::printf(
      "Expected shape: effort rises steeply with both line size and probing\n"
      "round; the large-line / late-probe corner drops out (>budget), like\n"
      "the paper's >1M cells.  Deviation noted in EXPERIMENTS.md: with\n"
      "probe-after-round observations, lines of >=4 words carry no direct\n"
      "single-round information, so our 4/8-word cells lean entirely on\n"
      "cross-round propagation and are costlier than the paper's at early\n"
      "probing rounds.\n");
  return ctx.finish();
}
