// Extension experiment (ours): GRINCH against GIFT-128.
//
// The paper motivates GIFT's importance through the NIST LWC candidates,
// most of which build on GIFT-128 (e.g. GIFT-COFB) — but evaluates the
// attack on GIFT-64 only.  This harness runs the two-stage GIFT-128
// variant through the unified target pipeline
// (target::DirectProbePlatform<Gift128Recovery> +
// target::KeyRecoveryEngine): same vulnerability, same 16-entry S-Box
// table, 32 segments, 64 key bits recovered per attacked round.
//
// Trials shard across the thread pool with pre-derived per-trial seeds.
#include <cstdio>

#include "bench_util.h"
#include "target/gift128_recovery.h"

using namespace grinch;

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv};
  const unsigned kTrials = ctx.quick() ? 3 : 15;
  ctx.set_config("trials", kTrials);

  std::printf("Extension — full 128-bit GIFT-128 key recovery "
              "(paper: GIFT-64 only)\n\n");

  const auto outcomes = bench::recovery_trials<target::Gift128Recovery>(
      ctx.pool(), kTrials, 0x128128);

  SampleStats total, stage0, stage1;
  unsigned verified = 0;
  for (unsigned t = 0; t < kTrials; ++t) {
    const auto& o = outcomes[t];
    if (!o.verified) {
      std::printf("trial %u FAILED\n", t);
      continue;
    }
    ++verified;
    total.add(static_cast<double>(o.result.total_encryptions));
    stage0.add(static_cast<double>(o.result.stage_encryptions[0]));
    stage1.add(static_cast<double>(o.result.stage_encryptions[1]));
  }

  AsciiTable table{"GIFT-128 key recovery (extension)"};
  table.set_header({"metric", "GIFT-128", "GIFT-64 (paper target)"});
  table.add_row({"stages to full key", "2", "4"});
  table.add_row({"key bits per stage", "64", "32"});
  table.add_row({"mean encryptions (full key)",
                 std::to_string(static_cast<unsigned>(total.mean())),
                 "~280"});
  table.add_row({"mean encryptions per stage",
                 std::to_string(static_cast<unsigned>(
                     (stage0.mean() + stage1.mean()) / 2)),
                 "~69"});
  table.add_row({"keys verified",
                 std::to_string(verified) + "/" + std::to_string(kTrials),
                 "-"});
  ctx.print_table(table);

  std::printf(
      "Observation: GIFT-128 costs more per *segment* than GIFT-64 — its 32\n"
      "S-Box lookups per round nearly saturate the 16-entry table, leaving\n"
      "fewer absent lines per probe — but with only 2 stages the full key\n"
      "still falls in well under a thousand encryptions.\n");
  return ctx.finish();
}
