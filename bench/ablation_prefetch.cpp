// Ablation (ours): a hardware next-line prefetcher as an *implicit*
// countermeasure.
//
// The paper's first countermeasure reshapes the S-Box so one cache line
// covers the whole table.  A sequential prefetcher achieves a related
// effect for free: every demand miss drags neighbours in, so presence no
// longer identifies the demanded index.  This ablation sweeps the
// prefetch depth and measures the attack effort — connecting the paper's
// line-size sweep (Table I) to a microarchitectural knob that exists in
// real SoCs.
#include <cstdio>
#include <string>

#include "bench_util.h"

using namespace grinch;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const unsigned trials = 2;
  const std::uint64_t budget = quick ? 30000 : 60000;

  std::printf("Ablation — next-line prefetcher depth vs attack effort "
              "(first-round attack, 1-word lines)\n\n");

  AsciiTable table{"Prefetcher ablation"};
  table.set_header({"prefetch lines per miss", "mean encryptions",
                    "line-size analogy"});
  for (unsigned depth : {0u, 1u, 3u, 7u, 15u}) {
    soc::DirectProbePlatform::Config cfg;
    cfg.cache.prefetch_lines = depth;
    // Forward prefetch makes some candidates structurally co-present, so
    // the attack needs the probe window to cover the next round and the
    // cross-round solver (coarse_observations) — exactly the "assume all
    // possibilities" fallback of §III-D.
    cfg.probing_round = depth == 0 ? 1 : 2;
    const EffortCell cell = bench::first_round_cell(
        cfg, trials, budget, 0xFE7C + depth, 1, false,
        /*coarse_observations=*/depth > 0);
    table.add_row({std::to_string(depth), cell.render(),
                   std::to_string(16 / (depth + 1)) + " groups"});
    std::fprintf(stderr, "[prefetch] depth %u done\n", depth);
  }
  bench::print_table(table);
  std::printf(
      "Finding: ANY next-line prefetch depth defeats the attack at these\n"
      "budgets — stronger than the 2-word-line case of Table I, which the\n"
      "cross-stage pipeline still cracks.  Forward prefetch makes the\n"
      "candidate one line above the demanded index structurally co-present\n"
      "(never directly eliminable), and the same smearing saturates the\n"
      "next-round constraint windows the §III-D fallback relies on.  Depth\n"
      "15 loads the whole S-Box on any miss, i.e. the packed-S-Box\n"
      "countermeasure realised in hardware.\n");
  return 0;
}
