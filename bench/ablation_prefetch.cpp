// Ablation (ours): a hardware next-line prefetcher as an *implicit*
// countermeasure.
//
// The paper's first countermeasure reshapes the S-Box so one cache line
// covers the whole table.  A sequential prefetcher achieves a related
// effect for free: every demand miss drags neighbours in, so presence no
// longer identifies the demanded index.  This ablation sweeps the
// prefetch depth and measures the attack effort — connecting the paper's
// line-size sweep (Table I) to a microarchitectural knob that exists in
// real SoCs.
//
// The depth sweep runs as one flat trial list on the thread pool.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace grinch;

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv};
  const unsigned trials = 2;
  const std::uint64_t budget = ctx.quick() ? 30000 : 60000;
  const std::vector<unsigned> depths{0, 1, 3, 7, 15};
  ctx.set_config("trials_per_cell", trials);
  ctx.set_config("budget", budget);

  std::printf("Ablation — next-line prefetcher depth vs attack effort "
              "(first-round attack, 1-word lines)\n\n");

  std::vector<bench::CellSpec> specs;
  for (unsigned depth : depths) {
    bench::CellSpec spec;
    spec.platform.cache.prefetch_lines = depth;
    // Forward prefetch makes some candidates structurally co-present, so
    // the attack needs the probe window to cover the next round and the
    // cross-round solver (coarse_observations) — exactly the "assume all
    // possibilities" fallback of §III-D.
    spec.platform.probing_round = depth == 0 ? 1 : 2;
    spec.attack.coarse_observations = depth > 0;
    spec.trials = trials;
    spec.budget = budget;
    spec.seed = 0xFE7C + depth;
    specs.push_back(spec);
  }
  const std::vector<bench::CellResult> cells =
      bench::first_round_cells(ctx.pool(), specs);

  AsciiTable table{"Prefetcher ablation"};
  table.set_header({"prefetch lines per miss", "mean encryptions",
                    "line-size analogy"});
  for (std::size_t i = 0; i < depths.size(); ++i) {
    table.add_row({std::to_string(depths[i]), cells[i].cell.render(),
                   std::to_string(16 / (depths[i] + 1)) + " groups"});
  }
  ctx.print_table(table);
  std::printf(
      "Finding: ANY next-line prefetch depth defeats the attack at these\n"
      "budgets — stronger than the 2-word-line case of Table I, which the\n"
      "cross-stage pipeline still cracks.  Forward prefetch makes the\n"
      "candidate one line above the demanded index structurally co-present\n"
      "(never directly eliminable), and the same smearing saturates the\n"
      "next-round constraint windows the §III-D fallback relies on.  Depth\n"
      "15 loads the whole S-Box on any miss, i.e. the packed-S-Box\n"
      "countermeasure realised in hardware.\n");
  return ctx.finish();
}
