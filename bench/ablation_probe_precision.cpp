// Ablation (ours): cache-probing precision (§III-D, "Cache Probing
// Precision") and noise (§IV-B1's "amount of noise" discussion).
//
// The paper flags the *timing* of the probe as the attack's main
// practical challenge.  We quantify it: a probe landing immediately after
// the targeted segment's S-Box access sees a nearly empty cache (maximum
// elimination power per encryption), while round-boundary probes see
// everything the round touched.  Separately, third-party cache traffic
// evicts monitored lines (false absents), which costs noise-restarts and
// encryptions.
//
// All 15 cells (3 precision + 4x3 noise grid) share one flat trial list
// on the thread pool.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace grinch;

namespace {

bench::CellSpec make_cell(bool precise, unsigned noise,
                          unsigned probing_round, unsigned trials,
                          std::uint64_t budget, std::uint64_t seed,
                          unsigned threshold = 1, bool statistical = false) {
  bench::CellSpec spec;
  spec.platform.precise_probe = precise;
  spec.platform.noise_accesses_per_round = noise;
  spec.platform.probing_round = probing_round;
  spec.attack.elimination_threshold = threshold;
  spec.attack.statistical_elimination = statistical;
  spec.trials = trials;
  spec.budget = budget;
  spec.seed = seed;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv};
  const unsigned trials = ctx.quick() ? 3 : 5;
  const std::uint64_t budget = 100000;
  const std::uint64_t noise_budget = 20000;
  const std::vector<unsigned> noise_levels{0, 256, 512, 1024};
  ctx.set_config("trials_per_cell", trials);
  ctx.set_config("budget", budget);
  ctx.set_config("noise_budget", noise_budget);

  std::printf("Ablation — probing precision and noise "
              "(first-round attack, paper-default cache)\n\n");

  // Cell order: the 3 precision rows, then the noise grid row-major.
  std::vector<bench::CellSpec> specs{
      make_cell(true, 0, 1, trials, budget, 0xAA0 + 1),
      make_cell(false, 0, 1, trials, budget, 0xAA0 + 2),
      make_cell(false, 0, 3, trials, budget, 0xAA0 + 3),
  };
  for (unsigned n : noise_levels) {
    specs.push_back(make_cell(false, n, 1, trials, noise_budget, 0xBB0 + n, 1));
    specs.push_back(make_cell(false, n, 1, trials, noise_budget, 0xBB1 + n, 3));
    specs.push_back(
        make_cell(false, n, 1, trials, noise_budget, 0xBB2 + n, 1, true));
  }
  const std::vector<bench::CellResult> cells =
      bench::first_round_cells(ctx.pool(), specs);

  AsciiTable precision{"Probing precision"};
  precision.set_header({"probe timing", "mean encryptions (32-bit key)"});
  precision.add_row({"right after the target's S-Box access (ideal)",
                     cells[0].cell.render()});
  precision.add_row({"monitored round boundary (paper's best case)",
                     cells[1].cell.render()});
  precision.add_row({"two rounds late", cells[2].cell.render()});
  ctx.print_table(precision);

  AsciiTable noise{"Noise (third-party accesses per victim round)"};
  noise.set_header({"noise accesses/round", "hard elimination (thr 1)",
                    "voted (thr 3)", "statistical (ML)"});
  std::size_t index = 3;
  for (unsigned n : noise_levels) {
    noise.add_row({std::to_string(n), cells[index].cell.render(),
                   cells[index + 1].cell.render(),
                   cells[index + 2].cell.render()});
    index += 3;
  }
  ctx.print_table(noise);

  std::printf("Expected: precision probing needs only a handful of\n"
              "encryptions per segment; effort grows with probe lateness\n"
              "and with noise-induced evictions of monitored lines.\n");
  return ctx.finish();
}
