// Ablation (ours): cache-probing precision (§III-D, "Cache Probing
// Precision") and noise (§IV-B1's "amount of noise" discussion).
//
// The paper flags the *timing* of the probe as the attack's main
// practical challenge.  We quantify it: a probe landing immediately after
// the targeted segment's S-Box access sees a nearly empty cache (maximum
// elimination power per encryption), while round-boundary probes see
// everything the round touched.  Separately, third-party cache traffic
// evicts monitored lines (false absents), which costs noise-restarts and
// encryptions.
#include <cstdio>
#include <string>

#include "bench_util.h"

using namespace grinch;

namespace {

EffortCell run_cell(bool precise, unsigned noise, unsigned probing_round,
                    unsigned trials, std::uint64_t budget, std::uint64_t seed,
                    unsigned threshold = 1, bool statistical = false) {
  soc::DirectProbePlatform::Config cfg;
  cfg.precise_probe = precise;
  cfg.noise_accesses_per_round = noise;
  cfg.probing_round = probing_round;
  return bench::first_round_cell(cfg, trials, budget, seed, threshold,
                                 statistical);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const unsigned trials = quick ? 3 : 5;
  const std::uint64_t budget = 100000;

  std::printf("Ablation — probing precision and noise "
              "(first-round attack, paper-default cache)\n\n");

  AsciiTable precision{"Probing precision"};
  precision.set_header({"probe timing", "mean encryptions (32-bit key)"});
  precision.add_row({"right after the target's S-Box access (ideal)",
                     run_cell(true, 0, 1, trials, budget, 0xAA0 + 1).render()});
  precision.add_row({"monitored round boundary (paper's best case)",
                     run_cell(false, 0, 1, trials, budget, 0xAA0 + 2).render()});
  precision.add_row({"two rounds late",
                     run_cell(false, 0, 3, trials, budget, 0xAA0 + 3).render()});
  bench::print_table(precision);

  AsciiTable noise{"Noise (third-party accesses per victim round)"};
  noise.set_header({"noise accesses/round", "hard elimination (thr 1)",
                    "voted (thr 3)", "statistical (ML)"});
  const std::uint64_t noise_budget = 20000;
  for (unsigned n : {0u, 256u, 512u, 1024u}) {
    noise.add_row(
        {std::to_string(n),
         run_cell(false, n, 1, trials, noise_budget, 0xBB0 + n, 1).render(),
         run_cell(false, n, 1, trials, noise_budget, 0xBB1 + n, 3).render(),
         run_cell(false, n, 1, trials, noise_budget, 0xBB2 + n, 1, true)
             .render()});
    std::fprintf(stderr, "[precision] noise %u done\n", n);
  }
  bench::print_table(noise);

  std::printf("Expected: precision probing needs only a handful of\n"
              "encryptions per segment; effort grows with probe lateness\n"
              "and with noise-induced evictions of monitored lines.\n");
  return 0;
}
