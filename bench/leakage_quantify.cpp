// Quantified leakage of every registered analysis target — the static
// companion to leakage_profile (which measures the *dynamic* probe-side
// distribution).  One row per target: Shannon bits through each channel,
// the taint pass's upper bound, channel capacity of the best single
// observation, and the fixed-seed sampled whole-trace estimate.  The JSON
// document (BENCH_leakage.json) is the committed baseline behind the CI
// leakage-budget gate; tools/check_bench.py audits its invariants
// (taint >= measured, packed < baseline, budgets respected).
#include <string>
#include <vector>

#include "analysis/quantify.h"
#include "bench_util.h"

using namespace grinch;

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv};

  analysis::QuantifyConfig cfg;
  // The exhaustive per-segment enumeration is exact at any budget; quick
  // mode only shrinks the sampled whole-trace pass.  Single-threaded by
  // design (key_class.h), so --threads cannot change the document.
  cfg.sample_budget = ctx.quick() ? 64 : 512;
  ctx.set_config("samples", json::Value{cfg.sample_budget});
  ctx.set_config("rounds", json::Value{"target default"});

  AsciiTable table{"Quantified leakage (Shannon bits over the analysis window)"};
  table.set_header({"target", "S-Box bits", "Perm bits", "taint bound",
                    "capacity/obs", "residual", "sampled classes",
                    "sampled bits", "budget"});

  bool all_ok = true;
  for (const analysis::QuantifyReport& r : analysis::quantify_all(cfg)) {
    all_ok = all_ok && r.ok();
    table.add_row({r.target, fmt(r.measured_sbox_bits()),
                   fmt(r.measured_perm_bits()),
                   fmt(r.taint_sbox_bound) + "+" + fmt(r.taint_perm_bound),
                   fmt(r.capacity_bits_per_observation()),
                   fmt(r.expected_residual_bits()),
                   std::to_string(r.sampled.classes), fmt(r.sampled.bits),
                   r.ok() ? "ok" : "DRIFT"});

    json::Value m = json::Value::object();
    m.set("sbox_bits", r.measured_sbox_bits());
    m.set("perm_bits", r.measured_perm_bits());
    m.set("taint_sbox_bound", r.taint_sbox_bound);
    m.set("taint_perm_bound", r.taint_perm_bound);
    m.set("capacity_bits_per_observation", r.capacity_bits_per_observation());
    m.set("expected_residual_bits", r.expected_residual_bits());
    m.set("sampled_classes", static_cast<std::uint64_t>(r.sampled.classes));
    m.set("sampled_bits", r.sampled.bits);
    m.set("budget_sbox_bits", r.budget_sbox_bits);
    m.set("budget_perm_bits", r.budget_perm_bits);
    m.set("budget_ok", r.within_budget());
    m.set("within_taint_bound", r.within_taint_bound());
    ctx.set_metric(r.target, std::move(m));
  }
  ctx.set_metric("all_within_budget", all_ok);

  ctx.print_table(table);
  const int rc = ctx.finish();
  // The bench doubles as a gate: drift fails the run even without the CLI.
  return rc != 0 ? rc : (all_ok ? 0 : 1);
}
