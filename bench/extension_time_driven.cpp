// Extension experiment (ours): the paper's full attack taxonomy (§I) on
// one victim — access-driven (GRINCH), trace-driven (ref [10] channel)
// and time-driven (ref [8] channel) — measured head-to-head.
//
// Headline: the time-driven channel, despite stratified estimation and
// known-structure variance reduction, recovers only about half of the
// segments even with ~10^5 timings, because nibble presence reshapes all
// later rounds' indices and hands wrong candidates structural timing
// correlations.  This is the quantitative case for GRINCH's access-driven
// design.
//
// The three channels' trials run as one flat task list on the thread
// pool, each channel with its own pre-derived seed stream.
#include <cstdio>
#include <string>
#include <vector>

#include "attack/time_driven.h"
#include "bench_util.h"

using namespace grinch;

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv};
  const unsigned trials = ctx.quick() ? 2 : 4;
  const std::uint64_t timing_samples = ctx.quick() ? 60000 : 200000;
  ctx.set_config("trials_per_channel", trials);
  ctx.set_config("timing_samples", timing_samples);

  std::printf("Extension — attack taxonomy head-to-head (paper §I, "
              "first-round attack)\n\n");

  // Channel 0: access-driven (seed 0x7A01).  Channel 1: + trace-driven
  // hits (0x7A02).  Channel 2: time-driven only (0x7A03).
  const std::vector<std::vector<runner::TrialSeed>> seeds{
      runner::derive_trial_seeds(0x7A01, trials),
      runner::derive_trial_seeds(0x7A02, trials),
      runner::derive_trial_seeds(0x7A03, trials),
  };

  struct Outcome {
    bool correct = false;
    std::uint64_t encryptions = 0;
    double segments = 0.0;  ///< time-driven channel only
  };
  std::vector<std::vector<Outcome>> outcomes(3,
                                             std::vector<Outcome>(trials));
  const std::vector<std::size_t> per_channel(3, trials);
  runner::parallel_cells(
      ctx.pool(), per_channel, [&](std::size_t channel, std::size_t t) {
        const runner::TrialSeed& ts = seeds[channel][t];
        Outcome& o = outcomes[channel][t];
        if (channel < 2) {
          const bool trace = channel == 1;
          soc::DirectProbePlatform::Config pcfg;
          pcfg.capture_trace = trace;
          soc::DirectProbePlatform platform{pcfg, ts.key};
          attack::GrinchConfig acfg;
          acfg.stages = 1;
          acfg.seed = ts.seed;
          acfg.use_trace_hits = trace;
          attack::GrinchAttack attack{platform, acfg};
          const attack::AttackResult r = attack.run();
          const gift::RoundKey64 truth = gift::extract_round_key64(ts.key);
          if (r.success && r.round_keys.size() == 1 &&
              r.round_keys[0].u == truth.u && r.round_keys[0].v == truth.v) {
            o.correct = true;
            o.encryptions = r.total_encryptions;
          }
        } else {
          attack::VictimTimingOracle oracle{ts.key};
          attack::TimeDrivenConfig cfg;
          cfg.encryptions = timing_samples;
          cfg.seed = ts.seed;
          const attack::TimeDrivenResult r =
              attack::time_driven_attack(oracle, cfg);
          o.segments =
              r.segments_correct(gift::extract_round_key64(ts.key));
        }
      });

  const auto probing_summary = [&](unsigned channel) {
    SampleStats enc;
    unsigned correct = 0;
    for (const Outcome& o : outcomes[channel]) {
      if (o.correct) {
        ++correct;
        enc.add(static_cast<double>(o.encryptions));
      }
    }
    return std::pair<double, unsigned>{enc.empty() ? 0.0 : enc.mean(),
                                       correct};
  };

  AsciiTable table{"Taxonomy comparison (32-bit first-round key)"};
  table.set_header(
      {"channel", "observations (mean)", "segments correct / 16", "notes"});

  const auto [acc_enc, acc_ok] = probing_summary(0);
  table.add_row({"access-driven (GRINCH, the paper)",
                 std::to_string(static_cast<unsigned>(acc_enc)),
                 acc_ok == trials ? "16" : "<16",
                 "needs probe + flush"});

  const auto [trc_enc, trc_ok] = probing_summary(1);
  table.add_row({"+ trace-driven hits (ref [10])",
                 std::to_string(static_cast<unsigned>(trc_enc)),
                 trc_ok == trials ? "16" : "<16",
                 "needs power trace"});

  {
    SampleStats segs;
    for (const Outcome& o : outcomes[2]) segs.add(o.segments);
    table.add_row({"time-driven only (ref [8])",
                   std::to_string(timing_samples),
                   std::to_string(segs.mean()).substr(0, 4),
                   "biased: structural confounds"});
  }

  ctx.print_table(table);
  std::printf(
      "Reading: ordering by information per observation — trace-driven >\n"
      "access-driven >> time-driven.  The total-time channel cannot fully\n"
      "separate candidates on GIFT (see src/attack/time_driven.h), which\n"
      "quantifies why the paper's attack is access-driven.\n");
  return ctx.finish();
}
