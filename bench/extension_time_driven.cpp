// Extension experiment (ours): the paper's full attack taxonomy (§I) on
// one victim — access-driven (GRINCH), trace-driven (ref [10] channel)
// and time-driven (ref [8] channel) — measured head-to-head.
//
// Headline: the time-driven channel, despite stratified estimation and
// known-structure variance reduction, recovers only about half of the
// segments even with ~10^5 timings, because nibble presence reshapes all
// later rounds' indices and hands wrong candidates structural timing
// correlations.  This is the quantitative case for GRINCH's access-driven
// design.
#include <cstdio>
#include <string>

#include "attack/time_driven.h"
#include "bench_util.h"

using namespace grinch;

namespace {

/// Access- or trace-driven first-round attack; returns (mean encryptions,
/// all-correct count).
std::pair<double, unsigned> run_probing(bool trace, unsigned trials,
                                        std::uint64_t seed) {
  Xoshiro256 rng{seed};
  SampleStats enc;
  unsigned correct = 0;
  for (unsigned t = 0; t < trials; ++t) {
    const Key128 key = rng.key128();
    soc::DirectProbePlatform::Config pcfg;
    pcfg.capture_trace = trace;
    soc::DirectProbePlatform platform{pcfg, key};
    attack::GrinchConfig acfg;
    acfg.stages = 1;
    acfg.seed = rng.next();
    acfg.use_trace_hits = trace;
    attack::GrinchAttack attack{platform, acfg};
    const attack::AttackResult r = attack.run();
    const gift::RoundKey64 truth = gift::extract_round_key64(key);
    if (r.success && r.round_keys.size() == 1 &&
        r.round_keys[0].u == truth.u && r.round_keys[0].v == truth.v) {
      ++correct;
      enc.add(static_cast<double>(r.total_encryptions));
    }
  }
  return {enc.empty() ? 0.0 : enc.mean(), correct};
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const unsigned trials = quick ? 2 : 4;
  const std::uint64_t timing_samples = quick ? 60000 : 200000;

  std::printf("Extension — attack taxonomy head-to-head (paper §I, "
              "first-round attack)\n\n");

  AsciiTable table{"Taxonomy comparison (32-bit first-round key)"};
  table.set_header(
      {"channel", "observations (mean)", "segments correct / 16", "notes"});

  const auto [acc_enc, acc_ok] = run_probing(false, trials, 0x7A01);
  table.add_row({"access-driven (GRINCH, the paper)",
                 std::to_string(static_cast<unsigned>(acc_enc)),
                 acc_ok == trials ? "16" : "<16",
                 "needs probe + flush"});

  const auto [trc_enc, trc_ok] = run_probing(true, trials, 0x7A02);
  table.add_row({"+ trace-driven hits (ref [10])",
                 std::to_string(static_cast<unsigned>(trc_enc)),
                 trc_ok == trials ? "16" : "<16",
                 "needs power trace"});

  {
    Xoshiro256 rng{0x7A03};
    SampleStats segs;
    for (unsigned t = 0; t < trials; ++t) {
      const Key128 key = rng.key128();
      attack::VictimTimingOracle oracle{key};
      attack::TimeDrivenConfig cfg;
      cfg.encryptions = timing_samples;
      cfg.seed = rng.next();
      const attack::TimeDrivenResult r =
          attack::time_driven_attack(oracle, cfg);
      segs.add(r.segments_correct(gift::extract_round_key64(key)));
    }
    table.add_row({"time-driven only (ref [8])",
                   std::to_string(timing_samples),
                   std::to_string(segs.mean()).substr(0, 4),
                   "biased: structural confounds"});
  }

  bench::print_table(table);
  std::printf(
      "Reading: ordering by information per observation — trace-driven >\n"
      "access-driven >> time-driven.  The total-time channel cannot fully\n"
      "separate candidates on GIFT (see src/attack/time_driven.h), which\n"
      "quantifies why the paper's attack is access-driven.\n");
  return 0;
}
