// Robustness sweep (ours): key recovery through a faulty probe channel.
//
// The paper's clean-channel numbers (Table I/II) assume every observation
// is trustworthy; its MPSoC deployment clearly is not — co-tenant traffic
// evicts monitored lines, prefetchers fake presences, and scheduling
// makes the attacker miss or mistime windows.  This bench quantifies what
// that costs: for every registered cipher it sweeps the channel fault
// vocabulary (target/fault_model.h) — each single fault type, a
// false-absent rate ramp, and the documented mixed profiles — and reports
// success probability, encryption cost, and the engine's robustness
// accounting (noise restarts, dropped observations, verify restarts).
//
// The saturating row exercises the partial-result contract
// (docs/ROBUSTNESS.md): a hardened vote threshold, a small budget, and the
// harness checking that the surviving candidate masks still contain the
// ground-truth candidates — the honest "here is what the channel still
// owes you" degradation mode.
//
// Trials shard across the thread pool with pre-derived per-trial seeds, so
// every table and metric is byte-identical for any --threads value.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gift/key_schedule.h"

using namespace grinch;

namespace {

/// One sweep row: a named fault profile plus the engine knobs documented
/// for it (docs/ROBUSTNESS.md).
struct ProfileSpec {
  std::string label;
  target::FaultProfile faults;
  unsigned vote_threshold = 2;  ///< Config::noisy_defaults for fault rows
  std::uint64_t budget = 800000;
  bool finish = false;  ///< arm the residual finisher on partials
  std::uint64_t finish_budget = 0;  ///< candidate cap; 0 = engine default
};

std::vector<ProfileSpec> sweep_rows() {
  std::vector<ProfileSpec> rows;
  {
    ProfileSpec clean{"clean", target::FaultProfile::clean(), 1, 100000};
    rows.push_back(clean);
  }
  // Single fault types at representative rates: what each failure mode
  // costs in isolation.
  {
    ProfileSpec r{"absent 0.02", {}, 2, 800000};
    r.faults.false_absent_rate = 0.02;
    rows.push_back(r);
  }
  {
    ProfileSpec r{"present 0.02", {}, 2, 800000};
    r.faults.false_present_rate = 0.02;
    rows.push_back(r);
  }
  {
    ProfileSpec r{"dropped 0.10", {}, 2, 800000};
    r.faults.dropped_rate = 0.10;
    rows.push_back(r);
  }
  {
    ProfileSpec r{"stale 0.02", {}, 2, 800000};
    r.faults.stale_rate = 0.02;
    rows.push_back(r);
  }
  {
    ProfileSpec r{"burst 0.01", {}, 2, 800000};
    r.faults.burst_rate = 0.01;
    r.faults.burst_length = 3;
    rows.push_back(r);
  }
  rows.push_back({"moderate", target::FaultProfile::moderate(), 2, 800000});
  // The documented saturating usage: harden the threshold well past the
  // burst length, spend a token budget, take the partial result — and let
  // the residual finisher close it (the masks keep the truth; the
  // presence evidence ranks it near the front of the residual space).
  // Joint-update targets (PRESENT) expose every segment to every
  // observation, so they face ~kSegments times the elimination pressure
  // per budget — the threshold carries margin for that.
  rows.push_back(
      {"saturating", target::FaultProfile::saturating(), 16, 4000, true});
  return rows;
}

/// False-absent ramp: success probability / cost as eviction noise grows.
std::vector<double> ramp_rates(bool quick) {
  if (quick) return {0.01, 0.04};
  return {0.01, 0.02, 0.04, 0.08};
}

/// The failed stage's ground-truth candidate per segment (the bench knows
/// the victim key, so it can audit the partial-result contract).
template <typename Recovery>
std::array<unsigned, Recovery::kSegments> true_candidates(const Key128& key,
                                                          unsigned stage) {
  std::array<unsigned, Recovery::kSegments> truth{};
  if constexpr (std::is_same_v<Recovery, target::Present80Recovery>) {
    const std::uint64_t rk0 = (key.hi << 48) | (key.lo >> 16);
    for (unsigned s = 0; s < Recovery::kSegments; ++s) {
      truth[s] = static_cast<unsigned>((rk0 >> (4 * s)) & 0xF);
    }
  } else {
    gift::KeySchedule schedule{key, stage + 1};
    if constexpr (std::is_same_v<Recovery, target::Gift64Recovery>) {
      const gift::RoundKey64 rk = schedule.round_key64(stage);
      for (unsigned s = 0; s < Recovery::kSegments; ++s) {
        truth[s] = (((rk.u >> s) & 1u) << 1) | ((rk.v >> s) & 1u);
      }
    } else {
      const gift::RoundKey128 rk = schedule.round_key128(stage);
      for (unsigned s = 0; s < Recovery::kSegments; ++s) {
        truth[s] = (((rk.u >> s) & 1u) << 1) | ((rk.v >> s) & 1u);
      }
    }
  }
  return truth;
}

/// Aggregated outcome of one (cipher, profile) cell.
struct CellStats {
  unsigned trials = 0;
  unsigned verified = 0;  ///< success AND matches the ground-truth key
  unsigned partial = 0;   ///< budget exhausted mid-stage
  unsigned partial_truth_contained = 0;
  unsigned finished = 0;  ///< partials the finisher closed (verified)
  SampleStats enc_ok;  ///< encryptions of verified trials
  SampleStats noise_restarts;
  SampleStats dropped;
  SampleStats verify_restarts;
  SampleStats residual_bits;  ///< of partial trials
  SampleStats finisher_candidates;  ///< of finisher-run trials
  SampleStats finisher_rank;        ///< of finisher-recovered trials
  SampleStats finisher_wall;        ///< seconds, of finisher-run trials
};

template <typename Recovery>
CellStats run_cell(runner::ThreadPool& pool, unsigned trials,
                   std::uint64_t seed_base, const ProfileSpec& spec) {
  // The shared grid expander (runner::ShardPlan); the cell keeps the
  // profile's own fault seed for every trial, so the plan's per-trial
  // fault stream is unused here (the campaign engine consumes it).
  const runner::ShardPlan plan{seed_base, 0, trials, 1};
  struct Outcome {
    target::RecoveryResult<Recovery> result;
    bool verified = false;
    bool truth_contained = false;
  };
  const std::vector<Outcome> outcomes = runner::map_trials<Outcome>(
      pool, plan,
      [&](std::size_t, const runner::TrialSeed& ts, std::uint64_t) {
        const Key128 key = Recovery::canonical_key(ts.key);
        typename target::KeyRecoveryEngine<Recovery>::Config cfg;
        cfg.seed = ts.seed;
        cfg.vote_threshold = spec.vote_threshold;
        cfg.max_encryptions = spec.budget;
        cfg.faults = spec.faults;
        cfg.finish_partials = spec.finish;
        if (spec.finish_budget != 0) {
          cfg.finish_max_candidates = spec.finish_budget;
        }
        Outcome o;
        o.result = target::recover_key<Recovery>(key, cfg);
        o.verified = o.result.success && o.result.recovered_key == key;
        if (o.result.failed_stage < Recovery::kStages) {
          const auto truth =
              true_candidates<Recovery>(key, o.result.failed_stage);
          o.truth_contained = true;
          for (unsigned s = 0; s < Recovery::kSegments; ++s) {
            if (!((o.result.surviving_masks[s] >> truth[s]) & 1u)) {
              o.truth_contained = false;
              break;
            }
          }
        }
        return o;
      });

  CellStats stats;
  stats.trials = trials;
  for (const Outcome& o : outcomes) {
    if (o.verified) {
      ++stats.verified;
      stats.enc_ok.add(static_cast<double>(o.result.total_encryptions));
    }
    stats.noise_restarts.add(static_cast<double>(o.result.noise_restarts));
    stats.dropped.add(static_cast<double>(o.result.dropped_observations));
    stats.verify_restarts.add(
        static_cast<double>(o.result.verify_restarts));
    if (o.result.failed_stage < Recovery::kStages) {
      ++stats.partial;
      stats.residual_bits.add(o.result.residual_key_bits);
      if (o.truth_contained) ++stats.partial_truth_contained;
    }
    const finisher::FinisherStats& fin = o.result.finisher;
    if (fin.outcome != finisher::FinisherOutcome::kNotRun) {
      stats.finisher_candidates.add(
          static_cast<double>(fin.candidates_tested));
      stats.finisher_wall.add(fin.wall_seconds);
      if (fin.outcome == finisher::FinisherOutcome::kRecovered &&
          o.verified) {
        ++stats.finished;
        stats.finisher_rank.add(static_cast<double>(fin.rank));
      }
    }
  }
  return stats;
}

std::string ratio(unsigned num, unsigned den) {
  return std::to_string(num) + "/" + std::to_string(den);
}

std::string mean1(const SampleStats& s) {
  if (s.count() == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", s.mean());
  return buf;
}

template <typename Recovery>
void sweep_cipher(bench::BenchContext& ctx, unsigned trials,
                  std::uint64_t seed_base) {
  const std::vector<ProfileSpec> rows = sweep_rows();

  AsciiTable table{std::string{Recovery::kName} +
                   " key recovery vs channel fault profile"};
  table.set_header({"profile", "vote", "verified", "enc (mean ok)",
                    "noise restarts", "dropped", "verify restarts",
                    "partial (truth kept)", "residual bits", "finished"});
  json::Value metrics = json::Value::object();
  std::uint64_t cell_seed = seed_base;
  for (const ProfileSpec& spec : rows) {
    const CellStats s =
        run_cell<Recovery>(ctx.pool(), trials, cell_seed, spec);
    cell_seed += 0x9E3779B97F4A7C15ull;  // distinct stream per cell
    table.add_row({spec.label, std::to_string(spec.vote_threshold),
                   ratio(s.verified, s.trials), mean1(s.enc_ok),
                   mean1(s.noise_restarts), mean1(s.dropped),
                   mean1(s.verify_restarts),
                   ratio(s.partial_truth_contained, s.partial),
                   mean1(s.residual_bits),
                   spec.finish ? ratio(s.finished, s.partial) : "-"});
    json::Value cell = json::Value::object();
    cell.set("verified", s.verified);
    cell.set("trials", s.trials);
    cell.set("mean_encryptions_ok",
             s.enc_ok.count() ? s.enc_ok.mean() : 0.0);
    cell.set("mean_noise_restarts", s.noise_restarts.mean());
    cell.set("partial", s.partial);
    cell.set("partial_truth_contained", s.partial_truth_contained);
    if (spec.finish) {
      cell.set("finished", s.finished);
      cell.set("mean_finisher_candidates", s.finisher_candidates.mean());
      cell.set("mean_finisher_rank", s.finisher_rank.mean());
      // Timing suffix: check_bench strips `_seconds` keys from the
      // determinism comparison but still gates their magnitude.
      cell.set("mean_finisher_wall_seconds", s.finisher_wall.mean());
    }
    metrics.set(spec.label, std::move(cell));
  }
  ctx.print_table(table);
  ctx.set_metric(Recovery::kName, std::move(metrics));

  // False-absent ramp: the axis the soc platforms' cache-level noise knob
  // (noise_accesses_per_round) maps onto.
  AsciiTable ramp{std::string{Recovery::kName} +
                  " cost vs false-absent rate (vote 2)"};
  ramp.set_header(
      {"false-absent rate", "verified", "enc (mean ok)", "noise restarts"});
  for (const double rate : ramp_rates(ctx.quick())) {
    ProfileSpec spec{"", {}, 2, 800000};
    spec.faults.false_absent_rate = rate;
    const CellStats s =
        run_cell<Recovery>(ctx.pool(), trials, cell_seed, spec);
    cell_seed += 0x9E3779B97F4A7C15ull;
    char label[16];
    std::snprintf(label, sizeof label, "%.2f", rate);
    ramp.add_row({label, ratio(s.verified, s.trials), mean1(s.enc_ok),
                  mean1(s.noise_restarts)});
  }
  ctx.print_table(ramp);

  // Residual bits vs finisher wall time: how the unresolved key space a
  // starved run leaves behind (a function of the vote threshold — lower
  // thresholds let more stages resolve before the budget runs out) maps
  // onto the cost of closing it offline.  These cells consume fresh
  // cell_seed values after every existing table, so the rows above keep
  // their historical seed stream.
  AsciiTable fin{std::string{Recovery::kName} +
                 " residual bits vs finisher wall time (saturating)"};
  fin.set_header({"vote", "partial", "residual bits", "finished",
                  "mean candidates", "mean rank", "wall ms (mean)"});
  json::Value fin_metrics = json::Value::object();
  // Sub-threshold votes can resolve stages *wrongly* under 30%
  // false-present noise, leaving the truth outside the masks; the
  // finisher then burns its whole candidate budget before reporting
  // evidence_inconsistent, so the sweep caps it low enough to keep the
  // worst case cheap.  PRESENT's cap is far tighter: its residual
  // verification pays a 2^16 offline low-bit search per candidate
  // (~0.2 s each), while the evidence ranks a kept truth at the front
  // anyway (the typed finisher tests pin that).
  const std::uint64_t sweep_finish_budget =
      std::is_same_v<Recovery, target::Present80Recovery> ? 8 : 4096;
  for (const unsigned vote : {8u, 12u, 16u}) {
    ProfileSpec spec{"", target::FaultProfile::saturating(), vote, 4000};
    spec.finish = true;
    spec.finish_budget = sweep_finish_budget;
    const CellStats s =
        run_cell<Recovery>(ctx.pool(), trials, cell_seed, spec);
    cell_seed += 0x9E3779B97F4A7C15ull;
    char wall_ms[32];
    std::snprintf(wall_ms, sizeof wall_ms, "%.2f",
                  s.finisher_wall.count() ? s.finisher_wall.mean() * 1e3
                                          : 0.0);
    fin.add_row({std::to_string(vote), ratio(s.partial, s.trials),
                 mean1(s.residual_bits), ratio(s.finished, s.partial),
                 mean1(s.finisher_candidates), mean1(s.finisher_rank),
                 wall_ms});
    json::Value cell = json::Value::object();
    cell.set("partial", s.partial);
    cell.set("finished", s.finished);
    cell.set("mean_residual_bits", s.residual_bits.mean());
    cell.set("mean_finisher_candidates", s.finisher_candidates.mean());
    cell.set("mean_finisher_wall_seconds", s.finisher_wall.mean());
    fin_metrics.set("vote_" + std::to_string(vote), std::move(cell));
  }
  ctx.print_table(fin);
  ctx.set_metric(std::string{Recovery::kName} + "_residual_vs_wall",
                 std::move(fin_metrics));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv};
  const unsigned kTrials = ctx.quick() ? 3 : 8;
  ctx.set_config("trials", kTrials);
  ctx.set_config("budget_fault_rows", 800000);
  ctx.set_config("budget_saturating", 4000);

  std::printf("Robustness — key recovery through a faulty probe channel\n\n");

  sweep_cipher<target::Gift64Recovery>(ctx, kTrials, 0x64F4017);
  sweep_cipher<target::Gift128Recovery>(ctx, kTrials, 0x128F4017);
  sweep_cipher<target::Present80Recovery>(ctx, kTrials, 0x80F4017);

  std::printf(
      "Reading: voted elimination (vote 2) rides out every single-mode "
      "fault and the\nmoderate mixed profile at a bounded encryption "
      "premium; at saturating rates the\nengine degrades to a partial "
      "result whose surviving masks keep the true\ncandidates — and the "
      "residual finisher closes it, turning the presence\nevidence into "
      "a maximum-likelihood ordering that ranks the true key at the\n"
      "front of even a 2^128 residual space (mean rank ~0, "
      "milliseconds of\nverification).  Sub-threshold votes (the "
      "residual-bits tables) show the\ntrade: resolving stages under "
      "saturating noise shrinks the residual space\nbut can resolve "
      "them wrongly, which no finisher budget can repair.\n");
  return ctx.finish();
}
