// Ablation (ours): probing primitive and exploitation strategy.
//
// §III-C argues Flush+Reload is the better choice for GRINCH because the
// flush is fast and line-granular, while Prime+Probe resolves only sets
// (and inherits aliasing noise).  This ablation measures both under
// identical conditions, plus the paper's sequential per-segment
// methodology against joint all-segment exploitation (our extension
// showing the methodology's headroom).
#include <cstdio>

#include "bench_util.h"

using namespace grinch;

namespace {

EffortCell run_cell(soc::ProbeMethod method, bool exploit_all,
                    unsigned trials, std::uint64_t budget,
                    std::uint64_t seed, bool trace = false) {
  EffortCell cell{budget};
  Xoshiro256 rng{seed};
  for (unsigned t = 0; t < trials; ++t) {
    const Key128 key = rng.key128();
    soc::DirectProbePlatform::Config pcfg;
    pcfg.method = method;
    pcfg.capture_trace = trace;
    soc::DirectProbePlatform platform{pcfg, key};
    attack::GrinchConfig acfg;
    acfg.stages = 1;
    acfg.max_encryptions = budget;
    acfg.exploit_all_segments = exploit_all;
    acfg.use_trace_hits = trace;
    acfg.seed = rng.next();
    attack::GrinchAttack attack{platform, acfg};
    const attack::AttackResult r = attack.run();
    const gift::RoundKey64 truth = gift::extract_round_key64(key);
    if (r.success && r.round_keys.size() == 1 &&
        r.round_keys[0].u == truth.u && r.round_keys[0].v == truth.v) {
      cell.add_success(r.total_encryptions);
    } else {
      cell.add_dropout();
    }
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const unsigned trials = quick ? 3 : 10;
  const std::uint64_t budget = 100000;

  std::printf("Ablation — probe primitive & exploitation strategy "
              "(first-round attack, paper-default cache)\n\n");

  AsciiTable table{"Probe method / strategy ablation"};
  table.set_header({"configuration", "mean encryptions (32-bit key)"});
  table.add_row({"Flush+Reload, sequential segments (paper)",
                 run_cell(soc::ProbeMethod::kFlushReload, false, trials,
                          budget, 0xAB1)
                     .render()});
  table.add_row({"Prime+Probe,  sequential segments",
                 run_cell(soc::ProbeMethod::kPrimeProbe, false, trials, budget,
                          0xAB2)
                     .render()});
  table.add_row({"Flush+Reload, joint segments (ours)",
                 run_cell(soc::ProbeMethod::kFlushReload, true, trials, budget,
                          0xAB3)
                     .render()});
  table.add_row({"Prime+Probe,  joint segments (ours)",
                 run_cell(soc::ProbeMethod::kPrimeProbe, true, trials, budget,
                          0xAB4)
                     .render()});
  table.add_row({"Flush+Reload + trace channel (ref [10], ours)",
                 run_cell(soc::ProbeMethod::kFlushReload, false, trials,
                          budget, 0xAB5, /*trace=*/true)
                     .render()});
  bench::print_table(table);
  std::printf("Expected: joint exploitation is several times cheaper than\n"
              "the paper's sequential methodology; Prime+Probe performs\n"
              "comparably here because the simulated victim tables do not\n"
              "alias the monitored sets (its set-granularity costs show up\n"
              "only with aliasing workloads).\n");
  return 0;
}
