// Ablation (ours): probing primitive and exploitation strategy.
//
// §III-C argues Flush+Reload is the better choice for GRINCH because the
// flush is fast and line-granular, while Prime+Probe resolves only sets
// (and inherits aliasing noise).  This ablation measures both under
// identical conditions, plus the paper's sequential per-segment
// methodology against joint all-segment exploitation (our extension
// showing the methodology's headroom).
//
// All five configurations run as one flat trial list on the thread pool.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace grinch;

namespace {

bench::CellSpec make_cell(soc::ProbeMethod method, bool exploit_all,
                          unsigned trials, std::uint64_t budget,
                          std::uint64_t seed, bool trace = false) {
  bench::CellSpec spec;
  spec.platform.method = method;
  spec.platform.capture_trace = trace;
  spec.attack.exploit_all_segments = exploit_all;
  spec.attack.use_trace_hits = trace;
  spec.trials = trials;
  spec.budget = budget;
  spec.seed = seed;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv};
  const unsigned trials = ctx.quick() ? 3 : 10;
  const std::uint64_t budget = 100000;
  ctx.set_config("trials_per_cell", trials);
  ctx.set_config("budget", budget);

  std::printf("Ablation — probe primitive & exploitation strategy "
              "(first-round attack, paper-default cache)\n\n");

  const std::vector<std::string> labels{
      "Flush+Reload, sequential segments (paper)",
      "Prime+Probe,  sequential segments",
      "Flush+Reload, joint segments (ours)",
      "Prime+Probe,  joint segments (ours)",
      "Flush+Reload + trace channel (ref [10], ours)",
  };
  const std::vector<bench::CellSpec> specs{
      make_cell(soc::ProbeMethod::kFlushReload, false, trials, budget, 0xAB1),
      make_cell(soc::ProbeMethod::kPrimeProbe, false, trials, budget, 0xAB2),
      make_cell(soc::ProbeMethod::kFlushReload, true, trials, budget, 0xAB3),
      make_cell(soc::ProbeMethod::kPrimeProbe, true, trials, budget, 0xAB4),
      make_cell(soc::ProbeMethod::kFlushReload, false, trials, budget, 0xAB5,
                /*trace=*/true),
  };
  const std::vector<bench::CellResult> cells =
      bench::first_round_cells(ctx.pool(), specs);

  AsciiTable table{"Probe method / strategy ablation"};
  table.set_header({"configuration", "mean encryptions (32-bit key)"});
  for (std::size_t i = 0; i < cells.size(); ++i)
    table.add_row({labels[i], cells[i].cell.render()});
  ctx.print_table(table);
  std::printf("Expected: joint exploitation is several times cheaper than\n"
              "the paper's sequential methodology; Prime+Probe performs\n"
              "comparably here because the simulated victim tables do not\n"
              "alias the monitored sets (its set-granularity costs show up\n"
              "only with aliasing workloads).\n");
  return ctx.finish();
}
