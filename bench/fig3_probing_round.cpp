// Figure 3 reproduction: required encryptions to break the 1st GIFT round
// (32 key bits) as a function of the cache-probing round, with and
// without the flush operation.  Paper: ~100 encryptions at probing round
// 1, growing exponentially with later probing; flush strictly cheaper
// because the observation excludes the key-independent round-1 "dirty"
// accesses.
//
// Cache: the paper default (1024 lines, 16-way, 1-word lines).
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"

using namespace grinch;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const unsigned max_round = quick ? 5 : 10;
  const std::uint64_t budget = quick ? 100000 : 1000000;

  std::printf("Fig. 3 — encryptions to break the 1st GIFT round vs cache "
              "probing round\n");
  std::printf("paper reference (1 word/line, with flush): ~96 at round 1, "
              "~5.9k at round 5, exponential growth; no-flush consistently "
              "costlier\n\n");

  AsciiTable table{"Fig. 3 (reproduced)"};
  table.set_header({"probing round", "with flush", "without flush"});

  for (unsigned k = 1; k <= max_round; ++k) {
    // Later probing rounds are vastly costlier; spend fewer trials there.
    const unsigned trials = k <= 4 ? 5 : (k <= 7 ? 3 : 1);

    soc::DirectProbePlatform::Config with_flush;
    with_flush.probing_round = k;
    with_flush.use_flush = true;
    const EffortCell flush_cell =
        bench::first_round_cell(with_flush, trials, budget, 0xF1600 + k);

    soc::DirectProbePlatform::Config without_flush = with_flush;
    without_flush.use_flush = false;
    const EffortCell noflush_cell =
        bench::first_round_cell(without_flush, trials, budget, 0xF1700 + k);

    table.add_row({std::to_string(k), flush_cell.render(),
                   noflush_cell.render()});
    std::fprintf(stderr, "[fig3] probing round %u done\n", k);
  }

  bench::print_table(table);
  std::printf("Expected shape: monotone exponential growth with probing "
              "round; flush < no-flush at every round.\n");
  return 0;
}
