// Figure 3 reproduction: required encryptions to break the 1st GIFT round
// (32 key bits) as a function of the cache-probing round, with and
// without the flush operation.  Paper: ~100 encryptions at probing round
// 1, growing exponentially with later probing; flush strictly cheaper
// because the observation excludes the key-independent round-1 "dirty"
// accesses.
//
// Cache: the paper default (1024 lines, 16-way, 1-word lines).
//
// All (round, flush) cells share one flat trial list on the thread pool,
// so early-round threads drain into the expensive late rounds.  Seeds are
// pre-derived per trial; the table is identical for any --threads.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace grinch;

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv};
  const unsigned max_round = ctx.quick() ? 5 : 10;
  const std::uint64_t budget = ctx.quick() ? 100000 : 1000000;
  const unsigned trials = ctx.quick() ? 5 : 10;

  ctx.set_config("max_round", max_round);
  ctx.set_config("budget", budget);
  ctx.set_config("trials_per_cell", trials);

  std::printf("Fig. 3 — encryptions to break the 1st GIFT round vs cache "
              "probing round\n");
  std::printf("paper reference (1 word/line, with flush): ~96 at round 1, "
              "~5.9k at round 5, exponential growth; no-flush consistently "
              "costlier\n\n");

  // Cell order: (round 1 flush, round 1 no-flush, round 2 flush, ...).
  std::vector<bench::CellSpec> specs;
  for (unsigned k = 1; k <= max_round; ++k) {
    bench::CellSpec spec;
    spec.platform.probing_round = k;
    spec.platform.use_flush = true;
    spec.trials = trials;
    spec.budget = budget;
    spec.seed = 0xF1600 + k;
    specs.push_back(spec);

    spec.platform.use_flush = false;
    spec.seed = 0xF1700 + k;
    specs.push_back(spec);
  }
  const std::vector<bench::CellResult> cells =
      bench::first_round_cells(ctx.pool(), specs);

  AsciiTable table{"Fig. 3 (reproduced)"};
  table.set_header({"probing round", "with flush", "without flush"});
  double grid_seconds = 0.0;
  for (unsigned k = 1; k <= max_round; ++k) {
    const bench::CellResult& flush_cell = cells[(k - 1) * 2];
    const bench::CellResult& noflush_cell = cells[(k - 1) * 2 + 1];
    table.add_row({std::to_string(k), flush_cell.cell.render(),
                   noflush_cell.cell.render()});
    const double row_seconds =
        flush_cell.trial_seconds + noflush_cell.trial_seconds;
    grid_seconds += row_seconds;
    ctx.set_timing("round_" + std::to_string(k) + "_trial_seconds",
                   row_seconds);
    std::fprintf(stderr, "[fig3] probing round %u: %.1fs compute\n", k,
                 row_seconds);
  }

  ctx.print_table(table);
  ctx.set_timing("grid_trial_seconds", grid_seconds);
  std::printf("Expected shape: monotone exponential growth with probing "
              "round; flush < no-flush at every round.\n");
  return ctx.finish();
}
