// §IV-C reproduction: the two proposed countermeasures.
//
//  1. Packed S-Box — 8 rows x 8 bits with an 8-byte cache line: the whole
//     table shares one line, the access pattern carries no information,
//     and candidate elimination never converges.
//  2. Hardened UpdateKey — round keys whitened with a non-linear digest
//     of not-yet-used key bits: the cache still leaks the *effective*
//     sub-keys, but "the key retrieval would not be possible".
#include <cstdio>

#include "bench_util.h"
#include "countermeasures/evaluator.h"

using namespace grinch;

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv};
  const std::uint64_t budget = ctx.quick() ? 5000 : 30000;
  ctx.set_config("budget", budget);
  std::printf("§IV-C — countermeasure evaluation (attack budget %llu "
              "encryptions per configuration)\n\n",
              static_cast<unsigned long long>(budget));

  Xoshiro256 rng{0xC0DE};
  const Key128 key = rng.key128();

  AsciiTable table{"Countermeasures (reproduced)"};
  table.set_header({"protection", "sub-keys converged", "key retrieved",
                    "encryptions", "note"});
  for (const cm::EvaluationResult& r : cm::evaluate_all(key, budget, 0x55)) {
    table.add_row({cm::to_string(r.protection),
                   r.attack_succeeded ? "yes" : "no",
                   r.key_retrieved ? "YES" : "no",
                   std::to_string(r.encryptions), r.note});
  }
  ctx.print_table(table);
  std::printf("Expected: baseline falls in <400 encryptions; both "
              "countermeasures keep the master key safe.\n");
  return ctx.finish();
}
