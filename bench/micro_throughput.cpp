// Microbenchmarks (google-benchmark): raw throughput of the ciphers, the
// leaky table implementation, the cache simulator, the NoC model and one
// full monitored-encryption observation.  These are sanity/engineering
// numbers, not paper results.
//
// Flags: the shared bench flags map onto google-benchmark's —
//   --quick      -> --benchmark_min_time=0.05
//   --json PATH  -> --benchmark_out=PATH --benchmark_out_format=json
//   --threads N  -> accepted for interface uniformity; microbenchmarks
//                   are inherently single-threaded measurements.
// Unrecognized arguments pass through to google-benchmark verbatim.
#include <benchmark/benchmark.h>

#include <span>
#include <string>
#include <vector>

#include "attack/grinch.h"
#include "bench_util.h"
#include "cachesim/cache.h"
#include "cachesim/kernels/kernels.h"
#include "cachesim/lockstep.h"
#include "common/rng.h"
#include "gift/bitslice.h"
#include "gift/gift128.h"
#include "gift/gift64.h"
#include "gift/table_gift.h"
#include "noc/network.h"
#include "present/present.h"
#include "runner/trial_runner.h"
#include "soc/platform.h"
#include "target/gift64_recovery.h"
#include "target/platform.h"
#include "target/wide_engine.h"

using namespace grinch;

namespace {

void BM_Gift64Encrypt(benchmark::State& state) {
  Xoshiro256 rng{1};
  const Key128 key = rng.key128();
  std::uint64_t pt = rng.block64();
  for (auto _ : state) {
    pt = gift::Gift64::encrypt(pt, key);
    benchmark::DoNotOptimize(pt);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Gift64Encrypt);

void BM_Gift64Decrypt(benchmark::State& state) {
  Xoshiro256 rng{2};
  const Key128 key = rng.key128();
  std::uint64_t ct = rng.block64();
  for (auto _ : state) {
    ct = gift::Gift64::decrypt(ct, key);
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_Gift64Decrypt);

void BM_Gift128Encrypt(benchmark::State& state) {
  Xoshiro256 rng{3};
  const Key128 key = rng.key128();
  gift::State128 pt{rng.block64(), rng.block64()};
  for (auto _ : state) {
    pt = gift::Gift128::encrypt(pt, key);
    benchmark::DoNotOptimize(pt);
  }
}
BENCHMARK(BM_Gift128Encrypt);

void BM_Present80Encrypt(benchmark::State& state) {
  Xoshiro256 rng{4};
  Key128 key = rng.key128();
  key.hi &= 0xFFFF;
  std::uint64_t pt = rng.block64();
  for (auto _ : state) {
    pt = present::Present80::encrypt(pt, key);
    benchmark::DoNotOptimize(pt);
  }
}
BENCHMARK(BM_Present80Encrypt);

void BM_BitslicedGift64Encrypt(benchmark::State& state) {
  Xoshiro256 rng{45};
  const Key128 key = rng.key128();
  const gift::BitslicedGift64 cipher;
  std::uint64_t pt = rng.block64();
  for (auto _ : state) {
    pt = cipher.encrypt(pt, key);
    benchmark::DoNotOptimize(pt);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BitslicedGift64Encrypt);

void BM_TableGift64Instrumented(benchmark::State& state) {
  Xoshiro256 rng{5};
  const Key128 key = rng.key128();
  const gift::TableGift64 cipher;
  gift::VectorTraceSink sink;
  std::uint64_t pt = rng.block64();
  for (auto _ : state) {
    sink.clear();
    pt = cipher.encrypt(pt, key, &sink);
    benchmark::DoNotOptimize(pt);
  }
}
BENCHMARK(BM_TableGift64Instrumented);

void BM_CacheAccess(benchmark::State& state) {
  cachesim::Cache cache{cachesim::CacheConfig::paper_default()};
  Xoshiro256 rng{6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.uniform(1 << 16)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void BM_NocSend(benchmark::State& state) {
  const noc::MeshTopology mesh{3, 3};
  noc::Network net{mesh, noc::LinkTiming{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.send(0, 8, 8));
  }
}
BENCHMARK(BM_NocSend);

void BM_ObserveOneEncryption(benchmark::State& state) {
  Xoshiro256 rng{7};
  soc::DirectProbePlatform platform{soc::DirectProbePlatform::Config{},
                                    rng.key128()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(platform.observe(rng.block64(), 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObserveOneEncryption);

void BM_ObserveBatch(benchmark::State& state) {
  // The engine's hot path: one observe_batch call over `range(0)`
  // plaintexts on the generic target platform (partial-round victim,
  // zero-allocation LineSet observations, hoisted probe window).
  // items_per_second is observations per second; compare its inverse
  // against baseline_direct_observe_ns for the per-observation speedup.
  // Width 64 routes through observe_wide — the transposed lockstep fast
  // path (target/wide_observe.h) — the scalar widths through
  // observe_batch, so /64 vs /16 is the wide-transport speedup
  // (tools/check_bench.py asserts wide <= scalar per observation).
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const bool wide = batch > 16;
  Xoshiro256 rng{9};
  target::DirectProbePlatform<target::Gift64Recovery> platform{
      {}, rng.key128()};
  std::vector<std::uint64_t> pts(batch);
  target::ObservationBatch out;
  target::WideObservationBatch wide_out;
  for (auto _ : state) {
    for (std::uint64_t& p : pts) p = rng.block64();
    if (wide) {
      platform.observe_wide(pts, 0, wide_out);
      benchmark::DoNotOptimize(wide_out.lanes_present(0));
    } else {
      platform.observe_batch(pts, 0, out);
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ObserveBatch)->Arg(1)->Arg(16)->Arg(64);

void BM_WideRecovery(benchmark::State& state) {
  // Multi-trial recovery throughput: 64 independent GIFT-64 trials,
  // sharded into lockstep groups of `range(0)` lanes through the
  // WideRecoveryEngine (width 1 = the scalar trial loop's work, one lane
  // per group).  items_per_second is recovered keys per second;
  // tools/check_bench.py asserts per-trial time at width 64 stays within
  // 1/0.75 of width 1 (>= 0.75x linear scaling).
  const unsigned width = static_cast<unsigned>(state.range(0));
  constexpr std::size_t kTrials = 64;
  const auto seeds = runner::derive_trial_seeds(0x71D3, kTrials);
  std::vector<target::WideTrialSpec> specs(kTrials);
  for (std::size_t t = 0; t < kTrials; ++t) {
    specs[t] = {seeds[t].key, seeds[t].seed, 0};
  }
  const auto shards = runner::make_wide_shards(kTrials, width);
  for (auto _ : state) {
    target::WideRecoveryEngine<target::Gift64Recovery> engine{{}};
    std::size_t recovered = 0;
    for (const runner::WideShard& shard : shards) {
      const auto results = engine.run(
          std::span<const target::WideTrialSpec>(specs).subspan(shard.begin,
                                                                shard.width));
      for (const auto& r : results) recovered += r.success ? 1 : 0;
    }
    if (recovered != kTrials) state.SkipWithError("recovery failed");
    benchmark::DoNotOptimize(recovered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTrials));
}
BENCHMARK(BM_WideRecovery)->Arg(1)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_ProbeKernel(benchmark::State& state, cachesim::kernels::Kind kind) {
  // The lockstep set-probe kernel under the worst case it ever sees: a
  // saturated 16-way set thrashed by a 17-tag LRU round-robin, so every
  // access is a full-set tag scan (miss) followed by the min-stamp victim
  // pick.  Registered once per available kernel (main()), so the JSON
  // carries generic/swar/avx2 side by side from one machine.
  cachesim::kernels::ScopedKernel scoped{kind};
  cachesim::LockstepCaches caches{cachesim::CacheConfig::paper_default(), 1};
  constexpr unsigned kWays = 16;
  std::uint64_t addrs[kWays + 1];
  // line_bytes = 1, 64 sets: stride 64 keeps every address in set 0 with
  // a distinct tag.
  for (unsigned i = 0; i <= kWays; ++i) addrs[i] = std::uint64_t{i} * 64;
  for (unsigned i = 0; i <= kWays; ++i) caches.touch(0, addrs[i]);
  unsigned next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(caches.access(0, addrs[next]));
    next = next == kWays ? 0 : next + 1;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Transpose64(benchmark::State& state, cachesim::kernels::Kind kind) {
  // The 64x64 bit-matrix transpose behind WideObservationBatch::
  // assign_all, on a dense random matrix.
  const cachesim::kernels::Ops& ops = cachesim::kernels::ops(kind);
  Xoshiro256 rng{10};
  std::uint64_t in[64];
  std::uint64_t out[64];
  for (std::uint64_t& w : in) w = rng.next();
  for (auto _ : state) {
    ops.transpose_64x64(in, out);
    benchmark::DoNotOptimize(out[0]);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_FullFirstRoundAttack(benchmark::State& state) {
  Xoshiro256 rng{8};
  for (auto _ : state) {
    const Key128 key = rng.key128();
    soc::DirectProbePlatform platform{soc::DirectProbePlatform::Config{},
                                      key};
    attack::GrinchConfig cfg;
    cfg.stages = 1;
    cfg.seed = rng.next();
    attack::GrinchAttack attack{platform, cfg};
    benchmark::DoNotOptimize(attack.run());
  }
}
BENCHMARK(BM_FullFirstRoundAttack)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv, /*allow_unknown=*/true};
  std::vector<std::string> args{argc > 0 ? argv[0] : "micro_throughput"};
  if (ctx.quick()) args.emplace_back("--benchmark_min_time=0.05");
  if (!ctx.json_path().empty()) {
    args.push_back("--benchmark_out=" + ctx.json_path());
    args.emplace_back("--benchmark_out_format=json");
  }
  for (const std::string& a : ctx.passthrough_args()) args.push_back(a);

  std::vector<char*> bargv;
  bargv.reserve(args.size());
  for (std::string& a : args) bargv.push_back(a.data());
  int bargc = static_cast<int>(bargv.size());
  benchmark::Initialize(&bargc, bargv.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, bargv.data())) return 1;
  // One registration per compiled-in-and-executable kernel, so a single
  // run compares generic/swar/avx2 on the same machine; every other
  // benchmark (and the wide path) runs on the active kernel, recorded in
  // the document context below.
  {
    using cachesim::kernels::Kind;
    constexpr Kind kKinds[] = {Kind::kGeneric, Kind::kSwar, Kind::kAvx2};
    for (const Kind kind : kKinds) {
      if (!cachesim::kernels::available(kind)) continue;
      const char* name = cachesim::kernels::ops(kind).name;
      benchmark::RegisterBenchmark(
          (std::string{"BM_ProbeKernel/"} + name).c_str(), BM_ProbeKernel,
          kind);
      benchmark::RegisterBenchmark(
          (std::string{"BM_Transpose64/"} + name).c_str(), BM_Transpose64,
          kind);
    }
  }
  benchmark::AddCustomContext("kernel", cachesim::kernels::active().name);
  // Pre-overhaul reference numbers (virtual-dispatch cache, per-encryption
  // heap traffic) so the JSON trajectory carries its own baseline.
  benchmark::AddCustomContext("baseline_cache_access_ns", "86.7");
  benchmark::AddCustomContext("baseline_table_gift64_instrumented_ns", "8729");
  benchmark::AddCustomContext("baseline_observe_one_encryption_ns", "14958");
  // Pre-partial-round reference (full 28-round victim per observation,
  // eager ciphertext): the batched-pipeline speedup is measured against it.
  benchmark::AddCustomContext("baseline_direct_observe_ns", "6312.3");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
