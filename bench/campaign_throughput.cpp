// Campaign overhead (ours): orchestration must be effectively free.
//
// The campaign engine adds a work queue, JSONL serialization, a flusher
// thread, running CRCs and periodic checkpoints on top of the same
// WideRecoveryEngine shards the direct TrialRunner path dispatches.  This
// bench runs the identical trial grid both ways — direct in-memory shard
// loop vs. full campaign (results file + checkpoints) — and reports the
// wall-clock ratio; tools/check_bench.py flags the committed baseline if
// campaign mode costs more than 5% over direct dispatch.
//
// Deterministic metrics (compared byte-for-byte against the baseline):
// trial/shard counts, verified counts from both paths (which must agree
// — the campaign replays the exact direct results), and the CRC-32 of
// the campaign's JSONL stream, which pins every result byte across
// thread counts, interruptions and machines.  Wall-clock goes to the
// timing section only.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "campaign/engine.h"
#include "campaign/spec.h"
#include "common/crc32.h"
#include "target/wide_engine.h"

using namespace grinch;

namespace {

/// The direct path: the same ShardPlan expansion the campaign uses,
/// dispatched straight onto a pool with in-memory results.  Constructs
/// its own pool, like run_campaign does, so both paths pay the same
/// startup cost.
unsigned direct_verified(unsigned threads,
                         const campaign::CampaignSpec& spec) {
  using Recovery = target::Gift64Recovery;
  runner::ThreadPool pool{threads};
  const runner::ShardPlan plan{spec.seed, spec.fault_seed, spec.trials,
                               spec.wide_width};
  typename target::KeyRecoveryEngine<Recovery>::Config ecfg;
  ecfg.max_encryptions = spec.budget;
  ecfg.vote_threshold = spec.effective_vote_threshold();
  ecfg.faults = spec.faults();
  std::vector<unsigned> verified(plan.shard_count(), 0);
  pool.parallel_for(plan.shard_count(), [&](std::size_t i) {
    const runner::WideShard& shard = plan.shard(i);
    const auto seeds = plan.seeds(shard);
    const auto fault_seeds = plan.fault_seeds(shard);
    std::vector<target::WideTrialSpec> specs(shard.width);
    for (unsigned j = 0; j < shard.width; ++j) {
      specs[j] = {Recovery::canonical_key(seeds[j].key), seeds[j].seed,
                  fault_seeds[j]};
    }
    target::WideRecoveryEngine<Recovery> engine{ecfg, {}};
    const auto results = engine.run(specs);
    for (unsigned j = 0; j < shard.width; ++j) {
      if (results[j].success && results[j].recovered_key ==
                                    specs[j].victim_key) {
        ++verified[i];
      }
    }
  });
  unsigned total = 0;
  for (const unsigned v : verified) total += v;
  return total;
}

std::string file_bytes(const std::string& path) {
  std::string out;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
    std::fclose(f);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx{argc, argv};

  campaign::CampaignSpec spec;
  spec.name = "bench";
  spec.cipher = "gift64";
  spec.trials = ctx.quick() ? 192 : 384;
  spec.wide_width = 8;
  spec.budget = 20000;
  ctx.set_config("trials", spec.trials);
  ctx.set_config("wide_width", spec.wide_width);
  ctx.set_config("budget", spec.budget);
  ctx.set_config("checkpoint_every_shards", 8u);

  std::printf("Campaign orchestration overhead vs direct dispatch\n\n");

  const std::filesystem::path scratch =
      std::filesystem::temp_directory_path() / "grinch_campaign_bench";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);

  // Best-of-5 per path: one number per run would let a scheduler hiccup
  // masquerade as orchestration overhead.
  constexpr int kReps = 5;
  double direct_seconds = 0.0;
  double campaign_seconds = 0.0;
  unsigned verified_direct = 0;
  campaign::Outcome outcome;
  std::string results_bytes;
  for (int rep = 0; rep < kReps; ++rep) {
    const double d0 = ctx.elapsed_seconds();
    verified_direct = direct_verified(ctx.threads(), spec);
    const double d = ctx.elapsed_seconds() - d0;
    if (rep == 0 || d < direct_seconds) direct_seconds = d;

    campaign::Options opts;
    opts.results_path =
        (scratch / ("r" + std::to_string(rep) + ".jsonl")).string();
    opts.checkpoint_path = opts.results_path + ".ckpt";
    opts.threads = ctx.threads();
    opts.checkpoint_every_shards = 8;
    const double c0 = ctx.elapsed_seconds();
    outcome = campaign::run_campaign(spec, opts);
    const double c = ctx.elapsed_seconds() - c0;
    if (rep == 0 || c < campaign_seconds) campaign_seconds = c;
    if (!outcome.ok()) {
      std::fprintf(stderr, "campaign failed: %s\n", outcome.error.c_str());
      return 1;
    }
    results_bytes = file_bytes(opts.results_path);
  }
  std::filesystem::remove_all(scratch);

  const std::uint32_t results_crc = crc32(results_bytes);
  const double ratio =
      direct_seconds > 0.0 ? campaign_seconds / direct_seconds : 1.0;

  char crc_hex[16];
  std::snprintf(crc_hex, sizeof crc_hex, "%08x", results_crc);
  char ratio_s[32];
  std::snprintf(ratio_s, sizeof ratio_s, "%.3f", ratio);

  // The recorded table carries only deterministic columns; wall-clock
  // lives in the timing section (and the stdout lines below), never in
  // the determinism-compared document.
  AsciiTable table{"campaign vs direct dispatch (gift64, wide 8)"};
  table.set_header({"path", "trials", "shards", "verified"});
  const std::string shards_s = std::to_string(outcome.shard_total);
  table.add_row({"direct", std::to_string(spec.trials), shards_s,
                 std::to_string(verified_direct)});
  table.add_row({"campaign", std::to_string(spec.trials), shards_s,
                 std::to_string(outcome.counters.verified)});
  ctx.print_table(table);
  std::printf("direct   %.3fs\ncampaign %.3fs\n", direct_seconds,
              campaign_seconds);
  std::printf("orchestration overhead: %sx (budget 1.05x)\n", ratio_s);

  // Deterministic metrics: identical for any --threads value (and the
  // campaign/direct verified counts must agree — same trials, same
  // pre-derived seeds).
  ctx.set_metric("trials", spec.trials);
  ctx.set_metric("shards", static_cast<std::uint64_t>(outcome.shard_total));
  ctx.set_metric("verified_direct", verified_direct);
  ctx.set_metric("verified_campaign", outcome.counters.verified);
  ctx.set_metric("paths_agree",
                 verified_direct == outcome.counters.verified);
  ctx.set_metric("results_crc", std::string{crc_hex});
  ctx.set_metric("total_encryptions", outcome.counters.total_encryptions);
  ctx.set_timing("direct_seconds", direct_seconds);
  ctx.set_timing("campaign_seconds", campaign_seconds);

  std::printf(
      "\nReading: the campaign layer's streaming/checkpoint machinery "
      "rides on a\ndedicated flusher thread, so orchestration stays off "
      "the workers' critical\npath; the JSONL CRC pins every result byte "
      "across thread counts and resumes.\n");
  return ctx.finish();
}
