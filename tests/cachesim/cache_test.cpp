#include "cachesim/cache.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace grinch::cachesim {
namespace {

CacheConfig small_config() {
  CacheConfig c;
  c.line_bytes = 4;
  c.num_sets = 4;
  c.associativity = 2;
  return c;
}

TEST(CacheConfig, PaperDefaultGeometry) {
  const CacheConfig c = CacheConfig::paper_default();
  EXPECT_EQ(c.line_bytes, 1u);
  EXPECT_EQ(c.num_sets, 64u);
  EXPECT_EQ(c.associativity, 16u);
  EXPECT_EQ(c.total_lines(), 1024u);  // the paper's 1024-line shared L1
  EXPECT_NO_THROW(c.validate());
}

TEST(CacheConfig, ValidateRejectsBadGeometry) {
  CacheConfig c = small_config();
  c.line_bytes = 3;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.num_sets = 5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.associativity = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.miss_latency = c.hit_latency;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.replacement = Replacement::kPlru;
  c.associativity = 3;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Cache, FirstAccessMissesSecondHits) {
  Cache cache{small_config()};
  const AccessResult r1 = cache.access(0x100);
  EXPECT_FALSE(r1.hit);
  EXPECT_EQ(r1.latency, cache.config().miss_latency);
  const AccessResult r2 = cache.access(0x100);
  EXPECT_TRUE(r2.hit);
  EXPECT_EQ(r2.latency, cache.config().hit_latency);
}

TEST(Cache, SameLineDifferentByteHits) {
  Cache cache{small_config()};  // 4-byte lines
  (void)cache.access(0x100);
  EXPECT_TRUE(cache.access(0x103).hit);
  EXPECT_FALSE(cache.access(0x104).hit);  // next line
}

TEST(Cache, SetIndexingFollowsGeometry) {
  Cache cache{small_config()};  // 4B lines, 4 sets
  EXPECT_EQ(cache.set_index(0x0), 0u);
  EXPECT_EQ(cache.set_index(0x4), 1u);
  EXPECT_EQ(cache.set_index(0x8), 2u);
  EXPECT_EQ(cache.set_index(0xC), 3u);
  EXPECT_EQ(cache.set_index(0x10), 0u);  // wraps
}

TEST(Cache, LineBaseMasksOffset) {
  Cache cache{small_config()};
  EXPECT_EQ(cache.line_base(0x107), 0x104u);
  EXPECT_EQ(cache.line_base(0x104), 0x104u);
}

TEST(Cache, EvictionHappensWhenSetIsFull) {
  Cache cache{small_config()};  // 2-way
  // Three distinct tags in set 0 (stride = line_bytes * num_sets = 16).
  (void)cache.access(0x00);
  (void)cache.access(0x10);
  const AccessResult r = cache.access(0x20);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache cache{small_config()};
  (void)cache.access(0x00);
  (void)cache.access(0x10);
  (void)cache.access(0x00);  // refresh 0x00: LRU is now 0x10
  const AccessResult r = cache.access(0x20);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_line_addr, 0x10u);
  EXPECT_TRUE(cache.contains(0x00));
  EXPECT_FALSE(cache.contains(0x10));
}

TEST(Cache, FifoIgnoresHits) {
  CacheConfig cfg = small_config();
  cfg.replacement = Replacement::kFifo;
  Cache cache{cfg};
  (void)cache.access(0x00);
  (void)cache.access(0x10);
  (void)cache.access(0x00);  // hit does not refresh under FIFO
  const AccessResult r = cache.access(0x20);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_line_addr, 0x00u);  // oldest fill evicted
}

TEST(Cache, EvictedAddressReconstructsLineBase) {
  Cache cache{small_config()};
  (void)cache.access(0x34);  // set 1
  (void)cache.access(0x44);  // set 1
  const AccessResult r = cache.access(0x54);  // set 1, evicts 0x34's line
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_line_addr, 0x34u & ~0x3ull);
}

TEST(Cache, FlushInvalidatesEverything) {
  Cache cache{small_config()};
  (void)cache.access(0x00);
  (void)cache.access(0x10);
  EXPECT_EQ(cache.valid_lines(), 2u);
  cache.flush();
  EXPECT_EQ(cache.valid_lines(), 0u);
  EXPECT_FALSE(cache.contains(0x00));
  EXPECT_EQ(cache.stats().full_flushes, 1u);
}

TEST(Cache, FlushLineIsTargeted) {
  Cache cache{small_config()};
  (void)cache.access(0x00);
  (void)cache.access(0x04);
  EXPECT_TRUE(cache.flush_line(0x00));
  EXPECT_FALSE(cache.contains(0x00));
  EXPECT_TRUE(cache.contains(0x04));
  EXPECT_FALSE(cache.flush_line(0x00));  // already gone
}

TEST(Cache, ContainsDoesNotMutate) {
  Cache cache{small_config()};
  (void)cache.access(0x00);
  const CacheStats before = cache.stats();
  (void)cache.contains(0x00);
  (void)cache.contains(0x40);
  EXPECT_EQ(cache.stats().accesses, before.accesses);
  EXPECT_EQ(cache.stats().hits, before.hits);
}

TEST(Cache, StatsAccumulateAndClear) {
  Cache cache{small_config()};
  (void)cache.access(0x00);
  (void)cache.access(0x00);
  (void)cache.access(0x40);
  EXPECT_EQ(cache.stats().accesses, 3u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_NEAR(cache.stats().hit_rate(), 1.0 / 3, 1e-9);
  cache.clear_stats();
  EXPECT_EQ(cache.stats().accesses, 0u);
}

TEST(Cache, PaperDefaultMapsSBoxRowsToDistinctSets) {
  // With 1-byte lines and 64 sets, the 16 S-Box rows at 0x1000.. occupy 16
  // distinct sets — the precondition for clean Flush+Reload in Fig. 3.
  Cache cache{CacheConfig::paper_default()};
  std::set<std::uint64_t> sets;
  for (unsigned i = 0; i < 16; ++i) sets.insert(cache.set_index(0x1000 + i));
  EXPECT_EQ(sets.size(), 16u);
}

// ---- Parameterised sweep: the invariant hit-after-fill holds for every
// ---- geometry and policy combination.

struct GeometryParam {
  unsigned line_bytes;
  unsigned sets;
  unsigned ways;
  Replacement policy;
};

class CacheGeometry : public ::testing::TestWithParam<GeometryParam> {};

TEST_P(CacheGeometry, FillThenHitInvariant) {
  const GeometryParam p = GetParam();
  CacheConfig cfg;
  cfg.line_bytes = p.line_bytes;
  cfg.num_sets = p.sets;
  cfg.associativity = p.ways;
  cfg.replacement = p.policy;
  Cache cache{cfg};
  Xoshiro256 rng{p.line_bytes * 131u + p.sets * 17u + p.ways};
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t addr = rng.uniform(1 << 16);
    (void)cache.access(addr);
    EXPECT_TRUE(cache.contains(addr)) << "addr " << addr;
    EXPECT_TRUE(cache.access(addr).hit);
  }
}

TEST_P(CacheGeometry, ValidLinesNeverExceedCapacity) {
  const GeometryParam p = GetParam();
  CacheConfig cfg;
  cfg.line_bytes = p.line_bytes;
  cfg.num_sets = p.sets;
  cfg.associativity = p.ways;
  cfg.replacement = p.policy;
  Cache cache{cfg};
  Xoshiro256 rng{42};
  for (int i = 0; i < 2000; ++i) {
    (void)cache.access(rng.uniform(1 << 18));
    ASSERT_LE(cache.valid_lines(), cfg.total_lines());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometry,
    ::testing::Values(
        GeometryParam{1, 64, 16, Replacement::kLru},   // paper default
        GeometryParam{2, 64, 16, Replacement::kLru},   // Table I rows
        GeometryParam{4, 64, 16, Replacement::kLru},
        GeometryParam{8, 64, 16, Replacement::kLru},
        GeometryParam{64, 64, 8, Replacement::kLru},   // desktop-like
        GeometryParam{1, 64, 16, Replacement::kFifo},
        GeometryParam{1, 64, 16, Replacement::kPlru},
        GeometryParam{1, 64, 16, Replacement::kRandom},
        GeometryParam{4, 16, 1, Replacement::kLru},    // direct-mapped
        GeometryParam{4, 1, 16, Replacement::kPlru},   // fully associative
        GeometryParam{32, 128, 4, Replacement::kFifo},
        GeometryParam{16, 32, 2, Replacement::kRandom}));

}  // namespace
}  // namespace grinch::cachesim
