#include <gtest/gtest.h>

#include "cachesim/cache.h"

namespace grinch::cachesim {
namespace {

CacheConfig prefetch_config(unsigned lines) {
  CacheConfig c;
  c.line_bytes = 4;
  c.num_sets = 16;
  c.associativity = 4;
  c.prefetch_lines = lines;
  return c;
}

TEST(Prefetch, MissPullsInSequentialNeighbours) {
  Cache cache{prefetch_config(2)};
  (void)cache.access(0x100);
  EXPECT_TRUE(cache.contains(0x100));
  EXPECT_TRUE(cache.contains(0x104));  // +1 line
  EXPECT_TRUE(cache.contains(0x108));  // +2 lines
  EXPECT_FALSE(cache.contains(0x10C));
  EXPECT_EQ(cache.stats().prefetch_fills, 2u);
}

TEST(Prefetch, PrefetchedLinesHitWithoutDemandMiss) {
  Cache cache{prefetch_config(1)};
  (void)cache.access(0x200);
  const AccessResult r = cache.access(0x204);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Prefetch, NoPrefetchWhenDisabled) {
  Cache cache{prefetch_config(0)};
  (void)cache.access(0x100);
  EXPECT_FALSE(cache.contains(0x104));
  EXPECT_EQ(cache.stats().prefetch_fills, 0u);
}

TEST(Prefetch, HitsDoNotTriggerPrefetch) {
  Cache cache{prefetch_config(1)};
  (void)cache.access(0x100);
  const auto fills = cache.stats().prefetch_fills;
  (void)cache.access(0x100);  // hit
  EXPECT_EQ(cache.stats().prefetch_fills, fills);
}

TEST(Prefetch, AlreadyResidentNeighbourIsNotRefetched) {
  Cache cache{prefetch_config(1)};
  (void)cache.access(0x104);  // brings 0x104 (+0x108)
  const auto fills = cache.stats().prefetch_fills;
  (void)cache.access(0x100);  // neighbour 0x104 already resident
  EXPECT_EQ(cache.stats().prefetch_fills, fills);
}

TEST(Prefetch, DemandStatsExcludePrefetches) {
  Cache cache{prefetch_config(3)};
  (void)cache.access(0x100);
  EXPECT_EQ(cache.stats().accesses, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().prefetch_fills, 3u);
}

TEST(Prefetch, ObfuscatesTheDemandedLineForAProber) {
  // The attack-relevant effect: after one victim access, several lines
  // are resident — presence no longer identifies the demanded index.
  Cache cache{prefetch_config(3)};
  (void)cache.access(0x100);
  unsigned resident = 0;
  for (unsigned i = 0; i < 8; ++i) resident += cache.contains(0x100 + 4 * i);
  EXPECT_EQ(resident, 4u);  // demanded + 3 prefetched
}

}  // namespace
}  // namespace grinch::cachesim
