// Differential validation of the cache simulator against an independent,
// deliberately naive reference model (map + recency lists).  Any
// divergence in the hit/miss sequence over long random traces flags a
// bookkeeping bug in the optimised implementation.
#include <gtest/gtest.h>

#include <list>
#include <map>

#include "cachesim/cache.h"
#include "common/rng.h"

namespace grinch::cachesim {
namespace {

/// Naive set-associative cache with exact LRU or FIFO, written as
/// differently as possible from cachesim::Cache.
class ReferenceCache {
 public:
  ReferenceCache(unsigned line_bytes, unsigned sets, unsigned ways, bool lru)
      : line_bytes_(line_bytes), sets_(sets), ways_(ways), lru_(lru) {}

  bool access(std::uint64_t addr) {
    const std::uint64_t line = addr / line_bytes_;
    const std::uint64_t set = line % sets_;
    const std::uint64_t tag = line / sets_;
    auto& order = sets_state_[set];
    for (auto it = order.begin(); it != order.end(); ++it) {
      if (*it == tag) {
        if (lru_) {  // refresh recency; FIFO leaves order untouched
          order.erase(it);
          order.push_back(tag);
        }
        return true;
      }
    }
    if (order.size() == ways_) order.pop_front();  // evict oldest
    order.push_back(tag);
    return false;
  }

  void flush_line(std::uint64_t addr) {
    const std::uint64_t line = addr / line_bytes_;
    const std::uint64_t set = line % sets_;
    const std::uint64_t tag = line / sets_;
    sets_state_[set].remove(tag);
  }

  void flush() { sets_state_.clear(); }

 private:
  unsigned line_bytes_, sets_, ways_;
  bool lru_;
  std::map<std::uint64_t, std::list<std::uint64_t>> sets_state_;
};

struct Param {
  unsigned line_bytes;
  unsigned sets;
  unsigned ways;
  Replacement policy;
};

class CacheVsReference : public ::testing::TestWithParam<Param> {};

TEST_P(CacheVsReference, HitMissSequencesAgreeOnRandomTraces) {
  const Param p = GetParam();
  CacheConfig cfg;
  cfg.line_bytes = p.line_bytes;
  cfg.num_sets = p.sets;
  cfg.associativity = p.ways;
  cfg.replacement = p.policy;
  Cache cache{cfg};
  ReferenceCache ref{p.line_bytes, p.sets, p.ways,
                     p.policy == Replacement::kLru};

  Xoshiro256 rng{p.line_bytes * 1000003u + p.sets * 101u + p.ways};
  for (int i = 0; i < 20000; ++i) {
    const unsigned op = static_cast<unsigned>(rng.uniform(100));
    if (op < 90) {
      // Skewed address distribution: hot region + cold tail, to exercise
      // both hits and evictions.
      const std::uint64_t addr = (op < 60) ? rng.uniform(1 << 10)
                                           : rng.uniform(1 << 16);
      ASSERT_EQ(cache.access(addr).hit, ref.access(addr))
          << "op " << i << " addr " << addr;
    } else if (op < 98) {
      const std::uint64_t addr = rng.uniform(1 << 10);
      cache.flush_line(addr);
      ref.flush_line(addr);
    } else {
      cache.flush();
      ref.flush();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheVsReference,
    ::testing::Values(Param{1, 64, 16, Replacement::kLru},   // paper default
                      Param{4, 16, 4, Replacement::kLru},
                      Param{8, 8, 2, Replacement::kLru},
                      Param{64, 64, 8, Replacement::kLru},
                      Param{1, 64, 16, Replacement::kFifo},
                      Param{4, 16, 4, Replacement::kFifo},
                      Param{16, 4, 1, Replacement::kLru},    // direct-mapped
                      Param{16, 4, 1, Replacement::kFifo},
                      Param{2, 1, 32, Replacement::kLru},    // fully assoc.
                      Param{32, 128, 2, Replacement::kFifo}));

}  // namespace
}  // namespace grinch::cachesim
