// LockstepCaches differential suite.
//
// A lockstep lane is a cold LRU cache in struct-of-arrays clothing: from
// an empty state, every access/flush_line sequence must produce exactly
// the hit/miss verdicts and residency of a scalar cachesim::Cache run
// from empty on the same stream.  This suite pins that equivalence over
// random streams on several geometries, checks lane independence under
// interleaving, and pins the supports() gate (the cold-window theorem in
// cachesim/lockstep.h holds only for LRU without prefetch; the wide
// conformance suite covers the warm-history half of the argument).
#include "cachesim/lockstep.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cachesim/cache.h"
#include "cachesim/kernels/kernels.h"
#include "common/rng.h"

namespace grinch::cachesim {
namespace {

CacheConfig lru_config(unsigned line_bytes, unsigned num_sets,
                       unsigned associativity) {
  CacheConfig config = CacheConfig::paper_default();
  config.line_bytes = line_bytes;
  config.num_sets = num_sets;
  config.associativity = associativity;
  config.replacement = Replacement::kLru;
  config.prefetch_lines = 0;
  return config;
}

TEST(LockstepCaches, SupportsGateIsLruWithoutPrefetch) {
  CacheConfig config = CacheConfig::paper_default();
  EXPECT_TRUE(LockstepCaches::supports(config));
  for (const Replacement r :
       {Replacement::kFifo, Replacement::kPlru, Replacement::kRandom}) {
    config.replacement = r;
    EXPECT_FALSE(LockstepCaches::supports(config));
  }
  config.replacement = Replacement::kLru;
  config.prefetch_lines = 1;
  EXPECT_FALSE(LockstepCaches::supports(config));
}

TEST(LockstepCaches, LaneMatchesColdScalarCache) {
  // Random access/flush streams: every lane verdict and every residency
  // answer must equal a scalar Cache driven from empty.
  const CacheConfig configs[] = {
      lru_config(1, 64, 16),  // the paper geometry
      lru_config(4, 8, 2),    // tiny, heavy eviction traffic
      lru_config(8, 4, 1),    // direct-mapped
      lru_config(2, 16, 4),
  };
  for (const CacheConfig& config : configs) {
    LockstepCaches lanes{config, 4};
    Cache reference{config};
    lanes.reset_lane(0);
    Xoshiro256 rng{0x10C4 ^ config.num_sets ^ config.associativity};
    // Address pool small enough to revisit lines (hits AND evictions).
    const std::uint64_t pool =
        static_cast<std::uint64_t>(config.line_bytes) * config.num_sets *
        (config.associativity + 2);
    for (unsigned step = 0; step < 4000; ++step) {
      const std::uint64_t addr = rng.next() % pool;
      const unsigned op = static_cast<unsigned>(rng.next() % 8);
      if (op == 0) {
        EXPECT_EQ(lanes.flush_line(0, addr), reference.flush_line(addr))
            << "step " << step;
      } else if (op == 1) {
        EXPECT_EQ(lanes.contains(0, addr), reference.contains(addr))
            << "step " << step;
      } else {
        EXPECT_EQ(lanes.access(0, addr), reference.access(addr).hit)
            << "step " << step;
      }
    }
  }
}

TEST(LockstepCaches, LanesAreIndependentUnderInterleaving) {
  // Drive 3 lanes with different streams, interleaved arbitrarily; each
  // lane must behave exactly like its own scalar cache.
  const CacheConfig config = lru_config(2, 8, 4);
  constexpr unsigned kLanes = 3;
  LockstepCaches lanes{config, kLanes};
  std::vector<Cache> refs;
  std::vector<Xoshiro256> streams;
  for (unsigned l = 0; l < kLanes; ++l) {
    lanes.reset_lane(l);
    refs.emplace_back(config);
    streams.emplace_back(0xAB5 + l);
  }
  Xoshiro256 pick{0x5CED};
  const std::uint64_t pool = static_cast<std::uint64_t>(config.line_bytes) *
                             config.num_sets * (config.associativity + 3);
  for (unsigned step = 0; step < 6000; ++step) {
    const unsigned l = static_cast<unsigned>(pick.next() % kLanes);
    const std::uint64_t addr = streams[l].next() % pool;
    if (streams[l].next() % 6 == 0) {
      EXPECT_EQ(lanes.flush_line(l, addr), refs[l].flush_line(addr))
          << "lane " << l << " step " << step;
    } else {
      EXPECT_EQ(lanes.access(l, addr), refs[l].access(addr).hit)
          << "lane " << l << " step " << step;
    }
  }
  for (unsigned l = 0; l < kLanes; ++l) {
    for (std::uint64_t addr = 0; addr < pool; addr += config.line_bytes) {
      EXPECT_EQ(lanes.contains(l, addr), refs[l].contains(addr))
          << "lane " << l << " addr " << addr;
    }
  }
}

TEST(LockstepCaches, LaneMatchesColdScalarCacheUnderEveryKernel) {
  // The scalar-cache differential repeated under each compiled-in probe
  // kernel, on geometries whose sets fill past the inline-scalar
  // cut-over (n <= 4) so the kernel's find_tag/min_stamp_slot paths are
  // the ones being pinned.
  using kernels::Kind;
  const CacheConfig configs[] = {
      lru_config(1, 64, 16),  // the paper geometry
      lru_config(1, 4, 12),   // deep sets, heavy eviction traffic
      lru_config(2, 8, 7),    // odd ways (SIMD tail lanes)
  };
  for (const Kind kind : {Kind::kGeneric, Kind::kSwar, Kind::kAvx2}) {
    if (!kernels::available(kind)) continue;
    kernels::ScopedKernel scope{kind};
    for (const CacheConfig& config : configs) {
      LockstepCaches lanes{config, 1};
      ASSERT_EQ(lanes.kernel().kind, kind);
      Cache reference{config};
      lanes.reset_lane(0);
      Xoshiro256 rng{0x2E5D ^ config.num_sets ^ config.associativity};
      const std::uint64_t pool =
          static_cast<std::uint64_t>(config.line_bytes) * config.num_sets *
          (config.associativity + 2);
      for (unsigned step = 0; step < 4000; ++step) {
        const std::uint64_t addr = rng.next() % pool;
        if (rng.next() % 8 == 0) {
          ASSERT_EQ(lanes.flush_line(0, addr), reference.flush_line(addr))
              << lanes.kernel().name << " step " << step;
        } else {
          ASSERT_EQ(lanes.access(0, addr), reference.access(addr).hit)
              << lanes.kernel().name << " step " << step;
        }
      }
    }
  }
}

TEST(LockstepCaches, ResetLaneEmptiesOnlyThatLane) {
  const CacheConfig config = lru_config(1, 4, 2);
  LockstepCaches lanes{config, 2};
  lanes.reset_lane(0);
  lanes.reset_lane(1);
  (void)lanes.access(0, 3);
  (void)lanes.access(1, 3);
  lanes.reset_lane(0);
  EXPECT_FALSE(lanes.contains(0, 3));
  EXPECT_TRUE(lanes.contains(1, 3));
  // A reset lane is cold again: the same stream replays identically.
  EXPECT_FALSE(lanes.access(0, 3));
  EXPECT_TRUE(lanes.access(0, 3));
}

TEST(LockstepCaches, TouchIsAccessWithoutResult) {
  const CacheConfig config = lru_config(1, 8, 2);
  LockstepCaches a{config, 1};
  LockstepCaches b{config, 1};
  a.reset_lane(0);
  b.reset_lane(0);
  Xoshiro256 rng{0x70C4};
  for (unsigned step = 0; step < 500; ++step) {
    const std::uint64_t addr = rng.next() % 64;
    a.touch(0, addr);
    (void)b.access(0, addr);
  }
  for (std::uint64_t addr = 0; addr < 64; ++addr) {
    EXPECT_EQ(a.contains(0, addr), b.contains(0, addr)) << addr;
  }
}

}  // namespace
}  // namespace grinch::cachesim
