#include "cachesim/replacement.h"

#include <gtest/gtest.h>

#include <set>

namespace grinch::cachesim {
namespace {

TEST(Lru, VictimIsOldestTouch) {
  LruState lru{4};
  for (unsigned w = 0; w < 4; ++w) lru.on_fill(w);
  lru.on_hit(0);
  EXPECT_EQ(lru.choose_victim(), 1u);
  lru.on_hit(1);
  EXPECT_EQ(lru.choose_victim(), 2u);
}

TEST(Lru, FillCountsAsUse) {
  LruState lru{2};
  lru.on_fill(0);
  lru.on_fill(1);
  EXPECT_EQ(lru.choose_victim(), 0u);
}

TEST(Fifo, HitsDoNotRefresh) {
  FifoState fifo{3};
  fifo.on_fill(0);
  fifo.on_fill(1);
  fifo.on_fill(2);
  fifo.on_hit(0);
  fifo.on_hit(0);
  EXPECT_EQ(fifo.choose_victim(), 0u);  // still the oldest fill
}

TEST(Fifo, RefillMovesToBack) {
  FifoState fifo{2};
  fifo.on_fill(0);
  fifo.on_fill(1);
  fifo.on_fill(0);  // re-filled (after an eviction elsewhere)
  EXPECT_EQ(fifo.choose_victim(), 1u);
}

TEST(Plru, SingleWayAlwaysVictimZero) {
  PlruState plru{1};
  EXPECT_EQ(plru.choose_victim(), 0u);
}

TEST(Plru, VictimAvoidsRecentlyTouchedWay) {
  PlruState plru{4};
  for (unsigned w = 0; w < 4; ++w) plru.on_fill(w);
  plru.on_hit(2);
  EXPECT_NE(plru.choose_victim(), 2u);
  plru.on_hit(0);
  EXPECT_NE(plru.choose_victim(), 0u);
}

TEST(Plru, TouchingOneWayRepeatedlyKeepsItSafe) {
  PlruState plru{8};
  for (unsigned w = 0; w < 8; ++w) plru.on_fill(w);
  for (int i = 0; i < 100; ++i) {
    plru.on_hit(5);
    EXPECT_NE(plru.choose_victim(), 5u);
  }
}

TEST(Plru, CyclesThroughAllWaysUnderRoundRobinFills) {
  // Filling the chosen victim repeatedly must eventually name every way
  // (tree PLRU approximates LRU; it must not starve a way).
  PlruState plru{4};
  for (unsigned w = 0; w < 4; ++w) plru.on_fill(w);
  std::set<unsigned> victims;
  for (int i = 0; i < 16; ++i) {
    const unsigned v = plru.choose_victim();
    victims.insert(v);
    plru.on_fill(v);
  }
  EXPECT_EQ(victims.size(), 4u);
}

TEST(Random, DeterministicForSeed) {
  RandomState a{8, 123}, b{8, 123};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.choose_victim(), b.choose_victim());
}

TEST(Random, CoversAllWays) {
  RandomState r{4, 7};
  std::set<unsigned> seen;
  for (int i = 0; i < 200; ++i) seen.insert(r.choose_victim());
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Factory, ProducesRequestedPolicy) {
  EXPECT_NE(dynamic_cast<LruState*>(
                make_replacement_state(Replacement::kLru, 4, 0).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<FifoState*>(
                make_replacement_state(Replacement::kFifo, 4, 0).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<PlruState*>(
                make_replacement_state(Replacement::kPlru, 4, 0).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<RandomState*>(
                make_replacement_state(Replacement::kRandom, 4, 0).get()),
            nullptr);
}

class PolicyVictimRange
    : public ::testing::TestWithParam<std::tuple<Replacement, unsigned>> {};

TEST_P(PolicyVictimRange, VictimAlwaysInRange) {
  const auto [policy, ways] = GetParam();
  auto state = make_replacement_state(policy, ways, 99);
  for (unsigned w = 0; w < ways; ++w) state->on_fill(w);
  for (int i = 0; i < 100; ++i) {
    const unsigned v = state->choose_victim();
    EXPECT_LT(v, ways);
    state->on_fill(v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyVictimRange,
    ::testing::Combine(::testing::Values(Replacement::kLru, Replacement::kFifo,
                                         Replacement::kPlru,
                                         Replacement::kRandom),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u)));

}  // namespace
}  // namespace grinch::cachesim
