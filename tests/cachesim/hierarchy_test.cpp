#include "cachesim/hierarchy.h"

#include <gtest/gtest.h>

namespace grinch::cachesim {
namespace {

HierarchyConfig two_level() {
  HierarchyConfig h;
  h.l1.line_bytes = 4;
  h.l1.num_sets = 4;
  h.l1.associativity = 2;
  h.l1.hit_latency = 1;
  h.l1.miss_latency = 10;
  CacheConfig l2;
  l2.line_bytes = 4;
  l2.num_sets = 16;
  l2.associativity = 4;
  l2.hit_latency = 8;
  l2.miss_latency = 30;
  h.l2 = l2;
  h.dram_latency = 100;
  return h;
}

TEST(Hierarchy, ColdAccessGoesToDram) {
  CacheHierarchy h{two_level()};
  const auto r = h.access(0x100);
  EXPECT_EQ(r.level, HitLevel::kDram);
  // L1 miss (10) + L2 miss (30) + DRAM (100).
  EXPECT_EQ(r.latency, 140u);
}

TEST(Hierarchy, SecondAccessHitsL1) {
  CacheHierarchy h{two_level()};
  (void)h.access(0x100);
  const auto r = h.access(0x100);
  EXPECT_EQ(r.level, HitLevel::kL1);
  EXPECT_EQ(r.latency, 1u);
}

TEST(Hierarchy, L1EvictionStillHitsL2) {
  CacheHierarchy h{two_level()};
  (void)h.access(0x000);
  // Evict 0x000 from the tiny L1 by filling its set (stride 16).
  (void)h.access(0x010);
  (void)h.access(0x020);
  EXPECT_FALSE(h.l1().contains(0x000));
  EXPECT_TRUE(h.l2().contains(0x000));
  const auto r = h.access(0x000);
  EXPECT_EQ(r.level, HitLevel::kL2);
  EXPECT_EQ(r.latency, 10u + 8u);  // L1 miss + L2 hit
}

TEST(Hierarchy, SingleLevelFallsThroughToDram) {
  HierarchyConfig cfg = two_level();
  cfg.l2.reset();
  CacheHierarchy h{cfg};
  EXPECT_FALSE(h.has_l2());
  const auto r = h.access(0x40);
  EXPECT_EQ(r.level, HitLevel::kDram);
  EXPECT_EQ(r.latency, 10u + 100u);
}

TEST(Hierarchy, FlushAllClearsBothLevels) {
  CacheHierarchy h{two_level()};
  (void)h.access(0x100);
  h.flush_all();
  EXPECT_FALSE(h.l1().contains(0x100));
  EXPECT_FALSE(h.l2().contains(0x100));
}

TEST(Hierarchy, FlushLineClearsBothLevels) {
  CacheHierarchy h{two_level()};
  (void)h.access(0x100);
  (void)h.access(0x200);
  h.flush_line(0x100);
  EXPECT_FALSE(h.l1().contains(0x100));
  EXPECT_FALSE(h.l2().contains(0x100));
  EXPECT_TRUE(h.l1().contains(0x200));
}

TEST(Hierarchy, FlushReloadTimingIsDistinguishableAcrossLevels) {
  // The probing threshold argument: an L1 hit must be distinguishable
  // from any deeper service level.
  CacheHierarchy h{two_level()};
  (void)h.access(0x300);             // now in L1+L2
  const auto hit = h.access(0x300);  // L1 hit
  h.flush_line(0x300);
  const auto miss = h.access(0x300);  // from DRAM
  EXPECT_LT(hit.latency * 4, miss.latency);
}

}  // namespace
}  // namespace grinch::cachesim
