// Kernel registry conformance suite.
//
// The dispatch contract (cachesim/kernels/kernels.h) is that every
// compiled-in kernel is bit-identical to the `generic` reference for
// every input the callers can produce.  This suite pins that three ways:
// direct differential tests of each Ops entry point against generic on
// random inputs, an algebraic check of the transpose/gather pair against
// the bit-level definition, and a full differential fuzz of
// LockstepCaches (the only consumer that caches an Ops table) under each
// kernel against the generic-kernel pool on randomized supported
// geometries.  It also pins the registry mechanics ScopedKernel relies
// on and the uint8_t occupancy-counter guard in the LockstepCaches
// constructor.
#include "cachesim/kernels/kernels.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "cachesim/lockstep.h"
#include "common/rng.h"

namespace grinch::cachesim::kernels {
namespace {

std::vector<Kind> available_kinds() {
  std::vector<Kind> kinds;
  for (const Kind k : {Kind::kGeneric, Kind::kSwar, Kind::kAvx2}) {
    if (available(k)) kinds.push_back(k);
  }
  return kinds;
}

TEST(Kernels, RegistryMechanics) {
  // generic is unconditionally compiled in; the resolved default must be
  // executable; set_active round-trips through ScopedKernel.
  EXPECT_TRUE(available(Kind::kGeneric));
  EXPECT_TRUE(available(active().kind));
  const Kind before = active().kind;
  {
    ScopedKernel scope{Kind::kGeneric};
    EXPECT_EQ(active().kind, Kind::kGeneric);
    EXPECT_STREQ(active().name, "generic");
  }
  EXPECT_EQ(active().kind, before);
  for (const Kind k : available_kinds()) {
    EXPECT_EQ(ops(k).kind, k);
    EXPECT_NE(ops(k).name, nullptr);
    EXPECT_NE(ops(k).find_tag, nullptr);
    EXPECT_NE(ops(k).min_stamp_slot, nullptr);
    EXPECT_NE(ops(k).transpose_64x64, nullptr);
    EXPECT_NE(ops(k).gather_column, nullptr);
  }
}

TEST(Kernels, FindTagMatchesGeneric) {
  // Random (tag, stamp) pair arrays at every length the cache can
  // produce, probing both resident and absent tags.  Live tags are
  // unique (a set holds each line at most once), mirroring the caller's
  // precondition.
  const Ops& generic = ops(Kind::kGeneric);
  Xoshiro256 rng{0xF1AD};
  for (unsigned n = 0; n <= 32; ++n) {
    for (unsigned trial = 0; trial < 64; ++trial) {
      std::array<std::uint64_t, 64> pairs{};
      for (unsigned i = 0; i < n; ++i) {
        pairs[2 * i] = (rng.next() & ~std::uint64_t{31}) | i;  // unique tags
        pairs[2 * i + 1] = rng.next();
      }
      // Probe every resident tag plus a guaranteed-absent one.
      for (unsigned probe = 0; probe <= n; ++probe) {
        const std::uint64_t tag =
            probe < n ? pairs[2 * probe] : (rng.next() | 32);
        const int want = generic.find_tag(pairs.data(), n, tag);
        for (const Kind k : available_kinds()) {
          EXPECT_EQ(ops(k).find_tag(pairs.data(), n, tag), want)
              << ops(k).name << " n=" << n << " probe=" << probe;
        }
      }
    }
  }
}

TEST(Kernels, MinStampSlotMatchesGeneric) {
  // Unique stamps < 2^32 (the lane clock strictly increases), every ways
  // count from 1 through 32, the minimum planted at every position.
  const Ops& generic = ops(Kind::kGeneric);
  Xoshiro256 rng{0x57A2};
  for (unsigned ways = 1; ways <= 32; ++ways) {
    for (unsigned trial = 0; trial < 64; ++trial) {
      std::array<std::uint64_t, 64> pairs{};
      for (unsigned i = 0; i < ways; ++i) {
        pairs[2 * i] = rng.next();
        // Distinct stamps: a random high part with the slot in the low
        // bits keeps them unique without sorting.
        pairs[2 * i + 1] = ((rng.next() & 0x03FF'FFFF) << 6) | i;
      }
      const unsigned want = generic.min_stamp_slot(pairs.data(), ways);
      for (const Kind k : available_kinds()) {
        EXPECT_EQ(ops(k).min_stamp_slot(pairs.data(), ways), want)
            << ops(k).name << " ways=" << ways;
      }
    }
  }
}

TEST(Kernels, TransposeMatchesBitDefinition) {
  // out[r] bit c == in[c] bit r, checked against both the definition and
  // the generic kernel on dense random matrices plus the degenerate
  // all-zero / all-one / identity patterns.
  Xoshiro256 rng{0x7245};
  std::vector<std::array<std::uint64_t, 64>> inputs;
  inputs.push_back({});                                     // all zero
  inputs.emplace_back().fill(~std::uint64_t{0});            // all one
  auto& identity = inputs.emplace_back();
  for (unsigned i = 0; i < 64; ++i) identity[i] = std::uint64_t{1} << i;
  for (unsigned trial = 0; trial < 32; ++trial) {
    auto& m = inputs.emplace_back();
    for (std::uint64_t& w : m) w = rng.next();
  }
  for (const auto& in : inputs) {
    std::array<std::uint64_t, 64> want{};
    for (unsigned r = 0; r < 64; ++r) {
      for (unsigned c = 0; c < 64; ++c) {
        want[r] |= ((in[c] >> r) & 1) << c;
      }
    }
    for (const Kind k : available_kinds()) {
      std::array<std::uint64_t, 64> out{};
      ops(k).transpose_64x64(in.data(), out.data());
      EXPECT_EQ(out, want) << ops(k).name;
    }
  }
}

TEST(Kernels, GatherColumnMatchesBitDefinition) {
  // bit r of the result == (rows[r] >> column) & 1 for r < nrows, zero
  // above; every row count and a sample of columns.
  Xoshiro256 rng{0x6A7E};
  std::array<std::uint64_t, 64> rows{};
  for (std::uint64_t& w : rows) w = rng.next();
  for (unsigned nrows = 0; nrows <= 64; ++nrows) {
    for (const unsigned column : {0u, 1u, 17u, 31u, 32u, 62u, 63u}) {
      std::uint64_t want = 0;
      for (unsigned r = 0; r < nrows; ++r) {
        want |= ((rows[r] >> column) & 1) << r;
      }
      for (const Kind k : available_kinds()) {
        EXPECT_EQ(ops(k).gather_column(rows.data(), nrows, column), want)
            << ops(k).name << " nrows=" << nrows << " column=" << column;
      }
    }
  }
}

TEST(Kernels, LockstepDifferentialFuzzAcrossKernels) {
  // The consumer-level contract: a LockstepCaches pool constructed under
  // any kernel produces bit-identical verdicts to the generic-kernel
  // pool on the same random access/flush/reset stream.  Geometries are
  // randomized over the supported space, including ways counts past the
  // inline-scalar cut-over and past the widest SIMD lane group.
  Xoshiro256 geo_rng{0xD1FF};
  for (unsigned round = 0; round < 12; ++round) {
    CacheConfig config = CacheConfig::paper_default();
    config.line_bytes = 1u << (geo_rng.next() % 4);
    config.num_sets = 1u << (1 + geo_rng.next() % 6);
    config.associativity = 1 + static_cast<unsigned>(geo_rng.next() % 24);
    const std::uint64_t stream_seed = geo_rng.next();

    constexpr unsigned kLanes = 4;
    ScopedKernel generic_scope{Kind::kGeneric};
    LockstepCaches reference{config, kLanes};
    for (unsigned l = 0; l < kLanes; ++l) reference.reset_lane(l);

    for (const Kind k : available_kinds()) {
      ScopedKernel scope{k};
      LockstepCaches pool{config, kLanes};
      ASSERT_EQ(pool.kernel().kind, k);
      for (unsigned l = 0; l < kLanes; ++l) pool.reset_lane(l);

      // Identical streams for reference and pool: re-seed per kernel.
      Xoshiro256 ref_rng{stream_seed};
      Xoshiro256 pool_rng{stream_seed};
      const std::uint64_t span = static_cast<std::uint64_t>(
          config.line_bytes) * config.num_sets * (config.associativity + 2);
      const auto step = [&](LockstepCaches& c, Xoshiro256& rng) {
        const unsigned lane = static_cast<unsigned>(rng.next() % kLanes);
        const std::uint64_t addr = rng.next() % span;
        switch (rng.next() % 8) {
          case 0:
            return std::uint64_t{c.flush_line(lane, addr)};
          case 1:
            c.reset_lane(lane);
            return std::uint64_t{2};
          case 2:
            return std::uint64_t{c.contains(lane, addr)} | 4;
          default:
            return std::uint64_t{c.access(lane, addr)} | 8;
        }
      };
      for (unsigned s = 0; s < 3000; ++s) {
        ASSERT_EQ(step(pool, pool_rng), step(reference, ref_rng))
            << pool.kernel().name << " geometry round " << round << " step "
            << s;
      }
      for (unsigned l = 0; l < kLanes; ++l) {
        for (std::uint64_t a = 0; a < span; a += config.line_bytes) {
          ASSERT_EQ(pool.contains(l, a), reference.contains(l, a))
              << pool.kernel().name << " lane " << l << " addr " << a;
        }
      }
      // Advance the reference past this kernel's stream so the next
      // kernel compares against a fresh prefix?  No — rebuild instead:
      // reset every reference lane to the cold state the next kernel's
      // pool starts from.
      for (unsigned l = 0; l < kLanes; ++l) reference.reset_lane(l);
    }
  }
}

TEST(Kernels, LockstepRejectsWaysBeyondUint8Counters) {
  // The SoA pool counts per-set occupancy in uint8_t; a geometry with
  // more than 255 ways must be refused at construction, not silently
  // wrapped.
  CacheConfig config = CacheConfig::paper_default();
  config.num_sets = 2;
  config.associativity = 256;
  EXPECT_THROW((LockstepCaches{config, 1}), std::invalid_argument);
  config.associativity = 255;
  EXPECT_NO_THROW((LockstepCaches{config, 1}));
}

}  // namespace
}  // namespace grinch::cachesim::kernels
