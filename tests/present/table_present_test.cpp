#include "present/table_present.h"

#include <gtest/gtest.h>

#include "present/present.h"

#include <set>

#include "common/rng.h"

namespace grinch::present {
namespace {

TEST(TablePresent80, MatchesReferenceImplementation) {
  const TablePresent80 table_impl;
  Xoshiro256 rng{0x140};
  for (int i = 0; i < 100; ++i) {
    Key128 key = rng.key128();
    key.hi &= 0xFFFF;
    const std::uint64_t pt = rng.block64();
    EXPECT_EQ(table_impl.encrypt(pt, key), Present80::encrypt(pt, key));
  }
}

TEST(TablePresent80, EmitsSBoxAndPermAccesses) {
  const TablePresent80 table_impl;
  gift::VectorTraceSink sink;
  Xoshiro256 rng{0x141};
  Key128 key = rng.key128();
  key.hi &= 0xFFFF;
  (void)table_impl.encrypt(rng.block64(), key, &sink);
  EXPECT_EQ(sink.accesses().size(), Present80::kRounds * 32u);
  EXPECT_EQ(sink.rounds_seen(), Present80::kRounds);
}

TEST(TablePresent80, SBoxIndicesAreStateNibblesAfterKeyAdd) {
  // In PRESENT the S-Box layer runs *after* AddRoundKey, so even round-1
  // S-Box indices are key-dependent — the cipher leaks from round 1 on,
  // unlike GIFT (this asymmetry is discussed in DESIGN.md).
  const TablePresent80 table_impl;
  gift::VectorTraceSink sink;
  const Key128 key{};  // zero key: round key 0 = 0
  const std::uint64_t pt = 0xFEDCBA9876543210ull;
  (void)table_impl.encrypt_rounds(pt, key, 1, &sink);
  std::set<unsigned> indices;
  for (const auto& a : sink.accesses()) {
    if (a.kind == gift::TableAccess::Kind::kSBox) indices.insert(a.index);
  }
  // With the zero key, round-1 indices are exactly the plaintext nibbles.
  EXPECT_EQ(indices.size(), 16u);
}

TEST(TablePresent80, PartialRoundsStopEarly) {
  const TablePresent80 table_impl;
  gift::VectorTraceSink sink;
  Xoshiro256 rng{0x142};
  Key128 key = rng.key128();
  key.hi &= 0xFFFF;
  (void)table_impl.encrypt_rounds(rng.block64(), key, 3, &sink);
  EXPECT_EQ(sink.rounds_seen(), 3u);
  EXPECT_EQ(sink.accesses().size(), 3u * 32u);
}

}  // namespace
}  // namespace grinch::present
