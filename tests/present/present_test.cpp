// PRESENT known-answer tests (Bogdanov et al., CHES 2007, Appendix) and
// round-trip properties.
#include "present/present.h"

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/hex.h"
#include "common/rng.h"

namespace grinch::present {
namespace {

Key128 key80(const std::string& hex20) {
  // 20 hex digits = 80 bits, stored in the low 80 bits of Key128.
  EXPECT_EQ(hex20.size(), 20u);
  const std::uint64_t hi = parse_hex_u64(hex20.substr(0, 4)).value();
  const std::uint64_t lo = parse_hex_u64(hex20.substr(4, 16)).value();
  return Key128{hi, lo};
}

struct Kat80 {
  const char* key;
  std::uint64_t plaintext;
  std::uint64_t ciphertext;
};

constexpr const char* kZeroKey = "00000000000000000000";
constexpr const char* kOnesKey = "ffffffffffffffffffff";

const Kat80 kKats80[] = {
    {kZeroKey, 0x0000000000000000ull, 0x5579C1387B228445ull},
    {kOnesKey, 0x0000000000000000ull, 0xE72C46C0F5945049ull},
    {kZeroKey, 0xFFFFFFFFFFFFFFFFull, 0xA112FFC72F68417Bull},
    {kOnesKey, 0xFFFFFFFFFFFFFFFFull, 0x3333DCD3213210D2ull},
};

class Present80Kat : public ::testing::TestWithParam<Kat80> {};

TEST_P(Present80Kat, EncryptMatchesPublishedVector) {
  const Kat80& kat = GetParam();
  EXPECT_EQ(Present80::encrypt(kat.plaintext, key80(kat.key)), kat.ciphertext);
}

TEST_P(Present80Kat, DecryptMatchesPublishedVector) {
  const Kat80& kat = GetParam();
  EXPECT_EQ(Present80::decrypt(kat.ciphertext, key80(kat.key)), kat.plaintext);
}

INSTANTIATE_TEST_SUITE_P(Ches2007Vectors, Present80Kat,
                         ::testing::ValuesIn(kKats80));

TEST(Present80, RoundTripRandomKeys) {
  Xoshiro256 rng{0x80};
  for (int i = 0; i < 100; ++i) {
    // Mask to 80 key bits.
    Key128 key = rng.key128();
    key.hi &= 0xFFFF;
    const std::uint64_t pt = rng.block64();
    EXPECT_EQ(Present80::decrypt(Present80::encrypt(pt, key), key), pt);
  }
}

TEST(Present128, RoundTripRandomKeys) {
  Xoshiro256 rng{0x128};
  for (int i = 0; i < 100; ++i) {
    const Key128 key = rng.key128();
    const std::uint64_t pt = rng.block64();
    EXPECT_EQ(Present128::decrypt(Present128::encrypt(pt, key), key), pt);
  }
}

TEST(Present128, KeyBitsBeyond80Matter) {
  Xoshiro256 rng{0x129};
  const std::uint64_t pt = rng.block64();
  const Key128 k1{0x0123456789ABCDEFull, 0x0ull};
  const Key128 k2{0xFEDCBA9876543210ull, 0x0ull};
  EXPECT_NE(Present128::encrypt(pt, k1), Present128::encrypt(pt, k2));
}

TEST(Present80, AvalancheOnPlaintext) {
  Xoshiro256 rng{0x130};
  Key128 key = rng.key128();
  key.hi &= 0xFFFF;
  double total = 0;
  constexpr int kTrials = 100;
  for (int i = 0; i < kTrials; ++i) {
    const std::uint64_t pt = rng.block64();
    const unsigned pos = static_cast<unsigned>(rng.uniform(64));
    total += popcount(Present80::encrypt(pt, key) ^
                      Present80::encrypt(flip_bit(pt, pos), key));
  }
  const double mean = total / kTrials;
  EXPECT_GT(mean, 28.0);
  EXPECT_LT(mean, 36.0);
}

TEST(Present80, DifferentKeysDifferentCiphertexts) {
  const std::uint64_t pt = 0x1234567890ABCDEFull;
  EXPECT_NE(Present80::encrypt(pt, key80(kZeroKey)),
            Present80::encrypt(pt, key80(kOnesKey)));
}

}  // namespace
}  // namespace grinch::present
