// Tests for the cipher-agnostic candidate mask (GRINCH Step 3 state).
#include "target/candidate_mask.h"

#include <gtest/gtest.h>

namespace grinch::target {
namespace {

TEST(CandidateMask, StartsFullAndResolvesToLastSurvivor) {
  CandidateMask<16> c;
  EXPECT_EQ(c.size(), 16u);
  EXPECT_FALSE(c.resolved());
  for (unsigned v = 0; v < 15; ++v) c.remove(v);
  EXPECT_TRUE(c.resolved());
  EXPECT_EQ(c.value(), 15u);
  c.reset();
  EXPECT_EQ(c.size(), 16u);
}

TEST(CandidateMask, FourCandidateVariantMasksOnlyLowBits) {
  CandidateMask<4> c;
  EXPECT_EQ(CandidateMask<4>::kFull, 0xFu);
  EXPECT_EQ(c.size(), 4u);
  c.remove(0);
  c.remove(3);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  c.remove(2);
  EXPECT_TRUE(c.resolved());
  EXPECT_EQ(c.value(), 1u);
}

TEST(CandidateMask, EmptyAfterRemovingEverything) {
  CandidateMask<4> c;
  for (unsigned v = 0; v < 4; ++v) c.remove(v);
  EXPECT_TRUE(c.empty());
  EXPECT_FALSE(c.resolved());
  c.reset();
  EXPECT_FALSE(c.empty());
  EXPECT_EQ(c.mask(), CandidateMask<4>::kFull);
}

TEST(CandidateMask, SetMaskClampsToCandidateRange) {
  CandidateMask<4> c;
  c.set_mask(0xFFFF);
  EXPECT_EQ(c.mask(), 0xFu);
  c.set_mask(0b0110);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.contains(0));
  EXPECT_TRUE(c.contains(1));
}

}  // namespace
}  // namespace grinch::target
