// Registry-wide batched-observation conformance suite.
//
// The observe_batch contract (target/observation.h) promises that a batch
// is bit-identical to the equivalent sequence of scalar observe() calls:
// same Observation fields element by element, and last_ciphertext()
// referring to the final element afterwards.  DirectProbePlatform
// overrides the default loop to hoist per-encryption bookkeeping, so this
// suite drives every registered target both ways and compares.  It also
// pins the engine-level guarantee: KeyRecoveryEngine's speculative
// batching (Config::max_batch > 1) must reproduce the scalar run exactly —
// same recovered key, same total and per-stage encryption counts.
//
// The guarantee extends through channel fault injection: a
// FaultyObservationSource advances per-mode random streams per *delivered*
// observation, so batch delivery must corrupt identically to scalar
// delivery, and the engine must rewind the channel past discarded
// speculative tails (FaultyObservationSource::rewind_to) so every noise
// counter matches the scalar run too.
#include "target/registry.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "target/faulty_source.h"

namespace grinch::target {
namespace {

template <typename Tuple>
struct AsTestTypes;
template <typename... Ts>
struct AsTestTypes<std::tuple<Ts...>> {
  using type = ::testing::Types<Ts...>;
};

using AllTargets = AsTestTypes<RegisteredRecoveries>::type;

template <typename Recovery>
class BatchConformance : public ::testing::Test {
 protected:
  static Key128 victim_key(std::uint64_t salt) {
    Xoshiro256 rng{Recovery::kDefaultSeed ^ salt};
    return Recovery::canonical_key(rng.key128());
  }
};
TYPED_TEST_SUITE(BatchConformance, AllTargets);

TYPED_TEST(BatchConformance, ObserveBatchBitIdenticalToScalar) {
  using Recovery = TypeParam;
  using Block = typename Recovery::Block;
  const Key128 key = this->victim_key(0xB0);
  DirectProbePlatform<Recovery> scalar{{}, key};
  DirectProbePlatform<Recovery> batched{{}, key};
  Xoshiro256 rng{0xBA7C4};
  ObservationBatch batch;
  for (unsigned stage = 0; stage < 3 && stage < Recovery::kStages; ++stage) {
    std::vector<Block> pts;
    for (unsigned i = 0; i < 8; ++i) pts.push_back(Recovery::random_block(rng));
    batched.observe_batch(pts, stage, batch);
    ASSERT_EQ(batch.size(), pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const Observation o = scalar.observe(pts[i], stage);
      EXPECT_EQ(batch[i].present, o.present)
          << "stage " << stage << " element " << i;
      EXPECT_EQ(batch[i].probed_after_round, o.probed_after_round);
      EXPECT_EQ(batch[i].attacker_cycles, o.attacker_cycles);
      EXPECT_EQ(batch[i].sbox_hits, o.sbox_hits);
    }
    EXPECT_EQ(batched.last_ciphertext(), scalar.last_ciphertext())
        << "stage " << stage;
  }
}

TYPED_TEST(BatchConformance, DefaultLoopAndOverrideAgree) {
  // The base-class default (scalar loop) and the platform override must be
  // interchangeable: drive the override through the interface and compare
  // against the default implementation on an identical twin.
  using Recovery = TypeParam;
  using Block = typename Recovery::Block;
  const Key128 key = this->victim_key(0xB1);
  DirectProbePlatform<Recovery> a{{}, key};
  DirectProbePlatform<Recovery> b{{}, key};
  ObservationSource<Block>& via_override = a;
  Xoshiro256 rng{0xD0D0};
  std::vector<Block> pts;
  for (unsigned i = 0; i < 6; ++i) pts.push_back(Recovery::random_block(rng));
  ObservationBatch out_override;
  via_override.observe_batch(pts, 0, out_override);
  ObservationBatch out_default;
  b.ObservationSource<Block>::observe_batch(pts, 0, out_default);
  ASSERT_EQ(out_override.size(), out_default.size());
  for (std::size_t i = 0; i < out_override.size(); ++i) {
    EXPECT_EQ(out_override[i].present, out_default[i].present) << i;
    EXPECT_EQ(out_override[i].probed_after_round,
              out_default[i].probed_after_round);
    EXPECT_EQ(out_override[i].attacker_cycles, out_default[i].attacker_cycles);
    EXPECT_EQ(out_override[i].sbox_hits, out_default[i].sbox_hits);
  }
  EXPECT_EQ(a.last_ciphertext(), b.last_ciphertext());
}

TYPED_TEST(BatchConformance, EmptyBatchIsANoOp) {
  using Recovery = TypeParam;
  using Block = typename Recovery::Block;
  const Key128 key = this->victim_key(0xB2);
  DirectProbePlatform<Recovery> platform{{}, key};
  Xoshiro256 rng{0xE0};
  const Block pt = Recovery::random_block(rng);
  (void)platform.observe(pt, 0);
  const Block before = platform.last_ciphertext();
  ObservationBatch out;
  out.resize(5);  // stale contents must be cleared
  platform.observe_batch(std::span<const Block>{}, 0, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(platform.last_ciphertext(), before);
}

TYPED_TEST(BatchConformance, BatchedEngineMatchesScalarEngine) {
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0xB3);
  typename KeyRecoveryEngine<Recovery>::Config scalar_cfg;
  scalar_cfg.max_batch = 1;
  typename KeyRecoveryEngine<Recovery>::Config batched_cfg;
  batched_cfg.max_batch = 16;
  const RecoveryResult<Recovery> s = recover_key<Recovery>(key, scalar_cfg);
  const RecoveryResult<Recovery> b = recover_key<Recovery>(key, batched_cfg);
  ASSERT_TRUE(s.success);
  ASSERT_TRUE(b.success);
  EXPECT_EQ(b.recovered_key, s.recovered_key);
  EXPECT_EQ(b.key_verified, s.key_verified);
  EXPECT_EQ(b.stages_resolved, s.stages_resolved);
  EXPECT_EQ(b.total_encryptions, s.total_encryptions);
  EXPECT_EQ(b.offline_trials, s.offline_trials);
  ASSERT_EQ(b.stage_encryptions.size(), s.stage_encryptions.size());
  for (std::size_t i = 0; i < s.stage_encryptions.size(); ++i) {
    EXPECT_EQ(b.stage_encryptions[i], s.stage_encryptions[i]) << "stage " << i;
  }
}

TYPED_TEST(BatchConformance, IntermediateBatchSizesAlsoMatchScalar) {
  // The engine grows its batch adaptively up to max_batch; any ceiling
  // must land on the same result, not just the default 16.
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0xB4);
  typename KeyRecoveryEngine<Recovery>::Config scalar_cfg;
  scalar_cfg.max_batch = 1;
  const RecoveryResult<Recovery> s = recover_key<Recovery>(key, scalar_cfg);
  ASSERT_TRUE(s.success);
  for (unsigned cap : {2u, 5u, 32u}) {
    typename KeyRecoveryEngine<Recovery>::Config cfg;
    cfg.max_batch = cap;
    const RecoveryResult<Recovery> r = recover_key<Recovery>(key, cfg);
    EXPECT_EQ(r.recovered_key, s.recovered_key) << "max_batch " << cap;
    EXPECT_EQ(r.total_encryptions, s.total_encryptions) << "max_batch " << cap;
  }
}

TYPED_TEST(BatchConformance, WideTransportMatchesBatchedEngine) {
  // Config::wide_width routes the same speculative batches through the
  // transposed observe_wide transport; the result must stay on the one
  // scalar-equivalent trajectory that max_batch already pins.
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0xB8);
  typename KeyRecoveryEngine<Recovery>::Config batched_cfg;
  batched_cfg.max_batch = 16;
  typename KeyRecoveryEngine<Recovery>::Config wide_cfg;
  wide_cfg.wide_width = 16;
  const RecoveryResult<Recovery> b = recover_key<Recovery>(key, batched_cfg);
  const RecoveryResult<Recovery> w = recover_key<Recovery>(key, wide_cfg);
  ASSERT_TRUE(b.success);
  EXPECT_EQ(w.success, b.success);
  EXPECT_EQ(w.recovered_key, b.recovered_key);
  EXPECT_EQ(w.total_encryptions, b.total_encryptions);
  EXPECT_EQ(w.stage_encryptions, b.stage_encryptions);
}

TYPED_TEST(BatchConformance, BatchedBudgetExhaustionMatchesScalar) {
  // The encryption budget is checked per observation, so a batched run
  // must fail at exactly the same count as the scalar one.
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0xB5);
  typename KeyRecoveryEngine<Recovery>::Config scalar_cfg;
  scalar_cfg.max_batch = 1;
  scalar_cfg.max_encryptions = 3;
  typename KeyRecoveryEngine<Recovery>::Config batched_cfg;
  batched_cfg.max_batch = 16;
  batched_cfg.max_encryptions = 3;
  const RecoveryResult<Recovery> s = recover_key<Recovery>(key, scalar_cfg);
  const RecoveryResult<Recovery> b = recover_key<Recovery>(key, batched_cfg);
  EXPECT_EQ(b.success, s.success);
  EXPECT_EQ(b.stages_resolved, s.stages_resolved);
  EXPECT_EQ(b.total_encryptions, s.total_encryptions);
}

TYPED_TEST(BatchConformance, FaultyDecoratorBatchMatchesScalarDelivery) {
  // The decorator corrupts in delivery order: wrapping the platform and
  // observing a batch must produce the same corrupted elements (and fault
  // stats) as delivering the same plaintexts one by one.
  using Recovery = TypeParam;
  using Block = typename Recovery::Block;
  const Key128 key = this->victim_key(0xB6);
  const FaultProfile profile = FaultProfile::moderate();
  DirectProbePlatform<Recovery> scalar_inner{{}, key};
  DirectProbePlatform<Recovery> batch_inner{{}, key};
  FaultyObservationSource<Block> scalar{scalar_inner, profile};
  FaultyObservationSource<Block> batched{batch_inner, profile};
  Xoshiro256 rng{0xFA7B};
  std::vector<Block> pts;
  for (unsigned i = 0; i < 24; ++i) pts.push_back(Recovery::random_block(rng));
  ObservationBatch out;
  batched.observe_batch(pts, 0, out);
  ASSERT_EQ(out.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Observation o = scalar.observe(pts[i], 0);
    EXPECT_EQ(out[i].present, o.present) << "element " << i;
    EXPECT_EQ(out[i].dropped, o.dropped) << "element " << i;
  }
  EXPECT_EQ(batched.stats().dropped, scalar.stats().dropped);
  EXPECT_EQ(batched.stats().stale, scalar.stats().stale);
  EXPECT_EQ(batched.stats().bursts, scalar.stats().bursts);
  EXPECT_EQ(batched.stats().lines_flipped_absent,
            scalar.stats().lines_flipped_absent);
  EXPECT_EQ(batched.stats().lines_flipped_present,
            scalar.stats().lines_flipped_present);
}

TYPED_TEST(BatchConformance, BatchedEngineMatchesScalarEngineUnderFaults) {
  // Speculative batching against a faulty channel: discarded speculative
  // observations advance the fault streams inside observe_batch, so the
  // engine's rewind must make the batched run byte-identical to the
  // scalar one — including every noise counter.
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0xB7);
  typename KeyRecoveryEngine<Recovery>::Config scalar_cfg =
      KeyRecoveryEngine<Recovery>::Config::noisy_defaults();
  scalar_cfg.max_encryptions = 800000;
  scalar_cfg.faults = FaultProfile::moderate();
  scalar_cfg.max_batch = 1;
  typename KeyRecoveryEngine<Recovery>::Config batched_cfg = scalar_cfg;
  batched_cfg.max_batch = 16;
  const RecoveryResult<Recovery> s = recover_key<Recovery>(key, scalar_cfg);
  const RecoveryResult<Recovery> b = recover_key<Recovery>(key, batched_cfg);
  ASSERT_TRUE(s.success);
  ASSERT_TRUE(b.success);
  EXPECT_EQ(b.recovered_key, s.recovered_key);
  EXPECT_EQ(b.total_encryptions, s.total_encryptions);
  EXPECT_EQ(b.noise_restarts, s.noise_restarts);
  EXPECT_EQ(b.dropped_observations, s.dropped_observations);
  EXPECT_EQ(b.verify_restarts, s.verify_restarts);
  EXPECT_EQ(b.segment_resets, s.segment_resets);
  EXPECT_EQ(b.stage_encryptions, s.stage_encryptions);
}

}  // namespace
}  // namespace grinch::target
