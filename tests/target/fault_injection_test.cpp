// Channel fault-injection suite: the FaultyObservationSource decorator
// (target/faulty_source.h) and KeyRecoveryEngine's noise robustness
// (recovery_engine.h, docs/ROBUSTNESS.md).
//
// Decorator half: every fault mode behaves as documented (drops are
// flagged, flips act at cache-line granularity, stale replays the
// previous delivery), the fault stream is a deterministic function of the
// profile seed, batch delivery corrupts identically to scalar delivery,
// and rewind_to() really does erase a discarded speculative tail from the
// channel state.
//
// Engine half, registry-wide: all three ciphers recover and verify the
// full key through the documented moderate mixed profile (with restarts
// reported), through each single fault type at low rate, identical runs
// are byte-identical, and a saturating channel yields the documented
// partial result — budget exhausted, surviving candidate masks that still
// contain the true candidates, and a nonzero residual brute-force cost.
#include "target/faulty_source.h"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/rng.h"
#include "gift/key_schedule.h"
#include "target/registry.h"

namespace grinch::target {
namespace {

template <typename Tuple>
struct AsTestTypes;
template <typename... Ts>
struct AsTestTypes<std::tuple<Ts...>> {
  using type = ::testing::Types<Ts...>;
};
using AllTargets = AsTestTypes<RegisteredRecoveries>::type;

/// StageKey equality across the registry (the GIFT round-key structs do
/// not define operator==; PRESENT's stage key is a plain integer).
template <typename StageKey>
bool stage_keys_equal(const StageKey& a, const StageKey& b) {
  if constexpr (std::is_integral_v<StageKey>) {
    return a == b;
  } else {
    return a.u == b.u && a.v == b.v;
  }
}

// ------------------------------------------------------------------ //
//  Decorator unit tests (GIFT-64 direct-probe platform as the inner)  //
// ------------------------------------------------------------------ //

using Gift64Platform = DirectProbePlatform<Gift64Recovery>;

Key128 test_key(std::uint64_t salt) {
  Xoshiro256 rng{0xFA17 ^ salt};
  return rng.key128();
}

std::vector<std::uint64_t> test_blocks(unsigned n, std::uint64_t seed) {
  Xoshiro256 rng{seed};
  std::vector<std::uint64_t> pts;
  for (unsigned i = 0; i < n; ++i) pts.push_back(rng.block64());
  return pts;
}

TEST(FaultySource, ZeroRatesPassThrough) {
  const Key128 key = test_key(1);
  Gift64Platform inner{{}, key};
  Gift64Platform reference{{}, key};
  FaultyObservationSource<std::uint64_t> faulty{inner,
                                                FaultProfile::clean()};
  for (const std::uint64_t pt : test_blocks(16, 0x11)) {
    const Observation got = faulty.observe(pt, 0);
    const Observation want = reference.observe(pt, 0);
    EXPECT_EQ(got.present, want.present);
    EXPECT_FALSE(got.dropped);
  }
  EXPECT_EQ(faulty.stats().observations, 16u);
  EXPECT_EQ(faulty.stats().dropped, 0u);
  EXPECT_EQ(faulty.stats().stale, 0u);
  EXPECT_EQ(faulty.stats().bursts, 0u);
  EXPECT_EQ(faulty.stats().lines_flipped_absent, 0u);
  EXPECT_EQ(faulty.stats().lines_flipped_present, 0u);
  EXPECT_EQ(faulty.last_ciphertext(), reference.last_ciphertext());
}

TEST(FaultySource, StreamIsDeterministicInTheProfileSeed) {
  const Key128 key = test_key(2);
  const auto pts = test_blocks(64, 0x22);
  const FaultProfile profile = FaultProfile::moderate();
  auto run = [&](std::uint64_t seed) {
    Gift64Platform inner{{}, key};
    FaultProfile p = profile;
    p.seed = seed;
    FaultyObservationSource<std::uint64_t> faulty{inner, p};
    std::vector<std::uint64_t> words;
    for (const std::uint64_t pt : pts) {
      const Observation o = faulty.observe(pt, 0);
      words.push_back(o.present.word() | (std::uint64_t{o.dropped} << 63));
    }
    return words;
  };
  const auto a = run(0xDE7);
  EXPECT_EQ(a, run(0xDE7)) << "same seed must replay the same faults";
  EXPECT_NE(a, run(0xDE8)) << "a different seed must shift the faults";
}

TEST(FaultySource, BatchCorruptsIdenticallyToScalar) {
  const Key128 key = test_key(3);
  const auto pts = test_blocks(32, 0x33);
  const FaultProfile profile = FaultProfile::moderate();
  Gift64Platform scalar_inner{{}, key};
  Gift64Platform batch_inner{{}, key};
  FaultyObservationSource<std::uint64_t> scalar{scalar_inner, profile};
  FaultyObservationSource<std::uint64_t> batched{batch_inner, profile};
  ObservationBatch out;
  batched.observe_batch(pts, 0, out);
  ASSERT_EQ(out.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Observation want = scalar.observe(pts[i], 0);
    EXPECT_EQ(out[i].present, want.present) << "element " << i;
    EXPECT_EQ(out[i].dropped, want.dropped) << "element " << i;
  }
}

TEST(FaultySource, RewindErasesTheDiscardedTail) {
  // Consume only a prefix of a speculative batch, rewind, then deliver
  // the rest scalar: the stitched sequence must equal an uninterrupted
  // scalar run over the consumed plaintexts.
  const Key128 key = test_key(4);
  const auto pts = test_blocks(12, 0x44);
  const FaultProfile profile = FaultProfile::moderate();
  constexpr std::size_t kConsumed = 5;

  Gift64Platform ref_inner{{}, key};
  FaultyObservationSource<std::uint64_t> reference{ref_inner, profile};
  std::vector<Observation> want;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i >= kConsumed && i < 8) continue;  // the discarded speculation
    want.push_back(reference.observe(pts[i], 0));
  }

  Gift64Platform inner{{}, key};
  FaultyObservationSource<std::uint64_t> faulty{inner, profile};
  ObservationBatch batch;
  faulty.observe_batch(std::span<const std::uint64_t>(pts.data(), 8), 0,
                       batch);
  faulty.rewind_to(kConsumed);
  std::vector<Observation> got(batch.begin(),
                               batch.begin() + kConsumed);
  for (std::size_t i = 8; i < pts.size(); ++i) {
    got.push_back(faulty.observe(pts[i], 0));
  }
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].present, want[i].present) << "element " << i;
    EXPECT_EQ(got[i].dropped, want[i].dropped) << "element " << i;
  }
  EXPECT_EQ(faulty.stats().observations, want.size());
}

TEST(FaultySource, CertainDropsAreFlagged) {
  const Key128 key = test_key(5);
  Gift64Platform inner{{}, key};
  FaultProfile p;
  p.dropped_rate = 1.0;
  FaultyObservationSource<std::uint64_t> faulty{inner, p};
  for (const std::uint64_t pt : test_blocks(8, 0x55)) {
    const Observation o = faulty.observe(pt, 0);
    EXPECT_TRUE(o.dropped);
    // The uninformative all-present set protects consumers that look
    // anyway: nothing can be eliminated from it.
    for (unsigned r = 0; r < inner.layout().sbox_rows(); ++r) {
      EXPECT_TRUE(o.present[r]);
    }
  }
  EXPECT_EQ(faulty.stats().dropped, 8u);
  // The encryption still happened: the ciphertext is the victim's.
  Gift64Platform reference{{}, key};
  (void)reference.observe(test_blocks(8, 0x55).back(), 0);
  EXPECT_EQ(faulty.last_ciphertext(), reference.last_ciphertext());
}

TEST(FaultySource, CertainFlipsSaturateTheLineSet) {
  const Key128 key = test_key(6);
  FaultProfile evict;
  evict.false_absent_rate = 1.0;
  FaultProfile inject;
  inject.false_present_rate = 1.0;
  Gift64Platform inner_a{{}, key};
  Gift64Platform inner_b{{}, key};
  FaultyObservationSource<std::uint64_t> all_absent{inner_a, evict};
  FaultyObservationSource<std::uint64_t> all_present{inner_b, inject};
  const std::uint64_t pt = test_blocks(1, 0x66)[0];
  EXPECT_EQ(all_absent.observe(pt, 0).present.word(), 0u);
  const Observation full = all_present.observe(pt, 0);
  for (unsigned r = 0; r < inner_b.layout().sbox_rows(); ++r) {
    EXPECT_TRUE(full.present[r]);
  }
  EXPECT_GT(all_absent.stats().lines_flipped_absent, 0u);
  EXPECT_GT(all_present.stats().lines_flipped_present, 0u);
}

TEST(FaultySource, FlipsActAtCacheLineGranularity) {
  // With two S-Box rows per cache line, corrupted observations must never
  // split a line: rows sharing a line id stay bit-equal.
  const Key128 key = test_key(7);
  Gift64Platform::Config cfg;
  cfg.cache.line_bytes = 2;  // sbox_row_bytes = 1 -> 2 rows per line
  Gift64Platform inner{cfg, key};
  const std::vector<unsigned> ids = inner.index_line_ids();
  FaultProfile p;
  p.false_absent_rate = 0.4;
  p.false_present_rate = 0.4;
  p.burst_rate = 0.1;
  FaultyObservationSource<std::uint64_t> faulty{inner, p};
  for (const std::uint64_t pt : test_blocks(64, 0x77)) {
    const Observation o = faulty.observe(pt, 0);
    for (unsigned r = 1; r < inner.layout().sbox_rows(); ++r) {
      if (ids[r] == ids[r - 1]) {
        EXPECT_EQ(o.present[r], o.present[r - 1])
            << "rows " << r - 1 << "/" << r << " share line " << ids[r];
      }
    }
  }
}

TEST(FaultySource, StaleReplaysThePreviousDelivery) {
  const Key128 key = test_key(8);
  Gift64Platform inner{{}, key};
  FaultProfile p;
  p.stale_rate = 1.0;
  FaultyObservationSource<std::uint64_t> faulty{inner, p};
  const auto pts = test_blocks(6, 0x88);
  // The first delivery has no predecessor to replay; afterwards every
  // observation repeats it verbatim.
  const Observation first = faulty.observe(pts[0], 0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_EQ(faulty.observe(pts[i], 0).present, first.present) << i;
  }
  EXPECT_EQ(faulty.stats().stale, pts.size() - 1);
}

// ------------------------------------------------------------------ //
//  Engine robustness, registry-wide                                   //
// ------------------------------------------------------------------ //

template <typename Recovery>
class FaultInjection : public ::testing::Test {
 protected:
  using Config = typename KeyRecoveryEngine<Recovery>::Config;

  static Key128 victim_key(std::uint64_t salt) {
    Xoshiro256 rng{Recovery::kDefaultSeed ^ salt};
    return Recovery::canonical_key(rng.key128());
  }

  /// Budget generous enough for the noisy profiles on every target (the
  /// engine stops as soon as it verifies, so headroom is free).
  static constexpr std::uint64_t kNoisyBudget = 800000;

  static Config noisy_config(const FaultProfile& faults) {
    Config cfg = Config::noisy_defaults();
    cfg.max_encryptions = kNoisyBudget;
    cfg.faults = faults;
    return cfg;
  }

  /// The true candidate value of every segment of `stage` (the value the
  /// cache channel is expected to resolve).
  static std::array<unsigned, Recovery::kSegments> true_candidates(
      const Key128& key, unsigned stage) {
    std::array<unsigned, Recovery::kSegments> truth{};
    if constexpr (std::is_same_v<Recovery, Present80Recovery>) {
      // RK0 = key-register bits 79..16; segment s holds nibble s.
      const std::uint64_t rk0 = (key.hi << 48) | (key.lo >> 16);
      for (unsigned s = 0; s < Recovery::kSegments; ++s) {
        truth[s] = static_cast<unsigned>((rk0 >> (4 * s)) & 0xF);
      }
    } else {
      gift::KeySchedule schedule{key, stage + 1};
      if constexpr (std::is_same_v<Recovery, Gift64Recovery>) {
        const gift::RoundKey64 rk = schedule.round_key64(stage);
        for (unsigned s = 0; s < Recovery::kSegments; ++s) {
          truth[s] = (((rk.u >> s) & 1u) << 1) | ((rk.v >> s) & 1u);
        }
      } else {
        const gift::RoundKey128 rk = schedule.round_key128(stage);
        for (unsigned s = 0; s < Recovery::kSegments; ++s) {
          truth[s] = (((rk.u >> s) & 1u) << 1) | ((rk.v >> s) & 1u);
        }
      }
    }
    return truth;
  }
};
TYPED_TEST_SUITE(FaultInjection, AllTargets);

TYPED_TEST(FaultInjection, TruthHelperMatchesCleanRecovery) {
  // Self-check of true_candidates(): a clean-channel run's stage keys
  // must decompose into exactly the candidates the helper predicts.
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0xF0);
  const auto r = recover_key<Recovery>(key);
  ASSERT_TRUE(r.success);
  for (unsigned stage = 0; stage < Recovery::kStages; ++stage) {
    const auto truth = this->true_candidates(key, stage);
    std::array<CandidateMask<Recovery::kCandidatesPerSegment>,
               Recovery::kSegments>
        masks{};
    for (unsigned s = 0; s < Recovery::kSegments; ++s) {
      masks[s].set_mask(static_cast<std::uint16_t>(1u << truth[s]));
    }
    EXPECT_TRUE(stage_keys_equal(Recovery::stage_key_from(masks),
                                 r.stage_keys[stage]))
        << "stage " << stage;
  }
}

TYPED_TEST(FaultInjection, RecoversThroughModerateProfile) {
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0x101);
  const auto cfg = this->noisy_config(FaultProfile::moderate());
  const auto r = recover_key<Recovery>(key, cfg);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.key_verified);
  EXPECT_EQ(r.recovered_key, key);
  EXPECT_GT(r.noise_restarts, 0u)
      << "the moderate profile must be noisy enough to force resets";
  EXPECT_GT(r.dropped_observations, 0u);
  EXPECT_LT(r.total_encryptions, cfg.max_encryptions);
}

TYPED_TEST(FaultInjection, RecoversUnderEachSingleFaultType) {
  using Recovery = TypeParam;
  struct Axis {
    const char* name;
    FaultProfile profile;
  };
  std::vector<Axis> axes;
  {
    FaultProfile p;
    p.false_absent_rate = 0.03;
    axes.push_back({"false_absent", p});
  }
  {
    FaultProfile p;
    p.false_present_rate = 0.05;
    axes.push_back({"false_present", p});
  }
  {
    FaultProfile p;
    p.dropped_rate = 0.15;
    axes.push_back({"dropped", p});
  }
  {
    FaultProfile p;
    p.stale_rate = 0.05;
    axes.push_back({"stale", p});
  }
  {
    FaultProfile p;
    p.burst_rate = 0.01;
    p.burst_length = 3;
    axes.push_back({"burst", p});
  }
  for (const Axis& axis : axes) {
    const Key128 key = this->victim_key(0xF2);
    const auto r =
        recover_key<Recovery>(key, this->noisy_config(axis.profile));
    EXPECT_TRUE(r.success) << axis.name;
    EXPECT_EQ(r.recovered_key, key) << axis.name;
  }
}

TYPED_TEST(FaultInjection, IdenticalRunsAreByteIdentical) {
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0xF3);
  const auto cfg = this->noisy_config(FaultProfile::moderate());
  const auto a = recover_key<Recovery>(key, cfg);
  const auto b = recover_key<Recovery>(key, cfg);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.recovered_key, b.recovered_key);
  EXPECT_EQ(a.total_encryptions, b.total_encryptions);
  EXPECT_EQ(a.noise_restarts, b.noise_restarts);
  EXPECT_EQ(a.dropped_observations, b.dropped_observations);
  EXPECT_EQ(a.verify_restarts, b.verify_restarts);
  EXPECT_EQ(a.segment_resets, b.segment_resets);
  EXPECT_EQ(a.stage_encryptions, b.stage_encryptions);
}

TYPED_TEST(FaultInjection, SaturatingChannelYieldsHonestPartialResult) {
  // docs/ROBUSTNESS.md: at saturating rates, harden the vote threshold
  // and accept the partial-result contract — the budget exhausts, and the
  // surviving masks must still contain the true candidates (wide masks
  // and no impostor lock-in), pricing the residual brute force honestly.
  // The threshold must comfortably exceed the profile's burst length (6):
  // a burst reports garbage occupancy, so it can fake up to burst_length
  // consecutive absences of the true candidate's line, and stale replays
  // can extend the run.
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0x101);
  typename TestFixture::Config cfg = TestFixture::Config::noisy_defaults();
  cfg.vote_threshold = 12;
  cfg.max_encryptions = 4000;
  cfg.faults = FaultProfile::saturating();
  const auto r = recover_key<Recovery>(key, cfg);
  EXPECT_FALSE(r.success);
  ASSERT_LT(r.failed_stage, Recovery::kStages);
  EXPECT_EQ(r.total_encryptions, cfg.max_encryptions);
  EXPECT_GT(r.residual_key_bits, 0.0);
  const auto truth = this->true_candidates(key, r.failed_stage);
  double check_bits = 0.0;
  for (unsigned s = 0; s < Recovery::kSegments; ++s) {
    ASSERT_NE(r.surviving_masks[s], 0u) << "segment " << s;
    EXPECT_TRUE((r.surviving_masks[s] >> truth[s]) & 1u)
        << "segment " << s << " eliminated the true candidate";
    check_bits += std::log2(
        static_cast<double>(std::popcount(r.surviving_masks[s])));
  }
  check_bits += static_cast<double>(Recovery::kStages - 1 - r.failed_stage) *
                Recovery::kSegments *
                std::log2(static_cast<double>(Recovery::kCandidatesPerSegment));
  EXPECT_DOUBLE_EQ(r.residual_key_bits, check_bits);
}

TYPED_TEST(FaultInjection, RobustnessKnobsAreInertOnACleanChannel) {
  // Zero fault rates with the robustness machinery configured must be
  // byte-identical to the plain default engine — the acceptance bar for
  // layering this PR onto the clean-channel core.
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0xF5);
  const auto plain = recover_key<Recovery>(key);
  typename TestFixture::Config cfg;
  cfg.faults = FaultProfile::clean();
  cfg.stall_limit = 1u << 30;  // any value: never reached on clean runs
  cfg.backoff_resets = 2;
  const auto knobs = recover_key<Recovery>(key, cfg);
  ASSERT_TRUE(plain.success);
  EXPECT_TRUE(knobs.success);
  EXPECT_EQ(knobs.recovered_key, plain.recovered_key);
  EXPECT_EQ(knobs.total_encryptions, plain.total_encryptions);
  EXPECT_EQ(knobs.stage_encryptions, plain.stage_encryptions);
  EXPECT_EQ(knobs.noise_restarts, 0u);
  EXPECT_EQ(knobs.dropped_observations, 0u);
  EXPECT_EQ(knobs.verify_restarts, 0u);
}

}  // namespace
}  // namespace grinch::target
