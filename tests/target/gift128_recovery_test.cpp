// Tests for the GIFT-128 target (Algorithm 1/2 math + generic-engine
// recovery; ported from the pre-unification attack-stack tests).
#include "target/gift128_recovery.h"

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "gift/permutation.h"
#include "gift/sbox.h"
#include "target/registry.h"

namespace grinch::target {
namespace {

TEST(TargetBits128, SourceBitsFeedKeyFacingPositions) {
  const auto& perm = gift::gift128_permutation();
  for (unsigned s = 0; s < 32; ++s) {
    const TargetBits128 t = set_target_bits128(s);
    EXPECT_EQ(perm.forward(t.bit_a), 4 * s + 1);
    EXPECT_EQ(perm.forward(t.bit_b), 4 * s + 2);
    EXPECT_EQ(t.bit_a % 4, 1u);  // mod-4 preservation
    EXPECT_EQ(t.bit_b % 4, 2u);
    EXPECT_NE(t.seg_a, t.seg_b);
    EXPECT_EQ(t.list_a.size(), 8u);  // GS is balanced
    EXPECT_EQ(t.list_b.size(), 8u);
  }
}

TEST(TargetBits128, ListsForceOutputBitsToOne) {
  for (unsigned s = 0; s < 32; s += 7) {
    const TargetBits128 t = set_target_bits128(s);
    for (unsigned x : t.list_a) {
      EXPECT_EQ((gift::gift_sbox().apply(x) >> (t.bit_a % 4)) & 1u, 1u);
    }
    for (unsigned x : t.list_b) {
      EXPECT_EQ((gift::gift_sbox().apply(x) >> (t.bit_b % 4)) & 1u, 1u);
    }
  }
}

TEST(Predictor128, IndexIdentityHolds) {
  // monitored index = n XOR (c << 1) with c = (u<<1)|v.
  Xoshiro256 rng{1};
  for (int trial = 0; trial < 20; ++trial) {
    const Key128 key = rng.key128();
    const gift::State128 pt{rng.block64(), rng.block64()};
    const gift::RoundKey128 rk0 = gift::extract_round_key128(key);
    const auto n = pre_key_nibbles128(pt, {}, 0);
    const gift::State128 state1 = gift::Gift128::encrypt_rounds(pt, key, 1);
    for (unsigned s = 0; s < 32; ++s) {
      const unsigned c = ((((rk0.u >> s) & 1u) << 1) | ((rk0.v >> s) & 1u));
      EXPECT_EQ(state1.nibble(s), n[s] ^ (c << 1)) << "segment " << s;
    }
  }
}

TEST(Crafter128, PinsKeyFacingBits) {
  Xoshiro256 rng{2};
  PlaintextCrafter128 crafter{rng};
  for (unsigned s = 0; s < 32; s += 5) {
    const TargetBits128 t = set_target_bits128(s);
    const gift::State128 pt = crafter.craft_plaintext(t, {}, 0);
    const auto n = pre_key_nibbles128(pt, {}, 0);
    // Bits 1 and 2 of the pre-key nibble must be 1.
    EXPECT_EQ(n[s] & 0x6, 0x6u) << "segment " << s;
  }
}

TEST(Crafter128, DeepStageInversionRoundTrips) {
  Xoshiro256 rng{3};
  const Key128 key = rng.key128();
  const gift::KeySchedule sched{key, 2};
  std::vector<gift::RoundKey128> keys{sched.round_key128(0)};
  PlaintextCrafter128 crafter{rng};
  const TargetBits128 t = set_target_bits128(9);
  const gift::State128 pt = crafter.craft_plaintext(t, keys, 1);
  const auto n = pre_key_nibbles128(pt, keys, 1);
  EXPECT_EQ(n[9] & 0x6, 0x6u);
}

TEST(Assemble128, RoundTripsThroughTheKeySchedule) {
  Xoshiro256 rng{4};
  for (int i = 0; i < 30; ++i) {
    const Key128 key = rng.key128();
    const gift::KeySchedule sched{key, 2};
    const std::vector<gift::RoundKey128> rks{sched.round_key128(0),
                                             sched.round_key128(1)};
    EXPECT_EQ(assemble_master_key128(rks), key);
  }
}

TEST(Gift128Recovery, RecoversFullKey) {
  Xoshiro256 rng{5};
  for (int trial = 0; trial < 3; ++trial) {
    const Key128 key = rng.key128();
    KeyRecoveryEngine<Gift128Recovery>::Config cfg;
    cfg.seed = 500 + static_cast<std::uint64_t>(trial);
    const RecoveryResult<Gift128Recovery> r =
        recover_key<Gift128Recovery>(key, cfg);
    ASSERT_TRUE(r.success) << "trial " << trial;
    EXPECT_TRUE(r.key_verified);
    EXPECT_EQ(r.recovered_key, key);
    // Two stages only (GIFT-128 uses 64 key bits per round).
    EXPECT_GT(r.stage_encryptions[0], 0u);
    EXPECT_GT(r.stage_encryptions[1], 0u);
  }
}

TEST(Gift128Recovery, EffortIsHigherPerStageThanGift64) {
  // 32 S-Box accesses per round nearly saturate the 16-entry table, so
  // fewer lines are absent per probe and each segment costs more
  // encryptions than in GIFT-64 — but the total stays in the hundreds.
  Xoshiro256 rng{6};
  const Key128 key = rng.key128();
  KeyRecoveryEngine<Gift128Recovery>::Config cfg;
  cfg.seed = 77;
  const RecoveryResult<Gift128Recovery> r =
      recover_key<Gift128Recovery>(key, cfg);
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.total_encryptions, 300u);
  EXPECT_LT(r.total_encryptions, 3000u);
}

TEST(Gift128Recovery, DropoutOnTinyBudget) {
  Xoshiro256 rng{7};
  const Key128 key = rng.key128();
  KeyRecoveryEngine<Gift128Recovery>::Config cfg;
  cfg.max_encryptions = 50;
  const RecoveryResult<Gift128Recovery> r =
      recover_key<Gift128Recovery>(key, cfg);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.stages_resolved);
}

}  // namespace
}  // namespace grinch::target
