// Tests for the PRESENT-80 target (generic platform observation + engine
// recovery; ported from the pre-unification attack-stack tests).
#include "target/present80_recovery.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "present/present.h"
#include "target/platform.h"
#include "target/registry.h"

namespace grinch::target {
namespace {

Key128 random_key80(Xoshiro256& rng) {
  return Present80Recovery::canonical_key(rng.key128());
}

TEST(PresentPlatform, RoundZeroObservationIsKeyDependent) {
  Xoshiro256 rng{1};
  const Key128 key = random_key80(rng);
  DirectProbePlatform<Present80Recovery> platform{{}, key};
  const std::uint64_t pt = rng.block64();
  const Observation obs = platform.observe(pt, 0);
  // Ground truth: round 0 indices are nibbles of pt XOR RK0 (the top 64
  // key-register bits).
  const std::uint64_t rk0 = (key.hi << 48) | (key.lo >> 16);
  LineSet expected(16);
  for (unsigned s = 0; s < 16; ++s) expected[nibble(pt ^ rk0, s)] = true;
  EXPECT_EQ(obs.present, expected);
}

TEST(PresentPlatform, CiphertextIsReal) {
  Xoshiro256 rng{2};
  const Key128 key = random_key80(rng);
  DirectProbePlatform<Present80Recovery> platform{{}, key};
  const std::uint64_t pt = rng.block64();
  (void)platform.observe(pt, 0);
  EXPECT_EQ(platform.last_ciphertext(), present::Present80::encrypt(pt, key));
}

TEST(Present80Recovery, RecoversFullEightyBitKey) {
  Xoshiro256 rng{3};
  for (int trial = 0; trial < 3; ++trial) {
    const Key128 key = random_key80(rng);
    KeyRecoveryEngine<Present80Recovery>::Config cfg;
    cfg.seed = 100 + static_cast<std::uint64_t>(trial);
    const RecoveryResult<Present80Recovery> r =
        recover_key<Present80Recovery>(key, cfg);
    ASSERT_TRUE(r.success) << "trial " << trial;
    EXPECT_EQ(r.recovered_key, key);
    EXPECT_TRUE(r.stages_resolved);
    EXPECT_EQ(r.offline_trials, 1u << 16);
    // Far cheaper than GIFT: no crafting, round-0 leak, joint segments.
    EXPECT_LT(r.total_encryptions, 100u);
  }
}

TEST(Present80Recovery, RoundKeyZeroMatchesSchedule) {
  Xoshiro256 rng{4};
  const Key128 key = random_key80(rng);
  const RecoveryResult<Present80Recovery> r =
      recover_key<Present80Recovery>(key);
  ASSERT_TRUE(r.stages_resolved);
  const std::uint64_t rk0 = (key.hi << 48) | (key.lo >> 16);
  EXPECT_EQ(r.stage_keys[0], rk0);
}

TEST(Present80Recovery, DropoutOnTinyBudget) {
  Xoshiro256 rng{5};
  const Key128 key = random_key80(rng);
  KeyRecoveryEngine<Present80Recovery>::Config cfg;
  cfg.max_encryptions = 2;
  const RecoveryResult<Present80Recovery> r =
      recover_key<Present80Recovery>(key, cfg);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.stages_resolved);
}

TEST(Present80Recovery, WiderProbeWindowStillSucceeds) {
  // Later probing accumulates more rounds of accesses (noise), raising
  // effort but not defeating the attack.
  Xoshiro256 rng{6};
  const Key128 key = random_key80(rng);
  DirectProbePlatform<Present80Recovery>::Config pcfg;
  pcfg.probing_round = 3;
  const RecoveryResult<Present80Recovery> r =
      recover_key<Present80Recovery>(key, {}, pcfg);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.recovered_key, key);
}

}  // namespace
}  // namespace grinch::target
