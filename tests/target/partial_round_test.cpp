// Partial-round fast-path equivalence for every instrumented table cipher.
//
// The observation hot path truncates the victim encryption at the probe
// point (encrypt_with_schedule with rounds < kRounds) and completes the
// ciphertext lazily.  That is only sound if a partial run is a true
// prefix of the full run: the emitted access trace must equal the first
// n rounds of the full trace bit for bit, and the partial state must
// match the keyed encrypt_rounds reference at every depth.  This suite
// pins that contract for TableGift64, TableGift128 and TablePresent80
// (docs/TARGETS.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/key128.h"
#include "common/rng.h"
#include "gift/gift128.h"
#include "gift/gift64.h"
#include "gift/table_gift.h"
#include "gift/table_gift128.h"
#include "present/present.h"
#include "present/table_present.h"

namespace grinch {
namespace {

void expect_trace_prefix(const gift::VectorTraceSink& partial,
                         const gift::VectorTraceSink& full, unsigned rounds) {
  ASSERT_EQ(partial.rounds_seen(), rounds);
  const auto& p = partial.accesses();
  const auto& f = full.accesses();
  ASSERT_LE(p.size(), f.size());
  if (rounds > 0) {
    ASSERT_GE(full.rounds_seen(), rounds);
    if (full.rounds_seen() > rounds) {
      // The partial trace covers exactly the first `rounds` rounds.
      EXPECT_EQ(p.size(), full.round_begin_index(rounds));
    }
  } else {
    EXPECT_TRUE(p.empty());
  }
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p[i].addr, f[i].addr) << "access " << i;
    EXPECT_EQ(p[i].kind, f[i].kind) << "access " << i;
    EXPECT_EQ(p[i].round, f[i].round) << "access " << i;
    EXPECT_EQ(p[i].segment, f[i].segment) << "access " << i;
    EXPECT_EQ(p[i].index, f[i].index) << "access " << i;
  }
}

TEST(PartialRound, Gift64TraceIsExactPrefixOfFullTrace) {
  gift::TableGift64 cipher;
  Xoshiro256 rng{0x64};
  const Key128 key = rng.key128();
  const std::uint64_t pt = rng.block64();
  const auto schedule = cipher.make_schedule(key);
  gift::VectorTraceSink full;
  const std::uint64_t full_ct =
      cipher.encrypt_with_schedule(pt, schedule, gift::Gift64::kRounds, &full);
  EXPECT_EQ(full_ct, gift::Gift64::encrypt(pt, key));
  for (unsigned n : {0u, 1u, 2u, 7u, gift::Gift64::kRounds}) {
    gift::VectorTraceSink partial;
    const std::uint64_t state =
        cipher.encrypt_with_schedule(pt, schedule, n, &partial);
    expect_trace_prefix(partial, full, n);
    EXPECT_EQ(partial.accesses().size(),
              n * gift::TableGift64::accesses_per_round());
    // State matches the keyed partial reference at every depth.
    EXPECT_EQ(state, cipher.encrypt_rounds(pt, key, n, nullptr)) << n;
  }
}

TEST(PartialRound, Gift64LazyCompletionMatchesDirectFullRun) {
  // Truncate-then-complete (the platform's last_ciphertext() path) must
  // equal one uninterrupted full encryption.
  gift::TableGift64 cipher;
  Xoshiro256 rng{0x65};
  const Key128 key = rng.key128();
  const auto schedule = cipher.make_schedule(key);
  for (unsigned i = 0; i < 8; ++i) {
    const std::uint64_t pt = rng.block64();
    gift::VectorTraceSink sink;
    (void)cipher.encrypt_with_schedule(pt, schedule, 2, &sink);
    const std::uint64_t completed =
        cipher.encrypt_with_schedule(pt, schedule, gift::Gift64::kRounds,
                                     nullptr);
    EXPECT_EQ(completed, gift::Gift64::encrypt(pt, key)) << i;
  }
}

TEST(PartialRound, Gift128TraceIsExactPrefixOfFullTrace) {
  gift::TableGift128 cipher;
  Xoshiro256 rng{0x128};
  const Key128 key = rng.key128();
  const gift::State128 pt{rng.block64(), rng.block64()};
  const auto schedule = cipher.make_schedule(key);
  gift::VectorTraceSink full;
  const gift::State128 full_ct = cipher.encrypt_with_schedule(
      pt, schedule, gift::Gift128::kRounds, &full);
  EXPECT_EQ(full_ct, gift::Gift128::encrypt(pt, key));
  for (unsigned n : {0u, 1u, 3u, 11u, gift::Gift128::kRounds}) {
    gift::VectorTraceSink partial;
    const gift::State128 state =
        cipher.encrypt_with_schedule(pt, schedule, n, &partial);
    expect_trace_prefix(partial, full, n);
    EXPECT_EQ(partial.accesses().size(),
              n * gift::TableGift128::accesses_per_round());
    EXPECT_EQ(state, cipher.encrypt_rounds(pt, key, n)) << n;
  }
}

TEST(PartialRound, Present80TraceIsExactPrefixOfFullTrace) {
  present::TablePresent80 cipher;
  Xoshiro256 rng{0x80};
  const Key128 key{rng.block64() & 0xFFFF, rng.block64()};
  const std::uint64_t pt = rng.block64();
  const auto schedule = present::TablePresent80::make_schedule(key);
  gift::VectorTraceSink full;
  const std::uint64_t full_ct = cipher.encrypt_with_schedule(
      pt, schedule, present::Present80::kRounds, &full);
  EXPECT_EQ(full_ct, present::Present80::encrypt(pt, key));
  for (unsigned n : {0u, 1u, 4u, 13u, present::Present80::kRounds}) {
    gift::VectorTraceSink partial;
    const std::uint64_t state =
        cipher.encrypt_with_schedule(pt, schedule, n, &partial);
    expect_trace_prefix(partial, full, n);
    EXPECT_EQ(state, cipher.encrypt_rounds(pt, key, n, nullptr)) << n;
  }
}

TEST(PartialRound, Present80WhiteningOnlyAtFullDepth) {
  // PRESENT's final whitening key is applied once all rounds have run;
  // a one-round-short partial state must differ from the ciphertext by
  // exactly more than the whitening XOR (it is a mid-round state), and
  // the full-depth schedule run must equal the reference.
  present::TablePresent80 cipher;
  Xoshiro256 rng{0x81};
  const Key128 key{rng.block64() & 0xFFFF, rng.block64()};
  const std::uint64_t pt = rng.block64();
  const auto schedule = present::TablePresent80::make_schedule(key);
  const std::uint64_t ct = present::Present80::encrypt(pt, key);
  EXPECT_EQ(cipher.encrypt_with_schedule(pt, schedule,
                                         present::Present80::kRounds, nullptr),
            ct);
  const std::uint64_t partial = cipher.encrypt_with_schedule(
      pt, schedule, present::Present80::kRounds - 1, nullptr);
  EXPECT_NE(partial, ct);
}

}  // namespace
}  // namespace grinch
