// Registry-wide wide-path conformance suite.
//
// The wide observation contract (target/observation.h): observe_wide's
// transposed batch must extract() bit-identical Observations to scalar
// observe() calls — through the lockstep fast path where supported
// (cachesim/lockstep.h) and through the transposing default elsewhere —
// and the engines layered on it must be width-invariant:
//  * KeyRecoveryEngine with Config::wide_width in {1, 2, 16, 63, 64}
//    reproduces the scalar RecoveryResult byte for byte, clean and under
//    channel faults (the FaultyObservationSource decorator corrupts wide
//    batches in delivery order and rewinds past speculative tails);
//  * WideRecoveryEngine runs N independent trials in lockstep and each
//    lane equals the scalar recover_key() run with that trial's seeds,
//    for any shard width (runner::make_wide_shards) and any thread count.
#include "target/wide_engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cachesim/kernels/kernels.h"
#include "common/rng.h"
#include "runner/thread_pool.h"
#include "runner/trial_runner.h"
#include "target/faulty_source.h"
#include "target/registry.h"

namespace grinch::target {
namespace {

template <typename Tuple>
struct AsTestTypes;
template <typename... Ts>
struct AsTestTypes<std::tuple<Ts...>> {
  using type = ::testing::Types<Ts...>;
};

using AllTargets = AsTestTypes<RegisteredRecoveries>::type;

// Stage keys have no operator== of their own (plain structs).
bool stage_key_equal(const gift::RoundKey64& a, const gift::RoundKey64& b) {
  return a.u == b.u && a.v == b.v;
}
bool stage_key_equal(const gift::RoundKey128& a, const gift::RoundKey128& b) {
  return a.u == b.u && a.v == b.v;
}
bool stage_key_equal(std::uint64_t a, std::uint64_t b) { return a == b; }

template <typename Recovery>
void expect_equal_results(const RecoveryResult<Recovery>& got,
                          const RecoveryResult<Recovery>& want,
                          const std::string& label) {
  EXPECT_EQ(got.success, want.success) << label;
  EXPECT_EQ(got.key_verified, want.key_verified) << label;
  EXPECT_EQ(got.stages_resolved, want.stages_resolved) << label;
  EXPECT_EQ(got.recovered_key, want.recovered_key) << label;
  EXPECT_EQ(got.total_encryptions, want.total_encryptions) << label;
  EXPECT_EQ(got.offline_trials, want.offline_trials) << label;
  EXPECT_EQ(got.stage_encryptions, want.stage_encryptions) << label;
  ASSERT_EQ(got.stage_keys.size(), want.stage_keys.size()) << label;
  for (std::size_t i = 0; i < want.stage_keys.size(); ++i) {
    EXPECT_TRUE(stage_key_equal(got.stage_keys[i], want.stage_keys[i]))
        << label << " stage " << i;
  }
  EXPECT_EQ(got.noise_restarts, want.noise_restarts) << label;
  EXPECT_EQ(got.dropped_observations, want.dropped_observations) << label;
  EXPECT_EQ(got.segment_resets, want.segment_resets) << label;
  EXPECT_EQ(got.verify_restarts, want.verify_restarts) << label;
  EXPECT_EQ(got.failed_stage, want.failed_stage) << label;
  EXPECT_EQ(got.surviving_masks, want.surviving_masks) << label;
  EXPECT_EQ(got.residual_key_bits, want.residual_key_bits) << label;
  // Residual-finisher fields (deterministic ones only — wall_seconds is
  // allowed to differ between runs).
  EXPECT_EQ(got.finisher.outcome, want.finisher.outcome) << label;
  EXPECT_EQ(got.finisher.candidates_tested, want.finisher.candidates_tested)
      << label;
  EXPECT_EQ(got.finisher.rank, want.finisher.rank) << label;
  EXPECT_EQ(got.finisher.frontier_rank, want.finisher.frontier_rank) << label;
  EXPECT_EQ(got.finisher.offline_trials, want.finisher.offline_trials)
      << label;
  EXPECT_EQ(got.finisher.search_space_bits, want.finisher.search_space_bits)
      << label;
  EXPECT_EQ(got.known_pairs, want.known_pairs) << label;
  ASSERT_EQ(got.stage_evidence.size(), want.stage_evidence.size()) << label;
  for (std::size_t i = 0; i < want.stage_evidence.size(); ++i) {
    EXPECT_EQ(got.stage_evidence[i].stage, want.stage_evidence[i].stage)
        << label;
    EXPECT_EQ(got.stage_evidence[i].assumed, want.stage_evidence[i].assumed)
        << label;
    EXPECT_EQ(got.stage_evidence[i].masks, want.stage_evidence[i].masks)
        << label;
    EXPECT_EQ(got.stage_evidence[i].updates, want.stage_evidence[i].updates)
        << label;
    EXPECT_EQ(got.stage_evidence[i].presence, want.stage_evidence[i].presence)
        << label;
  }
}

template <typename Recovery>
class WideConformance : public ::testing::Test {
 protected:
  static Key128 victim_key(std::uint64_t salt) {
    Xoshiro256 rng{Recovery::kDefaultSeed ^ salt};
    Key128 key = Recovery::canonical_key(rng.key128());
    // Zero the low 16 key-register bits so PRESENT's offline finalize
    // search exits on its first candidate (pure test speed; both sides
    // of every comparison run the identical search).
    key.lo &= ~std::uint64_t{0xFFFF};
    return Recovery::canonical_key(key);
  }

  /// N trial specs plus the matching scalar engine configs.
  static std::vector<WideTrialSpec> trial_specs(std::size_t n,
                                                std::uint64_t salt) {
    Xoshiro256 rng{Recovery::kDefaultSeed ^ salt ^ 0x77DE};
    std::vector<WideTrialSpec> specs;
    specs.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
      WideTrialSpec spec;
      spec.victim_key = Recovery::canonical_key(rng.key128());
      spec.victim_key.lo &= ~std::uint64_t{0xFFFF};
      spec.seed = rng.next();
      spec.fault_seed = rng.next();
      specs.push_back(spec);
    }
    return specs;
  }

  /// The scalar reference for one spec: recover_key with the spec's
  /// engine seed (and its fault seed, when `config` has faults).
  static RecoveryResult<Recovery> scalar_reference(
      const WideTrialSpec& spec,
      typename KeyRecoveryEngine<Recovery>::Config config,
      const typename DirectProbePlatform<Recovery>::Config& platform = {}) {
    config.seed = spec.seed;
    config.faults.seed = spec.fault_seed;
    return recover_key<Recovery>(spec.victim_key, config, platform);
  }
};
TYPED_TEST_SUITE(WideConformance, AllTargets);

TYPED_TEST(WideConformance, ObserveWideBitIdenticalToScalar) {
  using Recovery = TypeParam;
  using Block = typename Recovery::Block;
  const Key128 key = this->victim_key(0x3D);
  DirectProbePlatform<Recovery> scalar{{}, key};
  DirectProbePlatform<Recovery> wide{{}, key};
  Xoshiro256 rng{0x31DE};
  WideObservationBatch batch;
  for (unsigned stage = 0; stage < 3 && stage < Recovery::kStages; ++stage) {
    for (const std::size_t width : {std::size_t{1}, std::size_t{24},
                                    std::size_t{63}, std::size_t{64}}) {
      std::vector<Block> pts;
      for (std::size_t i = 0; i < width; ++i) {
        pts.push_back(Recovery::random_block(rng));
      }
      wide.observe_wide(pts, stage, batch);
      ASSERT_EQ(batch.width(), pts.size());
      for (std::size_t i = 0; i < pts.size(); ++i) {
        const Observation o = scalar.observe(pts[i], stage);
        const Observation w = batch.extract(static_cast<unsigned>(i));
        ASSERT_EQ(w.present, o.present)
            << "stage " << stage << " width " << width << " lane " << i;
        EXPECT_EQ(w.probed_after_round, o.probed_after_round);
        EXPECT_EQ(w.attacker_cycles, o.attacker_cycles);
        EXPECT_EQ(w.dropped, o.dropped);
      }
      EXPECT_EQ(wide.last_ciphertext(), scalar.last_ciphertext())
          << "stage " << stage << " width " << width;
    }
  }
}

TYPED_TEST(WideConformance, ObserveWideWithoutFlushMatchesScalar) {
  // use_flush = false moves the attacker's flush before round 0, so the
  // lockstep lanes must instrument every emitted round.
  using Recovery = TypeParam;
  using Block = typename Recovery::Block;
  const Key128 key = this->victim_key(0x3E);
  typename DirectProbePlatform<Recovery>::Config config;
  config.use_flush = false;
  DirectProbePlatform<Recovery> scalar{config, key};
  DirectProbePlatform<Recovery> wide{config, key};
  Xoshiro256 rng{0x0F1};
  std::vector<Block> pts;
  for (unsigned i = 0; i < 16; ++i) pts.push_back(Recovery::random_block(rng));
  WideObservationBatch batch;
  wide.observe_wide(pts, 0, batch);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Observation o = scalar.observe(pts[i], 0);
    const Observation w = batch.extract(static_cast<unsigned>(i));
    EXPECT_EQ(w.present, o.present) << i;
    EXPECT_EQ(w.attacker_cycles, o.attacker_cycles) << i;
  }
}

TYPED_TEST(WideConformance, ObserveWideShallowCacheMatchesScalar) {
  // A 2-way LRU cache keeps the lockstep fast path engaged but makes the
  // presence shortcut's capacity test trip (one probe fill plus a couple
  // of window accesses exceed two ways), so observations route through
  // the exact lockstep lane — this pins the shortcut's overflow fallback
  // against the scalar pipeline.
  using Recovery = TypeParam;
  using Block = typename Recovery::Block;
  const Key128 key = this->victim_key(0x40);
  typename DirectProbePlatform<Recovery>::Config config;
  config.cache.associativity = 2;
  ASSERT_TRUE(WideObserveCore<Recovery>::supported(config.cache));
  DirectProbePlatform<Recovery> scalar{config, key};
  DirectProbePlatform<Recovery> wide{config, key};
  Xoshiro256 rng{0x5A110};
  WideObservationBatch batch;
  for (unsigned stage = 0; stage < 2 && stage < Recovery::kStages; ++stage) {
    std::vector<Block> pts;
    for (unsigned i = 0; i < 32; ++i) {
      pts.push_back(Recovery::random_block(rng));
    }
    wide.observe_wide(pts, stage, batch);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const Observation o = scalar.observe(pts[i], stage);
      const Observation w = batch.extract(static_cast<unsigned>(i));
      EXPECT_EQ(w.present, o.present) << "stage " << stage << " lane " << i;
      EXPECT_EQ(w.attacker_cycles, o.attacker_cycles)
          << "stage " << stage << " lane " << i;
    }
  }
}

TYPED_TEST(WideConformance, ObserveWideFallsBackOnUnsupportedConfig) {
  // FIFO replacement has no lockstep fast path; observe_wide must route
  // through the transposing default and still match scalar observes.
  using Recovery = TypeParam;
  using Block = typename Recovery::Block;
  const Key128 key = this->victim_key(0x3F);
  typename DirectProbePlatform<Recovery>::Config config;
  config.cache.replacement = cachesim::Replacement::kFifo;
  ASSERT_FALSE(WideObserveCore<Recovery>::supported(config.cache));
  DirectProbePlatform<Recovery> scalar{config, key};
  DirectProbePlatform<Recovery> wide{config, key};
  Xoshiro256 rng{0xFB2};
  std::vector<Block> pts;
  for (unsigned i = 0; i < 9; ++i) pts.push_back(Recovery::random_block(rng));
  WideObservationBatch batch;
  wide.observe_wide(pts, 0, batch);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Observation o = scalar.observe(pts[i], 0);
    const Observation w = batch.extract(static_cast<unsigned>(i));
    EXPECT_EQ(w.present, o.present) << i;
    EXPECT_EQ(w.attacker_cycles, o.attacker_cycles) << i;
  }
  EXPECT_EQ(wide.last_ciphertext(), scalar.last_ciphertext());
}

std::vector<cachesim::kernels::Kind> available_kernels() {
  using cachesim::kernels::Kind;
  std::vector<Kind> kinds;
  for (const Kind k : {Kind::kGeneric, Kind::kSwar, Kind::kAvx2}) {
    if (cachesim::kernels::available(k)) kinds.push_back(k);
  }
  return kinds;
}

TYPED_TEST(WideConformance, ObserveWideBitIdenticalUnderEveryKernel) {
  // The dispatch contract end to end: every compiled-in-and-executable
  // probe kernel must reproduce the scalar pipeline bit for bit through
  // the full wide transport (lockstep probe, bulk transpose, column
  // gather on extract).  The wide platform is constructed inside the
  // kernel scope — its lockstep pool resolves the Ops table then.
  using Recovery = TypeParam;
  using Block = typename Recovery::Block;
  const Key128 key = this->victim_key(0x60);
  DirectProbePlatform<Recovery> scalar{{}, key};
  for (const cachesim::kernels::Kind kind : available_kernels()) {
    cachesim::kernels::ScopedKernel scope{kind};
    DirectProbePlatform<Recovery> wide{{}, key};
    Xoshiro256 rng{0x5EE6};  // identical plaintexts for every kernel
    WideObservationBatch batch;
    for (const std::size_t width : {std::size_t{1}, std::size_t{2},
                                    std::size_t{16}, std::size_t{63},
                                    std::size_t{64}}) {
      std::vector<Block> pts;
      for (std::size_t i = 0; i < width; ++i) {
        pts.push_back(Recovery::random_block(rng));
      }
      wide.observe_wide(pts, 0, batch);
      ASSERT_EQ(batch.width(), pts.size());
      for (std::size_t i = 0; i < pts.size(); ++i) {
        const Observation o = scalar.observe(pts[i], 0);
        const Observation w = batch.extract(static_cast<unsigned>(i));
        ASSERT_EQ(w.present, o.present)
            << cachesim::kernels::active().name << " width " << width
            << " lane " << i;
        EXPECT_EQ(w.probed_after_round, o.probed_after_round);
        EXPECT_EQ(w.attacker_cycles, o.attacker_cycles);
      }
    }
  }
}

TYPED_TEST(WideConformance, FaultyDecoratorWideMatchesScalarUnderEveryKernel) {
  // Same sweep through the fault decorator: corrupted deliveries must
  // stay kernel-invariant (the decorator consumes the transposed batch
  // through extract()/set_lane, both kernel-dispatched).
  using Recovery = TypeParam;
  using Block = typename Recovery::Block;
  const Key128 key = this->victim_key(0x61);
  const FaultProfile profile = FaultProfile::moderate();
  for (const cachesim::kernels::Kind kind : available_kernels()) {
    cachesim::kernels::ScopedKernel scope{kind};
    DirectProbePlatform<Recovery> scalar_inner{{}, key};
    DirectProbePlatform<Recovery> wide_inner{{}, key};
    FaultyObservationSource<Block> scalar{scalar_inner, profile};
    FaultyObservationSource<Block> wide{wide_inner, profile};
    Xoshiro256 rng{0xFA18};
    std::vector<Block> pts;
    for (unsigned i = 0; i < 64; ++i) {
      pts.push_back(Recovery::random_block(rng));
    }
    WideObservationBatch batch;
    wide.observe_wide(pts, 0, batch);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const Observation o = scalar.observe(pts[i], 0);
      const Observation w = batch.extract(static_cast<unsigned>(i));
      EXPECT_EQ(w.present, o.present)
          << cachesim::kernels::active().name << " lane " << i;
      EXPECT_EQ(w.dropped, o.dropped)
          << cachesim::kernels::active().name << " lane " << i;
    }
    EXPECT_EQ(wide.stats().dropped, scalar.stats().dropped);
  }
}

TYPED_TEST(WideConformance, PerLaneFallbackMatchesScalarObserveSequences) {
  // The per-lane fallback mode (target/wide_observe.h): on configurations
  // without a lockstep fast path, every backing lane must replay the
  // scalar observe() pipeline against its own persistent cache — across
  // successive run() calls, after reset_lane_state(), and independently
  // of which batch position carries the lane.  Covered on FIFO
  // replacement and on a next-line prefetcher, the two unsupported
  // families.
  using Recovery = TypeParam;
  using Block = typename Recovery::Block;
  using Core = WideObserveCore<Recovery>;
  constexpr unsigned kLanes = 5;
  for (const bool prefetch : {false, true}) {
    typename DirectProbePlatform<Recovery>::Config pconfig;
    if (prefetch) {
      pconfig.cache.prefetch_lines = 1;
    } else {
      pconfig.cache.replacement = cachesim::Replacement::kFifo;
    }
    ASSERT_FALSE(Core::supported(pconfig.cache));
    Core core{pconfig.cache, pconfig.layout};
    ASSERT_FALSE(core.fast_path());

    typename Recovery::TableCipher cipher{pconfig.layout};
    Xoshiro256 rng{prefetch ? 0x9E7Cu : 0xF1F0u};
    std::vector<Key128> keys;
    std::vector<typename Recovery::TableCipher::Schedule> schedules;
    std::vector<std::unique_ptr<DirectProbePlatform<Recovery>>> refs;
    for (unsigned l = 0; l < kLanes; ++l) {
      keys.push_back(Recovery::canonical_key(rng.key128()));
      schedules.push_back(cipher.make_schedule(keys.back()));
    }

    // Two trials per lane: trial 1 re-seats every lane at a different
    // batch position (reversed), pinning that Job::lane — not the batch
    // slot — keys the persistent state.
    for (unsigned trial = 0; trial < 2; ++trial) {
      refs.clear();
      for (unsigned l = 0; l < kLanes; ++l) {
        refs.push_back(std::make_unique<DirectProbePlatform<Recovery>>(
            pconfig, keys[l]));
        core.reset_lane_state(l);
      }
      for (unsigned batch_no = 0; batch_no < 3; ++batch_no) {
        const unsigned stage = batch_no % std::min(2u, Recovery::kStages);
        const ProbeWindow window =
            probe_window_for<Recovery>(stage, pconfig.probing_round);
        const unsigned instrument_from =
            pconfig.use_flush ? window.monitored_from : 0;
        std::vector<Block> pts;
        std::vector<typename Core::Job> jobs;
        for (unsigned pos = 0; pos < kLanes; ++pos) {
          const unsigned lane = trial == 0 ? pos : kLanes - 1 - pos;
          pts.push_back(Recovery::random_block(rng));
          jobs.push_back({&schedules[lane], pts.back(), window,
                          instrument_from, lane});
        }
        WideObservationBatch out;
        core.run(jobs, out);
        ASSERT_EQ(out.width(), kLanes);
        for (unsigned pos = 0; pos < kLanes; ++pos) {
          const unsigned lane = trial == 0 ? pos : kLanes - 1 - pos;
          const Observation o = refs[lane]->observe(pts[pos], stage);
          const Observation w = out.extract(pos);
          ASSERT_EQ(w.present, o.present)
              << (prefetch ? "prefetch" : "fifo") << " trial " << trial
              << " batch " << batch_no << " lane " << lane;
          EXPECT_EQ(w.probed_after_round, o.probed_after_round);
          EXPECT_EQ(w.attacker_cycles, o.attacker_cycles);
        }
      }
    }
  }
}

TYPED_TEST(WideConformance, FaultyDecoratorWideMatchesScalarDelivery) {
  // The decorator must corrupt wide lanes in delivery order with the
  // exact draw schedule of scalar delivery.
  using Recovery = TypeParam;
  using Block = typename Recovery::Block;
  const Key128 key = this->victim_key(0x40);
  const FaultProfile profile = FaultProfile::moderate();
  DirectProbePlatform<Recovery> scalar_inner{{}, key};
  DirectProbePlatform<Recovery> wide_inner{{}, key};
  FaultyObservationSource<Block> scalar{scalar_inner, profile};
  FaultyObservationSource<Block> wide{wide_inner, profile};
  Xoshiro256 rng{0xFA17};
  std::vector<Block> pts;
  for (unsigned i = 0; i < 48; ++i) pts.push_back(Recovery::random_block(rng));
  WideObservationBatch batch;
  wide.observe_wide(pts, 0, batch);
  ASSERT_EQ(batch.width(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Observation o = scalar.observe(pts[i], 0);
    const Observation w = batch.extract(static_cast<unsigned>(i));
    EXPECT_EQ(w.present, o.present) << "lane " << i;
    EXPECT_EQ(w.dropped, o.dropped) << "lane " << i;
  }
  EXPECT_EQ(wide.stats().dropped, scalar.stats().dropped);
  EXPECT_EQ(wide.stats().stale, scalar.stats().stale);
  EXPECT_EQ(wide.stats().bursts, scalar.stats().bursts);
  EXPECT_EQ(wide.stats().lines_flipped_absent,
            scalar.stats().lines_flipped_absent);
  EXPECT_EQ(wide.stats().lines_flipped_present,
            scalar.stats().lines_flipped_present);
}

TYPED_TEST(WideConformance, WideWidthEngineMatchesScalarEngine) {
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0x41);
  typename KeyRecoveryEngine<Recovery>::Config scalar_cfg;
  scalar_cfg.max_batch = 1;
  const RecoveryResult<Recovery> s = recover_key<Recovery>(key, scalar_cfg);
  ASSERT_TRUE(s.success);
  for (const unsigned width : {1u, 2u, 16u, 63u, 64u}) {
    typename KeyRecoveryEngine<Recovery>::Config cfg;
    cfg.wide_width = width;
    const RecoveryResult<Recovery> w = recover_key<Recovery>(key, cfg);
    expect_equal_results(w, s, "wide_width " + std::to_string(width));
  }
}

TYPED_TEST(WideConformance, WideWidthEngineMatchesScalarUnderFaults) {
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0x42);
  typename KeyRecoveryEngine<Recovery>::Config scalar_cfg =
      KeyRecoveryEngine<Recovery>::Config::noisy_defaults();
  scalar_cfg.max_encryptions = 800000;
  scalar_cfg.faults = FaultProfile::moderate();
  scalar_cfg.max_batch = 1;
  const RecoveryResult<Recovery> s = recover_key<Recovery>(key, scalar_cfg);
  ASSERT_TRUE(s.success);
  for (const unsigned width : {2u, 64u}) {
    typename KeyRecoveryEngine<Recovery>::Config cfg = scalar_cfg;
    cfg.wide_width = width;
    const RecoveryResult<Recovery> w = recover_key<Recovery>(key, cfg);
    expect_equal_results(w, s, "faulty wide_width " + std::to_string(width));
  }
}

TYPED_TEST(WideConformance, WideWidthClampsOutOfRangeValues) {
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0x43);
  typename KeyRecoveryEngine<Recovery>::Config scalar_cfg;
  scalar_cfg.max_batch = 1;
  const RecoveryResult<Recovery> s = recover_key<Recovery>(key, scalar_cfg);
  typename KeyRecoveryEngine<Recovery>::Config cfg;
  cfg.wide_width = 200;  // clamped to 64
  const RecoveryResult<Recovery> w = recover_key<Recovery>(key, cfg);
  expect_equal_results(w, s, "wide_width 200");
}

TYPED_TEST(WideConformance, WideEngineLanesMatchScalarTrials) {
  // Each WideRecoveryEngine lane must equal the scalar recover_key run
  // with that trial's seeds, at every shard width.
  using Recovery = TypeParam;
  constexpr std::size_t kTrials = 9;
  const auto specs = this->trial_specs(kTrials, 0x50);
  typename KeyRecoveryEngine<Recovery>::Config config;
  std::vector<RecoveryResult<Recovery>> refs;
  refs.reserve(kTrials);
  for (const WideTrialSpec& spec : specs) {
    refs.push_back(this->scalar_reference(spec, config));
  }
  for (const unsigned width : {1u, 4u, 64u}) {
    WideRecoveryEngine<Recovery> engine{config};
    std::vector<RecoveryResult<Recovery>> results;
    for (const runner::WideShard& shard :
         runner::make_wide_shards(kTrials, width)) {
      auto part = engine.run(
          std::span<const WideTrialSpec>(specs).subspan(shard.begin,
                                                        shard.width));
      for (auto& r : part) results.push_back(std::move(r));
    }
    ASSERT_EQ(results.size(), refs.size());
    for (std::size_t t = 0; t < refs.size(); ++t) {
      expect_equal_results(results[t], refs[t],
                           "width " + std::to_string(width) + " trial " +
                               std::to_string(t));
    }
  }
}

TYPED_TEST(WideConformance, WideEngineLanesMatchScalarTrialsUnderFaults) {
  using Recovery = TypeParam;
  constexpr std::size_t kTrials = 5;
  const auto specs = this->trial_specs(kTrials, 0x51);
  typename KeyRecoveryEngine<Recovery>::Config config =
      KeyRecoveryEngine<Recovery>::Config::noisy_defaults();
  config.max_encryptions = 800000;
  config.faults = FaultProfile::moderate();
  std::vector<RecoveryResult<Recovery>> refs;
  for (const WideTrialSpec& spec : specs) {
    refs.push_back(this->scalar_reference(spec, config));
  }
  WideRecoveryEngine<Recovery> engine{config};
  const auto results = engine.run(specs);
  ASSERT_EQ(results.size(), refs.size());
  for (std::size_t t = 0; t < refs.size(); ++t) {
    expect_equal_results(results[t], refs[t],
                         "faulty trial " + std::to_string(t));
  }
}

TYPED_TEST(WideConformance, WideEngineFallsBackOnUnsupportedConfig) {
  // On a FIFO cache the engine must run every lane on its scalar
  // fallback platform with identical results.
  using Recovery = TypeParam;
  constexpr std::size_t kTrials = 3;
  const auto specs = this->trial_specs(kTrials, 0x52);
  typename KeyRecoveryEngine<Recovery>::Config config;
  typename DirectProbePlatform<Recovery>::Config platform;
  platform.cache.replacement = cachesim::Replacement::kFifo;
  std::vector<RecoveryResult<Recovery>> refs;
  for (const WideTrialSpec& spec : specs) {
    refs.push_back(this->scalar_reference(spec, config, platform));
  }
  WideRecoveryEngine<Recovery> engine{config, platform};
  const auto results = engine.run(specs);
  ASSERT_EQ(results.size(), refs.size());
  for (std::size_t t = 0; t < refs.size(); ++t) {
    expect_equal_results(results[t], refs[t],
                         "fallback trial " + std::to_string(t));
  }
}

TYPED_TEST(WideConformance, ShardedWideRunsAreThreadCountInvariant) {
  // Shards dispatched across a ThreadPool (one engine per shard, disjoint
  // output slots) must reproduce the serial shard loop bit for bit — the
  // TSan job runs this against the race detector.
  using Recovery = TypeParam;
  constexpr std::size_t kTrials = 8;
  constexpr unsigned kWidth = 3;
  const auto specs = this->trial_specs(kTrials, 0x53);
  typename KeyRecoveryEngine<Recovery>::Config config;

  const auto shards = runner::make_wide_shards(kTrials, kWidth);
  std::vector<std::vector<RecoveryResult<Recovery>>> serial(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    WideRecoveryEngine<Recovery> engine{config};
    serial[i] = engine.run(std::span<const WideTrialSpec>(specs).subspan(
        shards[i].begin, shards[i].width));
  }

  for (const unsigned threads : {1u, 4u}) {
    runner::ThreadPool pool{threads};
    std::vector<std::vector<RecoveryResult<Recovery>>> parallel(shards.size());
    pool.parallel_for(shards.size(), [&](std::size_t i) {
      WideRecoveryEngine<Recovery> engine{config};
      parallel[i] = engine.run(std::span<const WideTrialSpec>(specs).subspan(
          shards[i].begin, shards[i].width));
    });
    for (std::size_t i = 0; i < shards.size(); ++i) {
      ASSERT_EQ(parallel[i].size(), serial[i].size());
      for (std::size_t t = 0; t < serial[i].size(); ++t) {
        expect_equal_results(parallel[i][t], serial[i][t],
                             std::to_string(threads) + " threads shard " +
                                 std::to_string(i) + " trial " +
                                 std::to_string(t));
      }
    }
  }
}

TEST(WideShards, CoverTrialsExactly) {
  const auto shards = runner::make_wide_shards(130, 64);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].begin, 0u);
  EXPECT_EQ(shards[0].width, 64u);
  EXPECT_EQ(shards[1].begin, 64u);
  EXPECT_EQ(shards[1].width, 64u);
  EXPECT_EQ(shards[2].begin, 128u);
  EXPECT_EQ(shards[2].width, 2u);
  EXPECT_TRUE(runner::make_wide_shards(0, 16).empty());
  // Width is clamped to [1, 64].
  EXPECT_EQ(runner::make_wide_shards(5, 0).size(), 5u);
  EXPECT_EQ(runner::make_wide_shards(200, 1000).front().width, 64u);
}

}  // namespace
}  // namespace grinch::target
