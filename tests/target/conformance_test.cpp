// Cross-cipher conformance suite for the unified target pipeline.
//
// Typed over every registered target (target/registry.h): each must give
// deterministic observations under a fixed RNG seed, index->line ids
// consistent with its table layout, a last_ciphertext() matching the
// non-instrumented reference cipher, and full key recovery on the paper's
// default cache configuration.  A target that passes here is a correct
// citizen of DirectProbePlatform + KeyRecoveryEngine; porting a new
// cipher, this suite is the contract to satisfy (docs/TARGETS.md).
#include "target/registry.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"

namespace grinch::target {
namespace {

template <typename Tuple>
struct AsTestTypes;
template <typename... Ts>
struct AsTestTypes<std::tuple<Ts...>> {
  using type = ::testing::Types<Ts...>;
};

using AllTargets = AsTestTypes<RegisteredRecoveries>::type;

template <typename Recovery>
class TargetConformance : public ::testing::Test {
 protected:
  static Key128 victim_key(std::uint64_t salt) {
    Xoshiro256 rng{Recovery::kDefaultSeed ^ salt};
    return Recovery::canonical_key(rng.key128());
  }
};
TYPED_TEST_SUITE(TargetConformance, AllTargets);

TYPED_TEST(TargetConformance, ObserveIsDeterministicUnderFixedSeed) {
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0xD0);
  DirectProbePlatform<Recovery> a{{}, key};
  DirectProbePlatform<Recovery> b{{}, key};
  Xoshiro256 rng_a{42};
  Xoshiro256 rng_b{42};
  for (unsigned i = 0; i < 16; ++i) {
    const Observation oa = a.observe(Recovery::random_block(rng_a), 0);
    const Observation ob = b.observe(Recovery::random_block(rng_b), 0);
    EXPECT_EQ(oa.present, ob.present) << "observation " << i;
    EXPECT_EQ(oa.probed_after_round, ob.probed_after_round);
    EXPECT_EQ(oa.attacker_cycles, ob.attacker_cycles);
    EXPECT_EQ(a.last_ciphertext(), b.last_ciphertext());
  }
}

TYPED_TEST(TargetConformance, IndexLineIdsConsistentWithLayout) {
  using Recovery = TypeParam;
  const DirectProbePlatform<Recovery> platform{{}, this->victim_key(0xD1)};
  const typename DirectProbePlatform<Recovery>::Config defaults{};
  const std::vector<unsigned> ids = platform.index_line_ids();
  EXPECT_EQ(ids, compute_index_line_ids(platform.layout(),
                                        defaults.cache.line_bytes));
  // One id per S-Box index; equal ids exactly when two indices' rows
  // share a cache line.
  ASSERT_EQ(ids.size(), platform.layout().sbox_rows());
  for (unsigned i = 0; i < ids.size(); ++i) {
    for (unsigned j = 0; j < ids.size(); ++j) {
      const bool same_line =
          platform.layout().sbox_row_addr(i) / defaults.cache.line_bytes ==
          platform.layout().sbox_row_addr(j) / defaults.cache.line_bytes;
      EXPECT_EQ(ids[i] == ids[j], same_line) << i << " vs " << j;
    }
  }
}

TYPED_TEST(TargetConformance, LastCiphertextMatchesReferenceCipher) {
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0xD2);
  DirectProbePlatform<Recovery> platform{{}, key};
  Xoshiro256 rng{7};
  for (unsigned i = 0; i < 8; ++i) {
    const auto pt = Recovery::random_block(rng);
    (void)platform.observe(pt, 0);
    const auto reference = Recovery::reference_encrypt(pt, key);
    EXPECT_EQ(platform.last_ciphertext(), reference) << "encryption " << i;
  }
}

TYPED_TEST(TargetConformance, RecoversFullKeyOnPaperDefaultCache) {
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0xD3);
  const RecoveryResult<Recovery> r = recover_key<Recovery>(key);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.key_verified);
  EXPECT_TRUE(r.stages_resolved);
  EXPECT_EQ(r.recovered_key, key);
  EXPECT_EQ(r.stage_keys.size(), Recovery::kStages);
  for (unsigned s = 0; s < Recovery::kStages; ++s) {
    EXPECT_GT(r.stage_encryptions[s], 0u) << "stage " << s;
  }
}

TEST(Registry, VisitsEveryTargetOnceWithDistinctNames) {
  std::vector<std::string> names;
  for_each_registered_target(
      [&](auto recovery) { names.emplace_back(decltype(recovery)::kName); });
  EXPECT_EQ(names,
            (std::vector<std::string>{"gift64", "gift128", "present80"}));
}

}  // namespace
}  // namespace grinch::target
