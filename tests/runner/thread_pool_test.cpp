// ThreadPool / TrialRunner unit tests: exactly-once execution, empty
// batches, exception propagation, and the seed-derivation contract that
// the determinism suite builds on.
#include "runner/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "runner/trial_runner.h"

namespace grinch::runner {
namespace {

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  ThreadPool pool;  // 0 = hardware concurrency
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool{4};
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  // Far more tasks than threads: distribution + stealing must still cover
  // each index exactly once.
  constexpr std::size_t kTasks = 1000;
  ThreadPool pool{4};
  std::vector<std::atomic<int>> counts(kTasks);
  pool.parallel_for(kTasks, [&](std::size_t i) { ++counts[i]; });
  for (std::size_t i = 0; i < kTasks; ++i)
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.parallel_for(8, [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ResultsIndependentOfThreadCount) {
  auto run = [](unsigned threads) {
    ThreadPool pool{threads};
    std::vector<std::uint64_t> out(257);
    pool.parallel_for(out.size(), [&](std::size_t i) {
      out[i] = i * i + 7;
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool{4};
  EXPECT_THROW(
      pool.parallel_for(16,
                        [&](std::size_t i) {
                          if (i == 5) throw std::runtime_error{"boom"};
                        }),
      std::runtime_error);
}

TEST(ThreadPool, LowestIndexExceptionWins) {
  // Several tasks throw; the batch still runs to completion and the
  // rethrown exception is the lowest-index one (deterministic choice).
  ThreadPool pool{4};
  std::atomic<int> executed{0};
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      ++executed;
      if (i % 3 == 1) throw std::runtime_error{std::to_string(i)};
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "1");
  }
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPool, ExceptionInInlineModePropagates) {
  ThreadPool pool{1};
  EXPECT_THROW(pool.parallel_for(
                   4, [](std::size_t i) {
                     if (i == 2) throw std::logic_error{"inline"};
                   }),
               std::logic_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool{2};
  EXPECT_THROW(
      pool.parallel_for(4, [](std::size_t) { throw std::runtime_error{"x"}; }),
      std::runtime_error);
  std::atomic<int> calls{0};
  pool.parallel_for(10, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 10);
}

TEST(TrialRunner, MapReturnsResultsInIndexOrder) {
  ThreadPool pool{4};
  TrialRunner run{pool};
  const std::vector<std::uint64_t> out =
      run.map<std::uint64_t>(100, [](std::size_t i) { return i * 3; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 3);
}

TEST(TrialSeeds, MatchSerialDrawOrder) {
  // derive_trial_seeds must replicate the exact draws the old serial
  // harness loops made: key128() then next(), per trial.
  constexpr std::uint64_t kSeed = 0xF1601;
  const std::vector<TrialSeed> derived = derive_trial_seeds(kSeed, 5);
  Xoshiro256 rng{kSeed};
  for (const TrialSeed& ts : derived) {
    const Key128 key = rng.key128();
    EXPECT_EQ(ts.key.hi, key.hi);
    EXPECT_EQ(ts.key.lo, key.lo);
    EXPECT_EQ(ts.seed, rng.next());
  }
}

TEST(TrialSeeds, DeriveSeedsMatchesStream) {
  Xoshiro256 rng{42};
  const std::vector<std::uint64_t> seeds = derive_seeds(42, 4);
  for (std::uint64_t s : seeds) EXPECT_EQ(s, rng.next());
}

TEST(ParallelCells, CoversTheWholeGridExactlyOnce) {
  ThreadPool pool{4};
  const std::vector<std::size_t> trials{3, 0, 5, 1};
  std::vector<std::vector<std::atomic<int>>> counts;
  counts.emplace_back(3);
  counts.emplace_back(0);
  counts.emplace_back(5);
  counts.emplace_back(1);
  parallel_cells(pool, trials, [&](std::size_t c, std::size_t t) {
    ASSERT_LT(c, counts.size());
    ASSERT_LT(t, counts[c].size());
    ++counts[c][t];
  });
  for (std::size_t c = 0; c < counts.size(); ++c)
    for (std::size_t t = 0; t < counts[c].size(); ++t)
      EXPECT_EQ(counts[c][t].load(), 1) << "cell " << c << " trial " << t;
}

TEST(ParallelCells, EmptyGridIsANoOp) {
  ThreadPool pool{2};
  std::atomic<int> calls{0};
  parallel_cells(pool, {}, [&](std::size_t, std::size_t) { ++calls; });
  parallel_cells(pool, {0, 0, 0}, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

}  // namespace
}  // namespace grinch::runner
