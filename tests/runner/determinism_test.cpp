// Determinism suite: the runner contract, end to end.
//
// Reduced Fig. 3 / Table I grids run through the real bench harness
// (bench/bench_util.h) once on a 1-thread pool and once on an 8-thread
// pool; every cell render and the machine-readable JSON document must be
// byte-identical.  This is the executable form of the docs/RUNNER.md
// guarantee that --threads never changes a reported number.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_util.h"

namespace grinch {
namespace {

std::vector<bench::CellSpec> reduced_fig3_grid() {
  // Rounds 1..2, with and without flush — the cheap corner of Fig. 3,
  // same seeds as the real bench.
  std::vector<bench::CellSpec> specs;
  for (unsigned k = 1; k <= 2; ++k) {
    bench::CellSpec spec;
    spec.platform.probing_round = k;
    spec.platform.use_flush = true;
    spec.trials = 2;
    spec.budget = 20000;
    spec.seed = 0xF1600 + k;
    specs.push_back(spec);
    spec.platform.use_flush = false;
    spec.seed = 0xF1700 + k;
    specs.push_back(spec);
  }
  return specs;
}

std::vector<bench::CellSpec> reduced_table1_grid() {
  // Line sizes 1/2 words at probing rounds 1..2, same seeds as the bench.
  std::vector<bench::CellSpec> specs;
  for (unsigned words : {1u, 2u}) {
    for (unsigned k = 1; k <= 2; ++k) {
      bench::CellSpec spec;
      spec.platform.cache.line_bytes = words;
      spec.platform.probing_round = k;
      spec.trials = 2;
      spec.budget = 20000;
      spec.seed = 0x7AB1E100 + words * 16 + k;
      specs.push_back(spec);
    }
  }
  return specs;
}

std::vector<std::string> render_cells(runner::ThreadPool& pool,
                                      const std::vector<bench::CellSpec>& g) {
  std::vector<std::string> out;
  for (const bench::CellResult& r : bench::first_round_cells(pool, g))
    out.push_back(r.cell.render());
  return out;
}

TEST(Determinism, Fig3CellsIdenticalAcrossThreadCounts) {
  const std::vector<bench::CellSpec> grid = reduced_fig3_grid();
  runner::ThreadPool serial{1};
  runner::ThreadPool wide{8};
  EXPECT_EQ(render_cells(serial, grid), render_cells(wide, grid));
}

TEST(Determinism, Table1CellsIdenticalAcrossThreadCounts) {
  const std::vector<bench::CellSpec> grid = reduced_table1_grid();
  runner::ThreadPool serial{1};
  runner::ThreadPool wide{8};
  EXPECT_EQ(render_cells(serial, grid), render_cells(wide, grid));
}

TEST(Determinism, CellsMatchTheOldSerialLoop) {
  // first_round_cells on any pool must reproduce the pre-runner serial
  // harness: a plain loop drawing key128()/next() per trial from the
  // cell's seed stream.
  const std::vector<bench::CellSpec> grid = reduced_fig3_grid();
  runner::ThreadPool wide{8};
  const std::vector<bench::CellResult> parallel_cells_result =
      bench::first_round_cells(wide, grid);
  for (std::size_t c = 0; c < grid.size(); ++c) {
    EffortCell serial_cell{grid[c].budget};
    Xoshiro256 rng{grid[c].seed};
    for (unsigned t = 0; t < grid[c].trials; ++t) {
      const Key128 key = rng.key128();
      const auto effort = bench::first_round_effort(
          grid[c].platform, key, grid[c].budget, rng.next(), grid[c].attack);
      if (effort) {
        serial_cell.add_success(*effort);
      } else {
        serial_cell.add_dropout();
      }
    }
    EXPECT_EQ(serial_cell.render(), parallel_cells_result[c].cell.render())
        << "cell " << c;
  }
}

/// Runs a reduced fig3 bench through BenchContext (as the binary does)
/// and returns the determinism-comparable JSON document.
std::string bench_document(const char* threads_flag) {
  const char* argv[] = {"determinism_bench", "--threads", threads_flag};
  bench::BenchContext ctx{3, const_cast<char**>(argv)};
  ctx.set_config("budget", std::uint64_t{20000});
  const std::vector<bench::CellSpec> grid = reduced_fig3_grid();
  const std::vector<bench::CellResult> cells =
      bench::first_round_cells(ctx.pool(), grid);

  AsciiTable table{"Fig. 3 (reduced)"};
  table.set_header({"probing round", "with flush", "without flush"});
  for (unsigned k = 1; k <= 2; ++k)
    table.add_row({std::to_string(k), cells[(k - 1) * 2].cell.render(),
                   cells[(k - 1) * 2 + 1].cell.render()});
  ctx.print_table(table);
  // Wall-clock goes only to the timing/run sections, which
  // results_json(false) excludes.
  ctx.set_timing("grid_trial_seconds", 1.0);
  return ctx.results_json(false).dump();
}

TEST(Determinism, JsonDocumentIdenticalAcrossThreadCounts) {
  ::testing::internal::CaptureStdout();  // swallow the table prints
  const std::string doc1 = bench_document("1");
  const std::string doc8 = bench_document("8");
  ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(doc1, doc8);
  // Sanity: the document carries the table contents.
  EXPECT_NE(doc1.find("Fig. 3 (reduced)"), std::string::npos);
  EXPECT_NE(doc1.find("probing round"), std::string::npos);
  // And no run-dependent sections leak into the compared form.
  EXPECT_EQ(doc1.find("threads"), std::string::npos);
  EXPECT_EQ(doc1.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(doc1.find("trial_seconds"), std::string::npos);
}

TEST(Determinism, RunInfoDocumentCarriesThreadsAndTiming) {
  const char* argv[] = {"determinism_bench", "--threads", "3"};
  bench::BenchContext ctx{3, const_cast<char**>(argv)};
  const std::string doc = ctx.results_json(true).dump();
  EXPECT_NE(doc.find("\"threads\": 3"), std::string::npos);
  EXPECT_NE(doc.find("wall_seconds"), std::string::npos);
}

}  // namespace
}  // namespace grinch
