#include "noc/topology.h"

#include <gtest/gtest.h>

namespace grinch::noc {
namespace {

TEST(Mesh, RejectsDegenerateDimensions) {
  EXPECT_THROW(MeshTopology(0, 3), std::invalid_argument);
  EXPECT_THROW(MeshTopology(3, 0), std::invalid_argument);
}

TEST(Mesh, RowMajorIds) {
  const MeshTopology mesh{3, 3};
  EXPECT_EQ(mesh.node_count(), 9u);
  EXPECT_EQ(mesh.id_of({0, 0}), 0u);
  EXPECT_EQ(mesh.id_of({2, 0}), 2u);
  EXPECT_EQ(mesh.id_of({0, 1}), 3u);
  EXPECT_EQ(mesh.id_of({2, 2}), 8u);
}

TEST(Mesh, CoordOfInvertsIdOf) {
  const MeshTopology mesh{4, 3};
  for (NodeId id = 0; id < mesh.node_count(); ++id) {
    EXPECT_EQ(mesh.id_of(mesh.coord_of(id)), id);
  }
}

TEST(Mesh, OutOfRangeThrows) {
  const MeshTopology mesh{2, 2};
  EXPECT_THROW((void)mesh.coord_of(4), std::out_of_range);
  EXPECT_THROW((void)mesh.id_of({2, 0}), std::out_of_range);
}

TEST(Mesh, HopDistanceIsManhattan) {
  const MeshTopology mesh{3, 3};
  EXPECT_EQ(mesh.hop_distance(0, 0), 0u);
  EXPECT_EQ(mesh.hop_distance(0, 8), 4u);
  EXPECT_EQ(mesh.hop_distance(0, 2), 2u);
  EXPECT_EQ(mesh.hop_distance(2, 0), 2u);  // symmetric
  EXPECT_EQ(mesh.hop_distance(4, 1), 1u);  // centre to edge
}

TEST(Mesh, CornerHasTwoNeighbors) {
  const MeshTopology mesh{3, 3};
  EXPECT_EQ(mesh.neighbors(0).size(), 2u);
  EXPECT_EQ(mesh.neighbors(2).size(), 2u);
  EXPECT_EQ(mesh.neighbors(8).size(), 2u);
}

TEST(Mesh, EdgeHasThreeCentreHasFour) {
  const MeshTopology mesh{3, 3};
  EXPECT_EQ(mesh.neighbors(1).size(), 3u);
  EXPECT_EQ(mesh.neighbors(4).size(), 4u);
}

TEST(Mesh, NeighborsAreAtDistanceOne) {
  const MeshTopology mesh{4, 4};
  for (NodeId id = 0; id < mesh.node_count(); ++id) {
    for (NodeId n : mesh.neighbors(id)) {
      EXPECT_EQ(mesh.hop_distance(id, n), 1u);
    }
  }
}

TEST(Mesh, OneDimensionalMeshWorks) {
  const MeshTopology line{8, 1};
  EXPECT_EQ(line.hop_distance(0, 7), 7u);
  EXPECT_EQ(line.neighbors(0).size(), 1u);
  EXPECT_EQ(line.neighbors(3).size(), 2u);
}

}  // namespace
}  // namespace grinch::noc
