#include "noc/routing.h"

#include <gtest/gtest.h>

namespace grinch::noc {
namespace {

TEST(XyRouting, RouteLengthIsHopDistancePlusOne) {
  const MeshTopology mesh{4, 4};
  const XyRouter router{mesh};
  for (NodeId s = 0; s < mesh.node_count(); ++s) {
    for (NodeId d = 0; d < mesh.node_count(); ++d) {
      const auto path = router.route(s, d);
      EXPECT_EQ(path.size(), mesh.hop_distance(s, d) + 1);
      EXPECT_EQ(path.front(), s);
      EXPECT_EQ(path.back(), d);
    }
  }
}

TEST(XyRouting, XFirstThenY) {
  const MeshTopology mesh{3, 3};
  const XyRouter router{mesh};
  // 0 (0,0) -> 8 (2,2): X first to (2,0)=2, then Y down.
  const auto path = router.route(0, 8);
  const std::vector<NodeId> expected{0, 1, 2, 5, 8};
  EXPECT_EQ(path, expected);
}

TEST(XyRouting, NegativeDirections) {
  const MeshTopology mesh{3, 3};
  const XyRouter router{mesh};
  const auto path = router.route(8, 0);
  const std::vector<NodeId> expected{8, 7, 6, 3, 0};
  EXPECT_EQ(path, expected);
}

TEST(XyRouting, AdjacentStepsAreMeshLinks) {
  const MeshTopology mesh{5, 4};
  const XyRouter router{mesh};
  for (NodeId s = 0; s < mesh.node_count(); s += 3) {
    for (NodeId d = 0; d < mesh.node_count(); d += 2) {
      const auto path = router.route(s, d);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_EQ(mesh.hop_distance(path[i], path[i + 1]), 1u);
      }
    }
  }
}

TEST(XyRouting, NextHopAtDestinationThrows) {
  const MeshTopology mesh{2, 2};
  const XyRouter router{mesh};
  EXPECT_THROW((void)router.next_hop(1, 1), std::invalid_argument);
}

TEST(XyRouting, DeterministicRoutes) {
  const MeshTopology mesh{4, 4};
  const XyRouter router{mesh};
  EXPECT_EQ(router.route(3, 12), router.route(3, 12));
}

TEST(XyRouting, RouteToSelfIsSingleton) {
  const MeshTopology mesh{3, 3};
  const XyRouter router{mesh};
  const auto path = router.route(4, 4);
  EXPECT_EQ(path.size(), 1u);
}

}  // namespace
}  // namespace grinch::noc
