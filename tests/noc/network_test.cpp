#include "noc/network.h"

#include <gtest/gtest.h>

namespace grinch::noc {
namespace {

Network make_network() {
  static const MeshTopology mesh{3, 3};
  LinkTiming timing;  // router 2, link 1, flit 4B
  return Network{mesh, timing};
}

TEST(Network, LocalDeliveryCostsOneRouter) {
  Network net = make_network();
  const PacketResult r = net.send(4, 4, 4);
  EXPECT_EQ(r.hops, 0u);
  EXPECT_EQ(r.flits, 1u);
  EXPECT_EQ(r.latency_cycles, 2u);  // one router traversal
}

TEST(Network, LatencyGrowsWithDistance) {
  Network net = make_network();
  const auto near = net.send(0, 1, 4).latency_cycles;
  const auto far = net.send(0, 8, 4).latency_cycles;
  EXPECT_LT(near, far);
  // 1 hop: 2 routers + 1 link = 5; 4 hops: 5 routers + 4 links = 14.
  EXPECT_EQ(near, 5u);
  EXPECT_EQ(far, 14u);
}

TEST(Network, SerializationAddsPerFlitCycles) {
  Network net = make_network();
  const auto small = net.send(0, 1, 4).latency_cycles;
  const auto big = net.send(0, 1, 16).latency_cycles;  // 4 flits
  EXPECT_EQ(big, small + 3u);
}

TEST(Network, HeaderOnlyPacketIsOneFlit) {
  Network net = make_network();
  EXPECT_EQ(net.send(0, 1, 0).flits, 1u);
}

TEST(Network, LatencyMethodMatchesSendWithoutMutation) {
  Network net = make_network();
  const auto expected = net.latency(0, 8, 12);
  const auto before = net.stats().packets;
  EXPECT_EQ(net.latency(0, 8, 12), expected);
  EXPECT_EQ(net.stats().packets, before);
  EXPECT_EQ(net.send(0, 8, 12).latency_cycles, expected);
}

TEST(Network, StatsTrackLinksAlongXyRoute) {
  Network net = make_network();
  (void)net.send(0, 2, 4);  // route 0->1->2
  const auto& links = net.stats().link_flits;
  EXPECT_EQ(links.at({0u, 1u}), 1u);
  EXPECT_EQ(links.at({1u, 2u}), 1u);
  EXPECT_EQ(links.count({2u, 1u}), 0u);  // directed
}

TEST(Network, StatsAccumulateAndClear) {
  Network net = make_network();
  (void)net.send(0, 8, 8);
  (void)net.send(8, 0, 8);
  EXPECT_EQ(net.stats().packets, 2u);
  EXPECT_EQ(net.stats().total_hop_traversals, 8u);
  net.clear_stats();
  EXPECT_EQ(net.stats().packets, 0u);
  EXPECT_TRUE(net.stats().link_flits.empty());
}

TEST(Network, PaperScaleRemoteAccessLatency) {
  // Attacker tile to shared-cache tile on the paper's MPSoC: ~400 ns at
  // 50 MHz = ~20 cycles for the round trip.  Our defaults land in that
  // range for a 2-hop route.
  Network net = make_network();
  const auto request = net.latency(2, 4, 8);   // corner-ish to centre
  const auto response = net.latency(4, 2, 8);
  const auto round_trip = request + response;
  EXPECT_GE(round_trip, 10u);
  EXPECT_LE(round_trip, 40u);
}

}  // namespace
}  // namespace grinch::noc
