#include "analysis/quantify.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "analysis/key_class.h"
#include "analysis/leakcheck.h"
#include "analysis/registry.h"

namespace grinch::analysis {
namespace {

/// Quantifies one built-in target by name, enumeration-only (the sampled
/// pass is exercised separately so most tests stay O(microseconds)).
QuantifyReport quantify_static(const std::string& name) {
  const std::vector<AnalysisTarget> targets = builtin_targets();
  const AnalysisTarget* target = find_target(targets, name);
  EXPECT_NE(target, nullptr) << name;
  QuantifyConfig cfg;
  cfg.run_sampled = false;
  return quantify(*target, cfg);
}

TEST(KeyClass, SingletonClassesCarryFullEntropy) {
  // 4 keys, 4 distinct footprints: I = log2 4, one candidate survives.
  const KeyClassPartition part =
      partition_keys(4, [](std::uint32_t key, Footprint& fp) {
        fp.push_back(key);
      });
  EXPECT_EQ(part.classes(), 4u);
  EXPECT_DOUBLE_EQ(part.mutual_information_bits(), 2.0);
  EXPECT_DOUBLE_EQ(part.expected_class_size(), 1.0);
}

TEST(KeyClass, IndistinguishableKeysCarryNothing) {
  const KeyClassPartition part =
      partition_keys(8, [](std::uint32_t, Footprint& fp) {
        fp.push_back(42);
      });
  EXPECT_EQ(part.classes(), 1u);
  EXPECT_DOUBLE_EQ(part.mutual_information_bits(), 0.0);
  EXPECT_DOUBLE_EQ(part.expected_class_size(), 8.0);
}

TEST(KeyClass, FootprintOrderAndDuplicatesDoNotSplitClasses) {
  // {1,2} touched in either order (with repeats) is the same observation.
  const KeyClassPartition part =
      partition_keys(2, [](std::uint32_t key, Footprint& fp) {
        if (key == 0) {
          fp = {1, 2, 1};
        } else {
          fp = {2, 1};
        }
      });
  EXPECT_EQ(part.classes(), 1u);
}

TEST(KeyClass, BinaryEntropyEndpoints) {
  EXPECT_DOUBLE_EQ(binary_entropy_bits(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy_bits(1.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy_bits(0.5), 1.0);
}

TEST(Quantify, Gift64BaselineMeasuresTwoBitsPerSegmentPerAttackedRound) {
  // The paper's headline number, reproduced from first principles: each
  // attacked round exposes exactly 2.0 bits per segment through the
  // S-Box channel (2 fresh key bits -> 4 rows -> 4 distinct lines at the
  // paper-default 1-byte-line cache).
  const QuantifyReport r = quantify_static("gift64-table");
  ASSERT_EQ(r.rounds.size(), 5u);
  // Paper round 1 (code round 0) is key-independent.
  for (const SegmentQuantity& s : r.rounds[0].segments) {
    EXPECT_EQ(s.key_bits, 0u);
    EXPECT_DOUBLE_EQ(s.sbox_bits, 0.0);
  }
  for (unsigned round = 1; round <= 4; ++round) {
    ASSERT_EQ(r.rounds[round].segments.size(), 16u);
    for (const SegmentQuantity& s : r.rounds[round].segments) {
      EXPECT_EQ(s.key_bits, 2u);
      EXPECT_DOUBLE_EQ(s.sbox_bits, 2.0);
      EXPECT_DOUBLE_EQ(s.sbox_capacity, 2.0);
      EXPECT_EQ(s.sbox_classes, 4u);
      EXPECT_DOUBLE_EQ(s.sbox_expected_candidates, 1.0);
    }
    EXPECT_DOUBLE_EQ(r.rounds[round].sbox_bits(), 32.0);
  }
  EXPECT_DOUBLE_EQ(r.measured_sbox_bits(), 128.0);
  EXPECT_DOUBLE_EQ(r.measured_perm_bits(), 128.0);
  EXPECT_TRUE(r.ok());
}

TEST(Quantify, TaintBoundUpperBoundsMeasuredBitsForEveryTarget) {
  // Soundness anchor: the taint pass's recoverable_bits() counts worst-
  // case distinct lines, so the exact MI can never exceed it.
  LeakcheckConfig static_only;
  static_only.run_dynamic = false;
  for (const AnalysisTarget& target : builtin_targets()) {
    QuantifyConfig cfg;
    cfg.run_sampled = false;
    const QuantifyReport r = quantify(target, cfg);
    EXPECT_TRUE(r.within_taint_bound()) << target.name;
    const LeakReport leak = analyze(target, static_only);
    EXPECT_DOUBLE_EQ(r.taint_sbox_bound, leak.static_pass.recoverable_bits())
        << target.name;
    EXPECT_LE(r.measured_sbox_bits(),
              leak.static_pass.recoverable_bits() + 1e-9)
        << target.name;
  }
}

TEST(Quantify, SboxValueHookTightensThePermBoundStrictly) {
  // Taint alone says "all 4 perm-index bits are key-dependent" (4 bits /
  // segment / round = 256 total); the S-Box bijection proves only 4 of
  // the 16 rows are reachable, halving the measured figure.
  const QuantifyReport r = quantify_static("gift64-table");
  EXPECT_DOUBLE_EQ(r.measured_perm_bits(), 128.0);
  EXPECT_DOUBLE_EQ(r.taint_perm_bound, 256.0);
}

TEST(Quantify, PackedVariantsLeakStrictlyLessThanBaselineThroughSbox) {
  const double baseline =
      quantify_static("gift64-table").measured_sbox_bits();
  for (const char* packed :
       {"gift64-packed-sbox", "gift64-packed-sbox-lut-perm"}) {
    const QuantifyReport r = quantify_static(packed);
    EXPECT_LT(r.measured_sbox_bits(), baseline) << packed;
    EXPECT_DOUBLE_EQ(r.measured_sbox_bits(), 0.0) << packed;
  }
}

TEST(Quantify, LutPermBackdoorIsQuantifiedNotJustFlagged) {
  // The packed S-Box with a LUT PermBits keeps the full per-round leak
  // through the perm table — same 2 bits/segment/round as the baseline.
  const QuantifyReport r = quantify_static("gift64-packed-sbox-lut-perm");
  EXPECT_DOUBLE_EQ(r.measured_sbox_bits(), 0.0);
  EXPECT_DOUBLE_EQ(r.measured_perm_bits(), 128.0);
  // The S-Box channel leaves all 4 candidates per segment standing, so
  // an S-Box-probing recovery engine faces 2 bits/segment of residual.
  EXPECT_DOUBLE_EQ(r.expected_residual_bits(), 32.0);
}

TEST(Quantify, HardenedScheduleLeavesTheChannelUntouched) {
  // The hardened UpdateKey defeats key *reconstruction*, not observation:
  // measured bits equal the baseline's, and the report says so.
  const QuantifyReport baseline = quantify_static("gift64-table");
  const QuantifyReport hardened =
      quantify_static("gift64-hardened-schedule");
  EXPECT_DOUBLE_EQ(hardened.measured_sbox_bits(),
                   baseline.measured_sbox_bits());
  EXPECT_DOUBLE_EQ(hardened.measured_perm_bits(),
                   baseline.measured_perm_bits());
}

TEST(Quantify, BudgetGateTripsOnInjectedDrift) {
  QuantifyReport r = quantify_static("gift64-table");
  ASSERT_TRUE(r.ok());
  r.budget_sbox_bits = 96.0;  // declare the wrong figure
  EXPECT_FALSE(r.within_budget());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.within_taint_bound());  // drift != unsoundness
}

TEST(Quantify, LineTableMatchesTheReachableRowsAtTheReferenceBase) {
  // Paper default: 16 rows in 16 distinct one-byte lines.  At the
  // all-zero base each segment's 2 fresh key bits reach rows 0..3 only
  // (index = 0 XOR k, k in {0..3}), each with probability 1/4, so across
  // the 16 independent segments p(line j touched) = 1 - (3/4)^16 for
  // j < 4 and exactly 0 for the 12 unreachable lines.
  const QuantifyReport r = quantify_static("gift64-table");
  EXPECT_EQ(r.line_round, 1u);
  ASSERT_EQ(r.sbox_lines.size(), 16u);
  const double p_reachable = 1.0 - std::pow(0.75, 16.0);
  unsigned reachable = 0;
  for (const LineQuantity& l : r.sbox_lines) {
    if (l.touch_probability > 0.0) {
      ++reachable;
      EXPECT_NEAR(l.touch_probability, p_reachable, 1e-12);
      EXPECT_GT(l.bits, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(l.bits, 0.0);
    }
  }
  EXPECT_EQ(reachable, 4u);
}

TEST(Quantify, SampledPassIsDeterministicAndBudgetBounded) {
  const std::vector<AnalysisTarget> targets = builtin_targets();
  const AnalysisTarget* target = find_target(targets, "gift64-table");
  ASSERT_NE(target, nullptr);
  QuantifyConfig cfg;
  cfg.sample_budget = 32;
  const QuantifyReport a = quantify(*target, cfg);
  const QuantifyReport b = quantify(*target, cfg);
  EXPECT_EQ(a.to_json(), b.to_json());  // fixed seed: byte-identical
  EXPECT_EQ(a.sampled.samples, 32u);
  EXPECT_LE(a.sampled.classes, 32u);
  // Plug-in entropy of n samples can never exceed log2 n.
  EXPECT_LE(a.sampled.bits, std::log2(32.0) + 1e-9);
}

TEST(Quantify, SampledPassSeesNothingOnLeakFreeTargets) {
  for (const char* name : {"gift64-bitsliced", "gift64-packed-sbox"}) {
    const std::vector<AnalysisTarget> targets = builtin_targets();
    const AnalysisTarget* target = find_target(targets, name);
    ASSERT_NE(target, nullptr);
    QuantifyConfig cfg;
    cfg.sample_budget = 16;
    const QuantifyReport r = quantify(*target, cfg);
    EXPECT_EQ(r.sampled.classes, 1u) << name;
    EXPECT_DOUBLE_EQ(r.sampled.bits, 0.0) << name;
  }
}

TEST(Quantify, QuantifyAllCoversEveryBuiltinTargetWithinBudget) {
  QuantifyConfig cfg;
  cfg.run_sampled = false;
  const std::vector<QuantifyReport> reports = quantify_all(cfg);
  EXPECT_EQ(reports.size(), builtin_targets().size());
  for (const QuantifyReport& r : reports) {
    EXPECT_TRUE(r.ok()) << r.target;
  }
}

}  // namespace
}  // namespace grinch::analysis
