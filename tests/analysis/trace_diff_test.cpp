#include "analysis/trace_diff.h"

#include <gtest/gtest.h>

#include "analysis/leakcheck.h"
#include "analysis/registry.h"
#include "common/rng.h"

namespace grinch::analysis {
namespace {

const AnalysisTarget& target_named(const std::vector<AnalysisTarget>& targets,
                                   const std::string& name) {
  const AnalysisTarget* t = find_target(targets, name);
  EXPECT_NE(t, nullptr) << name;
  return *t;
}

TEST(TraceDiff, AgreesWithTaintVerdictOnEveryTarget) {
  // The dynamic oracle validates the static verdict on all registered
  // implementations — the issue's core acceptance property.
  LeakcheckConfig cfg;
  cfg.diff.trials = 8;
  for (const AnalysisTarget& target : builtin_targets()) {
    const LeakReport report = analyze(target, cfg);
    EXPECT_TRUE(report.consistent())
        << target.name << ": static " << report.static_pass.leaky
        << " vs dynamic diverged " << report.dynamic_pass.diverged;
    EXPECT_TRUE(report.as_expected()) << target.name;
  }
}

TEST(TraceDiff, Gift64DivergesButNeverInRoundOne) {
  // Round 1 (code round 0) indices are plaintext-only, so key pairs can
  // first part ways in paper round 2.
  TraceDiffConfig cfg;
  cfg.trials = 12;
  const std::vector<AnalysisTarget> targets = builtin_targets();
  const TraceDiffResult r =
      key_pair_trace_diff(target_named(targets, "gift64-table"), cfg);
  EXPECT_GT(r.diverged, 0u);
  EXPECT_GE(r.first_round, 1);
}

TEST(TraceDiff, PresentDivergesAlreadyInRoundOne) {
  // PRESENT whitens with the round key before its S-Box layer.
  TraceDiffConfig cfg;
  cfg.trials = 12;
  const std::vector<AnalysisTarget> targets = builtin_targets();
  const TraceDiffResult r =
      key_pair_trace_diff(target_named(targets, "present80-table"), cfg);
  EXPECT_GT(r.diverged, 0u);
  EXPECT_EQ(r.first_round, 0);
}

TEST(TraceDiff, BitslicedTraceIsEmpty) {
  const std::vector<AnalysisTarget> targets = builtin_targets();
  const AnalysisTarget& t = target_named(targets, "gift64-bitsliced");
  EXPECT_TRUE(projected_line_trace(t, 0x0123456789ABCDEF, 0,
                                   Key128{0xFEDC, 0xBA98}, 6)
                  .empty());
}

TEST(TraceDiff, PackedSBoxTouchesExactlyOneLine) {
  // The countermeasure's whole point: the trace is non-empty but carries
  // zero information — every access lands on the same 8-byte line.
  const std::vector<AnalysisTarget> targets = builtin_targets();
  const AnalysisTarget& t = target_named(targets, "gift64-packed-sbox");
  const std::vector<ProjectedAccess> trace = projected_line_trace(
      t, 0x0123456789ABCDEF, 0, Key128{0xFEDC, 0xBA98}, 6);
  ASSERT_FALSE(trace.empty());
  for (const ProjectedAccess& a : trace) {
    EXPECT_EQ(a.line, trace.front().line);
    EXPECT_EQ(a.set, trace.front().set);
  }
}

TEST(TraceDiff, SameKeyProducesIdenticalTraces) {
  const std::vector<AnalysisTarget> targets = builtin_targets();
  const AnalysisTarget& t = target_named(targets, "gift64-table");
  Xoshiro256 rng{42};
  const std::uint64_t pt = rng.block64();
  const Key128 key = rng.key128();
  const std::vector<ProjectedAccess> t1 =
      projected_line_trace(t, pt, 0, key, 8);
  const std::vector<ProjectedAccess> t2 =
      projected_line_trace(t, pt, 0, key, 8);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].line, t2[i].line);
  }
}

TEST(TraceDiff, HardenedScheduleStillDiverges) {
  // Countermeasure 2 changes key *derivation*, not the access pattern:
  // the cache still betrays the (whitened) round keys.
  TraceDiffConfig cfg;
  cfg.trials = 8;
  const std::vector<AnalysisTarget> targets = builtin_targets();
  const TraceDiffResult r = key_pair_trace_diff(
      target_named(targets, "gift64-hardened-schedule"), cfg);
  EXPECT_GT(r.diverged, 0u);
}

TEST(TraceDiff, ResultCountsTrials) {
  TraceDiffConfig cfg;
  cfg.trials = 5;
  const std::vector<AnalysisTarget> targets = builtin_targets();
  const TraceDiffResult r =
      key_pair_trace_diff(target_named(targets, "gift64-bitsliced"), cfg);
  EXPECT_EQ(r.trials, 5u);
  EXPECT_EQ(r.diverged, 0u);
  EXPECT_TRUE(r.equivalent());
}

}  // namespace
}  // namespace grinch::analysis
