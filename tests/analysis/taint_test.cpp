#include "analysis/taint.h"

#include <gtest/gtest.h>

#include <vector>

#include "analysis/leakcheck.h"
#include "analysis/registry.h"
#include "cachesim/cache.h"
#include "countermeasures/packed_sbox.h"

namespace grinch::analysis {
namespace {

/// S-Box accesses of `round` under the cross-round attack model.
std::vector<TaintedAccess> sbox_accesses(const CipherModel& model,
                                         unsigned round) {
  std::vector<TaintedAccess> out;
  for (const TaintedAccess& a : attacked_round_accesses(model, round)) {
    if (a.kind == gift::TableAccess::Kind::kSBox) out.push_back(a);
  }
  return out;
}

TEST(Taint, Gift64RoundOneIndicesArePlaintextOnly) {
  // Paper round 1 (code round 0) is key-independent: the attacker can
  // compute every S-Box index from the plaintext.
  const cachesim::Cache cache{cachesim::CacheConfig::paper_default()};
  for (const TaintedAccess& a : sbox_accesses(gift64_table_model(), 0)) {
    EXPECT_FALSE(a.key_tainted());
    EXPECT_EQ(leaked_key_bits(a, gift::TableLayout{}, cache), 0.0);
  }
}

TEST(Taint, Gift64RoundTwoFlagsExactlyTheTwoKeyFacingIndexBits) {
  // Paper round 2 (code round 1): round-key bits V_s / U_s land on state
  // bits 4s / 4s+1, i.e. index bits 0 and 1 of every segment.
  const std::vector<TaintedAccess> accesses =
      sbox_accesses(gift64_table_model(), 1);
  ASSERT_EQ(accesses.size(), 16u);
  std::vector<bool> seen(16, false);
  for (const TaintedAccess& a : accesses) {
    EXPECT_EQ(a.round, 1u);
    seen[a.segment] = true;
    EXPECT_TRUE(carries_key(a.index_taint[0]));
    EXPECT_TRUE(carries_key(a.index_taint[1]));
    EXPECT_FALSE(carries_key(a.index_taint[2]));
    EXPECT_FALSE(carries_key(a.index_taint[3]));
    // The non-key bits are still plaintext-driven (chosen by the attacker).
    EXPECT_TRUE((a.index_taint[2] & kPlaintext) != 0);
  }
  for (unsigned s = 0; s < 16; ++s) EXPECT_TRUE(seen[s]) << "segment " << s;
}

TEST(Taint, Gift64LeaksTwoBitsPerSegmentPerAttackedRound) {
  // The paper's headline: each attacked round exposes 2 fresh key bits per
  // segment at the default one-entry-per-line geometry (rounds 2..5).
  const CipherModel model = gift64_table_model();
  const cachesim::Cache cache{cachesim::CacheConfig::paper_default()};
  for (unsigned round = 1; round <= 4; ++round) {
    for (const TaintedAccess& a : sbox_accesses(model, round)) {
      EXPECT_DOUBLE_EQ(leaked_key_bits(a, gift::TableLayout{}, cache), 2.0)
          << "round " << round << " segment " << a.segment;
    }
  }
}

TEST(Taint, LineSizeSweepMatchesTableOne) {
  // Table I: widening the cache line hides low index bits.  The two
  // key-facing bits are index bits 0/1, so 1-byte lines expose both,
  // 2-byte lines one, and 4-/8-byte lines none.
  const TaintedAccess access = sbox_accesses(gift64_table_model(), 1).front();
  const gift::TableLayout layout{};
  const double expected[] = {2.0, 1.0, 0.0, 0.0};
  unsigned i = 0;
  for (const unsigned words : {1u, 2u, 4u, 8u}) {
    const cachesim::Cache cache{cachesim::CacheConfig::with_line_words(words)};
    EXPECT_DOUBLE_EQ(leaked_key_bits(access, layout, cache), expected[i++])
        << words << "-byte lines";
  }
}

TEST(Taint, Gift128RoundTwoFlagsMiddleIndexBits) {
  // GIFT-128 round keys land on bits 4i+1 / 4i+2: index bits 1 and 2.
  const std::vector<TaintedAccess> accesses =
      sbox_accesses(gift128_table_model(), 1);
  ASSERT_EQ(accesses.size(), 32u);
  const cachesim::Cache cache{cachesim::CacheConfig::paper_default()};
  for (const TaintedAccess& a : accesses) {
    EXPECT_FALSE(carries_key(a.index_taint[0]));
    EXPECT_TRUE(carries_key(a.index_taint[1]));
    EXPECT_TRUE(carries_key(a.index_taint[2]));
    EXPECT_FALSE(carries_key(a.index_taint[3]));
    EXPECT_DOUBLE_EQ(leaked_key_bits(a, gift::TableLayout{}, cache), 2.0);
  }
}

TEST(Taint, PresentLeaksFromRoundOneOnAllFourIndexBits) {
  // PRESENT XORs the full round key before sBoxLayer, so even paper
  // round 1 is key-dependent on every index bit.
  const cachesim::Cache cache{cachesim::CacheConfig::paper_default()};
  const std::vector<TaintedAccess> accesses =
      sbox_accesses(present80_table_model(), 0);
  ASSERT_EQ(accesses.size(), 16u);
  for (const TaintedAccess& a : accesses) {
    for (unsigned b = 0; b < 4; ++b) {
      EXPECT_TRUE(carries_key(a.index_taint[b]));
    }
    EXPECT_DOUBLE_EQ(leaked_key_bits(a, gift::TableLayout{}, cache), 4.0);
  }
}

TEST(Taint, BitslicedModelIssuesNoAccesses) {
  EXPECT_TRUE(propagate_taint(gift64_bitsliced_model(), 8,
                              KeyTaintPolicy::cumulative())
                  .empty());
}

TEST(Taint, PackedSBoxProjectsToZeroLeakedBits) {
  // The reshaped table is KEY-tainted like the baseline, but every index
  // maps to the same 8-byte line, so nothing is observable.
  const gift::TableLayout layout = cm::packed_sbox_layout();
  const cachesim::Cache cache{cm::packed_sbox_cache()};
  for (const TaintedAccess& a :
       propagate_taint(gift64_packed_model(), 6,
                       KeyTaintPolicy::cumulative())) {
    EXPECT_TRUE(a.round == 0 || a.key_tainted());
    EXPECT_EQ(leaked_key_bits(a, layout, cache), 0.0);
  }
}

TEST(Taint, CumulativeModeSaturatesAfterRoundTwo) {
  // Once key material has entered, the join makes every later index bit
  // KEY-tainted — the sound over-approximation the cross-round model
  // refines.
  for (const TaintedAccess& a :
       propagate_taint(gift64_table_model(), 4,
                       KeyTaintPolicy::cumulative())) {
    if (a.kind != gift::TableAccess::Kind::kSBox) continue;
    if (a.round == 0) {
      EXPECT_FALSE(a.key_tainted());
    } else if (a.round >= 2) {
      for (unsigned b = 0; b < 4; ++b) {
        EXPECT_TRUE(carries_key(a.index_taint[b]));
      }
    }
  }
}

TEST(Taint, StaticVerdictsMatchExpectations) {
  LeakcheckConfig cfg;
  cfg.run_dynamic = false;
  for (const AnalysisTarget& target : builtin_targets()) {
    const LeakReport report = analyze(target, cfg);
    EXPECT_EQ(report.leaky(), target.expect_leaky) << target.name;
  }
}

TEST(Taint, Gift64RecoverableBitsCoverTheFullKey) {
  // Rounds 2..5 x 16 segments x 2 bits = 128 recoverable key bits.
  LeakcheckConfig cfg;
  cfg.run_dynamic = false;
  const std::vector<AnalysisTarget> targets = builtin_targets();
  const AnalysisTarget* gift64 = find_target(targets, "gift64-table");
  ASSERT_NE(gift64, nullptr);
  const LeakReport report = analyze(*gift64, cfg);
  EXPECT_DOUBLE_EQ(report.static_pass.recoverable_bits(), 128.0);
  ASSERT_EQ(report.static_pass.rounds.size(), 5u);
  EXPECT_DOUBLE_EQ(report.static_pass.rounds[0].sbox_bits(), 0.0);
  for (unsigned r = 1; r <= 4; ++r) {
    EXPECT_DOUBLE_EQ(report.static_pass.rounds[r].sbox_bits(), 32.0);
  }
}

TEST(Taint, PackedSBoxWithLutPermStillLeaks) {
  // leakcheck surfaces what §IV-C leaves implicit: packing only the S-Box
  // is not enough while PermBits stays a table.
  LeakcheckConfig cfg;
  cfg.run_dynamic = false;
  const std::vector<AnalysisTarget> targets = builtin_targets();
  const AnalysisTarget* t = find_target(targets, "gift64-packed-sbox-lut-perm");
  ASSERT_NE(t, nullptr);
  const LeakReport report = analyze(*t, cfg);
  EXPECT_TRUE(report.leaky());
  // ...and the leak is exclusively through the PermBits table.
  for (const RoundLeak& r : report.static_pass.rounds) {
    EXPECT_DOUBLE_EQ(r.sbox_bits(), 0.0);
    if (r.round >= 1) EXPECT_GT(r.perm_bits, 0.0);
  }
}

TEST(Taint, ReportSerialisesToTextAndJson) {
  LeakcheckConfig cfg;
  cfg.run_dynamic = false;
  const std::vector<AnalysisTarget> targets = builtin_targets();
  const LeakReport report = analyze(*find_target(targets, "gift64-table"), cfg);
  const std::string text = report.to_text(true);
  EXPECT_NE(text.find("LEAKY"), std::string::npos);
  EXPECT_NE(text.find("segment 0"), std::string::npos);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"target\":\"gift64-table\""), std::string::npos);
  EXPECT_NE(json.find("\"recoverable_bits\":128"), std::string::npos);
}

}  // namespace
}  // namespace grinch::analysis
