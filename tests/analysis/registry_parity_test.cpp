// Parity between the two registries that must stay in lock step: the
// attack pipeline's registered targets (target/registry.h) and leakcheck's
// analysis targets (analysis/registry.h).  Porting a cipher to one without
// the other would leave it either unattackable or unaudited — both are
// regressions this suite catches by iterating each list against the other.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "analysis/registry.h"
#include "target/registry.h"

namespace grinch {
namespace {

/// `<Traits::kName>-table` for every registered pipeline cipher.
std::set<std::string> pipeline_table_names() {
  std::set<std::string> names;
  target::for_each_registered_target([&](auto recovery) {
    names.insert(std::string{decltype(recovery)::kName} + "-table");
  });
  return names;
}

TEST(RegistryParity, EveryPipelineCipherHasAnAnalysisTarget) {
  const std::vector<analysis::AnalysisTarget> targets =
      analysis::builtin_targets();
  for (const std::string& name : pipeline_table_names()) {
    EXPECT_NE(analysis::find_target(targets, name), nullptr)
        << name << " is attackable but leakcheck does not audit it";
  }
}

TEST(RegistryParity, EveryTableAnalysisTargetIsARegisteredCipher) {
  const std::set<std::string> pipeline = pipeline_table_names();
  for (const analysis::AnalysisTarget& t : analysis::builtin_targets()) {
    constexpr const char* kSuffix = "-table";
    constexpr std::size_t kSuffixLen = 6;
    const bool is_table_cipher =
        t.name.size() > kSuffixLen &&
        t.name.compare(t.name.size() - kSuffixLen, kSuffixLen, kSuffix) == 0;
    if (!is_table_cipher) continue;
    EXPECT_TRUE(pipeline.count(t.name) > 0)
        << t.name << " is audited but the attack pipeline cannot target it";
  }
}

TEST(RegistryParity, LeakExpectationsAndBudgetsAgree) {
  // A target expected leaky must declare a nonzero budget and vice versa
  // — otherwise the qualitative verdict and the quantitative gate would
  // accept contradictory states of the world.
  for (const analysis::AnalysisTarget& t : analysis::builtin_targets()) {
    const double budget =
        t.quantify.budget_sbox_bits + t.quantify.budget_perm_bits;
    EXPECT_EQ(t.expect_leaky, budget > 0.0) << t.name;
  }
}

TEST(RegistryParity, PermQuantificationHookPresentWheneverPermIsObserved) {
  // The perm channel is enumerated through the concrete S-Box; a target
  // that observes perm lookups without the hook would silently quantify
  // that channel as zero.
  for (const analysis::AnalysisTarget& t : analysis::builtin_targets()) {
    if (t.observe_perm && t.model.perm_lookups) {
      EXPECT_TRUE(static_cast<bool>(t.quantify.sbox_value)) << t.name;
    }
  }
}

}  // namespace
}  // namespace grinch
