// Golden-schema test for the machine-readable leakcheck reports.
//
// CI and tools/check_bench.py consume LeakReport::to_json and
// QuantifyReport::to_json; both emitters build strings by hand, so a
// refactor can silently break the JSON grammar or drop a key a consumer
// scripts against.  This suite parses the real output with a minimal
// strict JSON reader (the repo intentionally has no JSON parser in src/ —
// common/json.h only emits) and pins the key sets as a schema.
#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "analysis/leakcheck.h"
#include "analysis/quantify.h"
#include "analysis/registry.h"

namespace grinch::analysis {
namespace {

/// Minimal strict JSON syntax checker that records every object key as a
/// dotted path ("budget.sbox_bits"; array elements do not extend the
/// path, so element schemas merge).  Fails the test on any grammar error.
class SchemaReader {
 public:
  explicit SchemaReader(const std::string& text) : text_(text) {}

  /// Parses the whole document; returns false on trailing garbage or any
  /// syntax error (position reported via failure()).
  bool parse() {
    ok_ = value("");
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return ok_;
  }

  [[nodiscard]] const std::set<std::string>& keys() const { return keys_; }
  [[nodiscard]] const std::string& failure() const { return failure_; }

 private:
  void fail(const std::string& what) {
    if (ok_) failure_ = what + " at offset " + std::to_string(pos_);
    ok_ = false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool string_literal(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      out.push_back(text_[pos_++]);
    }
    return consume('"');
  }

  bool number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool keyword(const char* word) {
    skip_ws();
    const std::string w{word};
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  bool value(const std::string& path) {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of document");
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return object(path);
    if (c == '[') return array(path);
    if (c == '"') {
      std::string s;
      if (!string_literal(s)) {
        fail("bad string");
        return false;
      }
      return true;
    }
    if (keyword("true") || keyword("false") || keyword("null")) return true;
    if (number()) return true;
    fail("unexpected token");
    return false;
  }

  bool object(const std::string& path) {  // NOLINT(misc-no-recursion)
    consume('{');
    if (consume('}')) return true;
    do {
      std::string key;
      if (!string_literal(key)) {
        fail("expected object key");
        return false;
      }
      const std::string child = path.empty() ? key : path + "." + key;
      keys_.insert(child);
      if (!consume(':')) {
        fail("expected ':'");
        return false;
      }
      if (!value(child)) return false;
    } while (consume(','));
    if (!consume('}')) {
      fail("expected '}'");
      return false;
    }
    return true;
  }

  bool array(const std::string& path) {  // NOLINT(misc-no-recursion)
    consume('[');
    if (consume(']')) return true;
    do {
      if (!value(path)) return false;
    } while (consume(','));
    if (!consume(']')) {
      fail("expected ']'");
      return false;
    }
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string failure_;
  std::set<std::string> keys_;
};

/// Asserts `json` parses and contains every path in `required`.
void expect_schema(const std::string& json,
                   const std::vector<std::string>& required,
                   const std::string& what) {
  SchemaReader reader{json};
  ASSERT_TRUE(reader.parse()) << what << ": " << reader.failure() << "\n"
                              << json;
  for (const std::string& path : required) {
    EXPECT_TRUE(reader.keys().count(path) > 0)
        << what << " lost required key '" << path << "'";
  }
}

const AnalysisTarget& gift64_table() {
  static const std::vector<AnalysisTarget> targets = builtin_targets();
  const AnalysisTarget* t = find_target(targets, "gift64-table");
  EXPECT_NE(t, nullptr);
  return *t;
}

TEST(ReportSchema, LeakReportJsonKeepsItsContract) {
  LeakcheckConfig cfg;
  cfg.diff.trials = 2;
  const LeakReport report = analyze(gift64_table(), cfg);
  expect_schema(
      report.to_json(),
      {"target", "description", "expected_leaky", "leaky", "consistent",
       "static", "static.rounds_analyzed", "static.recoverable_bits",
       "static.rounds", "static.rounds.round", "static.rounds.sbox_bits",
       "static.rounds.perm_bits", "static.rounds.segments",
       "static.rounds.segments.segment", "static.rounds.segments.bits",
       "static.rounds.segments.index_taint", "dynamic", "dynamic.trials",
       "dynamic.diverged"},
      "LeakReport::to_json");
}

TEST(ReportSchema, QuantifyReportJsonKeepsItsContract) {
  QuantifyConfig cfg;
  cfg.sample_budget = 8;
  const QuantifyReport report = quantify(gift64_table(), cfg);
  expect_schema(
      report.to_json(),
      {"target", "description", "rounds_analyzed", "measured_sbox_bits",
       "measured_perm_bits", "measured_total_bits",
       "capacity_bits_per_observation", "expected_residual_bits",
       "taint_sbox_bound", "taint_perm_bound", "within_taint_bound",
       "budget", "budget.sbox_bits", "budget.perm_bits", "budget.tolerance",
       "budget.ok", "rounds", "rounds.round", "rounds.sbox_bits",
       "rounds.perm_bits", "rounds.sbox_capacity", "rounds.segments",
       "rounds.segments.segment", "rounds.segments.key_bits",
       "rounds.segments.sbox_bits", "rounds.segments.sbox_classes",
       "rounds.segments.expected_candidates", "sbox_lines",
       "sbox_lines.line_base", "sbox_lines.touch_probability",
       "sbox_lines.bits", "sampled", "sampled.samples", "sampled.classes",
       "sampled.bits", "ok"},
      "QuantifyReport::to_json");
}

TEST(ReportSchema, ReportArraysAreValidJson) {
  LeakcheckConfig leak_cfg;
  leak_cfg.run_dynamic = false;
  QuantifyConfig quant_cfg;
  quant_cfg.run_sampled = false;
  const std::string leak_array = reports_to_json(analyze_all(leak_cfg));
  const std::string quant_array =
      quantify_reports_to_json(quantify_all(quant_cfg));
  SchemaReader leak_reader{leak_array};
  EXPECT_TRUE(leak_reader.parse()) << leak_reader.failure();
  SchemaReader quant_reader{quant_array};
  EXPECT_TRUE(quant_reader.parse()) << quant_reader.failure();
}

}  // namespace
}  // namespace grinch::analysis
