// The campaign resume contract, pinned end to end: a campaign stopped at
// ANY shard boundary and resumed produces a results file byte-identical
// to the uninterrupted run — across thread counts, wide widths and every
// registered cipher — and a resume against mismatched state is refused.
#include "campaign/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <regex>
#include <string>
#include <vector>

#include "campaign/checkpoint.h"
#include "common/json.h"

namespace grinch::campaign {
namespace {

namespace fs = std::filesystem;

class CampaignEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("grinch_campaign_" +
            std::string{::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()});
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// A quick clean-channel campaign (every gift64 trial verifies within
  /// ~300 encryptions, so the whole run is fast).
  static CampaignSpec quick_spec() {
    CampaignSpec spec;
    spec.name = "t";
    spec.cipher = "gift64";
    spec.trials = 10;
    spec.wide_width = 3;
    spec.budget = 20000;
    return spec;
  }

  [[nodiscard]] Options options(const std::string& tag,
                                unsigned threads = 2) const {
    Options opts;
    opts.results_path = path(tag + ".jsonl");
    opts.checkpoint_path = path(tag + ".ckpt");
    opts.threads = threads;
    opts.checkpoint_every_shards = 1;
    return opts;
  }

  static std::string slurp(const std::string& p) {
    std::ifstream in{p, std::ios::binary};
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  /// Uninterrupted baseline for `spec`, written under `tag`.
  std::string baseline(const CampaignSpec& spec, const std::string& tag) {
    const Outcome out = run_campaign(spec, options(tag));
    EXPECT_TRUE(out.ok()) << out.error;
    EXPECT_TRUE(out.completed);
    return slurp(path(tag + ".jsonl"));
  }

  fs::path dir_;
};

TEST_F(CampaignEngineTest, CompletesWithOneSelfDescribingRecordPerTrial) {
  const CampaignSpec spec = quick_spec();
  const Outcome out = run_campaign(spec, options("a"));
  ASSERT_TRUE(out.ok()) << out.error;
  EXPECT_TRUE(out.completed);
  EXPECT_FALSE(out.interrupted);
  EXPECT_EQ(out.shards_done, out.shard_total);
  EXPECT_EQ(out.trials_done, spec.trials);

  const std::string bytes = slurp(path("a.jsonl"));
  std::uint64_t lines = 0;
  std::uint64_t verified = 0;
  std::uint64_t encryptions = 0;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t eol = bytes.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "results must end with a newline";
    std::string err;
    const auto rec = json::parse(bytes.substr(pos, eol - pos), &err);
    ASSERT_TRUE(rec.has_value()) << err;
    // The hand-rolled record writer must emit exactly the strict
    // compact form — parse + re-dump is a byte round-trip.
    EXPECT_EQ(rec->dump_compact(), bytes.substr(pos, eol - pos));
    EXPECT_EQ(rec->get("trial")->as_u64(), lines);
    EXPECT_EQ(rec->get("cipher")->as_string(), "gift64");
    EXPECT_EQ(rec->get("fault_profile")->as_string(), "clean");
    EXPECT_EQ(rec->get("wide_width")->as_u64(), spec.wide_width);
    ASSERT_NE(rec->get("victim_key"), nullptr);
    ASSERT_NE(rec->get("seed"), nullptr);
    ASSERT_NE(rec->get("fault_seed"), nullptr);
    if (rec->get("verified")->as_bool()) ++verified;
    encryptions += rec->get("total_encryptions")->as_u64();
    ++lines;
    pos = eol + 1;
  }
  EXPECT_EQ(lines, spec.trials);
  // The outcome's aggregate counters are the sum of the records.
  EXPECT_EQ(verified, out.counters.verified);
  EXPECT_EQ(encryptions, out.counters.total_encryptions);
}

TEST_F(CampaignEngineTest, ByteIdenticalAcrossThreadCounts) {
  const CampaignSpec spec = quick_spec();
  EXPECT_TRUE(run_campaign(spec, options("t1", 1)).completed);
  EXPECT_TRUE(run_campaign(spec, options("t4", 4)).completed);
  EXPECT_EQ(slurp(path("t1.jsonl")), slurp(path("t4.jsonl")));
}

TEST_F(CampaignEngineTest, WidthChangesOnlyTheWideWidthField) {
  // Lane results are width-independent (the wide conformance contract),
  // so campaigns differing only in wide_width agree on every byte except
  // the self-describing wide_width field itself.
  std::vector<std::string> normalized;
  for (const unsigned width : {1u, 3u, 7u}) {
    CampaignSpec spec = quick_spec();
    spec.wide_width = width;
    const std::string tag = "w" + std::to_string(width);
    EXPECT_TRUE(run_campaign(spec, options(tag)).completed);
    normalized.push_back(std::regex_replace(
        slurp(path(tag + ".jsonl")),
        std::regex{"\"wide_width\":[0-9]+"}, "\"wide_width\":0"));
  }
  EXPECT_EQ(normalized[0], normalized[1]);
  EXPECT_EQ(normalized[0], normalized[2]);
}

TEST_F(CampaignEngineTest, KillAtEveryShardBoundaryResumesByteIdentical) {
  // The acceptance sweep: for every registered cipher, stop the campaign
  // after exactly k flushed shards for every k, then resume — the final
  // results file must equal the uninterrupted baseline byte for byte.
  // A faulted profile keeps the noisy machinery (per-trial fault seeds,
  // partial results) inside the contract too.
  std::vector<CampaignSpec> specs;
  for (const char* cipher : {"gift64", "gift128", "present80"}) {
    CampaignSpec spec = quick_spec();
    spec.cipher = cipher;
    spec.trials = 6;
    spec.wide_width = 2;
    specs.push_back(spec);
  }
  {
    CampaignSpec noisy = quick_spec();
    noisy.fault_profile = "moderate";
    noisy.trials = 6;
    noisy.wide_width = 2;
    noisy.budget = 3000;  // forces partial results into the stream
    specs.push_back(noisy);
  }
  for (const CampaignSpec& spec : specs) {
    const std::string tag = spec.cipher + "_" + spec.fault_profile;
    const std::string base = baseline(spec, tag + "_base");
    const std::size_t shard_total =
        (spec.trials + spec.wide_width - 1) / spec.wide_width;
    ASSERT_GE(shard_total, 2u);
    for (std::size_t k = 1; k < shard_total; ++k) {
      const std::string run_tag =
          tag + "_k" + std::to_string(k);
      Options opts = options(run_tag);
      opts.stop_after_flushed_shards = k;
      const Outcome stopped = run_campaign(spec, opts);
      ASSERT_TRUE(stopped.ok()) << stopped.error;
      EXPECT_TRUE(stopped.interrupted) << run_tag;
      EXPECT_EQ(stopped.shards_done, k) << run_tag;
      // The flushed prefix is a literal prefix of the baseline.
      const std::string prefix = slurp(opts.results_path);
      ASSERT_LT(prefix.size(), base.size()) << run_tag;
      EXPECT_EQ(prefix, base.substr(0, prefix.size())) << run_tag;

      Options resume = options(run_tag);
      resume.resume = true;
      const Outcome finished = run_campaign(spec, resume);
      ASSERT_TRUE(finished.ok()) << finished.error;
      EXPECT_TRUE(finished.completed) << run_tag;
      EXPECT_EQ(slurp(resume.results_path), base) << run_tag;
    }
  }
}

TEST_F(CampaignEngineTest, ResumedCountersMatchUninterruptedRun) {
  CampaignSpec spec = quick_spec();
  spec.fault_profile = "moderate";
  spec.budget = 3000;
  const Outcome base = run_campaign(spec, options("base"));
  ASSERT_TRUE(base.completed);

  Options opts = options("int");
  opts.stop_after_flushed_shards = 2;
  ASSERT_TRUE(run_campaign(spec, opts).interrupted);
  Options resume = options("int");
  resume.resume = true;
  const Outcome finished = run_campaign(spec, resume);
  ASSERT_TRUE(finished.completed);
  EXPECT_EQ(finished.counters.total_encryptions,
            base.counters.total_encryptions);
  EXPECT_EQ(finished.counters.verified, base.counters.verified);
  EXPECT_EQ(finished.counters.partial, base.counters.partial);
  EXPECT_EQ(finished.counters.noise_restarts, base.counters.noise_restarts);
}

TEST_F(CampaignEngineTest, StopFlagDrainsToResumableCheckpoint) {
  const CampaignSpec spec = quick_spec();
  std::atomic<bool> stop{true};  // raised before any shard starts
  Options opts = options("s");
  opts.stop = &stop;
  const Outcome out = run_campaign(spec, opts);
  ASSERT_TRUE(out.ok()) << out.error;
  EXPECT_TRUE(out.interrupted);
  EXPECT_EQ(out.shards_done, 0u);
  ASSERT_TRUE(fs::exists(opts.checkpoint_path));

  Options resume = options("s");
  resume.resume = true;
  const Outcome finished = run_campaign(spec, resume);
  ASSERT_TRUE(finished.completed);
  EXPECT_EQ(slurp(path("s.jsonl")), baseline(spec, "base"));
}

TEST_F(CampaignEngineTest, ResumeRejectsSpecMismatch) {
  const CampaignSpec spec = quick_spec();
  Options opts = options("m");
  opts.stop_after_flushed_shards = 1;
  ASSERT_TRUE(run_campaign(spec, opts).interrupted);

  CampaignSpec other = spec;
  other.seed ^= 1;
  Options resume = options("m");
  resume.resume = true;
  const Outcome out = run_campaign(other, resume);
  EXPECT_FALSE(out.ok());
  EXPECT_NE(out.error.find("different campaign"), std::string::npos);
}

TEST_F(CampaignEngineTest, ResumeRejectsTamperedResults) {
  const CampaignSpec spec = quick_spec();
  Options opts = options("tam");
  opts.stop_after_flushed_shards = 2;
  ASSERT_TRUE(run_campaign(spec, opts).interrupted);

  std::string bytes = slurp(opts.results_path);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x20;
  std::ofstream{opts.results_path, std::ios::binary | std::ios::trunc}
      << bytes;

  Options resume = options("tam");
  resume.resume = true;
  const Outcome out = run_campaign(spec, resume);
  EXPECT_FALSE(out.ok());
  EXPECT_NE(out.error.find("does not match"), std::string::npos);
}

TEST_F(CampaignEngineTest, ResumeRejectsTruncatedResults) {
  const CampaignSpec spec = quick_spec();
  Options opts = options("tr");
  opts.stop_after_flushed_shards = 2;
  ASSERT_TRUE(run_campaign(spec, opts).interrupted);
  const std::string bytes = slurp(opts.results_path);
  fs::resize_file(opts.results_path, bytes.size() / 2);

  Options resume = options("tr");
  resume.resume = true;
  const Outcome out = run_campaign(spec, resume);
  EXPECT_FALSE(out.ok());
  EXPECT_NE(out.error.find("shorter"), std::string::npos);
}

TEST_F(CampaignEngineTest, ResumeDropsBytesPastTheCheckpointedPrefix) {
  // A SIGKILL can land mid-append: the results file then carries bytes
  // past the last checkpoint.  Resume must discard them and still
  // converge on the baseline.
  const CampaignSpec spec = quick_spec();
  const std::string base = baseline(spec, "base");
  Options opts = options("g");
  opts.stop_after_flushed_shards = 1;
  ASSERT_TRUE(run_campaign(spec, opts).interrupted);
  {
    std::ofstream out{opts.results_path,
                      std::ios::binary | std::ios::app};
    out << "{\"torn\":tru";  // half-written record
  }
  Options resume = options("g");
  resume.resume = true;
  const Outcome finished = run_campaign(spec, resume);
  ASSERT_TRUE(finished.ok()) << finished.error;
  EXPECT_TRUE(finished.completed);
  EXPECT_EQ(slurp(resume.results_path), base);
}

TEST_F(CampaignEngineTest, ResumingFinishedCampaignIsANoOp) {
  const CampaignSpec spec = quick_spec();
  const std::string base = baseline(spec, "d");
  Options resume = options("d");
  resume.resume = true;
  const Outcome out = run_campaign(spec, resume);
  ASSERT_TRUE(out.ok()) << out.error;
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.trials_done, spec.trials);
  EXPECT_EQ(slurp(path("d.jsonl")), base);
}

TEST_F(CampaignEngineTest, BadSpecAndMissingPathsAreHardErrors) {
  CampaignSpec bad = quick_spec();
  bad.cipher = "rot13";
  EXPECT_FALSE(run_campaign(bad, options("x")).ok());

  Options no_results;
  EXPECT_FALSE(run_campaign(quick_spec(), no_results).ok());

  Options no_ckpt = options("y");
  no_ckpt.checkpoint_path.clear();
  no_ckpt.resume = true;
  EXPECT_FALSE(run_campaign(quick_spec(), no_ckpt).ok());
}

}  // namespace
}  // namespace grinch::campaign
