// CampaignSpec: validation, canonical serialization and the parse
// direction (unknown keys rejected, defaults preserved, fingerprints
// tracking identity).
#include "campaign/spec.h"

#include <gtest/gtest.h>

#include <string>

namespace grinch::campaign {
namespace {

TEST(CampaignSpec, DefaultsValidate) {
  const CampaignSpec spec;
  std::string err;
  EXPECT_TRUE(spec.validate(&err)) << err;
}

TEST(CampaignSpec, ValidateRejectsBadFields) {
  const auto rejects = [](auto&& mutate, const char* what) {
    CampaignSpec spec;
    mutate(spec);
    std::string err;
    EXPECT_FALSE(spec.validate(&err)) << what;
    EXPECT_FALSE(err.empty()) << what;
  };
  rejects([](CampaignSpec& s) { s.cipher = "des"; }, "cipher");
  rejects([](CampaignSpec& s) { s.fault_profile = "stormy"; }, "profile");
  rejects([](CampaignSpec& s) { s.trials = 0; }, "trials");
  rejects([](CampaignSpec& s) { s.budget = 0; }, "budget");
  rejects([](CampaignSpec& s) { s.wide_width = 0; }, "width 0");
  rejects([](CampaignSpec& s) { s.wide_width = 65; }, "width 65");
  rejects([](CampaignSpec& s) { s.line_words = 3; }, "line words");
  rejects([](CampaignSpec& s) { s.probing_round = 0; }, "round");
  rejects([](CampaignSpec& s) { s.vote_threshold = 17; }, "vote");
}

TEST(CampaignSpec, CanonicalRoundTripsThroughParse) {
  CampaignSpec spec;
  spec.name = "roundtrip";
  spec.cipher = "present80";
  spec.trials = 17;
  spec.seed = 0xDEADBEEFCAFEull;
  spec.fault_seed = 7;
  spec.wide_width = 5;
  spec.budget = 1234;
  spec.fault_profile = "moderate";
  spec.vote_threshold = 3;
  const std::string canonical = spec.canonical();
  std::string err;
  const auto parsed = CampaignSpec::parse(canonical, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->canonical(), canonical);
  EXPECT_EQ(parsed->fingerprint(), spec.fingerprint());
}

TEST(CampaignSpec, MissingKeysKeepDefaults) {
  std::string err;
  const auto parsed =
      CampaignSpec::parse(R"({"cipher":"gift128","trials":9})", &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->cipher, "gift128");
  EXPECT_EQ(parsed->trials, 9u);
  const CampaignSpec defaults;
  EXPECT_EQ(parsed->budget, defaults.budget);
  EXPECT_EQ(parsed->wide_width, defaults.wide_width);
  EXPECT_EQ(parsed->fault_profile, defaults.fault_profile);
}

TEST(CampaignSpec, UnknownKeysRejected) {
  std::string err;
  EXPECT_FALSE(CampaignSpec::parse(R"({"trils":9})", &err).has_value());
  EXPECT_NE(err.find("trils"), std::string::npos);
}

TEST(CampaignSpec, MalformedJsonRejectedWithDiagnostic) {
  std::string err;
  EXPECT_FALSE(CampaignSpec::parse("{", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(CampaignSpec::parse("[1,2]", &err).has_value());
}

TEST(CampaignSpec, FingerprintTracksIdentity) {
  CampaignSpec a;
  CampaignSpec b;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.trials = a.trials + 1;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = a;
  b.wide_width = a.wide_width + 1;  // width is part of the identity
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(CampaignSpec, FaultsCarrySpecSeedAndProfile) {
  CampaignSpec spec;
  spec.fault_profile = "moderate";
  spec.fault_seed = 99;
  const target::FaultProfile faults = spec.faults();
  EXPECT_TRUE(faults.any());
  EXPECT_EQ(faults.seed, 99u);
  EXPECT_DOUBLE_EQ(faults.false_absent_rate,
                   target::FaultProfile::moderate().false_absent_rate);
}

TEST(CampaignSpec, EffectiveVoteThresholdResolvesAuto) {
  CampaignSpec spec;
  EXPECT_EQ(spec.effective_vote_threshold(), 1u);  // clean channel
  spec.fault_profile = "moderate";
  EXPECT_EQ(spec.effective_vote_threshold(), 2u);  // noisy default
  spec.vote_threshold = 5;
  EXPECT_EQ(spec.effective_vote_threshold(), 5u);  // explicit wins
}

}  // namespace
}  // namespace grinch::campaign
