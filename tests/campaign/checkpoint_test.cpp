// Checkpoint durability: atomic save/load round-trips and rejection of
// every corruption mode a kill can leave behind (truncation, bit flips,
// foreign files, future versions).
#include "campaign/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace grinch::campaign {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("grinch_ckpt_" +
            std::string{::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()});
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const {
    return (dir_ / name).string();
  }

  static Checkpoint sample() {
    Checkpoint ck;
    ck.spec = R"({"name":"t","cipher":"gift64","trials":8})";
    ck.shard_total = 4;
    ck.flushed_shards = 2;
    ck.flushed_trials = 5;
    ck.result_bytes = 1234;
    ck.result_crc = 0xABCD1234u;
    ck.counters.total_encryptions = 999;
    ck.counters.noise_restarts = 3;
    ck.counters.dropped_observations = 7;
    ck.counters.verify_restarts = 1;
    ck.counters.verified = 4;
    ck.counters.partial = 1;
    return ck;
  }

  static std::string slurp(const std::string& p) {
    std::ifstream in{p, std::ios::binary};
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  static void spit(const std::string& p, const std::string& bytes) {
    std::ofstream out{p, std::ios::binary | std::ios::trunc};
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
};

TEST_F(CheckpointTest, SaveLoadRoundTrips) {
  const Checkpoint ck = sample();
  std::string err;
  ASSERT_TRUE(ck.save(path("a.ckpt"), &err)) << err;
  const auto loaded = Checkpoint::load(path("a.ckpt"), &err);
  ASSERT_TRUE(loaded.has_value()) << err;
  EXPECT_EQ(loaded->spec, ck.spec);
  EXPECT_EQ(loaded->shard_total, ck.shard_total);
  EXPECT_EQ(loaded->flushed_shards, ck.flushed_shards);
  EXPECT_EQ(loaded->flushed_trials, ck.flushed_trials);
  EXPECT_EQ(loaded->result_bytes, ck.result_bytes);
  EXPECT_EQ(loaded->result_crc, ck.result_crc);
  EXPECT_EQ(loaded->counters.total_encryptions,
            ck.counters.total_encryptions);
  EXPECT_EQ(loaded->counters.verified, ck.counters.verified);
  EXPECT_EQ(loaded->counters.partial, ck.counters.partial);
}

TEST_F(CheckpointTest, SaveReplacesAtomically) {
  Checkpoint ck = sample();
  ASSERT_TRUE(ck.save(path("a.ckpt")));
  ck.flushed_shards = 3;
  ASSERT_TRUE(ck.save(path("a.ckpt")));
  const auto loaded = Checkpoint::load(path("a.ckpt"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->flushed_shards, 3u);
  // No temp file left behind.
  EXPECT_FALSE(fs::exists(path("a.ckpt") + ".tmp"));
}

TEST_F(CheckpointTest, MissingFileRejected) {
  std::string err;
  EXPECT_FALSE(Checkpoint::load(path("absent.ckpt"), &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST_F(CheckpointTest, EveryTruncationRejected) {
  ASSERT_TRUE(sample().save(path("a.ckpt")));
  const std::string blob = slurp(path("a.ckpt"));
  ASSERT_GT(blob.size(), 24u);
  for (std::size_t len = 0; len < blob.size(); ++len) {
    spit(path("t.ckpt"), blob.substr(0, len));
    std::string err;
    EXPECT_FALSE(Checkpoint::load(path("t.ckpt"), &err).has_value())
        << "accepted a checkpoint truncated to " << len << " bytes";
  }
}

TEST_F(CheckpointTest, EveryByteCorruptionRejected) {
  ASSERT_TRUE(sample().save(path("a.ckpt")));
  const std::string blob = slurp(path("a.ckpt"));
  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::string bad = blob;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    spit(path("c.ckpt"), bad);
    const auto loaded = Checkpoint::load(path("c.ckpt"));
    // A flip either breaks magic/version/size (hard reject) or lands in
    // the payload, where the CRC catches it; it must never load as a
    // different-but-valid checkpoint.
    if (loaded.has_value()) {
      EXPECT_EQ(loaded->spec, sample().spec) << "byte " << i;
      EXPECT_EQ(loaded->flushed_shards, sample().flushed_shards)
          << "byte " << i;
      ADD_FAILURE() << "corrupted byte " << i << " loaded successfully";
    }
  }
}

TEST_F(CheckpointTest, ForeignFileRejected) {
  spit(path("f.ckpt"), "{\"not\":\"a checkpoint\"}");
  std::string err;
  EXPECT_FALSE(Checkpoint::load(path("f.ckpt"), &err).has_value());
  EXPECT_NE(err.find("magic"), std::string::npos);
}

TEST_F(CheckpointTest, FutureVersionRejected) {
  ASSERT_TRUE(sample().save(path("a.ckpt")));
  std::string blob = slurp(path("a.ckpt"));
  blob[4] = static_cast<char>(Checkpoint::kVersion + 1);  // version field
  spit(path("v.ckpt"), blob);
  std::string err;
  EXPECT_FALSE(Checkpoint::load(path("v.ckpt"), &err).has_value());
  EXPECT_NE(err.find("version"), std::string::npos);
}

}  // namespace
}  // namespace grinch::campaign
