#include "countermeasures/packed_sbox.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gift/gift64.h"
#include "soc/platform.h"

namespace grinch::cm {
namespace {

TEST(PackedSBox, LayoutHasEightRows) {
  const gift::TableLayout layout = packed_sbox_layout();
  EXPECT_EQ(layout.sbox_rows(), 8u);
  EXPECT_EQ(layout.sbox_row_addr(0), layout.sbox_row_addr(1));
  EXPECT_NE(layout.sbox_row_addr(1), layout.sbox_row_addr(2));
}

TEST(PackedSBox, WholeTableFitsOneEightByteLine) {
  EXPECT_EQ(sbox_lines_occupied(packed_sbox_layout(), 8), 1u);
}

TEST(PackedSBox, DefaultLayoutSpreadsOverSixteenLines) {
  EXPECT_EQ(sbox_lines_occupied(gift::TableLayout{}, 1), 16u);
}

TEST(PackedSBox, DefaultLayoutWithEightByteLinesStillLeaksTwoLines) {
  // Without reshaping, 16 one-byte rows under 8-byte lines span 2 lines —
  // reshaping is what collapses the table into a single line.
  EXPECT_EQ(sbox_lines_occupied(gift::TableLayout{}, 8), 2u);
}

TEST(PackedSBox, CacheConfigUsesEightByteLines) {
  const cachesim::CacheConfig cfg = packed_sbox_cache();
  EXPECT_EQ(cfg.line_bytes, 8u);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(PackedSBox, FunctionalCorrectnessPreserved) {
  // The reshaped implementation is still GIFT-64.
  const gift::TableGift64 protected_impl{packed_sbox_layout()};
  Xoshiro256 rng{1};
  for (int i = 0; i < 50; ++i) {
    const Key128 key = rng.key128();
    const std::uint64_t pt = rng.block64();
    EXPECT_EQ(protected_impl.encrypt(pt, key), gift::Gift64::encrypt(pt, key));
  }
}

TEST(PackedSBox, ObserverSeesSingleIndistinguishableLine) {
  const auto ids =
      soc::compute_index_line_ids(packed_sbox_layout(), 8);
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(ids[i], 0u);
}

}  // namespace
}  // namespace grinch::cm
