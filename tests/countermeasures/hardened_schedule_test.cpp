#include "countermeasures/hardened_schedule.h"

#include <gtest/gtest.h>

#include "attack/key_recovery.h"
#include "common/rng.h"
#include "gift/gift64.h"

namespace grinch::cm {
namespace {

TEST(Hardened, EncryptDecryptRoundTrip) {
  Xoshiro256 rng{1};
  for (int i = 0; i < 50; ++i) {
    const Key128 key = rng.key128();
    const std::uint64_t pt = rng.block64();
    EXPECT_EQ(HardenedGift64::decrypt(HardenedGift64::encrypt(pt, key), key),
              pt);
  }
}

TEST(Hardened, DiffersFromStandardGift) {
  Xoshiro256 rng{2};
  const Key128 key = rng.key128();
  const std::uint64_t pt = rng.block64();
  EXPECT_NE(HardenedGift64::encrypt(pt, key), gift::Gift64::encrypt(pt, key));
}

TEST(Hardened, RoundKeysAreWhitened) {
  Xoshiro256 rng{3};
  const Key128 key = rng.key128();
  const auto hardened = hardened_round_keys(key, 4);
  const gift::KeySchedule sched{key, 4};
  for (unsigned r = 0; r < 4; ++r) {
    const gift::RoundKey64 std_rk = sched.round_key64(r);
    EXPECT_TRUE(hardened[r].u != std_rk.u || hardened[r].v != std_rk.v)
        << "round " << r;
  }
}

TEST(Hardened, WhiteningDependsOnUnusedBits) {
  // Flipping a bit in the unused half (k7..k4) must change the digest —
  // that is the paper's "bits that were not used yet" requirement.
  Xoshiro256 rng{4};
  const Key128 key = rng.key128();
  const std::uint32_t base = whitening_digest(key);
  bool any_change = false;
  for (unsigned pos = 64; pos < 128; pos += 7) {
    any_change |= whitening_digest(key.with_bit(pos, key.bit(pos) ^ 1u)) != base;
  }
  EXPECT_TRUE(any_change);
}

TEST(Hardened, WhiteningIsNonLinear) {
  // digest(a) ^ digest(b) != digest(a^b) ^ digest(0) for some a,b —
  // otherwise the attacker could invert the whitening linearly.
  Xoshiro256 rng{5};
  bool nonlinear = false;
  const std::uint32_t d0 = whitening_digest(Key128{});
  for (int i = 0; i < 32 && !nonlinear; ++i) {
    const Key128 a = rng.key128();
    const Key128 b = rng.key128();
    const std::uint32_t lhs = whitening_digest(a) ^ whitening_digest(b);
    const std::uint32_t rhs = whitening_digest(a ^ b) ^ d0;
    nonlinear = (lhs != rhs);
  }
  EXPECT_TRUE(nonlinear);
}

TEST(Hardened, EffectiveSubKeysDoNotAssembleToMasterKey) {
  // The heart of countermeasure 2: even a perfect recovery of all four
  // effective round keys yields a wrong master key.
  Xoshiro256 rng{6};
  const Key128 key = rng.key128();
  const auto effective = hardened_round_keys(key, 4);
  const Key128 assembled = attack::assemble_master_key(effective);
  EXPECT_NE(assembled, key);
  // And that wrong key does not reproduce the hardened ciphertext either.
  const std::uint64_t pt = rng.block64();
  EXPECT_NE(HardenedGift64::encrypt(pt, assembled),
            HardenedGift64::encrypt(pt, key));
}

TEST(Hardened, ProviderMatchesReferenceImplementation) {
  const gift::TableGift64 victim{gift::TableLayout{}, hardened_provider()};
  Xoshiro256 rng{7};
  for (int i = 0; i < 20; ++i) {
    const Key128 key = rng.key128();
    const std::uint64_t pt = rng.block64();
    EXPECT_EQ(victim.encrypt(pt, key), HardenedGift64::encrypt(pt, key));
  }
}

}  // namespace
}  // namespace grinch::cm
