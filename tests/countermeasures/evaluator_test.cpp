#include "countermeasures/evaluator.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace grinch::cm {
namespace {

constexpr std::uint64_t kBudget = 15000;

TEST(Evaluator, BaselineFallsQuickly) {
  Xoshiro256 rng{1};
  const auto r = evaluate_protection(Protection::kNone, rng.key128(), kBudget, 7);
  EXPECT_TRUE(r.attack_succeeded);
  EXPECT_TRUE(r.key_retrieved);
  EXPECT_LT(r.encryptions, 400u);
}

TEST(Evaluator, PackedSBoxDefeatsTheAttack) {
  Xoshiro256 rng{2};
  const auto r =
      evaluate_protection(Protection::kPackedSBox, rng.key128(), kBudget, 7);
  EXPECT_FALSE(r.attack_succeeded);
  EXPECT_FALSE(r.key_retrieved);
  EXPECT_GE(r.encryptions, kBudget);  // burned the whole budget for nothing
}

TEST(Evaluator, HardenedScheduleBlocksKeyRetrieval) {
  Xoshiro256 rng{3};
  const auto r = evaluate_protection(Protection::kHardenedSchedule,
                                     rng.key128(), kBudget, 7);
  // The cache leak itself is untouched (sub-key bits converge)...
  EXPECT_TRUE(r.attack_succeeded);
  // ...but the master key stays safe — the paper's claim.
  EXPECT_FALSE(r.key_retrieved);
}

TEST(Evaluator, LayeredDefenceAlsoHolds) {
  Xoshiro256 rng{4};
  const auto r = evaluate_protection(Protection::kBoth, rng.key128(), kBudget, 7);
  EXPECT_FALSE(r.key_retrieved);
}

TEST(Evaluator, EvaluateAllCoversEveryProtection) {
  Xoshiro256 rng{5};
  const auto all = evaluate_all(rng.key128(), kBudget, 9);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].protection, Protection::kNone);
  EXPECT_TRUE(all[0].key_retrieved);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_FALSE(all[i].key_retrieved) << to_string(all[i].protection);
  }
}

TEST(Evaluator, ConstantTimeImplementationIsImmune) {
  Xoshiro256 rng{7};
  const auto r = evaluate_protection(Protection::kConstantTime, rng.key128(),
                                     kBudget, 7);
  EXPECT_FALSE(r.attack_succeeded);
  EXPECT_FALSE(r.key_retrieved);
  EXPECT_GE(r.encryptions, kBudget);  // the attack starves on zero signal
}

TEST(Evaluator, NotesAreHumanReadable) {
  Xoshiro256 rng{6};
  const auto r = evaluate_protection(Protection::kNone, rng.key128(), kBudget, 7);
  EXPECT_FALSE(r.note.empty());
  EXPECT_STRNE(to_string(Protection::kNone), to_string(Protection::kBoth));
}

}  // namespace
}  // namespace grinch::cm
