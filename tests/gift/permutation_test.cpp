#include "gift/permutation.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace grinch::gift {
namespace {

TEST(Permutation, Gift64KnownEntries) {
  // Spot values from the published P64 table (eprint 2017/622, Table 2).
  const BitPermutation& p = gift64_permutation();
  EXPECT_EQ(p.forward(0), 0u);
  EXPECT_EQ(p.forward(1), 17u);
  EXPECT_EQ(p.forward(2), 34u);
  EXPECT_EQ(p.forward(3), 51u);
  EXPECT_EQ(p.forward(4), 48u);
  EXPECT_EQ(p.forward(5), 1u);
  EXPECT_EQ(p.forward(12), 16u);
  EXPECT_EQ(p.forward(63), 15u);
}

TEST(Permutation, Gift64IsBijective) {
  const BitPermutation& p = gift64_permutation();
  std::set<unsigned> targets;
  for (unsigned i = 0; i < 64; ++i) targets.insert(p.forward(i));
  EXPECT_EQ(targets.size(), 64u);
}

TEST(Permutation, Gift128IsBijective) {
  const BitPermutation& p = gift128_permutation();
  std::set<unsigned> targets;
  for (unsigned i = 0; i < 128; ++i) targets.insert(p.forward(i));
  EXPECT_EQ(targets.size(), 128u);
}

TEST(Permutation, InverseTableIsConsistent) {
  const BitPermutation& p = gift64_permutation();
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(p.inverse(p.forward(i)), i);
  }
}

TEST(Permutation, Apply64MovesIndividualBits) {
  const BitPermutation& p = gift64_permutation();
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(p.apply64(std::uint64_t{1} << i),
              std::uint64_t{1} << p.forward(i));
  }
}

TEST(Permutation, Invert64UndoesApply64) {
  Xoshiro256 rng{20};
  const BitPermutation& p = gift64_permutation();
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t v = rng.block64();
    EXPECT_EQ(p.invert64(p.apply64(v)), v);
  }
}

TEST(Permutation, Apply128MovesIndividualBits) {
  const BitPermutation& p = gift128_permutation();
  for (unsigned i = 0; i < 128; ++i) {
    std::uint64_t hi = 0, lo = 0;
    if (i < 64)
      lo = std::uint64_t{1} << i;
    else
      hi = std::uint64_t{1} << (i - 64);
    p.apply128(hi, lo);
    const unsigned j = p.forward(i);
    if (j < 64) {
      EXPECT_EQ(lo, std::uint64_t{1} << j);
      EXPECT_EQ(hi, 0u);
    } else {
      EXPECT_EQ(hi, std::uint64_t{1} << (j - 64));
      EXPECT_EQ(lo, 0u);
    }
  }
}

TEST(Permutation, Invert128UndoesApply128) {
  Xoshiro256 rng{21};
  const BitPermutation& p = gift128_permutation();
  for (int i = 0; i < 50; ++i) {
    std::uint64_t hi = rng.block64(), lo = rng.block64();
    const std::uint64_t oh = hi, ol = lo;
    p.apply128(hi, lo);
    p.invert128(hi, lo);
    EXPECT_EQ(hi, oh);
    EXPECT_EQ(lo, ol);
  }
}

TEST(Permutation, Gift64PreservesBitWithinSegmentSlot) {
  // The GIFT permutation maps bit position i to a position with the same
  // (i mod 4) residue group structure documented in the paper: bit_in_seg
  // is preserved.  (This matters for GRINCH: a round-key-facing bit j of
  // some segment comes from bit position inverse(j) with the same j mod 4.)
  const BitPermutation& p = gift64_permutation();
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(p.forward(i) % 4, i % 4);
  }
}

TEST(Permutation, Gift64SpreadsEachSegmentToFourSegments) {
  // The four bits of any input segment land in four distinct segments —
  // the diffusion property that forces GRINCH to pin bits in four
  // plaintext segments to control one round-2 segment.
  const BitPermutation& p = gift64_permutation();
  for (unsigned s = 0; s < 16; ++s) {
    std::set<unsigned> dest_segments;
    for (unsigned b = 0; b < 4; ++b) dest_segments.insert(p.forward(4 * s + b) / 4);
    EXPECT_EQ(dest_segments.size(), 4u) << "segment " << s;
  }
}

TEST(Permutation, PresentKnownEntries) {
  const BitPermutation& p = present_permutation();
  EXPECT_EQ(p.forward(0), 0u);
  EXPECT_EQ(p.forward(1), 16u);
  EXPECT_EQ(p.forward(2), 32u);
  EXPECT_EQ(p.forward(3), 48u);
  EXPECT_EQ(p.forward(4), 1u);
  EXPECT_EQ(p.forward(62), 47u);  // 16*62 mod 63 = 47
  EXPECT_EQ(p.forward(63), 63u);  // MSB is a fixed point by definition
}

}  // namespace
}  // namespace grinch::gift
