#include "gift/sbox.h"

#include <gtest/gtest.h>

#include <set>

namespace grinch::gift {
namespace {

TEST(SBox, GiftTableMatchesSpec) {
  // eprint 2017/622 Table 1.
  const unsigned expected[16] = {0x1, 0xa, 0x4, 0xc, 0x6, 0xf, 0x3, 0x9,
                                 0x2, 0xd, 0xb, 0x7, 0x5, 0x0, 0x8, 0xe};
  for (unsigned x = 0; x < 16; ++x) EXPECT_EQ(gift_sbox().apply(x), expected[x]);
}

TEST(SBox, GiftIsBijective) {
  std::set<unsigned> outputs;
  for (unsigned x = 0; x < 16; ++x) outputs.insert(gift_sbox().apply(x));
  EXPECT_EQ(outputs.size(), 16u);
}

TEST(SBox, InverseUndoesForward) {
  for (unsigned x = 0; x < 16; ++x) {
    EXPECT_EQ(gift_sbox().invert(gift_sbox().apply(x)), x);
    EXPECT_EQ(gift_sbox().apply(gift_sbox().invert(x)), x);
  }
}

TEST(SBox, GiftHasNoFixedPointAtZero) {
  // GS(0) = 1: the S-Box maps zero away from zero (no trivial fixed point
  // for the all-zero state in round 1).
  EXPECT_NE(gift_sbox().apply(0), 0u);
}

TEST(SBox, ApplyState64SubstitutesEachNibbleIndependently) {
  const std::uint64_t in = 0xFEDCBA9876543210ull;
  const std::uint64_t out = gift_sbox().apply_state64(in);
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ((out >> (4 * i)) & 0xF, gift_sbox().apply(i)) << i;
  }
}

TEST(SBox, InvertState64IsInverseOfApplyState64) {
  const std::uint64_t in = 0x0123456789ABCDEFull;
  EXPECT_EQ(gift_sbox().invert_state64(gift_sbox().apply_state64(in)), in);
}

TEST(SBox, PresentTableMatchesSpec) {
  const unsigned expected[16] = {0xc, 0x5, 0x6, 0xb, 0x9, 0x0, 0xa, 0xd,
                                 0x3, 0xe, 0xf, 0x8, 0x4, 0x7, 0x1, 0x2};
  for (unsigned x = 0; x < 16; ++x)
    EXPECT_EQ(present_sbox().apply(x), expected[x]);
}

TEST(SBox, GiftNonLinearity) {
  // GS must not be affine: check that GS(x) ^ GS(x^d) is not constant for
  // every difference d (a basic differential sanity property).
  for (unsigned d = 1; d < 16; ++d) {
    std::set<unsigned> diffs;
    for (unsigned x = 0; x < 16; ++x) {
      diffs.insert(gift_sbox().apply(x) ^ gift_sbox().apply(x ^ d));
    }
    EXPECT_GT(diffs.size(), 1u) << "difference " << d << " behaves linearly";
  }
}

TEST(SBox, EveryOutputBitDependsOnInput) {
  // For each output bit there exist inputs where it is 0 and where it is 1.
  for (unsigned b = 0; b < 4; ++b) {
    bool saw0 = false, saw1 = false;
    for (unsigned x = 0; x < 16; ++x) {
      ((gift_sbox().apply(x) >> b) & 1u) ? saw1 = true : saw0 = true;
    }
    EXPECT_TRUE(saw0 && saw1) << "output bit " << b;
  }
}

}  // namespace
}  // namespace grinch::gift
