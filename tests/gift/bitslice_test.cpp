#include "gift/bitslice.h"

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "gift/gift64.h"
#include "gift/sbox.h"

namespace grinch::gift {
namespace {

TEST(BitPlanes, RoundTripConversion) {
  Xoshiro256 rng{1};
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t s = rng.block64();
    EXPECT_EQ(from_planes(to_planes(s)), s);
  }
}

TEST(BitPlanes, PlaneBitsMatchSegmentBits) {
  const std::uint64_t s = 0xFEDCBA9876543210ull;
  const BitPlanes p = to_planes(s);
  for (unsigned i = 0; i < 16; ++i) {
    for (unsigned b = 0; b < 4; ++b) {
      EXPECT_EQ((p.plane[b] >> i) & 1u, bit(s, 4 * i + b));
    }
  }
}

TEST(Bitslice, AnfReproducesTheSBoxTable) {
  // Evaluating the derived ANF pointwise must give back GS exactly.
  const BitslicedGift64 impl;
  for (unsigned x = 0; x < 16; ++x) {
    unsigned y = 0;
    for (unsigned b = 0; b < 4; ++b) {
      unsigned bit_value = 0;
      for (unsigned m = 0; m < 16; ++m) {
        if (!((impl.anf()[b] >> m) & 1u)) continue;
        if ((x & m) == m) bit_value ^= 1u;  // monomial evaluates to 1
      }
      y |= bit_value << b;
    }
    EXPECT_EQ(y, gift_sbox().apply(x)) << "x=" << x;
  }
}

TEST(Bitslice, AnfIsNonLinearInEveryOutputBit) {
  // At least one output bit must contain a degree->=2 monomial (GS is a
  // non-linear S-Box); in fact all four do.
  const BitslicedGift64 impl;
  for (unsigned b = 0; b < 4; ++b) {
    bool has_nonlinear = false;
    for (unsigned m = 0; m < 16; ++m) {
      if (((impl.anf()[b] >> m) & 1u) && popcount(m) >= 2) {
        has_nonlinear = true;
      }
    }
    EXPECT_TRUE(has_nonlinear) << "output bit " << b;
  }
}

TEST(Bitslice, EncryptMatchesSpecForPublishedVector) {
  const BitslicedGift64 impl;
  Key128 key;
  ASSERT_TRUE(Key128::from_hex("bd91731eb6bc2713a1f9f6ffc75044e7", key));
  EXPECT_EQ(impl.encrypt(0xc450c7727a9b8a7dull, key), 0xe3272885fa94ba8bull);
}

TEST(Bitslice, EncryptMatchesSpecForRandomInputs) {
  const BitslicedGift64 impl;
  Xoshiro256 rng{2};
  for (int i = 0; i < 300; ++i) {
    const Key128 key = rng.key128();
    const std::uint64_t pt = rng.block64();
    EXPECT_EQ(impl.encrypt(pt, key), Gift64::encrypt(pt, key));
  }
}

TEST(Bitslice, SingleRoundMatchesSpecRoundFunction) {
  const BitslicedGift64 impl;
  Xoshiro256 rng{3};
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t s = rng.block64();
    const RoundKey64 rk{static_cast<std::uint16_t>(rng.next()),
                        static_cast<std::uint16_t>(rng.next())};
    const unsigned r = static_cast<unsigned>(rng.uniform(28));
    const BitPlanes out = impl.round(to_planes(s), rk.u, rk.v, r);
    EXPECT_EQ(from_planes(out), Gift64::round_function(s, rk, r));
  }
}

}  // namespace
}  // namespace grinch::gift
