#include "gift/constants.h"

#include <gtest/gtest.h>

namespace grinch::gift {
namespace {

TEST(Constants, FirstConstantsMatchSpec) {
  // eprint 2017/622 Table: 01,03,07,0F,1F,3E,3D,3B,37,2F,1E,3C,...
  const std::uint8_t expected[12] = {0x01, 0x03, 0x07, 0x0F, 0x1F, 0x3E,
                                     0x3D, 0x3B, 0x37, 0x2F, 0x1E, 0x3C};
  RoundConstantLfsr lfsr;
  for (unsigned r = 0; r < 12; ++r) {
    EXPECT_EQ(lfsr.next(), expected[r]) << "round " << r;
  }
}

TEST(Constants, StatelessMatchesStateful) {
  RoundConstantLfsr lfsr;
  for (unsigned r = 0; r < 48; ++r) {
    EXPECT_EQ(round_constant(r), lfsr.next()) << "round " << r;
  }
}

TEST(Constants, First48ConstantsAreSixBitsAndNonZero) {
  // The spec lists 48 round constants (enough for GIFT-128's 40 rounds),
  // all non-zero.  The affine LFSR does pass through zero later in its
  // 64-state cycle, which is fine — no GIFT variant uses that many rounds.
  RoundConstantLfsr lfsr;
  for (unsigned r = 0; r < 48; ++r) {
    const std::uint8_t c = lfsr.next();
    EXPECT_LE(c, 0x3F);
    EXPECT_NE(c, 0) << "round " << r;
  }
}

TEST(Constants, LfsrHasFullPeriod64) {
  // The affine update x -> (x<<1)|(c5^c4^1) over 6 bits is a bijection;
  // starting from 0 it must return to 0 after exactly 64 steps.
  RoundConstantLfsr lfsr;
  unsigned period = 0;
  std::uint8_t c;
  do {
    c = lfsr.next();
    ++period;
  } while (c != 0 && period < 1000);
  EXPECT_EQ(period + 1, 64u);  // +1: step back to the initial state 0
}

TEST(Constants, ResetRestartsSequence) {
  RoundConstantLfsr lfsr;
  const std::uint8_t first = lfsr.next();
  lfsr.next();
  lfsr.reset();
  EXPECT_EQ(lfsr.next(), first);
}

TEST(Constants, AddConstant64TogglesExactlyTheSpecBits) {
  const std::uint64_t s0 = 0;
  const std::uint64_t s1 = add_constant64(s0, 0x3F);
  // Bits 63 and 23,19,15,11,7,3 must be set, nothing else.
  std::uint64_t expected = std::uint64_t{1} << 63;
  for (unsigned b : {23u, 19u, 15u, 11u, 7u, 3u}) expected |= std::uint64_t{1} << b;
  EXPECT_EQ(s1, expected);
}

TEST(Constants, AddConstant64IsSelfInverse) {
  const std::uint64_t s = 0x0123456789ABCDEFull;
  EXPECT_EQ(add_constant64(add_constant64(s, 0x2A), 0x2A), s);
}

TEST(Constants, PeriodCoversGift128Rounds) {
  // The 6-bit LFSR sequence must not repeat within GIFT-128's 40 rounds.
  RoundConstantLfsr lfsr;
  std::uint8_t seen[64] = {};
  for (unsigned r = 0; r < 40; ++r) {
    const std::uint8_t c = lfsr.next();
    EXPECT_EQ(seen[c], 0) << "constant repeated at round " << r;
    seen[c] = 1;
  }
}

}  // namespace
}  // namespace grinch::gift
