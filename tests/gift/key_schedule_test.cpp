#include "gift/key_schedule.h"

#include <gtest/gtest.h>

#include <set>

#include "common/bits.h"
#include "common/rng.h"

namespace grinch::gift {
namespace {

TEST(KeySchedule, UpdateMatchesSpecOnWords) {
  Xoshiro256 rng{30};
  const Key128 k = rng.key128();
  const Key128 n = update_key_state(k);
  // (k7..k0) <- (k1>>>2, k0>>>12, k7..k2)
  EXPECT_EQ(n.word16(7), rotr(k.word16(1), 2, 16));
  EXPECT_EQ(n.word16(6), rotr(k.word16(0), 12, 16));
  for (unsigned w = 0; w < 6; ++w) EXPECT_EQ(n.word16(w), k.word16(w + 2));
}

TEST(KeySchedule, RevertUndoesUpdate) {
  Xoshiro256 rng{31};
  for (int i = 0; i < 50; ++i) {
    const Key128 k = rng.key128();
    EXPECT_EQ(revert_key_state(update_key_state(k)), k);
    EXPECT_EQ(update_key_state(revert_key_state(k)), k);
  }
}

TEST(KeySchedule, UpdateIsAPermutationOfKeyBits) {
  // Each master-key bit must appear exactly once in the updated state.
  for (unsigned pos = 0; pos < 128; ++pos) {
    const Key128 k = Key128{}.with_bit(pos, 1);
    const Key128 n = update_key_state(k);
    unsigned ones = 0;
    for (unsigned j = 0; j < 128; ++j) ones += n.bit(j);
    EXPECT_EQ(ones, 1u) << "bit " << pos;
  }
}

TEST(KeySchedule, RoundKey64UsesWords1And0) {
  Xoshiro256 rng{32};
  const Key128 k = rng.key128();
  const RoundKey64 rk = extract_round_key64(k);
  EXPECT_EQ(rk.u, k.word16(1));
  EXPECT_EQ(rk.v, k.word16(0));
}

TEST(KeySchedule, RoundKey128UsesWords54And10) {
  Xoshiro256 rng{33};
  const Key128 k = rng.key128();
  const RoundKey128 rk = extract_round_key128(k);
  EXPECT_EQ(rk.u, (static_cast<std::uint32_t>(k.word16(5)) << 16) | k.word16(4));
  EXPECT_EQ(rk.v, (static_cast<std::uint32_t>(k.word16(1)) << 16) | k.word16(0));
}

TEST(KeySchedule, ScheduleStatesChainViaUpdate) {
  Xoshiro256 rng{34};
  const Key128 key = rng.key128();
  const KeySchedule sched{key, 28};
  ASSERT_EQ(sched.rounds(), 28u);
  EXPECT_EQ(sched.state(0), key);
  for (unsigned r = 1; r < 28; ++r) {
    EXPECT_EQ(sched.state(r), update_key_state(sched.state(r - 1)));
  }
}

TEST(KeyBitOrigins, Round0IsIdentity) {
  const KeyBitOrigins origins{4};
  for (unsigned pos = 0; pos < 128; ++pos) {
    EXPECT_EQ(origins.state_bit_origin(0, pos), pos);
  }
}

TEST(KeyBitOrigins, EachRoundIsAPermutation) {
  const KeyBitOrigins origins{28};
  for (unsigned r = 0; r < 28; ++r) {
    std::set<unsigned> seen;
    for (unsigned pos = 0; pos < 128; ++pos) {
      seen.insert(origins.state_bit_origin(r, pos));
    }
    EXPECT_EQ(seen.size(), 128u) << "round " << r;
  }
}

TEST(KeyBitOrigins, MatchesConcreteSchedule) {
  // Setting exactly master bit b must make the scheduled state at round r
  // have a 1 exactly where origins says bit b lives.
  const KeyBitOrigins origins{8};
  for (unsigned b = 0; b < 128; b += 7) {
    const Key128 key = Key128{}.with_bit(b, 1);
    const KeySchedule sched{key, 8};
    for (unsigned r = 0; r < 8; ++r) {
      for (unsigned pos = 0; pos < 128; ++pos) {
        const unsigned expected = (origins.state_bit_origin(r, pos) == b);
        EXPECT_EQ(sched.state(r).bit(pos), expected)
            << "bit " << b << " round " << r << " pos " << pos;
      }
    }
  }
}

TEST(KeyBitOrigins, FirstFourRoundsCoverAllKeyBits64) {
  // GIFT-64 uses 32 fresh key bits per round; rounds 0..3 together must
  // cover all 128 master-key bits (the premise of GRINCH's four-stage
  // full-key recovery).
  const KeyBitOrigins origins{4};
  std::set<unsigned> used;
  for (unsigned r = 0; r < 4; ++r) {
    for (unsigned i = 0; i < 16; ++i) {
      used.insert(origins.u64_origin(r, i));
      used.insert(origins.v64_origin(r, i));
    }
  }
  EXPECT_EQ(used.size(), 128u);
}

TEST(KeyBitOrigins, Round0RoundKeyIsIdentityMapping) {
  const KeyBitOrigins origins{1};
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(origins.v64_origin(0, i), i);
    EXPECT_EQ(origins.u64_origin(0, i), 16 + i);
  }
}

TEST(KeyBitOrigins, Gift128FirstTwoRoundsCoverAllKeyBits) {
  // GIFT-128 uses 64 key bits per round; rounds 0..1 must cover all 128.
  const KeyBitOrigins origins{2};
  std::set<unsigned> used;
  for (unsigned r = 0; r < 2; ++r) {
    for (unsigned i = 0; i < 32; ++i) {
      used.insert(origins.u128_origin(r, i));
      used.insert(origins.v128_origin(r, i));
    }
  }
  EXPECT_EQ(used.size(), 128u);
}

}  // namespace
}  // namespace grinch::gift
