// Cryptographic property tests of the S-Boxes, tied to the design claims
// in §II of the GRINCH paper: PRESENT's S-Box must satisfy branching
// number 3 (BN3), which makes it costly; GIFT "carefully constructs the
// substitution and permutation blocks in conjunction, thereby reducing
// the requirement from BN3 to BN2".
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>

#include "common/bits.h"
#include "gift/sbox.h"

namespace grinch::gift {
namespace {

/// Difference distribution table: ddt[a][b] = #{x : S(x^a)^S(x) = b}.
std::array<std::array<unsigned, 16>, 16> ddt_of(const SBox& s) {
  std::array<std::array<unsigned, 16>, 16> ddt{};
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned x = 0; x < 16; ++x) {
      ++ddt[a][s.apply(x ^ a) ^ s.apply(x)];
    }
  }
  return ddt;
}

/// Linear approximation table entry: lat[a][b] =
/// #{x : <a,x> = <b,S(x)>} - 8 (bias count).
int lat_entry(const SBox& s, unsigned a, unsigned b) {
  int count = 0;
  for (unsigned x = 0; x < 16; ++x) {
    const unsigned in_parity = popcount(x & a) & 1u;
    const unsigned out_parity = popcount(s.apply(x) & b) & 1u;
    count += (in_parity == out_parity);
  }
  return count - 8;
}

/// Differential branch number: min over nonzero input differences of
/// wt(a) + wt(S(x)^S(x^a)) over all x.
unsigned branch_number(const SBox& s) {
  unsigned bn = 8;
  for (unsigned a = 1; a < 16; ++a) {
    for (unsigned x = 0; x < 16; ++x) {
      const unsigned out_diff = s.apply(x) ^ s.apply(x ^ a);
      bn = std::min(bn, popcount(a) + popcount(out_diff));
    }
  }
  return bn;
}

TEST(SBoxCrypto, DdtStructuralInvariants) {
  for (const SBox* s : {&gift_sbox(), &present_sbox()}) {
    const auto ddt = ddt_of(*s);
    EXPECT_EQ(ddt[0][0], 16u);  // zero difference maps to zero
    for (unsigned b = 1; b < 16; ++b) EXPECT_EQ(ddt[0][b], 0u);
    for (unsigned a = 0; a < 16; ++a) {
      unsigned row_sum = 0;
      for (unsigned b = 0; b < 16; ++b) {
        EXPECT_EQ(ddt[a][b] % 2, 0u);  // DDT entries are even
        row_sum += ddt[a][b];
      }
      EXPECT_EQ(row_sum, 16u);
    }
  }
}

TEST(SBoxCrypto, GiftDifferentialUniformityIsSix) {
  // Banik et al. report GS has differential uniformity 6.
  const auto ddt = ddt_of(gift_sbox());
  unsigned max_entry = 0;
  for (unsigned a = 1; a < 16; ++a) {
    for (unsigned b = 0; b < 16; ++b) max_entry = std::max(max_entry, ddt[a][b]);
  }
  EXPECT_EQ(max_entry, 6u);
}

TEST(SBoxCrypto, PresentDifferentialUniformityIsFour) {
  const auto ddt = ddt_of(present_sbox());
  unsigned max_entry = 0;
  for (unsigned a = 1; a < 16; ++a) {
    for (unsigned b = 0; b < 16; ++b) max_entry = std::max(max_entry, ddt[a][b]);
  }
  EXPECT_EQ(max_entry, 4u);
}

TEST(SBoxCrypto, LatIsBoundedAndBalanced) {
  for (const SBox* s : {&gift_sbox(), &present_sbox()}) {
    for (unsigned a = 0; a < 16; ++a) {
      for (unsigned b = 0; b < 16; ++b) {
        const int e = lat_entry(*s, a, b);
        if (a == 0 && b == 0) {
          EXPECT_EQ(e, 8);  // trivial approximation
        } else if (a == 0 || b == 0) {
          EXPECT_EQ(e, 0);  // balancedness
        } else {
          EXPECT_LE(std::abs(e), 4);  // 4-bit optimal-linearity bound
        }
      }
    }
  }
}

TEST(SBoxCrypto, GiftBranchNumberIsTwo) {
  // The §II story: GIFT's construction only needs BN2 from its S-Box.
  EXPECT_EQ(branch_number(gift_sbox()), 2u);
}

TEST(SBoxCrypto, PresentBranchNumberIsThree) {
  // PRESENT's S-Box satisfies the costly BN3 requirement.
  EXPECT_EQ(branch_number(present_sbox()), 3u);
}

TEST(SBoxCrypto, NoLinearStructure) {
  // Neither S-Box has a nonzero linear structure (a,b) with
  // S(x^a) = S(x)^b for all x — which would make GRINCH's
  // candidate-separation degenerate.
  for (const SBox* s : {&gift_sbox(), &present_sbox()}) {
    for (unsigned a = 1; a < 16; ++a) {
      bool constant = true;
      const unsigned b0 = s->apply(a) ^ s->apply(0);
      for (unsigned x = 1; x < 16 && constant; ++x) {
        constant = (s->apply(x ^ a) ^ s->apply(x)) == b0;
      }
      EXPECT_FALSE(constant) << "difference " << a;
    }
  }
}

}  // namespace
}  // namespace grinch::gift
