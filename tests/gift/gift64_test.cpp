// Known-answer and property tests for the GIFT-64 reference implementation.
#include "gift/gift64.h"

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/hex.h"
#include "common/rng.h"

namespace grinch::gift {
namespace {

struct Kat {
  const char* key;
  const char* plaintext;
  const char* ciphertext;
};

// Test vectors from the GIFT design document (eprint 2017/622, appendix).
constexpr Kat kKats[] = {
    {"00000000000000000000000000000000", "0000000000000000",
     "f62bc3ef34f775ac"},
    {"fedcba9876543210fedcba9876543210", "fedcba9876543210",
     "c1b71f66160ff587"},
    {"bd91731eb6bc2713a1f9f6ffc75044e7", "c450c7727a9b8a7d",
     "e3272885fa94ba8b"},
};

class Gift64Kat : public ::testing::TestWithParam<Kat> {};

TEST_P(Gift64Kat, EncryptMatchesPublishedVector) {
  const Kat& kat = GetParam();
  Key128 key;
  ASSERT_TRUE(Key128::from_hex(kat.key, key));
  const auto pt = parse_hex_u64(kat.plaintext);
  const auto ct = parse_hex_u64(kat.ciphertext);
  ASSERT_TRUE(pt && ct);
  EXPECT_EQ(Gift64::encrypt(*pt, key), *ct)
      << "got " << to_hex_u64(Gift64::encrypt(*pt, key));
}

TEST_P(Gift64Kat, DecryptMatchesPublishedVector) {
  const Kat& kat = GetParam();
  Key128 key;
  ASSERT_TRUE(Key128::from_hex(kat.key, key));
  const auto pt = parse_hex_u64(kat.plaintext);
  const auto ct = parse_hex_u64(kat.ciphertext);
  ASSERT_TRUE(pt && ct);
  EXPECT_EQ(Gift64::decrypt(*ct, key), *pt);
}

INSTANTIATE_TEST_SUITE_P(PublishedVectors, Gift64Kat,
                         ::testing::ValuesIn(kKats));

TEST(Gift64, RoundTripRandomKeys) {
  Xoshiro256 rng{0x64646464};
  for (int i = 0; i < 200; ++i) {
    const Key128 key = rng.key128();
    const std::uint64_t pt = rng.block64();
    EXPECT_EQ(Gift64::decrypt(Gift64::encrypt(pt, key), key), pt);
  }
}

TEST(Gift64, EncryptRoundsZeroIsIdentity) {
  Xoshiro256 rng{1};
  const Key128 key = rng.key128();
  const std::uint64_t pt = rng.block64();
  EXPECT_EQ(Gift64::encrypt_rounds(pt, key, 0), pt);
}

TEST(Gift64, EncryptRoundsFullMatchesEncrypt) {
  Xoshiro256 rng{2};
  const Key128 key = rng.key128();
  const std::uint64_t pt = rng.block64();
  EXPECT_EQ(Gift64::encrypt_rounds(pt, key, Gift64::kRounds),
            Gift64::encrypt(pt, key));
}

TEST(Gift64, RoundStatesAreConsistentWithPartialEncryption) {
  Xoshiro256 rng{3};
  const Key128 key = rng.key128();
  const std::uint64_t pt = rng.block64();
  const auto states = Gift64::round_states(pt, key);
  ASSERT_EQ(states.size(), Gift64::kRounds + 1);
  for (unsigned r = 0; r <= Gift64::kRounds; ++r) {
    EXPECT_EQ(states[r], Gift64::encrypt_rounds(pt, key, r)) << "round " << r;
  }
}

TEST(Gift64, FirstRoundIsKeyDependentOnlyThroughAddRoundKey) {
  // Round 1 output differs between two keys only in the 32 key-facing bits
  // (4i, 4i+1) — the SubCells/PermBits part of round 1 is key-independent.
  // This is the property GRINCH exploits.
  Xoshiro256 rng{4};
  const std::uint64_t pt = rng.block64();
  const Key128 k1 = rng.key128();
  const Key128 k2 = rng.key128();
  const std::uint64_t s1 = Gift64::encrypt_rounds(pt, k1, 1);
  const std::uint64_t s2 = Gift64::encrypt_rounds(pt, k2, 1);
  const std::uint64_t diff = s1 ^ s2;
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(bit(diff, 4 * i + 2), 0u);
    EXPECT_EQ(bit(diff, 4 * i + 3), 0u);
  }
}

TEST(Gift64, AvalancheSingleBitFlipChangesAboutHalfTheOutput) {
  Xoshiro256 rng{5};
  const Key128 key = rng.key128();
  double total = 0;
  constexpr int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    const std::uint64_t pt = rng.block64();
    const unsigned pos = static_cast<unsigned>(rng.uniform(64));
    const std::uint64_t c1 = Gift64::encrypt(pt, key);
    const std::uint64_t c2 = Gift64::encrypt(flip_bit(pt, pos), key);
    total += popcount(c1 ^ c2);
  }
  const double mean = total / kTrials;
  EXPECT_GT(mean, 28.0);
  EXPECT_LT(mean, 36.0);
}

TEST(Gift64, KeyAvalanche) {
  Xoshiro256 rng{6};
  const std::uint64_t pt = rng.block64();
  double total = 0;
  constexpr int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    const Key128 key = rng.key128();
    const unsigned pos = static_cast<unsigned>(rng.uniform(128));
    const std::uint64_t c1 = Gift64::encrypt(pt, key);
    const std::uint64_t c2 = Gift64::encrypt(pt, key.with_bit(pos, key.bit(pos) ^ 1u));
    total += popcount(c1 ^ c2);
  }
  const double mean = total / kTrials;
  EXPECT_GT(mean, 28.0);
  EXPECT_LT(mean, 36.0);
}

TEST(Gift64, DifferentKeysProduceDifferentCiphertexts) {
  Xoshiro256 rng{7};
  const std::uint64_t pt = rng.block64();
  const Key128 k1 = rng.key128();
  const Key128 k2 = rng.key128();
  ASSERT_NE(k1, k2);
  EXPECT_NE(Gift64::encrypt(pt, k1), Gift64::encrypt(pt, k2));
}

TEST(Gift64, InverseRoundFunctionInvertsRoundFunction) {
  Xoshiro256 rng{8};
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t s = rng.block64();
    const RoundKey64 rk{static_cast<std::uint16_t>(rng.next()),
                        static_cast<std::uint16_t>(rng.next())};
    const unsigned round = static_cast<unsigned>(rng.uniform(Gift64::kRounds));
    EXPECT_EQ(Gift64::inverse_round_function(
                  Gift64::round_function(s, rk, round), rk, round),
              s);
  }
}

}  // namespace
}  // namespace grinch::gift
