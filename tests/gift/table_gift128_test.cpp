#include "gift/table_gift128.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace grinch::gift {
namespace {

TEST(TableGift128, MatchesSpecImplementation) {
  const TableGift128 table_impl;
  Xoshiro256 rng{0x1281};
  for (int i = 0; i < 100; ++i) {
    const Key128 key = rng.key128();
    const State128 pt{rng.block64(), rng.block64()};
    EXPECT_EQ(table_impl.encrypt(pt, key), Gift128::encrypt(pt, key));
  }
}

TEST(TableGift128, PartialRoundsMatchSpec) {
  const TableGift128 table_impl;
  Xoshiro256 rng{0x1282};
  const Key128 key = rng.key128();
  const State128 pt{rng.block64(), rng.block64()};
  for (unsigned r = 0; r <= Gift128::kRounds; r += 5) {
    EXPECT_EQ(table_impl.encrypt_rounds(pt, key, r, nullptr),
              Gift128::encrypt_rounds(pt, key, r));
  }
}

TEST(TableGift128, EmitsSixtyFourAccessesPerRound) {
  const TableGift128 table_impl;
  VectorTraceSink sink;
  Xoshiro256 rng{0x1283};
  (void)table_impl.encrypt({rng.block64(), rng.block64()}, rng.key128(),
                           &sink);
  EXPECT_EQ(sink.accesses().size(),
            Gift128::kRounds * TableGift128::accesses_per_round());
  EXPECT_EQ(sink.rounds_seen(), Gift128::kRounds);
}

TEST(TableGift128, SBoxIndicesAreRoundInputNibbles) {
  const TableGift128 table_impl;
  VectorTraceSink sink;
  Xoshiro256 rng{0x1284};
  const Key128 key = rng.key128();
  const State128 pt{rng.block64(), rng.block64()};
  (void)table_impl.encrypt(pt, key, &sink);
  const auto states = Gift128::round_states(pt, key);
  for (const TableAccess& a : sink.accesses()) {
    if (a.kind != TableAccess::Kind::kSBox) continue;
    EXPECT_EQ(a.index, states[a.round].nibble(a.segment))
        << "round " << int(a.round) << " segment " << int(a.segment);
  }
}

TEST(TableGift128, SharesTheSameSBoxAddressRangeAsGift64) {
  // Both variants index the identical 16-entry table, so a prober set up
  // for GIFT-64 monitors GIFT-128 victims unchanged.
  const TableLayout layout;
  const TableGift128 table_impl{layout};
  VectorTraceSink sink;
  Xoshiro256 rng{0x1285};
  (void)table_impl.encrypt({rng.block64(), rng.block64()}, rng.key128(),
                           &sink);
  for (const TableAccess& a : sink.accesses()) {
    if (a.kind == TableAccess::Kind::kSBox) {
      EXPECT_GE(a.addr, layout.sbox_base);
      EXPECT_LT(a.addr, layout.sbox_base + 16);
    }
  }
}

}  // namespace
}  // namespace grinch::gift
