// Known-answer and property tests for GIFT-128.
#include "gift/gift128.h"

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/hex.h"
#include "common/rng.h"

namespace grinch::gift {
namespace {

State128 state_from_hex(const std::string& hex) {
  EXPECT_EQ(hex.size(), 32u);
  return State128{parse_hex_u64(hex.substr(0, 16)).value(),
                  parse_hex_u64(hex.substr(16, 16)).value()};
}

std::string state_to_hex(const State128& s) {
  return to_hex_u64(s.hi) + to_hex_u64(s.lo);
}

struct Kat {
  const char* key;
  const char* plaintext;
  const char* ciphertext;
};

// Test vectors from the GIFT design document (eprint 2017/622, appendix);
// also used by the GIFT-COFB NIST LWC submission.
constexpr Kat kKats[] = {
    {"00000000000000000000000000000000", "00000000000000000000000000000000",
     "cd0bd738388ad3f668b15a36ceb6ff92"},
    {"fedcba9876543210fedcba9876543210", "fedcba9876543210fedcba9876543210",
     "8422241a6dbf5a9346af468409ee0152"},
    {"d0f5c59a7700d3e799028fa9f90ad837", "e39c141fa57dba43f08a85b6a91f86c1",
     "13ede67cbdcc3dbf400a62d6977265ea"},
};

class Gift128Kat : public ::testing::TestWithParam<Kat> {};

TEST_P(Gift128Kat, EncryptMatchesPublishedVector) {
  const Kat& kat = GetParam();
  Key128 key;
  ASSERT_TRUE(Key128::from_hex(kat.key, key));
  const State128 pt = state_from_hex(kat.plaintext);
  const State128 ct = Gift128::encrypt(pt, key);
  EXPECT_EQ(state_to_hex(ct), kat.ciphertext);
}

TEST_P(Gift128Kat, DecryptMatchesPublishedVector) {
  const Kat& kat = GetParam();
  Key128 key;
  ASSERT_TRUE(Key128::from_hex(kat.key, key));
  const State128 ct = state_from_hex(kat.ciphertext);
  EXPECT_EQ(state_to_hex(Gift128::decrypt(ct, key)), kat.plaintext);
}

INSTANTIATE_TEST_SUITE_P(PublishedVectors, Gift128Kat,
                         ::testing::ValuesIn(kKats));

TEST(Gift128, RoundTripRandomKeys) {
  Xoshiro256 rng{0x128128};
  for (int i = 0; i < 100; ++i) {
    const Key128 key = rng.key128();
    const State128 pt{rng.block64(), rng.block64()};
    EXPECT_EQ(Gift128::decrypt(Gift128::encrypt(pt, key), key), pt);
  }
}

TEST(Gift128, RoundStatesChain) {
  Xoshiro256 rng{41};
  const Key128 key = rng.key128();
  const State128 pt{rng.block64(), rng.block64()};
  const auto states = Gift128::round_states(pt, key);
  ASSERT_EQ(states.size(), Gift128::kRounds + 1);
  EXPECT_EQ(states.front(), pt);
  EXPECT_EQ(states.back(), Gift128::encrypt(pt, key));
  for (unsigned r = 0; r <= Gift128::kRounds; ++r) {
    EXPECT_EQ(states[r], Gift128::encrypt_rounds(pt, key, r));
  }
}

TEST(Gift128, NibbleAccessorCoversBothHalves) {
  State128 s{0xFEDCBA9876543210ull, 0xFEDCBA9876543210ull};
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(s.nibble(i), i);
    EXPECT_EQ(s.nibble(16 + i), i);
  }
}

TEST(Gift128, XorBitTogglesSingleBit) {
  State128 s{};
  s.xor_bit(0, 1);
  EXPECT_EQ(s.lo, 1u);
  s.xor_bit(127, 1);
  EXPECT_EQ(s.hi, std::uint64_t{1} << 63);
  s.xor_bit(127, 1);
  EXPECT_EQ(s.hi, 0u);
}

TEST(Gift128, InverseRoundFunctionInvertsRoundFunction) {
  Xoshiro256 rng{42};
  for (int i = 0; i < 50; ++i) {
    const State128 s{rng.block64(), rng.block64()};
    const RoundKey128 rk{static_cast<std::uint32_t>(rng.next()),
                         static_cast<std::uint32_t>(rng.next())};
    const unsigned round = static_cast<unsigned>(rng.uniform(Gift128::kRounds));
    EXPECT_EQ(Gift128::inverse_round_function(
                  Gift128::round_function(s, rk, round), rk, round),
              s);
  }
}

TEST(Gift128, AvalancheOnPlaintext) {
  Xoshiro256 rng{43};
  const Key128 key = rng.key128();
  double total = 0;
  constexpr int kTrials = 100;
  for (int i = 0; i < kTrials; ++i) {
    State128 pt{rng.block64(), rng.block64()};
    const State128 c1 = Gift128::encrypt(pt, key);
    const unsigned pos = static_cast<unsigned>(rng.uniform(128));
    pt.xor_bit(pos, 1);
    const State128 c2 = Gift128::encrypt(pt, key);
    total += popcount(c1.hi ^ c2.hi) + popcount(c1.lo ^ c2.lo);
  }
  const double mean = total / kTrials;
  EXPECT_GT(mean, 56.0);
  EXPECT_LT(mean, 72.0);
}

}  // namespace
}  // namespace grinch::gift
