// The table-based implementation must be functionally identical to the
// spec implementation and must leak exactly the round-state nibbles.
#include "gift/table_gift.h"

#include <gtest/gtest.h>

#include <set>

#include "common/bits.h"
#include "common/rng.h"
#include "gift/gift64.h"

namespace grinch::gift {
namespace {

TEST(TableLayout, DefaultRowAddressing) {
  const TableLayout layout;
  EXPECT_EQ(layout.sbox_rows(), 16u);
  EXPECT_EQ(layout.sbox_row_addr(0), layout.sbox_base);
  EXPECT_EQ(layout.sbox_row_addr(5), layout.sbox_base + 5);
  EXPECT_EQ(layout.perm_row_addr(0, 0), layout.perm_base);
  EXPECT_EQ(layout.perm_row_addr(1, 0), layout.perm_base + 16 * 8);
}

TEST(TableLayout, PackedCountermeasureLayout) {
  TableLayout layout;
  layout.sbox_entries_per_row = 2;
  EXPECT_EQ(layout.sbox_rows(), 8u);
  EXPECT_EQ(layout.sbox_row_addr(0), layout.sbox_row_addr(1));
  EXPECT_NE(layout.sbox_row_addr(1), layout.sbox_row_addr(2));
}

TEST(TableGift64, MatchesSpecImplementation) {
  const TableGift64 table_impl;
  Xoshiro256 rng{50};
  for (int i = 0; i < 200; ++i) {
    const Key128 key = rng.key128();
    const std::uint64_t pt = rng.block64();
    EXPECT_EQ(table_impl.encrypt(pt, key), Gift64::encrypt(pt, key));
  }
}

TEST(TableGift64, PartialRoundsMatchSpec) {
  const TableGift64 table_impl;
  Xoshiro256 rng{51};
  const Key128 key = rng.key128();
  const std::uint64_t pt = rng.block64();
  for (unsigned r = 0; r <= Gift64::kRounds; ++r) {
    EXPECT_EQ(table_impl.encrypt_rounds(pt, key, r, nullptr),
              Gift64::encrypt_rounds(pt, key, r));
  }
}

TEST(TableGift64, EmitsThirtyTwoAccessesPerRound) {
  const TableGift64 table_impl;
  VectorTraceSink sink;
  Xoshiro256 rng{52};
  (void)table_impl.encrypt(rng.block64(), rng.key128(), &sink);
  EXPECT_EQ(sink.accesses().size(),
            Gift64::kRounds * TableGift64::accesses_per_round());
  EXPECT_EQ(sink.rounds_seen(), Gift64::kRounds);
}

TEST(TableGift64, SBoxAccessIndicesAreTheRoundInputNibbles) {
  const TableGift64 table_impl;
  VectorTraceSink sink;
  Xoshiro256 rng{53};
  const Key128 key = rng.key128();
  const std::uint64_t pt = rng.block64();
  (void)table_impl.encrypt(pt, key, &sink);
  const auto states = Gift64::round_states(pt, key);

  for (const TableAccess& a : sink.accesses()) {
    if (a.kind != TableAccess::Kind::kSBox) continue;
    EXPECT_EQ(a.index, nibble(states[a.round], a.segment))
        << "round " << int(a.round) << " segment " << int(a.segment);
  }
}

TEST(TableGift64, SBoxAddressesFallInsideTable) {
  const TableGift64 table_impl;
  VectorTraceSink sink;
  Xoshiro256 rng{54};
  (void)table_impl.encrypt(rng.block64(), rng.key128(), &sink);
  const TableLayout& layout = table_impl.layout();
  for (const TableAccess& a : sink.accesses()) {
    if (a.kind == TableAccess::Kind::kSBox) {
      EXPECT_GE(a.addr, layout.sbox_base);
      EXPECT_LT(a.addr, layout.sbox_base + 16 * layout.sbox_row_bytes);
    } else {
      EXPECT_GE(a.addr, layout.perm_base);
      EXPECT_LT(a.addr, layout.perm_base + 16 * 16 * layout.perm_row_bytes);
    }
  }
}

TEST(TableGift64, RoundBeginIndicesAreMonotone) {
  const TableGift64 table_impl;
  VectorTraceSink sink;
  Xoshiro256 rng{55};
  (void)table_impl.encrypt(rng.block64(), rng.key128(), &sink);
  for (unsigned r = 0; r < Gift64::kRounds; ++r) {
    EXPECT_EQ(sink.round_begin_index(r),
              r * TableGift64::accesses_per_round());
  }
}

TEST(TableGift64, PackedLayoutStillEncryptsCorrectly) {
  TableLayout layout;
  layout.sbox_entries_per_row = 2;  // countermeasure 1 shape
  layout.sbox_row_bytes = 1;
  const TableGift64 packed{layout};
  Xoshiro256 rng{56};
  const Key128 key = rng.key128();
  const std::uint64_t pt = rng.block64();
  EXPECT_EQ(packed.encrypt(pt, key), Gift64::encrypt(pt, key));
}

TEST(TableGift64, PackedLayoutHalvesDistinctSBoxAddresses) {
  TableLayout layout;
  layout.sbox_entries_per_row = 2;
  const TableGift64 packed{layout};
  VectorTraceSink sink;
  Xoshiro256 rng{57};
  (void)packed.encrypt(rng.block64(), rng.key128(), &sink);
  std::set<std::uint64_t> addrs;
  for (const TableAccess& a : sink.accesses()) {
    if (a.kind == TableAccess::Kind::kSBox) addrs.insert(a.addr);
  }
  EXPECT_LE(addrs.size(), 8u);
}

TEST(TableGift64, ClearResetsSink) {
  const TableGift64 table_impl;
  VectorTraceSink sink;
  Xoshiro256 rng{58};
  (void)table_impl.encrypt(rng.block64(), rng.key128(), &sink);
  ASSERT_FALSE(sink.accesses().empty());
  sink.clear();
  EXPECT_TRUE(sink.accesses().empty());
  EXPECT_EQ(sink.rounds_seen(), 0u);
}

}  // namespace
}  // namespace grinch::gift
