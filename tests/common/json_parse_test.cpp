// The read direction of common/json.h: parse(), the value accessors and
// dump_compact() — the pieces the campaign layer's spec files and JSONL
// records stand on.
#include "common/json.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>

namespace grinch::json {
namespace {

TEST(JsonParse, ScalarsRoundTrip) {
  EXPECT_TRUE(parse("null")->is_null());
  EXPECT_TRUE(parse("true")->as_bool());
  EXPECT_FALSE(parse("false")->as_bool(true));
  EXPECT_EQ(parse("42")->as_u64(), 42u);
  EXPECT_EQ(parse("-7")->as_double(), -7.0);
  EXPECT_DOUBLE_EQ(parse("1.5")->as_double(), 1.5);
  EXPECT_EQ(parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParse, LargeU64SurvivesExactly) {
  // Seeds are full-range u64s; a double round-trip would corrupt them.
  const std::string text = "18446744073709551615";
  const std::optional<Value> v = parse(text);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_u64(), 18446744073709551615ull);
  EXPECT_EQ(v->dump_compact(), text);
}

TEST(JsonParse, ObjectKeepsInsertionOrderAndValues) {
  const std::optional<Value> v =
      parse(R"({"b":1,"a":{"nested":[1,2,3]},"c":"s"})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  ASSERT_EQ(v->members().size(), 3u);
  EXPECT_EQ(v->members()[0].first, "b");
  EXPECT_EQ(v->members()[1].first, "a");
  ASSERT_NE(v->get("a"), nullptr);
  ASSERT_NE(v->get("a")->get("nested"), nullptr);
  EXPECT_EQ(v->get("a")->get("nested")->elements().size(), 3u);
  EXPECT_EQ(v->get("missing"), nullptr);
}

TEST(JsonParse, CompactDumpRoundTripsBytes) {
  const std::string text =
      R"({"name":"x","n":3,"arr":[1,-2,true,null],"s":"a\"b\\c"})";
  const std::optional<Value> v = parse(text);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->dump_compact(), text);
  // Compact and indented dumps describe the same document.
  const std::optional<Value> again = parse(v->dump());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->dump_compact(), text);
}

TEST(JsonParse, EscapesAndUnicode) {
  const std::optional<Value> v = parse(R"("tab\there\nand Aé")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "tab\there\nand A\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  std::string err;
  EXPECT_FALSE(parse("", &err).has_value());
  EXPECT_FALSE(parse("{", &err).has_value());
  EXPECT_FALSE(parse("[1,2,]", &err).has_value());
  EXPECT_FALSE(parse("{\"a\":1,}", &err).has_value());
  EXPECT_FALSE(parse("{\"a\":1}trailing", &err).has_value());
  EXPECT_FALSE(parse(R"({"a":1,"a":2})", &err).has_value());  // dup key
  EXPECT_FALSE(parse("\"unterminated", &err).has_value());
  EXPECT_FALSE(parse("nul", &err).has_value());
  EXPECT_FALSE(parse("01", &err).has_value());
  // The diagnostic carries an offset.
  EXPECT_NE(err.find("offset"), std::string::npos);
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(parse(deep).has_value());
}

TEST(JsonParse, AccessorFallbacksOnKindMismatch) {
  const std::optional<Value> v = parse(R"({"s":"x","n":3})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->get("s")->as_u64(7), 7u);
  EXPECT_EQ(v->get("n")->as_string("fb"), "fb");
  EXPECT_FALSE(v->get("n")->as_bool(false));
}

}  // namespace
}  // namespace grinch::json
