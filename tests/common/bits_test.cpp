#include "common/bits.h"

#include <gtest/gtest.h>

namespace grinch {
namespace {

TEST(Bits, BitExtraction) {
  EXPECT_EQ(bit(0b1010u, 0), 0u);
  EXPECT_EQ(bit(0b1010u, 1), 1u);
  EXPECT_EQ(bit(0b1010u, 2), 0u);
  EXPECT_EQ(bit(0b1010u, 3), 1u);
  EXPECT_EQ(bit(std::uint64_t{1} << 63, 63), 1u);
}

TEST(Bits, WithBitSetsAndClears) {
  EXPECT_EQ(with_bit(0u, 3, 1), 8u);
  EXPECT_EQ(with_bit(0xFFu, 0, 0), 0xFEu);
  EXPECT_EQ(with_bit(0xFFu, 7, 1), 0xFFu);  // idempotent
  EXPECT_EQ(with_bit(std::uint64_t{0}, 63, 1), std::uint64_t{1} << 63);
}

TEST(Bits, FlipBit) {
  EXPECT_EQ(flip_bit(0u, 0), 1u);
  EXPECT_EQ(flip_bit(1u, 0), 0u);
  EXPECT_EQ(flip_bit(flip_bit(0xDEADu, 5), 5), 0xDEADu);
}

TEST(Bits, Rotr16) {
  EXPECT_EQ(rotr(0x0001u, 1, 16), 0x8000u);
  EXPECT_EQ(rotr(0x0001u, 16, 16), 0x0001u);
  EXPECT_EQ(rotr(0x1234u, 0, 16), 0x1234u);
  EXPECT_EQ(rotr(0x1234u, 4, 16), 0x4123u);
  EXPECT_EQ(rotr(0x0003u, 2, 16), 0xC000u);
  EXPECT_EQ(rotr(0x0001u, 12, 16), 0x0010u);
}

TEST(Bits, RotlInvertsRotr) {
  for (unsigned r = 0; r < 16; ++r) {
    EXPECT_EQ(rotl(rotr(0xBEEFu, r, 16), r, 16), 0xBEEFu) << r;
  }
}

TEST(Bits, Rotr64) {
  EXPECT_EQ(rotr64(1, 1), std::uint64_t{1} << 63);
  EXPECT_EQ(rotr64(0xF0F0F0F0F0F0F0F0ull, 64), 0xF0F0F0F0F0F0F0F0ull);
  EXPECT_EQ(rotr64(0x123456789ABCDEF0ull, 32), 0x9ABCDEF012345678ull);
}

TEST(Bits, NibbleAccess) {
  const std::uint64_t v = 0xFEDCBA9876543210ull;
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(nibble(v, i), i);
}

TEST(Bits, WithNibble) {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < 16; ++i) v = with_nibble(v, i, i);
  EXPECT_EQ(v, 0xFEDCBA9876543210ull);
  EXPECT_EQ(with_nibble(v, 0, 0xF) & 0xF, 0xFu);
  EXPECT_EQ(with_nibble(v, 15, 0x0) >> 60, 0x0u);
}

TEST(Bits, Popcount) {
  EXPECT_EQ(popcount(0u), 0u);
  EXPECT_EQ(popcount(0xFFu), 8u);
  EXPECT_EQ(popcount(std::uint64_t{0x8000000000000001ull}), 2u);
}

TEST(Bits, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(1024), 10u);
}

}  // namespace
}  // namespace grinch
