#include "common/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace grinch {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRespectsBound) {
  Xoshiro256 rng{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
    EXPECT_EQ(rng.uniform(1), 0u);
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  Xoshiro256 rng{8};
  std::array<int, 16> buckets{};
  constexpr int kDraws = 16000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.uniform(16)];
  for (int c : buckets) {
    EXPECT_GT(c, 800);   // expectation 1000; loose 4-sigma-ish bounds
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, NibbleIsFourBits) {
  Xoshiro256 rng{9};
  std::set<unsigned> seen;
  for (int i = 0; i < 1000; ++i) {
    const unsigned n = rng.nibble();
    EXPECT_LT(n, 16u);
    seen.insert(n);
  }
  EXPECT_EQ(seen.size(), 16u);  // all 16 values show up in 1000 draws
}

TEST(Rng, CoinIsBinaryAndBalanced) {
  Xoshiro256 rng{10};
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    const unsigned c = rng.coin();
    EXPECT_LE(c, 1u);
    ones += static_cast<int>(c);
  }
  EXPECT_GT(ones, 4700);
  EXPECT_LT(ones, 5300);
}

TEST(Rng, SplitProducesIndependentStream) {
  Xoshiro256 parent{11};
  Xoshiro256 child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next() == child.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, Key128DrawsDiffer) {
  Xoshiro256 rng{12};
  EXPECT_NE(rng.key128(), rng.key128());
}

TEST(SplitMix, KnownFirstOutputs) {
  // Reference outputs for seed 0 (Steele, Lea & Flood / Vigna reference).
  SplitMix64 sm{0};
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ull);
  EXPECT_EQ(sm.next(), 0x06C45D188009454Full);
}

}  // namespace
}  // namespace grinch
