#include "common/table.h"

#include <gtest/gtest.h>

namespace grinch {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t{"Demo"};
  t.set_header({"a", "bbb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("| 333 "), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(AsciiTable, ColumnsAlignToWidestCell) {
  AsciiTable t{""};
  t.set_header({"x"});
  t.add_row({"wide-cell"});
  const std::string out = t.render();
  // The header row must be padded to the width of "wide-cell".
  EXPECT_NE(out.find("| x         |"), std::string::npos);
}

TEST(AsciiTable, EmptyTableStillRendersRules) {
  AsciiTable t{"Empty"};
  t.set_header({"only"});
  const std::string out = t.render();
  EXPECT_NE(out.find("+"), std::string::npos);
  EXPECT_EQ(t.rows(), 0u);
}

}  // namespace
}  // namespace grinch
