#include "common/logging.h"

#include <gtest/gtest.h>

namespace grinch {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, LevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Logging, DefaultIsWarn) {
  // The library must stay quiet on info/debug by default so bench output
  // is machine-parseable.
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(Logging, StreamInterfaceAcceptsMixedTypes) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);  // discard output; just exercise the path
  log_debug() << "value " << 42 << " hex " << 0.5;
  log_info() << "info";
  log_warn() << "warn";
  log_error() << "error";
  // Reaching here without crashes is the assertion.
  SUCCEED();
}

TEST(Logging, OffSuppressesEverything) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  log_message(LogLevel::kError, "must not crash nor print");
  SUCCEED();
}

}  // namespace
}  // namespace grinch
