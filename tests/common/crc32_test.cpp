// CRC-32 (IEEE reflected, zlib-compatible) — the integrity check under
// campaign checkpoints and flushed-result prefixes.
#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace grinch {
namespace {

TEST(Crc32, KnownVectors) {
  // The classic zlib check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "incremental update must equal one-shot";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t state = Crc32::kInit;
    state = Crc32::update(state, data.data(), split);
    state = Crc32::update(state, data.data() + split, data.size() - split);
    EXPECT_EQ(Crc32::finalize(state), crc32(data)) << "split " << split;
  }
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::string data = "checkpoint payload bytes";
  const std::uint32_t good = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(data[i] ^ 1);
    EXPECT_NE(crc32(data), good) << "flip at " << i;
    data[i] = static_cast<char>(data[i] ^ 1);
  }
}

}  // namespace
}  // namespace grinch
