#include "common/hex.h"

#include <gtest/gtest.h>

namespace grinch {
namespace {

TEST(Hex, EncodeU64) {
  EXPECT_EQ(to_hex_u64(0, 16), "0000000000000000");
  EXPECT_EQ(to_hex_u64(0xDEADBEEF, 8), "deadbeef");
  EXPECT_EQ(to_hex_u64(0xF, 1), "f");
  EXPECT_EQ(to_hex_u64(0x0123456789ABCDEFull), "0123456789abcdef");
}

TEST(Hex, ParseU64) {
  EXPECT_EQ(parse_hex_u64("deadbeef").value(), 0xDEADBEEFu);
  EXPECT_EQ(parse_hex_u64("DEADBEEF").value(), 0xDEADBEEFu);
  EXPECT_EQ(parse_hex_u64("0").value(), 0u);
  EXPECT_EQ(parse_hex_u64("ffffffffffffffff").value(), ~std::uint64_t{0});
}

TEST(Hex, ParseU64RejectsBadInput) {
  EXPECT_FALSE(parse_hex_u64("").has_value());
  EXPECT_FALSE(parse_hex_u64("xyz").has_value());
  EXPECT_FALSE(parse_hex_u64("0123456789abcdef0").has_value());  // 17 digits
}

TEST(Hex, BytesRoundTrip) {
  const std::vector<std::uint8_t> bytes{0x00, 0xFF, 0x12, 0xAB};
  const std::string hex = to_hex_bytes(bytes);
  EXPECT_EQ(hex, "00ff12ab");
  EXPECT_EQ(parse_hex_bytes(hex).value(), bytes);
}

TEST(Hex, ParseBytesRejectsOddLengthAndBadDigits) {
  EXPECT_FALSE(parse_hex_bytes("abc").has_value());
  EXPECT_FALSE(parse_hex_bytes("zz").has_value());
  EXPECT_TRUE(parse_hex_bytes("").has_value());
  EXPECT_TRUE(parse_hex_bytes("").value().empty());
}

}  // namespace
}  // namespace grinch
