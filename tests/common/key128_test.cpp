#include "common/key128.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace grinch {
namespace {

TEST(Key128, BitAccessCoversBothHalves) {
  const Key128 k{0x8000000000000001ull, 0x0000000000000003ull};
  EXPECT_EQ(k.bit(0), 1u);
  EXPECT_EQ(k.bit(1), 1u);
  EXPECT_EQ(k.bit(2), 0u);
  EXPECT_EQ(k.bit(64), 1u);
  EXPECT_EQ(k.bit(127), 1u);
  EXPECT_EQ(k.bit(126), 0u);
}

TEST(Key128, WithBitRoundTripsEveryPosition) {
  Key128 k;
  for (unsigned pos = 0; pos < 128; ++pos) {
    const Key128 set = k.with_bit(pos, 1);
    EXPECT_EQ(set.bit(pos), 1u) << pos;
    EXPECT_EQ(set.with_bit(pos, 0), k) << pos;
  }
}

TEST(Key128, Word16Layout) {
  const Key128 k{0xFFFFEEEEDDDDCCCCull, 0xBBBBAAAA99998888ull};
  EXPECT_EQ(k.word16(0), 0x8888);
  EXPECT_EQ(k.word16(1), 0x9999);
  EXPECT_EQ(k.word16(2), 0xAAAA);
  EXPECT_EQ(k.word16(3), 0xBBBB);
  EXPECT_EQ(k.word16(4), 0xCCCC);
  EXPECT_EQ(k.word16(5), 0xDDDD);
  EXPECT_EQ(k.word16(6), 0xEEEE);
  EXPECT_EQ(k.word16(7), 0xFFFF);
}

TEST(Key128, WithWord16ReplacesOnlyTargetWord) {
  Xoshiro256 rng{10};
  const Key128 k = rng.key128();
  for (unsigned w = 0; w < 8; ++w) {
    const Key128 mod = k.with_word16(w, 0x1234);
    EXPECT_EQ(mod.word16(w), 0x1234);
    for (unsigned o = 0; o < 8; ++o) {
      if (o != w) EXPECT_EQ(mod.word16(o), k.word16(o));
    }
  }
}

TEST(Key128, Word32Layout) {
  const Key128 k{0xFFFFEEEEDDDDCCCCull, 0xBBBBAAAA99998888ull};
  EXPECT_EQ(k.word32(0), 0x99998888u);
  EXPECT_EQ(k.word32(1), 0xBBBBAAAAu);
  EXPECT_EQ(k.word32(2), 0xDDDDCCCCu);
  EXPECT_EQ(k.word32(3), 0xFFFFEEEEu);
}

TEST(Key128, Rotr32MovesLowWordToTop) {
  const Key128 k{0xFFFFEEEEDDDDCCCCull, 0xBBBBAAAA99998888ull};
  const Key128 r = k.rotr32();
  EXPECT_EQ(r.word32(3), 0x99998888u);
  EXPECT_EQ(r.word32(2), 0xFFFFEEEEu);
  EXPECT_EQ(r.word32(1), 0xDDDDCCCCu);
  EXPECT_EQ(r.word32(0), 0xBBBBAAAAu);
}

TEST(Key128, Rotr32FourTimesIsIdentity) {
  Xoshiro256 rng{11};
  const Key128 k = rng.key128();
  EXPECT_EQ(k.rotr32().rotr32().rotr32().rotr32(), k);
}

TEST(Key128, HexRoundTrip) {
  const Key128 k{0x0123456789ABCDEFull, 0xFEDCBA9876543210ull};
  EXPECT_EQ(k.to_hex(), "0123456789abcdeffedcba9876543210");
  Key128 parsed;
  ASSERT_TRUE(Key128::from_hex(k.to_hex(), parsed));
  EXPECT_EQ(parsed, k);
}

TEST(Key128, FromHexRejectsBadInput) {
  Key128 k;
  EXPECT_FALSE(Key128::from_hex("", k));
  EXPECT_FALSE(Key128::from_hex("1234", k));
  EXPECT_FALSE(Key128::from_hex(std::string(32, 'g'), k));
  EXPECT_FALSE(Key128::from_hex(std::string(33, '0'), k));
}

TEST(Key128, BytesLittleEndian) {
  const Key128 k{0x0123456789ABCDEFull, 0xFEDCBA9876543210ull};
  const auto b = k.to_bytes_le();
  EXPECT_EQ(b[0], 0x10);
  EXPECT_EQ(b[7], 0xFE);
  EXPECT_EQ(b[8], 0xEF);
  EXPECT_EQ(b[15], 0x01);
}

TEST(Key128, XorIsSelfInverse) {
  Xoshiro256 rng{12};
  const Key128 a = rng.key128();
  const Key128 b = rng.key128();
  EXPECT_EQ((a ^ b) ^ b, a);
}

}  // namespace
}  // namespace grinch
