#include "common/stats.h"

#include <gtest/gtest.h>

namespace grinch {
namespace {

TEST(SampleStats, BasicMoments) {
  SampleStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), 1.4142, 1e-3);
}

TEST(SampleStats, SingleSample) {
  SampleStats s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleStats, PercentileEndpoints) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
}

TEST(SampleStats, EmptyIsReported) {
  SampleStats s;
  EXPECT_TRUE(s.empty());
  s.add(1.0);
  EXPECT_FALSE(s.empty());
}

TEST(EffortCell, RendersMeanOfSuccesses) {
  EffortCell cell{1000000};
  cell.add_success(90);
  cell.add_success(110);
  EXPECT_EQ(cell.render(), "100");
  EXPECT_EQ(cell.successes(), 2u);
  EXPECT_EQ(cell.dropouts(), 0u);
}

TEST(EffortCell, RendersDropoutMarker) {
  EffortCell cell{1000000};
  cell.add_dropout();
  cell.add_dropout();
  EXPECT_TRUE(cell.all_dropped());
  EXPECT_EQ(cell.render(), ">1000000");
}

TEST(EffortCell, MixedSuccessAndDropoutGetsAsterisk) {
  EffortCell cell{1000};
  cell.add_success(500);
  cell.add_dropout();
  EXPECT_FALSE(cell.all_dropped());
  EXPECT_EQ(cell.render(), "500*");
}

TEST(EffortCell, EmptyCellRendersDash) {
  EffortCell cell{1000};
  EXPECT_EQ(cell.render(), "-");
}

}  // namespace
}  // namespace grinch
