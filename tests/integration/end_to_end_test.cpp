// Cross-module integration tests: cipher + cache + platforms + attack +
// countermeasures driven together, the way a downstream user would.
#include <gtest/gtest.h>

#include "attack/grinch.h"
#include "cachesim/hierarchy.h"
#include "common/rng.h"
#include "common/stats.h"
#include "countermeasures/hardened_schedule.h"
#include "countermeasures/packed_sbox.h"
#include "gift/gift64.h"
#include "soc/platform.h"
#include "soc/victim.h"

namespace grinch {
namespace {

TEST(Integration, VictimAccessesLandInTheSharedCache) {
  gift::TableGift64 cipher;
  cachesim::Cache cache{cachesim::CacheConfig::paper_default()};
  soc::VictimProcess victim{cipher, cache, soc::VictimCostModel{}};
  Xoshiro256 rng{1};
  victim.begin_encryption(rng.block64(), rng.key128());
  victim.finish();
  // With 1-byte lines the 256-row PermBits table folds into only 8 sets
  // (stride 8 over 64 sets), overflowing 16 ways — the victim generates
  // genuine eviction pressure, one of the paper's noise sources.
  EXPECT_GT(cache.stats().evictions, 0u);
  // But lines touched during the *last* round cannot have been evicted
  // (16-way LRU, at most 2 fills per set afterwards).
  const auto& trace = victim.trace();
  ASSERT_GE(trace.size(), 32u);
  for (std::size_t i = trace.size() - 32; i < trace.size(); ++i) {
    EXPECT_TRUE(cache.contains(trace[i].access.addr));
  }
}

TEST(Integration, DirectProbeAndMpSocRecoverTheSameKey) {
  Xoshiro256 rng{2};
  const Key128 key = rng.key128();

  soc::DirectProbePlatform direct{soc::DirectProbePlatform::Config{}, key};
  attack::GrinchConfig cfg;
  cfg.seed = 21;
  attack::GrinchAttack a1{direct, cfg};
  const auto r1 = a1.run();

  soc::MpSoc mpsoc{soc::MpSoc::Config{}, key};
  cfg.seed = 22;
  attack::GrinchAttack a2{mpsoc, cfg};
  const auto r2 = a2.run();

  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  EXPECT_EQ(r1.recovered_key, r2.recovered_key);
  EXPECT_EQ(r1.recovered_key, key);
}

TEST(Integration, SingleCoreSoCFirstRoundAttackAtLowClock) {
  // At 14 MHz the 10 ms quantum covers rounds 1-2 completely, so the
  // attacker's scheduled probe captures the monitored round (plus round-1
  // dirt, since the flush can only happen before the victim's quantum).
  Xoshiro256 rng{3};
  const Key128 key = rng.key128();
  soc::SingleCoreSoC::Config cfg;
  cfg.rtos.clock_mhz = 14.0;
  soc::SingleCoreSoC soc{cfg, key};

  attack::GrinchConfig acfg;
  acfg.stages = 1;
  acfg.exploit_all_segments = true;  // each quantum costs 10 ms: be greedy
  acfg.max_encryptions = 30000;
  acfg.seed = 31;
  attack::GrinchAttack attack{soc, acfg};
  const auto r = attack.run();
  ASSERT_TRUE(r.success);
  const gift::RoundKey64 expected = gift::extract_round_key64(key);
  EXPECT_EQ(r.round_keys[0].u, expected.u);
  EXPECT_EQ(r.round_keys[0].v, expected.v);
}

TEST(Integration, AttackSucceedsUnderEveryReplacementPolicy) {
  Xoshiro256 rng{4};
  const Key128 key = rng.key128();
  for (auto policy :
       {cachesim::Replacement::kLru, cachesim::Replacement::kFifo,
        cachesim::Replacement::kPlru, cachesim::Replacement::kRandom}) {
    soc::DirectProbePlatform::Config cfg;
    cfg.cache.replacement = policy;
    soc::DirectProbePlatform platform{cfg, key};
    attack::GrinchConfig acfg;
    acfg.stages = 1;
    acfg.seed = 41;
    attack::GrinchAttack attack{platform, acfg};
    EXPECT_TRUE(attack.run().success) << cachesim::to_string(policy);
  }
}

TEST(Integration, PackedSBoxProtectsTheMpSocToo) {
  Xoshiro256 rng{5};
  const Key128 key = rng.key128();
  soc::MpSoc::Config cfg;
  cfg.layout = cm::packed_sbox_layout();
  cfg.cache = cm::packed_sbox_cache();
  soc::MpSoc mpsoc{cfg, key};
  attack::GrinchConfig acfg;
  acfg.max_encryptions = 5000;
  acfg.seed = 51;
  attack::GrinchAttack attack{mpsoc, acfg};
  const auto r = attack.run();
  EXPECT_FALSE(r.success);
}

TEST(Integration, HardenedVictimLeaksOnlyUselessBits) {
  Xoshiro256 rng{6};
  const Key128 key = rng.key128();
  soc::DirectProbePlatform::Config cfg;
  cfg.round_key_provider = cm::hardened_provider();
  soc::DirectProbePlatform platform{cfg, key};
  attack::GrinchConfig acfg;
  acfg.seed = 61;
  attack::GrinchAttack attack{platform, acfg};
  const auto r = attack.run();
  // All four stages converge (the leak is intact)...
  ASSERT_EQ(r.round_keys.size(), 4u);
  // ...and they really are the effective (whitened) sub-keys...
  const auto effective = cm::hardened_round_keys(key, 4);
  for (unsigned s = 0; s < 4; ++s) {
    EXPECT_EQ(r.round_keys[s].u, effective[s].u) << "stage " << s;
    EXPECT_EQ(r.round_keys[s].v, effective[s].v) << "stage " << s;
  }
  // ...but the assembled master key fails verification.
  EXPECT_FALSE(r.key_verified);
  EXPECT_FALSE(r.success);
}

TEST(Integration, TwoLevelHierarchyStillDistinguishesHits) {
  // Threat-model sanity on a hierarchy: after an L1 flush the reload is
  // served by L2/DRAM and stays distinguishable from an L1 hit.
  cachesim::HierarchyConfig hcfg;
  hcfg.l1 = cachesim::CacheConfig::paper_default();
  cachesim::CacheConfig l2 = cachesim::CacheConfig::paper_default();
  l2.num_sets = 256;
  l2.hit_latency = 10;
  l2.miss_latency = 40;
  hcfg.l2 = l2;
  cachesim::CacheHierarchy hierarchy{hcfg};

  const gift::TableLayout layout;
  (void)hierarchy.access(layout.sbox_row_addr(3));
  const auto hit = hierarchy.access(layout.sbox_row_addr(3));
  EXPECT_EQ(hit.level, cachesim::HitLevel::kL1);
  hierarchy.l1().flush_line(layout.sbox_row_addr(3));
  const auto l2_hit = hierarchy.access(layout.sbox_row_addr(3));
  EXPECT_EQ(l2_hit.level, cachesim::HitLevel::kL2);
  EXPECT_GT(l2_hit.latency, hit.latency);
}

TEST(Integration, EffortStatisticsMatchPaperScale) {
  // Distributional check over several keys: the first-round attack on the
  // paper-default platform lands in the ~40..300 encryption range (paper:
  // ~96), never drops out, and the full key stays under 400 on average.
  Xoshiro256 rng{7};
  SampleStats first_round;
  SampleStats full_key;
  for (int t = 0; t < 8; ++t) {
    const Key128 key = rng.key128();
    soc::DirectProbePlatform platform{soc::DirectProbePlatform::Config{}, key};
    attack::GrinchConfig acfg;
    acfg.seed = rng.next();
    attack::GrinchAttack attack{platform, acfg};
    const auto r = attack.run();
    ASSERT_TRUE(r.success);
    full_key.add(static_cast<double>(r.total_encryptions));
    first_round.add(static_cast<double>(r.stages[0].encryptions));
  }
  EXPECT_GT(first_round.mean(), 30.0);
  EXPECT_LT(first_round.mean(), 300.0);
  EXPECT_LT(full_key.mean(), 400.0);
}

}  // namespace
}  // namespace grinch
