// Memory-hierarchy attack tests (§V future work of the paper).
#include "soc/hierarchy_platform.h"

#include <gtest/gtest.h>

#include <vector>

#include "attack/grinch.h"
#include "common/bits.h"
#include "common/rng.h"
#include "gift/gift64.h"

namespace grinch::soc {
namespace {

TEST(HierarchyPlatform, CleanObservationMatchesMonitoredRound) {
  Xoshiro256 rng{1};
  const Key128 key = rng.key128();
  HierarchyPlatform platform{HierarchyPlatform::Config{}, key};
  const std::uint64_t pt = rng.block64();
  const Observation obs = platform.observe(pt, 0);

  const auto states = gift::Gift64::round_states(pt, key);
  target::LineSet expected(16);
  for (unsigned s = 0; s < 16; ++s) expected[nibble(states[1], s)] = true;
  EXPECT_EQ(obs.present, expected);
}

TEST(HierarchyPlatform, L1EvictOnlyStillDistinguishes) {
  Xoshiro256 rng{2};
  const Key128 key = rng.key128();
  HierarchyPlatform::Config cfg;
  cfg.flush = FlushCapability::kL1EvictOnly;
  HierarchyPlatform platform{cfg, key};
  // Warm-up observation fills L2 with the monitored lines; the second
  // observation is the telling one (untouched lines answer from L2, not
  // DRAM, and must still read as absent).
  (void)platform.observe(rng.block64(), 0);
  const std::uint64_t pt = rng.block64();
  const Observation obs = platform.observe(pt, 0);

  const auto states = gift::Gift64::round_states(pt, key);
  target::LineSet expected(16);
  for (unsigned s = 0; s < 16; ++s) expected[nibble(states[1], s)] = true;
  EXPECT_EQ(obs.present, expected);
}

TEST(HierarchyPlatform, FullAttackThroughTheHierarchy) {
  Xoshiro256 rng{3};
  const Key128 key = rng.key128();
  for (FlushCapability cap :
       {FlushCapability::kClflush, FlushCapability::kL1EvictOnly}) {
    HierarchyPlatform::Config cfg;
    cfg.flush = cap;
    HierarchyPlatform platform{cfg, key};
    attack::GrinchConfig acfg;
    acfg.seed = 31;
    attack::GrinchAttack attack{platform, acfg};
    const auto r = attack.run();
    ASSERT_TRUE(r.success) << "capability " << static_cast<int>(cap);
    EXPECT_EQ(r.recovered_key, key);
    EXPECT_LT(r.total_encryptions, 500u);
  }
}

TEST(HierarchyPlatform, ObserveBatchBitIdenticalToScalar) {
  Xoshiro256 rng{5};
  const Key128 key = rng.key128();
  HierarchyPlatform scalar{HierarchyPlatform::Config{}, key};
  HierarchyPlatform batched{HierarchyPlatform::Config{}, key};
  std::vector<std::uint64_t> pts;
  for (unsigned i = 0; i < 6; ++i) pts.push_back(rng.block64());
  target::ObservationBatch batch;
  batched.observe_batch(pts, 0, batch);
  ASSERT_EQ(batch.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Observation o = scalar.observe(pts[i], 0);
    EXPECT_EQ(batch[i].present, o.present) << i;
    EXPECT_EQ(batch[i].probed_after_round, o.probed_after_round);
    EXPECT_EQ(batch[i].attacker_cycles, o.attacker_cycles);
  }
  EXPECT_EQ(batched.last_ciphertext(), scalar.last_ciphertext());
}

TEST(HierarchyPlatform, SingleLevelConfigWorksToo) {
  Xoshiro256 rng{4};
  const Key128 key = rng.key128();
  HierarchyPlatform::Config cfg;
  cfg.hierarchy.l2.reset();
  HierarchyPlatform platform{cfg, key};
  attack::GrinchConfig acfg;
  acfg.stages = 1;
  acfg.seed = 41;
  attack::GrinchAttack attack{platform, acfg};
  const auto r = attack.run();
  ASSERT_TRUE(r.success);
  const gift::RoundKey64 truth = gift::extract_round_key64(key);
  EXPECT_EQ(r.round_keys[0].u, truth.u);
  EXPECT_EQ(r.round_keys[0].v, truth.v);
}

}  // namespace
}  // namespace grinch::soc
