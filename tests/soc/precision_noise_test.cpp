// Tests for the §III-D extensions: precision probing and noise injection.
#include <gtest/gtest.h>

#include "attack/grinch.h"
#include "common/bits.h"
#include "common/rng.h"
#include "gift/gift64.h"
#include "soc/platform.h"
#include "soc/victim.h"

namespace grinch::soc {
namespace {

TEST(RunUntilAccess, StopsMidRound) {
  gift::TableGift64 cipher;
  cachesim::Cache cache{cachesim::CacheConfig::paper_default()};
  VictimProcess victim{cipher, cache, VictimCostModel{}};
  Xoshiro256 rng{1};
  victim.begin_encryption(rng.block64(), rng.key128());
  victim.run_until_access(5);
  EXPECT_EQ(victim.accesses_into_round(), 5u);
  EXPECT_EQ(victim.rounds_done(), 0u);
  // Idempotent for smaller counts.
  victim.run_until_access(3);
  EXPECT_EQ(victim.accesses_into_round(), 5u);
  // A full-round request completes the round.
  victim.run_until_access(32);
  EXPECT_EQ(victim.rounds_done(), 1u);
}

TEST(PreciseProbe, SeesOnlySegmentsUpToFocus) {
  Xoshiro256 rng{2};
  const Key128 key = rng.key128();
  DirectProbePlatform::Config cfg;
  cfg.precise_probe = true;
  DirectProbePlatform platform{cfg, key};
  const std::uint64_t pt = rng.block64();

  platform.focus_segment(0);
  const Observation obs = platform.observe(pt, 0);
  // Exactly the monitored round's segment-0 access is present.
  const auto states = gift::Gift64::round_states(pt, key);
  unsigned count = 0;
  for (unsigned i = 0; i < 16; ++i) count += obs.present[i];
  EXPECT_EQ(count, 1u);
  EXPECT_TRUE(obs.present[nibble(states[1], 0)]);
}

TEST(PreciseProbe, LaterFocusSeesMoreSegments) {
  Xoshiro256 rng{3};
  const Key128 key = rng.key128();
  DirectProbePlatform::Config cfg;
  cfg.precise_probe = true;
  DirectProbePlatform platform{cfg, key};
  const std::uint64_t pt = rng.block64();

  platform.focus_segment(15);
  const Observation obs = platform.observe(pt, 0);
  const auto states = gift::Gift64::round_states(pt, key);
  target::LineSet expected(16);
  for (unsigned s = 0; s < 16; ++s) expected[nibble(states[1], s)] = true;
  EXPECT_EQ(obs.present, expected);
}

TEST(PreciseProbe, AttackConvergesFasterThanRoundBoundary) {
  Xoshiro256 rng{4};
  const Key128 key = rng.key128();
  attack::GrinchConfig acfg;
  acfg.stages = 1;
  acfg.seed = 99;

  DirectProbePlatform::Config precise_cfg;
  precise_cfg.precise_probe = true;
  DirectProbePlatform precise{precise_cfg, key};
  attack::GrinchAttack a1{precise, acfg};
  const auto r1 = a1.run();

  DirectProbePlatform coarse{DirectProbePlatform::Config{}, key};
  attack::GrinchAttack a2{coarse, acfg};
  const auto r2 = a2.run();

  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  EXPECT_LT(r1.total_encryptions, r2.total_encryptions);
  const gift::RoundKey64 expected = gift::extract_round_key64(key);
  EXPECT_EQ(r1.round_keys[0].u, expected.u);
  EXPECT_EQ(r1.round_keys[0].v, expected.v);
}

TEST(Noise, VotedEliminationRecoversCorrectKeyUnderModerateTraffic) {
  // At moderate eviction noise (≈0.5-3% false-absent rate) hard
  // elimination occasionally mis-converges; the absent-vote threshold
  // suppresses that.
  Xoshiro256 rng{5};
  const Key128 key = rng.key128();
  DirectProbePlatform::Config cfg;
  cfg.noise_accesses_per_round = 512;
  DirectProbePlatform platform{cfg, key};
  attack::GrinchConfig acfg;
  acfg.stages = 1;
  acfg.max_encryptions = 50000;
  acfg.seed = 55;
  acfg.elimination_threshold = 3;
  attack::GrinchAttack attack{platform, acfg};
  const auto r = attack.run();
  ASSERT_TRUE(r.success);
  const gift::RoundKey64 expected = gift::extract_round_key64(key);
  EXPECT_EQ(r.round_keys[0].u, expected.u);
  EXPECT_EQ(r.round_keys[0].v, expected.v);
}

TEST(Noise, StatisticalEliminationSurvivesHeavyTraffic) {
  // At ~37% false-absent rate no elimination-on-absence can stay correct
  // across 16 segments; the maximum-likelihood mode compares absent
  // *rates* (the true candidate always has the lowest) and recovers the
  // right key.
  Xoshiro256 rng{52};
  const Key128 key = rng.key128();
  DirectProbePlatform::Config cfg;
  cfg.noise_accesses_per_round = 1024;
  DirectProbePlatform platform{cfg, key};
  attack::GrinchConfig acfg;
  acfg.stages = 1;
  acfg.max_encryptions = 50000;
  acfg.seed = 56;
  acfg.statistical_elimination = true;
  attack::GrinchAttack attack{platform, acfg};
  const auto r = attack.run();
  ASSERT_TRUE(r.success);
  const gift::RoundKey64 expected = gift::extract_round_key64(key);
  EXPECT_EQ(r.round_keys[0].u, expected.u);
  EXPECT_EQ(r.round_keys[0].v, expected.v);
}

TEST(Noise, HardEliminationCanMisconvergeUnderHeavyTraffic) {
  // Documents the failure mode the voted mode exists for: with heavy
  // eviction noise, threshold-1 elimination either mis-recovers or drops
  // out — it must not be trusted blindly on noisy platforms.
  Xoshiro256 rng{51};
  const Key128 key = rng.key128();
  DirectProbePlatform::Config cfg;
  cfg.noise_accesses_per_round = 2048;
  DirectProbePlatform platform{cfg, key};
  attack::GrinchConfig acfg;
  acfg.stages = 1;
  acfg.max_encryptions = 50000;
  acfg.seed = 55;
  attack::GrinchAttack attack{platform, acfg};
  const auto r = attack.run();
  const gift::RoundKey64 expected = gift::extract_round_key64(key);
  const bool correct = r.success && r.round_keys.size() == 1 &&
                       r.round_keys[0].u == expected.u &&
                       r.round_keys[0].v == expected.v;
  const bool noisy_run = !r.success || r.stages[0].noise_restarts > 0;
  EXPECT_TRUE(!correct || noisy_run);
}

TEST(Noise, NeverCreatesFalsePresences) {
  // The noise address space is disjoint from the S-Box table: under
  // Flush+Reload it can evict lines (false absents) but never make an
  // untouched line look touched.
  Xoshiro256 rng{6};
  const Key128 key = rng.key128();
  DirectProbePlatform::Config cfg;
  cfg.noise_accesses_per_round = 4096;
  DirectProbePlatform platform{cfg, key};
  const std::uint64_t pt = rng.block64();
  const Observation obs = platform.observe(pt, 0);
  const auto states = gift::Gift64::round_states(pt, key);
  std::vector<bool> touched(16, false);
  for (unsigned s = 0; s < 16; ++s) touched[nibble(states[1], s)] = true;
  for (unsigned i = 0; i < 16; ++i) {
    if (obs.present[i]) EXPECT_TRUE(touched[i]) << "index " << i;
  }
}

TEST(Noise, DeterministicAcrossIdenticalPlatforms) {
  Xoshiro256 rng{7};
  const Key128 key = rng.key128();
  DirectProbePlatform::Config cfg;
  cfg.noise_accesses_per_round = 512;
  DirectProbePlatform p1{cfg, key};
  DirectProbePlatform p2{cfg, key};
  const std::uint64_t pt = rng.block64();
  EXPECT_EQ(p1.observe(pt, 0).present, p2.observe(pt, 0).present);
}

// ------------------------------------------------------- NoiseAddressSpace --
// The noise region (target/fault_model.h) is documented to behave exactly
// like the fault vocabulary's false-absent mode: it must alias every
// monitored cache set (so traffic can evict monitored lines) while staying
// disjoint from both the victim's tables (no fake presences) and the
// Prime+Probe eviction-set region (no self-eviction of the attacker).

TEST(NoiseAddressSpace, StartsAboveEveryVictimTable) {
  const gift::TableLayout layout;
  const std::uint64_t sbox_end =
      layout.sbox_base + layout.sbox_rows() * layout.sbox_row_bytes;
  const std::uint64_t perm_end =
      layout.perm_base + 16ull * 16ull * layout.perm_row_bytes;
  EXPECT_GE(target::NoiseAddressSpace::kBase, sbox_end);
  EXPECT_GE(target::NoiseAddressSpace::kBase, perm_end);
}

TEST(NoiseAddressSpace, SpanAliasesEveryCacheSet) {
  // Walk the region line by line: all sets must be covered, each with
  // kWaysCovered distinct tags (enough to displace any associativity in
  // use from every set).
  const cachesim::CacheConfig cfg = cachesim::CacheConfig::paper_default();
  cachesim::Cache cache{cfg};
  const std::uint64_t span = target::NoiseAddressSpace::span(cfg);
  std::vector<unsigned> lines_per_set(cfg.num_sets, 0);
  for (std::uint64_t a = target::NoiseAddressSpace::kBase;
       a < target::NoiseAddressSpace::kBase + span; a += cfg.line_bytes) {
    ++lines_per_set[cache.set_index(a)];
  }
  for (unsigned s = 0; s < cfg.num_sets; ++s) {
    EXPECT_EQ(lines_per_set[s], target::NoiseAddressSpace::kWaysCovered)
        << "set " << s;
    EXPECT_GE(lines_per_set[s], cfg.associativity) << "set " << s;
  }
}

TEST(NoiseAddressSpace, EndsBelowThePrimeProbeRegion) {
  // PrimeProbeProber builds its eviction sets from 0x4000000 up; noise
  // traffic must never masquerade as the attacker's priming lines.
  const cachesim::CacheConfig cfg = cachesim::CacheConfig::paper_default();
  EXPECT_LT(target::NoiseAddressSpace::kBase +
                target::NoiseAddressSpace::span(cfg),
            0x4000000u);
}

TEST(NoiseAddressSpace, DrawStaysInsideTheRegion) {
  const cachesim::CacheConfig cfg = cachesim::CacheConfig::paper_default();
  const std::uint64_t span = target::NoiseAddressSpace::span(cfg);
  Xoshiro256 rng{8};
  for (unsigned i = 0; i < 4096; ++i) {
    const std::uint64_t a = target::NoiseAddressSpace::draw(cfg, rng);
    EXPECT_GE(a, target::NoiseAddressSpace::kBase);
    EXPECT_LT(a, target::NoiseAddressSpace::kBase + span);
  }
}

}  // namespace
}  // namespace grinch::soc
