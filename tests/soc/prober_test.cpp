#include "soc/prober.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace grinch::soc {
namespace {

cachesim::CacheConfig paper_cache() {
  return cachesim::CacheConfig::paper_default();
}

TEST(FlushReload, DetectsVictimAccesses) {
  cachesim::Cache cache{paper_cache()};
  const gift::TableLayout layout;
  FlushReloadProber prober{cache, layout};

  prober.prepare();
  // Victim touches indices 3 and 7.
  (void)cache.access(layout.sbox_row_addr(3));
  (void)cache.access(layout.sbox_row_addr(7));

  const ProbeResult r = prober.probe();
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(r.row_present[i], i == 3 || i == 7) << "index " << i;
  }
  EXPECT_EQ(r.present_rows(), 2u);
}

TEST(FlushReload, PrepareEvictsMonitoredLines) {
  cachesim::Cache cache{paper_cache()};
  const gift::TableLayout layout;
  for (unsigned i = 0; i < 16; ++i) (void)cache.access(layout.sbox_row_addr(i));
  FlushReloadProber prober{cache, layout};
  prober.prepare();
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_FALSE(cache.contains(layout.sbox_row_addr(i)));
  }
}

TEST(FlushReload, ProbeReportsNothingAfterPrepareAlone) {
  cachesim::Cache cache{paper_cache()};
  const gift::TableLayout layout;
  FlushReloadProber prober{cache, layout};
  prober.prepare();
  EXPECT_EQ(prober.probe().present_rows(), 0u);
}

TEST(FlushReload, ReloadPollutesRequiringRePrepare) {
  // The probe itself loads every line (the classic Flush+Reload caveat);
  // a second probe without prepare() would see everything present.
  cachesim::Cache cache{paper_cache()};
  const gift::TableLayout layout;
  FlushReloadProber prober{cache, layout};
  prober.prepare();
  (void)prober.probe();
  EXPECT_EQ(prober.probe().present_rows(), 16u);
  prober.prepare();
  EXPECT_EQ(prober.probe().present_rows(), 0u);
}

TEST(FlushReload, CoarseLinesGroupIndices) {
  cachesim::CacheConfig cfg = paper_cache();
  cfg.line_bytes = 4;  // 4 S-Box entries per line
  cachesim::Cache cache{cfg};
  const gift::TableLayout layout;
  FlushReloadProber prober{cache, layout};
  prober.prepare();
  (void)cache.access(layout.sbox_row_addr(5));  // line covering 4..7

  const ProbeResult r = prober.probe();
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(r.row_present[i], i >= 4 && i <= 7) << "index " << i;
  }
}

TEST(FlushReload, TimedCyclesAreCharged) {
  cachesim::Cache cache{paper_cache()};
  const gift::TableLayout layout;
  FlushReloadProber prober{cache, layout};
  prober.prepare();
  const ProbeResult r = prober.probe();
  // All 16 reloads missed: cycles = 16 * miss latency.
  EXPECT_EQ(r.cycles, 16 * cache.config().miss_latency);
}

TEST(PrimeProbe, DetectsVictimSets) {
  cachesim::Cache cache{paper_cache()};
  const gift::TableLayout layout;
  PrimeProbeProber prober{cache, layout};

  prober.prepare();
  (void)cache.access(layout.sbox_row_addr(9));

  const ProbeResult r = prober.probe();
  EXPECT_TRUE(r.row_present[9]);
}

TEST(PrimeProbe, QuietVictimLeavesPrimedSetsIntact) {
  cachesim::Cache cache{paper_cache()};
  const gift::TableLayout layout;
  PrimeProbeProber prober{cache, layout};
  prober.prepare();
  const ProbeResult r = prober.probe();
  EXPECT_EQ(r.present_rows(), 0u);
}

TEST(PrimeProbe, AliasingAccessCausesFalsePositive) {
  // Any victim access mapping to a monitored set triggers Prime+Probe —
  // the set-granularity noise that makes the paper prefer Flush+Reload.
  cachesim::Cache cache{paper_cache()};
  const gift::TableLayout layout;
  PrimeProbeProber prober{cache, layout};
  prober.prepare();
  // An address unrelated to the S-Box but in the same set as row 2
  // (stride = line_bytes * num_sets = 64).
  (void)cache.access(layout.sbox_row_addr(2) + 64 * 131);
  const ProbeResult r = prober.probe();
  EXPECT_TRUE(r.row_present[2]);
}

TEST(PrimeProbe, NamesAreDistinct) {
  cachesim::Cache cache{paper_cache()};
  const gift::TableLayout layout;
  FlushReloadProber fr{cache, layout};
  PrimeProbeProber pp{cache, layout};
  EXPECT_STRNE(fr.name(), pp.name());
}

}  // namespace
}  // namespace grinch::soc
