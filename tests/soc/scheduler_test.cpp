#include "soc/scheduler.h"

#include <gtest/gtest.h>

namespace grinch::soc {
namespace {

TEST(Rtos, QuantumCyclesScaleWithClock) {
  RtosConfig cfg;
  cfg.quantum_ms = 10.0;
  cfg.clock_mhz = 10.0;
  EXPECT_EQ(cfg.quantum_cycles(), 100000u);
  cfg.clock_mhz = 50.0;
  EXPECT_EQ(cfg.quantum_cycles(), 500000u);
}

TEST(Rtos, AttackerSlotFollowsVictimQuantum) {
  RtosConfig cfg;
  cfg.quantum_ms = 10.0;
  cfg.clock_mhz = 10.0;
  const RtosScheduler sched{cfg};
  EXPECT_EQ(sched.attacker_slot_begin(0), 100000u);
  EXPECT_EQ(sched.attacker_slot_begin(1), 300000u);  // next rotation
}

TEST(Rtos, OtherTasksDelayTheAttacker) {
  RtosConfig cfg;
  cfg.quantum_ms = 10.0;
  cfg.clock_mhz = 10.0;
  cfg.other_tasks = 2;
  const RtosScheduler sched{cfg};
  EXPECT_EQ(sched.attacker_slot_begin(0), 300000u);
}

TEST(Rtos, ProbedRoundMatchesTableTwoCalibration) {
  // Table II, single-processor SoC row: with a ~65k-cycle round the RTOS
  // quantum of 10 ms puts the first probe in rounds 2 / 4 / 8 at
  // 10 / 25 / 50 MHz.
  const double cycles_per_round = 65000.0;
  for (const auto& [mhz, expected] :
       {std::pair{10.0, 2u}, std::pair{25.0, 4u}, std::pair{50.0, 8u}}) {
    RtosConfig cfg;
    cfg.clock_mhz = mhz;
    const RtosScheduler sched{cfg};
    EXPECT_EQ(sched.probed_round(cycles_per_round), expected)
        << mhz << " MHz";
  }
}

TEST(Rtos, ProbedRoundSaturatesAtTotalRounds) {
  RtosConfig cfg;
  cfg.clock_mhz = 1000.0;  // absurdly fast: entire cipher fits in a quantum
  const RtosScheduler sched{cfg};
  EXPECT_EQ(sched.probed_round(65000.0, 28), 28u);
}

TEST(Rtos, SlowerClockProbesEarlierRound) {
  const double cpr = 65000.0;
  RtosConfig slow, fast;
  slow.clock_mhz = 10.0;
  fast.clock_mhz = 50.0;
  EXPECT_LT(RtosScheduler{slow}.probed_round(cpr),
            RtosScheduler{fast}.probed_round(cpr));
}

TEST(Rtos, TimelineAccountsAllQuanta) {
  RtosConfig cfg;
  cfg.quantum_ms = 1.0;
  cfg.clock_mhz = 1.0;
  cfg.other_tasks = 1;
  const RtosScheduler sched{cfg};
  const auto slices = sched.timeline(2);
  ASSERT_EQ(slices.size(), 6u);  // 2 rotations x 3 tasks
  // Contiguous, non-overlapping slices, round-robin task order.
  for (std::size_t i = 0; i < slices.size(); ++i) {
    EXPECT_EQ(slices[i].task, i % 3);
    EXPECT_EQ(slices[i].end_cycle - slices[i].begin_cycle,
              cfg.quantum_cycles());
    if (i > 0) EXPECT_EQ(slices[i].begin_cycle, slices[i - 1].end_cycle);
  }
}

}  // namespace
}  // namespace grinch::soc
