#include "soc/victim.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gift/gift64.h"

namespace grinch::soc {
namespace {

struct Fixture {
  gift::TableGift64 cipher;
  cachesim::Cache cache{cachesim::CacheConfig::paper_default()};
  VictimCostModel cost;
  VictimProcess victim{cipher, cache, cost};
};

TEST(Victim, CiphertextMatchesReference) {
  Fixture f;
  Xoshiro256 rng{1};
  const Key128 key = rng.key128();
  const std::uint64_t pt = rng.block64();
  f.victim.begin_encryption(pt, key);
  EXPECT_EQ(f.victim.finish(), gift::Gift64::encrypt(pt, key));
}

TEST(Victim, RunsExactlyTwentyEightRounds) {
  Fixture f;
  Xoshiro256 rng{2};
  f.victim.begin_encryption(rng.block64(), rng.key128());
  unsigned rounds = 0;
  while (!f.victim.done()) {
    f.victim.run_round();
    ++rounds;
  }
  EXPECT_EQ(rounds, gift::Gift64::kRounds);
  EXPECT_EQ(f.victim.trace().size(), 28u * 32u);
}

TEST(Victim, RoundAccessesTouchTheCache) {
  Fixture f;
  Xoshiro256 rng{3};
  f.victim.begin_encryption(rng.block64(), rng.key128());
  f.victim.run_round();
  EXPECT_EQ(f.cache.stats().accesses, 32u);
  // Round 2 re-touches mostly cached lines: hits must appear.
  f.victim.run_round();
  EXPECT_GT(f.cache.stats().hits, 0u);
}

TEST(Victim, CyclesAdvanceMonotonically) {
  Fixture f;
  Xoshiro256 rng{4};
  f.victim.begin_encryption(rng.block64(), rng.key128());
  std::uint64_t prev = f.victim.now();
  while (!f.victim.done()) {
    const std::uint64_t t = f.victim.run_round();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Victim, TraceTimestampsAreOrdered) {
  Fixture f;
  Xoshiro256 rng{5};
  f.victim.begin_encryption(rng.block64(), rng.key128());
  f.victim.finish();
  const auto& trace = f.victim.trace();
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].cycle, trace[i - 1].cycle);
  }
}

TEST(Victim, RunUntilCycleStopsMidRound) {
  Fixture f;
  Xoshiro256 rng{6};
  f.victim.begin_encryption(rng.block64(), rng.key128());
  // Stop after roughly half a round's accesses worth of cycles.
  const std::uint64_t limit =
      16 * (f.cost.cycles_per_access_setup + f.cache.config().miss_latency);
  f.victim.run_until_cycle(limit);
  EXPECT_EQ(f.victim.rounds_done(), 0u);
  EXPECT_GT(f.victim.accesses_into_round(), 0u);
  EXPECT_LT(f.victim.accesses_into_round(), 32u);
  // Resuming still produces the right ciphertext.
  EXPECT_EQ(f.victim.finish(), f.victim.full_ciphertext());
}

TEST(Victim, RunUntilRoundIsIdempotent) {
  Fixture f;
  Xoshiro256 rng{7};
  f.victim.begin_encryption(rng.block64(), rng.key128());
  f.victim.run_until_round(5);
  const std::uint64_t t = f.victim.now();
  f.victim.run_until_round(5);
  EXPECT_EQ(f.victim.now(), t);
  EXPECT_EQ(f.victim.rounds_done(), 5u);
}

TEST(Victim, PaperCalibratedRoundCostIsAbout65k) {
  gift::TableGift64 cipher;
  cachesim::Cache cache{cachesim::CacheConfig::paper_default()};
  VictimProcess victim{cipher, cache, VictimCostModel::paper_calibrated()};
  Xoshiro256 rng{8};
  victim.begin_encryption(rng.block64(), rng.key128());
  victim.finish();
  const double cpr = victim.cycles_per_round();
  // Calibration target: ~65k cycles/round => ~1.3 ms between rounds at
  // 50 MHz, the paper reports "about 1.2 milliseconds" (§IV-B3).
  EXPECT_GT(cpr, 60000.0);
  EXPECT_LT(cpr, 70000.0);
}

TEST(Victim, BeginEncryptionResetsState) {
  Fixture f;
  Xoshiro256 rng{9};
  f.victim.begin_encryption(rng.block64(), rng.key128());
  f.victim.finish();
  const Key128 key2 = rng.key128();
  const std::uint64_t pt2 = rng.block64();
  f.victim.begin_encryption(pt2, key2, 1000);
  EXPECT_EQ(f.victim.rounds_done(), 0u);
  EXPECT_EQ(f.victim.now(), 1000u);
  EXPECT_TRUE(f.victim.trace().empty());
  EXPECT_EQ(f.victim.finish(), gift::Gift64::encrypt(pt2, key2));
}

}  // namespace
}  // namespace grinch::soc
