#include "soc/platform.h"

#include <gtest/gtest.h>

#include <vector>

#include "attack/predictor.h"
#include "common/bits.h"
#include "common/rng.h"
#include "gift/gift64.h"

namespace grinch::soc {
namespace {

TEST(IndexLineIds, OneWordLinesAreAllDistinct) {
  const gift::TableLayout layout;
  const auto ids = compute_index_line_ids(layout, 1);
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(ids[i], i);
}

TEST(IndexLineIds, FourWordLinesGroupByFour) {
  const gift::TableLayout layout;
  const auto ids = compute_index_line_ids(layout, 4);
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(ids[i], i / 4);
}

TEST(IndexLineIds, PackedCountermeasureWithEightByteLine) {
  // Countermeasure 1: 8 rows of 8 bits + 8-byte lines => the whole S-Box
  // occupies a single cache line; every index is indistinguishable.
  gift::TableLayout layout;
  layout.sbox_entries_per_row = 2;
  const auto ids = compute_index_line_ids(layout, 8);
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(ids[i], 0u);
}

// --------------------------------------------------- DirectProbePlatform --

TEST(DirectProbe, WithFlushObservesExactlyTheMonitoredRound) {
  Xoshiro256 rng{100};
  const Key128 key = rng.key128();
  DirectProbePlatform::Config cfg;
  cfg.probing_round = 1;
  cfg.use_flush = true;
  DirectProbePlatform platform{cfg, key};

  const std::uint64_t pt = rng.block64();
  const Observation obs = platform.observe(pt, /*stage=*/0);
  EXPECT_EQ(obs.probed_after_round, 2u);

  // Ground truth: the set of S-Box indices of cipher round 1.
  const auto states = gift::Gift64::round_states(pt, key);
  target::LineSet expected(16);
  for (unsigned s = 0; s < 16; ++s) expected[nibble(states[1], s)] = true;
  EXPECT_EQ(obs.present, expected);
}

TEST(DirectProbe, WithoutFlushIncludesRoundZeroDirt) {
  Xoshiro256 rng{101};
  const Key128 key = rng.key128();
  DirectProbePlatform::Config cfg;
  cfg.probing_round = 1;
  cfg.use_flush = false;
  DirectProbePlatform platform{cfg, key};

  const std::uint64_t pt = rng.block64();
  const Observation obs = platform.observe(pt, 0);

  const auto states = gift::Gift64::round_states(pt, key);
  target::LineSet expected(16);
  for (unsigned r = 0; r < 2; ++r) {  // rounds 0 and 1 accumulate
    for (unsigned s = 0; s < 16; ++s) expected[nibble(states[r], s)] = true;
  }
  EXPECT_EQ(obs.present, expected);
}

TEST(DirectProbe, LaterProbingAccumulatesMoreLines) {
  Xoshiro256 rng{102};
  const Key128 key = rng.key128();
  unsigned prev_count = 0;
  for (unsigned k : {1u, 3u, 6u}) {
    DirectProbePlatform::Config cfg;
    cfg.probing_round = k;
    DirectProbePlatform platform{cfg, key};
    const Observation obs = platform.observe(0x1234567812345678ull, 0);
    const unsigned count = obs.present.count();
    EXPECT_GE(count, prev_count) << "probing round " << k;
    prev_count = count;
  }
}

TEST(DirectProbe, CiphertextIsTheRealOne) {
  Xoshiro256 rng{103};
  const Key128 key = rng.key128();
  DirectProbePlatform platform{DirectProbePlatform::Config{}, key};
  const std::uint64_t pt = rng.block64();
  // The observation itself carries no ciphertext (the victim truncates at
  // the probe point); the published ciphertext is completed on demand.
  (void)platform.observe(pt, 0);
  EXPECT_EQ(platform.last_ciphertext(), gift::Gift64::encrypt(pt, key));
}

TEST(DirectProbe, StageShiftsTheMonitoredRound) {
  Xoshiro256 rng{104};
  const Key128 key = rng.key128();
  DirectProbePlatform::Config cfg;
  cfg.probing_round = 1;
  DirectProbePlatform platform{cfg, key};
  const std::uint64_t pt = rng.block64();
  const Observation obs = platform.observe(pt, /*stage=*/2);
  EXPECT_EQ(obs.probed_after_round, 4u);
  const auto states = gift::Gift64::round_states(pt, key);
  target::LineSet expected(16);
  for (unsigned s = 0; s < 16; ++s) expected[nibble(states[3], s)] = true;
  EXPECT_EQ(obs.present, expected);
}

TEST(DirectProbe, ObserveBatchBitIdenticalToScalar) {
  Xoshiro256 rng{113};
  const Key128 key = rng.key128();
  DirectProbePlatform scalar{DirectProbePlatform::Config{}, key};
  DirectProbePlatform batched{DirectProbePlatform::Config{}, key};
  for (unsigned stage = 0; stage < 2; ++stage) {
    std::vector<std::uint64_t> pts;
    for (unsigned i = 0; i < 6; ++i) pts.push_back(rng.block64());
    target::ObservationBatch batch;
    batched.observe_batch(pts, stage, batch);
    ASSERT_EQ(batch.size(), pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const Observation o = scalar.observe(pts[i], stage);
      EXPECT_EQ(batch[i].present, o.present) << "stage " << stage << " " << i;
      EXPECT_EQ(batch[i].probed_after_round, o.probed_after_round);
      EXPECT_EQ(batch[i].attacker_cycles, o.attacker_cycles);
      EXPECT_EQ(batch[i].sbox_hits, o.sbox_hits);
    }
    EXPECT_EQ(batched.last_ciphertext(), scalar.last_ciphertext());
  }
}

// --------------------------------------------------------- SingleCoreSoC --

TEST(SingleCore, FirstProbeRoundMatchesTableTwo) {
  Xoshiro256 rng{105};
  const Key128 key = rng.key128();
  for (const auto& [mhz, expected] :
       {std::pair{10.0, 2u}, std::pair{25.0, 4u}, std::pair{50.0, 8u}}) {
    SingleCoreSoC::Config cfg;
    cfg.rtos.clock_mhz = mhz;
    SingleCoreSoC soc{cfg, key};
    EXPECT_EQ(soc.first_probe_round(), expected) << mhz << " MHz";
  }
}

TEST(SingleCore, ObservationCoversRoundsUpToPreemption) {
  Xoshiro256 rng{106};
  const Key128 key = rng.key128();
  SingleCoreSoC::Config cfg;
  cfg.rtos.clock_mhz = 10.0;
  SingleCoreSoC soc{cfg, key};
  const Observation obs = soc.observe(rng.block64(), 0);
  // At 10 MHz the quantum covers one full round plus part of round 2.
  EXPECT_GE(obs.probed_after_round, 1u);
  EXPECT_LE(obs.probed_after_round, 2u);
}

TEST(SingleCore, MeasuredRoundCostIsCalibrated) {
  Xoshiro256 rng{107};
  SingleCoreSoC::Config cfg;
  SingleCoreSoC soc{cfg, rng.key128()};
  EXPECT_NEAR(soc.measured_cycles_per_round(), 65000.0, 5000.0);
}

// ----------------------------------------------------------------- MpSoc --

TEST(MpSoc, RemoteAccessIsAbout400ns) {
  Xoshiro256 rng{108};
  MpSoc soc{MpSoc::Config{}, rng.key128()};
  // Paper §IV-B3: "approximately 400 nanoseconds" for the remote shared
  // cache access (processor delay + NoC latency + cache response).
  EXPECT_GT(soc.remote_access_ns(), 100.0);
  EXPECT_LT(soc.remote_access_ns(), 800.0);
}

TEST(MpSoc, ProbeSequenceIsFasterThanARound) {
  Xoshiro256 rng{109};
  MpSoc soc{MpSoc::Config{}, rng.key128()};
  // ~1.2 ms round vs ~tens of microseconds probing: the whole probe
  // sequence fits many times into one round.
  EXPECT_LT(soc.probe_sequence_cycles(), 65000u / 4);
}

TEST(MpSoc, FirstProbeRoundIsOneAtAllClockRates) {
  Xoshiro256 rng{110};
  for (double mhz : {10.0, 25.0, 50.0}) {
    MpSoc::Config cfg;
    cfg.clock_mhz = mhz;
    MpSoc soc{cfg, rng.key128()};
    EXPECT_EQ(soc.first_probe_round(), 1u) << mhz << " MHz";
  }
}

TEST(MpSoc, ObservationIsCleanMonitoredRound) {
  Xoshiro256 rng{111};
  const Key128 key = rng.key128();
  MpSoc soc{MpSoc::Config{}, key};
  const std::uint64_t pt = rng.block64();
  const Observation obs = soc.observe(pt, 0);
  const auto states = gift::Gift64::round_states(pt, key);
  target::LineSet expected(16);
  for (unsigned s = 0; s < 16; ++s) expected[nibble(states[1], s)] = true;
  EXPECT_EQ(obs.present, expected);
}

TEST(MpSoc, NocTrafficIsAccounted) {
  Xoshiro256 rng{112};
  MpSoc soc{MpSoc::Config{}, rng.key128()};
  (void)soc.remote_access_cycles();
  EXPECT_GT(soc.network().stats().packets, 0u);
}

}  // namespace
}  // namespace grinch::soc
