// Algorithm 1: the lists must force the key-facing bits of the target
// segment to 1 through SubCells + PermBits.
#include "attack/target_bits.h"

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "gift/permutation.h"
#include "gift/sbox.h"

namespace grinch::attack {
namespace {

TEST(TargetBits, SourceBitsAreKeyFacingPositionsPrePermutation) {
  const auto& perm = gift::gift64_permutation();
  for (unsigned s = 0; s < 16; ++s) {
    const TargetBits t = set_target_bits(s);
    EXPECT_EQ(perm.forward(t.bit_a), 4 * s);
    EXPECT_EQ(perm.forward(t.bit_b), 4 * s + 1);
    EXPECT_EQ(t.seg_a, t.bit_a / 4);
    EXPECT_EQ(t.seg_b, t.bit_b / 4);
  }
}

TEST(TargetBits, SourceSegmentsAreDistinct) {
  // PermBits spreads segment bits, so the two pinned bits always come
  // from two different plaintext segments.
  for (unsigned s = 0; s < 16; ++s) {
    const TargetBits t = set_target_bits(s);
    EXPECT_NE(t.seg_a, t.seg_b) << "segment " << s;
  }
}

TEST(TargetBits, ModFourResidueIsPreserved) {
  // The GIFT permutation preserves i mod 4, so bit_a is always a bit-0
  // slot and bit_b a bit-1 slot of its source segment.
  for (unsigned s = 0; s < 16; ++s) {
    const TargetBits t = set_target_bits(s);
    EXPECT_EQ(t.bit_a % 4, 0u);
    EXPECT_EQ(t.bit_b % 4, 1u);
  }
}

TEST(TargetBits, ListAForcesOutputBitOne) {
  for (unsigned s = 0; s < 16; ++s) {
    const TargetBits t = set_target_bits(s);
    ASSERT_FALSE(t.list_a.empty());
    for (unsigned x : t.list_a) {
      EXPECT_EQ((gift::gift_sbox().apply(x) >> (t.bit_a % 4)) & 1u, 1u);
    }
  }
}

TEST(TargetBits, ListBForcesOutputBitOne) {
  for (unsigned s = 0; s < 16; ++s) {
    const TargetBits t = set_target_bits(s);
    ASSERT_FALSE(t.list_b.empty());
    for (unsigned x : t.list_b) {
      EXPECT_EQ((gift::gift_sbox().apply(x) >> (t.bit_b % 4)) & 1u, 1u);
    }
  }
}

TEST(TargetBits, ListsAreExactPreimages) {
  // Anything NOT in the list must force a 0 — the lists are complete.
  const TargetBits t = set_target_bits(3);
  for (unsigned x = 0; x < 16; ++x) {
    const bool in_list =
        std::find(t.list_a.begin(), t.list_a.end(), x) != t.list_a.end();
    const bool forces_one =
        ((gift::gift_sbox().apply(x) >> (t.bit_a % 4)) & 1u) == 1u;
    EXPECT_EQ(in_list, forces_one) << "x=" << x;
  }
}

TEST(TargetBits, ListsHaveEightEntriesForBalancedSBox) {
  // GS is balanced: every output bit is 1 for exactly 8 of 16 inputs.
  for (unsigned s = 0; s < 16; ++s) {
    const TargetBits t = set_target_bits(s);
    EXPECT_EQ(t.list_a.size(), 8u);
    EXPECT_EQ(t.list_b.size(), 8u);
  }
}

TEST(TargetBits, EndToEndPinnedBitsSurviveRoundOne) {
  // Property check through the real cipher machinery: a state whose
  // seg_a/seg_b are drawn from the lists yields PermBits output with bits
  // 4s and 4s+1 equal to 1, for any values of the other segments.
  Xoshiro256 rng{0xABC};
  for (unsigned s = 0; s < 16; ++s) {
    const TargetBits t = set_target_bits(s);
    for (int trial = 0; trial < 20; ++trial) {
      std::uint64_t state = rng.block64();
      state = with_nibble(state, t.seg_a,
                          t.list_a[rng.uniform(t.list_a.size())]);
      state = with_nibble(state, t.seg_b,
                          t.list_b[rng.uniform(t.list_b.size())]);
      const std::uint64_t after = gift::gift64_permutation().apply64(
          gift::gift_sbox().apply_state64(state));
      EXPECT_EQ(bit(after, 4 * s), 1u);
      EXPECT_EQ(bit(after, 4 * s + 1), 1u);
    }
  }
}

}  // namespace
}  // namespace grinch::attack
