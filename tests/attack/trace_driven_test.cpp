#include "attack/trace_driven.h"

#include <gtest/gtest.h>

#include "attack/grinch.h"
#include "common/bits.h"
#include "common/rng.h"
#include "gift/gift64.h"
#include "soc/platform.h"

namespace grinch::attack {
namespace {

TEST(TraceEliminate, MissRemovesCollidingCandidates) {
  std::array<CandidateSet, 16> masks{};
  std::array<unsigned, 16> n{};
  // Segment 0 resolved to candidate 0 with n_0 = 5 -> index 5.
  n[0] = 5;
  for (unsigned c = 1; c < 4; ++c) masks[0].remove(c);
  // Segment 1: n_1 = 4; access MISSED => index != 5 => candidate 1
  // (4^1 = 5) is impossible.
  n[1] = 4;
  target::LineSet hits(16);
  const unsigned removed = eliminate_with_trace(masks, n, hits);
  EXPECT_GE(removed, 1u);
  EXPECT_FALSE(masks[1].contains(1));
  EXPECT_TRUE(masks[1].contains(0));
}

TEST(TraceEliminate, HitPinsToEarlierIndices) {
  std::array<CandidateSet, 16> masks{};
  std::array<unsigned, 16> n{};
  // Segment 0 resolved: index 7.
  n[0] = 7;
  for (unsigned c = 1; c < 4; ++c) masks[0].remove(c);
  // Segment 1 HIT with n_1 = 4: index must be 7 => candidate 3 (4^3=7).
  n[1] = 4;
  target::LineSet hits(16);
  hits[1] = true;
  (void)eliminate_with_trace(masks, n, hits);
  ASSERT_TRUE(masks[1].resolved());
  EXPECT_EQ(masks[1].value(), 3u);
}

TEST(TraceEliminate, HitWithUnresolvedEarlierSegmentsIsConservative) {
  std::array<CandidateSet, 16> masks{};  // nothing resolved
  std::array<unsigned, 16> n{};
  target::LineSet hits(16);
  hits[5] = true;
  // No earlier segment resolved: the HIT constraint must not prune.
  EXPECT_EQ(eliminate_with_trace(masks, n, hits), 0u);
  EXPECT_EQ(masks[5].size(), 4u);
}

TEST(TraceEliminate, CascadesAcrossSegments) {
  // Resolving segment 1 via a HIT unlocks a MISS constraint on segment 2.
  std::array<CandidateSet, 16> masks{};
  std::array<unsigned, 16> n{};
  n[0] = 0xA;
  for (unsigned c = 1; c < 4; ++c) masks[0].remove(c);  // index 0xA
  n[1] = 0x9;  // HIT: index must be 0xA => candidate 3
  n[2] = 0xA;  // MISS: cannot be 0xA (from seg 0) nor seg 1's 0xA
  target::LineSet hits(16);
  hits[1] = true;
  (void)eliminate_with_trace(masks, n, hits);
  ASSERT_TRUE(masks[1].resolved());
  EXPECT_FALSE(masks[2].contains(0));  // 0xA ^ 0 = 0xA collides
}

TEST(TraceEliminate, ContradictoryTraceIsSkippedNotFatal) {
  std::array<CandidateSet, 16> masks{};
  std::array<unsigned, 16> n{};
  // Segment 0 resolved: index 3.  Segment 1 resolved-to-be 3 as well,
  // but the trace says MISS — contradiction must not empty the set.
  n[0] = 3;
  for (unsigned c = 1; c < 4; ++c) masks[0].remove(c);
  n[1] = 3;
  for (unsigned c = 1; c < 4; ++c) masks[1].remove(c);  // only candidate 0
  target::LineSet hits(16);
  (void)eliminate_with_trace(masks, n, hits);
  EXPECT_FALSE(masks[1].empty());
}

TEST(TraceDriven, PlatformEmitsConsistentHits) {
  // Ground truth: access s hits iff its index appeared earlier in the
  // monitored round.
  Xoshiro256 rng{1};
  const Key128 key = rng.key128();
  soc::DirectProbePlatform::Config cfg;
  cfg.capture_trace = true;
  soc::DirectProbePlatform platform{cfg, key};
  const std::uint64_t pt = rng.block64();
  const soc::Observation obs = platform.observe(pt, 0);
  ASSERT_EQ(obs.sbox_hits.size(), 16u);

  const auto states = gift::Gift64::round_states(pt, key);
  std::array<bool, 16> seen{};
  for (unsigned s = 0; s < 16; ++s) {
    const unsigned idx = nibble(states[1], s);
    EXPECT_EQ(obs.sbox_hits[s], seen[idx]) << "segment " << s;
    seen[idx] = true;
  }
}

TEST(TraceDriven, NoTraceWithoutCaptureFlag) {
  Xoshiro256 rng{2};
  soc::DirectProbePlatform platform{soc::DirectProbePlatform::Config{},
                                    rng.key128()};
  EXPECT_TRUE(platform.observe(rng.block64(), 0).sbox_hits.empty());
}

TEST(TraceDriven, AttackNeedsFewerEncryptions) {
  Xoshiro256 rng{3};
  const Key128 key = rng.key128();

  soc::DirectProbePlatform::Config base;
  soc::DirectProbePlatform p1{base, key};
  attack::GrinchConfig cfg;
  cfg.stages = 1;
  cfg.seed = 31;
  GrinchAttack a1{p1, cfg};
  const auto r1 = a1.run();

  soc::DirectProbePlatform::Config with_trace = base;
  with_trace.capture_trace = true;
  soc::DirectProbePlatform p2{with_trace, key};
  cfg.use_trace_hits = true;
  GrinchAttack a2{p2, cfg};
  const auto r2 = a2.run();

  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  const gift::RoundKey64 truth = gift::extract_round_key64(key);
  EXPECT_EQ(r2.round_keys[0].u, truth.u);
  EXPECT_EQ(r2.round_keys[0].v, truth.v);
  EXPECT_LT(r2.total_encryptions, r1.total_encryptions);
}

}  // namespace
}  // namespace grinch::attack
