// End-to-end GRINCH attack tests against the simulated platforms.
#include "attack/grinch.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gift/gift64.h"

namespace grinch::attack {
namespace {

soc::DirectProbePlatform::Config direct_config(unsigned line_words,
                                               unsigned probing_round,
                                               bool use_flush) {
  soc::DirectProbePlatform::Config cfg;
  cfg.cache.line_bytes = line_words;
  cfg.probing_round = probing_round;
  cfg.use_flush = use_flush;
  return cfg;
}

TEST(Grinch, RecoversFullKeyUnderFourHundredEncryptions) {
  // The paper's headline: "the full key could be recovered with less than
  // 400 encryptions" (probing round 1, flush, 1-word lines).
  Xoshiro256 rng{0x400};
  for (int trial = 0; trial < 5; ++trial) {
    const Key128 key = rng.key128();
    soc::DirectProbePlatform platform{direct_config(1, 1, true), key};
    GrinchConfig cfg;
    cfg.seed = 0x1234 + static_cast<std::uint64_t>(trial);
    GrinchAttack attack{platform, cfg};
    const AttackResult result = attack.run();
    ASSERT_TRUE(result.success) << "trial " << trial;
    EXPECT_TRUE(result.key_verified);
    EXPECT_EQ(result.recovered_key, key);
    EXPECT_LT(result.total_encryptions, 400u);
    ASSERT_EQ(result.stages.size(), 4u);
  }
}

TEST(Grinch, SingleStageRecoversRoundKeyZero) {
  Xoshiro256 rng{0x401};
  const Key128 key = rng.key128();
  soc::DirectProbePlatform platform{direct_config(1, 1, true), key};
  GrinchConfig cfg;
  cfg.stages = 1;
  GrinchAttack attack{platform, cfg};
  const AttackResult result = attack.run();
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.round_keys.size(), 1u);
  const gift::RoundKey64 expected = gift::extract_round_key64(key);
  EXPECT_EQ(result.round_keys[0].u, expected.u);
  EXPECT_EQ(result.round_keys[0].v, expected.v);
}

TEST(Grinch, WithoutFlushStillSucceedsButCostsMore) {
  Xoshiro256 rng{0x402};
  const Key128 key = rng.key128();
  GrinchConfig cfg;
  cfg.stages = 1;

  soc::DirectProbePlatform with_flush{direct_config(1, 1, true), key};
  GrinchAttack a1{with_flush, cfg};
  const AttackResult r1 = a1.run();

  soc::DirectProbePlatform without_flush{direct_config(1, 1, false), key};
  GrinchAttack a2{without_flush, cfg};
  const AttackResult r2 = a2.run();

  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  EXPECT_LT(r1.total_encryptions, r2.total_encryptions);
}

TEST(Grinch, LaterProbingIncreasesEffortMonotonically) {
  Xoshiro256 rng{0x403};
  const Key128 key = rng.key128();
  GrinchConfig cfg;
  cfg.stages = 1;
  std::uint64_t prev = 0;
  for (unsigned k : {1u, 3u, 5u}) {
    soc::DirectProbePlatform platform{direct_config(1, k, true), key};
    GrinchAttack attack{platform, cfg};
    const AttackResult r = attack.run();
    ASSERT_TRUE(r.success) << "probing round " << k;
    EXPECT_GT(r.total_encryptions, prev) << "probing round " << k;
    prev = r.total_encryptions;
  }
}

TEST(Grinch, TwoWordLinesResolveViaCrossStagePropagation) {
  Xoshiro256 rng{0x404};
  const Key128 key = rng.key128();
  soc::DirectProbePlatform platform{direct_config(2, 1, true), key};
  GrinchConfig cfg;
  cfg.seed = 77;
  GrinchAttack attack{platform, cfg};
  const AttackResult result = attack.run();
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.recovered_key, key);
  // Line-size 2 hides the v bits in-round: some stage must have deferred.
  bool any_deferred = false;
  for (const auto& s : result.stages) any_deferred |= s.deferred;
  EXPECT_TRUE(any_deferred);
}

TEST(Grinch, FourWordLinesStillCrackWithMoreEffort) {
  Xoshiro256 rng{0x405};
  const Key128 key = rng.key128();
  soc::DirectProbePlatform platform{direct_config(4, 1, true), key};
  GrinchConfig cfg;
  cfg.seed = 78;
  cfg.max_encryptions = 300000;
  GrinchAttack attack{platform, cfg};
  const AttackResult result = attack.run();
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.recovered_key, key);
  EXPECT_GT(result.total_encryptions, 1000u);  // far beyond the 1-word cost
}

TEST(Grinch, DropoutReportedWhenBudgetExhausted) {
  Xoshiro256 rng{0x406};
  const Key128 key = rng.key128();
  // 8-word lines and probing round 3: far beyond a tiny budget.
  soc::DirectProbePlatform platform{direct_config(8, 3, true), key};
  GrinchConfig cfg;
  cfg.max_encryptions = 2000;
  GrinchAttack attack{platform, cfg};
  const AttackResult result = attack.run();
  EXPECT_FALSE(result.success);
  EXPECT_GE(result.total_encryptions, cfg.max_encryptions);
}

TEST(Grinch, JointSegmentExploitationIsCheaper) {
  // Ablation: updating all 16 segments per observation beats the paper's
  // sequential per-segment methodology by a wide margin.
  Xoshiro256 rng{0x407};
  const Key128 key = rng.key128();
  GrinchConfig sequential;
  sequential.stages = 1;
  GrinchConfig joint = sequential;
  joint.exploit_all_segments = true;

  soc::DirectProbePlatform p1{direct_config(1, 1, true), key};
  GrinchAttack a1{p1, sequential};
  const auto r1 = a1.run();
  soc::DirectProbePlatform p2{direct_config(1, 1, true), key};
  GrinchAttack a2{p2, joint};
  const auto r2 = a2.run();

  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  EXPECT_LT(r2.total_encryptions, r1.total_encryptions / 2);
}

TEST(Grinch, PrimeProbeAlsoRecoversTheKey) {
  Xoshiro256 rng{0x408};
  const Key128 key = rng.key128();
  soc::DirectProbePlatform::Config pcfg = direct_config(1, 1, true);
  pcfg.method = soc::ProbeMethod::kPrimeProbe;
  soc::DirectProbePlatform platform{pcfg, key};
  GrinchConfig cfg;
  cfg.stages = 1;
  GrinchAttack attack{platform, cfg};
  const AttackResult result = attack.run();
  ASSERT_TRUE(result.success);
  const gift::RoundKey64 expected = gift::extract_round_key64(key);
  EXPECT_EQ(result.round_keys[0].u, expected.u);
  EXPECT_EQ(result.round_keys[0].v, expected.v);
}

TEST(Grinch, MpSocPlatformEndToEnd) {
  Xoshiro256 rng{0x409};
  const Key128 key = rng.key128();
  soc::MpSoc platform{soc::MpSoc::Config{}, key};
  GrinchConfig cfg;
  cfg.seed = 0xBEEF;
  GrinchAttack attack{platform, cfg};
  const AttackResult result = attack.run();
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.recovered_key, key);
  EXPECT_LT(result.total_encryptions, 400u);
}

TEST(Grinch, DeterministicForFixedSeed) {
  Xoshiro256 rng{0x40A};
  const Key128 key = rng.key128();
  GrinchConfig cfg;
  cfg.stages = 1;
  cfg.seed = 42;
  soc::DirectProbePlatform p1{direct_config(1, 1, true), key};
  soc::DirectProbePlatform p2{direct_config(1, 1, true), key};
  GrinchAttack a1{p1, cfg};
  GrinchAttack a2{p2, cfg};
  EXPECT_EQ(a1.run().total_encryptions, a2.run().total_encryptions);
}

class GrinchManyKeys : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GrinchManyKeys, FullRecoveryForDiverseKeys) {
  Xoshiro256 rng{GetParam()};
  const Key128 key = rng.key128();
  soc::DirectProbePlatform platform{direct_config(1, 1, true), key};
  GrinchConfig cfg;
  cfg.seed = GetParam() ^ 0x5A5A;
  GrinchAttack attack{platform, cfg};
  const AttackResult result = attack.run();
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.recovered_key, key);
}

INSTANTIATE_TEST_SUITE_P(KeySweep, GrinchManyKeys,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Grinch, RecoversAllZeroAndAllOneKeys) {
  for (const Key128& key :
       {Key128{0, 0}, Key128{~0ull, ~0ull}, Key128{0, ~0ull}}) {
    soc::DirectProbePlatform platform{direct_config(1, 1, true), key};
    GrinchConfig cfg;
    GrinchAttack attack{platform, cfg};
    const AttackResult result = attack.run();
    ASSERT_TRUE(result.success) << key.to_hex();
    EXPECT_EQ(result.recovered_key, key);
  }
}

}  // namespace
}  // namespace grinch::attack
