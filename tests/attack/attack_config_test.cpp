// Coverage for GrinchAttack configuration combinations not exercised by
// the main end-to-end tests.
#include <gtest/gtest.h>

#include "attack/grinch.h"
#include "common/rng.h"
#include "gift/gift64.h"
#include "soc/platform.h"

namespace grinch::attack {
namespace {

soc::DirectProbePlatform::Config default_cfg() {
  return soc::DirectProbePlatform::Config{};
}

TEST(Config, TwoStagePartialAttackRecoversTwoRoundKeys) {
  Xoshiro256 rng{1};
  const Key128 key = rng.key128();
  soc::DirectProbePlatform platform{default_cfg(), key};
  GrinchConfig cfg;
  cfg.stages = 2;
  cfg.seed = 11;
  GrinchAttack attack{platform, cfg};
  const AttackResult r = attack.run();
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.round_keys.size(), 2u);
  const gift::KeySchedule sched{key, 2};
  for (unsigned a = 0; a < 2; ++a) {
    EXPECT_EQ(r.round_keys[a].u, sched.round_key64(a).u);
    EXPECT_EQ(r.round_keys[a].v, sched.round_key64(a).v);
  }
  // Partial attack: no master key is assembled or verified.
  EXPECT_FALSE(r.key_verified);
}

TEST(Config, StatisticalModeOnCleanChannelStillCorrect) {
  Xoshiro256 rng{2};
  const Key128 key = rng.key128();
  soc::DirectProbePlatform platform{default_cfg(), key};
  GrinchConfig cfg;
  cfg.stages = 1;
  cfg.statistical_elimination = true;
  cfg.seed = 21;
  GrinchAttack attack{platform, cfg};
  const AttackResult r = attack.run();
  ASSERT_TRUE(r.success);
  const gift::RoundKey64 truth = gift::extract_round_key64(key);
  EXPECT_EQ(r.round_keys[0].u, truth.u);
  EXPECT_EQ(r.round_keys[0].v, truth.v);
  // Statistical mode waits for stat_min_obs sightings per segment.
  EXPECT_GE(r.total_encryptions, 16u * cfg.stat_min_obs);
}

TEST(Config, StatisticalModeFallsBackOnCoarseLines) {
  // Statistical elimination requires full line resolution; on 2-word
  // lines the orchestrator must fall back to the masked pipeline and
  // still recover the key.
  Xoshiro256 rng{3};
  const Key128 key = rng.key128();
  auto cfg = default_cfg();
  cfg.cache.line_bytes = 2;
  soc::DirectProbePlatform platform{cfg, key};
  GrinchConfig acfg;
  acfg.statistical_elimination = true;
  acfg.max_encryptions = 100000;
  acfg.seed = 31;
  GrinchAttack attack{platform, acfg};
  const AttackResult r = attack.run();
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.recovered_key, key);
}

TEST(Config, VotedThresholdCostsMoreOnCleanChannel) {
  Xoshiro256 rng{4};
  const Key128 key = rng.key128();
  GrinchConfig base;
  base.stages = 1;
  base.seed = 41;

  soc::DirectProbePlatform p1{default_cfg(), key};
  GrinchAttack a1{p1, base};
  const auto r1 = a1.run();

  GrinchConfig voted = base;
  voted.elimination_threshold = 3;
  soc::DirectProbePlatform p2{default_cfg(), key};
  GrinchAttack a2{p2, voted};
  const auto r2 = a2.run();

  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  EXPECT_GT(r2.total_encryptions, r1.total_encryptions);
  EXPECT_EQ(r2.round_keys[0].u, r1.round_keys[0].u);
  EXPECT_EQ(r2.round_keys[0].v, r1.round_keys[0].v);
}

TEST(Config, DisablingCrossRoundDropsOutOnCoarseLines) {
  Xoshiro256 rng{5};
  const Key128 key = rng.key128();
  auto cfg = default_cfg();
  cfg.cache.line_bytes = 2;
  soc::DirectProbePlatform platform{cfg, key};
  GrinchConfig acfg;
  acfg.use_cross_round = false;
  acfg.max_encryptions = 5000;
  acfg.seed = 51;
  GrinchAttack attack{platform, acfg};
  const AttackResult r = attack.run();
  EXPECT_FALSE(r.success);
}

TEST(Config, JointModeWorksAtEveryStageDepth) {
  Xoshiro256 rng{6};
  const Key128 key = rng.key128();
  soc::DirectProbePlatform platform{default_cfg(), key};
  GrinchConfig cfg;
  cfg.exploit_all_segments = true;
  cfg.seed = 61;
  GrinchAttack attack{platform, cfg};
  const AttackResult r = attack.run();
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.recovered_key, key);
  EXPECT_LT(r.total_encryptions, 150u);  // joint mode is ~4-5x cheaper
}

TEST(Config, AttackerCyclesAreAccounted) {
  Xoshiro256 rng{7};
  const Key128 key = rng.key128();
  soc::DirectProbePlatform platform{default_cfg(), key};
  GrinchConfig cfg;
  cfg.stages = 1;
  cfg.seed = 71;
  GrinchAttack attack{platform, cfg};
  const AttackResult r = attack.run();
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.stages[0].attacker_cycles, 0u);
}

}  // namespace
}  // namespace grinch::attack
