#include "attack/cross_round.h"

#include <gtest/gtest.h>

#include <set>

#include "attack/predictor.h"
#include "common/bits.h"
#include "common/rng.h"
#include "gift/gift64.h"
#include "gift/permutation.h"

namespace grinch::attack {
namespace {

TEST(Solver, SourcesMatchInversePermutation) {
  const CrossRoundSolver solver;
  const auto& perm = gift::gift64_permutation();
  for (unsigned t = 0; t < 16; ++t) {
    const auto& src = solver.sources(t);
    for (unsigned j = 0; j < 4; ++j) {
      const unsigned p = perm.inverse(4 * t + j);
      EXPECT_EQ(src.seg[j], p / 4);
      EXPECT_EQ(src.bit[j], p % 4);
    }
  }
}

TEST(Solver, SourceSegmentsAreDistinctPerTarget) {
  const CrossRoundSolver solver;
  for (unsigned t = 0; t < 16; ++t) {
    std::set<unsigned> segs(solver.sources(t).seg.begin(),
                            solver.sources(t).seg.end());
    EXPECT_EQ(segs.size(), 4u);
  }
}

TEST(Solver, PredictedNibbleMatchesRealCipher) {
  // With the true candidates plugged in, next_round_pre_key_nibble must
  // equal the real next-round state nibble minus its own key bits.
  Xoshiro256 rng{11};
  const CrossRoundSolver solver;
  for (int trial = 0; trial < 30; ++trial) {
    const Key128 key = rng.key128();
    const std::uint64_t pt = rng.block64();
    const gift::KeySchedule sched{key, 3};

    CrossRoundObservation obs;
    obs.pre_key_nibbles = pre_key_nibbles(pt, {}, 0);
    obs.next_round_index = 1;

    const gift::RoundKey64 rk0 = sched.round_key64(0);
    const gift::RoundKey64 rk1 = sched.round_key64(1);
    const std::uint64_t state2 = gift::Gift64::encrypt_rounds(pt, key, 2);

    for (unsigned t = 0; t < 16; ++t) {
      const auto& src = solver.sources(t);
      std::array<unsigned, 4> truth{};
      for (unsigned j = 0; j < 4; ++j) {
        const unsigned s = src.seg[j];
        truth[j] = ((((rk0.u >> s) & 1u) << 1) | ((rk0.v >> s) & 1u));
      }
      const unsigned m = solver.next_round_pre_key_nibble(obs, t, truth);
      const unsigned cp = ((((rk1.u >> t) & 1u) << 1) | ((rk1.v >> t) & 1u));
      EXPECT_EQ(nibble(state2, t), m ^ cp) << "target " << t;
    }
  }
}

TEST(Solver, TruthAlwaysSurvivesCleanObservations) {
  // Soundness: propagation over real observations never prunes the true
  // candidates.
  Xoshiro256 rng{12};
  const CrossRoundSolver solver;
  const Key128 key = rng.key128();
  const gift::KeySchedule sched{key, 3};
  const gift::RoundKey64 rk0 = sched.round_key64(0);
  const gift::RoundKey64 rk1 = sched.round_key64(1);

  std::array<CandidateSet, 16> a{}, b{};
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t pt = rng.block64();
    CrossRoundObservation obs;
    obs.pre_key_nibbles = pre_key_nibbles(pt, {}, 0);
    obs.next_round_index = 1;
    // Full-resolution presence of rounds 1 and 2 accesses.
    const auto states = gift::Gift64::round_states(pt, key);
    obs.present.assign(16, false);
    for (unsigned r = 1; r <= 2; ++r) {
      for (unsigned s = 0; s < 16; ++s) obs.present[nibble(states[r], s)] = true;
    }
    (void)solver.propagate_to_fixpoint(obs, a, b);

    for (unsigned s = 0; s < 16; ++s) {
      const unsigned ca = ((((rk0.u >> s) & 1u) << 1) | ((rk0.v >> s) & 1u));
      const unsigned cb = ((((rk1.u >> s) & 1u) << 1) | ((rk1.v >> s) & 1u));
      ASSERT_TRUE(a[s].contains(ca)) << "obs " << i << " seg " << s;
      ASSERT_TRUE(b[s].contains(cb)) << "obs " << i << " seg " << s;
    }
  }
}

TEST(Solver, ConvergesToTruthWithFullResolutionObservations) {
  // Completeness: direct elimination (round-1 info) plus cross-round
  // propagation (round-2 info) shrink both rounds' candidate sets to the
  // truth — the combination the orchestrator uses.
  Xoshiro256 rng{13};
  const CrossRoundSolver solver;
  const Key128 key = rng.key128();
  const gift::KeySchedule sched{key, 3};
  const gift::RoundKey64 rk0 = sched.round_key64(0);
  const gift::RoundKey64 rk1 = sched.round_key64(1);

  std::array<CandidateSet, 16> a{}, b{};
  for (int i = 0; i < 400 && !(all_resolved(a) && all_resolved(b)); ++i) {
    const std::uint64_t pt = rng.block64();
    CrossRoundObservation obs;
    obs.pre_key_nibbles = pre_key_nibbles(pt, {}, 0);
    obs.next_round_index = 1;
    const auto states = gift::Gift64::round_states(pt, key);
    obs.present.assign(16, false);
    for (unsigned r = 1; r <= 2; ++r) {
      for (unsigned s = 0; s < 16; ++s) obs.present[nibble(states[r], s)] = true;
    }
    for (unsigned s = 0; s < 16; ++s) {
      (void)eliminate_candidates(a[s], obs.pre_key_nibbles[s], obs.present);
    }
    (void)solver.propagate_to_fixpoint(obs, a, b);
  }
  ASSERT_TRUE(all_resolved(a));
  const gift::RoundKey64 got = round_key_from(a);
  EXPECT_EQ(got.u, rk0.u);
  EXPECT_EQ(got.v, rk0.v);
  ASSERT_TRUE(all_resolved(b));
  const gift::RoundKey64 got1 = round_key_from(b);
  EXPECT_EQ(got1.u, rk1.u);
  EXPECT_EQ(got1.v, rk1.v);
}

TEST(Solver, AllPresentObservationPrunesNothing) {
  const CrossRoundSolver solver;
  std::array<CandidateSet, 16> a{}, b{};
  CrossRoundObservation obs;
  obs.present.assign(16, true);
  obs.next_round_index = 1;
  EXPECT_EQ(solver.propagate_to_fixpoint(obs, a, b), 0u);
}

TEST(Solver, NothingPresentIsTreatedAsNoise) {
  // No satisfying assignment at all => the constraint is skipped rather
  // than wiping the candidate sets.
  const CrossRoundSolver solver;
  std::array<CandidateSet, 16> a{}, b{};
  CrossRoundObservation obs;
  obs.present.assign(16, false);
  obs.next_round_index = 1;
  (void)solver.propagate_to_fixpoint(obs, a, b);
  for (unsigned s = 0; s < 16; ++s) {
    EXPECT_EQ(a[s].size(), 4u);
    EXPECT_EQ(b[s].size(), 4u);
  }
}

}  // namespace
}  // namespace grinch::attack
