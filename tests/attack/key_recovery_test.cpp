#include "attack/key_recovery.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gift/gift64.h"

namespace grinch::attack {
namespace {

TEST(ReverseEngineer, PinnedRuleInvertsLowBits) {
  // Paper Step 4: with both pre-key bits pinned to 1,
  // Key[i] <- NOT Index[a] and Key[j] <- NOT Index[b].
  for (unsigned index = 0; index < 16; ++index) {
    const unsigned c = reverse_engineer_pinned(index);
    EXPECT_EQ(c & 1u, 1u ^ (index & 1u));          // v
    EXPECT_EQ((c >> 1) & 1u, 1u ^ ((index >> 1) & 1u));  // u
  }
}

TEST(ReverseEngineer, GeneralRuleReducesToPinnedWhenBitsAreOne) {
  for (unsigned index = 0; index < 16; ++index) {
    // Pre-key nibble with low bits 11 (any high bits).
    for (unsigned high : {0x0u, 0x4u, 0x8u, 0xCu}) {
      const unsigned n = high | 0x3;
      EXPECT_EQ(reverse_engineer(n, index), reverse_engineer_pinned(index));
    }
  }
}

TEST(ReverseEngineer, GeneralRuleRecoversInjectedKeyBits) {
  Xoshiro256 rng{1};
  for (int i = 0; i < 100; ++i) {
    const unsigned n = rng.nibble();
    const unsigned c = static_cast<unsigned>(rng.uniform(4));
    const unsigned index = n ^ c;
    EXPECT_EQ(reverse_engineer(n, index), c);
  }
}

TEST(Assemble, RoundTripsThroughTheKeySchedule) {
  // Extract the four real round keys from a random master key; assembling
  // them must reproduce the master key exactly.
  Xoshiro256 rng{2};
  for (int i = 0; i < 50; ++i) {
    const Key128 key = rng.key128();
    const gift::KeySchedule sched{key, 4};
    std::vector<gift::RoundKey64> rks;
    for (unsigned r = 0; r < 4; ++r) rks.push_back(sched.round_key64(r));
    EXPECT_EQ(assemble_master_key(rks), key);
  }
}

TEST(Assemble, EachRoundKeyBitMapsToDistinctMasterBit) {
  // Flipping any single round-key bit flips exactly one master-key bit.
  Xoshiro256 rng{3};
  const Key128 key = rng.key128();
  const gift::KeySchedule sched{key, 4};
  std::vector<gift::RoundKey64> rks;
  for (unsigned r = 0; r < 4; ++r) rks.push_back(sched.round_key64(r));
  const Key128 base = assemble_master_key(rks);

  for (unsigned r = 0; r < 4; ++r) {
    for (unsigned i = 0; i < 16; ++i) {
      auto mod = rks;
      mod[r].u ^= static_cast<std::uint16_t>(1u << i);
      const Key128 changed = assemble_master_key(mod);
      const Key128 diff = changed ^ base;
      unsigned ones = 0;
      for (unsigned b = 0; b < 128; ++b) ones += diff.bit(b);
      EXPECT_EQ(ones, 1u) << "round " << r << " u-bit " << i;
    }
  }
}

TEST(Assemble, RecoveredKeyEncryptsCorrectly) {
  Xoshiro256 rng{4};
  const Key128 key = rng.key128();
  const gift::KeySchedule sched{key, 4};
  std::vector<gift::RoundKey64> rks;
  for (unsigned r = 0; r < 4; ++r) rks.push_back(sched.round_key64(r));
  const Key128 recovered = assemble_master_key(rks);
  const std::uint64_t pt = rng.block64();
  EXPECT_EQ(gift::Gift64::encrypt(pt, recovered),
            gift::Gift64::encrypt(pt, key));
}

}  // namespace
}  // namespace grinch::attack
