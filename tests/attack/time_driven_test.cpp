// Tests for the time-driven taxonomy point.  See the header note: this
// channel is structurally biased on GIFT, so the tests assert the honest
// properties — far better than random guessing, clean bookkeeping — not
// full key recovery.
#include "attack/time_driven.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gift/gift64.h"

namespace grinch::attack {
namespace {

/// Synthetic oracle with a *pure* single-access signal: time is constant
/// except +50 when the round-2 segment-0 access misses.  Validates the
/// estimator machinery in isolation from GIFT's structural confounds.
class SyntheticOracle final : public TimingOracle {
 public:
  explicit SyntheticOracle(const Key128& key) : key_(key) {}

  std::uint64_t time_encryption(std::uint64_t plaintext) override {
    const std::uint64_t state1 = gift::Gift64::encrypt_rounds(plaintext, key_, 1);
    const unsigned index = static_cast<unsigned>(state1 & 0xF);  // segment 0
    bool seen = false;
    for (unsigned j = 0; j < 16; ++j) {
      seen |= ((plaintext >> (4 * j)) & 0xF) == index;
    }
    return 1000 + (seen ? 0 : 50);
  }

 private:
  Key128 key_;
};

TEST(TimeDriven, EstimatorRecoversSegmentZeroFromPureSignal) {
  Xoshiro256 rng{1};
  const Key128 key = rng.key128();
  SyntheticOracle oracle{key};
  TimeDrivenConfig cfg;
  cfg.encryptions = 4000;
  cfg.round1_miss_cycles = 0;  // synthetic time has no round-1 component
  const TimeDrivenResult r = time_driven_attack(oracle, cfg);
  const gift::RoundKey64 truth = gift::extract_round_key64(key);
  EXPECT_EQ((r.round_key.u ^ truth.u) & 1u, 0u);
  EXPECT_EQ((r.round_key.v ^ truth.v) & 1u, 0u);
  EXPECT_GT(r.margins[0], 1.0);
}

TEST(TimeDriven, BeatsRandomGuessingOnTheRealVictim) {
  // Random guessing expects 4/16 segments (sd ~1.7).  With 2*10^5
  // timings the biased channel reaches roughly half the segments — well
  // above random, far from full recovery (the documented structural
  // bias).  Fully deterministic: fixed key and measurement seeds.
  Xoshiro256 rng{17};
  const Key128 key = rng.key128();
  VictimTimingOracle oracle{key};
  TimeDrivenConfig cfg;
  cfg.encryptions = 200000;
  cfg.seed = 99;
  const TimeDrivenResult r = time_driven_attack(oracle, cfg);
  EXPECT_EQ(r.encryptions, cfg.encryptions);
  EXPECT_GE(r.segments_correct(gift::extract_round_key64(key)), 7u);
}

TEST(TimeDriven, SegmentsCorrectHelperCountsExactMatches) {
  TimeDrivenResult r;
  r.round_key = gift::RoundKey64{0x0003, 0x0001};
  const gift::RoundKey64 truth{0x0001, 0x0001};
  // Segment 0: u=1,v=1 both -> match; segment 1: u differs -> mismatch;
  // all other segments are 0 in both.
  EXPECT_EQ(r.segments_correct(truth), 15u);
  EXPECT_EQ(r.segments_correct(r.round_key), 16u);
}

TEST(TimeDriven, OracleTimesVaryWithPlaintext) {
  Xoshiro256 rng{3};
  VictimTimingOracle oracle{rng.key128()};
  const std::uint64_t t1 = oracle.time_encryption(0);
  const std::uint64_t t2 = oracle.time_encryption(0x1111111111111111ull);
  // All-distinct vs single-value plaintexts produce different round-1
  // miss counts, hence different durations.
  EXPECT_NE(t1, t2);
}

TEST(TimeDriven, DeterministicForFixedSeed) {
  Xoshiro256 rng{4};
  const Key128 key = rng.key128();
  TimeDrivenConfig cfg;
  cfg.encryptions = 5000;
  VictimTimingOracle o1{key}, o2{key};
  const auto r1 = time_driven_attack(o1, cfg);
  const auto r2 = time_driven_attack(o2, cfg);
  EXPECT_EQ(r1.round_key.u, r2.round_key.u);
  EXPECT_EQ(r1.round_key.v, r2.round_key.v);
}

}  // namespace
}  // namespace grinch::attack
