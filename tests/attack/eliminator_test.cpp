#include "attack/eliminator.h"

#include <gtest/gtest.h>

namespace grinch::attack {
namespace {

target::LineSet presence(std::initializer_list<unsigned> present_indices) {
  target::LineSet p(16);
  for (unsigned i : present_indices) p[i] = true;
  return p;
}

TEST(CandidateSet, StartsFull) {
  CandidateSet set;
  EXPECT_EQ(set.size(), 4u);
  for (unsigned c = 0; c < 4; ++c) EXPECT_TRUE(set.contains(c));
  EXPECT_FALSE(set.resolved());
}

TEST(CandidateSet, RemoveAndResolve) {
  CandidateSet set;
  set.remove(0);
  set.remove(1);
  set.remove(3);
  EXPECT_TRUE(set.resolved());
  EXPECT_EQ(set.value(), 2u);
}

TEST(CandidateSet, ResetRestoresAll) {
  CandidateSet set;
  set.remove(2);
  set.reset();
  EXPECT_EQ(set.size(), 4u);
}

TEST(Eliminate, AbsentLineRemovesCandidate) {
  CandidateSet set;
  // n = 0: candidate c predicts index c.  Indices 0 and 1 present.
  const unsigned removed = eliminate_candidates(set, 0, presence({0, 1}));
  EXPECT_EQ(removed, 2u);
  EXPECT_TRUE(set.contains(0));
  EXPECT_TRUE(set.contains(1));
  EXPECT_FALSE(set.contains(2));
  EXPECT_FALSE(set.contains(3));
}

TEST(Eliminate, FullPresenceRemovesNothing) {
  CandidateSet set;
  target::LineSet all(16, true);
  EXPECT_EQ(eliminate_candidates(set, 7, all), 0u);
  EXPECT_EQ(set.size(), 4u);
}

TEST(Eliminate, PreKeyNibbleShiftsThePredictedIndices) {
  CandidateSet set;
  // n = 0xA: candidates predict 0xA^{0..3} = A,B,8,9.  Only 0x8 present.
  (void)eliminate_candidates(set, 0xA, presence({0x8}));
  EXPECT_TRUE(set.resolved());
  EXPECT_EQ(set.value(), 2u);  // 0xA ^ 2 = 0x8
}

TEST(Eliminate, EmptyingObservationTriggersNoiseReset) {
  CandidateSet set;
  unsigned restarts = 0;
  const unsigned removed =
      eliminate_candidates(set, 0, presence({0xF}), &restarts);
  EXPECT_EQ(removed, 0u);
  EXPECT_EQ(restarts, 1u);
  EXPECT_EQ(set.size(), 4u);  // reset to full
}

TEST(Eliminate, SequentialObservationsConverge) {
  CandidateSet set;
  (void)eliminate_candidates(set, 0x5, presence({0x5, 0x4, 0x9}));
  // 0x5^c present for c=0 (0x5) and c=1 (0x4); c=2 (0x7), c=3 (0x6) gone.
  EXPECT_EQ(set.size(), 2u);
  (void)eliminate_candidates(set, 0x3, presence({0x3, 0x8}));
  // survivors c=0 -> 0x3 present; c=1 -> 0x2 absent.
  EXPECT_TRUE(set.resolved());
  EXPECT_EQ(set.value(), 0u);
}

TEST(Helpers, AllResolvedAndAmbiguity) {
  std::array<CandidateSet, 16> masks{};
  EXPECT_FALSE(all_resolved(masks));
  EXPECT_EQ(ambiguity(masks), 1ull << 32);  // 4^16
  for (auto& m : masks) {
    m.remove(1);
    m.remove(2);
    m.remove(3);
  }
  EXPECT_TRUE(all_resolved(masks));
  EXPECT_EQ(ambiguity(masks), 1u);
}

TEST(Helpers, RoundKeyFromMasksEncodesUv) {
  std::array<CandidateSet, 16> masks{};
  for (unsigned s = 0; s < 16; ++s) {
    // Keep only candidate c = (s % 4): u = c>>1, v = c&1.
    for (unsigned c = 0; c < 4; ++c) {
      if (c != (s % 4)) masks[s].remove(c);
    }
  }
  const gift::RoundKey64 rk = round_key_from(masks);
  for (unsigned s = 0; s < 16; ++s) {
    EXPECT_EQ((rk.u >> s) & 1u, (s % 4) >> 1);
    EXPECT_EQ((rk.v >> s) & 1u, (s % 4) & 1u);
  }
}

TEST(EliminatorClass, TracksRestartsAndResolution) {
  CandidateEliminator e;
  EXPECT_FALSE(e.all_resolved());
  (void)e.update_segment(0, 0, presence({0}));
  EXPECT_TRUE(e.resolved(0));
  (void)e.update_segment(1, 0, presence({0xF}));  // noise
  EXPECT_EQ(e.restarts(), 1u);
  e.reset();
  EXPECT_EQ(e.restarts(), 0u);
  EXPECT_FALSE(e.resolved(0));
}

TEST(EliminatorClass, UpdateAllCoversEverySegment) {
  CandidateEliminator e;
  std::array<unsigned, 16> nibbles{};
  for (unsigned s = 0; s < 16; ++s) nibbles[s] = s;
  // Only index 0..3 present: segment s keeps candidates with s^c <= 3.
  (void)e.update_all(nibbles, presence({0, 1, 2, 3}));
  for (unsigned s = 0; s < 4; ++s) EXPECT_EQ(e.candidates(s).size(), 4u);
  for (unsigned s = 4; s < 16; ++s) {
    // predicted indices s^c stay in s's own 4-aligned block, all absent
    // => noise reset back to 4.
    EXPECT_EQ(e.candidates(s).size(), 4u);
  }
  EXPECT_EQ(e.restarts(), 12u);
}

}  // namespace
}  // namespace grinch::attack
