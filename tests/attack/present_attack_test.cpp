// Tests for the PRESENT-80 attack extension.
#include "attack/present_attack.h"

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "present/present.h"

namespace grinch::attack {
namespace {

Key128 random_key80(Xoshiro256& rng) {
  Key128 key = rng.key128();
  key.hi &= 0xFFFF;
  return key;
}

TEST(NibbleCandidates, StartsFullAndResolves) {
  NibbleCandidates c;
  EXPECT_EQ(c.size(), 16u);
  for (unsigned v = 0; v < 15; ++v) c.remove(v);
  EXPECT_TRUE(c.resolved());
  EXPECT_EQ(c.value(), 15u);
  c.reset();
  EXPECT_EQ(c.size(), 16u);
}

TEST(PresentPlatform, RoundZeroObservationIsKeyDependent) {
  Xoshiro256 rng{1};
  const Key128 key = random_key80(rng);
  soc::Present80DirectProbePlatform platform{{}, key};
  const std::uint64_t pt = rng.block64();
  const soc::Observation obs = platform.observe(pt);
  // Ground truth: round 0 indices are nibbles of pt XOR RK0 (the top 64
  // key-register bits).
  const std::uint64_t rk0 = (key.hi << 48) | (key.lo >> 16);
  std::vector<bool> expected(16, false);
  for (unsigned s = 0; s < 16; ++s) expected[nibble(pt ^ rk0, s)] = true;
  EXPECT_EQ(obs.present, expected);
}

TEST(PresentPlatform, CiphertextIsReal) {
  Xoshiro256 rng{2};
  const Key128 key = random_key80(rng);
  soc::Present80DirectProbePlatform platform{{}, key};
  const std::uint64_t pt = rng.block64();
  const soc::Observation obs = platform.observe(pt);
  EXPECT_EQ(obs.ciphertext, present::Present80::encrypt(pt, key));
  EXPECT_EQ(platform.last_ciphertext(), obs.ciphertext);
}

TEST(PresentAttack, RecoversFullEightyBitKey) {
  Xoshiro256 rng{3};
  for (int trial = 0; trial < 3; ++trial) {
    const Key128 key = random_key80(rng);
    soc::Present80DirectProbePlatform platform{{}, key};
    PresentAttackConfig cfg;
    cfg.seed = 100 + static_cast<std::uint64_t>(trial);
    Present80Attack attack{platform, cfg};
    const PresentAttackResult r = attack.run();
    ASSERT_TRUE(r.success) << "trial " << trial;
    EXPECT_EQ(r.recovered_key, key);
    EXPECT_TRUE(r.round_key_recovered);
    // Far cheaper than GIFT: no crafting, round-0 leak, joint segments.
    EXPECT_LT(r.cache_encryptions, 100u);
  }
}

TEST(PresentAttack, RoundKeyZeroMatchesSchedule) {
  Xoshiro256 rng{4};
  const Key128 key = random_key80(rng);
  soc::Present80DirectProbePlatform platform{{}, key};
  Present80Attack attack{platform, PresentAttackConfig{}};
  const PresentAttackResult r = attack.run();
  ASSERT_TRUE(r.round_key_recovered);
  const std::uint64_t rk0 = (key.hi << 48) | (key.lo >> 16);
  EXPECT_EQ(r.round_key0, rk0);
}

TEST(PresentAttack, DropoutOnTinyBudget) {
  Xoshiro256 rng{5};
  const Key128 key = random_key80(rng);
  soc::Present80DirectProbePlatform platform{{}, key};
  PresentAttackConfig cfg;
  cfg.max_encryptions = 2;
  Present80Attack attack{platform, cfg};
  const PresentAttackResult r = attack.run();
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.round_key_recovered);
}

TEST(PresentAttack, WiderProbeWindowStillSucceeds) {
  // Later probing accumulates more rounds of accesses (noise), raising
  // effort but not defeating the attack.
  Xoshiro256 rng{6};
  const Key128 key = random_key80(rng);
  soc::Present80DirectProbePlatform::Config pcfg;
  pcfg.probing_round = 3;
  soc::Present80DirectProbePlatform platform{pcfg, key};
  Present80Attack attack{platform, PresentAttackConfig{}};
  const PresentAttackResult r = attack.run();
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.recovered_key, key);
}

}  // namespace
}  // namespace grinch::attack
