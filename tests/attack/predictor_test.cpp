#include "attack/predictor.h"

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "gift/constants.h"
#include "gift/gift64.h"

namespace grinch::attack {
namespace {

TEST(Predictor, IndexEqualsPreKeyNibbleXorKeyBits) {
  // The GRINCH identity: monitored index = n_s XOR (u<<1|v).
  Xoshiro256 rng{1};
  for (int trial = 0; trial < 50; ++trial) {
    const Key128 key = rng.key128();
    const std::uint64_t pt = rng.block64();
    const gift::RoundKey64 rk0 = gift::extract_round_key64(key);
    const auto n = pre_key_nibbles(pt, {}, 0);
    const std::uint64_t state1 = gift::Gift64::encrypt_rounds(pt, key, 1);
    for (unsigned s = 0; s < 16; ++s) {
      const unsigned c = ((((rk0.u >> s) & 1u) << 1) | ((rk0.v >> s) & 1u));
      EXPECT_EQ(nibble(state1, s), n[s] ^ c) << "segment " << s;
    }
  }
}

TEST(Predictor, DeepStageIdentityHoldsWithKnownKeys) {
  Xoshiro256 rng{2};
  const Key128 key = rng.key128();
  const gift::KeySchedule sched{key, 5};
  std::vector<gift::RoundKey64> keys;
  for (unsigned r = 0; r < 5; ++r) keys.push_back(sched.round_key64(r));

  const std::uint64_t pt = rng.block64();
  for (unsigned stage = 0; stage < 4; ++stage) {
    const auto n = pre_key_nibbles(pt, keys, stage);
    const std::uint64_t state =
        gift::Gift64::encrypt_rounds(pt, key, stage + 1);
    const gift::RoundKey64& rk = keys[stage];
    for (unsigned s = 0; s < 16; ++s) {
      const unsigned c = ((((rk.u >> s) & 1u) << 1) | ((rk.v >> s) & 1u));
      EXPECT_EQ(nibble(state, s), n[s] ^ c)
          << "stage " << stage << " segment " << s;
    }
  }
}

TEST(Predictor, PreKeyStateIsKeyIndependentAtStageZero) {
  // First-round S-Box/PermBits involve no key: the pre-key state is a
  // pure function of the plaintext (GRINCH's enabling property).
  Xoshiro256 rng{3};
  const std::uint64_t pt = rng.block64();
  const std::uint64_t a = pre_key_state(pt, {}, 0);
  const std::uint64_t b = pre_key_state(pt, {}, 0);
  EXPECT_EQ(a, b);
}

TEST(Predictor, ConstantContributionOnlyTouchesBitThree) {
  for (unsigned round = 0; round < 28; ++round) {
    for (unsigned seg = 0; seg < 16; ++seg) {
      const unsigned c = constant_nibble_contribution(round, seg);
      EXPECT_EQ(c & 0x7, 0u) << "round " << round << " seg " << seg;
    }
  }
}

TEST(Predictor, ConstantContributionMatchesAddConstant64) {
  for (unsigned round = 0; round < 28; ++round) {
    const std::uint64_t delta =
        gift::add_constant64(0, gift::round_constant(round));
    for (unsigned seg = 0; seg < 16; ++seg) {
      EXPECT_EQ(constant_nibble_contribution(round, seg),
                nibble(delta, seg))
          << "round " << round << " seg " << seg;
    }
  }
}

TEST(Predictor, KeyFacingBitsUnaffectedByConstants) {
  // Constants only touch bit 3 of a segment — never the key-facing bits
  // 0/1 that the attack pins (asserted here because the whole crafting
  // strategy depends on it).
  for (unsigned round = 0; round < 28; ++round) {
    const std::uint64_t delta =
        gift::add_constant64(0, gift::round_constant(round));
    for (unsigned s = 0; s < 16; ++s) {
      EXPECT_EQ(bit(delta, 4 * s), 0u);
      EXPECT_EQ(bit(delta, 4 * s + 1), 0u);
    }
  }
}

}  // namespace
}  // namespace grinch::attack
