// Algorithm 2 + Step 5: crafted plaintexts must pin the target segment's
// key-facing pre-key bits to 1 at any attack stage.
#include "attack/plaintext_crafter.h"

#include <gtest/gtest.h>

#include "attack/predictor.h"
#include "common/bits.h"
#include "common/rng.h"
#include "gift/gift64.h"

namespace grinch::attack {
namespace {

TEST(Crafter, StateHasListValuesInSourceSegments) {
  Xoshiro256 rng{1};
  PlaintextCrafter crafter{rng};
  const TargetBits t = set_target_bits(5);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t state = crafter.craft_state(t);
    const unsigned va = nibble(state, t.seg_a);
    const unsigned vb = nibble(state, t.seg_b);
    EXPECT_NE(std::find(t.list_a.begin(), t.list_a.end(), va), t.list_a.end());
    EXPECT_NE(std::find(t.list_b.begin(), t.list_b.end(), vb), t.list_b.end());
  }
}

TEST(Crafter, StageZeroPlaintextPinsPreKeyBits) {
  Xoshiro256 rng{2};
  PlaintextCrafter crafter{rng};
  for (unsigned s = 0; s < 16; ++s) {
    const TargetBits t = set_target_bits(s);
    const std::uint64_t pt = crafter.craft_plaintext(t, {}, 0);
    const auto nibbles = pre_key_nibbles(pt, {}, 0);
    EXPECT_EQ(nibbles[s] & 0x3, 0x3u) << "segment " << s;
  }
}

TEST(Crafter, DeepStagePlaintextPinsPreKeyBits) {
  // Step 5: with the earlier round keys known, crafting still pins the
  // monitored segment at stages 1..3.
  Xoshiro256 rng{3};
  PlaintextCrafter crafter{rng};
  const Key128 key = rng.key128();
  const gift::KeySchedule sched{key, 4};
  std::vector<gift::RoundKey64> keys;
  for (unsigned r = 0; r < 4; ++r) keys.push_back(sched.round_key64(r));

  for (unsigned stage = 1; stage < 4; ++stage) {
    for (unsigned s = 0; s < 16; s += 5) {
      const TargetBits t = set_target_bits(s);
      const std::uint64_t pt = crafter.craft_plaintext(t, keys, stage);
      const auto nibbles = pre_key_nibbles(pt, keys, stage);
      EXPECT_EQ(nibbles[s] & 0x3, 0x3u) << "stage " << stage << " seg " << s;
    }
  }
}

TEST(Crafter, InversionRoundTripsThroughTheCipher) {
  Xoshiro256 rng{4};
  const Key128 key = rng.key128();
  const gift::KeySchedule sched{key, 4};
  std::vector<gift::RoundKey64> keys;
  for (unsigned r = 0; r < 4; ++r) keys.push_back(sched.round_key64(r));

  for (unsigned stage = 0; stage <= 3; ++stage) {
    const std::uint64_t desired = rng.block64();
    const std::uint64_t pt = invert_to_plaintext(desired, keys, stage);
    EXPECT_EQ(gift::Gift64::encrypt_rounds(pt, key, stage), desired)
        << "stage " << stage;
  }
}

TEST(Crafter, CraftedPlaintextsVary) {
  // The non-pinned segments are randomised — consecutive crafts must not
  // repeat (they drive the candidate elimination diversity).
  Xoshiro256 rng{5};
  PlaintextCrafter crafter{rng};
  const TargetBits t = set_target_bits(0);
  const std::uint64_t a = crafter.craft_plaintext(t, {}, 0);
  const std::uint64_t b = crafter.craft_plaintext(t, {}, 0);
  EXPECT_NE(a, b);
}

TEST(Crafter, PinnedIndexHasKnownLowBitsUnderTrueKey) {
  // The actual monitored S-Box index under the true key has low bits
  // (1^v, 1^u): the paper's Key[i] <- NOT Index[a] inversion works.
  Xoshiro256 rng{6};
  PlaintextCrafter crafter{rng};
  const Key128 key = rng.key128();
  const gift::RoundKey64 rk0 = gift::extract_round_key64(key);

  for (unsigned s = 0; s < 16; ++s) {
    const TargetBits t = set_target_bits(s);
    const std::uint64_t pt = crafter.craft_plaintext(t, {}, 0);
    const std::uint64_t state1 = gift::Gift64::encrypt_rounds(pt, key, 1);
    const unsigned index = nibble(state1, s);
    const unsigned v = (rk0.v >> s) & 1u;
    const unsigned u = (rk0.u >> s) & 1u;
    EXPECT_EQ(index & 1u, 1u ^ v);
    EXPECT_EQ((index >> 1) & 1u, 1u ^ u);
  }
}

}  // namespace
}  // namespace grinch::attack
