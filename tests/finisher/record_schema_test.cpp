// Campaign record schema for finisher-bearing trials
// (campaign/record.h): partial records self-describe the residual
// finisher's outcome with deterministic fields only, clean records and
// finisher-less partials omit the block entirely, every emitted line
// round-trips through the strict JSON parser (the direct string build
// must stay equivalent to a dump_compact() document), and the campaign
// spec's finish knobs survive a canonical()/from_json round trip.
#include "campaign/record.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "campaign/spec.h"
#include "common/json.h"
#include "common/rng.h"
#include "target/registry.h"

namespace grinch::campaign {
namespace {

using Recovery = target::Gift64Recovery;
using Result = target::RecoveryResult<Recovery>;

Result base_result() {
  Result r;
  r.total_encryptions = 4002;
  r.offline_trials = 7;
  r.noise_restarts = 3;
  r.segment_resets[2] = 3;
  r.dropped_observations = 1999;
  return r;
}

json::Value parse_record(const std::string& line) {
  EXPECT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  std::string error;
  const auto doc = json::parse(line, &error);
  EXPECT_TRUE(doc.has_value()) << error;
  return doc.value_or(json::Value{});
}

TEST(FinisherRecordSchema, FinishedPartialSelfDescribesTheFinisher) {
  CampaignSpec spec;
  spec.fault_profile = "saturating";
  Result r = base_result();
  r.failed_stage = 1;
  r.surviving_masks.fill(0xF);
  r.residual_key_bits = 20.0;
  r.finisher.outcome = finisher::FinisherOutcome::kRecovered;
  r.finisher.candidates_tested = 42;
  r.finisher.rank = 41;
  r.finisher.frontier_rank = 42;
  r.finisher.offline_trials = 84;
  r.finisher.search_space_bits = 20.0;
  r.finisher.wall_seconds = 1.5;  // must NOT be serialized
  r.success = true;
  Xoshiro256 rng{0xFEED};
  const Key128 victim = rng.key128();
  r.recovered_key = victim;

  const std::string line =
      trial_record<Recovery>(spec, 5, victim, 0xA, 0xB, r);
  const json::Value doc = parse_record(line);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.get("failed_stage")->as_u64(99), 1u);
  ASSERT_NE(doc.get("finisher_outcome"), nullptr);
  EXPECT_EQ(doc.get("finisher_outcome")->as_string(), "recovered");
  EXPECT_EQ(doc.get("finisher_candidates")->as_u64(), 42u);
  EXPECT_EQ(doc.get("finisher_rank")->as_u64(99), 41u);
  EXPECT_EQ(doc.get("finisher_frontier")->as_u64(), 42u);
  EXPECT_EQ(doc.get("finisher_offline_trials")->as_u64(), 84u);
  EXPECT_EQ(doc.get("finisher_search_bits")->as_u64(), 20u);
  EXPECT_EQ(doc.get("verified")->as_bool(false), true);
  // Wall time is nondeterministic and must stay out of record bytes.
  EXPECT_EQ(doc.get("finisher_wall_seconds"), nullptr);
  EXPECT_EQ(line.find("wall"), std::string::npos);
}

TEST(FinisherRecordSchema, ExhaustedPartialKeepsTheFrontier) {
  CampaignSpec spec;
  Result r = base_result();
  r.failed_stage = 0;
  r.surviving_masks.fill(0xF);
  r.finisher.outcome = finisher::FinisherOutcome::kExhaustedBudget;
  r.finisher.candidates_tested = 128;
  r.finisher.frontier_rank = 128;
  Xoshiro256 rng{0xFEED};
  const Key128 victim = rng.key128();
  const json::Value doc =
      parse_record(trial_record<Recovery>(spec, 0, victim, 1, 2, r));
  EXPECT_EQ(doc.get("finisher_outcome")->as_string(), "exhausted_budget");
  EXPECT_EQ(doc.get("finisher_frontier")->as_u64(), 128u);
  EXPECT_EQ(doc.get("success")->as_bool(true), false);
}

TEST(FinisherRecordSchema, FinisherlessRecordsOmitTheBlock) {
  CampaignSpec spec;
  Xoshiro256 rng{0xFEED};
  const Key128 victim = rng.key128();
  // A clean full recovery: no partial fields, no finisher fields.
  Result clean = base_result();
  clean.success = true;
  clean.recovered_key = victim;
  const json::Value full =
      parse_record(trial_record<Recovery>(spec, 0, victim, 1, 2, clean));
  EXPECT_EQ(full.get("failed_stage"), nullptr);
  EXPECT_EQ(full.get("finisher_outcome"), nullptr);
  // A plain partial (finish mode off): partial fields, no finisher block.
  Result partial = base_result();
  partial.failed_stage = 2;
  partial.surviving_masks.fill(0x3);
  partial.residual_key_bits = 48.0;
  const json::Value doc =
      parse_record(trial_record<Recovery>(spec, 1, victim, 1, 2, partial));
  ASSERT_NE(doc.get("failed_stage"), nullptr);
  EXPECT_EQ(doc.get("finisher_outcome"), nullptr);
  EXPECT_EQ(doc.get("finisher_candidates"), nullptr);
}

TEST(FinisherRecordSchema, CountTrialTalliesFinishedRecoveries) {
  Xoshiro256 rng{0xFEED};
  const Key128 victim = rng.key128();
  Counters counters;
  Result finished = base_result();
  finished.failed_stage = 1;
  finished.success = true;
  finished.recovered_key = victim;
  finished.finisher.outcome = finisher::FinisherOutcome::kRecovered;
  count_trial<Recovery>(counters, victim, finished);
  EXPECT_EQ(counters.verified, 1u);
  EXPECT_EQ(counters.partial, 1u);
  EXPECT_EQ(counters.finished, 1u);
  // An exhausted finisher is a partial but not a finish.
  Result exhausted = base_result();
  exhausted.failed_stage = 1;
  exhausted.finisher.outcome = finisher::FinisherOutcome::kExhaustedBudget;
  count_trial<Recovery>(counters, victim, exhausted);
  EXPECT_EQ(counters.partial, 2u);
  EXPECT_EQ(counters.finished, 1u);
  // Counters::finished folds across shards like every other tally.
  Counters sum;
  sum += counters;
  sum += counters;
  EXPECT_EQ(sum.finished, 2u);
}

TEST(FinisherRecordSchema, SpecFinishKnobsRoundTrip) {
  CampaignSpec spec;
  spec.finish = true;
  spec.finish_budget = 4096;
  ASSERT_TRUE(spec.validate());
  const std::string canonical = spec.canonical();
  EXPECT_NE(canonical.find("\"finish\":true"), std::string::npos);
  EXPECT_NE(canonical.find("\"finish_budget\":4096"), std::string::npos);
  std::string error;
  const auto parsed = CampaignSpec::parse(canonical, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->finish);
  EXPECT_EQ(parsed->finish_budget, 4096u);
  EXPECT_EQ(parsed->canonical(), canonical);
  EXPECT_EQ(parsed->fingerprint(), spec.fingerprint());
  // The knobs are part of the spec's identity: flipping them must change
  // the fingerprint (a finish campaign is not resumable as a non-finish
  // one).
  CampaignSpec other = spec;
  other.finish = false;
  EXPECT_NE(other.fingerprint(), spec.fingerprint());
}

}  // namespace
}  // namespace grinch::campaign
