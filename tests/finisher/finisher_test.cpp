// ResidualFinisher suite (finisher/finisher.h): the maximum-likelihood
// residual search on finish-mode partials.
//
// FinisherSearch covers the outcome contract — a saturating GIFT-64
// engine partial finishes to the verified true key, the reported outcome
// is byte-identical for serial / 1 / 2 / 8-thread verification and for
// any chunk size, a pre-set stop flag interrupts before any work, and
// the evidence_inconsistent outcome fires exactly when the ranked space
// exhausts without a verified key (truth outside the masks, corrupted
// pair, or no pairs at all).
//
// FinisherResume pins the resume contract: a budget-exhausted run's
// frontier_rank, fed back as start_rank, continues the search with no
// candidate retested and no candidate skipped — the two legs together
// report the same winner as one uninterrupted run.
#include "finisher/finisher.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gift/key_schedule.h"
#include "runner/thread_pool.h"
#include "target/faulty_source.h"
#include "target/registry.h"

namespace grinch::finisher {
namespace {

using target::Gift64Recovery;
using target::FaultProfile;
using Recovery = Gift64Recovery;
using Engine = target::KeyRecoveryEngine<Recovery>;
using Result = target::RecoveryResult<Recovery>;

Key128 victim_key(std::uint64_t salt) {
  Xoshiro256 rng{Recovery::kDefaultSeed ^ salt};
  return Recovery::canonical_key(rng.key128());
}

std::array<unsigned, 16> truth_candidates(const Key128& key, unsigned stage) {
  gift::KeySchedule schedule{key, stage + 1};
  const gift::RoundKey64 rk = schedule.round_key64(stage);
  std::array<unsigned, 16> truth{};
  for (unsigned s = 0; s < 16; ++s) {
    truth[s] = (((rk.u >> s) & 1u) << 1) | ((rk.v >> s) & 1u);
  }
  return truth;
}

/// A real finish-mode partial: the engine under the saturating profile
/// with a zero-candidate finisher budget exports the evidence, the ML
/// stage keys and the known pairs, but tests nothing.
Result saturating_partial(std::uint64_t salt) {
  Engine::Config cfg = Engine::Config::noisy_defaults();
  cfg.vote_threshold = 16;
  cfg.max_encryptions = 4000;
  cfg.faults = FaultProfile::saturating();
  cfg.finish_partials = true;
  cfg.finish_max_candidates = 0;
  return target::recover_key<Recovery>(victim_key(salt), cfg);
}

/// A hand-built finish-mode partial for stage 1 of GIFT-64: the other
/// three stage keys are the true round keys; `open_segments` low
/// segments keep {truth, truth^1} alive while the rest are resolved to
/// the truth.  With `truth_on_top` the truth leads every slot (rank 0);
/// without it the impostor out-presences the truth by a per-segment
/// deficit of 2+s, pushing the true assignment to a known-positive rank.
Result synthetic_partial(const Key128& key, unsigned open_segments,
                         bool truth_on_top) {
  constexpr unsigned kStage = 1;
  Result partial;
  gift::KeySchedule schedule{key, Recovery::kStages};
  for (unsigned st = 0; st < Recovery::kStages; ++st) {
    partial.stage_keys.push_back(schedule.round_key64(st));
  }
  partial.failed_stage = kStage;

  const auto truth = truth_candidates(key, kStage);
  StageEvidence<Recovery> ev;
  ev.stage = kStage;
  ev.assumed = true;
  for (unsigned s = 0; s < 16; ++s) {
    const unsigned t = truth[s];
    ev.updates[s] = 100;
    if (s < open_segments) {
      const unsigned impostor = t ^ 1u;
      ev.masks[s] = static_cast<std::uint16_t>((1u << t) | (1u << impostor));
      ev.presence[s][t] = truth_on_top ? 90 : 90 - (2 + s);
      ev.presence[s][impostor] = truth_on_top ? 60 : 90;
    } else {
      ev.masks[s] = static_cast<std::uint16_t>(1u << t);
      ev.presence[s][t] = 90;
    }
  }
  partial.stage_evidence.push_back(ev);

  Xoshiro256 rng{0x5EED ^ key.lo};
  for (unsigned i = 0; i < 2; ++i) {
    const std::uint64_t pt = rng.block64();
    partial.known_pairs.push_back({pt, Recovery::reference_encrypt(pt, key)});
  }
  return partial;
}

void expect_same_outcome(const FinisherStats& got, const FinisherStats& want,
                         const std::string& label) {
  EXPECT_EQ(got.outcome, want.outcome) << label;
  EXPECT_EQ(got.candidates_tested, want.candidates_tested) << label;
  EXPECT_EQ(got.rank, want.rank) << label;
  EXPECT_EQ(got.frontier_rank, want.frontier_rank) << label;
  EXPECT_EQ(got.offline_trials, want.offline_trials) << label;
  EXPECT_EQ(got.search_space_bits, want.search_space_bits) << label;
  EXPECT_EQ(got.interrupted, want.interrupted) << label;
}

// ------------------------------------------------------------------ //
//  FinisherSearch                                                     //
// ------------------------------------------------------------------ //

TEST(FinisherSearch, EngineExportsTheFinishContract) {
  const Result partial = saturating_partial(0x901);
  EXPECT_FALSE(partial.success);
  ASSERT_EQ(partial.stage_keys.size(), Recovery::kStages);
  ASSERT_EQ(partial.known_pairs.size(), 2u);
  unsigned assumed = 0;
  for (const auto& ev : partial.stage_evidence) assumed += ev.assumed;
  EXPECT_GT(assumed, 0u) << "the saturating profile must starve a stage";
  // The zero-budget finisher ran, tested nothing, and left rank 0 as the
  // resumable frontier; residual_key_bits was refined to the space it
  // would search.
  EXPECT_EQ(partial.finisher.outcome, FinisherOutcome::kExhaustedBudget);
  EXPECT_EQ(partial.finisher.candidates_tested, 0u);
  EXPECT_EQ(partial.finisher.frontier_rank, 0u);
  EXPECT_GT(partial.finisher.search_space_bits, 0.0);
  EXPECT_EQ(partial.residual_key_bits, partial.finisher.search_space_bits);
  // The pairs are exact victim encryptions (probe faults never corrupt
  // the victim's ciphertext).
  for (const auto& pair : partial.known_pairs) {
    EXPECT_EQ(Recovery::reference_encrypt(pair.plaintext, victim_key(0x901)),
              pair.ciphertext);
  }
}

TEST(FinisherSearch, RecoversTheTrueKeyFromASaturatingPartial) {
  const Key128 key = victim_key(0x901);
  const Result partial = saturating_partial(0x901);
  Options options;
  const FinishReport<Recovery> report = finish_partial(partial, options);
  ASSERT_EQ(report.stats.outcome, FinisherOutcome::kRecovered);
  EXPECT_EQ(report.key, key);
  EXPECT_EQ(report.stats.candidates_tested, report.stats.rank + 1);
  EXPECT_EQ(report.stats.frontier_rank, report.stats.rank + 1);
  EXPECT_FALSE(report.stats.interrupted);
  // The presence evidence must place the truth close to the front of a
  // huge space — that separation is the whole point of the ML ranking.
  EXPECT_GT(report.stats.search_space_bits, 32.0);
  EXPECT_LT(report.stats.rank, 4096u);
}

TEST(FinisherSearch, ThreadCountDoesNotChangeTheOutcome) {
  const Key128 key = victim_key(0x902);
  const Result partial = saturating_partial(0x902);
  Options options;
  const FinishReport<Recovery> serial = finish_partial(partial, options);
  ASSERT_EQ(serial.stats.outcome, FinisherOutcome::kRecovered);
  EXPECT_EQ(serial.key, key);
  for (const unsigned threads : {1u, 2u, 8u}) {
    runner::ThreadPool pool{threads};
    Options parallel = options;
    parallel.pool = &pool;
    const FinishReport<Recovery> report = finish_partial(partial, parallel);
    expect_same_outcome(report.stats, serial.stats,
                        std::to_string(threads) + " threads");
    EXPECT_EQ(report.key, serial.key) << threads << " threads";
  }
}

TEST(FinisherSearch, ChunkSizeDoesNotChangeTheOutcome) {
  const Key128 key = victim_key(0x903);
  const Result partial = synthetic_partial(key, 16, false);
  Options options;
  const FinishReport<Recovery> reference = finish_partial(partial, options);
  ASSERT_EQ(reference.stats.outcome, FinisherOutcome::kRecovered);
  EXPECT_EQ(reference.key, key);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{257}}) {
    Options opts = options;
    opts.chunk = chunk;
    const FinishReport<Recovery> report = finish_partial(partial, opts);
    expect_same_outcome(report.stats, reference.stats,
                        "chunk " + std::to_string(chunk));
    EXPECT_EQ(report.key, reference.key) << "chunk " << chunk;
  }
}

TEST(FinisherSearch, StopFlagInterruptsBeforeAnyWork) {
  const Result partial = synthetic_partial(victim_key(0x904), 4, true);
  std::atomic<bool> stop{true};
  Options options;
  options.stop = &stop;
  const FinishReport<Recovery> report = finish_partial(partial, options);
  EXPECT_EQ(report.stats.outcome, FinisherOutcome::kExhaustedBudget);
  EXPECT_TRUE(report.stats.interrupted);
  EXPECT_EQ(report.stats.candidates_tested, 0u);
  EXPECT_EQ(report.stats.frontier_rank, 0u);
}

TEST(FinisherSearch, InconsistentWhenTheTruthIsOutsideTheMasks) {
  const Key128 key = victim_key(0x905);
  Result partial = synthetic_partial(key, 3, true);
  // Lock segment 0 onto the impostor alone: no assignment can verify.
  auto& ev = partial.stage_evidence.front();
  const unsigned truth0 = truth_candidates(key, 1)[0];
  ev.masks[0] = static_cast<std::uint16_t>(1u << (truth0 ^ 1u));
  Options options;
  const FinishReport<Recovery> report = finish_partial(partial, options);
  EXPECT_EQ(report.stats.outcome, FinisherOutcome::kEvidenceInconsistent);
  // The whole (small) ranked space was actually tested before giving up.
  EXPECT_EQ(report.stats.candidates_tested, 4u);  // 2^2 open * 1 locked
}

TEST(FinisherSearch, InconsistentOnACorruptedPair) {
  const Key128 key = victim_key(0x906);
  Result partial = synthetic_partial(key, 2, true);
  partial.known_pairs[0].ciphertext ^= 1u;  // exact pairs are load-bearing
  Options options;
  const FinishReport<Recovery> report = finish_partial(partial, options);
  EXPECT_EQ(report.stats.outcome, FinisherOutcome::kEvidenceInconsistent);
  EXPECT_EQ(report.stats.candidates_tested, 4u);
}

TEST(FinisherSearch, InconsistentWithoutKnownPairs) {
  Result partial = synthetic_partial(victim_key(0x907), 2, true);
  partial.known_pairs.clear();
  Options options;
  const FinishReport<Recovery> report = finish_partial(partial, options);
  EXPECT_EQ(report.stats.outcome, FinisherOutcome::kEvidenceInconsistent);
  EXPECT_EQ(report.stats.candidates_tested, 0u);
}

// ------------------------------------------------------------------ //
//  FinisherResume                                                     //
// ------------------------------------------------------------------ //

TEST(FinisherResume, BudgetExhaustionLeavesAResumableFrontier) {
  const Key128 key = victim_key(0x908);
  const Result partial = synthetic_partial(key, 3, false);
  Options options;
  options.chunk = 2;  // force the winner across chunk boundaries
  const FinishReport<Recovery> oneshot = finish_partial(partial, options);
  ASSERT_EQ(oneshot.stats.outcome, FinisherOutcome::kRecovered);
  EXPECT_EQ(oneshot.key, key);
  const std::uint64_t winner = oneshot.stats.rank;
  ASSERT_GE(winner, 1u) << "the impostor evidence must demote the truth";

  // Leg 1: budget exactly one candidate short of the winner.
  Options leg1 = options;
  leg1.max_candidates = winner;
  const FinishReport<Recovery> first = finish_partial(partial, leg1);
  EXPECT_EQ(first.stats.outcome, FinisherOutcome::kExhaustedBudget);
  EXPECT_FALSE(first.stats.interrupted);
  EXPECT_EQ(first.stats.candidates_tested, winner);
  EXPECT_EQ(first.stats.frontier_rank, winner);

  // Leg 2: resume from the recorded frontier with fresh budget.
  Options leg2 = options;
  leg2.start_rank = first.stats.frontier_rank;
  const FinishReport<Recovery> second = finish_partial(partial, leg2);
  ASSERT_EQ(second.stats.outcome, FinisherOutcome::kRecovered);
  EXPECT_EQ(second.key, key);
  EXPECT_EQ(second.stats.rank, winner) << "ranks are global, not per-leg";
  EXPECT_EQ(second.stats.candidates_tested, 1u);
  EXPECT_EQ(first.stats.candidates_tested + second.stats.candidates_tested,
            oneshot.stats.candidates_tested);
  EXPECT_EQ(first.stats.offline_trials + second.stats.offline_trials,
            oneshot.stats.offline_trials);
}

TEST(FinisherResume, StartRankBeyondTheSpaceIsInconsistent) {
  // A frontier at/past the space size means a previous run exhausted the
  // ranked space without a verified key.
  const Result partial = synthetic_partial(victim_key(0x909), 2, true);
  Options options;
  options.start_rank = 4;  // space is exactly 2^2
  const FinishReport<Recovery> report = finish_partial(partial, options);
  EXPECT_EQ(report.stats.outcome, FinisherOutcome::kEvidenceInconsistent);
  EXPECT_EQ(report.stats.candidates_tested, 0u);
}

}  // namespace
}  // namespace grinch::finisher
