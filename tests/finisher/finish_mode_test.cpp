// Engine finish-mode suite (Config::finish_partials), registry-wide:
// a saturating channel run that would degrade to a partial escalates
// through the residual finisher into a VERIFIED full-key recovery for
// every registered cipher; finish mode is byte-inert on a clean channel;
// the noisy-channel accounting accumulated before degradation survives
// into the finished result with the finisher's offline work summed on
// top; and the WideRecoveryEngine reproduces the scalar finish-mode
// result lane for lane.
#include "target/wide_engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <tuple>
#include <type_traits>
#include <vector>

#include "common/rng.h"
#include "runner/trial_runner.h"
#include "target/faulty_source.h"
#include "target/registry.h"

namespace grinch::target {
namespace {

template <typename Tuple>
struct AsTestTypes;
template <typename... Ts>
struct AsTestTypes<std::tuple<Ts...>> {
  using type = ::testing::Types<Ts...>;
};
using AllTargets = AsTestTypes<RegisteredRecoveries>::type;

template <typename StageKey>
bool stage_keys_equal(const StageKey& a, const StageKey& b) {
  if constexpr (std::is_integral_v<StageKey>) {
    return a == b;
  } else {
    return a.u == b.u && a.v == b.v;
  }
}

/// Every deterministic RecoveryResult field, finisher contract included
/// (wall_seconds is the one legitimately nondeterministic field).
template <typename Recovery>
void expect_equal_finish(const RecoveryResult<Recovery>& got,
                         const RecoveryResult<Recovery>& want,
                         const std::string& label) {
  EXPECT_EQ(got.success, want.success) << label;
  EXPECT_EQ(got.key_verified, want.key_verified) << label;
  EXPECT_EQ(got.recovered_key, want.recovered_key) << label;
  EXPECT_EQ(got.total_encryptions, want.total_encryptions) << label;
  EXPECT_EQ(got.offline_trials, want.offline_trials) << label;
  EXPECT_EQ(got.stage_encryptions, want.stage_encryptions) << label;
  EXPECT_EQ(got.noise_restarts, want.noise_restarts) << label;
  EXPECT_EQ(got.segment_resets, want.segment_resets) << label;
  EXPECT_EQ(got.failed_stage, want.failed_stage) << label;
  EXPECT_EQ(got.surviving_masks, want.surviving_masks) << label;
  EXPECT_EQ(got.residual_key_bits, want.residual_key_bits) << label;
  ASSERT_EQ(got.stage_keys.size(), want.stage_keys.size()) << label;
  for (std::size_t i = 0; i < want.stage_keys.size(); ++i) {
    EXPECT_TRUE(stage_keys_equal(got.stage_keys[i], want.stage_keys[i]))
        << label << " stage " << i;
  }
  EXPECT_EQ(got.finisher.outcome, want.finisher.outcome) << label;
  EXPECT_EQ(got.finisher.candidates_tested, want.finisher.candidates_tested)
      << label;
  EXPECT_EQ(got.finisher.rank, want.finisher.rank) << label;
  EXPECT_EQ(got.finisher.frontier_rank, want.finisher.frontier_rank) << label;
  EXPECT_EQ(got.finisher.offline_trials, want.finisher.offline_trials)
      << label;
  EXPECT_EQ(got.finisher.search_space_bits, want.finisher.search_space_bits)
      << label;
  EXPECT_EQ(got.known_pairs, want.known_pairs) << label;
  ASSERT_EQ(got.stage_evidence.size(), want.stage_evidence.size()) << label;
  for (std::size_t i = 0; i < want.stage_evidence.size(); ++i) {
    EXPECT_EQ(got.stage_evidence[i].stage, want.stage_evidence[i].stage)
        << label;
    EXPECT_EQ(got.stage_evidence[i].assumed, want.stage_evidence[i].assumed)
        << label;
    EXPECT_EQ(got.stage_evidence[i].masks, want.stage_evidence[i].masks)
        << label;
    EXPECT_EQ(got.stage_evidence[i].presence,
              want.stage_evidence[i].presence)
        << label;
  }
}

template <typename Recovery>
class FinisherEngine : public ::testing::Test {
 protected:
  using Config = typename KeyRecoveryEngine<Recovery>::Config;

  static Key128 victim_key(std::uint64_t salt) {
    Xoshiro256 rng{Recovery::kDefaultSeed ^ salt};
    Key128 key = Recovery::canonical_key(rng.key128());
    // Zero the low 16 key-register bits so PRESENT's offline search
    // exits early on the true candidate (pure test speed).
    key.lo &= ~std::uint64_t{0xFFFF};
    return Recovery::canonical_key(key);
  }

  /// The documented escalation recipe (docs/ROBUSTNESS.md): saturating
  /// channel, vote threshold hardened past the burst length, tight
  /// budget — and the finisher turned on.
  static Config saturating_finish_config() {
    Config cfg = Config::noisy_defaults();
    cfg.vote_threshold = 16;
    cfg.max_encryptions = 4000;
    cfg.faults = FaultProfile::saturating();
    cfg.finish_partials = true;
    return cfg;
  }
};
TYPED_TEST_SUITE(FinisherEngine, AllTargets);

TYPED_TEST(FinisherEngine, SaturatingChannelFinishesToTheVerifiedKey) {
  // The headline robustness claim: where the elimination pipeline alone
  // degrades to an honest partial (fault_injection_test), finish mode
  // turns the same channel into a verified full-key recovery.
  using Recovery = TypeParam;
  for (const std::uint64_t salt : {0x700u, 0x701u, 0x702u}) {
    const Key128 key = this->victim_key(salt);
    typename TestFixture::Config cfg = TestFixture::saturating_finish_config();
    cfg.seed = Recovery::kDefaultSeed ^ (salt * 0x9E37u);
    const auto r = recover_key<Recovery>(key, cfg);
    ASSERT_EQ(r.finisher.outcome, finisher::FinisherOutcome::kRecovered)
        << "salt " << salt;
    EXPECT_TRUE(r.success) << "salt " << salt;
    EXPECT_TRUE(r.key_verified) << "salt " << salt;
    EXPECT_EQ(r.recovered_key, key) << "salt " << salt;
    // The channel never resolved the stages — the finisher did.
    EXPECT_FALSE(r.stages_resolved) << "salt " << salt;
    EXPECT_LT(r.failed_stage, Recovery::kStages) << "salt " << salt;
    EXPECT_GE(r.total_encryptions, cfg.max_encryptions) << "salt " << salt;
    EXPECT_GT(r.finisher.search_space_bits, 0.0) << "salt " << salt;
    EXPECT_EQ(r.residual_key_bits, r.finisher.search_space_bits)
        << "salt " << salt;
  }
}

TYPED_TEST(FinisherEngine, FinishModeIsInertOnACleanChannel) {
  // With the channel clean the quotas never bind, so finish mode must be
  // byte-identical to the plain engine — the acceptance bar for layering
  // this PR onto the working core.
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0x711);
  const auto plain = recover_key<Recovery>(key);
  typename TestFixture::Config cfg;
  cfg.finish_partials = true;
  const auto finish = recover_key<Recovery>(key, cfg);
  ASSERT_TRUE(plain.success);
  expect_equal_finish(finish, plain, "clean channel");
  EXPECT_EQ(finish.finisher.outcome, finisher::FinisherOutcome::kNotRun);
  EXPECT_TRUE(finish.known_pairs.empty());
  EXPECT_TRUE(finish.stage_evidence.empty());
}

TYPED_TEST(FinisherEngine, NoiseAccountingIsPreservedAndSummed) {
  // Regression for the noise-accounting contract: segment_resets /
  // noise_restarts accumulated before the degradation survive into the
  // finished result unchanged, noise_restarts stays the exact sum of the
  // per-segment reset counters, and the finisher's offline work is
  // SUMMED onto offline_trials, never overwriting it.  The symmetric
  // flip profile (truth and impostors equally present) guarantees reset
  // storms and starvation at once.
  using Recovery = TypeParam;
  const Key128 key = this->victim_key(0x722);
  typename TestFixture::Config cfg = TestFixture::Config::noisy_defaults();
  cfg.max_encryptions = 2000;
  cfg.faults.false_absent_rate = 0.4;
  cfg.faults.false_present_rate = 0.4;
  cfg.finish_partials = true;
  cfg.finish_max_candidates = 0;
  const auto base = recover_key<Recovery>(key, cfg);
  cfg.finish_max_candidates = 64;
  const auto finished = recover_key<Recovery>(key, cfg);

  ASSERT_LT(base.failed_stage, Recovery::kStages);
  EXPECT_GT(base.noise_restarts, 0u);
  for (const auto* r : {&base, &finished}) {
    std::uint64_t sum = 0;
    for (const std::uint32_t per_segment : r->segment_resets) {
      sum += per_segment;
    }
    EXPECT_EQ(r->noise_restarts, sum)
        << "noise_restarts must stay the exact per-segment sum";
  }
  // Everything up to the finisher invocation is shared between the two
  // runs; only the finisher budget differs.
  EXPECT_EQ(finished.noise_restarts, base.noise_restarts);
  EXPECT_EQ(finished.segment_resets, base.segment_resets);
  EXPECT_EQ(finished.dropped_observations, base.dropped_observations);
  EXPECT_EQ(finished.verify_restarts, base.verify_restarts);
  EXPECT_EQ(finished.total_encryptions, base.total_encryptions);
  EXPECT_EQ(finished.failed_stage, base.failed_stage);
  // Offline summing: the budget-64 run's extra offline work is exactly
  // what its finisher reports.
  EXPECT_EQ(base.finisher.candidates_tested, 0u);
  EXPECT_EQ(finished.offline_trials - base.offline_trials,
            finished.finisher.offline_trials);
  EXPECT_NE(finished.finisher.outcome, finisher::FinisherOutcome::kNotRun);
}

TYPED_TEST(FinisherEngine, WideEngineMatchesScalarInFinishMode) {
  // Lane-for-lane conformance of the wide engine's finish path: quota
  // assumption, evidence export, pair capture and the inline search must
  // all reproduce the scalar engine byte for byte at any width.
  using Recovery = TypeParam;
  constexpr std::size_t kTrials = 3;
  typename TestFixture::Config cfg = TestFixture::saturating_finish_config();

  Xoshiro256 rng{Recovery::kDefaultSeed ^ 0x77F1};
  std::vector<WideTrialSpec> specs;
  for (std::size_t t = 0; t < kTrials; ++t) {
    WideTrialSpec spec;
    spec.victim_key = Recovery::canonical_key(rng.key128());
    spec.victim_key.lo &= ~std::uint64_t{0xFFFF};
    spec.victim_key = Recovery::canonical_key(spec.victim_key);
    spec.seed = rng.next();
    spec.fault_seed = rng.next();
    specs.push_back(spec);
  }

  std::vector<RecoveryResult<Recovery>> refs;
  for (const WideTrialSpec& spec : specs) {
    typename TestFixture::Config scalar_cfg = cfg;
    scalar_cfg.seed = spec.seed;
    scalar_cfg.faults.seed = spec.fault_seed;
    refs.push_back(recover_key<Recovery>(spec.victim_key, scalar_cfg));
  }
  for (const auto& r : refs) {
    ASSERT_EQ(r.finisher.outcome, finisher::FinisherOutcome::kRecovered);
  }

  for (const unsigned width : {1u, 2u}) {
    WideRecoveryEngine<Recovery> engine{cfg};
    std::vector<RecoveryResult<Recovery>> results;
    for (const runner::WideShard& shard :
         runner::make_wide_shards(kTrials, width)) {
      auto part = engine.run(
          std::span<const WideTrialSpec>(specs).subspan(shard.begin,
                                                        shard.width));
      for (auto& r : part) results.push_back(std::move(r));
    }
    ASSERT_EQ(results.size(), refs.size());
    for (std::size_t t = 0; t < refs.size(); ++t) {
      expect_equal_finish(results[t], refs[t],
                          "width " + std::to_string(width) + " trial " +
                              std::to_string(t));
    }
  }
}

}  // namespace
}  // namespace grinch::target
