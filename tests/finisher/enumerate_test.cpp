// PenaltyEnumerator unit suite (finisher/enumerate.h): the maximum-
// likelihood enumeration order is exactly (total penalty ascending,
// rank vector lexicographically ascending), every assignment appears
// exactly once, and skip() is equivalent to discarding that many
// next() calls — the property the finisher's resume contract rests on.
#include "finisher/enumerate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

namespace grinch::finisher {
namespace {

using Ranks = std::vector<std::uint32_t>;
using Deltas = std::vector<std::vector<std::uint32_t>>;

/// All assignments in (penalty, lex) order by brute force: odometer
/// enumeration (lex order) + stable sort by penalty.
std::vector<Ranks> brute_force(const Deltas& deltas) {
  std::vector<Ranks> all;
  Ranks current(deltas.size(), 0);
  for (;;) {
    all.push_back(current);
    std::size_t j = deltas.size();
    while (j-- > 0) {
      if (++current[j] < deltas[j].size()) break;
      current[j] = 0;
      if (j == 0) {
        auto penalty = [&deltas](const Ranks& r) {
          std::uint64_t total = 0;
          for (std::size_t s = 0; s < r.size(); ++s) total += deltas[s][r[s]];
          return total;
        };
        std::stable_sort(all.begin(), all.end(),
                         [&](const Ranks& a, const Ranks& b) {
                           return penalty(a) < penalty(b);
                         });
        return all;
      }
    }
  }
}

std::vector<Ranks> drain(PenaltyEnumerator& enumerator) {
  std::vector<Ranks> out;
  Ranks ranks;
  while (enumerator.next(ranks)) out.push_back(ranks);
  return out;
}

TEST(FinisherEnumerate, MatchesBruteForceOrder) {
  const std::vector<Deltas> spaces = {
      {{0, 1, 3}, {0, 2}, {0, 0, 5}},          // ties inside a slot
      {{0, 5}, {0, 1}},                        // suffix-max pruning path
      {{0, 5}, {0, 7}},                        // sparse levels
      {{0}, {0, 3, 3, 9}, {0}},                // singleton slots
      {{0, 1}, {0, 1}, {0, 1}, {0, 1}},        // dense hypercube
      {{0, 2, 2, 4}, {0, 0, 6}, {0, 10}},      // mixed ties and gaps
      {{1, 4}, {2, 2}},                        // nonzero best deltas
  };
  for (std::size_t i = 0; i < spaces.size(); ++i) {
    PenaltyEnumerator enumerator{spaces[i]};
    EXPECT_EQ(drain(enumerator), brute_force(spaces[i])) << "space " << i;
  }
}

TEST(FinisherEnumerate, EveryAssignmentExactlyOnce) {
  const Deltas deltas = {{0, 1, 7, 7}, {0, 0, 2}, {0, 4}, {0, 1, 1}};
  PenaltyEnumerator enumerator{deltas};
  const std::vector<Ranks> all = drain(enumerator);
  std::size_t space = 1;
  for (const auto& d : deltas) space *= d.size();
  EXPECT_EQ(all.size(), space);
  EXPECT_EQ(std::set<Ranks>(all.begin(), all.end()).size(), space);
  EXPECT_TRUE(enumerator.exhausted());
}

TEST(FinisherEnumerate, PenaltyIsMonotone) {
  const Deltas deltas = {{0, 3, 3}, {0, 1, 9}, {0, 2}};
  PenaltyEnumerator enumerator{deltas};
  Ranks ranks;
  std::uint64_t last = 0;
  while (enumerator.next(ranks)) {
    EXPECT_GE(enumerator.penalty(), last);
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < ranks.size(); ++s) {
      total += deltas[s][ranks[s]];
    }
    EXPECT_EQ(total, enumerator.penalty());
    last = enumerator.penalty();
  }
}

TEST(FinisherEnumerate, SkipIsEquivalentToDiscardingNexts) {
  const Deltas deltas = {{0, 1, 3}, {0, 2, 2}, {0, 0, 5}, {0, 4}};
  PenaltyEnumerator reference{deltas};
  const std::vector<Ranks> all = drain(reference);
  for (std::uint64_t k : {std::uint64_t{0}, std::uint64_t{1},
                          std::uint64_t{7}, all.size() - 1, all.size(),
                          all.size() + 5}) {
    PenaltyEnumerator skipped{deltas};
    const std::uint64_t done = skipped.skip(k);
    EXPECT_EQ(done, std::min<std::uint64_t>(k, all.size())) << "k=" << k;
    Ranks ranks;
    if (k < all.size()) {
      ASSERT_TRUE(skipped.next(ranks)) << "k=" << k;
      EXPECT_EQ(ranks, all[k]) << "k=" << k;
    } else {
      EXPECT_FALSE(skipped.next(ranks)) << "k=" << k;
    }
  }
}

TEST(FinisherEnumerate, EmptySlotMakesTheSpaceEmpty) {
  PenaltyEnumerator enumerator{{{0, 1}, {}, {0}}};
  Ranks ranks;
  EXPECT_FALSE(enumerator.next(ranks));
  EXPECT_TRUE(enumerator.exhausted());
}

TEST(FinisherEnumerate, NoSlotsYieldsOneEmptyAssignment) {
  PenaltyEnumerator enumerator{{}};
  Ranks ranks{1, 2, 3};
  ASSERT_TRUE(enumerator.next(ranks));
  EXPECT_TRUE(ranks.empty());
  EXPECT_FALSE(enumerator.next(ranks));
}

TEST(FinisherEnumerate, SpaceBitsIsTheLogProduct) {
  PenaltyEnumerator enumerator{{{0, 1, 2, 3}, {0, 1}, {0}}};
  EXPECT_DOUBLE_EQ(enumerator.space_bits(), 3.0);  // log2(4 * 2 * 1)
}

}  // namespace
}  // namespace grinch::finisher
