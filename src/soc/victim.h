// Victim process: the trusted application encrypting with table-based GIFT.
//
// The victim executes one encryption round at a time against the shared
// cache, consuming simulated cycles per the cost model.  Running round by
// round gives the platform (scheduler / attacker) the interleaving points
// the GRINCH threat model needs: "it is possible to access the cache
// while the cipher is still in its intermediate state".
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/cache.h"
#include "common/key128.h"
#include "gift/table_gift.h"

namespace grinch::soc {

/// Instruction-cost model for the victim core (RISCY-class, in-order).
///
/// A GIFT round on the paper's FPGA SoC takes ~1.2 ms at 50 MHz
/// (= ~60k cycles; §IV-B3), dominated by RTOS/system overhead rather
/// than the 32 table lookups.  paper_calibrated() reproduces that scale;
/// the unit-test default keeps numbers small.
struct VictimCostModel {
  std::uint64_t cycles_per_access_setup = 4;  ///< address arithmetic etc.
  std::uint64_t cycles_round_tail = 32;       ///< key add, constants, loop
  std::uint64_t cycles_round_overhead = 0;    ///< OS/system time per round

  /// Calibrated so a round costs ~65k cycles, matching Table II
  /// (quantum 10 ms => probed rounds 2/4/8 at 10/25/50 MHz) and the
  /// ~1.2 ms inter-round time reported for 50 MHz.
  [[nodiscard]] static VictimCostModel paper_calibrated() noexcept {
    VictimCostModel m;
    m.cycles_round_overhead = 64500;
    return m;
  }
};

/// One timed table access as seen on the shared cache.
struct TimedAccess {
  std::uint64_t cycle = 0;  ///< completion time of the access
  gift::TableAccess access;
  bool hit = false;
};

/// Executes one GIFT-64 encryption round-by-round against a shared cache.
class VictimProcess {
 public:
  VictimProcess(const gift::TableGift64& cipher, cachesim::Cache& cache,
                const VictimCostModel& cost);

  /// Starts a new encryption at simulated time `start_cycle`.
  ///
  /// `max_rounds` bounds how deep the victim will execute (clamped to the
  /// cipher's round count): a platform that probes after round k only
  /// needs the access stream up to k, so generating further rounds is
  /// wasted work.  The truncated stream is the exact prefix of the full
  /// one; the full ciphertext stays available through full_ciphertext(),
  /// which completes the encryption functionally (no cache traffic) on
  /// first use.
  void begin_encryption(std::uint64_t plaintext, const Key128& key,
                        std::uint64_t start_cycle = 0,
                        unsigned max_rounds = gift::Gift64::kRounds);

  /// Executes the rest of the current round's table accesses against the
  /// cache.  Returns the cycle at which the round completed.
  std::uint64_t run_round();

  /// Runs rounds until `rounds_done() == rounds` (no-op if already there).
  std::uint64_t run_until_round(unsigned rounds);

  /// Runs access-by-access until the victim's clock reaches `limit` or the
  /// encryption finishes — this is how a scheduler preempts the victim
  /// mid-round at quantum expiry.  Returns the victim's clock.
  std::uint64_t run_until_cycle(std::uint64_t limit);

  /// Runs until `count` accesses of the current round have executed (a
  /// precision-probing attacker pauses the victim mid-round).  No-op if
  /// already past that point within the round.
  std::uint64_t run_until_access(unsigned count);

  /// Completes the available rounds; returns the (full) ciphertext.
  std::uint64_t finish();

  [[nodiscard]] unsigned rounds_done() const noexcept { return round_; }
  /// Accesses already executed within the current (partial) round.
  [[nodiscard]] unsigned accesses_into_round() const noexcept;
  /// True once every available round (begin_encryption's max_rounds,
  /// clamped) has executed against the cache.
  [[nodiscard]] bool done() const noexcept { return round_ >= avail_rounds_; }
  [[nodiscard]] std::uint64_t now() const noexcept { return cycle_; }
  [[nodiscard]] const std::vector<TimedAccess>& trace() const noexcept {
    return trace_;
  }
  /// Full ciphertext of the current encryption, regardless of how many
  /// rounds were executed or requested.  Truncated encryptions are
  /// completed functionally on first use (cached; no cache-sim traffic).
  [[nodiscard]] std::uint64_t full_ciphertext() const;

  /// Average cycles consumed per completed round of this encryption.
  [[nodiscard]] double cycles_per_round() const noexcept;

 private:
  const gift::TableGift64* cipher_;
  cachesim::Cache* cache_;
  VictimCostModel cost_;

  /// Executes one table access (or the round tail when the round's
  /// accesses are exhausted); advances round_/pos_.
  void step();

  std::uint64_t state_ = 0;      ///< cipher state after avail_rounds_
  std::uint64_t plaintext_ = 0;  ///< plaintext of the current encryption
  Key128 key_{};
  unsigned round_ = 0;
  unsigned avail_rounds_ = gift::Gift64::kRounds;  ///< rounds in sink_
  std::size_t pos_ = 0;  ///< next index into sink_.accesses()
  std::uint64_t cycle_ = 0;
  std::uint64_t start_cycle_ = 0;
  mutable std::uint64_t full_ct_ = 0;
  mutable bool full_ct_valid_ = true;  ///< 0 before any encryption
  std::vector<TimedAccess> trace_;
  /// Round keys of the current key, derived once and reused until the key
  /// changes (the observation hot path re-encrypts under one victim key).
  gift::TableGift64::Schedule schedule_;
  Key128 schedule_key_{};
  bool schedule_valid_ = false;
  /// Full logical access stream of the current encryption.  Reused
  /// (clear-and-refill) across encryptions: after the first encryption a
  /// VictimProcess allocates nothing — platforms keep one VictimProcess
  /// per victim and begin_encryption() it per monitored encryption.
  gift::VectorTraceSink sink_;
};

}  // namespace grinch::soc
