// Observation platform for the PRESENT-80 attack extension.
//
// PRESENT shares GIFT's table-based implementation style and its 16-entry
// S-Box size, so the same Flush+Reload prober monitors it.  Unlike GIFT,
// PRESENT XORs the round key *before* the S-Box layer, so the very first
// round's lookup indices are key-dependent — the attacker monitors round
// 0 directly.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/cache.h"
#include "common/key128.h"
#include "present/table_present.h"
#include "soc/platform.h"
#include "soc/prober.h"

namespace grinch::soc {

class Present80DirectProbePlatform {
 public:
  struct Config {
    cachesim::CacheConfig cache = cachesim::CacheConfig::paper_default();
    gift::TableLayout layout;
    unsigned probing_round = 1;  ///< rounds of accesses the probe covers
    bool use_flush = true;
  };

  /// `victim_key`: 80-bit key in the low bits of a Key128.
  Present80DirectProbePlatform(const Config& config, const Key128& victim_key);

  /// One monitored encryption; the probe covers the S-Box accesses of
  /// cipher rounds [0, probing_round).
  Observation observe(std::uint64_t plaintext);

  [[nodiscard]] const gift::TableLayout& layout() const noexcept {
    return config_.layout;
  }
  [[nodiscard]] std::vector<unsigned> index_line_ids() const;

  /// Ciphertext of the last observed encryption.
  [[nodiscard]] std::uint64_t last_ciphertext() const noexcept {
    return last_ciphertext_;
  }

 private:
  Config config_;
  Key128 key_;
  cachesim::Cache cache_;
  present::TablePresent80 cipher_;
  FlushReloadProber prober_;
  std::uint64_t last_ciphertext_ = 0;
};

}  // namespace grinch::soc
