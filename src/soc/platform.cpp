#include "soc/platform.h"

namespace grinch::soc {
namespace {

std::unique_ptr<CacheProber> make_prober(ProbeMethod method,
                                         cachesim::Cache& cache,
                                         const gift::TableLayout& layout) {
  if (method == ProbeMethod::kPrimeProbe)
    return std::make_unique<PrimeProbeProber>(cache, layout);
  return std::make_unique<FlushReloadProber>(cache, layout);
}

Observation from_probe(const ProbeResult& probe, unsigned probed_after_round,
                       std::uint64_t extra_cycles, std::uint64_t ciphertext) {
  Observation o;
  o.present = probe.row_present;
  o.probed_after_round = probed_after_round;
  o.attacker_cycles = probe.cycles + extra_cycles;
  o.ciphertext = ciphertext;
  return o;
}

}  // namespace

// --------------------------------------------------- DirectProbePlatform --

DirectProbePlatform::DirectProbePlatform(const Config& config,
                                         const Key128& victim_key)
    : config_(config),
      key_(victim_key),
      cache_(config.cache),
      cipher_(config.layout, config.round_key_provider),
      victim_(cipher_, cache_, config.cost),
      prober_(make_prober(config.method, cache_, config.layout)),
      noise_rng_(config.noise_seed) {}

std::vector<unsigned> DirectProbePlatform::index_line_ids() const {
  return compute_index_line_ids(config_.layout, config_.cache.line_bytes);
}

void DirectProbePlatform::inject_noise() {
  // Third-party traffic: addresses disjoint from the victim's tables but
  // mapping onto the same sets, so heavy noise evicts monitored lines
  // (false absents) without ever faking a presence.
  constexpr std::uint64_t kNoiseBase = 0x100000;
  const std::uint64_t span =
      static_cast<std::uint64_t>(config_.cache.line_bytes) *
      config_.cache.num_sets * 64;  // 64 tags per set available
  for (unsigned i = 0; i < config_.noise_accesses_per_round; ++i) {
    (void)cache_.access(kNoiseBase + noise_rng_.uniform(span));
  }
}

Observation DirectProbePlatform::observe(std::uint64_t plaintext,
                                         unsigned stage) {
  // A fresh encryption on a cache that still holds earlier encryptions'
  // lines would leak nothing; like the paper's attacker, start each
  // monitored encryption from an evicted state for the monitored lines.
  VictimProcess& victim = victim_;
  victim.begin_encryption(plaintext, key_);

  std::uint64_t attacker_cycles = 0;
  if (!config_.use_flush) {
    // No flush during the encryption: the monitored lines start evicted
    // (prepare before the run) and everything from round 0 on accumulates.
    attacker_cycles += prober_->prepare();
  }
  // Rounds 0..stage run first (with per-round noise traffic).
  while (victim.rounds_done() < stage + 1) {
    victim.run_round();
    inject_noise();
  }
  if (config_.use_flush) {
    // The attacker flushes the monitored lines right before the monitored
    // round stage+1.
    attacker_cycles += prober_->prepare();
  }

  unsigned probe_after = stage + 1 + config_.probing_round;
  if (config_.precise_probe) {
    // §III-D precision probing: pause the victim right after the focused
    // segment's S-Box access (the round's first 16 accesses are the
    // S-Box lookups, in segment order) and probe mid-round.
    victim.run_until_access(focus_ + 1);
    probe_after = stage + 1;  // the monitored round is still in flight
  } else {
    while (victim.rounds_done() < probe_after && !victim.done()) {
      victim.run_round();
      inject_noise();
    }
  }

  const ProbeResult probe = prober_->probe();
  Observation o =
      from_probe(probe, probe_after, attacker_cycles, victim.ciphertext());

  if (config_.capture_trace && config_.use_flush &&
      victim.rounds_done() >= stage + 2) {
    // Extract the monitored round's S-Box hit/miss sequence from the
    // victim's timed trace (power-analysis channel, paper ref [10]).
    o.sbox_hits.assign(16, false);
    for (const TimedAccess& t : victim.trace()) {
      if (t.access.round == stage + 1 &&
          t.access.kind == gift::TableAccess::Kind::kSBox) {
        o.sbox_hits[t.access.segment] = t.hit;
      }
    }
  }
  last_ciphertext_ = o.ciphertext;
  return o;
}

// --------------------------------------------------------- SingleCoreSoC --

SingleCoreSoC::SingleCoreSoC(const Config& config, const Key128& victim_key)
    : config_(config),
      key_(victim_key),
      cache_(config.cache),
      cipher_(config.layout),
      victim_(cipher_, cache_, config.cost),
      scheduler_(config.rtos),
      prober_(make_prober(config.method, cache_, config.layout)) {}

std::vector<unsigned> SingleCoreSoC::index_line_ids() const {
  return compute_index_line_ids(config_.layout, config_.cache.line_bytes);
}

double SingleCoreSoC::measured_cycles_per_round() {
  victim_.begin_encryption(0x0123456789ABCDEFull, key_);
  victim_.finish();
  return victim_.cycles_per_round();
}

unsigned SingleCoreSoC::first_probe_round() {
  return scheduler_.probed_round(measured_cycles_per_round());
}

Observation SingleCoreSoC::observe(std::uint64_t plaintext, unsigned stage) {
  (void)stage;  // the probe moment is dictated by the scheduler, not the stage
  VictimProcess& victim = victim_;

  std::uint64_t attacker_cycles = 0;
  // The attacker's previous quantum ends just before the victim's next one
  // begins; its last action is preparing the monitored lines (flush or
  // prime).  With use_flush=false the prepare still runs once here —
  // modelling an attacker that never flushes *during* the encryption.
  attacker_cycles += prober_->prepare();

  victim.begin_encryption(plaintext, key_);
  // The victim owns the core for one quantum, then is preempted (possibly
  // mid-round); the attacker probes at the start of its own quantum.
  victim.run_until_cycle(scheduler_.config().quantum_cycles());

  const ProbeResult probe = prober_->probe();
  Observation o = from_probe(probe, victim.rounds_done(), attacker_cycles,
                             victim.ciphertext());
  last_ciphertext_ = o.ciphertext;
  return o;
}

// ----------------------------------------------------------------- MpSoc --

MpSoc::MpSoc(const Config& config, const Key128& victim_key)
    : config_(config),
      key_(victim_key),
      topology_(config.mesh_width, config.mesh_height),
      network_(topology_, config.link),
      cache_(config.cache),
      cipher_(config.layout),
      victim_(cipher_, cache_, config.cost),
      prober_(cache_, config.layout) {}

std::vector<unsigned> MpSoc::index_line_ids() const {
  return compute_index_line_ids(config_.layout, config_.cache.line_bytes);
}

std::uint64_t MpSoc::remote_access_cycles() {
  // Request packet to the cache tile, cache access, response packet back.
  const std::uint64_t request = network_
                                    .send(config_.attacker_tile,
                                          config_.cache_tile,
                                          config_.probe_payload_bytes)
                                    .latency_cycles;
  const std::uint64_t response = network_
                                     .send(config_.cache_tile,
                                           config_.attacker_tile,
                                           config_.probe_payload_bytes)
                                     .latency_cycles;
  return request + cache_.config().hit_latency + response;
}

double MpSoc::remote_access_ns() {
  return static_cast<double>(remote_access_cycles()) /
         (config_.clock_mhz * 1e6) * 1e9;
}

std::uint64_t MpSoc::probe_sequence_cycles() {
  const std::uint64_t per_op = remote_access_cycles();
  // Flush every monitored line, then reload each (upper bound: all miss).
  const std::uint64_t rows = config_.layout.sbox_rows();
  return rows * per_op +
         rows * (per_op + cache_.config().miss_latency);
}

unsigned MpSoc::first_probe_round() {
  victim_.begin_encryption(0x0123456789ABCDEFull, key_);
  victim_.finish();
  const double cpr = victim_.cycles_per_round();
  const auto probe = static_cast<double>(probe_sequence_cycles());
  // The attacker runs concurrently on its own tile; its first probe
  // completes after one probe sequence.
  const auto completed = static_cast<unsigned>(probe / cpr);
  return completed + 1;
}

Observation MpSoc::observe(std::uint64_t plaintext, unsigned stage) {
  // With its own core, the attacker synchronises to round boundaries by
  // continuous probing: flush right before the monitored round, probe
  // right after it — the ideal probing-round-1 observation.
  VictimProcess& victim = victim_;
  victim.begin_encryption(plaintext, key_);
  victim.run_until_round(stage + 1);

  std::uint64_t attacker_cycles = prober_.prepare();
  attacker_cycles +=
      config_.layout.sbox_rows() * remote_access_cycles();  // NoC cost

  victim.run_until_round(stage + 2);
  ProbeResult probe = prober_.probe();
  probe.cycles += 16 * remote_access_cycles();
  Observation o =
      from_probe(probe, stage + 2, attacker_cycles, victim.ciphertext());
  last_ciphertext_ = o.ciphertext;
  return o;
}

}  // namespace grinch::soc
