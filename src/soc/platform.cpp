#include "soc/platform.h"

#include <algorithm>

namespace grinch::soc {
namespace {

std::unique_ptr<CacheProber> make_prober(ProbeMethod method,
                                         cachesim::Cache& cache,
                                         const gift::TableLayout& layout) {
  if (method == ProbeMethod::kPrimeProbe)
    return std::make_unique<PrimeProbeProber>(cache, layout);
  return std::make_unique<FlushReloadProber>(cache, layout);
}

Observation from_probe(const ProbeResult& probe, unsigned probed_after_round,
                       std::uint64_t extra_cycles) {
  Observation o;
  o.present = probe.row_present;
  o.probed_after_round = probed_after_round;
  o.attacker_cycles = probe.cycles + extra_cycles;
  return o;
}

}  // namespace

// --------------------------------------------------- DirectProbePlatform --

DirectProbePlatform::DirectProbePlatform(const Config& config,
                                         const Key128& victim_key)
    : config_(config),
      key_(victim_key),
      cache_(config.cache),
      cipher_(config.layout, config.round_key_provider),
      victim_(cipher_, cache_, config.cost),
      prober_(make_prober(config.method, cache_, config.layout)),
      noise_rng_(config.noise_seed),
      line_ids_(
          compute_index_line_ids(config.layout, config.cache.line_bytes)) {}

std::vector<unsigned> DirectProbePlatform::index_line_ids() const {
  return line_ids_;
}

std::uint64_t DirectProbePlatform::last_ciphertext() const {
  // The victim ran only the rounds the probe consumed; completing the
  // encryption is functional (no cache traffic) and cached per
  // encryption, so only verification encryptions pay for it.
  return victim_.full_ciphertext();
}

void DirectProbePlatform::inject_noise() {
  // Third-party traffic drawn from the shared noise address space
  // (target::NoiseAddressSpace): disjoint from the victim's tables and
  // the Prime+Probe region but aliasing every cache set, so heavy noise
  // evicts monitored lines — the cache-level mechanism behind the fault
  // vocabulary's false-absent mode, and nothing else.
  for (unsigned i = 0; i < config_.noise_accesses_per_round; ++i) {
    (void)cache_.access(
        target::NoiseAddressSpace::draw(config_.cache, noise_rng_));
  }
}

unsigned DirectProbePlatform::rounds_needed(unsigned stage) const noexcept {
  // Precision probing pauses inside round stage+1, so that round's
  // accesses must exist (and the victim must not be done before them);
  // otherwise the probe lands after round stage+probing_round.  The
  // trace-driven channel reads round stage+1's timed hits, which the
  // probe plan already covers in both modes.
  const unsigned want =
      config_.precise_probe ? stage + 2 : stage + 1 + config_.probing_round;
  return std::min(want, gift::Gift64::kRounds);
}

Observation DirectProbePlatform::observe(std::uint64_t plaintext,
                                         unsigned stage) {
  return observe_with_rounds(plaintext, stage, rounds_needed(stage));
}

void DirectProbePlatform::observe_batch(std::span<const std::uint64_t>
                                            plaintexts,
                                        unsigned stage,
                                        target::ObservationBatch& out) {
  const unsigned want_rounds = rounds_needed(stage);
  out.resize(plaintexts.size());
  for (std::size_t i = 0; i < plaintexts.size(); ++i) {
    out[i] = observe_with_rounds(plaintexts[i], stage, want_rounds);
  }
}

Observation DirectProbePlatform::observe_with_rounds(std::uint64_t plaintext,
                                                     unsigned stage,
                                                     unsigned want_rounds) {
  // A fresh encryption on a cache that still holds earlier encryptions'
  // lines would leak nothing; like the paper's attacker, start each
  // monitored encryption from an evicted state for the monitored lines.
  // The victim generates only the rounds this observation consumes.
  VictimProcess& victim = victim_;
  victim.begin_encryption(plaintext, key_, 0, want_rounds);

  std::uint64_t attacker_cycles = 0;
  if (!config_.use_flush) {
    // No flush during the encryption: the monitored lines start evicted
    // (prepare before the run) and everything from round 0 on accumulates.
    attacker_cycles += prober_->prepare();
  }
  // Rounds 0..stage run first (with per-round noise traffic).
  while (victim.rounds_done() < stage + 1) {
    victim.run_round();
    inject_noise();
  }
  if (config_.use_flush) {
    // The attacker flushes the monitored lines right before the monitored
    // round stage+1.
    attacker_cycles += prober_->prepare();
  }

  unsigned probe_after = stage + 1 + config_.probing_round;
  if (config_.precise_probe) {
    // §III-D precision probing: pause the victim right after the focused
    // segment's S-Box access (the round's first 16 accesses are the
    // S-Box lookups, in segment order) and probe mid-round.
    victim.run_until_access(focus_ + 1);
    probe_after = stage + 1;  // the monitored round is still in flight
  } else {
    while (victim.rounds_done() < probe_after && !victim.done()) {
      victim.run_round();
      inject_noise();
    }
  }

  const ProbeResult probe = prober_->probe();
  Observation o = from_probe(probe, probe_after, attacker_cycles);

  if (config_.capture_trace && config_.use_flush &&
      victim.rounds_done() >= stage + 2) {
    // Extract the monitored round's S-Box hit/miss sequence from the
    // victim's timed trace (power-analysis channel, paper ref [10]).
    o.sbox_hits.assign(16, false);
    for (const TimedAccess& t : victim.trace()) {
      if (t.access.round == stage + 1 &&
          t.access.kind == gift::TableAccess::Kind::kSBox) {
        o.sbox_hits[t.access.segment] = t.hit;
      }
    }
  }
  return o;
}

// --------------------------------------------------------- SingleCoreSoC --

SingleCoreSoC::SingleCoreSoC(const Config& config, const Key128& victim_key)
    : config_(config),
      key_(victim_key),
      cache_(config.cache),
      cipher_(config.layout),
      victim_(cipher_, cache_, config.cost),
      scheduler_(config.rtos),
      prober_(make_prober(config.method, cache_, config.layout)),
      line_ids_(
          compute_index_line_ids(config.layout, config.cache.line_bytes)) {}

std::vector<unsigned> SingleCoreSoC::index_line_ids() const {
  return line_ids_;
}

std::uint64_t SingleCoreSoC::last_ciphertext() const {
  if (!last_ct_valid_) {
    last_ct_ = cipher_.encrypt(last_pt_, key_);
    last_ct_valid_ = true;
  }
  return last_ct_;
}

double SingleCoreSoC::measured_cycles_per_round() {
  victim_.begin_encryption(0x0123456789ABCDEFull, key_);
  victim_.finish();
  return victim_.cycles_per_round();
}

unsigned SingleCoreSoC::first_probe_round() {
  return scheduler_.probed_round(measured_cycles_per_round());
}

Observation SingleCoreSoC::observe(std::uint64_t plaintext, unsigned stage) {
  (void)stage;  // the probe moment is dictated by the scheduler, not the stage
  VictimProcess& victim = victim_;

  std::uint64_t attacker_cycles = 0;
  // The attacker's previous quantum ends just before the victim's next one
  // begins; its last action is preparing the monitored lines (flush or
  // prime).  With use_flush=false the prepare still runs once here —
  // modelling an attacker that never flushes *during* the encryption.
  attacker_cycles += prober_->prepare();

  // The probe moment emerges from scheduling, so the victim cannot be
  // truncated up front: any round may execute within the quantum.
  victim.begin_encryption(plaintext, key_);
  // The victim owns the core for one quantum, then is preempted (possibly
  // mid-round); the attacker probes at the start of its own quantum.
  victim.run_until_cycle(scheduler_.config().quantum_cycles());

  const ProbeResult probe = prober_->probe();
  Observation o = from_probe(probe, victim.rounds_done(), attacker_cycles);
  last_pt_ = plaintext;
  last_ct_valid_ = false;
  return o;
}

// ----------------------------------------------------------------- MpSoc --

MpSoc::MpSoc(const Config& config, const Key128& victim_key)
    : config_(config),
      key_(victim_key),
      topology_(config.mesh_width, config.mesh_height),
      network_(topology_, config.link),
      cache_(config.cache),
      cipher_(config.layout),
      victim_(cipher_, cache_, config.cost),
      prober_(cache_, config.layout),
      line_ids_(
          compute_index_line_ids(config.layout, config.cache.line_bytes)) {}

std::vector<unsigned> MpSoc::index_line_ids() const { return line_ids_; }

std::uint64_t MpSoc::last_ciphertext() const {
  if (!last_ct_valid_) {
    last_ct_ = cipher_.encrypt(last_pt_, key_);
    last_ct_valid_ = true;
  }
  return last_ct_;
}

std::uint64_t MpSoc::remote_access_cycles() {
  // Request packet to the cache tile, cache access, response packet back.
  const std::uint64_t request = network_
                                    .send(config_.attacker_tile,
                                          config_.cache_tile,
                                          config_.probe_payload_bytes)
                                    .latency_cycles;
  const std::uint64_t response = network_
                                     .send(config_.cache_tile,
                                           config_.attacker_tile,
                                           config_.probe_payload_bytes)
                                     .latency_cycles;
  return request + cache_.config().hit_latency + response;
}

double MpSoc::remote_access_ns() {
  return static_cast<double>(remote_access_cycles()) /
         (config_.clock_mhz * 1e6) * 1e9;
}

std::uint64_t MpSoc::probe_sequence_cycles() {
  const std::uint64_t per_op = remote_access_cycles();
  // Flush every monitored line, then reload each (upper bound: all miss).
  const std::uint64_t rows = config_.layout.sbox_rows();
  return rows * per_op +
         rows * (per_op + cache_.config().miss_latency);
}

unsigned MpSoc::first_probe_round() {
  victim_.begin_encryption(0x0123456789ABCDEFull, key_);
  victim_.finish();
  const double cpr = victim_.cycles_per_round();
  const auto probe = static_cast<double>(probe_sequence_cycles());
  // The attacker runs concurrently on its own tile; its first probe
  // completes after one probe sequence.
  const auto completed = static_cast<unsigned>(probe / cpr);
  return completed + 1;
}

Observation MpSoc::observe(std::uint64_t plaintext, unsigned stage) {
  // With its own core, the attacker synchronises to round boundaries by
  // continuous probing: flush right before the monitored round, probe
  // right after it — the ideal probing-round-1 observation.  Only rounds
  // 0..stage+1 are consumed, so the victim stops there.
  VictimProcess& victim = victim_;
  victim.begin_encryption(plaintext, key_, 0, stage + 2);
  victim.run_until_round(stage + 1);

  std::uint64_t attacker_cycles = prober_.prepare();
  attacker_cycles +=
      config_.layout.sbox_rows() * remote_access_cycles();  // NoC cost

  victim.run_until_round(stage + 2);
  ProbeResult probe = prober_.probe();
  probe.cycles += 16 * remote_access_cycles();
  Observation o = from_probe(probe, stage + 2, attacker_cycles);
  last_pt_ = plaintext;
  last_ct_valid_ = false;
  return o;
}

}  // namespace grinch::soc
