// Compatibility forwarding header: the probing primitives moved to the
// cipher-agnostic target layer (src/target/prober.h).  Existing soc code
// and external users keep compiling against grinch::soc names.
#pragma once

#include "gift/table_gift.h"  // gift::TableLayout alias, part of the old surface
#include "target/prober.h"

namespace grinch::soc {

using ProbeResult = target::ProbeResult;
using CacheProber = target::CacheProber;
using FlushReloadProber = target::FlushReloadProber;
using PrimeProbeProber = target::PrimeProbeProber;

}  // namespace grinch::soc
