// Two-level-hierarchy observation platform (the paper's §V future work:
// "further explore the effect of the memory hierarchy on the
// effectiveness of the attack").
//
// The victim's accesses run against an L1+L2 hierarchy.  Two attacker
// capabilities are modelled:
//
//  * kClflush  — an architectural flush that invalidates a line at every
//    level (x86 clflush style).  Reload latency then cleanly separates
//    "victim touched it" (L1 hit) from "untouched" (DRAM fill).
//  * kL1EvictOnly — the attacker can only displace lines from L1 (e.g.
//    eviction-based flushing on platforms without clflush).  Untouched
//    lines still answer from L2, so the timing threshold must sit
//    between the L1 and L2 latencies — a smaller margin, but the attack
//    carries over unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cachesim/hierarchy.h"
#include "common/key128.h"
#include "gift/table_gift.h"
#include "soc/platform.h"

namespace grinch::soc {

enum class FlushCapability : std::uint8_t { kClflush, kL1EvictOnly };

class HierarchyPlatform final : public ObservationSource {
 public:
  struct Config {
    cachesim::HierarchyConfig hierarchy;  ///< caller sets l1/l2/dram
    gift::TableLayout layout;
    unsigned probing_round = 1;
    FlushCapability flush = FlushCapability::kClflush;

    Config() {
      hierarchy.l1 = cachesim::CacheConfig::paper_default();
      cachesim::CacheConfig l2 = cachesim::CacheConfig::paper_default();
      l2.num_sets = 256;       // 4096-line L2
      l2.hit_latency = 10;
      l2.miss_latency = 30;
      hierarchy.l2 = l2;
      hierarchy.dram_latency = 100;
    }
  };

  HierarchyPlatform(const Config& config, const Key128& victim_key);

  Observation observe(std::uint64_t plaintext, unsigned stage) override;
  /// Batched variant: the probe depth and reload threshold depend only on
  /// the stage/config, so they are derived once per batch; each element
  /// then runs the scalar pipeline (bit-identical to observe() calls).
  void observe_batch(std::span<const std::uint64_t> plaintexts, unsigned stage,
                     target::ObservationBatch& out) override;
  [[nodiscard]] const gift::TableLayout& layout() const override {
    return config_.layout;
  }
  [[nodiscard]] std::vector<unsigned> index_line_ids() const override;
  [[nodiscard]] std::uint64_t last_ciphertext() const override;

  [[nodiscard]] cachesim::CacheHierarchy& hierarchy() noexcept {
    return hierarchy_;
  }

 private:
  /// Evicts the monitored lines per the configured capability.
  void flush_monitored();

  /// Reload-latency cutoff separating "victim touched it" from cold.
  [[nodiscard]] std::uint64_t reload_threshold() const noexcept;

  Observation observe_at(std::uint64_t plaintext, unsigned probe_after,
                         std::uint64_t threshold);

  Config config_;
  Key128 key_;
  cachesim::CacheHierarchy hierarchy_;
  gift::TableGift64 cipher_;
  gift::TableGift64::Schedule schedule_;
  std::vector<unsigned> line_ids_;  ///< computed once at construction
  /// Reused across observe() calls; stops allocating after the first.
  gift::VectorTraceSink sink_;
  /// Lazy full ciphertext of the last observed encryption (the victim
  /// only emits the probed prefix of rounds; completed on demand).
  std::uint64_t last_pt_ = 0;
  mutable std::uint64_t last_ct_ = 0;
  mutable bool last_ct_valid_ = true;  ///< 0 before any observation
};

}  // namespace grinch::soc
