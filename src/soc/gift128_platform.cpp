#include "soc/gift128_platform.h"

namespace grinch::soc {

Gift128DirectProbePlatform::Gift128DirectProbePlatform(
    const Config& config, const Key128& victim_key)
    : config_(config),
      key_(victim_key),
      cache_(config.cache),
      cipher_(config.layout),
      prober_(cache_, config.layout) {}

std::vector<unsigned> Gift128DirectProbePlatform::index_line_ids() const {
  return compute_index_line_ids(config_.layout, config_.cache.line_bytes);
}

Observation Gift128DirectProbePlatform::observe(gift::State128 plaintext,
                                                unsigned stage) {
  // Collect the full access stream once, then replay rounds against the
  // cache around the attacker's flush/probe points.
  gift::VectorTraceSink sink;
  const gift::State128 ct = cipher_.encrypt(plaintext, key_, &sink);
  const unsigned per_round = gift::TableGift128::accesses_per_round();

  auto replay_rounds = [&](unsigned from, unsigned to) {
    for (std::size_t i = static_cast<std::size_t>(from) * per_round;
         i < static_cast<std::size_t>(to) * per_round; ++i) {
      (void)cache_.access(sink.accesses()[i].addr);
    }
  };

  std::uint64_t attacker_cycles = 0;
  if (!config_.use_flush) attacker_cycles += prober_.prepare();
  replay_rounds(0, stage + 1);
  if (config_.use_flush) attacker_cycles += prober_.prepare();

  const unsigned probe_after = stage + 1 + config_.probing_round;
  replay_rounds(stage + 1, probe_after);

  const ProbeResult probe = prober_.probe();
  Observation o;
  o.present = probe.row_present;
  o.probed_after_round = probe_after;
  o.attacker_cycles = attacker_cycles + probe.cycles;
  // The attacker reads the 128-bit ciphertext; fold it for the Observation
  // field (the GIFT-128 attack verifies against the full value instead).
  o.ciphertext = ct.hi ^ ct.lo;
  last_ciphertext_ = ct;
  return o;
}

}  // namespace grinch::soc
