#include "soc/hierarchy_platform.h"

namespace grinch::soc {

HierarchyPlatform::HierarchyPlatform(const Config& config,
                                     const Key128& victim_key)
    : config_(config),
      key_(victim_key),
      hierarchy_(config.hierarchy),
      cipher_(config.layout) {}

std::vector<unsigned> HierarchyPlatform::index_line_ids() const {
  return compute_index_line_ids(config_.layout,
                                config_.hierarchy.l1.line_bytes);
}

void HierarchyPlatform::flush_monitored() {
  for (unsigned row = 0; row < config_.layout.sbox_rows(); ++row) {
    const std::uint64_t addr =
        config_.layout.sbox_base + row * config_.layout.sbox_row_bytes;
    if (config_.flush == FlushCapability::kClflush) {
      hierarchy_.flush_line(addr);  // invalidates every level
    } else {
      hierarchy_.l1().flush_line(addr);  // L2 copies survive
    }
  }
}

Observation HierarchyPlatform::observe(std::uint64_t plaintext,
                                       unsigned stage) {
  gift::VectorTraceSink sink;
  const std::uint64_t ct = cipher_.encrypt(plaintext, key_, &sink);
  const unsigned per_round = gift::TableGift64::accesses_per_round();

  auto replay_rounds = [&](unsigned from, unsigned to) {
    for (std::size_t i = static_cast<std::size_t>(from) * per_round;
         i < static_cast<std::size_t>(to) * per_round; ++i) {
      (void)hierarchy_.access(sink.accesses()[i].addr);
    }
  };

  replay_rounds(0, stage + 1);
  flush_monitored();
  const unsigned probe_after = stage + 1 + config_.probing_round;
  replay_rounds(stage + 1, probe_after);

  // Reload in descending order (anti-prefetch hygiene, as in the flat
  // prober); "present" = served from L1, i.e. latency at or below the
  // L1/L2 midpoint.
  const std::uint64_t threshold =
      config_.hierarchy.l2
          ? (config_.hierarchy.l1.hit_latency +
             config_.hierarchy.l1.miss_latency +
             config_.hierarchy.l2->hit_latency) /
                2
          : (config_.hierarchy.l1.hit_latency +
             config_.hierarchy.l1.miss_latency) /
                2;
  Observation o;
  o.present.assign(16, false);
  o.probed_after_round = probe_after;
  o.ciphertext = ct;
  for (unsigned index = 16; index-- > 0;) {
    const std::uint64_t addr = config_.layout.sbox_row_addr(index);
    const auto r = hierarchy_.access(addr);
    o.attacker_cycles += r.latency;
    o.present[index] = r.latency <= threshold;
  }
  last_ciphertext_ = o.ciphertext;
  return o;
}

}  // namespace grinch::soc
