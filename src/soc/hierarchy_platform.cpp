#include "soc/hierarchy_platform.h"

#include <algorithm>

namespace grinch::soc {

HierarchyPlatform::HierarchyPlatform(const Config& config,
                                     const Key128& victim_key)
    : config_(config),
      key_(victim_key),
      hierarchy_(config.hierarchy),
      cipher_(config.layout),
      schedule_(cipher_.make_schedule(victim_key)),
      line_ids_(compute_index_line_ids(config.layout,
                                       config.hierarchy.l1.line_bytes)) {}

std::vector<unsigned> HierarchyPlatform::index_line_ids() const {
  return line_ids_;
}

std::uint64_t HierarchyPlatform::last_ciphertext() const {
  if (!last_ct_valid_) {
    last_ct_ = cipher_.encrypt_with_schedule(last_pt_, schedule_,
                                             gift::Gift64::kRounds, nullptr);
    last_ct_valid_ = true;
  }
  return last_ct_;
}

void HierarchyPlatform::flush_monitored() {
  for (unsigned row = 0; row < config_.layout.sbox_rows(); ++row) {
    const std::uint64_t addr =
        config_.layout.sbox_base + row * config_.layout.sbox_row_bytes;
    if (config_.flush == FlushCapability::kClflush) {
      hierarchy_.flush_line(addr);  // invalidates every level
    } else {
      hierarchy_.l1().flush_line(addr);  // L2 copies survive
    }
  }
}

std::uint64_t HierarchyPlatform::reload_threshold() const noexcept {
  // "Present" = served from L1, i.e. latency at or below the L1/L2
  // midpoint (or the flat hit/miss midpoint without an L2).
  return config_.hierarchy.l2
             ? (config_.hierarchy.l1.hit_latency +
                config_.hierarchy.l1.miss_latency +
                config_.hierarchy.l2->hit_latency) /
                   2
             : (config_.hierarchy.l1.hit_latency +
                config_.hierarchy.l1.miss_latency) /
                   2;
}

Observation HierarchyPlatform::observe(std::uint64_t plaintext,
                                       unsigned stage) {
  return observe_at(plaintext, stage + 1 + config_.probing_round,
                    reload_threshold());
}

void HierarchyPlatform::observe_batch(std::span<const std::uint64_t>
                                          plaintexts,
                                      unsigned stage,
                                      target::ObservationBatch& out) {
  const unsigned probe_after = stage + 1 + config_.probing_round;
  const std::uint64_t threshold = reload_threshold();
  out.resize(plaintexts.size());
  for (std::size_t i = 0; i < plaintexts.size(); ++i) {
    out[i] = observe_at(plaintexts[i], probe_after, threshold);
  }
}

Observation HierarchyPlatform::observe_at(std::uint64_t plaintext,
                                          unsigned probe_after,
                                          std::uint64_t threshold) {
  // The probe consumes accesses only up to probe_after, so the victim
  // emits just that prefix of rounds (the full ciphertext completes
  // lazily in last_ciphertext()); the reused sink stops allocating after
  // the first encryption.
  sink_.clear();
  const unsigned emit_rounds = std::min(probe_after, gift::Gift64::kRounds);
  const std::uint64_t state =
      cipher_.encrypt_with_schedule(plaintext, schedule_, emit_rounds, &sink_);
  last_pt_ = plaintext;
  last_ct_valid_ = emit_rounds >= gift::Gift64::kRounds;
  if (last_ct_valid_) last_ct_ = state;

  const unsigned per_round = gift::TableGift64::accesses_per_round();
  auto replay_rounds = [&](unsigned from, unsigned to) {
    for (std::size_t i = static_cast<std::size_t>(from) * per_round;
         i < static_cast<std::size_t>(to) * per_round &&
         i < sink_.accesses().size();
         ++i) {
      (void)hierarchy_.access(sink_.accesses()[i].addr);
    }
  };

  replay_rounds(0, probe_after - config_.probing_round);
  flush_monitored();
  replay_rounds(probe_after - config_.probing_round, probe_after);

  // Reload in descending order (anti-prefetch hygiene, as in the flat
  // prober).
  Observation o;
  o.present.assign(16, false);
  o.probed_after_round = probe_after;
  for (unsigned index = 16; index-- > 0;) {
    const std::uint64_t addr = config_.layout.sbox_row_addr(index);
    const auto r = hierarchy_.access(addr);
    o.attacker_cycles += r.latency;
    o.present[index] = r.latency <= threshold;
  }
  return o;
}

}  // namespace grinch::soc
