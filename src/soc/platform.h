// Hardware platforms the GRINCH attack runs against.
//
// Three observation sources, all producing the same Observation shape:
//
//  * DirectProbePlatform — the RTL-simulation setting of experiments 1-2
//    (Fig. 3, Table I): the probe moment is a *parameter* ("cache probing
//    round"), letting the harness sweep it cleanly.
//  * SingleCoreSoC      — experiment 3's first platform: victim and
//    attacker share one core under an RTOS quantum scheduler; the probe
//    moment *emerges* from scheduling and clock frequency.
//  * MpSoc              — experiment 3's second platform: a 3x3 mesh NoC
//    with the attacker on its own tile probing the shared cache remotely;
//    probing is limited only by NoC round-trips (~400 ns), so the probe
//    lands in round 1.
//
// Probing-round semantics (documented also in DESIGN.md): "probing round
// k" for an attack stage `s` (0-based; stage s monitors the S-Box
// accesses of 0-based cipher round s+1) means the probe observes the
// cache after cipher rounds 0 .. s+k have executed.  With flush enabled
// the attacker flushes the monitored lines right before round s+1, so
// the observation contains rounds s+1 .. s+k only; without it, "dirty"
// accesses from all earlier rounds (including the key-independent round
// 0) pollute the observation — exactly the Fig. 3 comparison.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cachesim/cache.h"
#include "common/key128.h"
#include "gift/table_gift.h"
#include "noc/network.h"
#include "soc/prober.h"
#include "soc/scheduler.h"
#include "soc/victim.h"
#include "target/fault_model.h"
#include "target/observation.h"

namespace grinch::soc {

// Observation vocabulary moved to the cipher-agnostic target layer
// (src/target/observation.h); the soc names stay as aliases.  GIFT-64's
// 64-bit block makes soc::ObservationSource the uint64_t instantiation of
// the generic interface — the same one the PRESENT-80 target uses, so one
// attack engine can drive either.
using Observation = target::Observation;
using ProbeMethod = target::ProbeMethod;
using ObservationSource = target::ObservationSource<std::uint64_t>;
using target::compute_index_line_ids;

// ------------------------------------------------------------------------

/// RTL-simulation style platform with a parameterised probe moment.
class DirectProbePlatform final : public ObservationSource {
 public:
  struct Config {
    cachesim::CacheConfig cache = cachesim::CacheConfig::paper_default();
    gift::TableLayout layout;
    VictimCostModel cost;  ///< unit-scale costs; timing is not the point here
    unsigned probing_round = 1;  ///< k in the semantics above (>= 1)
    bool use_flush = true;
    ProbeMethod method = ProbeMethod::kFlushReload;
    /// Victim round-key derivation; null = standard GIFT schedule.  The
    /// hardened-UpdateKey countermeasure substitutes its provider here.
    gift::TableGift64::RoundKeyProvider round_key_provider;
    /// §III-D precision probing: probe immediately after the *focused*
    /// segment's S-Box access inside the monitored round, instead of at a
    /// round boundary.  Overrides probing_round.
    bool precise_probe = false;
    /// Trace-driven channel: also report the monitored round's per-access
    /// hit/miss sequence (models the power side-channel of the paper's
    /// ref [10]).  Requires use_flush.
    bool capture_trace = false;
    /// Noise model: random third-party accesses injected per executed
    /// victim round, drawn uniformly from target::NoiseAddressSpace —
    /// the documented region above every victim table and below the
    /// Prime+Probe eviction sets that aliases all monitored cache sets.
    /// This is the cache-level *mechanism* behind the channel-level
    /// false-absent fault mode (target/fault_model.h): noise can evict
    /// monitored lines but never fake a presence.  For the other fault
    /// modes (false presents, drops, stale reads, bursts) wrap the
    /// platform in a target::FaultyObservationSource instead.
    unsigned noise_accesses_per_round = 0;
    std::uint64_t noise_seed = 0xA05E;
  };

  DirectProbePlatform(const Config& config, const Key128& victim_key);

  Observation observe(std::uint64_t plaintext, unsigned stage) override;
  /// Batched variant of the generic contract: the per-stage probe plan
  /// (how many victim rounds the observation needs) is derived once for
  /// the whole batch, then each element runs the scalar pipeline, so
  /// results are bit-identical to per-element observe() calls.
  void observe_batch(std::span<const std::uint64_t> plaintexts, unsigned stage,
                     target::ObservationBatch& out) override;
  void focus_segment(unsigned segment) override { focus_ = segment & 0xF; }
  [[nodiscard]] const gift::TableLayout& layout() const override {
    return config_.layout;
  }
  [[nodiscard]] std::vector<unsigned> index_line_ids() const override;
  [[nodiscard]] std::uint64_t last_ciphertext() const override;

  [[nodiscard]] cachesim::Cache& cache() noexcept { return cache_; }
  [[nodiscard]] const Key128& victim_key() const noexcept { return key_; }

 private:
  /// Injects the configured per-round noise traffic into the cache.
  void inject_noise();

  /// Victim rounds an observation of `stage` actually needs (partial-round
  /// fast path; clamped to the cipher's round count).
  [[nodiscard]] unsigned rounds_needed(unsigned stage) const noexcept;

  Observation observe_with_rounds(std::uint64_t plaintext, unsigned stage,
                                  unsigned want_rounds);

  Config config_;
  Key128 key_;
  cachesim::Cache cache_;
  gift::TableGift64 cipher_;
  /// Reused across observe() calls (begin_encryption resets it); its trace
  /// and sink buffers then stop allocating after the first encryption.
  VictimProcess victim_;
  std::unique_ptr<CacheProber> prober_;
  Xoshiro256 noise_rng_;
  unsigned focus_ = 0;
  std::vector<unsigned> line_ids_;  ///< computed once at construction
};

// ------------------------------------------------------------------------

/// Single-core SoC: victim + attacker share the core under the RTOS.
class SingleCoreSoC final : public ObservationSource {
 public:
  struct Config {
    cachesim::CacheConfig cache = cachesim::CacheConfig::paper_default();
    gift::TableLayout layout;
    RtosConfig rtos;
    VictimCostModel cost = VictimCostModel::paper_calibrated();
    bool use_flush = true;
    ProbeMethod method = ProbeMethod::kFlushReload;
  };

  SingleCoreSoC(const Config& config, const Key128& victim_key);

  /// 1-based cipher round in progress at the attacker's first quantum —
  /// the "attack efficiency (rounds)" number of Table II.
  [[nodiscard]] unsigned first_probe_round();

  Observation observe(std::uint64_t plaintext, unsigned stage) override;
  [[nodiscard]] const gift::TableLayout& layout() const override {
    return config_.layout;
  }
  [[nodiscard]] std::vector<unsigned> index_line_ids() const override;
  [[nodiscard]] std::uint64_t last_ciphertext() const override;

  [[nodiscard]] double measured_cycles_per_round();

 private:
  Config config_;
  Key128 key_;
  cachesim::Cache cache_;
  gift::TableGift64 cipher_;
  VictimProcess victim_;  ///< reused across observe()/measurement calls
  RtosScheduler scheduler_;
  std::unique_ptr<CacheProber> prober_;
  std::vector<unsigned> line_ids_;  ///< computed once at construction
  /// Lazy full ciphertext of the last observed encryption (the victim
  /// buffer is also reused by measurement helpers, so the pair is kept
  /// here; completed functionally on first last_ciphertext() use).
  std::uint64_t last_pt_ = 0;
  mutable std::uint64_t last_ct_ = 0;
  mutable bool last_ct_valid_ = true;  ///< 0 before any observation
};

// ------------------------------------------------------------------------

/// Tile-based MPSoC: 3x3 mesh, victim / attacker / shared-cache tiles.
class MpSoc final : public ObservationSource {
 public:
  struct Config {
    cachesim::CacheConfig cache = cachesim::CacheConfig::paper_default();
    gift::TableLayout layout;
    VictimCostModel cost = VictimCostModel::paper_calibrated();
    noc::LinkTiming link;
    double clock_mhz = 50.0;
    unsigned mesh_width = 3;
    unsigned mesh_height = 3;
    noc::NodeId victim_tile = 0;
    noc::NodeId attacker_tile = 2;
    noc::NodeId cache_tile = 4;  ///< centre of the 3x3 mesh
    unsigned probe_payload_bytes = 8;
  };

  MpSoc(const Config& config, const Key128& victim_key);

  /// Cycles for one attacker remote cache operation (request + response
  /// NoC traversal + cache access) — ~400 ns at 50 MHz in the paper.
  [[nodiscard]] std::uint64_t remote_access_cycles();

  /// Wall-clock nanoseconds of remote_access_cycles() at the configured
  /// clock.
  [[nodiscard]] double remote_access_ns();

  /// One full probe sequence (flush all monitored lines, reload all).
  [[nodiscard]] std::uint64_t probe_sequence_cycles();

  /// 1-based cipher round in progress when the attacker completes its
  /// first probe after encryption start — round 1 whenever the probe
  /// sequence is faster than a round (Table II's MPSoC row).
  [[nodiscard]] unsigned first_probe_round();

  Observation observe(std::uint64_t plaintext, unsigned stage) override;
  [[nodiscard]] const gift::TableLayout& layout() const override {
    return config_.layout;
  }
  [[nodiscard]] std::vector<unsigned> index_line_ids() const override;
  [[nodiscard]] std::uint64_t last_ciphertext() const override;

  [[nodiscard]] noc::Network& network() noexcept { return network_; }

 private:
  Config config_;
  Key128 key_;
  noc::MeshTopology topology_;
  noc::Network network_;
  cachesim::Cache cache_;
  gift::TableGift64 cipher_;
  VictimProcess victim_;  ///< reused across observe()/measurement calls
  FlushReloadProber prober_;
  std::vector<unsigned> line_ids_;  ///< computed once at construction
  /// Lazy full ciphertext of the last observed encryption (see
  /// SingleCoreSoC; the victim buffer is shared with first_probe_round).
  std::uint64_t last_pt_ = 0;
  mutable std::uint64_t last_ct_ = 0;
  mutable bool last_ct_valid_ = true;  ///< 0 before any observation
};

}  // namespace grinch::soc
