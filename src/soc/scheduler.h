// RTOS-style quantum scheduler model.
//
// The paper's single-processor SoC runs victim and attacker under an RTOS
// with a 10 ms quantum (§IV-A3).  The attacker can only probe during its
// own quantum, so the *probing round* — the cipher round in progress when
// the probe lands — is a function of clock frequency and per-round cost:
// the faster the clock, the more rounds fit into the victim's quantum and
// the later (in rounds) the probe lands.  This is the mechanism behind
// Table II's SoC row (rounds 2/4/8 at 10/25/50 MHz).
#pragma once

#include <cstdint>
#include <vector>

namespace grinch::soc {

struct RtosConfig {
  double quantum_ms = 10.0;  ///< RTOS time slice (the paper's RTOS default)
  double clock_mhz = 50.0;   ///< core clock
  unsigned other_tasks = 0;  ///< tasks scheduled between victim & attacker

  [[nodiscard]] std::uint64_t quantum_cycles() const noexcept {
    return static_cast<std::uint64_t>(quantum_ms * 1e-3 * clock_mhz * 1e6);
  }
};

/// One scheduled slice on the timeline.
struct Slice {
  unsigned task = 0;  ///< 0 = victim, 1.. = others, last = attacker
  std::uint64_t begin_cycle = 0;
  std::uint64_t end_cycle = 0;
};

/// Round-robin quantum scheduler for the single-core SoC.
class RtosScheduler {
 public:
  explicit RtosScheduler(const RtosConfig& config) : config_(config) {}

  [[nodiscard]] const RtosConfig& config() const noexcept { return config_; }

  /// Cycle at which the attacker's n-th quantum begins (n = 0 is the
  /// first).  The victim runs first, then `other_tasks`, then the
  /// attacker; each task gets one quantum per rotation.
  [[nodiscard]] std::uint64_t attacker_slot_begin(unsigned n) const noexcept;

  /// 1-based cipher round in progress at the attacker's first probe,
  /// given the victim's per-round cost.  Saturates at `total_rounds`.
  /// The victim only runs during its own quanta, so victim-progress time
  /// excludes other tasks' slices.
  [[nodiscard]] unsigned probed_round(double victim_cycles_per_round,
                                      unsigned total_rounds = 28)
      const noexcept;

  /// Explicit timeline of the first `rotations` scheduling rotations.
  [[nodiscard]] std::vector<Slice> timeline(unsigned rotations) const;

 private:
  RtosConfig config_;
};

}  // namespace grinch::soc
