#include "soc/victim.h"

#include <algorithm>
#include <cassert>

namespace grinch::soc {

VictimProcess::VictimProcess(const gift::TableGift64& cipher,
                             cachesim::Cache& cache,
                             const VictimCostModel& cost)
    : cipher_(&cipher), cache_(&cache), cost_(cost) {}

void VictimProcess::begin_encryption(std::uint64_t plaintext,
                                     const Key128& key,
                                     std::uint64_t start_cycle,
                                     unsigned max_rounds) {
  key_ = key;
  plaintext_ = plaintext;
  round_ = 0;
  pos_ = 0;
  cycle_ = start_cycle;
  start_cycle_ = start_cycle;
  avail_rounds_ = std::min(max_rounds, gift::Gift64::kRounds);
  if (!schedule_valid_ || key != schedule_key_) {
    schedule_ = cipher_->make_schedule(key);
    schedule_key_ = key;
    schedule_valid_ = true;
  }
  // Precompute the logical access stream up to avail_rounds_ (it depends
  // only on the plaintext/key, never on cache state); the platform then
  // replays it against the cache with timing as it advances the victim.
  // The sink and trace buffers are cleared, not reallocated, so repeated
  // encryptions through one VictimProcess are allocation-free.
  sink_.clear();
  state_ =
      cipher_->encrypt_with_schedule(plaintext, schedule_, avail_rounds_,
                                     &sink_);
  full_ct_valid_ = avail_rounds_ >= gift::Gift64::kRounds;
  if (full_ct_valid_) full_ct_ = state_;
  trace_.clear();
  trace_.reserve(sink_.accesses().size());
}

std::uint64_t VictimProcess::full_ciphertext() const {
  if (!full_ct_valid_) {
    full_ct_ = cipher_->encrypt_with_schedule(plaintext_, schedule_,
                                              gift::Gift64::kRounds, nullptr);
    full_ct_valid_ = true;
  }
  return full_ct_;
}

unsigned VictimProcess::accesses_into_round() const noexcept {
  return static_cast<unsigned>(
      pos_ - static_cast<std::size_t>(round_) *
                 gift::TableGift64::accesses_per_round());
}

void VictimProcess::step() {
  assert(!done());
  const unsigned per_round = gift::TableGift64::accesses_per_round();
  if (accesses_into_round() < per_round) {
    const gift::TableAccess& a = sink_.accesses()[pos_];
    cycle_ += cost_.cycles_per_access_setup;
    const cachesim::AccessResult r = cache_->access(a.addr);
    cycle_ += r.latency;
    trace_.push_back(TimedAccess{cycle_, a, r.hit});
    ++pos_;
  }
  if (accesses_into_round() == per_round) {
    cycle_ += cost_.cycles_round_tail + cost_.cycles_round_overhead;
    ++round_;
  }
}

std::uint64_t VictimProcess::run_round() {
  const unsigned target = round_ + 1;
  while (!done() && round_ < target) step();
  return cycle_;
}

std::uint64_t VictimProcess::run_until_round(unsigned rounds) {
  while (!done() && round_ < rounds) step();
  return cycle_;
}

std::uint64_t VictimProcess::run_until_cycle(std::uint64_t limit) {
  while (!done() && cycle_ < limit) step();
  return cycle_;
}

std::uint64_t VictimProcess::run_until_access(unsigned count) {
  const unsigned per_round = gift::TableGift64::accesses_per_round();
  if (count >= per_round) return run_round();  // whole round requested
  while (!done() && accesses_into_round() < count) step();
  return cycle_;
}

std::uint64_t VictimProcess::finish() {
  run_until_round(avail_rounds_);
  return full_ciphertext();
}

double VictimProcess::cycles_per_round() const noexcept {
  if (round_ == 0) return 0.0;
  return static_cast<double>(cycle_ - start_cycle_) / round_;
}

}  // namespace grinch::soc
