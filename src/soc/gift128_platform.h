// Observation platform for the GIFT-128 attack extension.
//
// Same structure as DirectProbePlatform, for the 128-bit block variant:
// the victim encrypts with the leaky TableGift128 against the shared
// cache, the attacker flushes the monitored S-Box lines right before the
// monitored round and reloads after it.  GIFT-128 uses the *same*
// 16-entry S-Box table, so the prober machinery is reused unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cachesim/cache.h"
#include "common/key128.h"
#include "gift/table_gift128.h"
#include "soc/platform.h"
#include "soc/prober.h"

namespace grinch::soc {

/// A platform the GIFT-128 attack can drive.
class ObservationSource128 {
 public:
  virtual ~ObservationSource128() = default;

  /// One monitored encryption for attack stage `stage` (stage s monitors
  /// cipher round s+1, exactly like the GIFT-64 semantics).
  virtual Observation observe(gift::State128 plaintext, unsigned stage) = 0;

  [[nodiscard]] virtual const gift::TableLayout& layout() const = 0;
  [[nodiscard]] virtual std::vector<unsigned> index_line_ids() const = 0;

  /// Full 128-bit ciphertext of the last observed encryption (the attack
  /// verifies its recovered key against this).
  [[nodiscard]] virtual gift::State128 last_ciphertext() const = 0;
};

class Gift128DirectProbePlatform final : public ObservationSource128 {
 public:
  struct Config {
    cachesim::CacheConfig cache = cachesim::CacheConfig::paper_default();
    gift::TableLayout layout;
    unsigned probing_round = 1;
    bool use_flush = true;
  };

  Gift128DirectProbePlatform(const Config& config, const Key128& victim_key);

  Observation observe(gift::State128 plaintext, unsigned stage) override;
  [[nodiscard]] const gift::TableLayout& layout() const override {
    return config_.layout;
  }
  [[nodiscard]] std::vector<unsigned> index_line_ids() const override;

  [[nodiscard]] gift::State128 last_ciphertext() const override {
    return last_ciphertext_;
  }

 private:
  gift::State128 last_ciphertext_{};
  Config config_;
  Key128 key_;
  cachesim::Cache cache_;
  gift::TableGift128 cipher_;
  FlushReloadProber prober_;
};

}  // namespace grinch::soc
