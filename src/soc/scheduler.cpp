#include "soc/scheduler.h"

#include <cmath>

namespace grinch::soc {

std::uint64_t RtosScheduler::attacker_slot_begin(unsigned n) const noexcept {
  const std::uint64_t q = config_.quantum_cycles();
  const unsigned tasks_per_rotation = 2 + config_.other_tasks;
  // Rotation n: victim, others..., attacker.
  return (static_cast<std::uint64_t>(n) * tasks_per_rotation +
          (1 + config_.other_tasks)) *
         q;
}

unsigned RtosScheduler::probed_round(double victim_cycles_per_round,
                                     unsigned total_rounds) const noexcept {
  // Victim CPU time before the attacker's first probe: exactly one victim
  // quantum (the victim leads the rotation).
  const double victim_time = static_cast<double>(config_.quantum_cycles());
  const auto completed = static_cast<unsigned>(
      std::floor(victim_time / victim_cycles_per_round));
  const unsigned in_progress = completed + 1;  // 1-based round being executed
  return in_progress > total_rounds ? total_rounds : in_progress;
}

std::vector<Slice> RtosScheduler::timeline(unsigned rotations) const {
  const std::uint64_t q = config_.quantum_cycles();
  const unsigned tasks = 2 + config_.other_tasks;
  std::vector<Slice> out;
  out.reserve(static_cast<std::size_t>(rotations) * tasks);
  std::uint64_t t = 0;
  for (unsigned r = 0; r < rotations; ++r) {
    for (unsigned task = 0; task < tasks; ++task) {
      out.push_back(Slice{task, t, t + q});
      t += q;
    }
  }
  return out;
}

}  // namespace grinch::soc
