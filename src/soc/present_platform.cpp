#include "soc/present_platform.h"

namespace grinch::soc {

Present80DirectProbePlatform::Present80DirectProbePlatform(
    const Config& config, const Key128& victim_key)
    : config_(config),
      key_(victim_key),
      cache_(config.cache),
      cipher_(config.layout),
      prober_(cache_, config.layout) {}

std::vector<unsigned> Present80DirectProbePlatform::index_line_ids() const {
  return compute_index_line_ids(config_.layout, config_.cache.line_bytes);
}

Observation Present80DirectProbePlatform::observe(std::uint64_t plaintext) {
  gift::VectorTraceSink sink;
  last_ciphertext_ = cipher_.encrypt(plaintext, key_, &sink);

  std::uint64_t attacker_cycles = prober_.prepare();  // flush at start
  const unsigned per_round = 32;
  const unsigned rounds = config_.probing_round;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(rounds) * per_round &&
       i < sink.accesses().size();
       ++i) {
    (void)cache_.access(sink.accesses()[i].addr);
  }

  const ProbeResult probe = prober_.probe();
  Observation o;
  o.present = probe.row_present;
  o.probed_after_round = rounds;
  o.attacker_cycles = attacker_cycles + probe.cycles;
  o.ciphertext = last_ciphertext_;
  return o;
}

}  // namespace grinch::soc
