#include "cachesim/hierarchy.h"

namespace grinch::cachesim {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config)
    : l1_(config.l1), dram_latency_(config.dram_latency) {
  if (config.l2) l2_.emplace(*config.l2);
}

HierarchyAccessResult CacheHierarchy::access(std::uint64_t addr) {
  HierarchyAccessResult result;
  const AccessResult r1 = l1_.access(addr);
  result.latency += r1.latency;
  if (r1.hit) {
    result.level = HitLevel::kL1;
    return result;
  }
  if (l2_) {
    const AccessResult r2 = l2_->access(addr);
    result.latency += r2.latency;
    if (r2.hit) {
      result.level = HitLevel::kL2;
      return result;
    }
  }
  result.level = HitLevel::kDram;
  result.latency += dram_latency_;
  return result;
}

void CacheHierarchy::flush_all() {
  l1_.flush();
  if (l2_) l2_->flush();
}

void CacheHierarchy::flush_line(std::uint64_t addr) {
  l1_.flush_line(addr);
  if (l2_) l2_->flush_line(addr);
}

}  // namespace grinch::cachesim
