#include "cachesim/lockstep.h"

#include <cassert>
#include <cstring>

#include "common/bits.h"

namespace grinch::cachesim {

LockstepCaches::LockstepCaches(const CacheConfig& config, unsigned max_lanes)
    : config_(config), max_lanes_(max_lanes) {
  config_.validate();
  assert(supports(config_));
  ways_ = config_.associativity;
  num_sets_ = config_.num_sets;
  line_shift_ = log2_pow2(config_.line_bytes);
  sets_shift_ = log2_pow2(config_.num_sets);
  set_mask_ = config_.num_sets - 1;
  const std::size_t slots =
      static_cast<std::size_t>(max_lanes_) * num_sets_ * ways_;
  data_.assign(slots * 2, 0);
  counts_.assign(static_cast<std::size_t>(max_lanes_) * num_sets_, 0);
  clocks_.assign(max_lanes_, 0);
}

void LockstepCaches::reset_lane(unsigned lane) {
  assert(lane < max_lanes_);
  std::memset(&counts_[static_cast<std::size_t>(lane) * num_sets_], 0,
              num_sets_);
  clocks_[lane] = 0;
}

bool LockstepCaches::access(unsigned lane, std::uint64_t addr) {
  assert(lane < max_lanes_);
  const std::uint64_t set = (addr >> line_shift_) & set_mask_;
  const std::uint64_t tag = (addr >> line_shift_) >> sets_shift_;
  const std::size_t base = slot_base(lane, set);
  const std::size_t count_idx =
      static_cast<std::size_t>(lane) * num_sets_ + set;
  const unsigned n = counts_[count_idx];

  for (unsigned i = 0; i < n; ++i) {
    if (data_[base + 2 * i] == tag) {
      data_[base + 2 * i + 1] = ++clocks_[lane];  // LRU: hits refresh recency
      return true;
    }
  }

  // Miss: append while capacity lasts, else evict the (unique) LRU line.
  unsigned slot;
  if (n < ways_) {
    slot = n;
    counts_[count_idx] = static_cast<std::uint8_t>(n + 1);
  } else {
    slot = 0;
    for (unsigned i = 1; i < ways_; ++i) {
      if (data_[base + 2 * i + 1] < data_[base + 2 * slot + 1]) slot = i;
    }
  }
  data_[base + 2 * slot] = tag;
  data_[base + 2 * slot + 1] = ++clocks_[lane];
  return false;
}

bool LockstepCaches::flush_line(unsigned lane, std::uint64_t addr) {
  assert(lane < max_lanes_);
  const std::uint64_t set = (addr >> line_shift_) & set_mask_;
  const std::uint64_t tag = (addr >> line_shift_) >> sets_shift_;
  const std::size_t base = slot_base(lane, set);
  const std::size_t count_idx =
      static_cast<std::size_t>(lane) * num_sets_ + set;
  const unsigned n = counts_[count_idx];
  for (unsigned i = 0; i < n; ++i) {
    if (data_[base + 2 * i] == tag) {
      // Swap-remove keeps sets dense.
      data_[base + 2 * i] = data_[base + 2 * (n - 1)];
      data_[base + 2 * i + 1] = data_[base + 2 * (n - 1) + 1];
      counts_[count_idx] = static_cast<std::uint8_t>(n - 1);
      return true;
    }
  }
  return false;
}

bool LockstepCaches::contains(unsigned lane, std::uint64_t addr) const {
  const std::uint64_t set = (addr >> line_shift_) & set_mask_;
  const std::uint64_t tag = (addr >> line_shift_) >> sets_shift_;
  const std::size_t base = slot_base(lane, set);
  const unsigned n =
      counts_[static_cast<std::size_t>(lane) * num_sets_ + set];
  for (unsigned i = 0; i < n; ++i) {
    if (data_[base + 2 * i] == tag) return true;
  }
  return false;
}

}  // namespace grinch::cachesim
