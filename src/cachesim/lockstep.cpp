#include "cachesim/lockstep.h"

#include <cassert>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "common/bits.h"

namespace grinch::cachesim {

LockstepCaches::LockstepCaches(const CacheConfig& config, unsigned max_lanes)
    : config_(config),
      ops_(&kernels::active()),
      max_lanes_(max_lanes) {
  config_.validate();
  assert(supports(config_));
  static_assert(sizeof(counts_[0]) == 1,
                "counts_ stores per-set occupancy as uint8_t");
  if (config_.associativity > std::numeric_limits<std::uint8_t>::max()) {
    throw std::invalid_argument(
        "LockstepCaches: associativity exceeds the uint8_t occupancy "
        "counters (max 255 ways)");
  }
  ways_ = config_.associativity;
  num_sets_ = config_.num_sets;
  line_shift_ = log2_pow2(config_.line_bytes);
  sets_shift_ = log2_pow2(config_.num_sets);
  set_mask_ = config_.num_sets - 1;
  const std::size_t slots =
      static_cast<std::size_t>(max_lanes_) * num_sets_ * ways_;
  data_.assign(slots * 2, 0);
  counts_.assign(static_cast<std::size_t>(max_lanes_) * num_sets_, 0);
  clocks_.assign(max_lanes_, 0);
}

void LockstepCaches::reset_lane(unsigned lane) {
  assert(lane < max_lanes_);
  std::memset(&counts_[static_cast<std::size_t>(lane) * num_sets_], 0,
              num_sets_);
  clocks_[lane] = 0;
}

}  // namespace grinch::cachesim
