// Set-associative cache model.
//
// Models exactly what the GRINCH threat model requires of the shared
// cache: timed accesses (hit vs. miss is attacker-observable), a full
// flush, and per-line flushes (Flush+Reload's `clflush`).  Physically
// indexed, byte addresses; a line is identified by (set, tag).
//
// Hot-path layout: this class sits inside every simulated victim access
// and every probe of every trial, so its storage is flat — one
// contiguous tag/valid array indexed by set*ways+way, plus contiguous
// per-policy replacement state (recency stamps, PLRU tree bits or
// per-set RNGs) dispatched by a switch on the policy enum.  No per-set
// vectors, no virtual replacement calls, no optionals on the lookup
// path.  Behaviour is bit-identical to the original per-Set
// implementation (differentially validated against a naive reference
// model in tests/cachesim/reference_model_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/config.h"
#include "common/rng.h"

namespace grinch::cachesim {

/// Outcome of a timed access.
struct AccessResult {
  bool hit = false;
  std::uint64_t latency = 0;  ///< cycles this access took
  std::uint64_t set = 0;
  std::uint64_t tag = 0;
  bool evicted = false;               ///< a valid line was displaced
  std::uint64_t evicted_line_addr = 0;  ///< base address of displaced line
};

/// Aggregate counters (reset with clear()).
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t line_flushes = 0;
  std::uint64_t full_flushes = 0;
  std::uint64_t prefetch_fills = 0;  ///< lines installed by the prefetcher

  [[nodiscard]] double hit_rate() const noexcept {
    return accesses ? static_cast<double>(hits) / static_cast<double>(accesses)
                    : 0.0;
  }
  void clear() noexcept { *this = CacheStats{}; }
};

class Cache {
 public:
  /// Validates `config` (throws std::invalid_argument on bad geometry).
  explicit Cache(const CacheConfig& config);

  /// Timed access to byte address `addr`; fills the line on a miss.
  AccessResult access(std::uint64_t addr);

  /// access() for callers that discard the result (trace replay): the
  /// state and stat transitions are identical, but no AccessResult is
  /// materialized — the struct is sret-returned, measurable on a path
  /// that replays ~100 accesses per observation.
  void touch(std::uint64_t addr);

  /// Non-mutating presence check (testing/diagnostics; a real attacker
  /// observes presence only through access latency).
  [[nodiscard]] bool contains(std::uint64_t addr) const noexcept;

  /// Invalidates every line.
  void flush();

  /// Invalidates the line containing `addr` (clflush). Returns true if a
  /// valid line was dropped.
  bool flush_line(std::uint64_t addr);

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void clear_stats() noexcept { stats_.clear(); }

  /// Number of valid lines currently resident — O(1), maintained on
  /// fill/evict/flush (this sits inside probe loops).
  [[nodiscard]] unsigned valid_lines() const noexcept { return valid_count_; }

  /// Set index for an address (exposed for eviction-set construction).
  [[nodiscard]] std::uint64_t set_index(std::uint64_t addr) const noexcept {
    return (addr >> line_shift_) & set_mask_;
  }

  /// Base address of the line containing `addr`.
  [[nodiscard]] std::uint64_t line_base(std::uint64_t addr) const noexcept {
    return addr & ~std::uint64_t{config_.line_bytes - 1};
  }

 private:
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t addr) const noexcept {
    return (addr >> line_shift_) >> sets_shift_;
  }

  /// Way holding (set, tag), or -1 when absent.  `base` = set * ways.
  /// `needle` is the packed (tag << 1) | 1 entry value to match.
  [[nodiscard]] int find_way(std::size_t base,
                             std::uint64_t needle) const noexcept;

  /// First invalid way of the set, or -1 when all ways are valid.
  [[nodiscard]] int find_invalid(std::size_t base) const noexcept;

  // Devirtualized replacement-policy dispatch (one switch on the enum;
  // state machines mirror cachesim/replacement.h, which stays as the
  // unit-tested reference implementation).
  void policy_hit(std::size_t set, unsigned way) noexcept;
  void policy_fill(std::size_t set, unsigned way) noexcept;
  [[nodiscard]] unsigned policy_victim(std::size_t set) noexcept;

  /// Installs the line containing `addr` without touching demand stats
  /// (no-op if already resident).  Used by the prefetcher.
  void fill_line(std::uint64_t addr);

  CacheConfig config_;
  CacheStats stats_;
  unsigned ways_;
  unsigned line_shift_;
  unsigned sets_shift_;
  std::uint64_t set_mask_;
  unsigned valid_count_ = 0;

  // Flat line storage: index = set * ways + way.  Each entry packs
  // (tag << 1) | valid so the way lookup — the innermost loop of every
  // simulated access — scans one array with one compare per way.
  std::vector<std::uint64_t> entries_;

  // Replacement state, allocated only for the configured policy:
  std::vector<std::uint64_t> stamps_;   ///< LRU last-use / FIFO fill order
  std::uint64_t clock_ = 0;             ///< stamp source (LRU/FIFO)
  std::vector<std::uint8_t> plru_tree_; ///< ways-1 tree nodes per set
  unsigned plru_levels_ = 0;
  std::vector<Xoshiro256> random_;      ///< one seeded stream per set
};

}  // namespace grinch::cachesim
