// Set-associative cache model.
//
// Models exactly what the GRINCH threat model requires of the shared
// cache: timed accesses (hit vs. miss is attacker-observable), a full
// flush, and per-line flushes (Flush+Reload's `clflush`).  Physically
// indexed, byte addresses; a line is identified by (set, tag).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cachesim/config.h"
#include "cachesim/replacement.h"

namespace grinch::cachesim {

/// Outcome of a timed access.
struct AccessResult {
  bool hit = false;
  std::uint64_t latency = 0;  ///< cycles this access took
  std::uint64_t set = 0;
  std::uint64_t tag = 0;
  bool evicted = false;               ///< a valid line was displaced
  std::uint64_t evicted_line_addr = 0;  ///< base address of displaced line
};

/// Aggregate counters (reset with clear()).
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t line_flushes = 0;
  std::uint64_t full_flushes = 0;
  std::uint64_t prefetch_fills = 0;  ///< lines installed by the prefetcher

  [[nodiscard]] double hit_rate() const noexcept {
    return accesses ? static_cast<double>(hits) / static_cast<double>(accesses)
                    : 0.0;
  }
  void clear() noexcept { *this = CacheStats{}; }
};

class Cache {
 public:
  /// Validates `config` (throws std::invalid_argument on bad geometry).
  explicit Cache(const CacheConfig& config);

  /// Timed access to byte address `addr`; fills the line on a miss.
  AccessResult access(std::uint64_t addr);

  /// Non-mutating presence check (testing/diagnostics; a real attacker
  /// observes presence only through access latency).
  [[nodiscard]] bool contains(std::uint64_t addr) const noexcept;

  /// Invalidates every line.
  void flush();

  /// Invalidates the line containing `addr` (clflush). Returns true if a
  /// valid line was dropped.
  bool flush_line(std::uint64_t addr);

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void clear_stats() noexcept { stats_.clear(); }

  /// Number of valid lines currently resident.
  [[nodiscard]] unsigned valid_lines() const noexcept;

  /// Set index for an address (exposed for eviction-set construction).
  [[nodiscard]] std::uint64_t set_index(std::uint64_t addr) const noexcept;

  /// Base address of the line containing `addr`.
  [[nodiscard]] std::uint64_t line_base(std::uint64_t addr) const noexcept;

 private:
  struct Line {
    bool valid = false;
    std::uint64_t tag = 0;
  };

  struct Set {
    std::vector<Line> ways;
    std::unique_ptr<ReplacementState> replacement;
  };

  [[nodiscard]] std::uint64_t tag_of(std::uint64_t addr) const noexcept;
  [[nodiscard]] std::optional<unsigned> find_way(const Set& set,
                                                 std::uint64_t tag)
      const noexcept;

  /// Installs the line containing `addr` without touching demand stats
  /// (no-op if already resident).  Used by the prefetcher.
  void fill_line(std::uint64_t addr);

  CacheConfig config_;
  std::vector<Set> sets_;
  CacheStats stats_;
  unsigned line_shift_;
  std::uint64_t set_mask_;
};

}  // namespace grinch::cachesim
