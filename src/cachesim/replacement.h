// Per-set replacement-policy state machines.
//
// Each set's policy is a small state machine: on_hit / on_fill update it,
// choose_victim picks the way to evict when a fill finds no invalid way.
// Policies are deterministic (Random is seeded), which keeps every
// experiment reproducible.
//
// NOTE: the hot-path Cache no longer instantiates these classes — it
// inlines equivalent flat-array logic (cache.cpp: policy_hit/policy_fill/
// policy_victim) to avoid per-access virtual dispatch.  These remain the
// unit-tested reference implementations; reference_model_test.cpp checks
// the Cache's behaviour stays bit-identical to a model built on them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cachesim/config.h"
#include "common/rng.h"

namespace grinch::cachesim {

/// Abstract replacement state for one set.
class ReplacementState {
 public:
  virtual ~ReplacementState() = default;

  /// Called when `way` hits.
  virtual void on_hit(unsigned way) = 0;

  /// Called when a line is installed into `way`.
  virtual void on_fill(unsigned way) = 0;

  /// Chooses the way to evict (all ways valid). Must return < ways().
  [[nodiscard]] virtual unsigned choose_victim() = 0;

  [[nodiscard]] unsigned ways() const noexcept { return ways_; }

 protected:
  explicit ReplacementState(unsigned ways) noexcept : ways_(ways) {}

 private:
  unsigned ways_;
};

/// Exact LRU via a recency stack (counter per way).
class LruState final : public ReplacementState {
 public:
  explicit LruState(unsigned ways);
  void on_hit(unsigned way) override;
  void on_fill(unsigned way) override;
  [[nodiscard]] unsigned choose_victim() override;

 private:
  void touch(unsigned way);
  std::vector<std::uint64_t> last_use_;
  std::uint64_t clock_ = 0;
};

/// FIFO: victim is the oldest fill; hits do not refresh.
class FifoState final : public ReplacementState {
 public:
  explicit FifoState(unsigned ways);
  void on_hit(unsigned way) override;
  void on_fill(unsigned way) override;
  [[nodiscard]] unsigned choose_victim() override;

 private:
  std::vector<std::uint64_t> fill_order_;
  std::uint64_t clock_ = 0;
};

/// Tree pseudo-LRU over power-of-two ways.
class PlruState final : public ReplacementState {
 public:
  explicit PlruState(unsigned ways);
  void on_hit(unsigned way) override;
  void on_fill(unsigned way) override;
  [[nodiscard]] unsigned choose_victim() override;

 private:
  void point_away_from(unsigned way);
  std::vector<std::uint8_t> tree_;  // ways-1 internal nodes
  unsigned levels_;
};

/// Uniform random victim from a seeded generator.
class RandomState final : public ReplacementState {
 public:
  RandomState(unsigned ways, std::uint64_t seed);
  void on_hit(unsigned way) override;
  void on_fill(unsigned way) override;
  [[nodiscard]] unsigned choose_victim() override;

 private:
  Xoshiro256 rng_;
};

/// Factory keyed by the config's policy enum.
[[nodiscard]] std::unique_ptr<ReplacementState> make_replacement_state(
    Replacement policy, unsigned ways, std::uint64_t seed);

}  // namespace grinch::cachesim
