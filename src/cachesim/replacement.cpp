#include "cachesim/replacement.h"

#include <algorithm>
#include <cassert>

#include "common/bits.h"

namespace grinch::cachesim {

// ---------------------------------------------------------------- LRU --

LruState::LruState(unsigned ways)
    : ReplacementState(ways), last_use_(ways, 0) {}

void LruState::touch(unsigned way) { last_use_[way] = ++clock_; }

void LruState::on_hit(unsigned way) { touch(way); }

void LruState::on_fill(unsigned way) { touch(way); }

unsigned LruState::choose_victim() {
  const auto it = std::min_element(last_use_.begin(), last_use_.end());
  return static_cast<unsigned>(it - last_use_.begin());
}

// --------------------------------------------------------------- FIFO --

FifoState::FifoState(unsigned ways)
    : ReplacementState(ways), fill_order_(ways, 0) {}

void FifoState::on_hit(unsigned way) { (void)way; }  // hits don't refresh

void FifoState::on_fill(unsigned way) { fill_order_[way] = ++clock_; }

unsigned FifoState::choose_victim() {
  const auto it = std::min_element(fill_order_.begin(), fill_order_.end());
  return static_cast<unsigned>(it - fill_order_.begin());
}

// --------------------------------------------------------------- PLRU --

PlruState::PlruState(unsigned ways)
    : ReplacementState(ways), tree_(ways > 1 ? ways - 1 : 1, 0),
      levels_(log2_pow2(ways)) {
  assert(is_pow2(ways));
}

void PlruState::point_away_from(unsigned way) {
  // Walk root->leaf; at each node, record the direction *away* from `way`.
  unsigned node = 0;
  for (unsigned level = 0; level < levels_; ++level) {
    const unsigned dir = (way >> (levels_ - 1 - level)) & 1u;
    tree_[node] = static_cast<std::uint8_t>(dir ^ 1u);
    node = 2 * node + 1 + dir;
  }
}

void PlruState::on_hit(unsigned way) { point_away_from(way); }

void PlruState::on_fill(unsigned way) { point_away_from(way); }

unsigned PlruState::choose_victim() {
  if (ways() == 1) return 0;
  unsigned node = 0, way = 0;
  for (unsigned level = 0; level < levels_; ++level) {
    const unsigned dir = tree_[node];
    way = (way << 1) | dir;
    node = 2 * node + 1 + dir;
  }
  return way;
}

// ------------------------------------------------------------- Random --

RandomState::RandomState(unsigned ways, std::uint64_t seed)
    : ReplacementState(ways), rng_(seed) {}

void RandomState::on_hit(unsigned way) { (void)way; }

void RandomState::on_fill(unsigned way) { (void)way; }

unsigned RandomState::choose_victim() {
  return static_cast<unsigned>(rng_.uniform(ways()));
}

// ------------------------------------------------------------ factory --

std::unique_ptr<ReplacementState> make_replacement_state(Replacement policy,
                                                         unsigned ways,
                                                         std::uint64_t seed) {
  switch (policy) {
    case Replacement::kLru: return std::make_unique<LruState>(ways);
    case Replacement::kFifo: return std::make_unique<FifoState>(ways);
    case Replacement::kPlru: return std::make_unique<PlruState>(ways);
    case Replacement::kRandom:
      return std::make_unique<RandomState>(ways, seed);
  }
  return nullptr;
}

}  // namespace grinch::cachesim
