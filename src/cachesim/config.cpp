#include "cachesim/config.h"

#include <sstream>
#include <stdexcept>

#include "common/bits.h"

namespace grinch::cachesim {

const char* to_string(Replacement r) noexcept {
  switch (r) {
    case Replacement::kLru: return "LRU";
    case Replacement::kFifo: return "FIFO";
    case Replacement::kPlru: return "PLRU";
    case Replacement::kRandom: return "Random";
  }
  return "?";
}

void CacheConfig::validate() const {
  if (!is_pow2(line_bytes))
    throw std::invalid_argument("line_bytes must be a power of two");
  if (!is_pow2(num_sets))
    throw std::invalid_argument("num_sets must be a power of two");
  if (associativity == 0)
    throw std::invalid_argument("associativity must be non-zero");
  if (replacement == Replacement::kPlru && !is_pow2(associativity))
    throw std::invalid_argument(
        "tree PLRU requires power-of-two associativity");
  if (miss_latency <= hit_latency)
    throw std::invalid_argument(
        "miss_latency must exceed hit_latency (probing distinguishes them)");
}

std::string CacheConfig::describe() const {
  std::ostringstream os;
  os << num_sets << " sets x " << associativity << " ways x " << line_bytes
     << " B lines (" << total_lines() << " lines, " << to_string(replacement)
     << ", hit " << hit_latency << "cy / miss " << miss_latency << "cy)";
  return os.str();
}

}  // namespace grinch::cachesim
