// Two-level cache hierarchy.
//
// The GRINCH threat model mentions SoCs with multi-level hierarchies
// (L1..L3 + DRAM).  The paper's platforms use a single shared L1; the
// hierarchy exists for the memory-hierarchy ablation (future-work section
// of the paper) and for hierarchy-aware probing tests.  An access tries
// L1, then L2, then pays the DRAM latency; fills propagate inward.
#pragma once

#include <cstdint>
#include <optional>

#include "cachesim/cache.h"

namespace grinch::cachesim {

struct HierarchyConfig {
  CacheConfig l1;
  std::optional<CacheConfig> l2;  ///< absent = single-level
  std::uint64_t dram_latency = 100;
};

/// Where an access was served from.
enum class HitLevel : std::uint8_t { kL1, kL2, kDram };

struct HierarchyAccessResult {
  HitLevel level = HitLevel::kDram;
  std::uint64_t latency = 0;
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierarchyConfig& config);

  /// Timed access; fills every level on the way in.
  HierarchyAccessResult access(std::uint64_t addr);

  /// Flushes all levels.
  void flush_all();

  /// Flushes the line from all levels (clflush semantics).
  void flush_line(std::uint64_t addr);

  [[nodiscard]] Cache& l1() noexcept { return l1_; }
  [[nodiscard]] const Cache& l1() const noexcept { return l1_; }
  [[nodiscard]] bool has_l2() const noexcept { return l2_.has_value(); }
  [[nodiscard]] Cache& l2() { return l2_.value(); }
  [[nodiscard]] const Cache& l2() const { return l2_.value(); }
  [[nodiscard]] std::uint64_t dram_latency() const noexcept {
    return dram_latency_;
  }

 private:
  Cache l1_;
  std::optional<Cache> l2_;
  std::uint64_t dram_latency_;
};

}  // namespace grinch::cachesim
