// Lockstep multi-lane cache state for the wide observation path.
//
// LockstepCaches advances up to 64 independent flush-per-observation
// trials ("lanes") through one struct-of-arrays tag/stamp store: all
// lanes share one tags_/stamps_/counts_ allocation laid out lane-major,
// so a wide batch walks contiguous memory instead of 64 scattered Cache
// objects, and a lane reset is one small memset.
//
// Each lane models an *initially empty* cache.  That is exact — not an
// approximation — for the supported configurations (supports()): on an
// LRU cache with no prefetcher, every line resident before the
// attacker's flush point carries a strictly older recency stamp than any
// line filled inside the monitored window, so
//   * a monitored (flushed) line is present at the probe iff the window
//     itself filled it and no later in-window fill evicted it;
//   * the eviction order among in-window lines is the same whether the
//     pre-window lines exist or not (they are only ever victimised
//     first, and evicting a pre-window line never changes a monitored
//     line's verdict);
//   * an in-window hit on a pre-window line refreshes its stamp exactly
//     like the cold lane's fill does, so subsequent victim choices agree.
// The per-observation verdicts and latencies therefore equal a scalar
// Cache that carries the full warm history (differentially pinned by
// tests/cachesim/lockstep_test.cpp and the wide conformance suite).
// FIFO breaks the argument (hits do not refresh stamps), PLRU/Random
// track state the cold lane cannot reproduce, and a prefetcher drags
// neighbour lines across the flush boundary — those configurations must
// use the scalar path (callers check supports()).
//
// Sets are kept compact: `counts_` holds the number of live lines per
// (lane, set); fills append, flushes swap-remove.  Slot order is
// irrelevant to behaviour — lookups match tags and the LRU victim is the
// unique minimum stamp (the per-lane clock strictly increases, so stamps
// never tie).  Tag and stamp of a slot live adjacent in one array
// ((tag, stamp) u64 pairs), so the common low-occupancy set probe costs
// a single cache line instead of one per array.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/config.h"

namespace grinch::cachesim {

class LockstepCaches {
 public:
  LockstepCaches(const CacheConfig& config, unsigned max_lanes);

  /// True when a cold per-lane cache reproduces the warm scalar cache's
  /// probe verdicts exactly (see header comment).
  [[nodiscard]] static bool supports(const CacheConfig& config) noexcept {
    return config.replacement == Replacement::kLru &&
           config.prefetch_lines == 0;
  }

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] unsigned max_lanes() const noexcept { return max_lanes_; }

  /// Empties lane `lane` (all sets, clock to 0).
  void reset_lane(unsigned lane);

  /// Untimed access on `lane` (victim replay): hit refreshes recency,
  /// miss fills — exactly Cache::touch on the supported configs.
  void touch(unsigned lane, std::uint64_t addr) {
    (void)access(lane, addr);
  }

  /// Timed access on `lane` (attacker probe): returns whether it hit;
  /// state transitions are identical to touch().
  [[nodiscard]] bool access(unsigned lane, std::uint64_t addr);

  /// Invalidates the line containing `addr` on `lane`; returns true when
  /// a live line was dropped.
  bool flush_line(unsigned lane, std::uint64_t addr);

  /// Non-mutating presence check (tests/diagnostics).
  [[nodiscard]] bool contains(unsigned lane, std::uint64_t addr) const;

 private:
  /// Index of slot 0's (tag, stamp) pair for (lane, set) in data_.
  [[nodiscard]] std::size_t slot_base(unsigned lane,
                                      std::uint64_t set) const noexcept {
    return (static_cast<std::size_t>(lane) * num_sets_ +
            static_cast<std::size_t>(set)) *
           ways_ * 2;
  }

  CacheConfig config_;
  unsigned max_lanes_;
  unsigned ways_;
  unsigned num_sets_;
  unsigned line_shift_;
  unsigned sets_shift_;
  std::uint64_t set_mask_;
  /// Shared SoA storage, lane-major: slot i of (lane, set) is the pair
  /// data_[slot_base + 2i] (tag) / data_[slot_base + 2i + 1] (stamp).
  /// Only the first counts_[lane*num_sets + set] slots are live.
  std::vector<std::uint64_t> data_;
  std::vector<std::uint8_t> counts_;
  std::vector<std::uint32_t> clocks_;  ///< per-lane recency clock
};

}  // namespace grinch::cachesim
