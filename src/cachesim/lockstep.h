// Lockstep multi-lane cache state for the wide observation path.
//
// LockstepCaches advances up to 64 independent flush-per-observation
// trials ("lanes") through one struct-of-arrays tag/stamp store: all
// lanes share one tags_/stamps_/counts_ allocation laid out lane-major,
// so a wide batch walks contiguous memory instead of 64 scattered Cache
// objects, and a lane reset is one small memset.
//
// Each lane models an *initially empty* cache.  That is exact — not an
// approximation — for the supported configurations (supports()): on an
// LRU cache with no prefetcher, every line resident before the
// attacker's flush point carries a strictly older recency stamp than any
// line filled inside the monitored window, so
//   * a monitored (flushed) line is present at the probe iff the window
//     itself filled it and no later in-window fill evicted it;
//   * the eviction order among in-window lines is the same whether the
//     pre-window lines exist or not (they are only ever victimised
//     first, and evicting a pre-window line never changes a monitored
//     line's verdict);
//   * an in-window hit on a pre-window line refreshes its stamp exactly
//     like the cold lane's fill does, so subsequent victim choices agree.
// The per-observation verdicts and latencies therefore equal a scalar
// Cache that carries the full warm history (differentially pinned by
// tests/cachesim/lockstep_test.cpp and the wide conformance suite).
// FIFO breaks the argument (hits do not refresh stamps), PLRU/Random
// track state the cold lane cannot reproduce, and a prefetcher drags
// neighbour lines across the flush boundary — those configurations must
// use the scalar path (callers check supports()).
//
// Sets are kept compact: `counts_` holds the number of live lines per
// (lane, set); fills append, flushes swap-remove.  Slot order is
// irrelevant to behaviour — lookups match tags and the LRU victim is the
// unique minimum stamp (the per-lane clock strictly increases, so stamps
// never tie).  Tag and stamp of a slot live adjacent in one array
// ((tag, stamp) u64 pairs), so the common low-occupancy set probe costs
// a single cache line instead of one per array.
// The per-set scans (tag match on access/flush, min-stamp victim pick)
// run through the runtime-dispatched kernel layer
// (cachesim/kernels/kernels.h): the Ops table is resolved once at
// construction, tiny sets (the common case on the paper geometry, where
// a monitored set holds at most a couple of lines) take a short inline
// scalar path, and occupied sets hand the contiguous (tag, stamp) pairs
// to the active SWAR/AVX2 kernel.  Every kernel is bit-identical to the
// generic loops, so the choice never changes behaviour — only speed.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "cachesim/config.h"
#include "cachesim/kernels/kernels.h"

namespace grinch::cachesim {

class LockstepCaches {
 public:
  /// Throws std::invalid_argument when the geometry is invalid or
  /// `ways` does not fit the per-set uint8_t occupancy counters.
  LockstepCaches(const CacheConfig& config, unsigned max_lanes);

  /// True when a cold per-lane cache reproduces the warm scalar cache's
  /// probe verdicts exactly (see header comment).
  [[nodiscard]] static bool supports(const CacheConfig& config) noexcept {
    return config.replacement == Replacement::kLru &&
           config.prefetch_lines == 0;
  }

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] unsigned max_lanes() const noexcept { return max_lanes_; }

  /// The kernel table this pool resolved at construction.
  [[nodiscard]] const kernels::Ops& kernel() const noexcept { return *ops_; }

  /// Empties lane `lane` (all sets, clock to 0).
  void reset_lane(unsigned lane);

  /// Untimed access on `lane` (victim replay): hit refreshes recency,
  /// miss fills — exactly Cache::touch on the supported configs.
  void touch(unsigned lane, std::uint64_t addr) {
    (void)access(lane, addr);
  }

  /// Timed access on `lane` (attacker probe): returns whether it hit;
  /// state transitions are identical to touch().  Inline — this is the
  /// innermost call of the fused wide sink, several per table access.
  [[nodiscard]] bool access(unsigned lane, std::uint64_t addr) {
    assert(lane < max_lanes_);
    const std::uint64_t set = (addr >> line_shift_) & set_mask_;
    const std::uint64_t tag = (addr >> line_shift_) >> sets_shift_;
    const std::size_t base = slot_base(lane, set);
    const std::size_t count_idx =
        static_cast<std::size_t>(lane) * num_sets_ + set;
    const unsigned n = counts_[count_idx];

    const int hit = find_tag(&data_[base], n, tag);
    if (hit >= 0) {
      data_[base + 2 * static_cast<unsigned>(hit) + 1] =
          ++clocks_[lane];  // LRU: hits refresh recency
      return true;
    }

    // Miss: append while capacity lasts, else evict the (unique) LRU line.
    unsigned slot;
    if (n < ways_) {
      slot = n;
      counts_[count_idx] = static_cast<std::uint8_t>(n + 1);
    } else {
      slot = ops_->min_stamp_slot(&data_[base], ways_);
    }
    data_[base + 2 * slot] = tag;
    data_[base + 2 * slot + 1] = ++clocks_[lane];
    return false;
  }

  /// Invalidates the line containing `addr` on `lane`; returns true when
  /// a live line was dropped.
  bool flush_line(unsigned lane, std::uint64_t addr) {
    assert(lane < max_lanes_);
    const std::uint64_t set = (addr >> line_shift_) & set_mask_;
    const std::uint64_t tag = (addr >> line_shift_) >> sets_shift_;
    const std::size_t base = slot_base(lane, set);
    const std::size_t count_idx =
        static_cast<std::size_t>(lane) * num_sets_ + set;
    const unsigned n = counts_[count_idx];
    const int found = find_tag(&data_[base], n, tag);
    if (found < 0) return false;
    // Swap-remove keeps sets dense.
    const unsigned i = static_cast<unsigned>(found);
    data_[base + 2 * i] = data_[base + 2 * (n - 1)];
    data_[base + 2 * i + 1] = data_[base + 2 * (n - 1) + 1];
    counts_[count_idx] = static_cast<std::uint8_t>(n - 1);
    return true;
  }

  /// Non-mutating presence check (tests/diagnostics).
  [[nodiscard]] bool contains(unsigned lane, std::uint64_t addr) const {
    const std::uint64_t set = (addr >> line_shift_) & set_mask_;
    const std::uint64_t tag = (addr >> line_shift_) >> sets_shift_;
    const unsigned n =
        counts_[static_cast<std::size_t>(lane) * num_sets_ + set];
    return find_tag(&data_[slot_base(lane, set)], n, tag) >= 0;
  }

  /// Register-resident single-lane session for the fused wide hot path.
  /// Hoists the lane's slot/count base pointers and its recency clock out
  /// of the per-access path (the pool API re-derives all of them per
  /// call, which dominates the cost of the tiny per-set scans on the
  /// paper geometry).  Behaviour is bit-identical to the pool calls; the
  /// clock lives in the session until destruction writes it back, so the
  /// lane must not be driven through the pool API (or a second session)
  /// while one is open.
  class LaneSession {
   public:
    LaneSession(LockstepCaches& pool, unsigned lane) noexcept
        : data_(pool.data_.data() + pool.slot_base(lane, 0)),
          counts_(pool.counts_.data() +
                  static_cast<std::size_t>(lane) * pool.num_sets_),
          clock_slot_(&pool.clocks_[lane]),
          clock_(pool.clocks_[lane]),
          ops_(pool.ops_),
          ways_(pool.ways_) {
      assert(lane < pool.max_lanes_);
    }
    ~LaneSession() { *clock_slot_ = clock_; }
    LaneSession(const LaneSession&) = delete;
    LaneSession& operator=(const LaneSession&) = delete;

    /// Pool access() against this lane, with (set, tag) already split out
    /// by the caller (the sink computes the set for its bitmap filter
    /// anyway; the probe rows are precomputed).
    ///
    /// The common shape — a set holding at most four lines, not at
    /// capacity — runs branch-free: the hit/miss outcome of a probe *is*
    /// the unpredictable leak signal, so a data-dependent branch here
    /// mispredicts roughly every other access.  Instead the first four
    /// slots are compared unconditionally (stale slots masked
    /// arithmetically; ways >= 4 keeps the loads in bounds), the target
    /// slot is selected by conditional move, and the stores are
    /// unconditional — a hit rewrites the identical tag, a miss appends,
    /// and both stamp the slot with the advanced clock, exactly like the
    /// branchy pool transition.
    [[nodiscard]] bool access_line(std::uint64_t set, std::uint64_t tag) {
      std::uint64_t* base = data_ + set * (2 * static_cast<std::size_t>(ways_));
      std::uint8_t& count = counts_[set];
      const unsigned n = count;
      if (n > 4 || n == ways_ || ways_ < 4) {
        return access_line_spill(base, count, n, tag);
      }
      unsigned match = 0;
      for (unsigned i = 0; i < 4; ++i) {
        match |= static_cast<unsigned>(base[2 * i] == tag) << i;
      }
      match &= (1u << n) - 1u;
      const bool hit = match != 0;
      const unsigned slot =
          hit ? static_cast<unsigned>(std::countr_zero(match)) : n;
      base[2 * slot] = tag;
      base[2 * slot + 1] = ++clock_;
      count = static_cast<std::uint8_t>(n + (hit ? 0u : 1u));
      return hit;
    }

    /// Hints the prefetcher at `set`'s slot-0 line (and the lane's count
    /// bytes).  The wide core issues these for the monitored sets right
    /// after opening the session: the fetch latency then overlaps the
    /// uninstrumented leading rounds of the victim encryption instead of
    /// stalling the first monitored touch of each set.  Pure hint — no
    /// state changes.
    void prefetch_set(std::uint64_t set) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
      __builtin_prefetch(data_ + set * (2 * static_cast<std::size_t>(ways_)),
                         0, 3);
      __builtin_prefetch(counts_ + set, 0, 3);
#else
      (void)set;
#endif
    }

   private:
    /// The uncommon access_line shapes, behind one predictable branch:
    /// sets deeper than the unconditional 4-slot probe (kernel scan),
    /// sets at capacity (LRU eviction), and geometries with fewer than
    /// four ways (where the unconditional loads would leave the set).
    [[nodiscard]] bool access_line_spill(std::uint64_t* base,
                                         std::uint8_t& count, unsigned n,
                                         std::uint64_t tag) {
      const int hit = find_tag(ops_, base, n, tag);
      if (hit >= 0) {
        base[2 * static_cast<unsigned>(hit) + 1] = ++clock_;
        return true;
      }
      unsigned slot;
      if (n < ways_) {
        slot = n;
        count = static_cast<std::uint8_t>(n + 1);
      } else {
        slot = ops_->min_stamp_slot(base, ways_);
      }
      base[2 * slot] = tag;
      base[2 * slot + 1] = ++clock_;
      return false;
    }

    std::uint64_t* data_;        ///< lane's slot pairs (set-major)
    std::uint8_t* counts_;       ///< lane's per-set occupancy
    std::uint32_t* clock_slot_;  ///< write-back target for clock_
    std::uint32_t clock_;
    const kernels::Ops* ops_;
    unsigned ways_;
  };

  /// Opens a hot-path session on `lane` (see LaneSession).
  [[nodiscard]] LaneSession lane_session(unsigned lane) noexcept {
    return LaneSession{*this, lane};
  }

 private:
  /// Per-set tag scan: sets holding at most a few lines (the monitored
  /// sets of the paper geometry) stay on an inline scalar loop — the
  /// kernel call would cost more than it saves — and occupied sets
  /// dispatch to the active kernel.  Both sides return the identical
  /// unique match, so the cut-over is invisible to behaviour.  Static so
  /// LaneSession shares it without holding the pool.
  [[nodiscard]] static int find_tag(const kernels::Ops* ops,
                                    const std::uint64_t* pairs, unsigned n,
                                    std::uint64_t tag) {
    if (n <= 4) {
      for (unsigned i = 0; i < n; ++i) {
        if (pairs[2 * i] == tag) return static_cast<int>(i);
      }
      return -1;
    }
    return ops->find_tag(pairs, n, tag);
  }

  [[nodiscard]] int find_tag(const std::uint64_t* pairs, unsigned n,
                             std::uint64_t tag) const {
    return find_tag(ops_, pairs, n, tag);
  }

  /// Index of slot 0's (tag, stamp) pair for (lane, set) in data_.
  [[nodiscard]] std::size_t slot_base(unsigned lane,
                                      std::uint64_t set) const noexcept {
    return (static_cast<std::size_t>(lane) * num_sets_ +
            static_cast<std::size_t>(set)) *
           ways_ * 2;
  }

  CacheConfig config_;
  /// Kernel table resolved at construction (kernels::active() then);
  /// tests pin a kernel by constructing inside a kernels::ScopedKernel.
  const kernels::Ops* ops_ = nullptr;
  unsigned max_lanes_;
  unsigned ways_;
  unsigned num_sets_;
  unsigned line_shift_;
  unsigned sets_shift_;
  std::uint64_t set_mask_;
  /// Shared SoA storage, lane-major: slot i of (lane, set) is the pair
  /// data_[slot_base + 2i] (tag) / data_[slot_base + 2i + 1] (stamp).
  /// Only the first counts_[lane*num_sets + set] slots are live.
  std::vector<std::uint64_t> data_;
  std::vector<std::uint8_t> counts_;
  std::vector<std::uint32_t> clocks_;  ///< per-lane recency clock
};

}  // namespace grinch::cachesim
