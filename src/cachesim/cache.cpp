#include "cachesim/cache.h"

#include <algorithm>

#include "common/bits.h"

namespace grinch::cachesim {

Cache::Cache(const CacheConfig& config) : config_(config) {
  config_.validate();
  ways_ = config_.associativity;
  line_shift_ = log2_pow2(config_.line_bytes);
  sets_shift_ = log2_pow2(config_.num_sets);
  set_mask_ = config_.num_sets - 1;

  const std::size_t lines =
      static_cast<std::size_t>(config_.num_sets) * ways_;
  entries_.assign(lines, 0);

  switch (config_.replacement) {
    case Replacement::kLru:
    case Replacement::kFifo:
      stamps_.assign(lines, 0);
      break;
    case Replacement::kPlru:
      plru_levels_ = log2_pow2(ways_);
      plru_tree_.assign(static_cast<std::size_t>(config_.num_sets) *
                            (ways_ > 1 ? ways_ - 1 : 1),
                        0);
      break;
    case Replacement::kRandom: {
      // Per-set streams seeded seed+1, seed+2, ... — the exact seeding of
      // the original per-set RandomState construction loop.
      random_.reserve(config_.num_sets);
      std::uint64_t set_seed = config_.seed;
      for (unsigned s = 0; s < config_.num_sets; ++s)
        random_.emplace_back(++set_seed);
      break;
    }
  }
}

int Cache::find_way(std::size_t base, std::uint64_t needle) const noexcept {
  const std::uint64_t* entries = &entries_[base];
  for (unsigned w = 0; w < ways_; ++w) {
    if (entries[w] == needle) return static_cast<int>(w);
  }
  return -1;
}

int Cache::find_invalid(std::size_t base) const noexcept {
  const std::uint64_t* entries = &entries_[base];
  for (unsigned w = 0; w < ways_; ++w) {
    if (!(entries[w] & 1u)) return static_cast<int>(w);
  }
  return -1;
}

void Cache::policy_hit(std::size_t set, unsigned way) noexcept {
  switch (config_.replacement) {
    case Replacement::kLru:
      stamps_[set * ways_ + way] = ++clock_;
      break;
    case Replacement::kFifo:
    case Replacement::kRandom:
      break;  // hits don't refresh
    case Replacement::kPlru: {
      if (ways_ == 1) break;
      // Walk root->leaf; at each node, point *away* from `way`.
      std::uint8_t* tree = &plru_tree_[set * (ways_ - 1)];
      unsigned node = 0;
      for (unsigned level = 0; level < plru_levels_; ++level) {
        const unsigned dir = (way >> (plru_levels_ - 1 - level)) & 1u;
        tree[node] = static_cast<std::uint8_t>(dir ^ 1u);
        node = 2 * node + 1 + dir;
      }
      break;
    }
  }
}

void Cache::policy_fill(std::size_t set, unsigned way) noexcept {
  switch (config_.replacement) {
    case Replacement::kLru:
    case Replacement::kFifo:
      stamps_[set * ways_ + way] = ++clock_;
      break;
    case Replacement::kPlru:
      policy_hit(set, way);  // fills refresh like hits
      break;
    case Replacement::kRandom:
      break;
  }
}

unsigned Cache::policy_victim(std::size_t set) noexcept {
  switch (config_.replacement) {
    case Replacement::kLru:
    case Replacement::kFifo: {
      // First minimum stamp — matches std::min_element of the reference
      // state machines.
      const std::uint64_t* stamps = &stamps_[set * ways_];
      unsigned victim = 0;
      for (unsigned w = 1; w < ways_; ++w) {
        if (stamps[w] < stamps[victim]) victim = w;
      }
      return victim;
    }
    case Replacement::kPlru: {
      if (ways_ == 1) return 0;
      const std::uint8_t* tree = &plru_tree_[set * (ways_ - 1)];
      unsigned node = 0, way = 0;
      for (unsigned level = 0; level < plru_levels_; ++level) {
        const unsigned dir = tree[node];
        way = (way << 1) | dir;
        node = 2 * node + 1 + dir;
      }
      return way;
    }
    case Replacement::kRandom:
      return static_cast<unsigned>(random_[set].uniform(ways_));
  }
  return 0;
}

AccessResult Cache::access(std::uint64_t addr) {
  const std::uint64_t si = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const std::size_t base = static_cast<std::size_t>(si) * ways_;
  ++stats_.accesses;

  AccessResult result;
  result.set = si;
  result.tag = tag;

  if (const int way = find_way(base, (tag << 1) | 1u); way >= 0) {
    ++stats_.hits;
    policy_hit(si, static_cast<unsigned>(way));
    result.hit = true;
    result.latency = config_.hit_latency;
    return result;
  }

  // Miss: fill into an invalid way if available, else evict.
  ++stats_.misses;
  unsigned victim;
  if (const int invalid = find_invalid(base); invalid >= 0) {
    victim = static_cast<unsigned>(invalid);
    ++valid_count_;
  } else {
    victim = policy_victim(si);
    ++stats_.evictions;
    result.evicted = true;
    // Reconstruct the displaced line's base address from (tag, set).
    result.evicted_line_addr =
        (((entries_[base + victim] >> 1) << sets_shift_) | si) << line_shift_;
  }
  entries_[base + victim] = (tag << 1) | 1u;
  policy_fill(si, victim);
  result.hit = false;
  result.latency = config_.miss_latency;

  // Next-line prefetch: pull sequential neighbours in alongside the
  // demand miss (latency hidden behind the memory access).
  for (unsigned i = 1; i <= config_.prefetch_lines; ++i) {
    fill_line(line_base(addr) + static_cast<std::uint64_t>(i) *
                                    config_.line_bytes);
  }
  return result;
}

void Cache::touch(std::uint64_t addr) {
  const std::uint64_t si = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const std::size_t base = static_cast<std::size_t>(si) * ways_;
  ++stats_.accesses;

  if (const int way = find_way(base, (tag << 1) | 1u); way >= 0) {
    ++stats_.hits;
    policy_hit(si, static_cast<unsigned>(way));
    return;
  }

  ++stats_.misses;
  unsigned victim;
  if (const int invalid = find_invalid(base); invalid >= 0) {
    victim = static_cast<unsigned>(invalid);
    ++valid_count_;
  } else {
    victim = policy_victim(si);
    ++stats_.evictions;
  }
  entries_[base + victim] = (tag << 1) | 1u;
  policy_fill(si, victim);
  for (unsigned i = 1; i <= config_.prefetch_lines; ++i) {
    fill_line(line_base(addr) + static_cast<std::uint64_t>(i) *
                                    config_.line_bytes);
  }
}

void Cache::fill_line(std::uint64_t addr) {
  const std::uint64_t si = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const std::size_t base = static_cast<std::size_t>(si) * ways_;
  if (find_way(base, (tag << 1) | 1u) >= 0) return;  // already resident
  unsigned victim;
  if (const int invalid = find_invalid(base); invalid >= 0) {
    victim = static_cast<unsigned>(invalid);
    ++valid_count_;
  } else {
    victim = policy_victim(si);
    ++stats_.evictions;
  }
  entries_[base + victim] = (tag << 1) | 1u;
  policy_fill(si, victim);
  ++stats_.prefetch_fills;
}

bool Cache::contains(std::uint64_t addr) const noexcept {
  const std::size_t base =
      static_cast<std::size_t>(set_index(addr)) * ways_;
  return find_way(base, (tag_of(addr) << 1) | 1u) >= 0;
}

void Cache::flush() {
  // Replacement state is deliberately left alone (matching real hardware
  // and the original implementation): invalid ways are filled first, so
  // stale stamps never pick a victim before the set refills.
  for (std::uint64_t& e : entries_) e &= ~std::uint64_t{1};
  valid_count_ = 0;
  ++stats_.full_flushes;
}

bool Cache::flush_line(std::uint64_t addr) {
  const std::size_t base =
      static_cast<std::size_t>(set_index(addr)) * ways_;
  ++stats_.line_flushes;
  if (const int way = find_way(base, (tag_of(addr) << 1) | 1u); way >= 0) {
    entries_[base + static_cast<unsigned>(way)] &= ~std::uint64_t{1};
    --valid_count_;
    return true;
  }
  return false;
}

}  // namespace grinch::cachesim
