#include "cachesim/cache.h"

#include "common/bits.h"

namespace grinch::cachesim {

Cache::Cache(const CacheConfig& config) : config_(config) {
  config_.validate();
  line_shift_ = log2_pow2(config_.line_bytes);
  set_mask_ = config_.num_sets - 1;
  sets_.resize(config_.num_sets);
  std::uint64_t set_seed = config_.seed;
  for (auto& set : sets_) {
    set.ways.resize(config_.associativity);
    set.replacement = make_replacement_state(config_.replacement,
                                             config_.associativity, ++set_seed);
  }
}

std::uint64_t Cache::set_index(std::uint64_t addr) const noexcept {
  return (addr >> line_shift_) & set_mask_;
}

std::uint64_t Cache::tag_of(std::uint64_t addr) const noexcept {
  return (addr >> line_shift_) >> log2_pow2(config_.num_sets);
}

std::uint64_t Cache::line_base(std::uint64_t addr) const noexcept {
  return addr & ~std::uint64_t{config_.line_bytes - 1};
}

std::optional<unsigned> Cache::find_way(const Set& set,
                                        std::uint64_t tag) const noexcept {
  for (unsigned w = 0; w < set.ways.size(); ++w) {
    if (set.ways[w].valid && set.ways[w].tag == tag) return w;
  }
  return std::nullopt;
}

AccessResult Cache::access(std::uint64_t addr) {
  const std::uint64_t si = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Set& set = sets_[si];
  ++stats_.accesses;

  AccessResult result;
  result.set = si;
  result.tag = tag;

  if (const auto way = find_way(set, tag)) {
    ++stats_.hits;
    set.replacement->on_hit(*way);
    result.hit = true;
    result.latency = config_.hit_latency;
    return result;
  }

  // Miss: fill into an invalid way if available, else evict.
  ++stats_.misses;
  unsigned victim = 0;
  bool found_invalid = false;
  for (unsigned w = 0; w < set.ways.size(); ++w) {
    if (!set.ways[w].valid) {
      victim = w;
      found_invalid = true;
      break;
    }
  }
  if (!found_invalid) {
    victim = set.replacement->choose_victim();
    ++stats_.evictions;
    result.evicted = true;
    // Reconstruct the displaced line's base address from (tag, set).
    result.evicted_line_addr =
        ((set.ways[victim].tag << log2_pow2(config_.num_sets)) | si)
        << line_shift_;
  }
  set.ways[victim] = Line{true, tag};
  set.replacement->on_fill(victim);
  result.hit = false;
  result.latency = config_.miss_latency;

  // Next-line prefetch: pull sequential neighbours in alongside the
  // demand miss (latency hidden behind the memory access).
  for (unsigned i = 1; i <= config_.prefetch_lines; ++i) {
    fill_line(line_base(addr) + static_cast<std::uint64_t>(i) *
                                    config_.line_bytes);
  }
  return result;
}

void Cache::fill_line(std::uint64_t addr) {
  const std::uint64_t si = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Set& set = sets_[si];
  if (find_way(set, tag)) return;  // already resident
  unsigned victim = 0;
  bool found_invalid = false;
  for (unsigned w = 0; w < set.ways.size(); ++w) {
    if (!set.ways[w].valid) {
      victim = w;
      found_invalid = true;
      break;
    }
  }
  if (!found_invalid) {
    victim = set.replacement->choose_victim();
    ++stats_.evictions;
  }
  set.ways[victim] = Line{true, tag};
  set.replacement->on_fill(victim);
  ++stats_.prefetch_fills;
}

bool Cache::contains(std::uint64_t addr) const noexcept {
  const Set& set = sets_[set_index(addr)];
  return find_way(set, tag_of(addr)).has_value();
}

void Cache::flush() {
  for (auto& set : sets_) {
    for (auto& line : set.ways) line.valid = false;
  }
  ++stats_.full_flushes;
}

bool Cache::flush_line(std::uint64_t addr) {
  Set& set = sets_[set_index(addr)];
  ++stats_.line_flushes;
  if (const auto way = find_way(set, tag_of(addr))) {
    set.ways[*way].valid = false;
    return true;
  }
  return false;
}

unsigned Cache::valid_lines() const noexcept {
  unsigned n = 0;
  for (const auto& set : sets_) {
    for (const auto& line : set.ways) n += line.valid;
  }
  return n;
}

}  // namespace grinch::cachesim
