#include "cachesim/kernels/kernels.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

namespace grinch::cachesim::kernels {

namespace {

// ---------------------------------------------------------------------------
// generic: the straight scalar loops.  Every other kernel is pinned
// bit-identical to these (tests/cachesim/kernels_test.cpp).

int find_tag_generic(const std::uint64_t* pairs, unsigned n,
                     std::uint64_t tag) {
  for (unsigned i = 0; i < n; ++i) {
    if (pairs[2 * i] == tag) return static_cast<int>(i);
  }
  return -1;
}

unsigned min_stamp_slot_generic(const std::uint64_t* pairs, unsigned ways) {
  unsigned slot = 0;
  for (unsigned i = 1; i < ways; ++i) {
    if (pairs[2 * i + 1] < pairs[2 * slot + 1]) slot = i;
  }
  return slot;
}

void transpose_64x64_generic(const std::uint64_t* in, std::uint64_t* out) {
  for (unsigned r = 0; r < 64; ++r) {
    std::uint64_t word = 0;
    for (unsigned c = 0; c < 64; ++c) {
      word |= ((in[c] >> r) & 1u) << c;
    }
    out[r] = word;
  }
}

std::uint64_t gather_column_generic(const std::uint64_t* rows, unsigned nrows,
                                    unsigned column) {
  std::uint64_t word = 0;
  for (unsigned r = 0; r < nrows; ++r) {
    word |= ((rows[r] >> column) & 1u) << r;
  }
  return word;
}

// ---------------------------------------------------------------------------
// swar: branchless word-parallel versions, portable to any 64-bit target.

int find_tag_swar(const std::uint64_t* pairs, unsigned n, std::uint64_t tag) {
  // Accumulate a match bitmap instead of branching per slot: live tags
  // are unique, so the bitmap has at most one bit and ctz names the slot.
  std::uint64_t matches = 0;
  unsigned i = 0;
  for (; i + 4 <= n; i += 4) {
    matches |= std::uint64_t{pairs[2 * i] == tag} << i;
    matches |= std::uint64_t{pairs[2 * (i + 1)] == tag} << (i + 1);
    matches |= std::uint64_t{pairs[2 * (i + 2)] == tag} << (i + 2);
    matches |= std::uint64_t{pairs[2 * (i + 3)] == tag} << (i + 3);
  }
  for (; i < n; ++i) matches |= std::uint64_t{pairs[2 * i] == tag} << i;
  return matches ? std::countr_zero(matches) : -1;
}

unsigned min_stamp_slot_swar(const std::uint64_t* pairs, unsigned ways) {
  // Stamps are < 2^32 and ways <= 255, so (stamp << 8) | slot packs a
  // branchless comparison key; the unique minimum stamp makes the packed
  // minimum unique too.
  std::uint64_t best = pairs[1] << 8;
  for (unsigned i = 1; i < ways; ++i) {
    const std::uint64_t key = (pairs[2 * i + 1] << 8) | i;
    best = key < best ? key : best;
  }
  return static_cast<unsigned>(best & 0xFF);
}

void transpose_64x64_swar(const std::uint64_t* in, std::uint64_t* out) {
  // Recursive block swap (the Hacker's Delight transpose, LSB-first):
  // for each delta j, swap the (row j-bit 0, column j-bit 1) sub-block
  // with the (row j-bit 1, column j-bit 0) one.  6 deltas x 32 row pairs
  // x ~5 word ops replaces the 64x64 bit loop.
  std::memcpy(out, in, 64 * sizeof(std::uint64_t));
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((out[k] >> j) ^ out[k | j]) & m;
      out[k | j] ^= t;
      out[k] ^= t << j;
    }
  }
}

std::uint64_t gather_column_swar(const std::uint64_t* rows, unsigned nrows,
                                 unsigned column) {
  // Same bit gather as generic, unrolled so the four independent
  // extract-shift chains pipeline (no SWAR trick applies across words).
  std::uint64_t word = 0;
  unsigned r = 0;
  for (; r + 4 <= nrows; r += 4) {
    word |= ((rows[r] >> column) & 1u) << r;
    word |= ((rows[r + 1] >> column) & 1u) << (r + 1);
    word |= ((rows[r + 2] >> column) & 1u) << (r + 2);
    word |= ((rows[r + 3] >> column) & 1u) << (r + 3);
  }
  for (; r < nrows; ++r) word |= ((rows[r] >> column) & 1u) << r;
  return word;
}

constexpr Ops kGenericOps{find_tag_generic, min_stamp_slot_generic,
                          transpose_64x64_generic, gather_column_generic,
                          Kind::kGeneric, "generic"};

constexpr Ops kSwarOps{find_tag_swar, min_stamp_slot_swar, transpose_64x64_swar,
                       gather_column_swar, Kind::kSwar, "swar"};

bool cpu_has_avx2() noexcept {
#if defined(GRINCH_KERNELS_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

#if defined(GRINCH_KERNELS_AVX2)
// Defined in kernels_avx2.cpp (the only TU compiled with -mavx2).
extern const Ops kAvx2Ops;
#endif

bool available(Kind kind) noexcept {
  switch (kind) {
    case Kind::kGeneric:
    case Kind::kSwar:
      return true;
    case Kind::kAvx2:
      return cpu_has_avx2();
  }
  return false;
}

const Ops& ops(Kind kind) noexcept {
  switch (kind) {
    case Kind::kGeneric:
      return kGenericOps;
    case Kind::kSwar:
      return kSwarOps;
    case Kind::kAvx2:
#if defined(GRINCH_KERNELS_AVX2)
      if (cpu_has_avx2()) return kAvx2Ops;
#endif
      break;
  }
  return kGenericOps;
}

namespace {

std::atomic<const Ops*> g_active{nullptr};

const Ops* resolve_default() noexcept {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, before any threads.
  if (const char* env = std::getenv("GRINCH_KERNEL"); env != nullptr) {
    // An unavailable or unknown name falls through to auto-selection so a
    // forced run can never pick a kernel the binary cannot execute.
    if (std::strcmp(env, "generic") == 0) return &kGenericOps;
    if (std::strcmp(env, "swar") == 0) return &kSwarOps;
    if (std::strcmp(env, "avx2") == 0 && available(Kind::kAvx2)) {
      return &ops(Kind::kAvx2);
    }
  }
  if (available(Kind::kAvx2)) return &ops(Kind::kAvx2);
  return &kSwarOps;
}

}  // namespace

const Ops& active() noexcept {
  const Ops* p = g_active.load(std::memory_order_acquire);
  if (p == nullptr) {
    // Benign first-use race: every racer resolves the same pointer.
    p = resolve_default();
    g_active.store(p, std::memory_order_release);
  }
  return *p;
}

Kind set_active(Kind kind) noexcept {
  const Kind previous = active().kind;
  g_active.store(&ops(kind), std::memory_order_release);
  return previous;
}

}  // namespace grinch::cachesim::kernels
