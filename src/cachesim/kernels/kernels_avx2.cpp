// AVX2 kernel implementations.  This is the only TU compiled with
// -mavx2 (see src/cachesim/CMakeLists.txt); it is linked in only when the
// toolchain targets x86 and accepts the flag, and kernels.cpp selects it
// only when the CPU reports AVX2 at runtime — so the rest of the library
// stays baseline-ISA clean.
#include "cachesim/kernels/kernels.h"

#if defined(GRINCH_KERNELS_AVX2)

#include <immintrin.h>

#include <bit>
#include <cstring>

namespace grinch::cachesim::kernels {

namespace {

// The (tag, stamp) pairs are interleaved, so one 4-pair block spans two
// 256-bit loads: a = [t0 s0 t1 s1], b = [t2 s2 t3 s3].  unpacklo/hi on
// 64-bit lanes works per 128-bit half, which yields the permuted orders
// tags  = [t0 t2 t1 t3] and stamps = [s0 s2 s1 s3]; the slot lookup
// tables below undo the permutation.
constexpr int kSlotOfLane[4] = {0, 2, 1, 3};

int find_tag_avx2(const std::uint64_t* pairs, unsigned n, std::uint64_t tag) {
  const __m256i needle = _mm256_set1_epi64x(static_cast<long long>(tag));
  unsigned i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(pairs + 2 * i));
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(pairs + 2 * i + 4));
    const __m256i tags = _mm256_unpacklo_epi64(a, b);
    const int mask = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(tags, needle)));
    if (mask != 0) {
      // Live tags are unique: at most one lane matches.
      return static_cast<int>(i) +
             kSlotOfLane[std::countr_zero(static_cast<unsigned>(mask))];
    }
  }
  for (; i < n; ++i) {
    if (pairs[2 * i] == tag) return static_cast<int>(i);
  }
  return -1;
}

unsigned min_stamp_slot_avx2(const std::uint64_t* pairs, unsigned ways) {
  // Same packed (stamp << 8) | slot key as the SWAR kernel; keys are
  // < 2^40, so the signed 64-bit vector compare orders them correctly.
  std::uint64_t best = pairs[1] << 8;
  unsigned i = 1;
  if (ways >= 8) {
    __m256i vbest = _mm256_set1_epi64x(static_cast<long long>(best));
    const __m256i lane_slots =
        _mm256_setr_epi64x(kSlotOfLane[0], kSlotOfLane[1], kSlotOfLane[2],
                           kSlotOfLane[3]);
    unsigned v = 0;
    for (; v + 4 <= ways; v += 4) {
      const __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(pairs + 2 * v));
      const __m256i b = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(pairs + 2 * v + 4));
      const __m256i stamps = _mm256_unpackhi_epi64(a, b);
      const __m256i keys = _mm256_or_si256(
          _mm256_slli_epi64(stamps, 8),
          _mm256_add_epi64(lane_slots, _mm256_set1_epi64x(v)));
      vbest = _mm256_blendv_epi8(keys, vbest,
                                 _mm256_cmpgt_epi64(keys, vbest));
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vbest);
    for (const std::uint64_t key : lanes) best = key < best ? key : best;
    i = v;
  }
  for (; i < ways; ++i) {
    const std::uint64_t key = (pairs[2 * i + 1] << 8) | i;
    best = key < best ? key : best;
  }
  return static_cast<unsigned>(best & 0xFF);
}

void transpose_64x64_avx2(const std::uint64_t* in, std::uint64_t* out) {
  // The SWAR block swap with the delta >= 4 passes vectorized: for those
  // deltas the paired rows k and k | j sit 4-aligned, so each swap step
  // processes four row pairs per iteration.  Deltas 2 and 1 pair rows
  // inside one vector register; the scalar loop is cheaper than the
  // cross-lane shuffles they would need.
  std::memcpy(out, in, 64 * sizeof(std::uint64_t));
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  unsigned j = 32;
  for (; j >= 4; j >>= 1, m ^= m << j) {
    const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(m));
    for (unsigned base = 0; base < 64; base += 2 * j) {
      for (unsigned k = base; k < base + j; k += 4) {
        __m256i lo =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + k));
        __m256i hi =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + k + j));
        const __m256i t = _mm256_and_si256(
            _mm256_xor_si256(_mm256_srli_epi64(lo, static_cast<int>(j)), hi),
            vm);
        hi = _mm256_xor_si256(hi, t);
        lo = _mm256_xor_si256(lo, _mm256_slli_epi64(t, static_cast<int>(j)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k), lo);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k + j), hi);
      }
    }
  }
  for (; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((out[k] >> j) ^ out[k | j]) & m;
      out[k | j] ^= t;
      out[k] ^= t << j;
    }
  }
}

std::uint64_t gather_column_avx2(const std::uint64_t* rows, unsigned nrows,
                                 unsigned column) {
  // Shift the wanted column into the sign bit of each row and harvest
  // four verdicts per movemask.
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(63 - column));
  std::uint64_t word = 0;
  unsigned r = 0;
  for (; r + 4 <= nrows; r += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + r));
    const int mask = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_sll_epi64(v, shift)));
    word |= static_cast<std::uint64_t>(static_cast<unsigned>(mask)) << r;
  }
  for (; r < nrows; ++r) word |= ((rows[r] >> column) & 1u) << r;
  return word;
}

}  // namespace

// extern: const objects default to internal linkage, but kernels.cpp
// references this table by name.
extern const Ops kAvx2Ops;
const Ops kAvx2Ops{find_tag_avx2, min_stamp_slot_avx2, transpose_64x64_avx2,
                   gather_column_avx2, Kind::kAvx2, "avx2"};

}  // namespace grinch::cachesim::kernels

#endif  // GRINCH_KERNELS_AVX2
