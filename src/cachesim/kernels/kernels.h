// Runtime-dispatched SIMD kernels for the wide observation hot path.
//
// Three loop shapes dominate the lockstep wide path once the per-lane
// bookkeeping is amortised (docs/TARGETS.md, "Wide path"):
//   * the set probe — a tag match across the up-to-`ways` interleaved
//     (tag, stamp) pairs of one cache set, and the min-stamp LRU victim
//     scan on a full set (cachesim/lockstep.h);
//   * the 64x64 bit-matrix transpose that turns 64 lane-major presence
//     words into the row-major layout of WideObservationBatch;
//   * the presence-word column gather that folds a transposed batch back
//     into one lane's index-major word.
// Each shape is provided in up to three implementations selected at
// runtime: `generic` (the straight scalar loops, the conformance
// reference), `swar` (branchless word-parallel — portable to any 64-bit
// target, including non-x86 builds), and `avx2` (256-bit SIMD, compiled
// into the library only when the toolchain targets x86 and accepts
// -mavx2, and selected only when the CPU reports the feature).
//
// Dispatch contract:
//   * every kernel is bit-identical to `generic` for every input the
//     callers can produce (pinned by tests/cachesim/kernels_test.cpp and
//     the wide conformance suites, which iterate every available kind);
//   * the active kind is resolved once, at first use: the best available
//     implementation for the CPU, overridable with GRINCH_KERNEL=
//     generic|swar|avx2 (an unavailable or unknown name falls back to
//     the default choice, so forced-kernel CI runs cannot select a
//     kernel the binary cannot execute);
//   * tests switch kernels with ScopedKernel; consumers that cache the
//     Ops pointer (LockstepCaches) resolve it at construction, so a
//     scope must wrap the object's construction.
#pragma once

#include <cstdint>

namespace grinch::cachesim::kernels {

enum class Kind : std::uint8_t { kGeneric = 0, kSwar = 1, kAvx2 = 2 };

/// One implementation of the three hot-loop shapes.  All pointers are
/// always non-null; `pairs` arguments point at interleaved (tag, stamp)
/// u64 pairs exactly as LockstepCaches stores them (tag at 2i, stamp at
/// 2i + 1).
struct Ops {
  /// Slot of the pair whose tag equals `tag` among the first `n` pairs,
  /// or -1 when absent.  Tags of live slots are unique (cache sets hold
  /// each line at most once), so "the" match is well defined.
  int (*find_tag)(const std::uint64_t* pairs, unsigned n, std::uint64_t tag);

  /// Slot of the minimum stamp among `ways` (>= 1) pairs.  Stamps are
  /// unique (the lane clock strictly increases) and < 2^32, so the
  /// minimum is unique and implementations may pack (stamp, slot) keys
  /// into one word.
  unsigned (*min_stamp_slot)(const std::uint64_t* pairs, unsigned ways);

  /// 64x64 bit-matrix transpose: out[r] bit c = in[c] bit r (LSB-first).
  /// `in` and `out` are distinct 64-word arrays.
  void (*transpose_64x64)(const std::uint64_t* in, std::uint64_t* out);

  /// Column gather: bit r of the result = (rows[r] >> column) & 1 for
  /// r < nrows (<= 64); higher result bits are zero.
  std::uint64_t (*gather_column)(const std::uint64_t* rows, unsigned nrows,
                                 unsigned column);

  Kind kind = Kind::kGeneric;
  const char* name = "generic";
};

/// The process-wide active implementation (never null).  First call
/// resolves the default: GRINCH_KERNEL override if available, else the
/// best implementation the CPU supports.
[[nodiscard]] const Ops& active() noexcept;

/// True when `kind` was compiled in and the CPU can execute it.
[[nodiscard]] bool available(Kind kind) noexcept;

/// The Ops table for `kind`; pre-condition: available(kind).
[[nodiscard]] const Ops& ops(Kind kind) noexcept;

/// Forces the active implementation (testing); returns the previous
/// kind.  Pre-condition: available(kind).
Kind set_active(Kind kind) noexcept;

/// RAII kernel override for tests: forces `kind` for the scope.  Objects
/// that resolve their Ops at construction (LockstepCaches and everything
/// holding one) must be constructed inside the scope.
class ScopedKernel {
 public:
  explicit ScopedKernel(Kind kind) noexcept : previous_(set_active(kind)) {}
  ~ScopedKernel() { set_active(previous_); }
  ScopedKernel(const ScopedKernel&) = delete;
  ScopedKernel& operator=(const ScopedKernel&) = delete;

 private:
  Kind previous_;
};

}  // namespace grinch::cachesim::kernels
