// Cache geometry and timing configuration.
//
// The GRINCH paper's default platform: a shared L1, 16-way set-associative,
// 1024 lines, with a cache line holding a single 8-bit word (one S-Box
// entry per line).  Table I sweeps the line size over 1/2/4/8 words.
// All of that is expressible here; geometry is validated at construction.
#pragma once

#include <cstdint>
#include <string>

namespace grinch::cachesim {

/// Replacement policy for a cache set.
enum class Replacement : std::uint8_t {
  kLru,     ///< least-recently-used (exact)
  kFifo,    ///< first-in-first-out
  kPlru,    ///< tree pseudo-LRU (requires power-of-two associativity)
  kRandom,  ///< uniform random victim (deterministic, seeded)
};

[[nodiscard]] const char* to_string(Replacement r) noexcept;

struct CacheConfig {
  unsigned line_bytes = 1;       ///< bytes per cache line (power of two)
  unsigned num_sets = 64;        ///< number of sets (power of two)
  unsigned associativity = 16;   ///< ways per set
  Replacement replacement = Replacement::kLru;
  std::uint64_t hit_latency = 1;    ///< cycles for a hit
  std::uint64_t miss_latency = 50;  ///< cycles for a miss (memory fill)
  std::uint64_t flush_latency = 1;  ///< cycles for a line flush
  std::uint64_t seed = 0x5EED;      ///< RNG seed for Replacement::kRandom
  /// Sequential lines pulled in alongside every demand miss (0 = no
  /// prefetcher).  A next-line prefetcher blurs which line was demanded —
  /// an implicit cache-attack countermeasure studied in the ablations.
  unsigned prefetch_lines = 0;

  /// Paper default: 1024 lines, 16-way, 1-word (1-byte) lines.
  [[nodiscard]] static CacheConfig paper_default() noexcept {
    return CacheConfig{};
  }

  /// Same geometry with `words` bytes per line (Table I sweep).
  [[nodiscard]] static CacheConfig with_line_words(unsigned words) noexcept {
    CacheConfig c;
    c.line_bytes = words;
    return c;
  }

  [[nodiscard]] unsigned total_lines() const noexcept {
    return num_sets * associativity;
  }

  /// Throws std::invalid_argument when geometry is unusable.
  void validate() const;

  [[nodiscard]] std::string describe() const;
};

}  // namespace grinch::cachesim
