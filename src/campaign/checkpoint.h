// Atomic campaign checkpoints — the resume half of the campaign contract.
//
// A checkpoint is a single small binary file describing how much of a
// campaign's result stream is durably on disk: the spec's canonical form
// (so a resume against a *different* spec is refused, not silently
// blended), the count of flushed shards/trials, the byte length and
// CRC-32 of the flushed JSONL prefix, and the aggregate counters those
// records contributed.  Because results flush strictly in shard order
// (src/campaign/engine.cpp), "flushed_shards = k" fully determines the
// result file's contents — a resumed campaign truncates the results file
// to the checkpointed prefix, verifies its CRC, and re-runs shards
// [k, total), reproducing the uninterrupted run byte for byte.
//
// Durability: save() writes `<path>.tmp` and std::rename()s it into
// place, so a crash mid-save leaves either the old checkpoint or the new
// one, never a torn file.  load() rejects bad magic, unknown versions,
// truncation and payload CRC mismatches with a diagnostic instead of a
// best-effort guess.  The encoding is host-endian: checkpoints are
// machine-local scratch, not an interchange format.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace grinch::campaign {

/// Aggregate robustness accounting over the flushed trials (sums of the
/// per-trial RecoveryResult counters, plus outcome tallies).
struct Counters {
  std::uint64_t total_encryptions = 0;
  std::uint64_t noise_restarts = 0;
  std::uint64_t dropped_observations = 0;
  std::uint64_t verify_restarts = 0;
  /// Trials whose recovered key matched the victim key exactly.
  std::uint64_t verified = 0;
  /// Trials that exhausted their budget mid-stage (partial results).
  std::uint64_t partial = 0;
  /// Partial trials the residual finisher escalated into a verified
  /// full-key recovery (always <= partial; those trials count under
  /// `verified` too).
  std::uint64_t finished = 0;

  Counters& operator+=(const Counters& o) noexcept {
    total_encryptions += o.total_encryptions;
    noise_restarts += o.noise_restarts;
    dropped_observations += o.dropped_observations;
    verify_restarts += o.verify_restarts;
    verified += o.verified;
    partial += o.partial;
    finished += o.finished;
    return *this;
  }
};

struct Checkpoint {
  static constexpr std::uint32_t kMagic = 0x48435247u;  // "GRCH" (LE)
  // v2 added the probe-kernel name (self-description, like the JSONL
  // records); v3 the Counters::finished tally.  Older checkpoints are
  // refused like any unknown version — they are machine-local scratch,
  // not an archival format.
  static constexpr std::uint32_t kVersion = 3;

  /// CampaignSpec::canonical() of the campaign this checkpoint belongs
  /// to; resume re-parses the spec from here, so a checkpoint is
  /// self-contained.
  std::string spec;
  /// Active probe-kernel name (cachesim/kernels) of the run that wrote
  /// this checkpoint — informational self-description; resume does not
  /// gate on it (any kernel reproduces the same bytes).
  std::string kernel;
  std::uint64_t shard_total = 0;
  std::uint64_t flushed_shards = 0;
  std::uint64_t flushed_trials = 0;
  /// Length and CRC-32 of the flushed JSONL prefix of the results file.
  std::uint64_t result_bytes = 0;
  std::uint32_t result_crc = 0;
  Counters counters;

  /// Atomically replaces `path` (write `<path>.tmp`, rename).  Returns
  /// false and fills `error` (when non-null) on I/O failure.
  [[nodiscard]] bool save(const std::string& path,
                          std::string* error = nullptr) const;

  /// Loads and verifies a checkpoint; nullopt (with a diagnostic) on a
  /// missing/truncated/corrupt file or an unknown version.
  [[nodiscard]] static std::optional<Checkpoint> load(
      const std::string& path, std::string* error = nullptr);
};

}  // namespace grinch::campaign
