#include "campaign/engine.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cachesim/kernels/kernels.h"
#include "campaign/progress.h"
#include "campaign/record.h"
#include "common/crc32.h"
#include "runner/thread_pool.h"
#include "runner/trial_runner.h"
#include "target/registry.h"
#include "target/wide_engine.h"

namespace grinch::campaign {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// One shard's finished output, handed from a worker to the flusher.
/// `done` is the publication point: the worker fills bytes/counters and
/// then stores done with release; the flusher loads it with acquire.
struct ShardSlot {
  std::string bytes;
  Counters counters;
  std::uint64_t trials = 0;
  std::atomic<bool> done{false};
};

Outcome error_outcome(std::string message) {
  Outcome out;
  out.error = std::move(message);
  return out;
}

/// Streams the first `prefix` bytes of `path` through the CRC, leaving
/// the *unfinalized* running state in `state` (the flusher keeps feeding
/// it as new records append).  False on open failure or a short file.
bool crc_of_prefix(const std::string& path, std::uint64_t prefix,
                   std::uint32_t& state) {
  state = Crc32::kInit;
  FilePtr f{std::fopen(path.c_str(), "rb")};
  if (f == nullptr) return prefix == 0;
  char buf[1 << 16];
  std::uint64_t left = prefix;
  while (left > 0) {
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(left, sizeof buf));
    const std::size_t got = std::fread(buf, 1, want, f.get());
    if (got == 0) return false;
    state = Crc32::update(state, buf, got);
    left -= got;
  }
  return true;
}

template <typename Recovery>
Outcome run_campaign_t(const CampaignSpec& spec, const Options& opts) {
  const runner::ShardPlan plan{spec.seed, spec.fault_seed, spec.trials,
                               spec.wide_width};
  const std::size_t total = plan.shard_count();

  // --- resume: verify checkpoint + results prefix before any work ---
  std::size_t start_shard = 0;
  std::uint32_t crc_state = Crc32::kInit;
  std::uint64_t result_bytes = 0;
  std::uint64_t trials_flushed = 0;
  Counters counters;
  if (opts.resume) {
    if (opts.checkpoint_path.empty()) {
      return error_outcome("resume requires a checkpoint path");
    }
    std::string err;
    const std::optional<Checkpoint> ck =
        Checkpoint::load(opts.checkpoint_path, &err);
    if (!ck) return error_outcome(err);
    if (ck->spec != spec.canonical()) {
      return error_outcome(
          "checkpoint belongs to a different campaign (spec mismatch)");
    }
    if (ck->shard_total != total) {
      return error_outcome("checkpoint shard count disagrees with the spec");
    }
    std::error_code ec;
    const std::uintmax_t on_disk =
        std::filesystem::file_size(opts.results_path, ec);
    if (ec || on_disk < ck->result_bytes) {
      return error_outcome(opts.results_path +
                           ": shorter than the checkpointed prefix");
    }
    if (!crc_of_prefix(opts.results_path, ck->result_bytes, crc_state) ||
        Crc32::finalize(crc_state) != ck->result_crc) {
      return error_outcome(opts.results_path +
                           ": flushed prefix does not match the checkpoint");
    }
    // Drop any bytes past the checkpointed prefix (records a kill caught
    // mid-append); the re-run shards rewrite them identically.
    std::filesystem::resize_file(opts.results_path, ck->result_bytes, ec);
    if (ec) {
      return error_outcome("cannot truncate " + opts.results_path);
    }
    start_shard = static_cast<std::size_t>(ck->flushed_shards);
    result_bytes = ck->result_bytes;
    trials_flushed = ck->flushed_trials;
    counters = ck->counters;
  }

  FilePtr results{
      std::fopen(opts.results_path.c_str(), opts.resume ? "ab" : "wb")};
  if (results == nullptr) {
    return error_outcome("cannot open " + opts.results_path + " for writing");
  }

  if (start_shard >= total) {  // resumed a finished campaign
    Outcome out;
    out.completed = true;
    out.shards_done = total;
    out.shard_total = total;
    out.trials_done = trials_flushed;
    out.counters = counters;
    return out;
  }

  // --- shared fixed configuration (identical for every shard) ---
  typename target::DirectProbePlatform<Recovery>::Config pcfg;
  pcfg.cache.line_bytes = spec.line_words;
  pcfg.probing_round = spec.probing_round;
  typename target::KeyRecoveryEngine<Recovery>::Config ecfg;
  ecfg.max_encryptions = spec.budget;
  ecfg.vote_threshold = spec.effective_vote_threshold();
  ecfg.faults = spec.faults();
  ecfg.finish_partials = spec.finish;
  ecfg.finish_max_candidates = spec.finish_budget;
  // finish_pool stays null: the shard worker already runs inside the
  // campaign ThreadPool, which does not nest (the serial finisher path
  // reports byte-identical outcomes anyway).

  std::vector<std::unique_ptr<ShardSlot>> slots(total);
  for (std::size_t i = start_shard; i < total; ++i) {
    slots[i] = std::make_unique<ShardSlot>();
  }

  std::atomic<bool> local_stop{false};
  std::atomic<bool> producers_done{false};
  const auto stop_requested = [&]() {
    return local_stop.load(std::memory_order_relaxed) ||
           (opts.stop != nullptr &&
            opts.stop->load(std::memory_order_relaxed));
  };

  ProgressReporter progress{opts.progress, spec.name, total};
  progress.update(start_shard, trials_flushed, counters);

  // --- flusher thread state (exclusively owned by the flusher until
  // join; the main thread reads it afterwards) ---
  std::size_t next_flush = start_shard;
  std::size_t last_checkpoint = start_shard;
  bool frozen = false;  // stop_after_flushed_shards fired
  std::string flusher_error;

  const auto save_checkpoint = [&]() {
    if (opts.checkpoint_path.empty()) return true;
    std::fflush(results.get());
    Checkpoint ck;
    ck.spec = spec.canonical();
    ck.kernel = cachesim::kernels::active().name;
    ck.shard_total = total;
    ck.flushed_shards = next_flush;
    ck.flushed_trials = trials_flushed;
    ck.result_bytes = result_bytes;
    ck.result_crc = Crc32::finalize(crc_state);
    ck.counters = counters;
    std::string err;
    if (!ck.save(opts.checkpoint_path, &err)) {
      flusher_error = err;
      local_stop.store(true, std::memory_order_relaxed);
      return false;
    }
    last_checkpoint = next_flush;
    return true;
  };

  // Workers nudge the flusher when a shard finishes; the timed wait is
  // only a lost-notify backstop (notify_one races the wait without a
  // lock, which is fine — staleness is bounded by the timeout).
  std::mutex flush_mu;
  std::condition_variable flush_cv;

  std::thread flusher{[&]() {
    for (;;) {
      const bool fin = producers_done.load(std::memory_order_acquire);
      while (!frozen && flusher_error.empty() && next_flush < total &&
             slots[next_flush]->done.load(std::memory_order_acquire)) {
        ShardSlot& slot = *slots[next_flush];
        if (std::fwrite(slot.bytes.data(), 1, slot.bytes.size(),
                        results.get()) != slot.bytes.size()) {
          flusher_error = "short write to " + opts.results_path;
          local_stop.store(true, std::memory_order_relaxed);
          break;
        }
        crc_state = Crc32::update(crc_state, slot.bytes.data(),
                                  slot.bytes.size());
        result_bytes += slot.bytes.size();
        counters += slot.counters;
        trials_flushed += slot.trials;
        slot.bytes.clear();
        slot.bytes.shrink_to_fit();
        ++next_flush;
        progress.update(next_flush, trials_flushed, counters);
        if (opts.checkpoint_path.empty() ? false
                : next_flush - last_checkpoint >=
                      std::max<std::size_t>(opts.checkpoint_every_shards,
                                            1)) {
          if (!save_checkpoint()) break;
        }
        if (opts.stop_after_flushed_shards != 0 &&
            next_flush >= opts.stop_after_flushed_shards) {
          // Deterministic kill point: checkpoint exactly here, stop the
          // campaign, and flush nothing further.
          save_checkpoint();
          local_stop.store(true, std::memory_order_relaxed);
          frozen = true;
          break;
        }
      }
      if (next_flush == total || frozen || !flusher_error.empty() || fin) {
        break;
      }
      std::unique_lock<std::mutex> lk{flush_mu};
      flush_cv.wait_for(lk, std::chrono::milliseconds(5), [&]() {
        return producers_done.load(std::memory_order_acquire) ||
               (next_flush < total &&
                slots[next_flush]->done.load(std::memory_order_acquire));
      });
    }
    if (!frozen && flusher_error.empty()) save_checkpoint();
  }};

  runner::ThreadPool pool{opts.threads};
  pool.parallel_for(total - start_shard, [&](std::size_t task) {
    const std::size_t i = start_shard + task;
    if (stop_requested()) return;  // drain: skip shards not yet started
    const runner::WideShard& shard = plan.shard(i);
    const std::span<const runner::TrialSeed> seeds = plan.seeds(shard);
    const std::span<const std::uint64_t> fault_seeds =
        plan.fault_seeds(shard);
    std::vector<target::WideTrialSpec> trial_specs(shard.width);
    for (unsigned j = 0; j < shard.width; ++j) {
      trial_specs[j] = {Recovery::canonical_key(seeds[j].key), seeds[j].seed,
                        fault_seeds[j]};
    }
    target::WideRecoveryEngine<Recovery> engine{ecfg, pcfg};
    const std::vector<target::RecoveryResult<Recovery>> shard_results =
        engine.run(trial_specs);
    ShardSlot& slot = *slots[i];
    for (unsigned j = 0; j < shard.width; ++j) {
      slot.bytes += trial_record<Recovery>(spec, shard.begin + j,
                                           trial_specs[j].victim_key,
                                           seeds[j].seed, fault_seeds[j],
                                           shard_results[j]);
      count_trial<Recovery>(slot.counters, trial_specs[j].victim_key,
                            shard_results[j]);
    }
    slot.trials = shard.width;
    slot.done.store(true, std::memory_order_release);
    flush_cv.notify_one();
  });
  producers_done.store(true, std::memory_order_release);
  flush_cv.notify_one();
  flusher.join();

  Outcome out;
  out.shard_total = total;
  out.shards_done = next_flush;
  out.trials_done = trials_flushed;
  out.counters = counters;
  out.error = flusher_error;
  if (out.ok()) {
    out.completed = next_flush == total;
    out.interrupted = !out.completed;
  }
  progress.finish(next_flush, trials_flushed, counters, out.interrupted);
  return out;
}

}  // namespace

Outcome run_campaign(const CampaignSpec& spec, const Options& options) {
  std::string err;
  if (!spec.validate(&err)) return error_outcome(err);
  if (options.results_path.empty()) {
    return error_outcome("a results path is required");
  }
  if (spec.cipher == "gift128") {
    return run_campaign_t<target::Gift128Recovery>(spec, options);
  }
  if (spec.cipher == "present80") {
    return run_campaign_t<target::Present80Recovery>(spec, options);
  }
  return run_campaign_t<target::Gift64Recovery>(spec, options);
}

}  // namespace grinch::campaign
