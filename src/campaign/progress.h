// Live campaign progress on stderr.
//
// One updating line — flushed shards, percentage, shards/sec, ETA and the
// aggregate noise-restart counter — throttled to a minimum interval so a
// fast campaign does not spend its wall clock repainting a terminal.
// Writes go to stderr (results stream to files/stdout untouched) and are
// disabled entirely unless Options::progress asked for them, so
// benchmarked throughput and byte-compared outputs never see a progress
// byte.  Rates and ETA use a wall clock, which is why the reporter lives
// outside the deterministic result path: nothing it prints feeds back
// into records or checkpoints.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "campaign/checkpoint.h"

namespace grinch::campaign {

class ProgressReporter {
 public:
  /// `enabled` = false turns every call into a no-op.  `label` prefixes
  /// the line (the campaign name).
  ProgressReporter(bool enabled, std::string label, std::size_t shard_total);

  /// Repaints the line if at least the throttle interval has elapsed
  /// since the previous paint (the final shard always paints).
  void update(std::size_t flushed_shards, std::uint64_t flushed_trials,
              const Counters& counters);

  /// Finishes the line (newline) and prints a one-line summary.
  void finish(std::size_t flushed_shards, std::uint64_t flushed_trials,
              const Counters& counters, bool interrupted);

 private:
  using Clock = std::chrono::steady_clock;

  void paint(std::size_t flushed_shards, std::uint64_t flushed_trials,
             const Counters& counters);

  bool enabled_;
  std::string label_;
  std::size_t shard_total_;
  Clock::time_point start_;
  Clock::time_point last_paint_;
};

}  // namespace grinch::campaign
