#include "campaign/spec.h"

#include <array>
#include <span>

#include "common/crc32.h"
#include "target/recovery_engine.h"

namespace grinch::campaign {

namespace {

constexpr std::array<std::string_view, 3> kCiphers = {"gift64", "gift128",
                                                      "present80"};
constexpr std::array<std::string_view, 3> kProfiles = {"clean", "moderate",
                                                       "saturating"};

bool is_one_of(std::string_view v, std::span<const std::string_view> allowed) {
  for (const std::string_view a : allowed) {
    if (v == a) return true;
  }
  return false;
}

bool set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

bool CampaignSpec::validate(std::string* error) const {
  if (!is_one_of(cipher, kCiphers)) {
    return set_error(error, "unknown cipher '" + cipher +
                                "' (expected gift64, gift128 or present80)");
  }
  if (!is_one_of(fault_profile, kProfiles)) {
    return set_error(error,
                     "unknown fault_profile '" + fault_profile +
                         "' (expected clean, moderate or saturating)");
  }
  if (trials == 0) return set_error(error, "trials must be >= 1");
  if (budget == 0) return set_error(error, "budget must be >= 1");
  if (wide_width == 0 || wide_width > 64) {
    return set_error(error, "wide_width must be in [1, 64]");
  }
  if (line_words == 0 || (line_words & (line_words - 1)) != 0 ||
      line_words > 8) {
    return set_error(error, "line_words must be 1, 2, 4 or 8");
  }
  if (probing_round == 0) return set_error(error, "probing_round must be >= 1");
  if (vote_threshold > 16) {
    return set_error(error, "vote_threshold must be <= 16 (0 = auto)");
  }
  return true;
}

json::Value CampaignSpec::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("name", name);
  doc.set("cipher", cipher);
  doc.set("trials", trials);
  doc.set("seed", seed);
  doc.set("fault_seed", fault_seed);
  doc.set("wide_width", wide_width);
  doc.set("budget", budget);
  doc.set("fault_profile", fault_profile);
  doc.set("vote_threshold", vote_threshold);
  doc.set("finish", finish);
  doc.set("finish_budget", finish_budget);
  doc.set("line_words", line_words);
  doc.set("probing_round", probing_round);
  return doc;
}

std::string CampaignSpec::canonical() const { return to_json().dump_compact(); }

std::uint32_t CampaignSpec::fingerprint() const { return crc32(canonical()); }

std::optional<CampaignSpec> CampaignSpec::from_json(const json::Value& doc,
                                                    std::string* error) {
  if (!doc.is_object()) {
    set_error(error, "spec must be a JSON object");
    return std::nullopt;
  }
  CampaignSpec spec;
  for (const auto& [key, value] : doc.members()) {
    if (key == "name") {
      spec.name = value.as_string(spec.name);
    } else if (key == "cipher") {
      spec.cipher = value.as_string(spec.cipher);
    } else if (key == "trials") {
      spec.trials = value.as_u64(0);
    } else if (key == "seed") {
      spec.seed = value.as_u64(spec.seed);
    } else if (key == "fault_seed") {
      spec.fault_seed = value.as_u64(spec.fault_seed);
    } else if (key == "wide_width") {
      spec.wide_width = static_cast<unsigned>(value.as_u64(0));
    } else if (key == "budget") {
      spec.budget = value.as_u64(0);
    } else if (key == "fault_profile") {
      spec.fault_profile = value.as_string(spec.fault_profile);
    } else if (key == "vote_threshold") {
      spec.vote_threshold = static_cast<unsigned>(value.as_u64(99));
    } else if (key == "finish") {
      spec.finish = value.as_bool(spec.finish);
    } else if (key == "finish_budget") {
      spec.finish_budget = value.as_u64(spec.finish_budget);
    } else if (key == "line_words") {
      spec.line_words = static_cast<unsigned>(value.as_u64(0));
    } else if (key == "probing_round") {
      spec.probing_round = static_cast<unsigned>(value.as_u64(0));
    } else {
      set_error(error, "unknown spec key '" + key + "'");
      return std::nullopt;
    }
  }
  if (!spec.validate(error)) return std::nullopt;
  return spec;
}

std::optional<CampaignSpec> CampaignSpec::parse(std::string_view text,
                                                std::string* error) {
  const std::optional<json::Value> doc = json::parse(text, error);
  if (!doc) return std::nullopt;
  return from_json(*doc, error);
}

target::FaultProfile CampaignSpec::faults() const {
  target::FaultProfile profile = target::FaultProfile::named(fault_profile);
  profile.seed = fault_seed;
  return profile;
}

unsigned CampaignSpec::effective_vote_threshold() const {
  if (vote_threshold != 0) return vote_threshold;
  return faults().any() ? 2 : 1;
}

}  // namespace grinch::campaign
