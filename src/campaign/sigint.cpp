#include "campaign/sigint.h"

namespace grinch::campaign {

namespace {

// One process-wide flag: std::signal handlers cannot carry state, and
// std::atomic<bool> is async-signal-safe when lock-free (it is on every
// platform this repo targets).
std::atomic<bool> g_stop{false};

void handle_stop_signal(int) { g_stop.store(true); }

}  // namespace

SigintHandler::SigintHandler() {
  g_stop.store(false);
  previous_int_ = std::signal(SIGINT, &handle_stop_signal);
  previous_term_ = std::signal(SIGTERM, &handle_stop_signal);
}

SigintHandler::~SigintHandler() {
  std::signal(SIGINT, previous_int_);
  std::signal(SIGTERM, previous_term_);
}

std::atomic<bool>* SigintHandler::stop_flag() noexcept { return &g_stop; }

bool SigintHandler::stopped() const noexcept { return g_stop.load(); }

}  // namespace grinch::campaign
