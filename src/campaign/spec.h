// CampaignSpec — the declarative unit of work of the campaign engine.
//
// A spec names a target cipher, a cache/platform configuration, a channel
// fault profile, a wide width and a seed range; it expands
// *deterministically* into runner::ShardPlan shards (docs/CAMPAIGN.md).
// Everything that can change a trial's bytes lives in the spec; run-side
// knobs that cannot (thread count, checkpoint cadence, output paths) live
// in campaign::Options instead.  That split is what makes the resume
// contract checkable: the checkpoint embeds the spec's canonical form,
// and a resume under any thread count reproduces the interrupted run's
// remaining bytes exactly.
//
// Specs parse from JSON (json::parse; see examples/specs/) or assemble
// from CLI flags; canonical() serializes back to a normalized compact
// document whose CRC-32 is the spec fingerprint stored in checkpoints —
// resuming against a different spec is refused, not silently blended.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/json.h"
#include "target/fault_model.h"

namespace grinch::campaign {

struct CampaignSpec {
  /// Free-form label, echoed into every result record.
  std::string name = "campaign";
  /// Registered target: "gift64", "gift128" or "present80".
  std::string cipher = "gift64";
  /// Seed range: trial t draws its key/seed material at position t of the
  /// streams derived from `seed` / `fault_seed` (runner::ShardPlan).
  std::uint64_t trials = 64;
  std::uint64_t seed = 0xCA3D;
  std::uint64_t fault_seed = 0xFA171;
  /// Lockstep lanes per shard (clamped to [1, 64]); 1 = scalar-equivalent
  /// shards.  Results are byte-identical at ANY width — width only sets
  /// the throughput/latency trade.
  unsigned wide_width = 8;
  /// Per-trial encryption budget (KeyRecoveryEngine::Config::
  /// max_encryptions).
  std::uint64_t budget = 100000;
  /// Channel fault profile name ("clean", "moderate", "saturating").
  std::string fault_profile = "clean";
  /// Elimination vote threshold; 0 = auto (noisy default when the profile
  /// injects faults, hard elimination otherwise).
  unsigned vote_threshold = 0;
  /// Residual-key finisher (KeyRecoveryEngine::Config::finish_partials):
  /// trials that would degrade to a partial escalate into the inline
  /// maximum-likelihood residual search instead.
  bool finish = false;
  /// Finisher candidate budget per trial (finish_max_candidates); only
  /// meaningful with `finish` set.
  std::uint64_t finish_budget = std::uint64_t{1} << 17;
  /// Cache line size in words (Table I axis) and probing round.
  unsigned line_words = 1;
  unsigned probing_round = 1;

  /// Validates field ranges and the cipher name; on failure returns
  /// false and, when non-null, fills `error`.
  [[nodiscard]] bool validate(std::string* error = nullptr) const;

  /// The normalized JSON form (every field, fixed key order).
  [[nodiscard]] json::Value to_json() const;

  /// Compact normalized serialization — the spec's identity string.
  [[nodiscard]] std::string canonical() const;

  /// CRC-32 of canonical(): the fingerprint checkpoints embed.
  [[nodiscard]] std::uint32_t fingerprint() const;

  /// Parses a spec document.  Unknown keys are rejected (a typo must not
  /// silently fall back to a default), missing keys keep their defaults,
  /// and the result is validate()d.
  [[nodiscard]] static std::optional<CampaignSpec> from_json(
      const json::Value& doc, std::string* error = nullptr);
  [[nodiscard]] static std::optional<CampaignSpec> parse(
      std::string_view text, std::string* error = nullptr);

  /// The named fault profile with this spec's base fault seed (per-trial
  /// lane seeds come from the ShardPlan stream, not from here).
  [[nodiscard]] target::FaultProfile faults() const;

  /// vote_threshold, resolving 0 to the documented default for the
  /// profile (noisy_defaults when faulted, 1 otherwise).
  [[nodiscard]] unsigned effective_vote_threshold() const;
};

}  // namespace grinch::campaign
