#include "campaign/progress.h"

#include <cstdio>

namespace grinch::campaign {

namespace {

constexpr std::chrono::milliseconds kThrottle{200};

}  // namespace

ProgressReporter::ProgressReporter(bool enabled, std::string label,
                                   std::size_t shard_total)
    : enabled_(enabled),
      label_(std::move(label)),
      shard_total_(shard_total),
      start_(Clock::now()),
      last_paint_(start_ - kThrottle) {}

void ProgressReporter::update(std::size_t flushed_shards,
                              std::uint64_t flushed_trials,
                              const Counters& counters) {
  if (!enabled_) return;
  const Clock::time_point now = Clock::now();
  if (flushed_shards < shard_total_ && now - last_paint_ < kThrottle) return;
  last_paint_ = now;
  paint(flushed_shards, flushed_trials, counters);
}

void ProgressReporter::paint(std::size_t flushed_shards,
                             std::uint64_t flushed_trials,
                             const Counters& counters) {
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start_).count();
  const double rate =
      elapsed > 0.0 ? static_cast<double>(flushed_shards) / elapsed : 0.0;
  const double pct =
      shard_total_ > 0 ? 100.0 * static_cast<double>(flushed_shards) /
                             static_cast<double>(shard_total_)
                       : 100.0;
  std::string eta = "-";
  if (rate > 0.0 && flushed_shards < shard_total_) {
    const double secs =
        static_cast<double>(shard_total_ - flushed_shards) / rate;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0fs", secs);
    eta = buf;
  }
  std::fprintf(stderr,
               "\r[%s] %zu/%zu shards (%.1f%%)  %llu trials  %.2f shards/s"
               "  ETA %s  noise-restarts %llu   ",
               label_.c_str(), flushed_shards, shard_total_, pct,
               static_cast<unsigned long long>(flushed_trials), rate,
               eta.c_str(),
               static_cast<unsigned long long>(counters.noise_restarts));
  std::fflush(stderr);
}

void ProgressReporter::finish(std::size_t flushed_shards,
                              std::uint64_t flushed_trials,
                              const Counters& counters, bool interrupted) {
  if (!enabled_) return;
  paint(flushed_shards, flushed_trials, counters);
  std::fprintf(stderr, "\n[%s] %s: %llu/%llu trials verified, %llu partial\n",
               label_.c_str(), interrupted ? "interrupted" : "done",
               static_cast<unsigned long long>(counters.verified),
               static_cast<unsigned long long>(flushed_trials),
               static_cast<unsigned long long>(counters.partial));
}

}  // namespace grinch::campaign
