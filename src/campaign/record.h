// JSONL result records — one self-describing line per campaign trial.
//
// Every record repeats the identifying context (cipher, fault profile,
// wide width, victim key, both seeds) so a results file sliced out of a
// larger aggregate still says exactly what produced each line; the
// remaining fields are the trial's RecoveryResult verbatim.  Key order is
// fixed and serialization goes through json::Value::dump_compact(), so
// record bytes are deterministic — which is what lets the resume contract
// be checked with a byte comparison (tests/campaign/).
//
// Partial trials (budget exhausted mid-stage) append the partial-result
// contract fields (failed_stage, surviving_masks, residual_key_bits);
// completed trials omit them rather than emitting sentinels.  Trials the
// residual finisher ran on additionally self-describe its outcome
// (finisher_outcome, candidates tested, winner/frontier ranks, offline
// trials, searched bits) — deterministic fields only, never wall time,
// so record bytes stay reproducible across machines and thread counts.
//
// Serialization is a direct string build, not a json::Value round-trip:
// record writing sits on the campaign workers' critical path (the
// throughput bench charges it against the 5% orchestration budget), and
// every emitted value is escape-free by construction — integers, bools
// and fixed-alphabet strings (cipher/profile names, hex keys) — so the
// bytes are exactly what dump_compact() would produce.  The engine tests
// pin that equivalence by round-tripping every emitted line through the
// strict parser.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "cachesim/kernels/kernels.h"
#include "campaign/checkpoint.h"
#include "campaign/spec.h"
#include "common/key128.h"
#include "runner/trial_runner.h"
#include "target/stage_state.h"

namespace grinch::campaign {

namespace detail {

inline void append_field(std::string& out, const char* key,
                         std::uint64_t v) {
  out += key;
  out += std::to_string(v);
}

inline void append_field(std::string& out, const char* key, bool v) {
  out += key;
  out += v ? "true" : "false";
}

inline void append_field(std::string& out, const char* key,
                         std::string_view v) {
  out += key;
  out += '"';
  out += v;
  out += '"';
}

}  // namespace detail

/// Serializes one trial's outcome as a single JSONL line (with trailing
/// newline).  `victim_key` must already be canonicalised to the cipher's
/// key space; `verified` is recomputed here as an exact match against it.
template <typename Recovery>
std::string trial_record(const CampaignSpec& spec, std::size_t trial,
                         const Key128& victim_key, std::uint64_t seed,
                         std::uint64_t fault_seed,
                         const target::RecoveryResult<Recovery>& r) {
  using detail::append_field;
  const bool verified = r.success && r.recovered_key == victim_key;
  std::string out;
  out.reserve(512);
  append_field(out, "{\"trial\":", static_cast<std::uint64_t>(trial));
  append_field(out, ",\"cipher\":", std::string_view{Recovery::kName});
  append_field(out, ",\"fault_profile\":",
               std::string_view{spec.fault_profile});
  append_field(out, ",\"wide_width\":",
               static_cast<std::uint64_t>(spec.wide_width));
  // Which probe-kernel implementation produced this record (generic /
  // swar / avx2) — constant within a process, so byte-stable across
  // threads and kill/resume on the same machine+env.
  append_field(out, ",\"kernel\":",
               std::string_view{cachesim::kernels::active().name});
  append_field(out, ",\"victim_key\":",
               std::string_view{victim_key.to_hex()});
  append_field(out, ",\"seed\":", seed);
  append_field(out, ",\"fault_seed\":", fault_seed);
  append_field(out, ",\"success\":", r.success);
  append_field(out, ",\"verified\":", verified);
  append_field(out, ",\"recovered_key\":",
               r.success ? std::string_view{r.recovered_key.to_hex()}
                         : std::string_view{});
  append_field(out, ",\"total_encryptions\":", r.total_encryptions);
  append_field(out, ",\"offline_trials\":",
               static_cast<std::uint64_t>(r.offline_trials));
  out += ",\"stage_encryptions\":[";
  bool first = true;
  for (const std::uint64_t e : r.stage_encryptions) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(e);
  }
  out += ']';
  append_field(out, ",\"noise_restarts\":",
               static_cast<std::uint64_t>(r.noise_restarts));
  append_field(out, ",\"dropped_observations\":",
               static_cast<std::uint64_t>(r.dropped_observations));
  append_field(out, ",\"verify_restarts\":",
               static_cast<std::uint64_t>(r.verify_restarts));
  if (r.failed_stage < Recovery::kStages) {
    append_field(out, ",\"failed_stage\":",
                 static_cast<std::uint64_t>(r.failed_stage));
    out += ",\"surviving_masks\":[";
    first = true;
    for (const std::uint16_t m : r.surviving_masks) {
      if (!first) out += ',';
      first = false;
      out += std::to_string(static_cast<unsigned>(m));
    }
    out += ']';
    append_field(out, ",\"residual_key_bits\":",
                 static_cast<std::uint64_t>(r.residual_key_bits));
    if (r.finisher.outcome != finisher::FinisherOutcome::kNotRun) {
      append_field(out, ",\"finisher_outcome\":",
                   std::string_view{
                       finisher::finisher_outcome_name(r.finisher.outcome)});
      append_field(out, ",\"finisher_candidates\":",
                   r.finisher.candidates_tested);
      append_field(out, ",\"finisher_rank\":", r.finisher.rank);
      append_field(out, ",\"finisher_frontier\":", r.finisher.frontier_rank);
      append_field(out, ",\"finisher_offline_trials\":",
                   r.finisher.offline_trials);
      append_field(out, ",\"finisher_search_bits\":",
                   static_cast<std::uint64_t>(r.finisher.search_space_bits));
    }
  }
  out += "}\n";
  return out;
}

/// Folds one trial's outcome into the aggregate counters.
template <typename Recovery>
void count_trial(Counters& counters, const Key128& victim_key,
                 const target::RecoveryResult<Recovery>& r) {
  counters.total_encryptions += r.total_encryptions;
  counters.noise_restarts += r.noise_restarts;
  counters.dropped_observations += r.dropped_observations;
  counters.verify_restarts += r.verify_restarts;
  if (r.success && r.recovered_key == victim_key) ++counters.verified;
  if (r.failed_stage < Recovery::kStages) ++counters.partial;
  if (r.finisher.outcome == finisher::FinisherOutcome::kRecovered &&
      r.success && r.recovered_key == victim_key) {
    ++counters.finished;
  }
}

}  // namespace grinch::campaign
