// The campaign engine: resumable, sharded attack execution.
//
// run_campaign() expands a CampaignSpec through the shared shard expander
// (runner::ShardPlan — every trial's victim key, engine seed and fault
// seed derived up front, position-based), dispatches the shards across
// the runner::ThreadPool, and streams one JSONL record per trial to the
// results file *in shard order* regardless of completion order.  A
// dedicated flusher thread appends the longest contiguous prefix of
// finished shards, maintains a running CRC-32 of the flushed bytes, and
// drops an atomic checkpoint (campaign/checkpoint.h) every
// `checkpoint_every_shards` flushed shards — so at any instant the
// checkpoint + results file on disk form a consistent resumable state,
// even under SIGKILL.
//
// Determinism contract: the results file of a campaign killed at ANY
// point and resumed (any number of times, at any thread count or wide
// width) is byte-identical to the uninterrupted run.  Three properties
// make that hold, each pinned by tests/campaign/:
//  1. trial inputs are position-derived (ShardPlan), so re-running shard
//     k always reproduces its trials' exact RNG material;
//  2. lane results are width-independent (the WideRecoveryEngine
//     conformance contract), so wide_width only shards differently —
//     and wide_width is part of the spec identity anyway;
//  3. flushing is strictly in shard order with the prefix CRC recorded,
//     so "resume from shard k" is exactly "truncate to the checkpointed
//     prefix and continue".
//
// Stop protocol (drain semantics): Options::stop is polled per shard —
// workers skip shards not yet started, finished shards flush, a final
// checkpoint records the prefix, and the outcome reports `interrupted`.
// campaign::SigintHandler raises the same flag from SIGINT/SIGTERM.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

#include "campaign/checkpoint.h"
#include "campaign/spec.h"

namespace grinch::campaign {

/// Run-side knobs.  Nothing here may change result bytes — thread count,
/// checkpoint cadence and paths are all outside the spec identity.
struct Options {
  /// JSONL results stream (required).
  std::string results_path;
  /// Checkpoint file; empty disables checkpointing (and resume).
  std::string checkpoint_path;
  /// ThreadPool size; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Checkpoint cadence, in flushed shards (>= 1).
  std::size_t checkpoint_every_shards = 8;
  /// Live progress line on stderr.
  bool progress = false;
  /// Resume from checkpoint_path instead of starting fresh.  The
  /// checkpoint's spec fingerprint and the results file's flushed-prefix
  /// CRC are both verified before any work runs.
  bool resume = false;
  /// Cooperative stop flag (SigintHandler::stop_flag(), or any atomic a
  /// test flips).  May be null.
  std::atomic<bool>* stop = nullptr;
  /// Test hook: after exactly this many shards have been flushed, raise
  /// the stop flag and flush nothing further — a deterministic
  /// kill-at-shard-boundary for the resume tests.  0 disables.
  std::size_t stop_after_flushed_shards = 0;
};

struct Outcome {
  /// Every shard ran and flushed.
  bool completed = false;
  /// Stopped by the stop flag (or the test hook) with work remaining.
  bool interrupted = false;
  std::size_t shards_done = 0;
  std::size_t shard_total = 0;
  std::uint64_t trials_done = 0;
  Counters counters;
  /// Non-empty on a hard error (bad spec, I/O failure, resume mismatch);
  /// completed/interrupted are both false then.
  std::string error;

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Runs (or resumes) a campaign.  Dispatches on spec.cipher to the
/// registered recovery; the spec is validated first.
[[nodiscard]] Outcome run_campaign(const CampaignSpec& spec,
                                   const Options& options);

}  // namespace grinch::campaign
