// Cooperative SIGINT/SIGTERM handling for campaign runs.
//
// The campaign engine's stop protocol is *drain semantics*: a raised stop
// flag makes workers skip shards they have not yet started, the flusher
// writes every already-finished contiguous shard to disk, and a final
// checkpoint records exactly the flushed prefix — so an interrupted
// campaign resumes with zero lost and zero duplicated trials.  This class
// supplies the flag: it installs async-signal-safe handlers for SIGINT
// and SIGTERM that set a process-wide atomic, and restores the previous
// handlers on destruction.  The engine itself never touches signals; it
// only polls an `std::atomic<bool>*` (campaign::Options::stop), so tests
// drive the same code path by flipping a plain atomic.
//
// A second signal while draining is not intercepted beyond setting the
// (already set) flag — the default disposition is restored only on
// destruction, so a user who really wants out can still SIGKILL; the
// checkpoint protocol tolerates that too (kill-tests in tests/campaign/).
#pragma once

#include <atomic>
#include <csignal>

namespace grinch::campaign {

class SigintHandler {
 public:
  /// Installs the handlers and clears the stop flag.
  SigintHandler();
  /// Restores the previously installed handlers.
  ~SigintHandler();

  SigintHandler(const SigintHandler&) = delete;
  SigintHandler& operator=(const SigintHandler&) = delete;

  /// The flag the handlers raise; hand this to campaign::Options::stop.
  [[nodiscard]] std::atomic<bool>* stop_flag() noexcept;

  /// True once SIGINT or SIGTERM has been delivered.
  [[nodiscard]] bool stopped() const noexcept;

 private:
  void (*previous_int_)(int) = SIG_DFL;
  void (*previous_term_)(int) = SIG_DFL;
};

}  // namespace grinch::campaign
