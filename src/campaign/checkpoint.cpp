#include "campaign/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/crc32.h"

namespace grinch::campaign {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

/// Bounds-checked sequential reader over a byte buffer.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool u32(std::uint32_t& v) { return copy(&v, sizeof v); }
  bool u64(std::uint64_t& v) { return copy(&v, sizeof v); }

  bool bytes(std::string& out, std::size_t n) {
    if (data_.size() - pos_ < n) return false;
    out.assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool copy(void* dst, std::size_t n) {
    if (data_.size() - pos_ < n) return false;
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

bool Checkpoint::save(const std::string& path, std::string* error) const {
  std::string payload;
  payload.reserve(spec.size() + kernel.size() + 96);
  put_u32(payload, static_cast<std::uint32_t>(spec.size()));
  payload.append(spec);
  put_u32(payload, static_cast<std::uint32_t>(kernel.size()));
  payload.append(kernel);
  put_u64(payload, shard_total);
  put_u64(payload, flushed_shards);
  put_u64(payload, flushed_trials);
  put_u64(payload, result_bytes);
  put_u32(payload, result_crc);
  put_u64(payload, counters.total_encryptions);
  put_u64(payload, counters.noise_restarts);
  put_u64(payload, counters.dropped_observations);
  put_u64(payload, counters.verify_restarts);
  put_u64(payload, counters.verified);
  put_u64(payload, counters.partial);
  put_u64(payload, counters.finished);

  std::string blob;
  blob.reserve(payload.size() + 24);
  put_u32(blob, kMagic);
  put_u32(blob, kVersion);
  put_u64(blob, payload.size());
  put_u32(blob, crc32(payload));
  blob.append(payload);

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return fail(error, "cannot open " + tmp + " for writing");
  const bool wrote =
      std::fwrite(blob.data(), 1, blob.size(), f) == blob.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote) {
    std::remove(tmp.c_str());
    return fail(error, "short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail(error, "cannot rename " + tmp + " over " + path);
  }
  return true;
}

std::optional<Checkpoint> Checkpoint::load(const std::string& path,
                                           std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    fail(error, "cannot open checkpoint " + path);
    return std::nullopt;
  }
  std::string blob;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) blob.append(buf, n);
  std::fclose(f);

  Reader header{blob};
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  std::uint32_t payload_crc = 0;
  if (!header.u32(magic) || !header.u32(version) ||
      !header.u64(payload_size) || !header.u32(payload_crc)) {
    fail(error, path + ": truncated checkpoint header");
    return std::nullopt;
  }
  if (magic != kMagic) {
    fail(error, path + ": not a campaign checkpoint (bad magic)");
    return std::nullopt;
  }
  if (version != kVersion) {
    fail(error, path + ": unsupported checkpoint version " +
                    std::to_string(version));
    return std::nullopt;
  }
  if (header.remaining() != payload_size) {
    fail(error, path + ": checkpoint payload truncated");
    return std::nullopt;
  }
  std::string payload;
  if (!header.bytes(payload, static_cast<std::size_t>(payload_size))) {
    fail(error, path + ": checkpoint payload truncated");
    return std::nullopt;
  }
  if (crc32(payload) != payload_crc) {
    fail(error, path + ": checkpoint payload CRC mismatch");
    return std::nullopt;
  }

  Reader r{payload};
  Checkpoint ck;
  std::uint32_t spec_len = 0;
  std::uint32_t kernel_len = 0;
  if (!r.u32(spec_len) || !r.bytes(ck.spec, spec_len) ||
      !r.u32(kernel_len) || !r.bytes(ck.kernel, kernel_len) ||
      !r.u64(ck.shard_total) || !r.u64(ck.flushed_shards) ||
      !r.u64(ck.flushed_trials) || !r.u64(ck.result_bytes) ||
      !r.u32(ck.result_crc) || !r.u64(ck.counters.total_encryptions) ||
      !r.u64(ck.counters.noise_restarts) ||
      !r.u64(ck.counters.dropped_observations) ||
      !r.u64(ck.counters.verify_restarts) || !r.u64(ck.counters.verified) ||
      !r.u64(ck.counters.partial) || !r.u64(ck.counters.finished) ||
      r.remaining() != 0) {
    fail(error, path + ": malformed checkpoint payload");
    return std::nullopt;
  }
  return ck;
}

}  // namespace grinch::campaign
