#include "runner/trial_runner.h"

#include <algorithm>

namespace grinch::runner {

std::vector<WideShard> make_wide_shards(std::size_t trials, unsigned width) {
  const unsigned w = std::clamp(width, 1u, 64u);
  std::vector<WideShard> out;
  out.reserve((trials + w - 1) / w);
  for (std::size_t begin = 0; begin < trials; begin += w) {
    out.push_back(
        {begin, static_cast<unsigned>(std::min<std::size_t>(w, trials - begin))});
  }
  return out;
}

std::vector<TrialSeed> derive_trial_seeds(std::uint64_t seed,
                                          std::size_t trials) {
  std::vector<TrialSeed> out;
  out.reserve(trials);
  Xoshiro256 rng{seed};
  for (std::size_t t = 0; t < trials; ++t) {
    TrialSeed s;
    s.key = rng.key128();
    s.seed = rng.next();
    out.push_back(s);
  }
  return out;
}

std::vector<std::uint64_t> derive_seeds(std::uint64_t seed,
                                        std::size_t count) {
  std::vector<std::uint64_t> out;
  out.reserve(count);
  Xoshiro256 rng{seed};
  for (std::size_t i = 0; i < count; ++i) out.push_back(rng.next());
  return out;
}

void parallel_cells(ThreadPool& pool, const std::vector<std::size_t>& trials,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
  // Flatten (cell, trial) into one index space; prefix sums recover the
  // pair from a flat index.
  std::vector<std::size_t> first(trials.size() + 1, 0);
  for (std::size_t c = 0; c < trials.size(); ++c)
    first[c + 1] = first[c] + trials[c];
  const std::size_t total = first.back();
  pool.parallel_for(total, [&](std::size_t flat) {
    // Binary search for the owning cell (cells can have any trial count).
    std::size_t lo = 0, hi = trials.size();
    while (hi - lo > 1) {
      const std::size_t mid = (lo + hi) / 2;
      (first[mid] <= flat ? lo : hi) = mid;
    }
    fn(lo, flat - first[lo]);
  });
}

}  // namespace grinch::runner
