// Deterministic parallel trial execution on top of ThreadPool.
//
// The determinism contract (docs/RUNNER.md): all per-trial RNG material
// is derived *up front* from the cell's base seed, by drawing from one
// Xoshiro256 stream in trial order — exactly the draws the old serial
// loop made.  The parallel phase then touches no shared RNG: trial t
// consumes seeds_[t] and writes results_[t] only.  Result: the output is
// bit-identical for any thread count, and identical to the pre-runner
// serial harnesses for equal trial counts.
#pragma once

#include <cstdint>
#include <functional>
#include <numeric>
#include <vector>

#include "common/key128.h"
#include "common/rng.h"
#include "runner/thread_pool.h"

namespace grinch::runner {

/// Pre-derived RNG material for one trial: the victim key plus the seed
/// for the attack's own stream.
struct TrialSeed {
  Key128 key{};
  std::uint64_t seed = 0;
};

/// Splits `seed` into `trials` independent (key, seed) pairs — the same
/// `rng.key128()` then `rng.next()` draws, in trial order, that the
/// serial harness loops made, so migrated benches reproduce their old
/// numbers exactly.
[[nodiscard]] std::vector<TrialSeed> derive_trial_seeds(std::uint64_t seed,
                                                        std::size_t trials);

/// Splits `seed` into `count` plain u64 sub-seeds (stream splitting for
/// components that need a seed but no victim key).
[[nodiscard]] std::vector<std::uint64_t> derive_seeds(std::uint64_t seed,
                                                      std::size_t count);

/// Runs independent jobs on a pool and collects results in index order.
class TrialRunner {
 public:
  explicit TrialRunner(ThreadPool& pool) noexcept : pool_(&pool) {}

  [[nodiscard]] ThreadPool& pool() const noexcept { return *pool_; }

  /// map(n, fn) -> {fn(0), ..., fn(n-1)}, evaluated in parallel, returned
  /// in index order.  R must be default-constructible.
  template <typename R>
  std::vector<R> map(std::size_t n,
                     const std::function<R(std::size_t)>& fn) const {
    std::vector<R> results(n);
    pool_->parallel_for(n, [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

 private:
  ThreadPool* pool_;
};

/// One contiguous slice of a trial list, sized for the wide recovery
/// engine: trials [begin, begin + width) run as one lockstep group.
struct WideShard {
  std::size_t begin = 0;
  unsigned width = 0;
};

/// Cuts `trials` into contiguous shards of at most `width` lanes (the
/// last shard may be narrower; width is clamped to [1, 64]).  Shards are
/// independent — dispatch each to a WideRecoveryEngine::run() call,
/// serially or across a pool — and cover the trial list exactly, in
/// order, so sharded results concatenate into the unsharded order.
[[nodiscard]] std::vector<WideShard> make_wide_shards(std::size_t trials,
                                                      unsigned width);

/// Flattens a grid of cells with per-cell trial counts into one task
/// list — `fn(cell, trial)` — so a cheap cell's threads immediately help
/// the expensive cells instead of idling at per-cell barriers.  Tasks are
/// ordered cell-major (all trials of cell 0, then cell 1, ...).
void parallel_cells(ThreadPool& pool, const std::vector<std::size_t>& trials,
                    const std::function<void(std::size_t cell,
                                             std::size_t trial)>& fn);

}  // namespace grinch::runner
