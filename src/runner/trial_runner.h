// Deterministic parallel trial execution on top of ThreadPool.
//
// The determinism contract (docs/RUNNER.md): all per-trial RNG material
// is derived *up front* from the cell's base seed, by drawing from one
// Xoshiro256 stream in trial order — exactly the draws the old serial
// loop made.  The parallel phase then touches no shared RNG: trial t
// consumes seeds_[t] and writes results_[t] only.  Result: the output is
// bit-identical for any thread count, and identical to the pre-runner
// serial harnesses for equal trial counts.
#pragma once

#include <cstdint>
#include <functional>
#include <numeric>
#include <span>
#include <vector>

#include "common/key128.h"
#include "common/rng.h"
#include "runner/thread_pool.h"

namespace grinch::runner {

/// Pre-derived RNG material for one trial: the victim key plus the seed
/// for the attack's own stream.
struct TrialSeed {
  Key128 key{};
  std::uint64_t seed = 0;
};

/// Splits `seed` into `trials` independent (key, seed) pairs — the same
/// `rng.key128()` then `rng.next()` draws, in trial order, that the
/// serial harness loops made, so migrated benches reproduce their old
/// numbers exactly.
[[nodiscard]] std::vector<TrialSeed> derive_trial_seeds(std::uint64_t seed,
                                                        std::size_t trials);

/// Splits `seed` into `count` plain u64 sub-seeds (stream splitting for
/// components that need a seed but no victim key).
[[nodiscard]] std::vector<std::uint64_t> derive_seeds(std::uint64_t seed,
                                                      std::size_t count);

/// Runs independent jobs on a pool and collects results in index order.
class TrialRunner {
 public:
  explicit TrialRunner(ThreadPool& pool) noexcept : pool_(&pool) {}

  [[nodiscard]] ThreadPool& pool() const noexcept { return *pool_; }

  /// map(n, fn) -> {fn(0), ..., fn(n-1)}, evaluated in parallel, returned
  /// in index order.  R must be default-constructible.
  template <typename R>
  std::vector<R> map(std::size_t n,
                     const std::function<R(std::size_t)>& fn) const {
    std::vector<R> results(n);
    pool_->parallel_for(n, [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

 private:
  ThreadPool* pool_;
};

/// One contiguous slice of a trial list, sized for the wide recovery
/// engine: trials [begin, begin + width) run as one lockstep group.
struct WideShard {
  std::size_t begin = 0;
  unsigned width = 0;
};

/// Cuts `trials` into contiguous shards of at most `width` lanes (the
/// last shard may be narrower; width is clamped to [1, 64]).  Shards are
/// independent — dispatch each to a WideRecoveryEngine::run() call,
/// serially or across a pool — and cover the trial list exactly, in
/// order, so sharded results concatenate into the unsharded order.
[[nodiscard]] std::vector<WideShard> make_wide_shards(std::size_t trials,
                                                      unsigned width);

/// A deterministically expanded trial grid: every trial's RNG material
/// (victim key, engine seed, fault-stream seed) pre-derived in trial
/// order, cut into contiguous wide shards.  This is the one shard
/// expander shared by the campaign engine (src/campaign/), the extension/
/// robustness benches and the CLI front-ends — because the derivation is
/// position-based (trial t always draws the same material for a given
/// base seed), shard width, thread count and interruption/resume cannot
/// change any trial's inputs, which is what makes sharded, checkpointed
/// campaigns byte-identical to one uninterrupted serial run.
class ShardPlan {
 public:
  /// Derives `trials` (key, seed) pairs from `seed` (exactly
  /// derive_trial_seeds) plus an independent per-trial fault-seed stream
  /// from `fault_seed` (exactly derive_seeds), sharded at `width` lanes
  /// (clamped to [1, 64]).
  ShardPlan(std::uint64_t seed, std::uint64_t fault_seed, std::size_t trials,
            unsigned width)
      : seeds_(derive_trial_seeds(seed, trials)),
        fault_seeds_(derive_seeds(fault_seed, trials)),
        shards_(make_wide_shards(trials, width)) {}

  [[nodiscard]] std::size_t trials() const noexcept { return seeds_.size(); }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const std::vector<WideShard>& shards() const noexcept {
    return shards_;
  }
  [[nodiscard]] const WideShard& shard(std::size_t i) const {
    return shards_.at(i);
  }

  /// All trials' pre-derived material, in trial order.
  [[nodiscard]] const std::vector<TrialSeed>& seeds() const noexcept {
    return seeds_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& fault_seeds()
      const noexcept {
    return fault_seeds_;
  }

  /// One shard's slice of the trial material.
  [[nodiscard]] std::span<const TrialSeed> seeds(
      const WideShard& s) const noexcept {
    return std::span<const TrialSeed>(seeds_).subspan(s.begin, s.width);
  }
  [[nodiscard]] std::span<const std::uint64_t> fault_seeds(
      const WideShard& s) const noexcept {
    return std::span<const std::uint64_t>(fault_seeds_)
        .subspan(s.begin, s.width);
  }

 private:
  std::vector<TrialSeed> seeds_;
  std::vector<std::uint64_t> fault_seeds_;
  std::vector<WideShard> shards_;
};

/// Maps every trial of a plan across the pool: out[t] = fn(t, seeds()[t],
/// fault_seeds()[t]), returned in trial order.  The scalar-trial
/// counterpart of dispatching a plan shard-by-shard — benches that run
/// independent recoveries (bench_util::recovery_trials, the robustness
/// sweep) and the campaign engine all expand through the same ShardPlan,
/// so their per-trial RNG material agrees by construction.
template <typename R, typename Fn>
std::vector<R> map_trials(ThreadPool& pool, const ShardPlan& plan, Fn&& fn) {
  std::vector<R> out(plan.trials());
  pool.parallel_for(plan.trials(), [&](std::size_t t) {
    out[t] = fn(t, plan.seeds()[t], plan.fault_seeds()[t]);
  });
  return out;
}

/// Flattens a grid of cells with per-cell trial counts into one task
/// list — `fn(cell, trial)` — so a cheap cell's threads immediately help
/// the expensive cells instead of idling at per-cell barriers.  Tasks are
/// ordered cell-major (all trials of cell 0, then cell 1, ...).
void parallel_cells(ThreadPool& pool, const std::vector<std::size_t>& trials,
                    const std::function<void(std::size_t cell,
                                             std::size_t trial)>& fn);

}  // namespace grinch::runner
