// Work-stealing thread pool for sharding independent experiment trials.
//
// Design constraints (docs/RUNNER.md):
//  * Deterministic results — the pool never touches RNG state; callers
//    pre-derive all per-task seeds (runner::derive_trial_seeds) and every
//    task writes only its own output slot, so the result of a batch is
//    bit-identical for any thread count, including 1.
//  * Load balancing — a cell at probing round 8 costs ~10^4x one at
//    round 1, so tasks are distributed round-robin into per-worker deques
//    and idle workers steal from the back of their neighbours' deques.
//  * Exceptions — a throwing task does not abort the batch; the batch
//    runs to completion and parallel_for rethrows the exception of the
//    lowest task index (deterministic choice when several throw).
//
// The calling thread participates as a worker, so a pool constructed
// with N threads applies N-way parallelism using N-1 spawned workers.
// With thread_count() == 1 no threads are spawned and parallel_for runs
// inline — `--threads 1` is exactly the old serial loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace grinch::runner {

class ThreadPool {
 public:
  /// `threads` = total parallelism (spawns threads-1 workers);
  /// 0 = hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept { return threads_; }

  /// std::thread::hardware_concurrency(), never 0.
  [[nodiscard]] static unsigned default_thread_count() noexcept;

  /// Runs fn(0) .. fn(n-1), in parallel across the pool, and blocks until
  /// all of them finished.  Tasks may finish in any order; determinism is
  /// the caller's job (write to disjoint output slots).  Rethrows the
  /// lowest-index task exception after the batch completes.  Must not be
  /// called from inside a task (no nesting); concurrent calls from
  /// different external threads serialize.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::size_t> tasks;  ///< task indices of the current batch
  };

  /// Pops a task index for participant `self`, stealing when its own
  /// queue is empty.  Returns false when no work is left anywhere.
  bool pop_task(unsigned self, std::size_t& out);

  /// Runs tasks until the current batch is drained.
  void drain(unsigned self);

  void worker_main(unsigned index);

  void record_exception(std::size_t index);

  unsigned threads_;                   ///< total parallelism incl. caller
  std::vector<WorkerQueue> queues_;    ///< one per participant
  std::vector<std::thread> workers_;   ///< threads_ - 1 spawned workers

  // Batch state (guarded by batch_mutex_ where noted).
  std::mutex batch_mutex_;
  std::condition_variable batch_start_;
  std::condition_variable batch_done_;
  const std::function<void(std::size_t)>* batch_fn_ = nullptr;
  std::size_t batch_pending_ = 0;   ///< tasks not yet finished
  std::uint64_t batch_id_ = 0;      ///< bumped per batch to wake workers
  bool stopping_ = false;

  // First-by-index exception of the current batch.
  std::mutex error_mutex_;
  std::exception_ptr error_;
  std::size_t error_index_ = 0;

  std::mutex submit_mutex_;  ///< serializes external parallel_for calls
};

}  // namespace grinch::runner
