#include "runner/thread_pool.h"

#include <algorithm>

namespace grinch::runner {

unsigned ThreadPool::default_thread_count() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads == 0 ? default_thread_count() : threads),
      queues_(threads_) {
  workers_.reserve(threads_ - 1);
  // Participant 0 is the calling thread; spawned workers are 1..threads-1.
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(batch_mutex_);
    stopping_ = true;
  }
  batch_start_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::pop_task(unsigned self, std::size_t& out) {
  {
    WorkerQueue& own = queues_[self];
    std::lock_guard<std::mutex> lk(own.mutex);
    if (!own.tasks.empty()) {
      out = own.tasks.front();
      own.tasks.pop_front();
      return true;
    }
  }
  // Own deque empty: steal from the back of the others, nearest first.
  for (unsigned step = 1; step < threads_; ++step) {
    WorkerQueue& other = queues_[(self + step) % threads_];
    std::lock_guard<std::mutex> lk(other.mutex);
    if (!other.tasks.empty()) {
      out = other.tasks.back();
      other.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::record_exception(std::size_t index) {
  std::lock_guard<std::mutex> lk(error_mutex_);
  if (!error_ || index < error_index_) {
    error_ = std::current_exception();
    error_index_ = index;
  }
}

void ThreadPool::drain(unsigned self) {
  std::size_t index = 0;
  while (pop_task(self, index)) {
    // batch_fn_ was published before the task was enqueued; popping the
    // task (same queue mutex) synchronizes with that publication, and
    // the pointer stays valid while any task is unfinished.
    const std::function<void(std::size_t)>* fn = batch_fn_;
    try {
      (*fn)(index);
    } catch (...) {
      record_exception(index);
    }
    std::lock_guard<std::mutex> lk(batch_mutex_);
    if (--batch_pending_ == 0) batch_done_.notify_all();
  }
}

void ThreadPool::worker_main(unsigned index) {
  std::uint64_t seen_batch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(batch_mutex_);
      batch_start_.wait(lk, [&] {
        return stopping_ || (batch_id_ != seen_batch && batch_fn_ != nullptr);
      });
      if (stopping_) return;
      seen_batch = batch_id_;
    }
    drain(index);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ <= 1 || n == 1) {
    // Inline execution with the same run-to-completion + lowest-index
    // exception semantics as the parallel path.
    std::exception_ptr error;
    std::size_t error_index = 0;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error || i < error_index) {
          error = std::current_exception();
          error_index = i;
        }
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  std::lock_guard<std::mutex> submit(submit_mutex_);
  {
    std::lock_guard<std::mutex> lk(error_mutex_);
    error_ = nullptr;
    error_index_ = 0;
  }
  // Round-robin distribution; idle participants steal the imbalance back.
  for (std::size_t i = 0; i < n; ++i) {
    WorkerQueue& q = queues_[i % threads_];
    std::lock_guard<std::mutex> lk(q.mutex);
    q.tasks.push_back(i);
  }
  {
    std::lock_guard<std::mutex> lk(batch_mutex_);
    batch_fn_ = &fn;
    batch_pending_ = n;
    ++batch_id_;
  }
  batch_start_.notify_all();

  drain(0);  // the calling thread works too

  {
    std::unique_lock<std::mutex> lk(batch_mutex_);
    batch_done_.wait(lk, [&] { return batch_pending_ == 0; });
    batch_fn_ = nullptr;
  }
  std::lock_guard<std::mutex> lk(error_mutex_);
  if (error_) std::rethrow_exception(error_);
}

}  // namespace grinch::runner
