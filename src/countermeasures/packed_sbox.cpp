#include "countermeasures/packed_sbox.h"

#include <set>

namespace grinch::cm {

gift::TableLayout packed_sbox_layout() {
  gift::TableLayout layout;
  layout.sbox_entries_per_row = 2;  // 8 rows of 8 bits
  layout.sbox_row_bytes = 1;
  return layout;
}

cachesim::CacheConfig packed_sbox_cache() {
  cachesim::CacheConfig cache = cachesim::CacheConfig::paper_default();
  cache.line_bytes = 8;  // the whole reshaped table in one line
  return cache;
}

unsigned sbox_lines_occupied(const gift::TableLayout& layout,
                             unsigned line_bytes) {
  std::set<std::uint64_t> lines;
  for (unsigned index = 0; index < 16; ++index) {
    lines.insert(layout.sbox_row_addr(index) &
                 ~std::uint64_t{line_bytes - 1});
  }
  return static_cast<unsigned>(lines.size());
}

}  // namespace grinch::cm
