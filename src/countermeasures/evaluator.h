// Side-by-side countermeasure evaluation harness.
//
// Runs the GRINCH attack against the unprotected baseline, the packed
// S-Box (countermeasure 1), and the hardened key schedule
// (countermeasure 2) under identical budgets, reporting whether the key
// was retrieved and at what cost — the evidence behind §IV-C.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/grinch.h"
#include "common/key128.h"

namespace grinch::cm {

enum class Protection : std::uint8_t {
  kNone,              ///< unprotected baseline
  kPackedSBox,        ///< countermeasure 1 (§IV-C)
  kHardenedSchedule,  ///< countermeasure 2 (§IV-C)
  kBoth,              ///< layered defence
  kConstantTime,      ///< bitsliced implementation — no table accesses at all
};

[[nodiscard]] const char* to_string(Protection p) noexcept;

struct EvaluationResult {
  Protection protection = Protection::kNone;
  bool attack_succeeded = false;    ///< all stages resolved
  bool key_retrieved = false;       ///< recovered key == victim key
  std::uint64_t encryptions = 0;
  std::string note;
};

/// Runs one attack against a DirectProbePlatform configured for
/// `protection`.  `budget` bounds the attacker's encryptions.
[[nodiscard]] EvaluationResult evaluate_protection(
    Protection protection, const Key128& victim_key, std::uint64_t budget,
    std::uint64_t seed);

/// Evaluates every Protection value with the same key/budget.
[[nodiscard]] std::vector<EvaluationResult> evaluate_all(
    const Key128& victim_key, std::uint64_t budget, std::uint64_t seed);

}  // namespace grinch::cm
