#include "countermeasures/hardened_schedule.h"

#include "common/bits.h"
#include "gift/gift64.h"
#include "gift/sbox.h"

namespace grinch::cm {

std::uint32_t whitening_digest(const Key128& state) {
  // Mix the unused words k7..k4 non-linearly: nibble-wise GIFT S-Box over
  // (k7||k6) XOR rot(k5||k4), then a final rotation to spread nibbles.
  const std::uint32_t hi =
      (static_cast<std::uint32_t>(state.word16(7)) << 16) | state.word16(6);
  const std::uint32_t lo =
      (static_cast<std::uint32_t>(state.word16(5)) << 16) | state.word16(4);
  std::uint32_t x = hi ^ rotr(lo, 7, 32);
  std::uint32_t y = 0;
  for (unsigned i = 0; i < 8; ++i) {
    y |= static_cast<std::uint32_t>(
             gift::gift_sbox().apply((x >> (4 * i)) & 0xF))
         << (4 * i);
  }
  return rotr(y, 13, 32);
}

std::vector<gift::RoundKey64> hardened_round_keys(const Key128& key,
                                                  unsigned rounds) {
  std::vector<gift::RoundKey64> rks;
  rks.reserve(rounds);
  Key128 k = key;
  for (unsigned r = 0; r < rounds; ++r) {
    gift::RoundKey64 rk = gift::extract_round_key64(k);
    const std::uint32_t w = whitening_digest(k);
    rk.u ^= static_cast<std::uint16_t>(w >> 16);
    rk.v ^= static_cast<std::uint16_t>(w & 0xFFFF);
    rks.push_back(rk);
    k = gift::update_key_state(k);
  }
  return rks;
}

gift::TableGift64::RoundKeyProvider hardened_provider() {
  return [](const Key128& key, unsigned rounds) {
    return hardened_round_keys(key, rounds);
  };
}

std::uint64_t HardenedGift64::encrypt(std::uint64_t plaintext,
                                      const Key128& key) {
  const auto rks = hardened_round_keys(key, gift::Gift64::kRounds);
  std::uint64_t state = plaintext;
  for (unsigned r = 0; r < gift::Gift64::kRounds; ++r) {
    state = gift::Gift64::round_function(state, rks[r], r);
  }
  return state;
}

std::uint64_t HardenedGift64::decrypt(std::uint64_t ciphertext,
                                      const Key128& key) {
  const auto rks = hardened_round_keys(key, gift::Gift64::kRounds);
  std::uint64_t state = ciphertext;
  for (unsigned r = gift::Gift64::kRounds; r-- > 0;) {
    state = gift::Gift64::inverse_round_function(state, rks[r], r);
  }
  return state;
}

}  // namespace grinch::cm
