#include "countermeasures/evaluator.h"

#include "countermeasures/hardened_schedule.h"
#include "countermeasures/packed_sbox.h"
#include "gift/bitslice.h"
#include "soc/platform.h"

namespace grinch::cm {
namespace {

/// Platform whose victim is the constant-time bitsliced implementation:
/// it issues NO table accesses, so every probe finds every monitored
/// line absent — the attack starves.
class ConstantTimePlatform final : public soc::ObservationSource {
 public:
  explicit ConstantTimePlatform(const Key128& victim_key)
      : key_(victim_key) {}

  soc::Observation observe(std::uint64_t plaintext, unsigned stage) override {
    (void)stage;
    soc::Observation o;
    o.present.assign(16, false);  // nothing to observe, ever
    o.probed_after_round = 28;
    last_ciphertext_ = cipher_.encrypt(plaintext, key_);
    return o;
  }
  [[nodiscard]] const gift::TableLayout& layout() const override {
    return layout_;
  }
  [[nodiscard]] std::vector<unsigned> index_line_ids() const override {
    return line_ids_;
  }
  [[nodiscard]] std::uint64_t last_ciphertext() const override {
    return last_ciphertext_;
  }

 private:
  Key128 key_;
  gift::TableLayout layout_;
  gift::BitslicedGift64 cipher_;
  std::vector<unsigned> line_ids_ = soc::compute_index_line_ids(layout_, 1);
  std::uint64_t last_ciphertext_ = 0;
};

}  // namespace

const char* to_string(Protection p) noexcept {
  switch (p) {
    case Protection::kNone: return "none (baseline)";
    case Protection::kPackedSBox: return "packed 8x8 S-Box";
    case Protection::kHardenedSchedule: return "hardened UpdateKey";
    case Protection::kBoth: return "packed S-Box + hardened UpdateKey";
    case Protection::kConstantTime: return "constant-time bitsliced";
  }
  return "?";
}

EvaluationResult evaluate_protection(Protection protection,
                                     const Key128& victim_key,
                                     std::uint64_t budget,
                                     std::uint64_t seed) {
  soc::DirectProbePlatform::Config cfg;
  cfg.probing_round = 1;
  cfg.use_flush = true;

  switch (protection) {
    case Protection::kNone:
    case Protection::kConstantTime:
      break;
    case Protection::kPackedSBox:
      cfg.layout = packed_sbox_layout();
      cfg.cache = packed_sbox_cache();
      break;
    case Protection::kHardenedSchedule:
      cfg.round_key_provider = hardened_provider();
      break;
    case Protection::kBoth:
      cfg.layout = packed_sbox_layout();
      cfg.cache = packed_sbox_cache();
      cfg.round_key_provider = hardened_provider();
      break;
  }

  soc::DirectProbePlatform table_platform{cfg, victim_key};
  ConstantTimePlatform ct_platform{victim_key};
  soc::ObservationSource& platform =
      protection == Protection::kConstantTime
          ? static_cast<soc::ObservationSource&>(ct_platform)
          : table_platform;
  attack::GrinchConfig acfg;
  acfg.seed = seed;
  acfg.max_encryptions = budget;
  attack::GrinchAttack attack{platform, acfg};
  const attack::AttackResult r = attack.run();

  EvaluationResult out;
  out.protection = protection;
  out.encryptions = r.total_encryptions;
  // "Attack succeeded" = the elimination pipeline converged on all four
  // effective sub-keys; "key retrieved" = the paper's actual security
  // claim (the master key fell).
  out.attack_succeeded = r.round_keys.size() == 4;
  out.key_retrieved = r.success && r.recovered_key == victim_key;

  if (!out.attack_succeeded) {
    out.note = "candidate elimination never converged (no leakage)";
  } else if (!out.key_retrieved) {
    out.note = "sub-key bits leaked but master-key inversion failed";
  } else {
    out.note = "full key retrieved";
  }
  return out;
}

std::vector<EvaluationResult> evaluate_all(const Key128& victim_key,
                                           std::uint64_t budget,
                                           std::uint64_t seed) {
  std::vector<EvaluationResult> out;
  for (Protection p :
       {Protection::kNone, Protection::kPackedSBox,
        Protection::kHardenedSchedule, Protection::kBoth,
        Protection::kConstantTime}) {
    out.push_back(evaluate_protection(p, victim_key, budget, seed));
  }
  return out;
}

}  // namespace grinch::cm
