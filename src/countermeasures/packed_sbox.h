// Countermeasure 1 (§IV-C): eliminate the look-up-table vulnerability.
//
// "For the S-Box, the proposed method is to set the cache line to 8 bytes
// and reshape the S-Box from 16 rows of 4 bits to 8 rows of 8 bits."
// Two S-Box entries share each row, and with an 8-byte line the whole
// table lives in one cache line — every encryption touches exactly that
// line, so the access pattern carries zero information.  "As an overhead,
// you have to select the right 4 bits at the output."
#pragma once

#include "cachesim/config.h"
#include "gift/table_gift.h"

namespace grinch::cm {

/// Table layout of the reshaped S-Box: 8 rows x 8 bits.
[[nodiscard]] gift::TableLayout packed_sbox_layout();

/// The cache configuration the countermeasure prescribes (8-byte lines).
[[nodiscard]] cachesim::CacheConfig packed_sbox_cache();

/// Number of distinct cache lines the reshaped S-Box occupies under a
/// given line size; the countermeasure is effective exactly when this is
/// 1 (every index maps to the same observable line).
[[nodiscard]] unsigned sbox_lines_occupied(const gift::TableLayout& layout,
                                           unsigned line_bytes);

/// Cycles of overhead per S-Box lookup for the 4-bit output selection
/// (shift + mask on the packed row).
inline constexpr std::uint64_t kPackedLookupOverheadCycles = 2;

}  // namespace grinch::cm
