// Countermeasure 2 (§IV-C): modify the UpdateKey operation.
//
// "Currently, the first four rounds use directly the bits of the key,
// which makes the GRINCH attack possible.  If the UpdateKey of the first
// round prepares the sub-key to be used in the next round by applying
// some computation with bits that were not used yet, the key retrieval
// would not be possible."
//
// Concrete instantiation: before extraction, each round key is whitened
// with a *non-linear* digest of the key-state half that AddRoundKey does
// not consume this round (words k4..k7, pushed through the GIFT S-Box and
// rotations).  GRINCH still recovers the 32 *effective* sub-key bits per
// round — the cache leak is unchanged — but inverting them back to master
// key bits now requires solving a non-linear system over bits the
// attacker never observes directly, defeating Step 4's reverse
// engineering.  Encryption/decryption remain a consistent keyed
// permutation (the whitening depends only on the master key).
#pragma once

#include <cstdint>
#include <vector>

#include "common/key128.h"
#include "gift/key_schedule.h"
#include "gift/table_gift.h"

namespace grinch::cm {

/// Non-linear 32-bit digest of the unused key-state half (k7..k4).
[[nodiscard]] std::uint32_t whitening_digest(const Key128& state);

/// Round keys of the hardened schedule: standard extraction XORed with
/// the whitening digest of the same round's unused half.
[[nodiscard]] std::vector<gift::RoundKey64> hardened_round_keys(
    const Key128& key, unsigned rounds);

/// RoundKeyProvider adaptor for TableGift64 / the platforms.
[[nodiscard]] gift::TableGift64::RoundKeyProvider hardened_provider();

/// GIFT-64 with the hardened schedule (functional reference).
class HardenedGift64 {
 public:
  [[nodiscard]] static std::uint64_t encrypt(std::uint64_t plaintext,
                                             const Key128& key);
  [[nodiscard]] static std::uint64_t decrypt(std::uint64_t ciphertext,
                                             const Key128& key);
};

}  // namespace grinch::cm
