// Deterministic XY routing for the mesh NoC.
//
// XY routing first travels along the X dimension until the destination
// column, then along Y — deadlock-free on a mesh and the algorithm named
// by the GRINCH paper's platform description.
#pragma once

#include <vector>

#include "noc/topology.h"

namespace grinch::noc {

class XyRouter {
 public:
  explicit XyRouter(const MeshTopology& topology) : topology_(&topology) {}

  /// Full route including both endpoints; length = hop_distance + 1.
  [[nodiscard]] std::vector<NodeId> route(NodeId src, NodeId dst) const;

  /// Next hop from `current` toward `dst` (current != dst).
  [[nodiscard]] NodeId next_hop(NodeId current, NodeId dst) const;

 private:
  const MeshTopology* topology_;
};

}  // namespace grinch::noc
