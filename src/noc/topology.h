// 2-D mesh Network-on-Chip topology.
//
// The GRINCH MPSoC platform is "a tile-based structure comprising seven
// processors, a shared cache L1 and I/O peripherals ... interconnected
// through a mesh-based NoC that uses XY deterministic routing".  We model
// the mesh as width x height tiles; tile ids are row-major.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace grinch::noc {

/// Tile coordinate in the mesh.
struct Coord {
  unsigned x = 0;
  unsigned y = 0;

  friend constexpr bool operator==(const Coord&, const Coord&) = default;
};

using NodeId = unsigned;

class MeshTopology {
 public:
  /// Throws std::invalid_argument for degenerate (0-sized) meshes.
  MeshTopology(unsigned width, unsigned height);

  [[nodiscard]] unsigned width() const noexcept { return width_; }
  [[nodiscard]] unsigned height() const noexcept { return height_; }
  [[nodiscard]] unsigned node_count() const noexcept {
    return width_ * height_;
  }

  [[nodiscard]] Coord coord_of(NodeId id) const;
  [[nodiscard]] NodeId id_of(Coord c) const;
  [[nodiscard]] bool valid(NodeId id) const noexcept {
    return id < node_count();
  }

  /// Manhattan distance between two tiles (the XY-route hop count).
  [[nodiscard]] unsigned hop_distance(NodeId a, NodeId b) const;

  /// Ids of the (2..4) mesh neighbours of `id`.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId id) const;

  [[nodiscard]] std::string describe() const;

 private:
  unsigned width_;
  unsigned height_;
};

}  // namespace grinch::noc
