#include "noc/topology.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace grinch::noc {

MeshTopology::MeshTopology(unsigned width, unsigned height)
    : width_(width), height_(height) {
  if (width == 0 || height == 0)
    throw std::invalid_argument("mesh dimensions must be non-zero");
}

Coord MeshTopology::coord_of(NodeId id) const {
  if (!valid(id)) throw std::out_of_range("node id out of range");
  return Coord{id % width_, id / width_};
}

NodeId MeshTopology::id_of(Coord c) const {
  if (c.x >= width_ || c.y >= height_)
    throw std::out_of_range("coordinate outside mesh");
  return c.y * width_ + c.x;
}

unsigned MeshTopology::hop_distance(NodeId a, NodeId b) const {
  const Coord ca = coord_of(a), cb = coord_of(b);
  const unsigned dx = ca.x > cb.x ? ca.x - cb.x : cb.x - ca.x;
  const unsigned dy = ca.y > cb.y ? ca.y - cb.y : cb.y - ca.y;
  return dx + dy;
}

std::vector<NodeId> MeshTopology::neighbors(NodeId id) const {
  const Coord c = coord_of(id);
  std::vector<NodeId> out;
  if (c.x > 0) out.push_back(id_of({c.x - 1, c.y}));
  if (c.x + 1 < width_) out.push_back(id_of({c.x + 1, c.y}));
  if (c.y > 0) out.push_back(id_of({c.x, c.y - 1}));
  if (c.y + 1 < height_) out.push_back(id_of({c.x, c.y + 1}));
  return out;
}

std::string MeshTopology::describe() const {
  std::ostringstream os;
  os << width_ << "x" << height_ << " mesh (" << node_count() << " tiles)";
  return os.str();
}

}  // namespace grinch::noc
