#include "noc/network.h"

namespace grinch::noc {

Network::Network(const MeshTopology& topology, const LinkTiming& timing)
    : topology_(&topology), router_(topology), timing_(timing) {}

unsigned Network::flits_for(unsigned payload_bytes) const noexcept {
  if (payload_bytes == 0) return 1;  // header-only packet
  return (payload_bytes + timing_.flit_bytes - 1) / timing_.flit_bytes;
}

std::uint64_t Network::latency(NodeId src, NodeId dst,
                               unsigned payload_bytes) const {
  const unsigned hops = topology_->hop_distance(src, dst);
  const unsigned flits = flits_for(payload_bytes);
  // Head flit: one router traversal per node on the path (hops+1) plus one
  // link traversal per hop.  Body flits stream behind the head, adding one
  // cycle each (wormhole pipelining).
  return (hops + 1) * timing_.router_cycles + hops * timing_.link_cycles +
         (flits - 1);
}

PacketResult Network::send(NodeId src, NodeId dst, unsigned payload_bytes) {
  PacketResult r;
  r.hops = topology_->hop_distance(src, dst);
  r.flits = flits_for(payload_bytes);
  r.latency_cycles = latency(src, dst, payload_bytes);

  ++stats_.packets;
  stats_.total_flits += r.flits;
  stats_.total_hop_traversals += r.hops;
  if (src != dst) {
    const auto path = router_.route(src, dst);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      stats_.link_flits[{path[i], path[i + 1]}] += r.flits;
    }
  }
  return r;
}

}  // namespace grinch::noc
