// Packet-latency NoC model with per-link utilisation accounting.
//
// The MPSoC experiment (Table II) needs the end-to-end latency of a
// remote shared-cache access: processor issue + per-hop router/link
// traversal + serialization of the payload + memory response.  A
// flit-accurate simulator is unnecessary for that observable; this model
// computes deterministic packet latencies over XY routes and tracks link
// utilisation so congestion effects can be asserted in tests.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "noc/routing.h"
#include "noc/topology.h"

namespace grinch::noc {

/// Per-hop and serialization timing of the mesh.
struct LinkTiming {
  std::uint64_t router_cycles = 2;  ///< pipeline stages per router traversal
  std::uint64_t link_cycles = 1;    ///< wire delay per hop
  unsigned flit_bytes = 4;          ///< payload bytes per flit
};

/// One delivered packet.
struct PacketResult {
  std::uint64_t latency_cycles = 0;
  unsigned hops = 0;
  unsigned flits = 0;
};

struct NetworkStats {
  std::uint64_t packets = 0;
  std::uint64_t total_flits = 0;
  std::uint64_t total_hop_traversals = 0;
  /// Flits carried per directed link (a -> b).
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> link_flits;

  void clear() { *this = NetworkStats{}; }
};

class Network {
 public:
  Network(const MeshTopology& topology, const LinkTiming& timing);

  /// Sends `payload_bytes` from `src` to `dst`; returns the delivery
  /// latency under XY routing (head-flit pipeline + serialization).
  PacketResult send(NodeId src, NodeId dst, unsigned payload_bytes);

  /// Latency of send() without mutating statistics.
  [[nodiscard]] std::uint64_t latency(NodeId src, NodeId dst,
                                      unsigned payload_bytes) const;

  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  void clear_stats() { stats_.clear(); }
  [[nodiscard]] const MeshTopology& topology() const noexcept {
    return *topology_;
  }
  [[nodiscard]] const XyRouter& router() const noexcept { return router_; }

 private:
  [[nodiscard]] unsigned flits_for(unsigned payload_bytes) const noexcept;

  const MeshTopology* topology_;
  XyRouter router_;
  LinkTiming timing_;
  NetworkStats stats_;
};

}  // namespace grinch::noc
