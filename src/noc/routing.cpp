#include "noc/routing.h"

#include <stdexcept>

namespace grinch::noc {

NodeId XyRouter::next_hop(NodeId current, NodeId dst) const {
  if (current == dst) throw std::invalid_argument("already at destination");
  const Coord c = topology_->coord_of(current);
  const Coord d = topology_->coord_of(dst);
  Coord n = c;
  if (c.x != d.x) {
    n.x = c.x < d.x ? c.x + 1 : c.x - 1;  // X first
  } else {
    n.y = c.y < d.y ? c.y + 1 : c.y - 1;  // then Y
  }
  return topology_->id_of(n);
}

std::vector<NodeId> XyRouter::route(NodeId src, NodeId dst) const {
  if (!topology_->valid(src) || !topology_->valid(dst))
    throw std::out_of_range("route endpoint outside mesh");
  std::vector<NodeId> path{src};
  NodeId cur = src;
  while (cur != dst) {
    cur = next_hop(cur, dst);
    path.push_back(cur);
  }
  return path;
}

}  // namespace grinch::noc
