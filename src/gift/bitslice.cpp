#include "gift/bitslice.h"

#include "gift/constants.h"
#include "gift/key_schedule.h"
#include "gift/permutation.h"
#include "gift/sbox.h"

namespace grinch::gift {

BitPlanes to_planes(std::uint64_t state) noexcept {
  BitPlanes out;
  for (unsigned i = 0; i < 16; ++i) {
    const auto nib = static_cast<unsigned>((state >> (4 * i)) & 0xF);
    for (unsigned b = 0; b < 4; ++b) {
      out.plane[b] |= static_cast<std::uint16_t>(((nib >> b) & 1u) << i);
    }
  }
  return out;
}

std::uint64_t from_planes(const BitPlanes& planes) noexcept {
  std::uint64_t state = 0;
  for (unsigned i = 0; i < 16; ++i) {
    unsigned nib = 0;
    for (unsigned b = 0; b < 4; ++b) {
      nib |= ((planes.plane[b] >> i) & 1u) << b;
    }
    state |= static_cast<std::uint64_t>(nib) << (4 * i);
  }
  return state;
}

BitslicedGift64::BitslicedGift64() {
  // ANF of each S-Box output bit via the Moebius transform over GF(2):
  // coeff[m] = XOR of f(x) over all x subset-of m.
  const SBox& sbox = gift_sbox();
  for (unsigned b = 0; b < 4; ++b) {
    std::array<unsigned, 16> coeff{};
    for (unsigned x = 0; x < 16; ++x) coeff[x] = (sbox.apply(x) >> b) & 1u;
    for (unsigned var = 0; var < 4; ++var) {
      for (unsigned m = 0; m < 16; ++m) {
        if (m & (1u << var)) coeff[m] ^= coeff[m ^ (1u << var)];
      }
    }
    for (unsigned m = 0; m < 16; ++m) {
      anf_[b] |= static_cast<std::uint16_t>(coeff[m] << m);
    }
  }

  // PermBits preserves i mod 4, so plane b permutes internally:
  // sigma_b(i) = P64(4i + b) / 4.
  const BitPermutation& perm = gift64_permutation();
  for (unsigned b = 0; b < 4; ++b) {
    for (unsigned i = 0; i < 16; ++i) {
      plane_perm_[b][i] = static_cast<std::uint8_t>(perm.forward(4 * i + b) / 4);
    }
  }
}

BitPlanes BitslicedGift64::sub_cells(const BitPlanes& in) const noexcept {
  // Evaluate every monomial once, XOR it into each output plane whose
  // ANF contains it.  Pure AND/XOR on registers: constant time.
  BitPlanes out;
  for (unsigned m = 0; m < 16; ++m) {
    std::uint16_t monomial = 0xFFFF;  // empty product = 1
    for (unsigned var = 0; var < 4; ++var) {
      if (m & (1u << var)) monomial &= in.plane[var];
    }
    for (unsigned b = 0; b < 4; ++b) {
      if ((anf_[b] >> m) & 1u) out.plane[b] ^= monomial;
    }
  }
  return out;
}

BitPlanes BitslicedGift64::perm_bits(const BitPlanes& in) const noexcept {
  BitPlanes out;
  for (unsigned b = 0; b < 4; ++b) {
    std::uint16_t p = 0;
    for (unsigned i = 0; i < 16; ++i) {
      p |= static_cast<std::uint16_t>(((in.plane[b] >> i) & 1u)
                                      << plane_perm_[b][i]);
    }
    out.plane[b] = p;
  }
  return out;
}

BitPlanes BitslicedGift64::round(const BitPlanes& state, std::uint16_t u,
                                 std::uint16_t v,
                                 unsigned round_index) const {
  BitPlanes s = perm_bits(sub_cells(state));
  // AddRoundKey: V into plane 0, U into plane 1.
  s.plane[0] ^= v;
  s.plane[1] ^= u;
  // Constants: c_t into bit 3 of segment t (t = 0..5), '1' into bit 63
  // (segment 15, bit 3).
  const std::uint8_t c = round_constant(round_index);
  s.plane[3] ^= static_cast<std::uint16_t>((c & 0x3F) | 0x8000);
  return s;
}

std::uint64_t BitslicedGift64::encrypt(std::uint64_t plaintext,
                                       const Key128& key) const {
  BitPlanes state = to_planes(plaintext);
  Key128 k = key;
  for (unsigned r = 0; r < 28; ++r) {
    const RoundKey64 rk = extract_round_key64(k);
    state = round(state, rk.u, rk.v, r);
    k = update_key_state(k);
  }
  return from_planes(state);
}

}  // namespace grinch::gift
