// GIFT round constants.
//
// A 6-bit affine LFSR (c5..c0), updated *before* each round's constant is
// used:  (c5..c0) <- (c4, c3, c2, c1, c0, c5 XOR c4 XOR 1), starting from
// all-zero.  The constant is XORed into state bits 23,19,15,11,7,3 (c5..c0
// respectively) and a fixed '1' into the state MSB (bit 63 / bit 127).
#pragma once

#include <cstdint>

namespace grinch::gift {

/// Stateful round-constant generator, mirrors the spec's LFSR exactly.
class RoundConstantLfsr {
 public:
  /// Advances the LFSR and returns the 6-bit constant for the next round.
  std::uint8_t next() noexcept {
    const unsigned c5 = (state_ >> 5) & 1u;
    const unsigned c4 = (state_ >> 4) & 1u;
    state_ = static_cast<std::uint8_t>(((state_ << 1) | (c5 ^ c4 ^ 1u)) & 0x3F);
    return state_;
  }

  void reset() noexcept { state_ = 0; }

 private:
  std::uint8_t state_ = 0;
};

/// Stateless access: the 6-bit constant of (0-based) round `round`.
[[nodiscard]] std::uint8_t round_constant(unsigned round) noexcept;

/// XORs constant `c` and the fixed MSB '1' into a 64-bit GIFT state.
[[nodiscard]] constexpr std::uint64_t add_constant64(std::uint64_t state,
                                                     std::uint8_t c) noexcept {
  state ^= std::uint64_t{1} << 63;
  state ^= static_cast<std::uint64_t>(c & 1u) << 3;          // c0 -> b3
  state ^= static_cast<std::uint64_t>((c >> 1) & 1u) << 7;   // c1 -> b7
  state ^= static_cast<std::uint64_t>((c >> 2) & 1u) << 11;  // c2 -> b11
  state ^= static_cast<std::uint64_t>((c >> 3) & 1u) << 15;  // c3 -> b15
  state ^= static_cast<std::uint64_t>((c >> 4) & 1u) << 19;  // c4 -> b19
  state ^= static_cast<std::uint64_t>((c >> 5) & 1u) << 23;  // c5 -> b23
  return state;
}

}  // namespace grinch::gift
