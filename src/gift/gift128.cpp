#include "gift/gift128.h"

#include "gift/constants.h"
#include "gift/permutation.h"
#include "gift/sbox.h"

namespace grinch::gift {
namespace {

State128 sub_cells(State128 s) {
  s.lo = gift_sbox().apply_state64(s.lo);
  s.hi = gift_sbox().apply_state64(s.hi);
  return s;
}

State128 inv_sub_cells(State128 s) {
  s.lo = gift_sbox().invert_state64(s.lo);
  s.hi = gift_sbox().invert_state64(s.hi);
  return s;
}

State128 add_constant(State128 s, std::uint8_t c) {
  s.hi ^= std::uint64_t{1} << 63;  // state bit 127
  s.lo ^= static_cast<std::uint64_t>(c & 1u) << 3;
  s.lo ^= static_cast<std::uint64_t>((c >> 1) & 1u) << 7;
  s.lo ^= static_cast<std::uint64_t>((c >> 2) & 1u) << 11;
  s.lo ^= static_cast<std::uint64_t>((c >> 3) & 1u) << 15;
  s.lo ^= static_cast<std::uint64_t>((c >> 4) & 1u) << 19;
  s.lo ^= static_cast<std::uint64_t>((c >> 5) & 1u) << 23;
  return s;
}

}  // namespace

State128 Gift128::add_round_key(State128 state, const RoundKey128& rk) {
  for (unsigned i = 0; i < kSegments; ++i) {
    state.xor_bit(4 * i + 1, (rk.v >> i) & 1u);
    state.xor_bit(4 * i + 2, (rk.u >> i) & 1u);
  }
  return state;
}

State128 Gift128::round_function(State128 state, const RoundKey128& rk,
                                 unsigned round_index) {
  state = sub_cells(state);
  gift128_permutation().apply128(state.hi, state.lo);
  state = add_round_key(state, rk);
  state = add_constant(state, round_constant(round_index));
  return state;
}

State128 Gift128::inverse_round_function(State128 state, const RoundKey128& rk,
                                         unsigned round_index) {
  state = add_constant(state, round_constant(round_index));
  state = add_round_key(state, rk);
  gift128_permutation().invert128(state.hi, state.lo);
  state = inv_sub_cells(state);
  return state;
}

State128 Gift128::encrypt_rounds(State128 plaintext, const Key128& key,
                                 unsigned rounds) {
  State128 state = plaintext;
  Key128 k = key;
  for (unsigned r = 0; r < rounds; ++r) {
    state = round_function(state, extract_round_key128(k), r);
    k = update_key_state(k);
  }
  return state;
}

State128 Gift128::encrypt(State128 plaintext, const Key128& key) {
  return encrypt_rounds(plaintext, key, kRounds);
}

State128 Gift128::decrypt(State128 ciphertext, const Key128& key) {
  const KeySchedule schedule{key, kRounds};
  State128 state = ciphertext;
  for (unsigned r = kRounds; r-- > 0;) {
    state = inverse_round_function(state, schedule.round_key128(r), r);
  }
  return state;
}

std::vector<State128> Gift128::round_states(State128 plaintext,
                                            const Key128& key) {
  std::vector<State128> states;
  states.reserve(kRounds + 1);
  State128 state = plaintext;
  Key128 k = key;
  states.push_back(state);
  for (unsigned r = 0; r < kRounds; ++r) {
    state = round_function(state, extract_round_key128(k), r);
    k = update_key_state(k);
    states.push_back(state);
  }
  return states;
}

}  // namespace grinch::gift
