// 4-bit substitution boxes for the GIFT cipher family.
//
// GIFT's S-Box GS is the 16-entry table from Banik et al., "GIFT: a small
// PRESENT" (eprint 2017/622, Table 1).  The attack library additionally
// needs the inverse S-Box (Algorithm 1 of the GRINCH paper walks the S-Box
// backwards to build plaintext candidate lists), so both directions live
// here with bijectivity checked at construction.
#pragma once

#include <array>
#include <cstdint>

namespace grinch::gift {

/// An invertible 4-bit substitution box.
class SBox {
 public:
  /// Builds the S-Box from its forward table; computes the inverse.
  /// Precondition (asserted): `table` is a permutation of 0..15.
  explicit SBox(const std::array<std::uint8_t, 16>& table);

  /// Forward substitution of a 4-bit value.
  [[nodiscard]] unsigned apply(unsigned v) const noexcept {
    return fwd_[v & 0xF];
  }

  /// Inverse substitution of a 4-bit value.
  [[nodiscard]] unsigned invert(unsigned v) const noexcept {
    return inv_[v & 0xF];
  }

  /// Applies the S-Box to every 4-bit segment of a 64-bit state.
  [[nodiscard]] std::uint64_t apply_state64(std::uint64_t state) const noexcept;

  /// Applies the inverse S-Box to every 4-bit segment of a 64-bit state.
  [[nodiscard]] std::uint64_t invert_state64(std::uint64_t state)
      const noexcept;

  [[nodiscard]] const std::array<std::uint8_t, 16>& table() const noexcept {
    return fwd_;
  }
  [[nodiscard]] const std::array<std::uint8_t, 16>& inverse_table()
      const noexcept {
    return inv_;
  }

 private:
  std::array<std::uint8_t, 16> fwd_{};
  std::array<std::uint8_t, 16> inv_{};
};

/// The GIFT S-Box GS (shared by GIFT-64 and GIFT-128).
[[nodiscard]] const SBox& gift_sbox();

/// The PRESENT S-Box (used by the PRESENT substrate and cross-cipher tests).
[[nodiscard]] const SBox& present_sbox();

}  // namespace grinch::gift
