#include "gift/permutation.h"

#include <cassert>

namespace grinch::gift {
namespace {

std::vector<unsigned> gift_map(unsigned width) {
  // Shared closed form; the block stride (16 vs 32) is width/4.
  const unsigned stride = width / 4;
  std::vector<unsigned> map(width);
  for (unsigned i = 0; i < width; ++i) {
    const unsigned quad = i / 16;          // 4-segment group
    const unsigned seg_in_quad = (i % 16) / 4;
    const unsigned bit_in_seg = i % 4;
    map[i] = 4 * quad + stride * ((3 * seg_in_quad + bit_in_seg) % 4) +
             bit_in_seg;
  }
  return map;
}

std::vector<unsigned> present_map() {
  std::vector<unsigned> map(64);
  for (unsigned i = 0; i < 63; ++i) map[i] = (16 * i) % 63;
  map[63] = 63;
  return map;
}

}  // namespace

BitPermutation::BitPermutation(std::vector<unsigned> map) : fwd_(std::move(map)) {
  assert(fwd_.size() <= 128);
  inv_.assign(fwd_.size(), ~0u);
  for (unsigned i = 0; i < fwd_.size(); ++i) {
    const unsigned j = fwd_[i];
    assert(j < fwd_.size() && "permutation target out of range");
    assert(inv_[j] == ~0u && "permutation must be bijective");
    inv_[j] = i;
  }
}

std::uint64_t BitPermutation::apply64(std::uint64_t state) const noexcept {
  assert(width() == 64);
  std::uint64_t out = 0;
  for (unsigned i = 0; i < 64; ++i) {
    out |= ((state >> i) & 1u) << fwd_[i];
  }
  return out;
}

std::uint64_t BitPermutation::invert64(std::uint64_t state) const noexcept {
  assert(width() == 64);
  std::uint64_t out = 0;
  for (unsigned i = 0; i < 64; ++i) {
    out |= ((state >> i) & 1u) << inv_[i];
  }
  return out;
}

void BitPermutation::apply128(std::uint64_t& hi, std::uint64_t& lo)
    const noexcept {
  assert(width() == 128);
  std::uint64_t nh = 0, nl = 0;
  for (unsigned i = 0; i < 128; ++i) {
    const std::uint64_t b =
        (i < 64) ? ((lo >> i) & 1u) : ((hi >> (i - 64)) & 1u);
    const unsigned j = fwd_[i];
    if (j < 64)
      nl |= b << j;
    else
      nh |= b << (j - 64);
  }
  hi = nh;
  lo = nl;
}

void BitPermutation::invert128(std::uint64_t& hi, std::uint64_t& lo)
    const noexcept {
  assert(width() == 128);
  std::uint64_t nh = 0, nl = 0;
  for (unsigned i = 0; i < 128; ++i) {
    const std::uint64_t b =
        (i < 64) ? ((lo >> i) & 1u) : ((hi >> (i - 64)) & 1u);
    const unsigned j = inv_[i];
    if (j < 64)
      nl |= b << j;
    else
      nh |= b << (j - 64);
  }
  hi = nh;
  lo = nl;
}

const BitPermutation& gift64_permutation() {
  static const BitPermutation perm{gift_map(64)};
  return perm;
}

const BitPermutation& gift128_permutation() {
  static const BitPermutation perm{gift_map(128)};
  return perm;
}

const BitPermutation& present_permutation() {
  static const BitPermutation perm{present_map()};
  return perm;
}

}  // namespace grinch::gift
