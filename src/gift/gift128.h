// GIFT-128 block cipher (128-bit block, 128-bit key, 40 rounds).
//
// Same construction as GIFT-64 with a 128-bit state: round keys use
// (k5||k4, k1||k0) and land on state bits 4i+2 / 4i+1.  Verified against
// the published test vectors in tests/gift/gift128_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/key128.h"
#include "gift/key_schedule.h"

namespace grinch::gift {

/// 128-bit cipher state as two 64-bit halves (hi = bits 127..64).
struct State128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr bool operator==(const State128&, const State128&) = default;

  /// 4-bit segment i (0..31); segment 0 = bits 3..0.
  [[nodiscard]] constexpr unsigned nibble(unsigned i) const noexcept {
    return i < 16 ? static_cast<unsigned>((lo >> (4 * i)) & 0xF)
                  : static_cast<unsigned>((hi >> (4 * (i - 16))) & 0xF);
  }

  [[nodiscard]] constexpr unsigned bit(unsigned pos) const noexcept {
    return pos < 64 ? static_cast<unsigned>((lo >> pos) & 1u)
                    : static_cast<unsigned>((hi >> (pos - 64)) & 1u);
  }

  constexpr void xor_bit(unsigned pos, unsigned value) noexcept {
    if (pos < 64)
      lo ^= static_cast<std::uint64_t>(value & 1u) << pos;
    else
      hi ^= static_cast<std::uint64_t>(value & 1u) << (pos - 64);
  }
};

class Gift128 {
 public:
  static constexpr unsigned kRounds = 40;
  static constexpr unsigned kSegments = 32;

  [[nodiscard]] static State128 encrypt(State128 plaintext, const Key128& key);
  [[nodiscard]] static State128 decrypt(State128 ciphertext,
                                        const Key128& key);

  /// Runs only the first `rounds` rounds (0 <= rounds <= kRounds).
  [[nodiscard]] static State128 encrypt_rounds(State128 plaintext,
                                               const Key128& key,
                                               unsigned rounds);

  /// result[r] = input of round r; result[kRounds] = ciphertext.
  [[nodiscard]] static std::vector<State128> round_states(State128 plaintext,
                                                          const Key128& key);

  [[nodiscard]] static State128 round_function(State128 state,
                                               const RoundKey128& rk,
                                               unsigned round_index);
  [[nodiscard]] static State128 inverse_round_function(State128 state,
                                                       const RoundKey128& rk,
                                                       unsigned round_index);
  [[nodiscard]] static State128 add_round_key(State128 state,
                                              const RoundKey128& rk);
};

}  // namespace grinch::gift
