#include "gift/sbox.h"

#include <cassert>

namespace grinch::gift {

SBox::SBox(const std::array<std::uint8_t, 16>& table) : fwd_(table) {
  std::array<bool, 16> seen{};
  for (unsigned x = 0; x < 16; ++x) {
    const std::uint8_t y = table[x];
    assert(y < 16 && "S-Box entries must be 4-bit");
    assert(!seen[y] && "S-Box must be a permutation of 0..15");
    seen[y] = true;
    inv_[y] = static_cast<std::uint8_t>(x);
  }
}

std::uint64_t SBox::apply_state64(std::uint64_t state) const noexcept {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < 16; ++i) {
    out |= static_cast<std::uint64_t>(fwd_[(state >> (4 * i)) & 0xF])
           << (4 * i);
  }
  return out;
}

std::uint64_t SBox::invert_state64(std::uint64_t state) const noexcept {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < 16; ++i) {
    out |= static_cast<std::uint64_t>(inv_[(state >> (4 * i)) & 0xF])
           << (4 * i);
  }
  return out;
}

const SBox& gift_sbox() {
  // GS from eprint 2017/622, Table 1: x -> GS(x).
  static const SBox sbox{{0x1, 0xa, 0x4, 0xc, 0x6, 0xf, 0x3, 0x9, 0x2, 0xd,
                          0xb, 0x7, 0x5, 0x0, 0x8, 0xe}};
  return sbox;
}

const SBox& present_sbox() {
  // Bogdanov et al., CHES 2007, Table 1.
  static const SBox sbox{{0xc, 0x5, 0x6, 0xb, 0x9, 0x0, 0xa, 0xd, 0x3, 0xe,
                          0xf, 0x8, 0x4, 0x7, 0x1, 0x2}};
  return sbox;
}

}  // namespace grinch::gift
