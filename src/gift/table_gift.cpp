#include "gift/table_gift.h"

#include <array>
#include <cassert>

#include "gift/constants.h"
#include "gift/permutation.h"
#include "gift/sbox.h"

namespace grinch::gift {

void VectorTraceSink::on_round_begin(unsigned round) {
  (void)round;
  round_begin_.push_back(accesses_.size());
}

void VectorTraceSink::on_access(const TableAccess& access) {
  accesses_.push_back(access);
}

void VectorTraceSink::on_round_end(unsigned round) { (void)round; }

void VectorTraceSink::clear() {
  accesses_.clear();
  round_begin_.clear();
}

std::vector<RoundKey64> standard_round_keys(const Key128& key,
                                            unsigned rounds) {
  std::vector<RoundKey64> rks;
  rks.reserve(rounds);
  Key128 k = key;
  for (unsigned r = 0; r < rounds; ++r) {
    rks.push_back(extract_round_key64(k));
    k = update_key_state(k);
  }
  return rks;
}

TableGift64::TableGift64(const TableLayout& layout, RoundKeyProvider provider)
    : layout_(layout),
      standard_schedule_(!provider),
      provider_(provider ? std::move(provider) : standard_round_keys) {
  const SBox& sbox = gift_sbox();
  for (unsigned v = 0; v < 16; ++v) {
    sbox_table_[v] = static_cast<std::uint8_t>(sbox.apply(v));
    sbox_addr_[v] = layout_.sbox_row_addr(v);
  }
  const BitPermutation& perm = gift64_permutation();
  for (unsigned s = 0; s < 16; ++s) {
    for (unsigned v = 0; v < 16; ++v) {
      perm_table_[s][v] = perm.apply64(static_cast<std::uint64_t>(v) << (4 * s));
    }
  }
}

template <typename Sink>
std::uint64_t TableGift64::encrypt_impl(std::uint64_t plaintext,
                                        const Key128& key, unsigned rounds,
                                        Sink* sink) const {
  // Round keys: the standard schedule runs inline into a stack buffer —
  // no per-encryption heap allocation on the hot path.  Custom providers
  // (hardened UpdateKey) keep the vector-returning interface.
  std::array<RoundKey64, Gift64::kRounds> rk_buf;
  std::vector<RoundKey64> rk_vec;
  const RoundKey64* rks;
  if (standard_schedule_ && rounds <= Gift64::kRounds) {
    Key128 k = key;
    for (unsigned r = 0; r < rounds; ++r) {
      rk_buf[r] = extract_round_key64(k);
      k = update_key_state(k);
    }
    rks = rk_buf.data();
  } else {
    rk_vec = provider_(key, rounds);
    rks = rk_vec.data();
  }
  return encrypt_with_keys(plaintext, rks, rounds, sink);
}

std::uint64_t TableGift64::encrypt_rounds(std::uint64_t plaintext,
                                          const Key128& key, unsigned rounds,
                                          TraceSink* sink) const {
  return encrypt_impl(plaintext, key, rounds, sink);
}

std::uint64_t TableGift64::encrypt_rounds(std::uint64_t plaintext,
                                          const Key128& key, unsigned rounds,
                                          VectorTraceSink* sink) const {
  // VectorTraceSink is final: the per-access callbacks resolve and inline
  // statically in this instantiation.
  return encrypt_impl(plaintext, key, rounds, sink);
}

std::uint64_t TableGift64::encrypt(std::uint64_t plaintext, const Key128& key,
                                   TraceSink* sink) const {
  return encrypt_rounds(plaintext, key, Gift64::kRounds, sink);
}

std::uint64_t TableGift64::encrypt(std::uint64_t plaintext, const Key128& key,
                                   VectorTraceSink* sink) const {
  return encrypt_rounds(plaintext, key, Gift64::kRounds, sink);
}

std::uint64_t TableGift64::encrypt_with_schedule(
    std::uint64_t plaintext, std::span<const RoundKey64> schedule,
    unsigned rounds, TraceSink* sink) const {
  assert(schedule.size() >= rounds);
  return encrypt_with_keys(plaintext, schedule.data(), rounds, sink);
}

std::uint64_t TableGift64::encrypt_with_schedule(
    std::uint64_t plaintext, std::span<const RoundKey64> schedule,
    unsigned rounds, VectorTraceSink* sink) const {
  assert(schedule.size() >= rounds);
  return encrypt_with_keys(plaintext, schedule.data(), rounds, sink);
}

}  // namespace grinch::gift
