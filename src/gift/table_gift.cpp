#include "gift/table_gift.h"

#include <array>
#include <cassert>

#include "gift/constants.h"
#include "gift/permutation.h"
#include "gift/sbox.h"

namespace grinch::gift {

void VectorTraceSink::on_round_begin(unsigned round) {
  (void)round;
  round_begin_.push_back(accesses_.size());
}

void VectorTraceSink::on_access(const TableAccess& access) {
  accesses_.push_back(access);
}

void VectorTraceSink::on_round_end(unsigned round) { (void)round; }

void VectorTraceSink::clear() {
  accesses_.clear();
  round_begin_.clear();
}

std::vector<RoundKey64> standard_round_keys(const Key128& key,
                                            unsigned rounds) {
  std::vector<RoundKey64> rks;
  rks.reserve(rounds);
  Key128 k = key;
  for (unsigned r = 0; r < rounds; ++r) {
    rks.push_back(extract_round_key64(k));
    k = update_key_state(k);
  }
  return rks;
}

TableGift64::TableGift64(const TableLayout& layout, RoundKeyProvider provider)
    : layout_(layout),
      standard_schedule_(!provider),
      provider_(provider ? std::move(provider) : standard_round_keys) {
  const SBox& sbox = gift_sbox();
  for (unsigned v = 0; v < 16; ++v)
    sbox_table_[v] = static_cast<std::uint8_t>(sbox.apply(v));
  const BitPermutation& perm = gift64_permutation();
  for (unsigned s = 0; s < 16; ++s) {
    for (unsigned v = 0; v < 16; ++v) {
      perm_table_[s][v] = perm.apply64(static_cast<std::uint64_t>(v) << (4 * s));
    }
  }
}

template <typename Sink>
std::uint64_t TableGift64::encrypt_impl(std::uint64_t plaintext,
                                        const Key128& key, unsigned rounds,
                                        Sink* sink) const {
  // Round keys: the standard schedule runs inline into a stack buffer —
  // no per-encryption heap allocation on the hot path.  Custom providers
  // (hardened UpdateKey) keep the vector-returning interface.
  std::array<RoundKey64, Gift64::kRounds> rk_buf;
  std::vector<RoundKey64> rk_vec;
  const RoundKey64* rks;
  if (standard_schedule_ && rounds <= Gift64::kRounds) {
    Key128 k = key;
    for (unsigned r = 0; r < rounds; ++r) {
      rk_buf[r] = extract_round_key64(k);
      k = update_key_state(k);
    }
    rks = rk_buf.data();
  } else {
    rk_vec = provider_(key, rounds);
    rks = rk_vec.data();
  }
  return encrypt_with_keys(plaintext, rks, rounds, sink);
}

template <typename Sink>
std::uint64_t TableGift64::encrypt_with_keys(std::uint64_t plaintext,
                                             const RoundKey64* rks,
                                             unsigned rounds,
                                             Sink* sink) const {
  std::uint64_t state = plaintext;
  for (unsigned r = 0; r < rounds; ++r) {
    if (sink) sink->on_round_begin(r);

    // SubCells via the 16-entry S-Box table.  The *index* of each lookup
    // is the current 4-bit segment value — this is what leaks.
    std::uint64_t substituted = 0;
    for (unsigned s = 0; s < Gift64::kSegments; ++s) {
      const auto v = static_cast<unsigned>((state >> (4 * s)) & 0xF);
      if (sink) {
        sink->on_access(TableAccess{layout_.sbox_row_addr(v),
                                    TableAccess::Kind::kSBox,
                                    static_cast<std::uint8_t>(r),
                                    static_cast<std::uint8_t>(s),
                                    static_cast<std::uint8_t>(v)});
      }
      substituted |= static_cast<std::uint64_t>(sbox_table_[v]) << (4 * s);
    }

    // PermBits via precomputed per-segment masks.
    std::uint64_t permuted = 0;
    for (unsigned s = 0; s < Gift64::kSegments; ++s) {
      const auto v = static_cast<unsigned>((substituted >> (4 * s)) & 0xF);
      if (sink) {
        sink->on_access(TableAccess{layout_.perm_row_addr(s, v),
                                    TableAccess::Kind::kPerm,
                                    static_cast<std::uint8_t>(r),
                                    static_cast<std::uint8_t>(s),
                                    static_cast<std::uint8_t>(v)});
      }
      permuted |= perm_table_[s][v];
    }

    // AddRoundKey + constant: pure register arithmetic, no table traffic.
    state = Gift64::add_round_key(permuted, rks[r]);
    state = add_constant64(state, round_constant(r));

    if (sink) sink->on_round_end(r);
  }
  return state;
}

std::uint64_t TableGift64::encrypt_rounds(std::uint64_t plaintext,
                                          const Key128& key, unsigned rounds,
                                          TraceSink* sink) const {
  return encrypt_impl(plaintext, key, rounds, sink);
}

std::uint64_t TableGift64::encrypt_rounds(std::uint64_t plaintext,
                                          const Key128& key, unsigned rounds,
                                          VectorTraceSink* sink) const {
  // VectorTraceSink is final: the per-access callbacks resolve and inline
  // statically in this instantiation.
  return encrypt_impl(plaintext, key, rounds, sink);
}

std::uint64_t TableGift64::encrypt(std::uint64_t plaintext, const Key128& key,
                                   TraceSink* sink) const {
  return encrypt_rounds(plaintext, key, Gift64::kRounds, sink);
}

std::uint64_t TableGift64::encrypt(std::uint64_t plaintext, const Key128& key,
                                   VectorTraceSink* sink) const {
  return encrypt_rounds(plaintext, key, Gift64::kRounds, sink);
}

std::uint64_t TableGift64::encrypt_with_schedule(
    std::uint64_t plaintext, std::span<const RoundKey64> schedule,
    unsigned rounds, TraceSink* sink) const {
  assert(schedule.size() >= rounds);
  return encrypt_with_keys(plaintext, schedule.data(), rounds, sink);
}

std::uint64_t TableGift64::encrypt_with_schedule(
    std::uint64_t plaintext, std::span<const RoundKey64> schedule,
    unsigned rounds, VectorTraceSink* sink) const {
  assert(schedule.size() >= rounds);
  return encrypt_with_keys(plaintext, schedule.data(), rounds, sink);
}

}  // namespace grinch::gift
