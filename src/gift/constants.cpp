#include "gift/constants.h"

namespace grinch::gift {

std::uint8_t round_constant(unsigned round) noexcept {
  RoundConstantLfsr lfsr;
  std::uint8_t c = 0;
  for (unsigned r = 0; r <= round; ++r) c = lfsr.next();
  return c;
}

}  // namespace grinch::gift
