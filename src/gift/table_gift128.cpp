#include "gift/table_gift128.h"

#include <array>
#include <cassert>

#include "gift/constants.h"
#include "gift/permutation.h"
#include "gift/sbox.h"

namespace grinch::gift {

TableGift128::TableGift128(const TableLayout& layout) : layout_(layout) {
  const SBox& sbox = gift_sbox();
  for (unsigned v = 0; v < 16; ++v)
    sbox_table_[v] = static_cast<std::uint8_t>(sbox.apply(v));
  const BitPermutation& perm = gift128_permutation();
  for (unsigned s = 0; s < 32; ++s) {
    for (unsigned v = 0; v < 16; ++v) {
      std::uint64_t hi = 0, lo = 0;
      if (s < 16)
        lo = static_cast<std::uint64_t>(v) << (4 * s);
      else
        hi = static_cast<std::uint64_t>(v) << (4 * (s - 16));
      perm.apply128(hi, lo);
      perm_hi_[s][v] = hi;
      perm_lo_[s][v] = lo;
    }
  }
}

TableGift128::Schedule TableGift128::make_schedule(const Key128& key,
                                                   unsigned rounds) const {
  Schedule rks;
  rks.reserve(rounds);
  Key128 k = key;
  for (unsigned r = 0; r < rounds; ++r) {
    rks.push_back(extract_round_key128(k));
    k = update_key_state(k);
  }
  return rks;
}

State128 TableGift128::encrypt_rounds(State128 plaintext, const Key128& key,
                                      unsigned rounds, TraceSink* sink) const {
  // Derive the keys into a stack buffer (no heap) and share the round
  // loop with the precomputed-schedule path.
  if (rounds <= Gift128::kRounds) {
    std::array<RoundKey128, Gift128::kRounds> rks;
    Key128 k = key;
    for (unsigned r = 0; r < rounds; ++r) {
      rks[r] = extract_round_key128(k);
      k = update_key_state(k);
    }
    return encrypt_with_keys(plaintext, rks.data(), rounds, sink);
  }
  const Schedule rks = make_schedule(key, rounds);
  return encrypt_with_keys(plaintext, rks.data(), rounds, sink);
}

State128 TableGift128::encrypt_with_schedule(
    State128 plaintext, std::span<const RoundKey128> schedule, unsigned rounds,
    TraceSink* sink) const {
  assert(schedule.size() >= rounds);
  return encrypt_with_keys(plaintext, schedule.data(), rounds, sink);
}

State128 TableGift128::encrypt_with_keys(State128 plaintext,
                                         const RoundKey128* rks,
                                         unsigned rounds,
                                         TraceSink* sink) const {
  State128 state = plaintext;
  for (unsigned r = 0; r < rounds; ++r) {
    if (sink) sink->on_round_begin(r);

    // SubCells via the shared 16-entry table; the lookup index leaks.
    State128 substituted{};
    for (unsigned s = 0; s < Gift128::kSegments; ++s) {
      const unsigned v = state.nibble(s);
      if (sink) {
        sink->on_access(TableAccess{layout_.sbox_row_addr(v),
                                    TableAccess::Kind::kSBox,
                                    static_cast<std::uint8_t>(r),
                                    static_cast<std::uint8_t>(s),
                                    static_cast<std::uint8_t>(v)});
      }
      const std::uint64_t y = sbox_table_[v];
      if (s < 16)
        substituted.lo |= y << (4 * s);
      else
        substituted.hi |= y << (4 * (s - 16));
    }

    // PermBits via precomputed per-segment masks.
    State128 permuted{};
    for (unsigned s = 0; s < Gift128::kSegments; ++s) {
      const unsigned v = substituted.nibble(s);
      if (sink) {
        sink->on_access(TableAccess{layout_.perm_row_addr(s, v),
                                    TableAccess::Kind::kPerm,
                                    static_cast<std::uint8_t>(r),
                                    static_cast<std::uint8_t>(s),
                                    static_cast<std::uint8_t>(v)});
      }
      permuted.hi |= perm_hi_[s][v];
      permuted.lo |= perm_lo_[s][v];
    }

    state = Gift128::add_round_key(permuted, rks[r]);
    // Constant addition (same shape as the spec implementation).
    state.hi ^= std::uint64_t{1} << 63;
    const std::uint8_t c = round_constant(r);
    for (unsigned t = 0; t < 6; ++t) {
      state.lo ^= static_cast<std::uint64_t>((c >> t) & 1u) << (4 * t + 3);
    }

    if (sink) sink->on_round_end(r);
  }
  return state;
}

State128 TableGift128::encrypt(State128 plaintext, const Key128& key,
                               TraceSink* sink) const {
  return encrypt_rounds(plaintext, key, Gift128::kRounds, sink);
}

}  // namespace grinch::gift
