#include "gift/table_gift128.h"

#include <array>
#include <cassert>

#include "gift/constants.h"
#include "gift/permutation.h"
#include "gift/sbox.h"

namespace grinch::gift {

TableGift128::TableGift128(const TableLayout& layout) : layout_(layout) {
  const SBox& sbox = gift_sbox();
  for (unsigned v = 0; v < 16; ++v) {
    sbox_table_[v] = static_cast<std::uint8_t>(sbox.apply(v));
    sbox_addr_[v] = layout_.sbox_row_addr(v);
  }
  const BitPermutation& perm = gift128_permutation();
  for (unsigned s = 0; s < 32; ++s) {
    for (unsigned v = 0; v < 16; ++v) {
      std::uint64_t hi = 0, lo = 0;
      if (s < 16)
        lo = static_cast<std::uint64_t>(v) << (4 * s);
      else
        hi = static_cast<std::uint64_t>(v) << (4 * (s - 16));
      perm.apply128(hi, lo);
      perm_hi_[s][v] = hi;
      perm_lo_[s][v] = lo;
    }
  }
}

TableGift128::Schedule TableGift128::make_schedule(const Key128& key,
                                                   unsigned rounds) const {
  Schedule rks;
  rks.reserve(rounds);
  Key128 k = key;
  for (unsigned r = 0; r < rounds; ++r) {
    rks.push_back(extract_round_key128(k));
    k = update_key_state(k);
  }
  return rks;
}

State128 TableGift128::encrypt_rounds(State128 plaintext, const Key128& key,
                                      unsigned rounds, TraceSink* sink) const {
  // Derive the keys into a stack buffer (no heap) and share the round
  // loop with the precomputed-schedule path.
  if (rounds <= Gift128::kRounds) {
    std::array<RoundKey128, Gift128::kRounds> rks;
    Key128 k = key;
    for (unsigned r = 0; r < rounds; ++r) {
      rks[r] = extract_round_key128(k);
      k = update_key_state(k);
    }
    return encrypt_with_keys(plaintext, rks.data(), rounds, sink);
  }
  const Schedule rks = make_schedule(key, rounds);
  return encrypt_with_keys(plaintext, rks.data(), rounds, sink);
}

State128 TableGift128::encrypt_with_schedule(
    State128 plaintext, std::span<const RoundKey128> schedule, unsigned rounds,
    TraceSink* sink) const {
  assert(schedule.size() >= rounds);
  return encrypt_with_keys(plaintext, schedule.data(), rounds, sink);
}

State128 TableGift128::encrypt(State128 plaintext, const Key128& key,
                               TraceSink* sink) const {
  return encrypt_rounds(plaintext, key, Gift128::kRounds, sink);
}

}  // namespace grinch::gift
