// GIFT-64 block cipher (64-bit block, 128-bit key, 28 rounds).
//
// Reference implementation written directly from the specification
// (eprint 2017/622); verified against the published test vectors in
// tests/gift/gift64_test.cpp.  Each round is
//
//     SubCells -> PermBits -> AddRoundKey(+ round constant)
//
// The class also exposes per-round intermediate states and the bare round
// function: the GRINCH attack predicts round-R S-Box indices under key
// hypotheses, which requires replaying individual rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "common/key128.h"
#include "gift/key_schedule.h"

namespace grinch::gift {

class Gift64 {
 public:
  static constexpr unsigned kRounds = 28;
  static constexpr unsigned kSegments = 16;

  /// Encrypts one 64-bit block under `key`.
  [[nodiscard]] static std::uint64_t encrypt(std::uint64_t plaintext,
                                             const Key128& key);

  /// Decrypts one 64-bit block under `key`.
  [[nodiscard]] static std::uint64_t decrypt(std::uint64_t ciphertext,
                                             const Key128& key);

  /// Runs only the first `rounds` rounds (0 <= rounds <= kRounds).
  [[nodiscard]] static std::uint64_t encrypt_rounds(std::uint64_t plaintext,
                                                    const Key128& key,
                                                    unsigned rounds);

  /// All intermediate states: result[r] is the input of (0-based) round r,
  /// result[kRounds] is the ciphertext.  Size kRounds+1.
  [[nodiscard]] static std::vector<std::uint64_t> round_states(
      std::uint64_t plaintext, const Key128& key);

  /// One full round: SubCells, PermBits, AddRoundKey with constant of
  /// (0-based) round `round_index`.
  [[nodiscard]] static std::uint64_t round_function(std::uint64_t state,
                                                    const RoundKey64& rk,
                                                    unsigned round_index);

  /// Inverse of round_function.
  [[nodiscard]] static std::uint64_t inverse_round_function(
      std::uint64_t state, const RoundKey64& rk, unsigned round_index);

  /// AddRoundKey only (exposed for attack predictors and tests).
  [[nodiscard]] static std::uint64_t add_round_key(std::uint64_t state,
                                                   const RoundKey64& rk);
};

}  // namespace grinch::gift
