// Table-based (leaky) GIFT-64 implementation.
//
// The GRINCH paper attacks the public GIFT software implementation whose
// SubCells and PermBits layers are realised as look-up tables.  This class
// reproduces that implementation style and *instruments* it: every table
// access is reported to a TraceSink with its memory address, round and
// segment, so the SoC simulation can replay the access stream against the
// cache model.  The same instrumentation points feed the static/dynamic
// leak analyzer in src/analysis/ (docs/LEAKCHECK.md).
//
// Memory layout (configurable through TableLayout):
//   * S-Box table    — 16 4-bit entries.  In the paper's default platform
//     a cache line holds one 8-bit word, i.e. one entry per line.  The
//     countermeasure of §IV-C packs two entries per row (8 rows x 8 bit).
//   * PermBits table — per (segment, value) precomputed 64-bit masks:
//     PERM[s][v] = P64(v << 4s).  One 8-byte row per entry.
//
// Functional correctness is cross-checked against the spec implementation
// (Gift64) in tests/gift/table_gift_test.cpp.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/key128.h"
#include "gift/constants.h"
#include "gift/gift64.h"
#include "target/table_layout.h"

namespace grinch::gift {

/// Compatibility alias: TableLayout moved to the cipher-neutral target
/// layer (src/target/table_layout.h) — PRESENT and future table ciphers
/// describe their placement with the same type without reaching into the
/// gift namespace.
using TableLayout = target::TableLayout;

/// One instrumented table access.
struct TableAccess {
  enum class Kind : std::uint8_t { kSBox, kPerm };

  std::uint64_t addr = 0;   ///< byte address of the accessed table row
  Kind kind = Kind::kSBox;
  std::uint8_t round = 0;   ///< 0-based round index
  std::uint8_t segment = 0; ///< 4-bit segment being processed
  std::uint8_t index = 0;   ///< table row index (S-Box: the leaking value)
};

/// Receives the access stream during an instrumented encryption.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_round_begin(unsigned round) = 0;
  virtual void on_access(const TableAccess& access) = 0;
  virtual void on_round_end(unsigned round) = 0;
};

/// TraceSink that collects everything into vectors (tests, offline replay).
/// Final so encrypt()'s VectorTraceSink overload devirtualizes the ~900
/// per-encryption callbacks; clear() keeps capacity, so a reused sink
/// stops allocating after the first encryption.
class VectorTraceSink final : public TraceSink {
 public:
  void on_round_begin(unsigned round) override;
  void on_access(const TableAccess& access) override;
  void on_round_end(unsigned round) override;

  [[nodiscard]] const std::vector<TableAccess>& accesses() const noexcept {
    return accesses_;
  }
  /// accesses() index where (0-based) round r starts.
  [[nodiscard]] std::size_t round_begin_index(unsigned round) const {
    return round_begin_.at(round);
  }
  [[nodiscard]] unsigned rounds_seen() const noexcept {
    return static_cast<unsigned>(round_begin_.size());
  }
  void clear();

 private:
  std::vector<TableAccess> accesses_;
  std::vector<std::size_t> round_begin_;
};

/// The leaky LUT implementation of GIFT-64.
class TableGift64 {
 public:
  /// Supplies the round keys for one encryption.  The default is the
  /// standard GIFT key schedule; the hardened-UpdateKey countermeasure
  /// (§IV-C) substitutes its own provider.
  using RoundKeyProvider =
      std::function<std::vector<RoundKey64>(const Key128&, unsigned rounds)>;

  explicit TableGift64(const TableLayout& layout = TableLayout{},
                       RoundKeyProvider provider = nullptr);

  [[nodiscard]] const TableLayout& layout() const noexcept { return layout_; }

  /// Encrypts like Gift64::encrypt, reporting each table access to `sink`
  /// (may be null for a pure functional run).
  [[nodiscard]] std::uint64_t encrypt(std::uint64_t plaintext,
                                      const Key128& key,
                                      TraceSink* sink = nullptr) const;

  /// Runs only the first `rounds` rounds.
  [[nodiscard]] std::uint64_t encrypt_rounds(std::uint64_t plaintext,
                                             const Key128& key,
                                             unsigned rounds,
                                             TraceSink* sink = nullptr) const;

  /// Hot-path overloads: statically-typed sink (devirtualized callbacks).
  /// Callers holding a concrete VectorTraceSink resolve here for free.
  [[nodiscard]] std::uint64_t encrypt(std::uint64_t plaintext,
                                      const Key128& key,
                                      VectorTraceSink* sink) const;
  [[nodiscard]] std::uint64_t encrypt_rounds(std::uint64_t plaintext,
                                             const Key128& key,
                                             unsigned rounds,
                                             VectorTraceSink* sink) const;

  /// Disambiguators: a literal nullptr sink means "no trace" and would
  /// otherwise match both sink overloads equally well.
  [[nodiscard]] std::uint64_t encrypt(std::uint64_t plaintext,
                                      const Key128& key,
                                      std::nullptr_t) const {
    return encrypt(plaintext, key, static_cast<TraceSink*>(nullptr));
  }
  [[nodiscard]] std::uint64_t encrypt_rounds(std::uint64_t plaintext,
                                             const Key128& key,
                                             unsigned rounds,
                                             std::nullptr_t) const {
    return encrypt_rounds(plaintext, key, rounds,
                          static_cast<TraceSink*>(nullptr));
  }

  /// Precomputed round keys for repeated encryptions under one key.  The
  /// observation hot path (target/platform.h) derives the schedule once
  /// per victim and encrypts with it, skipping the per-call key expansion
  /// (and, for custom providers, its heap allocation).
  using Schedule = std::vector<RoundKey64>;
  [[nodiscard]] Schedule make_schedule(const Key128& key,
                                       unsigned rounds = Gift64::kRounds)
      const {
    return provider_(key, rounds);
  }

  /// encrypt_rounds with a precomputed schedule (schedule.size() >=
  /// rounds).  Runs only the first `rounds` rounds — the partial-round
  /// fast path: the emitted trace is the exact prefix of the full-round
  /// trace, and the returned state matches the full encryption once
  /// rounds == Gift64::kRounds.
  [[nodiscard]] std::uint64_t encrypt_with_schedule(
      std::uint64_t plaintext, std::span<const RoundKey64> schedule,
      unsigned rounds, TraceSink* sink = nullptr) const;
  [[nodiscard]] std::uint64_t encrypt_with_schedule(
      std::uint64_t plaintext, std::span<const RoundKey64> schedule,
      unsigned rounds, VectorTraceSink* sink) const;
  [[nodiscard]] std::uint64_t encrypt_with_schedule(
      std::uint64_t plaintext, std::span<const RoundKey64> schedule,
      unsigned rounds, std::nullptr_t) const {
    return encrypt_with_schedule(plaintext, schedule, rounds,
                                 static_cast<TraceSink*>(nullptr));
  }

  /// Fully static sink (any class with the TraceSink callback shape, no
  /// inheritance required): the round loop and the callbacks inline into
  /// one function — the wide lockstep path streams accesses straight
  /// into its lane cache with zero dispatch overhead.  Exact-match
  /// overload resolution keeps TraceSink*/VectorTraceSink* callers on
  /// the non-template entry points above.
  template <typename Sink>
  [[nodiscard]] std::uint64_t encrypt_with_schedule(
      std::uint64_t plaintext, std::span<const RoundKey64> schedule,
      unsigned rounds, Sink* sink) const {
    assert(schedule.size() >= rounds);
    return encrypt_with_keys(plaintext, schedule.data(), rounds, sink);
  }

  /// Table accesses issued per round (16 S-Box + 16 PermBits lookups).
  [[nodiscard]] static constexpr unsigned accesses_per_round() noexcept {
    return 32;
  }

 private:
  template <typename Sink>
  std::uint64_t encrypt_impl(std::uint64_t plaintext, const Key128& key,
                             unsigned rounds, Sink* sink) const;

  /// The round loop, generic over the sink's static type.  Header-defined
  /// so sink callbacks devirtualize/inline per instantiation.
  template <typename Sink>
  std::uint64_t encrypt_with_keys(std::uint64_t plaintext,
                                  const RoundKey64* rks, unsigned rounds,
                                  Sink* sink) const {
    std::uint64_t state = plaintext;
    for (unsigned r = 0; r < rounds; ++r) {
      if (sink) sink->on_round_begin(r);

      // SubCells via the 16-entry S-Box table.  The *index* of each
      // lookup is the current 4-bit segment value — this is what leaks.
      std::uint64_t substituted = 0;
      for (unsigned s = 0; s < Gift64::kSegments; ++s) {
        const auto v = static_cast<unsigned>((state >> (4 * s)) & 0xF);
        if (sink) {
          sink->on_access(TableAccess{sbox_addr_[v],
                                      TableAccess::Kind::kSBox,
                                      static_cast<std::uint8_t>(r),
                                      static_cast<std::uint8_t>(s),
                                      static_cast<std::uint8_t>(v)});
        }
        substituted |= static_cast<std::uint64_t>(sbox_table_[v]) << (4 * s);
      }

      // PermBits via precomputed per-segment masks.
      std::uint64_t permuted = 0;
      for (unsigned s = 0; s < Gift64::kSegments; ++s) {
        const auto v = static_cast<unsigned>((substituted >> (4 * s)) & 0xF);
        if (sink) {
          sink->on_access(TableAccess{layout_.perm_row_addr(s, v),
                                      TableAccess::Kind::kPerm,
                                      static_cast<std::uint8_t>(r),
                                      static_cast<std::uint8_t>(s),
                                      static_cast<std::uint8_t>(v)});
        }
        permuted |= perm_table_[s][v];
      }

      // AddRoundKey + constant: pure register arithmetic, no table
      // traffic.
      state = Gift64::add_round_key(permuted, rks[r]);
      state = add_constant64(state, round_constant(r));

      if (sink) sink->on_round_end(r);
    }
    return state;
  }

  TableLayout layout_;
  /// provider_ is the standard schedule — round keys then come from a
  /// stack buffer instead of a heap vector per encryption.  Declared
  /// before provider_ so it initializes before `provider` is moved from.
  bool standard_schedule_;
  RoundKeyProvider provider_;
  std::uint8_t sbox_table_[16];
  std::uint64_t sbox_addr_[16];       // = layout_.sbox_row_addr(v), hoisting
                                      // its division off the round loop
  std::uint64_t perm_table_[16][16];  // PERM[s][v] = P64 applied to v<<4s
};

/// The standard GIFT-64 key schedule as a RoundKeyProvider.
[[nodiscard]] std::vector<RoundKey64> standard_round_keys(const Key128& key,
                                                          unsigned rounds);

}  // namespace grinch::gift
