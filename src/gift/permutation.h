// Bit permutations for GIFT (PermBits layer).
//
// The permutations are generated from the closed forms in the GIFT paper
// (eprint 2017/622, Section 2.1):
//
//   GIFT-64 :  P64(i)  = 4⌊i/16⌋ + 16[(3⌊(i mod 16)/4⌋ + (i mod 4)) mod 4]
//                        + (i mod 4)
//   GIFT-128:  P128(i) = 4⌊i/16⌋ + 32[(3⌊(i mod 16)/4⌋ + (i mod 4)) mod 4]
//                        + (i mod 4)
//
// The GRINCH attack needs the inverse permutation explicitly (Algorithm 1
// maps round-key bit positions back to S-Box output bit positions), so
// BitPermutation exposes both directions and their tables.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace grinch::gift {

/// A bit permutation over `width` bit positions (width ≤ 128).
class BitPermutation {
 public:
  /// Builds from a forward map: bit i of the input moves to bit map[i]
  /// of the output.  Precondition (asserted): `map` is a permutation.
  explicit BitPermutation(std::vector<unsigned> map);

  [[nodiscard]] unsigned width() const noexcept {
    return static_cast<unsigned>(fwd_.size());
  }

  /// Destination of input bit `i`.
  [[nodiscard]] unsigned forward(unsigned i) const noexcept { return fwd_[i]; }

  /// Source of output bit `j` (the inverse permutation).
  [[nodiscard]] unsigned inverse(unsigned j) const noexcept { return inv_[j]; }

  /// Permutes a 64-bit state. Precondition: width() == 64.
  [[nodiscard]] std::uint64_t apply64(std::uint64_t state) const noexcept;

  /// Inverse-permutes a 64-bit state. Precondition: width() == 64.
  [[nodiscard]] std::uint64_t invert64(std::uint64_t state) const noexcept;

  /// Permutes a 128-bit state given as (hi, lo). Precondition: width()==128.
  void apply128(std::uint64_t& hi, std::uint64_t& lo) const noexcept;

  /// Inverse-permutes a 128-bit state. Precondition: width() == 128.
  void invert128(std::uint64_t& hi, std::uint64_t& lo) const noexcept;

  [[nodiscard]] const std::vector<unsigned>& forward_table() const noexcept {
    return fwd_;
  }
  [[nodiscard]] const std::vector<unsigned>& inverse_table() const noexcept {
    return inv_;
  }

 private:
  std::vector<unsigned> fwd_;
  std::vector<unsigned> inv_;
};

/// The GIFT-64 PermBits permutation (width 64).
[[nodiscard]] const BitPermutation& gift64_permutation();

/// The GIFT-128 PermBits permutation (width 128).
[[nodiscard]] const BitPermutation& gift128_permutation();

/// The PRESENT pLayer permutation (width 64): P(i) = 16·i mod 63 (i<63).
[[nodiscard]] const BitPermutation& present_permutation();

}  // namespace grinch::gift
