#include "gift/gift64.h"

#include "gift/constants.h"
#include "gift/permutation.h"
#include "gift/sbox.h"

namespace grinch::gift {

std::uint64_t Gift64::add_round_key(std::uint64_t state, const RoundKey64& rk) {
  for (unsigned i = 0; i < kSegments; ++i) {
    state ^= static_cast<std::uint64_t>((rk.v >> i) & 1u) << (4 * i);
    state ^= static_cast<std::uint64_t>((rk.u >> i) & 1u) << (4 * i + 1);
  }
  return state;
}

std::uint64_t Gift64::round_function(std::uint64_t state, const RoundKey64& rk,
                                     unsigned round_index) {
  state = gift_sbox().apply_state64(state);
  state = gift64_permutation().apply64(state);
  state = add_round_key(state, rk);
  state = add_constant64(state, round_constant(round_index));
  return state;
}

std::uint64_t Gift64::inverse_round_function(std::uint64_t state,
                                             const RoundKey64& rk,
                                             unsigned round_index) {
  state = add_constant64(state, round_constant(round_index));
  state = add_round_key(state, rk);
  state = gift64_permutation().invert64(state);
  state = gift_sbox().invert_state64(state);
  return state;
}

std::uint64_t Gift64::encrypt_rounds(std::uint64_t plaintext,
                                     const Key128& key, unsigned rounds) {
  std::uint64_t state = plaintext;
  Key128 k = key;
  for (unsigned r = 0; r < rounds; ++r) {
    state = round_function(state, extract_round_key64(k), r);
    k = update_key_state(k);
  }
  return state;
}

std::uint64_t Gift64::encrypt(std::uint64_t plaintext, const Key128& key) {
  return encrypt_rounds(plaintext, key, kRounds);
}

std::uint64_t Gift64::decrypt(std::uint64_t ciphertext, const Key128& key) {
  const KeySchedule schedule{key, kRounds};
  std::uint64_t state = ciphertext;
  for (unsigned r = kRounds; r-- > 0;) {
    state = inverse_round_function(state, schedule.round_key64(r), r);
  }
  return state;
}

std::vector<std::uint64_t> Gift64::round_states(std::uint64_t plaintext,
                                                const Key128& key) {
  std::vector<std::uint64_t> states;
  states.reserve(kRounds + 1);
  std::uint64_t state = plaintext;
  Key128 k = key;
  states.push_back(state);
  for (unsigned r = 0; r < kRounds; ++r) {
    state = round_function(state, extract_round_key64(k), r);
    k = update_key_state(k);
    states.push_back(state);
  }
  return states;
}

}  // namespace grinch::gift
