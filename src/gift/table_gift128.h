// Table-based (leaky) GIFT-128 implementation.
//
// GIFT-128 is the variant inside GIFT-COFB and most GIFT-based NIST LWC
// candidates, so its table implementation leaks through the cache exactly
// like GIFT-64's: one 16-entry S-Box lookup per 4-bit segment per round —
// just 32 segments instead of 16, and round keys landing on bits 4i+1 /
// 4i+2.  This class mirrors TableGift64 (same TableLayout, same
// TraceSink) so probers and cache machinery are reused unchanged.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "common/key128.h"
#include "gift/constants.h"
#include "gift/gift128.h"
#include "gift/table_gift.h"

namespace grinch::gift {

class TableGift128 {
 public:
  explicit TableGift128(const TableLayout& layout = TableLayout{});

  [[nodiscard]] const TableLayout& layout() const noexcept { return layout_; }

  [[nodiscard]] State128 encrypt(State128 plaintext, const Key128& key,
                                 TraceSink* sink = nullptr) const;

  [[nodiscard]] State128 encrypt_rounds(State128 plaintext, const Key128& key,
                                        unsigned rounds,
                                        TraceSink* sink = nullptr) const;

  /// Precomputed round keys for repeated encryptions under one key (the
  /// observation hot path derives them once per victim).
  using Schedule = std::vector<RoundKey128>;
  [[nodiscard]] Schedule make_schedule(const Key128& key,
                                       unsigned rounds = Gift128::kRounds)
      const;

  /// encrypt_rounds with a precomputed schedule (schedule.size() >=
  /// rounds): the partial-round fast path — the emitted trace is the
  /// exact prefix of the full-round trace, and the returned state matches
  /// the full encryption once rounds == Gift128::kRounds.
  [[nodiscard]] State128 encrypt_with_schedule(
      State128 plaintext, std::span<const RoundKey128> schedule,
      unsigned rounds, TraceSink* sink = nullptr) const;

  /// Fully static sink (any class with the TraceSink callback shape, no
  /// inheritance required): round loop and callbacks inline into one
  /// function — the wide lockstep path's zero-dispatch entry point.
  /// TraceSink* callers keep resolving to the non-template overload.
  template <typename Sink>
  [[nodiscard]] State128 encrypt_with_schedule(
      State128 plaintext, std::span<const RoundKey128> schedule,
      unsigned rounds, Sink* sink) const {
    assert(schedule.size() >= rounds);
    return encrypt_with_keys(plaintext, schedule.data(), rounds, sink);
  }

  /// 32 S-Box + 32 PermBits lookups per round.
  [[nodiscard]] static constexpr unsigned accesses_per_round() noexcept {
    return 64;
  }

 private:
  /// The round loop, generic over the sink's static type.  Header-defined
  /// so sink callbacks devirtualize/inline per instantiation.
  template <typename Sink>
  State128 encrypt_with_keys(State128 plaintext, const RoundKey128* rks,
                             unsigned rounds, Sink* sink) const {
    State128 state = plaintext;
    for (unsigned r = 0; r < rounds; ++r) {
      if (sink) sink->on_round_begin(r);

      // SubCells via the shared 16-entry table; the lookup index leaks.
      State128 substituted{};
      for (unsigned s = 0; s < Gift128::kSegments; ++s) {
        const unsigned v = state.nibble(s);
        if (sink) {
          sink->on_access(TableAccess{sbox_addr_[v],
                                      TableAccess::Kind::kSBox,
                                      static_cast<std::uint8_t>(r),
                                      static_cast<std::uint8_t>(s),
                                      static_cast<std::uint8_t>(v)});
        }
        const std::uint64_t y = sbox_table_[v];
        if (s < 16)
          substituted.lo |= y << (4 * s);
        else
          substituted.hi |= y << (4 * (s - 16));
      }

      // PermBits via precomputed per-segment masks.
      State128 permuted{};
      for (unsigned s = 0; s < Gift128::kSegments; ++s) {
        const unsigned v = substituted.nibble(s);
        if (sink) {
          sink->on_access(TableAccess{layout_.perm_row_addr(s, v),
                                      TableAccess::Kind::kPerm,
                                      static_cast<std::uint8_t>(r),
                                      static_cast<std::uint8_t>(s),
                                      static_cast<std::uint8_t>(v)});
        }
        permuted.hi |= perm_hi_[s][v];
        permuted.lo |= perm_lo_[s][v];
      }

      state = Gift128::add_round_key(permuted, rks[r]);
      // Constant addition (same shape as the spec implementation).
      state.hi ^= std::uint64_t{1} << 63;
      const std::uint8_t c = round_constant(r);
      for (unsigned t = 0; t < 6; ++t) {
        state.lo ^= static_cast<std::uint64_t>((c >> t) & 1u) << (4 * t + 3);
      }

      if (sink) sink->on_round_end(r);
    }
    return state;
  }

  TableLayout layout_;
  std::uint8_t sbox_table_[16];
  std::uint64_t sbox_addr_[16];  // = layout_.sbox_row_addr(v), hoisting its
                                 // division off the round loop
  /// PERM[s][v] = P128 applied to v << 4s, as (hi, lo) contributions.
  std::uint64_t perm_hi_[32][16];
  std::uint64_t perm_lo_[32][16];
};

}  // namespace grinch::gift
