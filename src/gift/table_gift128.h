// Table-based (leaky) GIFT-128 implementation.
//
// GIFT-128 is the variant inside GIFT-COFB and most GIFT-based NIST LWC
// candidates, so its table implementation leaks through the cache exactly
// like GIFT-64's: one 16-entry S-Box lookup per 4-bit segment per round —
// just 32 segments instead of 16, and round keys landing on bits 4i+1 /
// 4i+2.  This class mirrors TableGift64 (same TableLayout, same
// TraceSink) so probers and cache machinery are reused unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/key128.h"
#include "gift/gift128.h"
#include "gift/table_gift.h"

namespace grinch::gift {

class TableGift128 {
 public:
  explicit TableGift128(const TableLayout& layout = TableLayout{});

  [[nodiscard]] const TableLayout& layout() const noexcept { return layout_; }

  [[nodiscard]] State128 encrypt(State128 plaintext, const Key128& key,
                                 TraceSink* sink = nullptr) const;

  [[nodiscard]] State128 encrypt_rounds(State128 plaintext, const Key128& key,
                                        unsigned rounds,
                                        TraceSink* sink = nullptr) const;

  /// Precomputed round keys for repeated encryptions under one key (the
  /// observation hot path derives them once per victim).
  using Schedule = std::vector<RoundKey128>;
  [[nodiscard]] Schedule make_schedule(const Key128& key,
                                       unsigned rounds = Gift128::kRounds)
      const;

  /// encrypt_rounds with a precomputed schedule (schedule.size() >=
  /// rounds): the partial-round fast path — the emitted trace is the
  /// exact prefix of the full-round trace, and the returned state matches
  /// the full encryption once rounds == Gift128::kRounds.
  [[nodiscard]] State128 encrypt_with_schedule(
      State128 plaintext, std::span<const RoundKey128> schedule,
      unsigned rounds, TraceSink* sink = nullptr) const;

  /// 32 S-Box + 32 PermBits lookups per round.
  [[nodiscard]] static constexpr unsigned accesses_per_round() noexcept {
    return 64;
  }

 private:
  State128 encrypt_with_keys(State128 plaintext, const RoundKey128* rks,
                             unsigned rounds, TraceSink* sink) const;

  TableLayout layout_;
  std::uint8_t sbox_table_[16];
  /// PERM[s][v] = P128 applied to v << 4s, as (hi, lo) contributions.
  std::uint64_t perm_hi_[32][16];
  std::uint64_t perm_lo_[32][16];
};

}  // namespace grinch::gift
