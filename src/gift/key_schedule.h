// GIFT key schedule (shared by GIFT-64 and GIFT-128).
//
// The 128-bit key state K = k7||k6||...||k0 (16-bit words) is updated each
// round by
//
//   (k7, k6, ..., k1, k0)  <-  (k1 >>> 2, k0 >>> 12, k7, k6, ..., k2)
//
// i.e. a 32-bit right rotation of the whole state with the two wrapped
// words additionally rotated locally — exactly the "UpdateKey" box in
// Fig. 1 of the GRINCH paper.  GIFT-64 extracts the round key U||V from
// (k1, k0); GIFT-128 from (k5||k4, k1||k0).
//
// Beyond the plain schedule, the attack library needs to know *which
// master-key bit* each round-key bit is (GRINCH recovers two round-key
// bits per attacked segment and must write them into the right master-key
// positions).  KeyBitOrigins runs the schedule symbolically to provide
// that mapping.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/key128.h"

namespace grinch::gift {

/// GIFT-64 round key: V_i XORs into state bit 4i, U_i into bit 4i+1.
struct RoundKey64 {
  std::uint16_t u = 0;
  std::uint16_t v = 0;
};

/// GIFT-128 round key: V_i XORs into state bit 4i+1, U_i into bit 4i+2.
struct RoundKey128 {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
};

/// Advances the key state by one round (spec "UpdateKey").
[[nodiscard]] Key128 update_key_state(const Key128& k) noexcept;

/// Inverse of update_key_state (used by decryption tests).
[[nodiscard]] Key128 revert_key_state(const Key128& k) noexcept;

/// Extracts the GIFT-64 round key from the current key state.
[[nodiscard]] RoundKey64 extract_round_key64(const Key128& k) noexcept;

/// Extracts the GIFT-128 round key from the current key state.
[[nodiscard]] RoundKey128 extract_round_key128(const Key128& k) noexcept;

/// Precomputed schedule: round keys plus per-round key states.
class KeySchedule {
 public:
  /// Expands `key` for `rounds` rounds.
  KeySchedule(const Key128& key, unsigned rounds);

  [[nodiscard]] unsigned rounds() const noexcept {
    return static_cast<unsigned>(states_.size());
  }

  /// Key state at the start of (0-based) round `r`.
  [[nodiscard]] const Key128& state(unsigned r) const { return states_.at(r); }

  [[nodiscard]] RoundKey64 round_key64(unsigned r) const {
    return extract_round_key64(states_.at(r));
  }
  [[nodiscard]] RoundKey128 round_key128(unsigned r) const {
    return extract_round_key128(states_.at(r));
  }

 private:
  std::vector<Key128> states_;
};

/// Symbolic schedule: for every round, the master-key bit index that each
/// key-state bit position holds.
class KeyBitOrigins {
 public:
  explicit KeyBitOrigins(unsigned rounds);

  [[nodiscard]] unsigned rounds() const noexcept {
    return static_cast<unsigned>(origins_.size());
  }

  /// Master-key bit held at key-state bit `pos` at round `r`.
  [[nodiscard]] unsigned state_bit_origin(unsigned r, unsigned pos) const {
    return origins_.at(r)[pos];
  }

  /// Master-key bit feeding GIFT-64 round-key bit U_i of round `r`.
  [[nodiscard]] unsigned u64_origin(unsigned r, unsigned i) const {
    return state_bit_origin(r, 16 + i);
  }

  /// Master-key bit feeding GIFT-64 round-key bit V_i of round `r`.
  [[nodiscard]] unsigned v64_origin(unsigned r, unsigned i) const {
    return state_bit_origin(r, i);
  }

  /// Master-key bit feeding GIFT-128 round-key bit U_i of round `r`.
  [[nodiscard]] unsigned u128_origin(unsigned r, unsigned i) const {
    return state_bit_origin(r, 64 + i);
  }

  /// Master-key bit feeding GIFT-128 round-key bit V_i of round `r`.
  [[nodiscard]] unsigned v128_origin(unsigned r, unsigned i) const {
    return state_bit_origin(r, i);
  }

 private:
  std::vector<std::array<std::uint8_t, 128>> origins_;
};

}  // namespace grinch::gift
