// Constant-time bitsliced GIFT-64 — the canonical mitigation for the
// whole attack class this repository studies.
//
// The state is held as four 16-bit *bit-planes* (plane b holds bit b of
// every segment).  SubCells evaluates the S-Box as its algebraic normal
// form (ANF, derived mechanically from the table at construction) with
// AND/XOR on whole planes: no memory access depends on secret data, so
// there is nothing for a cache attack to observe.  PermBits becomes a
// per-plane 16-bit permutation because GIFT's permutation preserves the
// bit-in-segment residue (i mod 4) — the same property the attack
// exploits elsewhere pays off for the defender here.
//
// Functional equality with the spec implementation is asserted in
// tests/gift/bitslice_test.cpp; the countermeasure evaluation treats it
// as "protection 3".
#pragma once

#include <array>
#include <cstdint>

#include "common/key128.h"

namespace grinch::gift {

/// The four 16-bit bit-planes of a 64-bit GIFT state.
struct BitPlanes {
  std::array<std::uint16_t, 4> plane{};

  friend constexpr bool operator==(const BitPlanes&, const BitPlanes&) =
      default;
};

/// Splits a packed 64-bit state into bit-planes (data-independent time).
[[nodiscard]] BitPlanes to_planes(std::uint64_t state) noexcept;

/// Packs bit-planes back into the 64-bit state representation.
[[nodiscard]] std::uint64_t from_planes(const BitPlanes& planes) noexcept;

class BitslicedGift64 {
 public:
  BitslicedGift64();

  /// Constant-time encryption, bit-identical to Gift64::encrypt.
  [[nodiscard]] std::uint64_t encrypt(std::uint64_t plaintext,
                                      const Key128& key) const;

  /// One bitsliced round (exposed for tests).
  [[nodiscard]] BitPlanes round(const BitPlanes& state, std::uint16_t u,
                                std::uint16_t v,
                                unsigned round_index) const;

  /// ANF monomial masks of output bit b: the b-th entry lists, for each
  /// subset m of input bits (bit i of `m` = input plane i), whether the
  /// monomial Π_{i∈m} x_i appears.  Exposed for the algebraic tests.
  [[nodiscard]] const std::array<std::uint16_t, 4>& anf() const noexcept {
    return anf_;
  }

 private:
  /// SubCells on planes via ANF evaluation (XOR of ANDed plane subsets).
  [[nodiscard]] BitPlanes sub_cells(const BitPlanes& in) const noexcept;
  /// PermBits as four independent 16-bit plane permutations.
  [[nodiscard]] BitPlanes perm_bits(const BitPlanes& in) const noexcept;

  std::array<std::uint16_t, 4> anf_{};  ///< anf_[b] bit m = coeff of x^m
  std::array<std::array<std::uint8_t, 16>, 4> plane_perm_{};  // sigma_b
};

}  // namespace grinch::gift
