#include "gift/key_schedule.h"

#include "common/bits.h"

namespace grinch::gift {

Key128 update_key_state(const Key128& k) noexcept {
  Key128 next;
  // (k7..k0) <- (k1>>>2, k0>>>12, k7, k6, k5, k4, k3, k2)
  for (unsigned w = 0; w < 6; ++w) next = next.with_word16(w, k.word16(w + 2));
  next = next.with_word16(
      6, static_cast<std::uint16_t>(rotr(k.word16(0), 12, 16)));
  next = next.with_word16(
      7, static_cast<std::uint16_t>(rotr(k.word16(1), 2, 16)));
  return next;
}

Key128 revert_key_state(const Key128& k) noexcept {
  Key128 prev;
  for (unsigned w = 0; w < 6; ++w) prev = prev.with_word16(w + 2, k.word16(w));
  prev = prev.with_word16(
      0, static_cast<std::uint16_t>(rotl(k.word16(6), 12, 16)));
  prev = prev.with_word16(
      1, static_cast<std::uint16_t>(rotl(k.word16(7), 2, 16)));
  return prev;
}

RoundKey64 extract_round_key64(const Key128& k) noexcept {
  return RoundKey64{k.word16(1), k.word16(0)};
}

RoundKey128 extract_round_key128(const Key128& k) noexcept {
  const std::uint32_t u =
      (static_cast<std::uint32_t>(k.word16(5)) << 16) | k.word16(4);
  const std::uint32_t v =
      (static_cast<std::uint32_t>(k.word16(1)) << 16) | k.word16(0);
  return RoundKey128{u, v};
}

KeySchedule::KeySchedule(const Key128& key, unsigned rounds) {
  states_.reserve(rounds);
  Key128 k = key;
  for (unsigned r = 0; r < rounds; ++r) {
    states_.push_back(k);
    k = update_key_state(k);
  }
}

KeyBitOrigins::KeyBitOrigins(unsigned rounds) {
  origins_.reserve(rounds);
  std::array<std::uint8_t, 128> idx{};
  for (unsigned i = 0; i < 128; ++i) idx[i] = static_cast<std::uint8_t>(i);

  auto rotate_word_right = [](std::array<std::uint8_t, 128>& a, unsigned word,
                              unsigned r) {
    // Right-rotating a 16-bit word by r means new bit j = old bit (j+r)%16.
    std::array<std::uint8_t, 16> tmp{};
    for (unsigned j = 0; j < 16; ++j) tmp[j] = a[16 * word + (j + r) % 16];
    for (unsigned j = 0; j < 16; ++j) a[16 * word + j] = tmp[j];
  };

  for (unsigned r = 0; r < rounds; ++r) {
    origins_.push_back(idx);
    std::array<std::uint8_t, 128> next{};
    for (unsigned w = 0; w < 6; ++w)
      for (unsigned j = 0; j < 16; ++j)
        next[16 * w + j] = idx[16 * (w + 2) + j];
    for (unsigned j = 0; j < 16; ++j) {
      next[16 * 6 + j] = idx[16 * 0 + j];
      next[16 * 7 + j] = idx[16 * 1 + j];
    }
    rotate_word_right(next, 6, 12);
    rotate_word_right(next, 7, 2);
    idx = next;
  }
}

}  // namespace grinch::gift
