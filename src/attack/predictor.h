// Attacker-side state prediction.
//
// GRINCH's central observation: GIFT's first round adds no key material,
// so the attacker — who chose the plaintext — can compute the complete
// *pre-key* state entering the monitored round.  For deeper stages the
// already-recovered round keys extend the computation.  The monitored
// S-Box index of segment s is then
//
//     index_s = n_s XOR (u_s << 1 | v_s)
//
// with n_s the known pre-key nibble and (u_s, v_s) the two unknown round
// key bits — which is exactly what candidate elimination inverts.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "gift/key_schedule.h"

namespace grinch::attack {

/// State entering the AddRoundKey of (0-based) cipher round `stage`,
/// i.e. PermBits(SubCells(state_stage)) XOR round-constant(stage); its
/// nibbles are the monitored round's S-Box indices before the key XOR.
[[nodiscard]] std::uint64_t pre_key_state(
    std::uint64_t plaintext, std::span<const gift::RoundKey64> known_round_keys,
    unsigned stage);

/// The 16 pre-key nibbles n_s of the monitored round (round `stage`+1's
/// S-Box inputs minus the unknown key bits).
[[nodiscard]] std::array<unsigned, 16> pre_key_nibbles(
    std::uint64_t plaintext, std::span<const gift::RoundKey64> known_round_keys,
    unsigned stage);

/// Folds the round constant of round `round_index` into segment `t`'s
/// pre-key nibble (constants touch only bit 3 of segments 0..5 and 15).
[[nodiscard]] unsigned constant_nibble_contribution(unsigned round_index,
                                                    unsigned segment);

}  // namespace grinch::attack
