#include "attack/trace_driven.h"

#include <cassert>

namespace grinch::attack {

unsigned eliminate_with_trace(std::array<CandidateSet, 16>& masks,
                              const std::array<unsigned, 16>& pre_key_nibbles,
                              const target::LineSet& hits) {
  assert(hits.size() == 16);
  unsigned removed = 0;

  // Iterate to a fixpoint: resolving a later segment can unlock an
  // earlier HIT constraint and vice versa.
  for (;;) {
    unsigned removed_this_pass = 0;

    for (unsigned s = 1; s < 16; ++s) {
      // Indices of earlier segments that are already resolved, and
      // whether *all* earlier segments are resolved (needed for the HIT
      // direction: "equals some earlier index" only eliminates when the
      // full earlier index set is known).
      bool earlier_all_resolved = true;
      std::array<bool, 16> earlier_index{};
      for (unsigned j = 0; j < s; ++j) {
        if (masks[j].resolved()) {
          earlier_index[(pre_key_nibbles[j] ^ masks[j].value()) & 0xF] = true;
        } else {
          earlier_all_resolved = false;
        }
      }

      CandidateSet& set = masks[s];
      if (set.resolved()) continue;
      CandidateSet trial = set;
      for (unsigned c = 0; c < 4; ++c) {
        if (!trial.contains(c)) continue;
        const unsigned index = (pre_key_nibbles[s] ^ c) & 0xF;
        if (!hits[s]) {
          // MISS: the index cannot equal any earlier index — eliminating
          // against the *known* ones is sound regardless of the rest.
          if (earlier_index[index]) trial.remove(c);
        } else if (earlier_all_resolved) {
          // HIT: the index must equal one of the (fully known) earlier
          // indices.
          if (!earlier_index[index]) trial.remove(c);
        }
      }
      if (trial.empty()) continue;  // contradictory trace: noise, skip
      for (unsigned c = 0; c < 4; ++c) {
        if (set.contains(c) && !trial.contains(c)) ++removed_this_pass;
      }
      set = trial;
    }

    removed += removed_this_pass;
    if (removed_this_pass == 0) return removed;
  }
}

}  // namespace grinch::attack
