#include "attack/present_attack.h"

#include "common/bits.h"
#include "present/present.h"

namespace grinch::attack {

unsigned NibbleCandidates::size() const noexcept {
  unsigned n = 0;
  for (unsigned v = 0; v < 16; ++v) n += contains(v);
  return n;
}

unsigned NibbleCandidates::value() const noexcept {
  for (unsigned v = 0; v < 16; ++v) {
    if (contains(v)) return v;
  }
  return 0;
}

Present80Attack::Present80Attack(soc::Present80DirectProbePlatform& platform,
                                 const PresentAttackConfig& config)
    : platform_(&platform), config_(config), rng_(config.seed) {}

std::optional<Key128> Present80Attack::search_low_bits(
    std::uint64_t round_key0, std::uint64_t plaintext,
    std::uint64_t ciphertext) const {
  // RK0 = key-register bits 79..16; enumerate bits 15..0.
  for (std::uint64_t low = 0; low < (1u << 16); ++low) {
    Key128 key;
    key.hi = round_key0 >> 48;                       // bits 79..64
    key.lo = (round_key0 << 16) | low;               // bits 63..0
    if (present::Present80::encrypt(plaintext, key) == ciphertext) {
      return key;
    }
  }
  return std::nullopt;
}

PresentAttackResult Present80Attack::run() {
  PresentAttackResult result;
  std::array<NibbleCandidates, 16> candidates{};

  auto all_resolved = [&] {
    for (const auto& c : candidates) {
      if (!c.resolved()) return false;
    }
    return true;
  };

  std::uint64_t known_pt = 0, known_ct = 0;
  while (!all_resolved()) {
    if (result.cache_encryptions >= config_.max_encryptions) return result;
    const std::uint64_t pt = rng_.block64();
    const soc::Observation obs = platform_->observe(pt);
    ++result.cache_encryptions;
    known_pt = pt;
    known_ct = obs.ciphertext;

    // Segment s of round 0 accesses index nibble_s(pt) ^ k_s: every
    // absent index eliminates the corresponding key-nibble candidate, in
    // all 16 segments at once.
    for (unsigned s = 0; s < 16; ++s) {
      NibbleCandidates trial = candidates[s];
      for (unsigned v = 0; v < 16; ++v) {
        if (!trial.contains(v)) continue;
        const unsigned index = (nibble(pt, s) ^ v) & 0xF;
        if (!obs.present[index]) trial.remove(v);
      }
      if (trial.empty()) {
        candidates[s].reset();  // noisy observation
      } else {
        candidates[s] = trial;
      }
    }
  }

  for (unsigned s = 0; s < 16; ++s) {
    result.round_key0 |= static_cast<std::uint64_t>(candidates[s].value())
                         << (4 * s);
  }
  result.round_key_recovered = true;

  const auto key = search_low_bits(result.round_key0, known_pt, known_ct);
  result.search_trials = 1u << 16;
  if (!key) return result;  // RK0 must have been wrong (noise)
  result.recovered_key = *key;
  result.success = true;
  return result;
}

}  // namespace grinch::attack
