#include "attack/key_recovery.h"

#include <cassert>

namespace grinch::attack {

Key128 assemble_master_key(std::span<const gift::RoundKey64> round_keys) {
  assert(round_keys.size() == 4 &&
         "GIFT-64 uses 32 key bits per round; 4 rounds cover the key");
  const gift::KeyBitOrigins origins{4};
  Key128 key;
  for (unsigned a = 0; a < 4; ++a) {
    for (unsigned i = 0; i < 16; ++i) {
      key = key.with_bit(origins.u64_origin(a, i),
                         (round_keys[a].u >> i) & 1u);
      key = key.with_bit(origins.v64_origin(a, i),
                         (round_keys[a].v >> i) & 1u);
    }
  }
  return key;
}

}  // namespace grinch::attack
