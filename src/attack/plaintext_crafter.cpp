#include "attack/plaintext_crafter.h"

#include <cassert>

#include "common/bits.h"
#include "gift/gift64.h"

namespace grinch::attack {

std::uint64_t PlaintextCrafter::craft_state(const TargetBits& target) {
  std::uint64_t state = 0;
  for (unsigned i = 0; i < 16; ++i) {
    unsigned value;
    if (i == target.seg_a) {
      value = target.list_a[rng_->uniform(target.list_a.size())];
    } else if (i == target.seg_b) {
      value = target.list_b[rng_->uniform(target.list_b.size())];
    } else {
      value = rng_->nibble();
    }
    state = with_nibble(state, i, value);
  }
  return state;
}

std::uint64_t invert_to_plaintext(
    std::uint64_t round_input, std::span<const gift::RoundKey64> round_keys,
    unsigned stage) {
  assert(round_keys.size() >= stage);
  std::uint64_t state = round_input;
  for (unsigned r = stage; r-- > 0;) {
    state = gift::Gift64::inverse_round_function(state, round_keys[r], r);
  }
  return state;
}

std::uint64_t PlaintextCrafter::craft_plaintext(
    const TargetBits& target,
    std::span<const gift::RoundKey64> known_round_keys, unsigned stage) {
  const std::uint64_t state = craft_state(target);
  return invert_to_plaintext(state, known_round_keys, stage);
}

}  // namespace grinch::attack
