// Trace-driven elimination (our extension; the paper's taxonomy cites
// Acıiçmez & Koç's trace-driven attacks as ref [10]).
//
// A power trace reveals, per S-Box access, whether it HIT or MISSED.
// With the monitored lines flushed right before the monitored round,
// access `s` (segments are processed in order) hits exactly when its
// index collides with an *earlier* access of the same round:
//
//   MISS at s  =>  index_s differs from index_j for every j < s
//   HIT  at s  =>  index_s equals index_j for some   j < s
//
// Both directions turn into sound candidate eliminations once the earlier
// segments are resolved; processed in segment order they cascade.  A
// trace observation is strictly more informative than the end-of-round
// presence set (which is its unordered projection), so trace-driven
// GRINCH needs fewer encryptions.
//
// Soundness requires that a hit implies an earlier same-round access:
// no prefetcher (which installs lines no one demanded) and a flush
// before the round.  The platform only emits traces under those
// conditions.
#pragma once

#include <array>

#include "attack/eliminator.h"

namespace grinch::attack {

/// Applies the hit/miss constraints of one trace to the candidate sets.
/// `pre_key_nibbles` are the monitored round's known pre-key values,
/// `hits[s]` the per-access outcome.  Returns candidates removed.
unsigned eliminate_with_trace(std::array<CandidateSet, 16>& masks,
                              const std::array<unsigned, 16>& pre_key_nibbles,
                              const target::LineSet& hits);

}  // namespace grinch::attack
