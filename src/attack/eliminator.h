// GRINCH Step 3 — candidate elimination.
//
// Each monitored segment has four candidates for its two unknown round-key
// bits (u, v).  A candidate c predicts S-Box index n_s XOR c; if the cache
// line holding that index was *absent* from the probe observation, the
// candidate is impossible (the victim demonstrably did not access it).
// The true candidate can never be eliminated by a clean observation — its
// index was accessed by construction — so the sets shrink monotonically
// to the truth.  A noisy observation that would empty a set triggers a
// reset of that segment (counted, so harnesses can report noise).
#pragma once

#include <array>
#include <cstdint>

#include "gift/key_schedule.h"
#include "target/line_set.h"

namespace grinch::attack {

/// Bitmask over the four (u,v) candidates; bit c set = candidate c alive.
/// Encoding: c = (u << 1) | v.
class CandidateSet {
 public:
  [[nodiscard]] bool contains(unsigned c) const noexcept {
    return (mask_ >> c) & 1u;
  }
  void remove(unsigned c) noexcept {
    mask_ &= static_cast<std::uint8_t>(~(1u << c));
  }
  void reset() noexcept { mask_ = 0xF; }
  [[nodiscard]] unsigned size() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return mask_ == 0; }
  [[nodiscard]] bool resolved() const noexcept { return size() == 1; }
  /// The sole surviving candidate. Precondition: resolved().
  [[nodiscard]] unsigned value() const noexcept;
  [[nodiscard]] std::uint8_t mask() const noexcept { return mask_; }
  void set_mask(std::uint8_t m) noexcept { mask_ = m & 0xF; }

 private:
  std::uint8_t mask_ = 0xF;
};

/// Direct elimination on a standalone candidate set: removes candidates
/// whose predicted line was absent.  A result that would empty the set is
/// treated as noise: the set resets and `restarts` (if given) increments.
/// Returns candidates removed.
unsigned eliminate_candidates(CandidateSet& set, unsigned pre_key_nibble,
                              const target::LineSet& present,
                              unsigned* restarts = nullptr);

/// Per-candidate absent-vote counters for noise-robust elimination.
using AbsentVotes = std::array<std::uint8_t, 4>;

/// Noise-robust elimination: a candidate is only removed once its
/// predicted line has been observed absent `threshold` times *without an
/// intervening presence* (a presence resets its counter).  Third-party
/// cache traffic evicts lines at random, so single absences misfire;
/// requiring consecutive-ish evidence drops the wrong-elimination
/// probability exponentially in the threshold.  threshold == 1 is exactly
/// eliminate_candidates().  Returns candidates removed.
unsigned eliminate_candidates_voted(CandidateSet& set, AbsentVotes& votes,
                                    unsigned pre_key_nibble,
                                    const target::LineSet& present,
                                    unsigned threshold,
                                    unsigned* restarts = nullptr);

/// True when every segment's candidate set is a singleton.
[[nodiscard]] bool all_resolved(const std::array<CandidateSet, 16>& masks);

/// Product of the surviving candidate counts.
[[nodiscard]] std::uint64_t ambiguity(const std::array<CandidateSet, 16>& masks);

/// Assembles the round key from fully resolved masks.
/// Precondition: all_resolved(masks).
[[nodiscard]] gift::RoundKey64 round_key_from(
    const std::array<CandidateSet, 16>& masks);

class CandidateEliminator {
 public:
  /// Eliminates candidates of segment `s` given its pre-key nibble and the
  /// per-index line-presence vector.  Returns candidates removed.
  unsigned update_segment(unsigned s, unsigned pre_key_nibble,
                          const target::LineSet& present);

  /// update_segment over all 16 segments (joint exploitation mode).
  unsigned update_all(const std::array<unsigned, 16>& pre_key_nibbles,
                      const target::LineSet& present);

  [[nodiscard]] const CandidateSet& candidates(unsigned s) const {
    return sets_[s];
  }
  [[nodiscard]] CandidateSet& candidates(unsigned s) { return sets_[s]; }
  [[nodiscard]] bool resolved(unsigned s) const { return sets_[s].resolved(); }
  [[nodiscard]] bool all_resolved() const noexcept;

  /// Product of surviving candidate counts (search-space size left).
  [[nodiscard]] std::uint64_t ambiguity() const noexcept;

  /// Times a noisy observation emptied a segment and forced a reset.
  [[nodiscard]] unsigned restarts() const noexcept { return restarts_; }

  void reset();

  /// Assembles the recovered round key. Precondition: all_resolved().
  /// Candidate c of segment s encodes u_s = c>>1, v_s = c&1.
  [[nodiscard]] gift::RoundKey64 round_key() const;

 private:
  std::array<CandidateSet, 16> sets_{};
  unsigned restarts_ = 0;
};

}  // namespace grinch::attack
