// GRINCH Step 1a — "Set target bits" (Algorithm 1 of the paper).
//
// For a chosen segment `s` of the monitored round, the two round-key bits
// XORed into that segment land on state bits 4s (V_s) and 4s+1 (U_s).
// Walking the PermBits layer backwards locates the S-Box-output bits that
// feed those positions; walking the S-Box backwards lists every S-Box
// *input* value that forces each of those output bits to 1.  Crafted
// inputs drawn from those lists pin the target segment's two key-facing
// bits to 1, so the surviving S-Box index directly reveals the key bits
// (Key[i] <- NOT Index[a], paper Step 4).
#pragma once

#include <vector>

namespace grinch::attack {

/// Output of Algorithm 1 for one target segment.
struct TargetBits {
  unsigned segment = 0;  ///< monitored-round segment (0..15)

  /// Positions (0..63) in the S-Box-layer output of the *previous* round
  /// that feed state bits 4s and 4s+1 through PermBits.
  unsigned bit_a = 0;  ///< feeds bit 4s   (XORed with V_s)
  unsigned bit_b = 0;  ///< feeds bit 4s+1 (XORed with U_s)

  /// Segments of the previous round's input that produce bit_a / bit_b.
  unsigned seg_a = 0;
  unsigned seg_b = 0;

  /// S-Box inputs whose output has a 1 at bit (bit_a % 4) / (bit_b % 4).
  std::vector<unsigned> list_a;
  std::vector<unsigned> list_b;
};

/// Algorithm 1: derives the constraint lists for `segment`.
[[nodiscard]] TargetBits set_target_bits(unsigned segment);

}  // namespace grinch::attack
