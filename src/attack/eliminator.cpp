#include "attack/eliminator.h"

#include <array>
#include <bit>
#include <cassert>

namespace grinch::attack {
namespace {

// Hard elimination as a table lookup: candidate c of segment nibble n
// predicts S-Box index (n ^ c) & 0xF, so all four candidates land in the
// aligned 4-index group n & ~3 and the keep mask is a fixed XOR-permute
// of that group's presence bits.  kKeepLut[n & 3][presence4] is that
// permute, precomputed for all 4 x 16 inputs.
constexpr std::array<std::array<std::uint8_t, 16>, 4> make_keep_lut() {
  std::array<std::array<std::uint8_t, 16>, 4> lut{};
  for (unsigned low2 = 0; low2 < 4; ++low2) {
    for (unsigned presence = 0; presence < 16; ++presence) {
      std::uint8_t keep = 0;
      for (unsigned c = 0; c < 4; ++c) {
        if ((presence >> (low2 ^ c)) & 1u) {
          keep = static_cast<std::uint8_t>(keep | (1u << c));
        }
      }
      lut[low2][presence] = keep;
    }
  }
  return lut;
}

constexpr auto kKeepLut = make_keep_lut();

}  // namespace

unsigned CandidateSet::size() const noexcept {
  return static_cast<unsigned>(std::popcount(mask()));
}

unsigned CandidateSet::value() const noexcept {
  assert(resolved());
  return static_cast<unsigned>(std::countr_zero(mask()));
}

unsigned eliminate_candidates(CandidateSet& set, unsigned pre_key_nibble,
                              const target::LineSet& present,
                              unsigned* restarts) {
  assert(present.size() == 16);
  const std::uint8_t before = set.mask();
  const unsigned presence4 =
      static_cast<unsigned>(present.word() >> (pre_key_nibble & ~3u)) & 0xFu;
  const std::uint8_t keep = kKeepLut[pre_key_nibble & 3u][presence4];
  const auto after = static_cast<std::uint8_t>(before & keep);
  if (after == 0) {
    // Every candidate contradicted: the observation must be noisy (e.g.
    // the probe landed before the monitored access).  Start the segment
    // over rather than committing to a wrong elimination.
    set.reset();
    if (restarts) ++*restarts;
    return 0;
  }
  set.set_mask(after);
  return static_cast<unsigned>(
      std::popcount(static_cast<std::uint8_t>(before & ~after)));
}

unsigned eliminate_candidates_voted(CandidateSet& set, AbsentVotes& votes,
                                    unsigned pre_key_nibble,
                                    const target::LineSet& present,
                                    unsigned threshold,
                                    unsigned* restarts) {
  assert(present.size() == 16);
  assert(threshold >= 1);
  const std::uint8_t before = set.mask();
  const std::uint64_t word = present.word();
  CandidateSet trial = set;
  for (unsigned c = 0; c < 4; ++c) {
    if (!trial.contains(c)) continue;
    const unsigned index = (pre_key_nibble ^ c) & 0xF;
    if ((word >> index) & 1u) {
      votes[c] = 0;  // evidence of presence clears suspicion
    } else if (++votes[c] >= threshold) {
      trial.remove(c);
    }
  }
  if (trial.empty()) {
    set.reset();
    votes = AbsentVotes{};
    if (restarts) ++*restarts;
    return 0;
  }
  set = trial;
  return static_cast<unsigned>(
      std::popcount(static_cast<std::uint8_t>(before & ~trial.mask())));
}

bool all_resolved(const std::array<CandidateSet, 16>& masks) {
  for (const auto& set : masks) {
    if (!set.resolved()) return false;
  }
  return true;
}

std::uint64_t ambiguity(const std::array<CandidateSet, 16>& masks) {
  std::uint64_t product = 1;
  for (const auto& set : masks) product *= set.size();
  return product;
}

gift::RoundKey64 round_key_from(const std::array<CandidateSet, 16>& masks) {
  assert(all_resolved(masks));
  gift::RoundKey64 rk;
  for (unsigned s = 0; s < 16; ++s) {
    const unsigned c = masks[s].value();
    rk.u |= static_cast<std::uint16_t>(((c >> 1) & 1u) << s);
    rk.v |= static_cast<std::uint16_t>((c & 1u) << s);
  }
  return rk;
}

unsigned CandidateEliminator::update_segment(unsigned s,
                                             unsigned pre_key_nibble,
                                             const target::LineSet& present) {
  assert(s < 16);
  return eliminate_candidates(sets_[s], pre_key_nibble, present, &restarts_);
}

unsigned CandidateEliminator::update_all(
    const std::array<unsigned, 16>& pre_key_nibbles,
    const target::LineSet& present) {
  unsigned removed = 0;
  for (unsigned s = 0; s < 16; ++s) {
    removed += update_segment(s, pre_key_nibbles[s], present);
  }
  return removed;
}

bool CandidateEliminator::all_resolved() const noexcept {
  return attack::all_resolved(sets_);
}

std::uint64_t CandidateEliminator::ambiguity() const noexcept {
  return attack::ambiguity(sets_);
}

void CandidateEliminator::reset() {
  for (auto& set : sets_) set.reset();
  restarts_ = 0;
}

gift::RoundKey64 CandidateEliminator::round_key() const {
  return round_key_from(sets_);
}

}  // namespace grinch::attack
