#include "attack/eliminator.h"

#include <cassert>

namespace grinch::attack {

unsigned CandidateSet::size() const noexcept {
  unsigned n = 0;
  for (unsigned c = 0; c < 4; ++c) n += contains(c);
  return n;
}

unsigned CandidateSet::value() const noexcept {
  assert(resolved());
  for (unsigned c = 0; c < 4; ++c) {
    if (contains(c)) return c;
  }
  return 0;
}

unsigned eliminate_candidates(CandidateSet& set, unsigned pre_key_nibble,
                              const target::LineSet& present,
                              unsigned* restarts) {
  assert(present.size() == 16);
  const std::uint8_t before = set.mask();
  CandidateSet trial = set;
  for (unsigned c = 0; c < 4; ++c) {
    if (!trial.contains(c)) continue;
    const unsigned index = (pre_key_nibble ^ c) & 0xF;
    if (!present[index]) trial.remove(c);
  }
  if (trial.empty()) {
    // Every candidate contradicted: the observation must be noisy (e.g.
    // the probe landed before the monitored access).  Start the segment
    // over rather than committing to a wrong elimination.
    set.reset();
    if (restarts) ++*restarts;
    return 0;
  }
  set = trial;
  unsigned removed = 0;
  for (unsigned c = 0; c < 4; ++c) {
    removed += ((before >> c) & 1u) && !set.contains(c);
  }
  return removed;
}

unsigned eliminate_candidates_voted(CandidateSet& set, AbsentVotes& votes,
                                    unsigned pre_key_nibble,
                                    const target::LineSet& present,
                                    unsigned threshold,
                                    unsigned* restarts) {
  assert(present.size() == 16);
  assert(threshold >= 1);
  const std::uint8_t before = set.mask();
  CandidateSet trial = set;
  for (unsigned c = 0; c < 4; ++c) {
    if (!trial.contains(c)) continue;
    const unsigned index = (pre_key_nibble ^ c) & 0xF;
    if (present[index]) {
      votes[c] = 0;  // evidence of presence clears suspicion
    } else if (++votes[c] >= threshold) {
      trial.remove(c);
    }
  }
  if (trial.empty()) {
    set.reset();
    votes = AbsentVotes{};
    if (restarts) ++*restarts;
    return 0;
  }
  set = trial;
  unsigned removed = 0;
  for (unsigned c = 0; c < 4; ++c) {
    removed += ((before >> c) & 1u) && !set.contains(c);
  }
  return removed;
}

bool all_resolved(const std::array<CandidateSet, 16>& masks) {
  for (const auto& set : masks) {
    if (!set.resolved()) return false;
  }
  return true;
}

std::uint64_t ambiguity(const std::array<CandidateSet, 16>& masks) {
  std::uint64_t product = 1;
  for (const auto& set : masks) product *= set.size();
  return product;
}

gift::RoundKey64 round_key_from(const std::array<CandidateSet, 16>& masks) {
  assert(all_resolved(masks));
  gift::RoundKey64 rk;
  for (unsigned s = 0; s < 16; ++s) {
    const unsigned c = masks[s].value();
    rk.u |= static_cast<std::uint16_t>(((c >> 1) & 1u) << s);
    rk.v |= static_cast<std::uint16_t>((c & 1u) << s);
  }
  return rk;
}

unsigned CandidateEliminator::update_segment(unsigned s,
                                             unsigned pre_key_nibble,
                                             const target::LineSet& present) {
  assert(s < 16);
  return eliminate_candidates(sets_[s], pre_key_nibble, present, &restarts_);
}

unsigned CandidateEliminator::update_all(
    const std::array<unsigned, 16>& pre_key_nibbles,
    const target::LineSet& present) {
  unsigned removed = 0;
  for (unsigned s = 0; s < 16; ++s) {
    removed += update_segment(s, pre_key_nibbles[s], present);
  }
  return removed;
}

bool CandidateEliminator::all_resolved() const noexcept {
  return attack::all_resolved(sets_);
}

std::uint64_t CandidateEliminator::ambiguity() const noexcept {
  return attack::ambiguity(sets_);
}

void CandidateEliminator::reset() {
  for (auto& set : sets_) set.reset();
  restarts_ = 0;
}

gift::RoundKey64 CandidateEliminator::round_key() const {
  return round_key_from(sets_);
}

}  // namespace grinch::attack
