#include "attack/predictor.h"

#include <cassert>

#include "common/bits.h"
#include "gift/constants.h"
#include "gift/gift64.h"
#include "gift/permutation.h"
#include "gift/sbox.h"

namespace grinch::attack {

unsigned constant_nibble_contribution(unsigned round_index, unsigned segment) {
  const std::uint8_t c = gift::round_constant(round_index);
  unsigned contribution = 0;
  // c_t -> state bit 4t+3 for t = 0..5; the fixed '1' -> bit 63 (seg 15).
  if (segment < 6 && ((c >> segment) & 1u)) contribution = 0x8;
  if (segment == 15) contribution ^= 0x8;
  return contribution;
}

std::uint64_t pre_key_state(std::uint64_t plaintext,
                            std::span<const gift::RoundKey64> known_round_keys,
                            unsigned stage) {
  assert(known_round_keys.size() >= stage);
  // Advance through the fully-known rounds 0 .. stage-1.
  std::uint64_t state = plaintext;
  for (unsigned r = 0; r < stage; ++r) {
    state = gift::Gift64::round_function(state, known_round_keys[r], r);
  }
  // Round `stage` up to (but excluding) the key XOR.
  state = gift::gift_sbox().apply_state64(state);
  state = gift::gift64_permutation().apply64(state);
  state = gift::add_constant64(state, gift::round_constant(stage));
  return state;
}

std::array<unsigned, 16> pre_key_nibbles(
    std::uint64_t plaintext, std::span<const gift::RoundKey64> known_round_keys,
    unsigned stage) {
  const std::uint64_t state = pre_key_state(plaintext, known_round_keys, stage);
  std::array<unsigned, 16> out{};
  for (unsigned s = 0; s < 16; ++s) out[s] = nibble(state, s);
  return out;
}

}  // namespace grinch::attack
