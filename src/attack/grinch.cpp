#include "attack/grinch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "attack/cross_round.h"
#include "attack/key_recovery.h"
#include "attack/trace_driven.h"
#include "attack/plaintext_crafter.h"
#include "attack/predictor.h"
#include "attack/target_bits.h"
#include "common/bits.h"
#include "gift/gift64.h"

namespace grinch::attack {

GrinchAttack::GrinchAttack(soc::ObservationSource& source,
                           const GrinchConfig& config)
    : source_(&source),
      config_(config),
      rng_(config.seed),
      line_ids_(source.index_line_ids()) {}

unsigned GrinchAttack::line_hidden_mask() const {
  // Lines hold 16 / distinct-line-count consecutive indices; the low
  // log2(entries-per-line) index bits are invisible to the prober.  Only
  // the two key-facing bits matter for candidates.
  unsigned distinct = 0;
  for (unsigned id : line_ids_) distinct = std::max(distinct, id + 1);
  const unsigned entries_per_line = distinct ? 16 / distinct : 16;
  return (entries_per_line - 1) & 0x3;
}

bool GrinchAttack::only_line_local_ambiguity(
    const std::array<CandidateSet, 16>& masks) const {
  const unsigned hidden = line_hidden_mask();
  for (const auto& set : masks) {
    if (set.resolved()) continue;
    // All surviving pairs must differ only in hidden bits.
    unsigned reference = 4;  // sentinel
    for (unsigned c = 0; c < 4; ++c) {
      if (!set.contains(c)) continue;
      if (reference == 4) {
        reference = c;
      } else if ((c ^ reference) & ~hidden) {
        return false;  // distinguishable in principle
      }
    }
  }
  return true;
}

gift::RoundKey64 GrinchAttack::best_guess_round_key(
    const std::array<CandidateSet, 16>& masks) const {
  gift::RoundKey64 rk;
  for (unsigned s = 0; s < 16; ++s) {
    unsigned c = 0;
    for (unsigned v = 0; v < 4; ++v) {
      if (masks[s].contains(v)) {
        c = v;
        break;
      }
    }
    rk.u |= static_cast<std::uint16_t>(((c >> 1) & 1u) << s);
    rk.v |= static_cast<std::uint16_t>((c & 1u) << s);
  }
  return rk;
}

unsigned GrinchAttack::update_statistical(StageState& state, unsigned segment,
                                          unsigned pre_key_nibble,
                                          const target::LineSet& present)
    const {
  if (state.masks[segment].resolved()) return 0;
  auto& absents = state.absent_count[segment];
  for (unsigned c = 0; c < 4; ++c) {
    const unsigned index = (pre_key_nibble ^ c) & 0xF;
    absents[c] += !present[index];
  }
  const std::uint32_t n = ++state.sightings[segment];
  if (n < config_.stat_min_obs) return 0;

  // Resolve once the lowest absent count separates from the runner-up by
  // the configured margin (in sightings).
  unsigned best = 0, runner = 1;
  if (absents[runner] < absents[best]) std::swap(best, runner);
  for (unsigned c = 2; c < 4; ++c) {
    if (absents[c] < absents[best]) {
      runner = best;
      best = c;
    } else if (absents[c] < absents[runner]) {
      runner = c;
    }
  }
  // Binomial difference significance: var(absent_i - absent_j) <= n/2,
  // so a gap of stat_z * sqrt(n) is ~(stat_z * 1.4)-sigma evidence.
  const double margin = config_.stat_z * std::sqrt(static_cast<double>(n));
  if (static_cast<double>(absents[runner]) -
          static_cast<double>(absents[best]) <
      margin) {
    return 0;
  }
  for (unsigned c = 0; c < 4; ++c) {
    if (c != best) state.masks[segment].remove(c);
  }
  return 1;
}

StageReport GrinchAttack::drive_stage(unsigned stage, bool cleanup_phase) {
  StageReport report;
  CrossRoundSolver solver;
  PlaintextCrafter crafter{rng_};

  std::array<TargetBits, 16> targets{};
  for (unsigned s = 0; s < 16; ++s) targets[s] = set_target_bits(s);

  const bool solver_enabled = config_.use_cross_round;
  unsigned stall = 0;
  unsigned craft_rotation = 0;

  auto& current = stage_state_[stage];

  for (;;) {
    const bool pending_prev = stage > 0 && !stage_state_[stage - 1].resolved;
    const bool current_done = cleanup_phase || all_resolved(current.masks);

    if (!pending_prev && current_done) {
      if (!cleanup_phase && !current.resolved) {
        current.resolved = true;
        current.round_key = round_key_from(current.masks);
        exact_keys_.push_back(current.round_key);
      }
      report.success = true;
      report.round_key = cleanup_phase ? gift::RoundKey64{} : current.round_key;
      return report;
    }

    if (encryptions_used_ >= config_.max_encryptions) return report;  // drop-out

    // Step 1 — craft a plaintext.  Target the first unresolved segment of
    // this stage (paper: segments attacked sequentially); in the cleanup
    // phase rotate targets for observation diversity.
    unsigned target_segment = craft_rotation++ % 16;
    if (!cleanup_phase) {
      const unsigned hidden = line_hidden_mask();
      // Prefer a segment whose ambiguity direct elimination can still
      // reduce (candidates differing in line-visible bits); a segment
      // stuck at line-local ambiguity yields nothing more in-stage and
      // must not monopolise the plaintext budget.
      bool found = false;
      for (unsigned s = 0; s < 16 && !found; ++s) {
        const CandidateSet& set = current.masks[s];
        if (set.resolved()) continue;
        for (unsigned c = 0; c < 4 && !found; ++c) {
          if (!set.contains(c)) continue;
          for (unsigned d = c + 1; d < 4; ++d) {
            if (set.contains(d) && ((c ^ d) & ~hidden)) {
              target_segment = s;
              found = true;
              break;
            }
          }
        }
      }
      if (!found) {
        for (unsigned s = 0; s < 16; ++s) {
          if (!current.masks[s].resolved()) {
            target_segment = s;
            break;
          }
        }
      }
    }
    std::vector<gift::RoundKey64> guess_keys = exact_keys_;
    if (pending_prev) {
      guess_keys.push_back(best_guess_round_key(stage_state_[stage - 1].masks));
    }
    // guess_keys now covers rounds 0..stage-1 (exact prefix + one guess).
    assert(guess_keys.size() >= stage);
    const std::uint64_t plaintext =
        crafter.craft_plaintext(targets[target_segment], guess_keys, stage);

    // Step 2 — one monitored encryption + probe (precision-probing
    // platforms time their probe to the focused segment's access).
    source_->focus_segment(target_segment);
    const soc::Observation obs = source_->observe(plaintext, stage);
    ++encryptions_used_;
    ++report.encryptions;
    report.attacker_cycles += obs.attacker_cycles;

    unsigned progress = 0;
    bool constraint_window = false;

    // Step 3a — finish the previous stage first: the accesses of this
    // stage's monitored round (stage+1) constrain the previous round's
    // leftover candidates jointly with this round's own key bits.
    if (pending_prev) {
      CrossRoundObservation cro;
      cro.pre_key_nibbles = pre_key_nibbles(plaintext, exact_keys_, stage - 1);
      cro.present = obs.present;
      cro.next_round_index = stage;
      progress += solver.propagate_to_fixpoint(
          cro, stage_state_[stage - 1].masks, current.masks);
      constraint_window = true;
      if (all_resolved(stage_state_[stage - 1].masks)) {
        auto& prev = stage_state_[stage - 1];
        prev.resolved = true;
        prev.round_key = round_key_from(prev.masks);
        exact_keys_.push_back(prev.round_key);
      }
    } else if (!cleanup_phase) {
      // Step 3b — direct elimination on this stage's monitored round.
      const auto nibbles = pre_key_nibbles(plaintext, exact_keys_, stage);
      const bool statistical =
          config_.statistical_elimination && line_hidden_mask() == 0;
      if (config_.exploit_all_segments) {
        for (unsigned s = 0; s < 16; ++s) {
          progress += statistical
                          ? update_statistical(current, s, nibbles[s],
                                               obs.present)
                          : eliminate_candidates_voted(
                                current.masks[s], current.votes[s],
                                nibbles[s], obs.present,
                                config_.elimination_threshold,
                                &report.noise_restarts);
        }
      } else {
        progress += statistical
                        ? update_statistical(current, target_segment,
                                             nibbles[target_segment],
                                             obs.present)
                        : eliminate_candidates_voted(
                              current.masks[target_segment],
                              current.votes[target_segment],
                              nibbles[target_segment], obs.present,
                              config_.elimination_threshold,
                              &report.noise_restarts);
      }

      // Step 3b' — trace-driven augmentation: the per-access hit/miss
      // sequence (when the platform captured one) orders the presence
      // information and eliminates across segments.
      if (config_.use_trace_hits && obs.sbox_hits.size() == 16) {
        progress += eliminate_with_trace(current.masks, nibbles,
                                         obs.sbox_hits);
      }

      // Step 3c — §III-D: coarse lines (or prefetch-style co-presence)
      // leave ambiguity direct elimination cannot split; use next-round
      // accesses (when the probe window covered them) to constrain this
      // round's and the next round's candidates jointly.
      if (solver_enabled &&
          (line_hidden_mask() != 0 || config_.coarse_observations) &&
          obs.probed_after_round >= stage + 3) {
        CrossRoundObservation cro;
        cro.pre_key_nibbles = nibbles;
        cro.present = obs.present;
        cro.next_round_index = stage + 1;
        progress += solver.propagate_to_fixpoint(cro, current.masks,
                                                 stage_state_[stage + 1].masks);
        constraint_window = true;
      }
    }

    stall = progress ? 0 : stall + 1;

    // Defer unresolvable leftovers to the next stage ("assume all
    // possibilities and continue"): line-local ambiguity defers
    // immediately when no in-stage constraint source exists (or after a
    // stall when one does); coarse-observation ambiguity (prefetchers)
    // defers on stall, since which candidates are co-present is
    // data-dependent.
    if (!cleanup_phase && !pending_prev && solver_enabled &&
        !all_resolved(current.masks)) {
      const bool line_local = line_hidden_mask() != 0 &&
                              only_line_local_ambiguity(current.masks);
      const bool coarse_stuck =
          config_.coarse_observations && stall >= config_.stall_limit;
      if ((line_local && (!constraint_window || stall >= config_.stall_limit)) ||
          coarse_stuck) {
        report.deferred = true;
        return report;
      }
    }
  }
}

AttackResult GrinchAttack::run() {
  AttackResult result;
  stage_state_ = {};
  exact_keys_.clear();
  encryptions_used_ = 0;

  for (unsigned stage = 0; stage < config_.stages; ++stage) {
    StageReport report = drive_stage(stage, /*cleanup_phase=*/false);
    result.stages.push_back(report);
    if (!report.success && !report.deferred) {
      // Budget exhausted mid-stage.
      result.total_encryptions = encryptions_used_;
      return result;
    }
  }

  // Resolve leftovers of the last stage (and transitively any pending
  // chain) by monitoring one round deeper.
  if (!stage_state_[config_.stages - 1].resolved) {
    StageReport cleanup = drive_stage(config_.stages, /*cleanup_phase=*/true);
    result.stages.push_back(cleanup);
  }

  result.total_encryptions = encryptions_used_;
  for (unsigned stage = 0; stage < config_.stages; ++stage) {
    if (!stage_state_[stage].resolved) return result;  // failed
    // Retro-fit per-stage reports with the final resolution state.
    result.stages[stage].success = true;
    result.stages[stage].round_key = stage_state_[stage].round_key;
    result.round_keys.push_back(stage_state_[stage].round_key);
  }
  result.success = true;

  if (config_.stages == 4) {
    result.recovered_key = assemble_master_key(result.round_keys);
    // Self-verify against one extra encryption's ciphertext.
    const std::uint64_t check_pt = rng_.block64();
    (void)source_->observe(check_pt, 0);
    ++result.total_encryptions;
    result.key_verified =
        gift::Gift64::encrypt(check_pt, result.recovered_key) ==
        source_->last_ciphertext();
    result.success = result.key_verified;
  }
  return result;
}

}  // namespace grinch::attack
