// Cache attack on PRESENT-80 (our extension; generality of the GRINCH
// observation pipeline).
//
// PRESENT (GIFT's ISO-standardised ancestor, also table-implemented with
// a 16-entry S-Box) adds the round key *before* the S-Box layer:
//
//     round 0 S-Box index of segment s  =  nibble_s(plaintext XOR RK0)
//
// so the very first round leaks the top 64 key-register bits — no crafted
// plaintexts or multi-stage pipeline needed.  Each segment has 16 nibble
// candidates; absent cache lines eliminate them exactly as in GRINCH.
// RK0 covers key bits 79..16; the remaining 16 bits fall to an exhaustive
// search against one known plaintext/ciphertext pair.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/key128.h"
#include "common/rng.h"
#include "soc/present_platform.h"

namespace grinch::attack {

/// Candidate mask over the 16 possible values of one round-key nibble.
class NibbleCandidates {
 public:
  [[nodiscard]] bool contains(unsigned v) const noexcept {
    return (mask_ >> v) & 1u;
  }
  void remove(unsigned v) noexcept {
    mask_ &= static_cast<std::uint16_t>(~(1u << v));
  }
  void reset() noexcept { mask_ = 0xFFFF; }
  [[nodiscard]] bool empty() const noexcept { return mask_ == 0; }
  [[nodiscard]] unsigned size() const noexcept;
  [[nodiscard]] bool resolved() const noexcept { return size() == 1; }
  /// Precondition: resolved().
  [[nodiscard]] unsigned value() const noexcept;

 private:
  std::uint16_t mask_ = 0xFFFF;
};

struct PresentAttackConfig {
  std::uint64_t max_encryptions = 100000;
  std::uint64_t seed = 0x9135E27;  // "PRESENT"-ish
};

struct PresentAttackResult {
  bool success = false;
  bool round_key_recovered = false;  ///< RK0 (64 bits) resolved via cache
  std::uint64_t round_key0 = 0;
  Key128 recovered_key{};            ///< full 80-bit key (low bits)
  std::uint64_t cache_encryptions = 0;
  std::uint64_t search_trials = 0;   ///< exhaustive-search encryptions
};

class Present80Attack {
 public:
  Present80Attack(soc::Present80DirectProbePlatform& platform,
                  const PresentAttackConfig& config);

  [[nodiscard]] PresentAttackResult run();

 private:
  /// Brute-forces key bits 15..0 given RK0, against a known pt/ct pair.
  [[nodiscard]] std::optional<Key128> search_low_bits(
      std::uint64_t round_key0, std::uint64_t plaintext,
      std::uint64_t ciphertext) const;

  soc::Present80DirectProbePlatform* platform_;
  PresentAttackConfig config_;
  Xoshiro256 rng_;
};

}  // namespace grinch::attack
