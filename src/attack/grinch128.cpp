#include "attack/grinch128.h"

#include <cassert>

#include "gift/key_schedule.h"
#include "gift/permutation.h"
#include "gift/sbox.h"

namespace grinch::attack {

TargetBits128 set_target_bits128(unsigned segment) {
  assert(segment < 32);
  const gift::BitPermutation& perm = gift::gift128_permutation();
  const gift::SBox& sbox = gift::gift_sbox();

  TargetBits128 t;
  t.segment = segment;
  t.bit_a = perm.inverse(4 * segment + 1);  // V_s position
  t.bit_b = perm.inverse(4 * segment + 2);  // U_s position
  t.seg_a = t.bit_a / 4;
  t.seg_b = t.bit_b / 4;

  const unsigned out_a = t.bit_a % 4;
  const unsigned out_b = t.bit_b % 4;
  t.list_a.reserve(8);  // every GIFT S-Box output bit is balanced
  t.list_b.reserve(8);
  for (unsigned x = 0; x < 16; ++x) {
    const unsigned y = sbox.apply(x);
    if ((y >> out_a) & 1u) t.list_a.push_back(x);
    if ((y >> out_b) & 1u) t.list_b.push_back(x);
  }
  return t;
}

std::array<unsigned, 32> pre_key_nibbles128(
    gift::State128 plaintext,
    std::span<const gift::RoundKey128> known_round_keys, unsigned stage) {
  assert(known_round_keys.size() >= stage);
  gift::State128 state = plaintext;
  for (unsigned r = 0; r < stage; ++r) {
    state = gift::Gift128::round_function(state, known_round_keys[r], r);
  }
  // A zero round key makes AddRoundKey the identity, so a full round with
  // it yields exactly the pre-key state (constants included).
  state = gift::Gift128::round_function(state, gift::RoundKey128{}, stage);
  std::array<unsigned, 32> out{};
  for (unsigned s = 0; s < 32; ++s) out[s] = state.nibble(s);
  return out;
}

gift::State128 PlaintextCrafter128::craft_state(const TargetBits128& target) {
  gift::State128 state{};
  for (unsigned s = 0; s < 32; ++s) {
    unsigned value;
    if (s == target.seg_a) {
      value = target.list_a[rng_->uniform(target.list_a.size())];
    } else if (s == target.seg_b) {
      value = target.list_b[rng_->uniform(target.list_b.size())];
    } else {
      value = rng_->nibble();
    }
    if (s < 16)
      state.lo |= static_cast<std::uint64_t>(value) << (4 * s);
    else
      state.hi |= static_cast<std::uint64_t>(value) << (4 * (s - 16));
  }
  return state;
}

gift::State128 PlaintextCrafter128::craft_plaintext(
    const TargetBits128& target,
    std::span<const gift::RoundKey128> known_round_keys, unsigned stage) {
  gift::State128 state = craft_state(target);
  for (unsigned r = stage; r-- > 0;) {
    state = gift::Gift128::inverse_round_function(state, known_round_keys[r], r);
  }
  return state;
}

Key128 assemble_master_key128(std::span<const gift::RoundKey128> round_keys) {
  assert(round_keys.size() == 2 &&
         "GIFT-128 uses 64 key bits per round; 2 rounds cover the key");
  const gift::KeyBitOrigins origins{2};
  Key128 key;
  for (unsigned a = 0; a < 2; ++a) {
    for (unsigned i = 0; i < 32; ++i) {
      key = key.with_bit(origins.u128_origin(a, i),
                         (round_keys[a].u >> i) & 1u);
      key = key.with_bit(origins.v128_origin(a, i),
                         (round_keys[a].v >> i) & 1u);
    }
  }
  return key;
}

Grinch128Attack::Grinch128Attack(soc::ObservationSource128& source,
                                 const Grinch128Config& config)
    : source_(&source), config_(config), rng_(config.seed) {}

Grinch128Result Grinch128Attack::run() {
  Grinch128Result result;
  PlaintextCrafter128 crafter{rng_};
  std::vector<gift::RoundKey128> recovered;

  std::array<TargetBits128, 32> targets{};
  for (unsigned s = 0; s < 32; ++s) targets[s] = set_target_bits128(s);

  for (unsigned stage = 0; stage < 2; ++stage) {
    std::array<CandidateSet, 32> masks{};
    auto all_done = [&] {
      for (const auto& m : masks) {
        if (!m.resolved()) return false;
      }
      return true;
    };

    while (!all_done()) {
      if (result.total_encryptions >= config_.max_encryptions) return result;

      unsigned target = 0;
      for (unsigned s = 0; s < 32; ++s) {
        if (!masks[s].resolved()) {
          target = s;
          break;
        }
      }
      const gift::State128 pt =
          crafter.craft_plaintext(targets[target], recovered, stage);
      const soc::Observation obs = source_->observe(pt, stage);
      ++result.total_encryptions;
      ++result.stage_encryptions[stage];

      const auto nibbles = pre_key_nibbles128(pt, recovered, stage);
      // index = n XOR (c << 1): the key pair occupies nibble bits 1..2.
      CandidateSet trial = masks[target];
      for (unsigned c = 0; c < 4; ++c) {
        if (!trial.contains(c)) continue;
        const unsigned index = (nibbles[target] ^ (c << 1)) & 0xF;
        if (!obs.present[index]) trial.remove(c);
      }
      if (trial.empty()) {
        masks[target].reset();  // noisy observation
      } else {
        masks[target] = trial;
      }
    }

    gift::RoundKey128 rk{};
    for (unsigned s = 0; s < 32; ++s) {
      const unsigned c = masks[s].value();
      rk.u |= static_cast<std::uint32_t>((c >> 1) & 1u) << s;
      rk.v |= static_cast<std::uint32_t>(c & 1u) << s;
    }
    recovered.push_back(rk);
  }

  result.recovered_key = assemble_master_key128(recovered);
  // Verify against one more observed encryption.
  const gift::State128 check_pt{rng_.block64(), rng_.block64()};
  (void)source_->observe(check_pt, 0);
  ++result.total_encryptions;
  result.key_verified = gift::Gift128::encrypt(check_pt, result.recovered_key) ==
                        source_->last_ciphertext();
  result.success = result.key_verified;
  return result;
}

}  // namespace grinch::attack
