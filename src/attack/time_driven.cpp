#include "attack/time_driven.h"

#include "attack/predictor.h"
#include "common/bits.h"
#include "soc/victim.h"

namespace grinch::attack {

VictimTimingOracle::VictimTimingOracle(
    const Key128& victim_key, const cachesim::CacheConfig& cache_config)
    : key_(victim_key), cache_(cache_config), cipher_(layout_) {}

std::uint64_t VictimTimingOracle::time_encryption(std::uint64_t plaintext) {
  // Between two victim invocations other system activity evicts the
  // S-Box lines (they are tiny and cold); model that by invalidating them
  // at encryption start.  Everything else stays warm.
  for (unsigned row = 0; row < layout_.sbox_rows(); ++row) {
    cache_.flush_line(layout_.sbox_base + row * layout_.sbox_row_bytes);
  }
  soc::VictimProcess victim{cipher_, cache_, soc::VictimCostModel{}};
  victim.begin_encryption(plaintext, key_);
  victim.finish();
  return victim.now();
}

TimeDrivenResult time_driven_attack(TimingOracle& oracle,
                                    const TimeDrivenConfig& config) {
  TimeDrivenResult result;
  Xoshiro256 rng{config.seed};

  // Accumulated timing sums per (segment, candidate, predicted index
  // value, predictor outcome).  Stratifying by the predicted index value
  // x removes value-level confounds exactly: within a stratum, both the
  // present and absent branches concern the *same* value, so its global
  // timing footprint (later-round reuse etc.) cancels; averaging strata
  // uniformly makes the residual bias a candidate-independent constant.
  struct Acc {
    double sum[2] = {0, 0};
    std::uint64_t count[2] = {0, 0};
  };
  // acc[segment][candidate][value]
  std::array<std::array<std::array<Acc, 16>, 4>, 16> acc{};

  for (std::uint64_t i = 0; i < config.encryptions; ++i) {
    const std::uint64_t pt = rng.block64();
    double t = static_cast<double>(oracle.time_encryption(pt));
    ++result.encryptions;

    // Round-1 S-Box indices are exactly the plaintext nibbles.
    bool seen[16] = {};
    unsigned distinct = 0;
    for (unsigned j = 0; j < 16; ++j) {
      distinct += !seen[nibble(pt, j)];
      seen[nibble(pt, j)] = true;
    }
    // Subtract the exactly-known round-1 miss cost (variance reduction).
    t -= config.round1_miss_cycles * distinct;

    const auto n = pre_key_nibbles(pt, {}, 0);
    for (unsigned s = 0; s < 16; ++s) {
      for (unsigned c = 0; c < 4; ++c) {
        const unsigned predicted = (n[s] ^ c) & 0xF;
        const unsigned hit_predicted = seen[predicted] ? 1 : 0;
        acc[s][c][predicted].sum[hit_predicted] += t;
        ++acc[s][c][predicted].count[hit_predicted];
      }
    }
  }

  // Score: expected slowdown when the predicted access misses.  The true
  // candidate's predictor tracks the real access, so its gap is largest.
  bool all_clear = true;
  for (unsigned s = 0; s < 16; ++s) {
    double best_score = -1e18, runner_score = -1e18;
    unsigned best = 0;
    for (unsigned c = 0; c < 4; ++c) {
      double gap = 0;
      unsigned valid_strata = 0;
      for (unsigned x = 0; x < 16; ++x) {
        const Acc& a = acc[s][c][x];
        if (a.count[0] == 0 || a.count[1] == 0) continue;
        gap += a.sum[0] / static_cast<double>(a.count[0]) -
               a.sum[1] / static_cast<double>(a.count[1]);
        ++valid_strata;
      }
      if (valid_strata == 0) {
        all_clear = false;
        continue;
      }
      gap /= valid_strata;
      if (gap > best_score) {
        runner_score = best_score;
        best_score = gap;
        best = c;
      } else if (gap > runner_score) {
        runner_score = gap;
      }
    }
    result.margins[s] = best_score - runner_score;
    result.round_key.u |= static_cast<std::uint16_t>(((best >> 1) & 1u) << s);
    result.round_key.v |= static_cast<std::uint16_t>((best & 1u) << s);
    if (result.margins[s] <= 0) all_clear = false;
  }
  result.success = all_clear;
  return result;
}

}  // namespace grinch::attack
