// The GRINCH attack orchestrator — the five-step methodology of Fig. 2.
//
//   Step 1  Generate plaintext + encrypt   (TargetBits + PlaintextCrafter)
//   Step 2  Probe the cache                (the platform's prober)
//   Step 3  Eliminate candidates           (CandidateEliminator, and
//                                           CrossRoundSolver for coarse lines)
//   Step 4  Reverse-engineer key bits      (key_recovery)
//   Step 5  Update plaintext generation    (advance to the next stage with
//                                           the recovered round keys)
//
// Stage a (0..3) recovers the 32 bits of round key a by monitoring the
// S-Box accesses of cipher round a+1; four stages recover the full
// 128-bit key — "After applying the same trick four times, the entire
// 128-bit key can be retrieved."
//
// Coarse cache lines (Table I) hide the low index bits, so a stage may
// finish with *line-local* ambiguity that no observation of its own round
// can split.  Following §III-D ("the maximum number of candidates is 4
// ... the attacker can continue to the next round and assume all
// possibilities"), such a stage is marked pending and its leftover
// candidates are resolved during the next stage via cross-round
// constraints; a pending *last* stage gets a dedicated cleanup phase that
// monitors one round deeper.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "attack/eliminator.h"
#include "common/key128.h"
#include "gift/key_schedule.h"
#include "soc/platform.h"

namespace grinch::attack {

struct GrinchConfig {
  /// Stages to run (4 = full key; 1 = Fig. 3's "break 1st GIFT round").
  unsigned stages = 4;
  /// Total encryption budget; exceeding it marks the attack as a
  /// drop-out — the paper's ">1M" cells.
  std::uint64_t max_encryptions = 1'000'000;
  /// Paper-faithful mode (false): each observation only updates the
  /// currently targeted segment, and segments are attacked one after the
  /// other ("this process is repeated 15 times for the other segments").
  /// true: every observation updates all 16 segments at once — an
  /// ablation showing the methodology's headroom.
  bool exploit_all_segments = false;
  /// Enables cross-round/cross-stage constraint propagation when cache
  /// lines hold several S-Box entries (required for lines >= 2 words).
  bool use_cross_round = true;
  /// Declares that presence does not identify the demanded entry even at
  /// full line resolution — e.g. a hardware prefetcher drags neighbour
  /// lines in with every demand miss, making some candidates structurally
  /// co-present.  Engages the cross-round/cross-stage machinery and
  /// stall-based deferral unconditionally.
  bool coarse_observations = false;
  /// Consecutive observations without any candidate pruned before a
  /// stage with only line-local ambiguity left is handed to the next
  /// stage / cleanup phase.
  unsigned stall_limit = 48;
  /// Absent-vote threshold for direct elimination (see
  /// eliminate_candidates_voted).  1 = the paper's hard elimination;
  /// raise to 2-3 on noisy platforms where third-party traffic evicts
  /// monitored lines and single absences misfire.
  unsigned elimination_threshold = 1;
  /// Maximum-likelihood elimination for heavy eviction noise: instead of
  /// eliminating on absences, accumulate per-candidate absent-rate
  /// statistics and resolve a segment once the lowest-rate candidate is
  /// separated from the runner-up by a statistically significant gap
  /// (>= stat_z * sqrt(sightings) absents) after at least `stat_min_obs`
  /// sightings.  Eviction noise only produces false *absents*, so the
  /// true candidate always has the lowest absent rate; hard elimination,
  /// by contrast, provably mis-converges once the false-absent rate is
  /// non-trivial (P(correct) ~ 0.4^16 at 37% FN).  Only effective at full
  /// line resolution (1 entry per line).
  bool statistical_elimination = false;
  unsigned stat_min_obs = 32;
  double stat_z = 2.0;
  /// Trace-driven augmentation: additionally exploit the monitored
  /// round's per-access hit/miss sequence when the platform reports one
  /// (Observation::sbox_hits).  Sound only without prefetching.
  bool use_trace_hits = false;
  /// RNG seed for plaintext crafting.
  std::uint64_t seed = 0xA77AC4;
};

/// Outcome of one attack stage (index 4 = the cleanup phase, if any).
struct StageReport {
  bool success = false;           ///< this stage's round key fully recovered
  bool deferred = false;          ///< handed line-local leftovers onward
  gift::RoundKey64 round_key{};   ///< valid once success
  std::uint64_t encryptions = 0;
  unsigned noise_restarts = 0;
  std::uint64_t attacker_cycles = 0;
};

/// Outcome of the whole attack.
struct AttackResult {
  bool success = false;       ///< all requested round keys recovered
  bool key_verified = false;  ///< full key reproduced a known ciphertext
  Key128 recovered_key{};     ///< valid when stages == 4 and success
  std::uint64_t total_encryptions = 0;
  std::vector<StageReport> stages;

  /// Recovered round keys, one per completed stage.
  std::vector<gift::RoundKey64> round_keys;
};

class GrinchAttack {
 public:
  GrinchAttack(soc::ObservationSource& source, const GrinchConfig& config);

  /// Runs the configured stages (plus cleanup when needed), assembles and
  /// verifies the master key when stages == 4.
  [[nodiscard]] AttackResult run();

 private:
  struct StageState {
    std::array<CandidateSet, 16> masks{};
    std::array<AbsentVotes, 16> votes{};
    /// Statistical mode: per-segment, per-candidate absent counts and
    /// total sightings.
    std::array<std::array<std::uint32_t, 4>, 16> absent_count{};
    std::array<std::uint32_t, 16> sightings{};
    bool resolved = false;
    gift::RoundKey64 round_key{};
  };

  /// Statistical-mode update for one segment; returns 1 when the segment
  /// just resolved.
  unsigned update_statistical(StageState& state, unsigned segment,
                              unsigned pre_key_nibble,
                              const target::LineSet& present) const;

  /// Drives observations until stage `stage`'s masks are all singletons
  /// (also finishing a pending previous stage), the budget runs out, or
  /// only line-local ambiguity remains and progress stalls.
  StageReport drive_stage(unsigned stage, bool cleanup_phase);

  /// Candidate value bits indistinguishable inside one cache line.
  [[nodiscard]] unsigned line_hidden_mask() const;
  [[nodiscard]] bool only_line_local_ambiguity(
      const std::array<CandidateSet, 16>& masks) const;

  [[nodiscard]] gift::RoundKey64 best_guess_round_key(
      const std::array<CandidateSet, 16>& masks) const;

  soc::ObservationSource* source_;
  GrinchConfig config_;
  Xoshiro256 rng_;
  std::vector<unsigned> line_ids_;

  /// masks/resolution per stage 0..4 (index 4: the round after the last
  /// attacked one, never itself resolved).
  std::array<StageState, 5> stage_state_{};
  /// Exact round keys for the resolved prefix of stages.
  std::vector<gift::RoundKey64> exact_keys_;
  std::uint64_t encryptions_used_ = 0;
};

}  // namespace grinch::attack
