// Time-driven attack variant (our extension; the paper's taxonomy cites
// Bernstein's cache-timing attack as ref [8]).
//
// The weakest attacker in the paper's §I taxonomy observes only the
// *total encryption time*.  In a table-based GIFT, a round-2 S-Box access
// hits (is fast) when its index already appeared in round 1 — and round-1
// indices are the plaintext nibbles, fully known to the attacker.  For
// the true candidate c of segment s, the predictor
//
//     I_c(pt) = [ n_s XOR c  appears among the plaintext nibbles ]
//
// correlates with a *shorter* encryption.  Averaging the timing gap
// mean(T | I=0) - mean(T | I=1) over many random plaintexts (stratified
// by the predicted value, with the exactly-known round-1 miss cost
// subtracted) and picking the largest-gap candidate estimates the two key
// bits per segment — no flush, no probe, no scheduler control.
//
// MEASURED FINDING (bench/extension_time_driven): unlike the access- and
// trace-driven channels, this estimator is *biased* on GIFT: the presence
// of a specific nibble value deterministically reshapes the indices of
// every later round (64-bit state, full diffusion in a few rounds), so
// wrong candidates acquire structural timing correlations of the same
// few-cycle order as the true signal.  Even 10^5-10^6 timings recover
// only roughly half the segments — a quantitative argument for why
// GRINCH is an access-driven attack.  The implementation is kept as the
// taxonomy's third data point, reporting per-segment margins so callers
// can rank confidence.
#pragma once

#include <array>
#include <cstdint>

#include "common/key128.h"
#include "common/rng.h"
#include "gift/key_schedule.h"
#include "soc/platform.h"

namespace grinch::attack {

struct TimeDrivenConfig {
  /// Encryptions to time (all segments share the same measurements).
  /// Time-driven attacks are sample-hungry: the per-access signal is a
  /// few cycles against hundreds of cycles of hit/miss noise from the
  /// other 27 rounds.
  std::uint64_t encryptions = 400000;
  std::uint64_t seed = 0x7173;
  /// Known-structure variance reduction: the attacker can compute the
  /// round-1 miss count exactly (= distinct plaintext nibbles, the table
  /// being cold) and subtract its cost before correlating.  Set to the
  /// cache's miss-hit latency difference; 0 disables the adjustment.
  double round1_miss_cycles = 49.0;
};

struct TimeDrivenResult {
  bool success = false;        ///< every segment produced a clear winner
  gift::RoundKey64 round_key{};  ///< best-guess round key (see header note)
  std::uint64_t encryptions = 0;
  /// Winner-vs-runner-up timing-gap margin per segment (confidence rank).
  std::array<double, 16> margins{};

  /// Segments whose guess matches `truth` (evaluation helper).
  [[nodiscard]] unsigned segments_correct(const gift::RoundKey64& truth)
      const noexcept {
    unsigned ok = 0;
    for (unsigned s = 0; s < 16; ++s) {
      const bool u_ok = ((round_key.u >> s) & 1u) == ((truth.u >> s) & 1u);
      const bool v_ok = ((round_key.v >> s) & 1u) == ((truth.v >> s) & 1u);
      ok += u_ok && v_ok;
    }
    return ok;
  }
};

/// Timing oracle: runs one full victim encryption and returns its
/// duration in cycles.  The DirectProbePlatform-based implementation
/// lives in time_driven.cpp; tests may supply their own.
class TimingOracle {
 public:
  virtual ~TimingOracle() = default;
  virtual std::uint64_t time_encryption(std::uint64_t plaintext) = 0;
};

/// A TimingOracle over the standard leaky victim and shared cache.
/// The cache is NOT flushed between encryptions except for the S-Box
/// lines at encryption start (cold start for the monitored table only;
/// steadier tables stay warm, as in real repeated-measurement setups).
class VictimTimingOracle final : public TimingOracle {
 public:
  explicit VictimTimingOracle(const Key128& victim_key,
                              const cachesim::CacheConfig& cache_config =
                                  cachesim::CacheConfig::paper_default());
  std::uint64_t time_encryption(std::uint64_t plaintext) override;

 private:
  Key128 key_;
  cachesim::Cache cache_;
  gift::TableLayout layout_;  // must precede cipher_ (used to build it)
  gift::TableGift64 cipher_;
};

/// Runs the correlation attack against `oracle` for round key 0.
[[nodiscard]] TimeDrivenResult time_driven_attack(TimingOracle& oracle,
                                                  const TimeDrivenConfig&
                                                      config);

}  // namespace grinch::attack
