// GRINCH Step 1b — plaintext generation (Algorithm 2) and Step 5 — update
// for deeper rounds.
//
// Algorithm 2 fills the two source segments (seg_a / seg_b) with values
// from the Algorithm 1 lists and randomises every other segment.  For
// attack stages beyond the first, the crafted state is the *input of the
// attacked round*; it is pulled back to a plaintext by inverting the
// earlier rounds with the already-recovered round keys ("the attacker can
// compute the intermediate round values to generate the plaintexts").
#pragma once

#include <cstdint>
#include <span>

#include "attack/target_bits.h"
#include "common/rng.h"
#include "gift/key_schedule.h"

namespace grinch::attack {

class PlaintextCrafter {
 public:
  explicit PlaintextCrafter(Xoshiro256& rng) : rng_(&rng) {}

  /// Algorithm 2: crafts the input state of the round *feeding* the
  /// monitored round, pinning the target segment's key-facing bits to 1.
  [[nodiscard]] std::uint64_t craft_state(const TargetBits& target);

  /// Full Step-1/Step-5 pipeline: crafts the stage's round input and
  /// inverts rounds 0 .. stage-1 with `known_round_keys` (size >= stage)
  /// to obtain the plaintext handed to the victim.
  [[nodiscard]] std::uint64_t craft_plaintext(
      const TargetBits& target,
      std::span<const gift::RoundKey64> known_round_keys, unsigned stage);

 private:
  Xoshiro256* rng_;
};

/// Pulls a desired round-`stage` input state back to a plaintext by
/// inverting the first `stage` rounds (bijective, so always possible).
[[nodiscard]] std::uint64_t invert_to_plaintext(
    std::uint64_t round_input, std::span<const gift::RoundKey64> round_keys,
    unsigned stage);

}  // namespace grinch::attack
