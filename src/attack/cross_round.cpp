#include "attack/cross_round.h"

#include <cassert>

#include "attack/predictor.h"
#include "gift/permutation.h"
#include "gift/sbox.h"

namespace grinch::attack {

CrossRoundSolver::CrossRoundSolver() {
  const gift::BitPermutation& perm = gift::gift64_permutation();
  for (unsigned t = 0; t < 16; ++t) {
    for (unsigned j = 0; j < 4; ++j) {
      const unsigned p = perm.inverse(4 * t + j);
      sources_[t].seg[j] = p / 4;
      sources_[t].bit[j] = p % 4;
    }
  }
}

unsigned CrossRoundSolver::next_round_pre_key_nibble(
    const CrossRoundObservation& obs, unsigned target_segment,
    const std::array<unsigned, 4>& source_candidates) const {
  const gift::SBox& sbox = gift::gift_sbox();
  const Sources& src = sources_[target_segment];
  unsigned m = 0;
  for (unsigned j = 0; j < 4; ++j) {
    const unsigned s = src.seg[j];
    const unsigned y =
        sbox.apply(obs.pre_key_nibbles[s] ^ source_candidates[j]);
    m |= ((y >> src.bit[j]) & 1u) << j;
  }
  m ^= constant_nibble_contribution(obs.next_round_index, target_segment);
  return m;
}

unsigned CrossRoundSolver::propagate(const CrossRoundObservation& obs,
                                     std::array<CandidateSet, 16>& a,
                                     std::array<CandidateSet, 16>& b) const {
  assert(obs.present.size() == 16);
  unsigned pruned_total = 0;

  for (unsigned t = 0; t < 16; ++t) {
    const Sources& src = sources_[t];
    // Supported values found during enumeration.
    std::array<std::uint8_t, 4> a_support{};
    std::uint8_t b_support = 0;

    std::array<unsigned, 4> assign{};
    // Enumerate the product of the four source candidate sets.
    for (unsigned c0 = 0; c0 < 4; ++c0) {
      if (!a[src.seg[0]].contains(c0)) continue;
      assign[0] = c0;
      for (unsigned c1 = 0; c1 < 4; ++c1) {
        if (!a[src.seg[1]].contains(c1)) continue;
        assign[1] = c1;
        for (unsigned c2 = 0; c2 < 4; ++c2) {
          if (!a[src.seg[2]].contains(c2)) continue;
          assign[2] = c2;
          for (unsigned c3 = 0; c3 < 4; ++c3) {
            if (!a[src.seg[3]].contains(c3)) continue;
            assign[3] = c3;
            const unsigned m = next_round_pre_key_nibble(obs, t, assign);
            for (unsigned cp = 0; cp < 4; ++cp) {
              if (!b[t].contains(cp)) continue;
              if (!obs.present[(m ^ cp) & 0xF]) continue;
              // Satisfying assignment: mark support for every participant.
              for (unsigned j = 0; j < 4; ++j)
                a_support[j] |= static_cast<std::uint8_t>(1u << assign[j]);
              b_support |= static_cast<std::uint8_t>(1u << cp);
            }
          }
        }
      }
    }

    // A constraint with no satisfying assignment at all is noise — the
    // truth is always satisfiable on a clean probe — so skip it.
    if (b_support == 0) continue;

    for (unsigned j = 0; j < 4; ++j) {
      CandidateSet& var = a[src.seg[j]];
      const std::uint8_t pruned_mask =
          static_cast<std::uint8_t>(var.mask() & ~a_support[j]);
      if (pruned_mask == var.mask()) continue;  // would empty: noise guard
      for (unsigned c = 0; c < 4; ++c) {
        if (var.contains(c) && !((a_support[j] >> c) & 1u)) {
          var.remove(c);
          ++pruned_total;
        }
      }
    }
    {
      CandidateSet& var = b[t];
      for (unsigned c = 0; c < 4; ++c) {
        if (var.contains(c) && !((b_support >> c) & 1u)) {
          var.remove(c);
          ++pruned_total;
        }
      }
    }
  }
  return pruned_total;
}

unsigned CrossRoundSolver::propagate_to_fixpoint(
    const CrossRoundObservation& obs, std::array<CandidateSet, 16>& a,
    std::array<CandidateSet, 16>& b) const {
  unsigned total = 0;
  for (;;) {
    const unsigned pruned = propagate(obs, a, b);
    total += pruned;
    if (pruned == 0) return total;
  }
}

}  // namespace grinch::attack
