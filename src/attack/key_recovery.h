// GRINCH Step 4 — reverse-engineering key bits, and master-key assembly.
//
// Per-segment, the surviving candidate c = (u << 1) | v already *is* the
// key-bit pair (the eliminator works on c = n XOR index).  When the
// plaintext was crafted so both key-facing pre-key bits are 1 (Algorithms
// 1-2), this reduces to the paper's rule Key[i] <- NOT Index[a]; the
// equivalence is asserted in tests/attack/key_recovery_test.cpp.
//
// Stage a recovers GIFT-64 round key a (32 bits).  The key schedule is a
// bit permutation, so each recovered round-key bit maps to exactly one
// master-key bit; four stages cover all 128 (KeyBitOrigins supplies the
// mapping).
#pragma once

#include <span>

#include "common/key128.h"
#include "gift/key_schedule.h"

namespace grinch::attack {

/// Paper Step 4 for one segment with pinned bits: recovers (u, v) from the
/// observed index by inverting its two low bits.
/// Returns c = (u << 1) | v.
[[nodiscard]] constexpr unsigned reverse_engineer_pinned(unsigned index)
    noexcept {
  const unsigned v = (~index) & 1u;
  const unsigned u = ((~index) >> 1) & 1u;
  return (u << 1) | v;
}

/// General Step 4: c = pre_key_nibble XOR index, masked to the key bits.
[[nodiscard]] constexpr unsigned reverse_engineer(unsigned pre_key_nibble,
                                                  unsigned index) noexcept {
  return (pre_key_nibble ^ index) & 0x3;
}

/// Assembles the 128-bit master key from the four recovered round keys
/// (round_keys[a] = round key of 0-based round a; needs exactly 4).
[[nodiscard]] Key128 assemble_master_key(
    std::span<const gift::RoundKey64> round_keys);

}  // namespace grinch::attack
