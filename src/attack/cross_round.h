// Cross-round constraint propagation for coarse cache lines (paper §III-D).
//
// When a cache line holds several S-Box entries, the probe hides the low
// index bits and direct elimination cannot separate all four (u,v)
// candidates — "the maximum number of candidates is 4.  As a result of
// this, the attacker can continue to the next round and assume all
// possibilities."  This solver is that continuation, made systematic:
//
// The S-Box index of segment t in the *next* round is
//
//   index_t = m_t(c_src0..c_src3) XOR c'_t
//
// where m_t depends (through SubCells/PermBits) on the candidates of
// exactly the four monitored-round segments feeding t, and c'_t is the
// next round's own (unknown) key pair.  Every probed observation that
// covers the next round therefore yields 16 constraints of arity 5 over
// the candidate sets.  Generalised arc consistency prunes every candidate
// value that participates in no satisfying assignment; iterating to a
// fixpoint across observations shrinks the sets to singletons even when
// single-round information is line-limited.
#pragma once

#include <array>
#include <cstdint>

#include "attack/eliminator.h"

namespace grinch::attack {

/// One probed encryption, prepared for cross-round propagation.
struct CrossRoundObservation {
  /// Pre-key nibbles of the monitored round (known to the attacker).
  std::array<unsigned, 16> pre_key_nibbles{};
  /// Per-index line presence; must cover the *next* round's accesses.
  target::LineSet present;
  /// 0-based cipher round index of the next round (for constant folding);
  /// for attack stage a this is a+1.
  unsigned next_round_index = 0;
};

class CrossRoundSolver {
 public:
  /// Sources of each next-round segment through the permutation.
  struct Sources {
    std::array<unsigned, 4> seg{};  ///< monitored-round source segment
    std::array<unsigned, 4> bit{};  ///< bit of that segment's S-Box output
  };

  CrossRoundSolver();

  [[nodiscard]] const Sources& sources(unsigned target_segment) const {
    return sources_[target_segment];
  }

  /// Computes m_t for a concrete assignment of the four source candidates.
  [[nodiscard]] unsigned next_round_pre_key_nibble(
      const CrossRoundObservation& obs, unsigned target_segment,
      const std::array<unsigned, 4>& source_candidates) const;

  /// One GAC pass over all 16 constraints of `obs`.  `a` holds the
  /// monitored round's candidate sets, `b` the next round's.  Returns the
  /// number of candidate values pruned.  A constraint that would empty a
  /// variable is skipped (treated as noise), mirroring the eliminator.
  unsigned propagate(const CrossRoundObservation& obs,
                     std::array<CandidateSet, 16>& a,
                     std::array<CandidateSet, 16>& b) const;

  /// propagate() repeated until a fixpoint. Returns total pruned.
  unsigned propagate_to_fixpoint(const CrossRoundObservation& obs,
                                 std::array<CandidateSet, 16>& a,
                                 std::array<CandidateSet, 16>& b) const;

 private:
  std::array<Sources, 16> sources_{};
};

}  // namespace grinch::attack
