#include "attack/target_bits.h"

#include <cassert>

#include "gift/permutation.h"
#include "gift/sbox.h"

namespace grinch::attack {

TargetBits set_target_bits(unsigned segment) {
  assert(segment < 16);
  const gift::BitPermutation& perm = gift::gift64_permutation();
  const gift::SBox& sbox = gift::gift_sbox();

  TargetBits t;
  t.segment = segment;
  // StatusBitXorKey: V_s lands on state bit 4s, U_s on 4s+1 (Fig. 1).
  const unsigned status_v = 4 * segment;
  const unsigned status_u = 4 * segment + 1;
  // Inv_Permutation: where those bits live before PermBits, i.e. in the
  // S-Box-layer output.
  t.bit_a = perm.inverse(status_v);
  t.bit_b = perm.inverse(status_u);
  t.seg_a = t.bit_a / 4;
  t.seg_b = t.bit_b / 4;

  // For every S-Box output X with the needed bit set, record the input
  // Inv_SBOX[X] — any of these inputs forces a 1 on the target bit.
  const unsigned out_bit_a = t.bit_a % 4;
  const unsigned out_bit_b = t.bit_b % 4;
  t.list_a.reserve(8);  // every GIFT S-Box output bit is balanced
  t.list_b.reserve(8);
  for (unsigned x = 0; x < 16; ++x) {
    const unsigned y = sbox.apply(x);
    if ((y >> out_bit_a) & 1u) t.list_a.push_back(x);
    if ((y >> out_bit_b) & 1u) t.list_b.push_back(x);
  }
  return t;
}

}  // namespace grinch::attack
