// leakcheck front door: static taint pass + dynamic trace-equivalence
// oracle for one AnalysisTarget, combined into a LeakReport.
//
// Decision procedure:
//   1. Static.  Cumulative-taint abstract interpretation flags every table
//      access whose index carries KEY taint; cache-line projection
//      (leaked_key_bits) discards taint the layout makes unobservable —
//      the packed S-Box is KEY-tainted but projects to zero bits.  The
//      target is "leaky" iff any observed access projects to > 0 bits.
//   2. Quantify.  Per attacked round, re-run the taint engine in the
//      cross-round model (earlier round keys known) and sum the fresh key
//      bits exposed per segment — the paper's 2-bits-per-segment counts.
//   3. Dynamic.  key_pair_trace_diff validates the verdict on the real
//      implementation; LeakReport::consistent() asserts agreement.
#pragma once

#include <vector>

#include "analysis/leak_report.h"
#include "analysis/registry.h"
#include "analysis/trace_diff.h"

namespace grinch::analysis {

struct LeakcheckConfig {
  unsigned analysis_rounds = 0;  ///< attacked rounds to quantify (0 = target default)
  bool run_dynamic = true;       ///< also run the trace-equivalence oracle
  TraceDiffConfig diff;
};

/// Runs both passes over one target.
[[nodiscard]] LeakReport analyze(const AnalysisTarget& target,
                                 const LeakcheckConfig& cfg = {});

/// Runs both passes over every built-in target.
[[nodiscard]] std::vector<LeakReport> analyze_all(
    const LeakcheckConfig& cfg = {});

}  // namespace grinch::analysis
