// leakcheck pass 2 — dynamic trace-equivalence oracle.
//
// An implementation's memory behaviour is key-independent iff, for every
// plaintext, the projected cache-line access sequence is the same under
// every key.  This checker samples that property: it drives the real
// instrumented implementation under pairs of random keys with a shared
// fixed plaintext per trial, projects each access stream to observable
// cache lines (via the target's cache geometry), and compares the
// sequences.  Any divergence is a concrete witness of secret-dependent
// memory behaviour — the dynamic counterpart that validates (or refutes)
// the taint engine's static verdict.
//
// A clean result is evidence, not proof (it samples key pairs); a
// divergence is definitive.  The static pass has the opposite polarity
// (sound "leaky" may over-approximate) — leakcheck runs both and demands
// agreement.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/registry.h"

namespace grinch::analysis {

/// One access projected to what the attacker can observe.
struct ProjectedAccess {
  std::uint64_t line = 0;  ///< cache-line base address of the access
  std::uint64_t set = 0;   ///< cache set index (Prime+Probe granularity)
  unsigned round = 0;      ///< 0-based round that issued it
};

/// Runs `rounds` rounds of the target under (pt, key) and projects the
/// observable accesses to cache lines.
[[nodiscard]] std::vector<ProjectedAccess> projected_line_trace(
    const AnalysisTarget& target, std::uint64_t pt_lo, std::uint64_t pt_hi,
    const Key128& key, unsigned rounds);

struct TraceDiffConfig {
  unsigned trials = 16;   ///< key pairs sampled
  unsigned rounds = 0;    ///< rounds per encryption (0 = target default)
  std::uint64_t seed = 0x7D1FF;
};

struct TraceDiffResult {
  unsigned trials = 0;
  unsigned diverged = 0;  ///< trials whose traces differed

  /// Details of the first divergence found (valid when diverged > 0).
  unsigned first_trial = 0;
  unsigned first_access = 0;  ///< ordinal of the first differing access
  int first_round = -1;       ///< round of that access (-1: length mismatch)

  [[nodiscard]] bool equivalent() const noexcept { return diverged == 0; }
};

/// The key-pair oracle: fixed plaintext per trial, two random keys.
[[nodiscard]] TraceDiffResult key_pair_trace_diff(const AnalysisTarget& target,
                                                  const TraceDiffConfig& cfg);

}  // namespace grinch::analysis
