#include "analysis/registry.h"

#include <string>
#include <utility>

#include "countermeasures/hardened_schedule.h"
#include "countermeasures/packed_sbox.h"
#include "gift/bitslice.h"
#include "gift/gift128.h"
#include "gift/sbox.h"
#include "target/gift128_traits.h"
#include "target/gift64_traits.h"
#include "target/present80_traits.h"

namespace grinch::analysis {
namespace {

unsigned gift_sbox_value(unsigned v) { return gift::gift_sbox().apply(v); }
unsigned present_sbox_value(unsigned v) {
  return gift::present_sbox().apply(v);
}

/// One leaky table-implemented cipher, described through its target
/// traits (src/target/): the name is `<Traits::kName>-table` and the
/// dynamic runner builds Traits::TableCipher, assembling the block from
/// the (pt_lo, pt_hi) words via Traits::block_from_words.
template <typename Traits>
AnalysisTarget table_cipher_target(const char* description, CipherModel model,
                                   unsigned analysis_rounds) {
  AnalysisTarget t;
  t.name = std::string{Traits::kName} + "-table";
  t.description = description;
  t.expect_leaky = true;
  t.model = std::move(model);
  t.cache = cachesim::CacheConfig::paper_default();
  t.analysis_rounds = analysis_rounds;
  t.run = [](std::uint64_t pt_lo, std::uint64_t pt_hi, const Key128& key,
             unsigned rounds, gift::TraceSink* sink) {
    const typename Traits::TableCipher cipher;
    (void)cipher.encrypt_rounds(Traits::block_from_words(pt_lo, pt_hi), key,
                                rounds, sink);
  };
  return t;
}

AnalysisTarget gift64_table_target() {
  // analysis_rounds 5: the paper's rounds 2..5 = 4 x 32 fresh key bits.
  AnalysisTarget t = table_cipher_target<target::Gift64Traits>(
      "table-based GIFT-64 (the paper's victim)", gift64_table_model(), 5);
  t.quantify.sbox_value = gift_sbox_value;
  // The paper's headline: 2 fresh key bits per segment per attacked round
  // (rounds 2..5 of the paper = code rounds 1..4), 16 segments.  The
  // PermBits LUT independently confirms the same bits through its own
  // rows (S is a bijection), so its channel also measures 2 per segment.
  t.quantify.budget_sbox_bits = 4 * 16 * 2.0;
  t.quantify.budget_perm_bits = 4 * 16 * 2.0;
  return t;
}

AnalysisTarget gift128_table_target() {
  // analysis_rounds 3: two attacked rounds x 64 bits cover the key.
  AnalysisTarget t = table_cipher_target<target::Gift128Traits>(
      "table-based GIFT-128 (GIFT-COFB core)", gift128_table_model(), 3);
  t.quantify.sbox_value = gift_sbox_value;
  // 2 key-facing index bits per segment, 32 segments, rounds 1..2.
  t.quantify.budget_sbox_bits = 2 * 32 * 2.0;
  t.quantify.budget_perm_bits = 2 * 32 * 2.0;
  return t;
}

AnalysisTarget present80_table_target() {
  // analysis_rounds 2: the round key covers the state from round 1 on.
  AnalysisTarget t = table_cipher_target<target::Present80Traits>(
      "table-based PRESENT-80 (extension target)", present80_table_model(), 2);
  t.quantify.sbox_value = present_sbox_value;
  // PRESENT adds the key *before* SubCells, so all four index bits of
  // every segment are fresh in both analyzed rounds: 4 bits x 16 x 2.
  t.quantify.budget_sbox_bits = 2 * 16 * 4.0;
  t.quantify.budget_perm_bits = 2 * 16 * 4.0;
  return t;
}

AnalysisTarget gift64_bitsliced_target() {
  AnalysisTarget t;
  t.name = "gift64-bitsliced";
  t.description = "constant-time bitsliced GIFT-64 (no table accesses)";
  t.expect_leaky = false;
  t.model = gift64_bitsliced_model();
  t.cache = cachesim::CacheConfig::paper_default();
  // No lookups at all: zero budget, and nothing for the perm hook to map.
  t.run = [](std::uint64_t pt_lo, std::uint64_t /*pt_hi*/, const Key128& key,
             unsigned /*rounds*/, gift::TraceSink* /*sink*/) {
    // The bitsliced implementation issues no data-dependent loads, so an
    // instrumented run has nothing to report; executing it keeps the
    // dynamic oracle honest about "the trace is empty", not "we skipped".
    const gift::BitslicedGift64 cipher;
    (void)cipher.encrypt(pt_lo, key);
  };
  return t;
}

AnalysisTarget gift64_packed_target() {
  AnalysisTarget t;
  t.name = "gift64-packed-sbox";
  t.description =
      "packed-S-Box countermeasure (8x8-bit rows, 8-byte lines, register "
      "PermBits)";
  t.expect_leaky = false;
  t.model = gift64_packed_model();
  t.layout = cm::packed_sbox_layout();
  t.cache = cm::packed_sbox_cache();
  t.observe_perm = false;  // PermBits computed in registers
  t.quantify.sbox_value = gift_sbox_value;
  // The reshaped table lives in one 8-byte line: zero measured bits.
  t.quantify.budget_sbox_bits = 0.0;
  t.quantify.budget_perm_bits = 0.0;
  t.run = [](std::uint64_t pt_lo, std::uint64_t /*pt_hi*/, const Key128& key,
             unsigned rounds, gift::TraceSink* sink) {
    const gift::TableGift64 cipher{cm::packed_sbox_layout()};
    (void)cipher.encrypt_rounds(pt_lo, key, rounds, sink);
  };
  return t;
}

AnalysisTarget gift64_packed_lut_perm_target() {
  AnalysisTarget t = gift64_packed_target();
  t.name = "gift64-packed-sbox-lut-perm";
  t.description =
      "packed S-Box but PermBits still a LUT — the perm table leaks";
  t.expect_leaky = true;
  t.model.name = t.name;
  t.model.perm_lookups = true;
  t.observe_perm = true;
  // The S-Box is silent, but each of the 4 reachable PermBits rows sits
  // in its own 8-byte line: the perm LUT still measures the full 2 bits
  // per segment per attacked round — the gap the taint pass found, now
  // with a number attached.
  t.quantify.budget_perm_bits = 4 * 16 * 2.0;
  return t;
}

AnalysisTarget gift64_hardened_target() {
  AnalysisTarget t = gift64_table_target();
  t.name = "gift64-hardened-schedule";
  t.description =
      "hardened UpdateKey countermeasure — the cache leak itself is "
      "unchanged (it defeats key reconstruction, not observation)";
  t.expect_leaky = true;
  t.model.name = t.name;
  // Inherits gift64-table's budget on purpose: the countermeasure leaves
  // the observable channel untouched (it defeats reconstruction, not
  // observation), and the equal measured bits make that visible.
  t.run = [](std::uint64_t pt_lo, std::uint64_t /*pt_hi*/, const Key128& key,
             unsigned rounds, gift::TraceSink* sink) {
    const gift::TableGift64 cipher{gift::TableLayout{},
                                   cm::hardened_provider()};
    (void)cipher.encrypt_rounds(pt_lo, key, rounds, sink);
  };
  return t;
}

}  // namespace

std::vector<AnalysisTarget> builtin_targets() {
  std::vector<AnalysisTarget> targets;
  targets.push_back(gift64_table_target());
  targets.push_back(gift128_table_target());
  targets.push_back(present80_table_target());
  targets.push_back(gift64_bitsliced_target());
  targets.push_back(gift64_packed_target());
  targets.push_back(gift64_packed_lut_perm_target());
  targets.push_back(gift64_hardened_target());
  return targets;
}

const AnalysisTarget* find_target(const std::vector<AnalysisTarget>& targets,
                                  const std::string& name) {
  for (const AnalysisTarget& t : targets) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

}  // namespace grinch::analysis
